// Package main_test hosts the benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation (regenerating its
// rows/series via internal/experiments), plus micro-benchmarks of the
// performance-critical substrates.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks execute at Quick fidelity per iteration; use
// cmd/benchtab -full for evaluation-default budgets.
package main_test

import (
	"io"
	"math/rand"
	"testing"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/estimator"
	"gnnavigator/internal/experiments"
	"gnnavigator/internal/model"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/tensor"
)

// --- experiment regeneration: one benchmark per table/figure ---------------

func BenchmarkFig1aPaGraphTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig1a(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1b2PGraphAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig1b(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5MinibatchEstimator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6ParetoFronts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2EstimatorValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ----------

func BenchmarkAblationPruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationPruning(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCachePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationCachePolicy(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationPipeline(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---------------------------------------------

func BenchmarkNodeWiseSampling(b *testing.B) {
	d := dataset.MustLoad(dataset.Reddit2)
	s := &sample.NodeWise{Fanouts: []int{25, 10}}
	rng := rand.New(rand.NewSource(1))
	targets := d.TrainIdx[:1024]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb := s.Sample(rng, d.Graph, targets)
		if mb.NumVertices == 0 {
			b.Fatal("empty batch")
		}
	}
}

func BenchmarkSubgraphSampling(b *testing.B) {
	d := dataset.MustLoad(dataset.Reddit2)
	s := &sample.SubgraphWise{WalkLength: 12, Layers: 2}
	rng := rand.New(rand.NewSource(1))
	targets := d.TrainIdx[:512]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb := s.Sample(rng, d.Graph, targets)
		if mb.NumVertices == 0 {
			b.Fatal("empty batch")
		}
	}
}

func BenchmarkSAGEForwardBackward(b *testing.B) {
	d := dataset.MustLoad(dataset.Reddit2)
	g := d.Graph
	s := &sample.NodeWise{Fanouts: []int{10, 5}}
	rng := rand.New(rand.NewSource(1))
	mb := s.Sample(rng, g, d.TrainIdx[:512])
	mdl, err := model.New(model.Config{
		Kind: model.SAGE, InDim: g.FeatDim, Hidden: 64, OutDim: g.NumClasses,
		Layers: 2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	feats := model.GatherFeatures(g, mb.InputNodes)
	labels := make([]int32, len(mb.Targets))
	for i, v := range mb.Targets {
		labels[i] = g.Labels[v]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits, err := mdl.Forward(mb, feats, true)
		if err != nil {
			b.Fatal(err)
		}
		grad := tensor.New(logits.Rows, logits.Cols)
		mdl.Backward(grad)
	}
}

func BenchmarkBackendEpoch(b *testing.B) {
	cfg, err := backend.FromTemplate(backend.TemplatePyG, dataset.Reddit2, model.SAGE, "rtx4090")
	if err != nil {
		b.Fatal(err)
	}
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backend.RunWith(cfg, backend.Options{SkipTraining: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimatorPredict(b *testing.B) {
	recs, err := estimator.CollectCached(dataset.OgbnArxiv, model.SAGE, "rtx4090", 12, 7, true)
	if err != nil {
		b.Fatal(err)
	}
	est, err := estimator.Train(recs)
	if err != nil {
		b.Fatal(err)
	}
	cfg := recs[0].Cfg
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Predict(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// --- sharded kernel benchmarks ----------------------------------------------
//
// Every kernel is measured at serial (1 worker) and parallel (4 workers)
// settings with allocs/op reported, enforcing the zero-steady-state-alloc
// claim by numbers. On a single-core host the parallel variants mostly
// measure dispatch overhead; on multi-core they show the speedup recorded
// in BENCH_parallel.json (cmd/benchtab -parallel-bench).

func dense256(seed int64) *tensor.Dense {
	rng := rand.New(rand.NewSource(seed))
	m := tensor.New(256, 256)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// benchWorkers runs fn under "serial" (1) and "parallel" (4) worker
// settings, restoring the previous setting afterwards.
func benchWorkers(b *testing.B, fn func(b *testing.B)) {
	prev := tensor.Parallelism()
	defer tensor.SetParallelism(prev)
	for _, w := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel4", 4}} {
		b.Run(w.name, func(b *testing.B) {
			tensor.SetParallelism(w.workers)
			b.ReportAllocs()
			fn(b)
		})
	}
}

func BenchmarkMatMul256(b *testing.B) {
	m, n, out := dense256(1), dense256(2), tensor.New(256, 256)
	benchWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulInto(out, m, n)
		}
	})
}

// BenchmarkMatMulSkipDense measures the sparse-skip kernel on fully dense
// inputs: the delta vs BenchmarkMatMul256 is the price of the always-taken
// aik == 0 compare, which is why the skip lives only in MatMulSparseInto.
func BenchmarkMatMulSkipDense(b *testing.B) {
	m, n, out := dense256(1), dense256(2), tensor.New(256, 256)
	benchWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulSparseInto(out, m, n)
		}
	})
}

// BenchmarkMatMulSkipSparse measures the same kernel on a post-ReLU-like
// input (half the entries exactly zero), where the skip wins.
func BenchmarkMatMulSkipSparse(b *testing.B) {
	m, n, out := dense256(1), dense256(2), tensor.New(256, 256)
	for i := range m.Data {
		if m.Data[i] < 0 {
			m.Data[i] = 0 // ReLU
		}
	}
	benchWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulSparseInto(out, m, n)
		}
	})
}

func BenchmarkMatMulT1_256(b *testing.B) {
	m, n, out := dense256(1), dense256(2), tensor.New(256, 256)
	benchWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulT1Into(out, m, n)
		}
	})
}

func BenchmarkMatMulT2_256(b *testing.B) {
	m, n, out := dense256(1), dense256(2), tensor.New(256, 256)
	benchWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.MatMulT2Into(out, m, n)
		}
	})
}

func BenchmarkGatherRows(b *testing.B) {
	src := dense256(1)
	rng := rand.New(rand.NewSource(3))
	idx := make([]int32, 4096)
	for i := range idx {
		idx[i] = int32(rng.Intn(src.Rows))
	}
	out := tensor.New(len(idx), src.Cols)
	benchWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.GatherRowsInto(out, src, idx)
		}
	})
}

func BenchmarkScatterAddRows(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	idx := make([]int32, 4096)
	for i := range idx {
		idx[i] = int32(rng.Intn(256))
	}
	src := tensor.New(len(idx), 256)
	for i := range src.Data {
		src.Data[i] = rng.NormFloat64()
	}
	dst := tensor.New(256, 256)
	benchWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			tensor.ScatterAddRows(dst, src, idx)
		}
	})
}

func BenchmarkSoftmaxRows(b *testing.B) {
	m := dense256(1)
	benchWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.SoftmaxRows()
		}
	})
}

func BenchmarkApply(b *testing.B) {
	m := dense256(1)
	relu := func(v float64) float64 {
		if v > 0 {
			return v
		}
		return 0
	}
	benchWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.Apply(relu)
		}
	})
}

func BenchmarkAddBias(b *testing.B) {
	m := dense256(1)
	bias := make([]float64, m.Cols)
	benchWorkers(b, func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			m.AddBias(bias)
		}
	})
}

// BenchmarkEpochParallel runs one full training epoch (sampling, cache,
// gather, forward, backward, Adam) at serial and parallel settings.
// allocs/op is the number to watch: the workspace arena and scratch
// reuse keep the steady-state epoch 24x below the seed's allocation
// rate (27,531 -> 1,134 allocs/op; see README "Performance").
func BenchmarkEpochParallel(b *testing.B) {
	cfg, err := backend.FromTemplate(backend.TemplatePyG, dataset.OgbnArxiv, model.SAGE, "rtx4090")
	if err != nil {
		b.Fatal(err)
	}
	cfg.Epochs = 1
	for _, w := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel4", 4}} {
		b.Run(w.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := backend.RunWith(cfg, backend.Options{
					EvalBatch: 512, Parallelism: w.workers,
				}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
