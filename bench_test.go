// Package main_test hosts the benchmark harness: one testing.B benchmark
// per table and figure of the paper's evaluation (regenerating its
// rows/series via internal/experiments), plus micro-benchmarks of the
// performance-critical substrates.
//
// Run everything with:
//
//	go test -bench=. -benchmem
//
// Experiment benchmarks execute at Quick fidelity per iteration; use
// cmd/benchtab -full for evaluation-default budgets.
package main_test

import (
	"io"
	"math/rand"
	"testing"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/estimator"
	"gnnavigator/internal/experiments"
	"gnnavigator/internal/model"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/tensor"
)

// --- experiment regeneration: one benchmark per table/figure ---------------

func BenchmarkFig1aPaGraphTradeoff(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig1a(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig1b2PGraphAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig1b(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5MinibatchEstimator(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig5(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable1Overall(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable1(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig6ParetoFronts(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunFig6(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2EstimatorValidation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunTable2(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// --- ablation benchmarks (design choices called out in DESIGN.md) ----------

func BenchmarkAblationPruning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationPruning(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCachePolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationCachePolicy(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPipeline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunAblationPipeline(io.Discard, experiments.Quick); err != nil {
			b.Fatal(err)
		}
	}
}

// --- substrate micro-benchmarks ---------------------------------------------

func BenchmarkNodeWiseSampling(b *testing.B) {
	d := dataset.MustLoad(dataset.Reddit2)
	s := &sample.NodeWise{Fanouts: []int{25, 10}}
	rng := rand.New(rand.NewSource(1))
	targets := d.TrainIdx[:1024]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb := s.Sample(rng, d.Graph, targets)
		if mb.NumVertices == 0 {
			b.Fatal("empty batch")
		}
	}
}

func BenchmarkSubgraphSampling(b *testing.B) {
	d := dataset.MustLoad(dataset.Reddit2)
	s := &sample.SubgraphWise{WalkLength: 12, Layers: 2}
	rng := rand.New(rand.NewSource(1))
	targets := d.TrainIdx[:512]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mb := s.Sample(rng, d.Graph, targets)
		if mb.NumVertices == 0 {
			b.Fatal("empty batch")
		}
	}
}

func BenchmarkSAGEForwardBackward(b *testing.B) {
	d := dataset.MustLoad(dataset.Reddit2)
	g := d.Graph
	s := &sample.NodeWise{Fanouts: []int{10, 5}}
	rng := rand.New(rand.NewSource(1))
	mb := s.Sample(rng, g, d.TrainIdx[:512])
	mdl, err := model.New(model.Config{
		Kind: model.SAGE, InDim: g.FeatDim, Hidden: 64, OutDim: g.NumClasses,
		Layers: 2, Seed: 1,
	})
	if err != nil {
		b.Fatal(err)
	}
	feats := model.GatherFeatures(g, mb.InputNodes)
	labels := make([]int32, len(mb.Targets))
	for i, v := range mb.Targets {
		labels[i] = g.Labels[v]
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		logits, err := mdl.Forward(mb, feats, true)
		if err != nil {
			b.Fatal(err)
		}
		grad := tensor.New(logits.Rows, logits.Cols)
		mdl.Backward(grad)
	}
}

func BenchmarkBackendEpoch(b *testing.B) {
	cfg, err := backend.FromTemplate(backend.TemplatePyG, dataset.Reddit2, model.SAGE, "rtx4090")
	if err != nil {
		b.Fatal(err)
	}
	cfg.Epochs = 1
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := backend.RunWith(cfg, backend.Options{SkipTraining: true}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEstimatorPredict(b *testing.B) {
	recs, err := estimator.CollectCached(dataset.OgbnArxiv, model.SAGE, "rtx4090", 12, 7, true)
	if err != nil {
		b.Fatal(err)
	}
	est, err := estimator.Train(recs)
	if err != nil {
		b.Fatal(err)
	}
	cfg := recs[0].Cfg
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := est.Predict(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatMul256(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	m := tensor.New(256, 256)
	n := tensor.New(256, 256)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
		n.Data[i] = rng.NormFloat64()
	}
	out := tensor.New(256, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, m, n)
	}
}
