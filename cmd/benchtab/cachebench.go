package main

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"runtime"
	"sync"
	"time"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/pipeline"
	"gnnavigator/internal/plan"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/tensor"
)

// CacheBenchEntry is one row of BENCH_cache.json.
//
//   - mode "lookup-update": the frozen map+list cache (one global mutex,
//     per-entry list nodes) vs the sharded array-backed plane (4 shards,
//     each owned by one worker) driving the same access stream with W
//     workers. Before timing, the harness verifies (a) single Cache ≡
//     MapReference bitwise (hits/misses/evictions) and (b) the sharded
//     plane's aggregate counters are identical at every worker count.
//   - mode "pipeline": end-to-end batches/sec through pipeline.Run with
//     Gather enabled, map-reference source vs cached source, at 1/2/4
//     tensor workers; batch digests compared before timing.
type CacheBenchEntry struct {
	Policy  string `json:"policy"`
	Mode    string `json:"mode"`
	Workers int    `json:"workers"`

	OpsPerSecMap     float64 `json:"ops_per_sec_map,omitempty"`
	OpsPerSecSharded float64 `json:"ops_per_sec_sharded,omitempty"`

	BatchesPerSecMap   float64 `json:"batches_per_sec_map,omitempty"`
	BatchesPerSecCache float64 `json:"batches_per_sec_cache,omitempty"`

	Speedup float64 `json:"speedup"`

	AllocsPerOpMap     float64 `json:"allocs_per_op_map,omitempty"`
	AllocsPerOpSharded float64 `json:"allocs_per_op_sharded,omitempty"`
}

// CachePrecisionEntry is one row of the compact-feature-plane section:
// the same LRU cache at the same capacity-in-rows driving the same
// access stream, with rows stored and transferred at one precision.
// Identical capacities mean identical miss sequences, so TransferRatio
// is exactly the payload-width ratio (0.5 for float16, 0.25 for int8).
// Before timing, the harness gates (a) cached gather ≡ host round trip
// bitwise (hit/miss self-consistency) and (b) every gathered element
// within the precision's documented error bound of the float32 value.
type CachePrecisionEntry struct {
	Precision     string `json:"precision"`
	RowBytes      int64  `json:"row_bytes"`
	TransferBytes int64  `json:"transfer_bytes"`
	// TransferRatio is TransferBytes over the float32 baseline's.
	TransferRatio float64 `json:"transfer_ratio"`
	// CapacityRows is how many rows a fixed float32-denominated budget
	// (ratio 0.2 of the feature array) holds at this precision.
	CapacityRows int `json:"capacity_rows_at_fixed_budget"`
	// WidenRowsPerSec is the fused quantize→dequantize→widen kernel's
	// single-thread throughput.
	WidenRowsPerSec float64 `json:"widen_rows_per_sec"`
	// MaxAbsErr is the largest |gathered − float32| seen on the stream.
	MaxAbsErr float64 `json:"max_abs_err"`
}

// CacheBenchReport is the whole BENCH_cache.json document.
type CacheBenchReport struct {
	GOMAXPROCS int                   `json:"gomaxprocs"`
	NumCPU     int                   `json:"num_cpu"`
	Dataset    string                `json:"dataset"`
	Shards     int                   `json:"shards"`
	Capacity   int                   `json:"capacity"`
	Entries    []CacheBenchEntry     `json:"entries"`
	Precisions []CachePrecisionEntry `json:"precisions"`
}

const cacheBenchShards = 4

var cacheBenchWorkerCounts = []int{1, 2, 4}

// cacheBenchPlan compiles the one-epoch plan the bench's access stream
// decodes from. Freq's admission order is mined from the same plan
// (plan.CountOrder), so "most frequently touched" is exact rather than
// the degree-order approximation this bench used to substitute.
func cacheBenchPlan(dsName string, g *graph.Graph, targets []int32) (*plan.Plan, error) {
	smp := &sample.NodeWise{Fanouts: []int{10, 5}}
	key := plan.KeyFor(dsName, false, smp, 512, 1, 1, true, targets)
	return plan.Compile(g, smp, key, targets)
}

// cacheAccessStream replays the plan's input-node lists — the exact
// access shape the pipeline's gather stage feeds the cache — wrapping
// around the epoch until `batches` batches are collected.
func cacheAccessStream(pl *plan.Plan, batches int) [][]int32 {
	var out [][]int32
	for len(out) < batches {
		for e := 0; e < pl.Epochs() && len(out) < batches; e++ {
			for i := 0; i < pl.BatchesPerEpoch() && len(out) < batches; i++ {
				nodes := pl.InputNodes(e, i)
				cp := make([]int32, len(nodes))
				copy(cp, nodes)
				out = append(out, cp)
			}
		}
	}
	return out
}

// mkKernel builds one policy's cache or its frozen reference. freqOrder
// is the plan-mined admission order the Freq policy prefills from.
func mkKernel(policy cache.Policy, capacity int, g *graph.Graph, freqOrder []int32, frozen bool) (cache.Kernel, error) {
	if frozen {
		if policy == cache.Freq {
			return cache.NewMapReferenceWithOrder(policy, capacity, freqOrder)
		}
		return cache.NewMapReference(policy, capacity, g)
	}
	if policy == cache.Freq {
		return cache.NewWithOrder(policy, capacity, g, freqOrder)
	}
	return cache.New(policy, capacity, g)
}

// driveSerial replays the whole stream against k, returning allocs/op
// (one op = one batch's lookup+update).
func driveSerial(k cache.Kernel, stream [][]int32) float64 {
	var miss []int32
	replay := func() {
		for _, batch := range stream {
			miss = k.LookupInto(miss[:0], batch)
			k.Update(miss)
		}
	}
	replay() // warm up scratch and slot tables
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	replay()
	runtime.ReadMemStats(&after)
	return float64(after.Mallocs-before.Mallocs) / float64(len(stream))
}

// verifyKernelEquality replays the stream on both kernels and compares
// miss lists and cumulative stats.
func verifyKernelEquality(a, b cache.Kernel, stream [][]int32) error {
	var ma, mb []int32
	for bi, batch := range stream {
		ma = a.LookupInto(ma[:0], batch)
		mb = b.LookupInto(mb[:0], batch)
		if len(ma) != len(mb) {
			return fmt.Errorf("batch %d: miss count %d vs %d", bi, len(ma), len(mb))
		}
		for i := range ma {
			if ma[i] != mb[i] {
				return fmt.Errorf("batch %d: miss[%d] %d vs %d", bi, i, ma[i], mb[i])
			}
		}
		if oa, ob := a.Update(ma), b.Update(mb); oa != ob {
			return fmt.Errorf("batch %d: update ops %d vs %d", bi, oa, ob)
		}
	}
	ha, sa, ua := a.Stats()
	hb, sb, ub := b.Stats()
	if ha != hb || sa != sb || ua != ub {
		return fmt.Errorf("stats (%d,%d,%d) vs (%d,%d,%d)", ha, sa, ua, hb, sb, ub)
	}
	return nil
}

// splitByShard carves each batch into per-shard sub-streams.
func splitByShard(s *cache.Shards, stream [][]int32) [][][]int32 {
	sub := make([][][]int32, s.NumShards())
	for _, batch := range stream {
		perShard := make([][]int32, s.NumShards())
		for _, v := range batch {
			i := s.ShardOf(v)
			perShard[i] = append(perShard[i], v)
		}
		for i := range perShard {
			sub[i] = append(sub[i], perShard[i])
		}
	}
	return sub
}

// mkShards builds the sharded plane for one policy.
func mkShards(policy cache.Policy, capacity int, g *graph.Graph, freqOrder []int32) (*cache.Shards, error) {
	if policy == cache.Freq {
		return cache.NewShardsWithOrder(policy, capacity, cacheBenchShards, g, freqOrder)
	}
	return cache.NewShards(policy, capacity, cacheBenchShards, g)
}

// timeSharded drives the sharded plane with W workers (each owning whole
// shards) for `rounds` replays of the stream, returning batches/sec and
// the aggregate counters for the equality check.
func timeSharded(policy cache.Policy, capacity int, g *graph.Graph, freqOrder []int32, sub [][][]int32, batches, workers, rounds int) (float64, [3]int64, error) {
	s, err := mkShards(policy, capacity, g, freqOrder)
	if err != nil {
		return 0, [3]int64{}, err
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var miss []int32
				for i := w; i < s.NumShards(); i += workers {
					shard := s.Shard(i)
					for _, batch := range sub[i] {
						miss = shard.LookupInto(miss[:0], batch)
						shard.Update(miss)
					}
				}
			}(w)
		}
		wg.Wait()
	}
	elapsed := time.Since(start).Seconds()
	h, m, u := s.Stats()
	return float64(rounds*batches) / elapsed, [3]int64{h, m, u}, nil
}

// timeMapShared drives one shared map+list cache with W workers splitting
// the same per-shard sub-streams — the old architecture's global-mutex
// contention, measured.
func timeMapShared(policy cache.Policy, capacity int, g *graph.Graph, freqOrder []int32, sub [][][]int32, batches, workers, rounds int) (float64, error) {
	k, err := mkKernel(policy, capacity, g, freqOrder, true)
	if err != nil {
		return 0, err
	}
	start := time.Now()
	for r := 0; r < rounds; r++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				var miss []int32
				for i := w; i < len(sub); i += workers {
					for _, batch := range sub[i] {
						miss = k.LookupInto(miss[:0], batch)
						k.Update(miss)
					}
				}
			}(w)
		}
		wg.Wait()
	}
	return float64(rounds*batches) / time.Since(start).Seconds(), nil
}

// pipelineDigest fingerprints a full pipeline run through a source.
func pipelineDigest(cfg pipeline.Config) (float64, int, error) {
	var sum float64
	n := 0
	err := pipeline.Run(cfg, func(b *pipeline.Batch) error {
		n++
		sum += float64(b.Miss) + float64(b.CacheOps)*1e3 + float64(b.TransferBytes)*1e-6
		if b.Feats != nil {
			for _, v := range b.Feats.Data {
				sum += v
			}
		}
		return nil
	}, nil)
	return sum, n, err
}

// runCacheBench measures the frozen map+list cache against the sharded
// array-backed feature plane and writes BENCH_cache.json.
func runCacheBench(outPath string) error {
	ds, err := dataset.Load(dataset.OgbnArxiv)
	if err != nil {
		return err
	}
	g := ds.Graph
	// The lookup+update microbench compares residency tracking only: the
	// frozen map+list never owned feature rows, so the array-backed side
	// is built over a topology-only view of the graph (no row storage,
	// no admission copies). The end-to-end pipeline half below uses the
	// full row-owning cached source.
	topo := *g
	topo.Features = nil
	capacity := g.NumVertices() / 5
	const batches = 48
	pl, err := cacheBenchPlan(ds.Name, g, ds.TrainIdx)
	if err != nil {
		return err
	}
	freqOrder := pl.CountOrder(g)
	stream := cacheAccessStream(pl, batches)

	report := CacheBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Dataset:    ds.Name,
		Shards:     cacheBenchShards,
		Capacity:   capacity,
	}

	for _, policy := range cache.Policies() {
		if policy == cache.Opt {
			// Script-driven: no frozen map+list counterpart exists (the
			// pre-refactor cache never had an offline-optimal mode), so
			// there is nothing to compare against here. Opt's cost is
			// covered by `-plan-bench` and the ablation table.
			continue
		}
		// Equality gate 1: single array-backed cache ≡ frozen reference.
		kNew, err := mkKernel(policy, capacity, &topo, freqOrder, false)
		if err != nil {
			return err
		}
		kRef, err := mkKernel(policy, capacity, &topo, freqOrder, true)
		if err != nil {
			return err
		}
		if err := verifyKernelEquality(kNew, kRef, stream); err != nil {
			return fmt.Errorf("%s: kernel equality: %w", policy, err)
		}
		allocsNew := driveSerial(kNew, stream)
		allocsRef := driveSerial(kRef, stream)

		// Equality gate 2: sharded counters identical at every W.
		sRef, err := mkShards(policy, capacity, &topo, freqOrder)
		if err != nil {
			return err
		}
		sub := splitByShard(sRef, stream)
		var want [3]int64
		for i, workers := range cacheBenchWorkerCounts {
			_, got, err := timeSharded(policy, capacity, &topo, freqOrder, sub, batches, workers, 1)
			if err != nil {
				return err
			}
			if i == 0 {
				want = got
			} else if got != want {
				return fmt.Errorf("%s: sharded counters diverge at %d workers: %v vs %v",
					policy, workers, got, want)
			}
		}

		// Timed: lookup+update throughput per worker count.
		rounds := 6
		for _, workers := range cacheBenchWorkerCounts {
			mapBps, err := timeMapShared(policy, capacity, &topo, freqOrder, sub, batches, workers, rounds)
			if err != nil {
				return err
			}
			shardBps, _, err := timeSharded(policy, capacity, &topo, freqOrder, sub, batches, workers, rounds)
			if err != nil {
				return err
			}
			e := CacheBenchEntry{
				Policy: string(policy), Mode: "lookup-update", Workers: workers,
				OpsPerSecMap: mapBps, OpsPerSecSharded: shardBps,
				Speedup:        shardBps / mapBps,
				AllocsPerOpMap: allocsRef, AllocsPerOpSharded: allocsNew,
			}
			report.Entries = append(report.Entries, e)
			fmt.Printf("%-8s lookup+update w=%d  map %9.1f op/s (%5.1f allocs)   sharded %9.1f op/s (%4.1f allocs)   %.2fx\n",
				policy, workers, mapBps, allocsRef, shardBps, allocsNew, e.Speedup)
		}

		// End-to-end: pipeline batches/sec, map source vs cached source.
		mkCfg := func(src cache.FeatureSource) pipeline.Config {
			return pipeline.Config{
				Graph:     g,
				Sampler:   &sample.NodeWise{Fanouts: []int{10, 5}},
				Source:    src,
				Seed:      1,
				Epochs:    2,
				BatchSize: 512,
				Targets:   ds.TrainIdx,
				Shuffle:   true,
				Gather:    true,
				Prefetch:  2,
			}
		}
		newSrc := func() (cache.FeatureSource, error) {
			k, err := mkKernel(policy, capacity, g, freqOrder, false)
			if err != nil {
				return nil, err
			}
			return cache.NewCachedSource(k.(*cache.Cache), g), nil
		}
		refSrc := func() (cache.FeatureSource, error) {
			k, err := mkKernel(policy, capacity, g, freqOrder, true)
			if err != nil {
				return nil, err
			}
			return cache.NewKernelSource(k, g), nil
		}
		// Digest equality before timing.
		srcA, err := newSrc()
		if err != nil {
			return err
		}
		srcB, err := refSrc()
		if err != nil {
			return err
		}
		dA, nA, err := pipelineDigest(mkCfg(srcA))
		if err != nil {
			return err
		}
		dB, nB, err := pipelineDigest(mkCfg(srcB))
		if err != nil {
			return err
		}
		if dA != dB || nA != nB {
			return fmt.Errorf("%s: pipeline digests diverge: (%v,%d) vs (%v,%d)", policy, dA, nA, dB, nB)
		}
		for _, workers := range cacheBenchWorkerCounts {
			restore := tensor.WithParallelism(workers)
			timeRun := func(mk func() (cache.FeatureSource, error)) (float64, error) {
				src, err := mk()
				if err != nil {
					return 0, err
				}
				start := time.Now()
				_, n, err := pipelineDigest(mkCfg(src))
				if err != nil {
					return 0, err
				}
				return float64(n) / time.Since(start).Seconds(), nil
			}
			mapBps, err := timeRun(refSrc)
			if err != nil {
				restore()
				return err
			}
			cacheBps, err := timeRun(newSrc)
			restore()
			if err != nil {
				return err
			}
			e := CacheBenchEntry{
				Policy: string(policy), Mode: "pipeline", Workers: workers,
				BatchesPerSecMap: mapBps, BatchesPerSecCache: cacheBps,
				Speedup: cacheBps / mapBps,
			}
			report.Entries = append(report.Entries, e)
			fmt.Printf("%-8s pipeline      w=%d  map %9.1f b/s              cached  %9.1f b/s              %.2fx\n",
				policy, workers, mapBps, cacheBps, e.Speedup)
		}
	}

	report.Precisions, err = runPrecisionBench(g, stream, capacity)
	if err != nil {
		return err
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s; gomaxprocs=%d numcpu=%d]\n", outPath, report.GOMAXPROCS, report.NumCPU)
	return nil
}

// checkPrecisionRow verifies one gathered row against its float32 host
// row at the precision's documented error bound: exact for float32,
// relative 2⁻¹¹ (absolute 2⁻²⁴ near zero) for float16, scale/2 per row
// for int8. Saturated float16 values (|x| > 65504) are exempt — the
// bound is the saturation distance, not a rounding error.
func checkPrecisionRow(prec cache.Precision, got []float64, host []float32) error {
	if len(host) == 0 {
		return nil
	}
	switch prec {
	case cache.Float16:
		for j, f := range host {
			x := math.Abs(float64(f))
			if x > 65504 {
				continue
			}
			tol := math.Max(x*0x1p-11, 0x1p-24)
			if d := math.Abs(got[j] - float64(f)); d > tol {
				return fmt.Errorf("col %d: |%v - %v| = %v > float16 tolerance %v", j, got[j], f, d, tol)
			}
		}
	case cache.Int8:
		lo, hi := host[0], host[0]
		for _, f := range host[1:] {
			if f < lo {
				lo = f
			}
			if f > hi {
				hi = f
			}
		}
		tol := float64(hi-lo)/510*(1+1e-6) + 1e-12
		for j, f := range host {
			if d := math.Abs(got[j] - float64(f)); d > tol {
				return fmt.Errorf("col %d: |%v - %v| = %v > int8 tolerance %v", j, got[j], f, d, tol)
			}
		}
	default:
		for j, f := range host {
			if got[j] != float64(f) {
				return fmt.Errorf("col %d: float32 not bitwise: %v != %v", j, got[j], float64(f))
			}
		}
	}
	return nil
}

// transferGates are the acceptance ceilings on each precision's
// transfer ratio vs the float32 baseline. With capacity held in rows,
// miss sequences are identical, so the measured ratios are exactly the
// payload-width ratios — comfortably under the gates even after the
// int8 qparams ride the metadata channel.
var transferGates = map[cache.Precision]float64{cache.Float16: 0.51, cache.Int8: 0.26}

// runPrecisionBench drives the same LRU cache + access stream at every
// precision: equality/tolerance gates first, then bytes-moved
// accounting and the quantize/dequantize micro-bench.
func runPrecisionBench(g *graph.Graph, stream [][]int32, capacity int) ([]CachePrecisionEntry, error) {
	var out []CachePrecisionEntry
	var baseline int64
	var dst, ref *tensor.Dense
	for _, prec := range cache.Precisions() {
		c, err := cache.NewAtPrecision(cache.LRU, capacity, g, prec)
		if err != nil {
			return nil, err
		}
		src := cache.NewCachedSource(c, g)
		// The frozen MapReference at the same policy/capacity sees the
		// same hit/miss sequence but gathers every row through the host
		// round trip: bitwise agreement proves rows served from quantized
		// slot storage equal freshly quantized ones.
		refK, err := cache.NewMapReference(cache.LRU, capacity, g)
		if err != nil {
			return nil, err
		}
		refSrc := cache.NewKernelSourceAt(refK, g, prec)
		var xfer int64
		var maxErr float64
		for bi, batch := range stream {
			var st cache.BatchStats
			dst, st = src.GatherInto(dst, batch)
			xfer += st.TransferBytes
			ref, _ = refSrc.GatherInto(ref, batch)
			for i, v := range batch {
				row, rrow, host := dst.Row(i), ref.Row(i), g.Feature(v)
				for j := range row {
					if row[j] != rrow[j] {
						return nil, fmt.Errorf("%s: batch %d vertex %d col %d: cached %v vs host round trip %v",
							prec, bi, v, j, row[j], rrow[j])
					}
					if d := math.Abs(row[j] - float64(host[j])); d > maxErr {
						maxErr = d
					}
				}
				if err := checkPrecisionRow(prec, row, host); err != nil {
					return nil, fmt.Errorf("%s: batch %d vertex %d: %w", prec, bi, v, err)
				}
			}
		}
		if prec == cache.Float32 {
			baseline = xfer
		}
		ratio := float64(xfer) / float64(baseline)
		if gate, ok := transferGates[prec]; ok && ratio > gate {
			return nil, fmt.Errorf("%s: transfer ratio %.4f exceeds gate %.2f", prec, ratio, gate)
		}

		// Quantize/dequantize micro-bench: the fused widen kernel over
		// every host row, single-threaded.
		buf := make([]float64, g.FeatDim)
		n := g.NumVertices()
		rows := 0
		start := time.Now()
		for time.Since(start) < 200*time.Millisecond {
			for v := 0; v < n; v++ {
				prec.WidenRow(buf, g.Feature(int32(v)))
			}
			rows += n
		}
		rps := float64(rows) / time.Since(start).Seconds()

		e := CachePrecisionEntry{
			Precision:       string(prec),
			RowBytes:        prec.RowBytes(g.FeatDim),
			TransferBytes:   xfer,
			TransferRatio:   ratio,
			CapacityRows:    int(prec.EffectiveCacheRows(0.2, float64(g.NumVertices()), g.FeatDim)),
			WidenRowsPerSec: rps,
			MaxAbsErr:       maxErr,
		}
		out = append(out, e)
		fmt.Printf("%-8s precision     row=%3dB  xfer %11d B (%.2fx)  cap@0.2 %6d rows  widen %9.0f rows/s  maxerr %.3g\n",
			prec, e.RowBytes, e.TransferBytes, e.TransferRatio, e.CapacityRows, e.WidenRowsPerSec, e.MaxAbsErr)
	}
	return out, nil
}
