package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/dse"
	"gnnavigator/internal/estimator"
	"gnnavigator/internal/model"
	"gnnavigator/internal/tensor"
)

// DSEBenchEntry is one workload row of BENCH_dse.json: wall seconds per
// fan-out width and speedup relative to the serial (1-worker) run. The
// outputs themselves are verified identical across widths before any
// number is reported, so rows differ in wall time only.
type DSEBenchEntry struct {
	Name    string          `json:"name"`
	Unit    string          `json:"unit"`
	Seconds map[int]float64 `json:"seconds_per_run"`
	Speedup map[int]float64 `json:"speedup_vs_serial"`
}

// DSEBenchReport is the whole BENCH_dse.json document.
type DSEBenchReport struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Workers    []int           `json:"workers"`
	Entries    []DSEBenchEntry `json:"entries"`
}

// runDSEBench measures the two fan-outs of the navigate path — Step-2
// design-space exploration (estimator.Predict per leaf config) and
// Step-1 calibration collection (one full backend run per probe config)
// — at several worker counts, and writes the serial-vs-parallel table.
// Tensor kernels are pinned serial for the duration so the fan-out width
// is the only axis being measured. quick shrinks the space, probe count
// and worker set for CI smoke runs.
func runDSEBench(outPath string, quick bool) error {
	workerSet := []int{1, 2, 4}
	probes := 6
	reps := 2
	if quick {
		workerSet = []int{1, 2}
		probes = 3
		reps = 1
	}

	prevProcs := tensor.Parallelism()
	tensor.SetParallelism(1)
	defer tensor.SetParallelism(prevProcs)

	// Step-1 style calibration for the estimator the explorer queries
	// (cached across benchtab invocations in the same process).
	recs, err := estimator.CollectCached(dataset.OgbnArxiv, model.SAGE, "rtx4090", 24, 7, true)
	if err != nil {
		return err
	}
	est, err := estimator.Train(recs)
	if err != nil {
		return err
	}

	base := backend.Config{
		Dataset:     dataset.Reddit2,
		Platform:    "rtx4090",
		Sampler:     backend.SamplerSAGE,
		BatchSize:   1024,
		Fanouts:     []int{25, 10},
		CachePolicy: cache.None,
		Model:       model.SAGE,
		Hidden:      64,
		Layers:      2,
		Epochs:      2,
		LR:          0.01,
		Seed:        9,
	}
	space := dse.DefaultSpace()
	spaceUnit := "default space"
	if quick {
		space = dse.Space{
			Samplers:    []backend.SamplerKind{backend.SamplerSAGE},
			BatchSizes:  []int{512, 1024},
			FanoutSets:  [][]int{{5, 5}, {10, 5}},
			CacheRatios: []float64{0, 0.15},
			Policies:    []cache.Policy{cache.Static},
			BiasRates:   []float64{0, 0.9},
			Hiddens:     []int{32},
		}
		spaceUnit = "tiny space"
	}

	report := DSEBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    workerSet,
	}

	// Step 2: Explore fan-out (the warm-up reference run also fills the
	// dataset-stats and baseline-accuracy caches off the clock).
	e, exploreRef, err := measureFanout("Explore", workerSet, reps,
		func(workers int) (*dse.Result, float64, error) {
			ex := &dse.Explorer{Est: est, Space: space, Workers: workers}
			start := time.Now()
			res, err := ex.Explore(base)
			return res, time.Since(start).Seconds(), err
		},
		func(a, b *dse.Result) bool { return reflect.DeepEqual(a, b) })
	if err != nil {
		return err
	}
	e.Unit = fmt.Sprintf("reddit2 %s, %d leaf evals", spaceUnit, exploreRef.Evaluated)
	finishEntry(&report, e, workerSet)

	// Step 1: Collect fan-out.
	cfgs := estimator.ProbeConfigs(dataset.OgbnArxiv, model.SAGE, "rtx4090", probes, 1234)
	c, _, err := measureFanout("Collect", workerSet, reps,
		func(workers int) ([]estimator.Record, float64, error) {
			start := time.Now()
			recs, err := estimator.CollectWith(cfgs, false, workers)
			return recs, time.Since(start).Seconds(), err
		},
		recordsEqual)
	if err != nil {
		return err
	}
	c.Unit = fmt.Sprintf("%d ogbn-arxiv probe runs, timing-only", probes)
	finishEntry(&report, c, workerSet)

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s; gomaxprocs=%d numcpu=%d]\n", outPath, report.GOMAXPROCS, report.NumCPU)
	return nil
}

// measureFanout runs one fan-out workload at each worker count under a
// shared protocol: a warm-up run at workers=1 whose output is the
// equivalence reference (returned for labeling), then best-of-reps
// timings per width, each output checked identical to the reference
// before its time counts. The caller fills Unit.
func measureFanout[T any](name string, workerSet []int, reps int,
	run func(workers int) (T, float64, error), eq func(a, b T) bool) (DSEBenchEntry, T, error) {
	e := DSEBenchEntry{Name: name, Seconds: map[int]float64{}, Speedup: map[int]float64{}}
	ref, _, err := run(1)
	if err != nil {
		return e, ref, err
	}
	for _, w := range workerSet {
		best := 0.0
		for rep := 0; rep < reps; rep++ {
			out, el, err := run(w)
			if err != nil {
				return e, ref, err
			}
			if !eq(out, ref) {
				return e, ref, fmt.Errorf("dse-bench: %s at %d workers diverged from serial", name, w)
			}
			if rep == 0 || el < best {
				best = el
			}
		}
		e.Seconds[w] = best
	}
	return e, ref, nil
}

// finishEntry derives the speedup column and prints the row.
func finishEntry(report *DSEBenchReport, e DSEBenchEntry, workerSet []int) {
	for _, w := range workerSet {
		e.Speedup[w] = e.Seconds[workerSet[0]] / e.Seconds[w]
	}
	report.Entries = append(report.Entries, e)
	fmt.Printf("%-10s", e.Name)
	for _, w := range workerSet {
		fmt.Printf("  w%d %.3gs (%.2fx)", w, e.Seconds[w], e.Speedup[w])
	}
	fmt.Println()
}

// recordsEqual compares calibration records modulo WallSec, the
// documented host-wall-clock exception to worker-count invariance.
func recordsEqual(a, b []estimator.Record) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		pa, pb := *a[i].Perf, *b[i].Perf
		pa.WallSec, pb.WallSec = 0, 0
		if !reflect.DeepEqual(a[i].Cfg, b[i].Cfg) || a[i].Stats != b[i].Stats ||
			!reflect.DeepEqual(pa, pb) {
			return false
		}
	}
	return true
}
