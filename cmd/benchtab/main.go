// Command benchtab regenerates the paper's tables and figures on the Go
// reproduction stack and prints them as text.
//
// Example:
//
//	benchtab -exp table1            # one experiment
//	benchtab -exp all -full         # everything at full fidelity
//
// Experiments: fig1a, fig1b, fig5, fig6, table1, table2,
// ablation-pruning, ablation-cache, ablation-pipeline, all.
//
// Perf tooling: -parallel-bench, -pipeline-bench, -sample-bench and
// -cache-bench write the BENCH_*.json trajectory files;
// -cpuprofile/-memprofile capture pprof profiles of whichever mode runs.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"gnnavigator/internal/experiments"
	"gnnavigator/internal/pipeline"
	"gnnavigator/internal/tensor"
)

type runner func(io.Writer, experiments.Fidelity) error

func wrap[T any](f func(io.Writer, experiments.Fidelity) (T, error)) runner {
	return func(w io.Writer, fi experiments.Fidelity) error {
		_, err := f(w, fi)
		return err
	}
}

func main() {
	log.SetFlags(0)
	var (
		exp      = flag.String("exp", "all", "experiment to regenerate")
		full     = flag.Bool("full", false, "full fidelity (slower, evaluation defaults)")
		procs    = flag.Int("procs", 0, "tensor kernel workers (0 = GOMAXPROCS / $GNNAV_PROCS; 1 = serial)")
		prefetch = flag.Int("prefetch", 0, "minibatch pipeline depth (0 = $GNNAV_PREFETCH or inline; results identical at any depth)")
		parBench = flag.Bool("parallel-bench", false, "measure serial vs 2/4/8-worker speedups and write BENCH_parallel.json")
		parOut   = flag.String("parallel-out", "BENCH_parallel.json", "output path for -parallel-bench")
		pipBench = flag.Bool("pipeline-bench", false, "measure serial vs prefetch-1/2/4 epoch times and write BENCH_pipeline.json")
		pipOut   = flag.String("pipeline-out", "BENCH_pipeline.json", "output path for -pipeline-bench")
		smpBench = flag.Bool("sample-bench", false, "measure map-based vs frontier-table sampler throughput and write BENCH_sample.json")
		smpOut   = flag.String("sample-out", "BENCH_sample.json", "output path for -sample-bench")
		cchBench = flag.Bool("cache-bench", false, "measure map+list vs sharded array-backed cache throughput and write BENCH_cache.json")
		cchOut   = flag.String("cache-out", "BENCH_cache.json", "output path for -cache-bench")
		dseBench = flag.Bool("dse-bench", false, "measure serial vs parallel design-space exploration + calibration collection and write BENCH_dse.json")
		dseOut   = flag.String("dse-out", "BENCH_dse.json", "output path for -dse-bench")
		dseQuick = flag.Bool("dse-quick", false, "shrink -dse-bench to a tiny space and {1,2} workers (CI smoke)")
		plnBench = flag.Bool("plan-bench", false, "measure live sampling vs compiled-plan replay and plan-shared calibration collection, writing BENCH_plan.json")
		plnOut   = flag.String("plan-out", "BENCH_plan.json", "output path for -plan-bench")
		plnQuick = flag.Bool("plan-quick", false, "shrink -plan-bench to one epoch and fewer probes (CI smoke)")
		mltBench = flag.Bool("multi-bench", false, "measure 1/2/4-device training throughput + halo/all-reduce traffic (bitwise-gated against K=1) and write BENCH_multi.json")
		mltOut   = flag.String("multi-out", "BENCH_multi.json", "output path for -multi-bench")
		mltQuick = flag.Bool("multi-quick", false, "shrink -multi-bench to one epoch and one timing rep (CI smoke)")
		svBench  = flag.Bool("serve-bench", false, "drive the HTTP serving stack with uniform + Zipf closed-loop load and write BENCH_serve.json")
		svOut    = flag.String("serve-out", "BENCH_serve.json", "output path for -serve-bench")
		svModel  = flag.String("serve-model", "", "model file for -serve-bench (trained and saved there if absent; empty = throwaway temp)")
		svURL    = flag.String("serve-url", "", "drive a running gnnserve at this base URL instead of an in-process server (with -serve-bench)")
		svQuick  = flag.Bool("serve-quick", false, "shrink -serve-bench's client fleet (CI smoke)")
		cpuProf  = flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
		memProf  = flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
		timeout  = flag.Duration("timeout", 0, "wall-clock watchdog (0 = none): exit with status 124 if the run exceeds this, so a hang fails a build instead of wedging it")
	)
	flag.Parse()

	if *timeout > 0 {
		// A watchdog rather than a context: benchtab's experiment drivers
		// predate cancellation plumbing, and for CI the requirement is only
		// that a wedged run dies loudly within the budget.
		time.AfterFunc(*timeout, func() {
			fmt.Fprintf(os.Stderr, "benchtab: timeout after %v\n", *timeout)
			os.Exit(124)
		})
	}

	if *procs > 0 {
		tensor.SetParallelism(*procs)
	}
	// != 0 so -prefetch -1 forces the inline loop even when
	// GNNAV_PREFETCH is set (SetDefaultPrefetch clamps negatives to 0).
	if *prefetch != 0 {
		pipeline.SetDefaultPrefetch(*prefetch)
	}

	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Fatalf("cpuprofile: %v", err)
		}
	}
	err := dispatch(*exp, *full, benchModes{
		parBench: *parBench, parOut: *parOut,
		pipBench: *pipBench, pipOut: *pipOut,
		smpBench: *smpBench, smpOut: *smpOut,
		cchBench: *cchBench, cchOut: *cchOut,
		dseBench: *dseBench, dseOut: *dseOut, dseQuick: *dseQuick,
		plnBench: *plnBench, plnOut: *plnOut, plnQuick: *plnQuick,
		mltBench: *mltBench, mltOut: *mltOut, mltQuick: *mltQuick,
		svBench: *svBench, svOut: *svOut, svModel: *svModel,
		svURL: *svURL, svQuick: *svQuick,
	})
	if *cpuProf != "" {
		pprof.StopCPUProfile()
	}
	if *memProf != "" {
		f, ferr := os.Create(*memProf)
		if ferr != nil {
			log.Fatalf("memprofile: %v", ferr)
		}
		runtime.GC() // settle heap so the profile shows retained memory
		if werr := pprof.WriteHeapProfile(f); werr != nil {
			log.Fatalf("memprofile: %v", werr)
		}
		f.Close()
	}
	if err != nil {
		log.Fatal(err)
	}
}

// benchModes bundles the perf-tooling flags so dispatch doesn't grow a
// positional parameter triple per bench mode.
type benchModes struct {
	parBench bool
	parOut   string
	pipBench bool
	pipOut   string
	smpBench bool
	smpOut   string
	cchBench bool
	cchOut   string
	dseBench bool
	dseOut   string
	dseQuick bool
	plnBench bool
	plnOut   string
	plnQuick bool
	mltBench bool
	mltOut   string
	mltQuick bool
	svBench  bool
	svOut    string
	svModel  string
	svURL    string
	svQuick  bool
}

// dispatch runs exactly one benchtab mode; profiles (if any) bracket it.
func dispatch(exp string, full bool, m benchModes) error {
	if m.parBench {
		if err := runParallelBench(m.parOut); err != nil {
			return fmt.Errorf("parallel-bench: %w", err)
		}
		return nil
	}
	if m.pipBench {
		if err := runPipelineBench(m.pipOut); err != nil {
			return fmt.Errorf("pipeline-bench: %w", err)
		}
		return nil
	}
	if m.smpBench {
		if err := runSampleBench(m.smpOut); err != nil {
			return fmt.Errorf("sample-bench: %w", err)
		}
		return nil
	}
	if m.cchBench {
		if err := runCacheBench(m.cchOut); err != nil {
			return fmt.Errorf("cache-bench: %w", err)
		}
		return nil
	}
	if m.dseBench {
		if err := runDSEBench(m.dseOut, m.dseQuick); err != nil {
			return fmt.Errorf("dse-bench: %w", err)
		}
		return nil
	}
	if m.plnBench {
		if err := runPlanBench(m.plnOut, m.plnQuick); err != nil {
			return fmt.Errorf("plan-bench: %w", err)
		}
		return nil
	}
	if m.mltBench {
		if err := runMultiBench(m.mltOut, m.mltQuick); err != nil {
			return fmt.Errorf("multi-bench: %w", err)
		}
		return nil
	}
	if m.svBench {
		if err := runServeBench(m.svOut, m.svModel, m.svURL, m.svQuick); err != nil {
			return fmt.Errorf("serve-bench: %w", err)
		}
		return nil
	}

	fidelity := experiments.Quick
	if full {
		fidelity = experiments.Full
	}
	all := []struct {
		name string
		run  runner
	}{
		{"fig1a", wrap(experiments.RunFig1a)},
		{"fig1b", wrap(experiments.RunFig1b)},
		{"fig5", wrap(experiments.RunFig5)},
		{"table1", wrap(experiments.RunTable1)},
		{"fig6", wrap(experiments.RunFig6)},
		{"table2", wrap(experiments.RunTable2)},
		{"ablation-pruning", wrap(experiments.RunAblationPruning)},
		{"ablation-cache", wrap(experiments.RunAblationCachePolicy)},
		{"ablation-pipeline", wrap(experiments.RunAblationPipeline)},
	}

	ran := false
	for _, e := range all {
		if exp != "all" && exp != e.name {
			continue
		}
		ran = true
		start := time.Now()
		if err := e.run(os.Stdout, fidelity); err != nil {
			return fmt.Errorf("%s: %w", e.name, err)
		}
		fmt.Printf("[%s done in %.1fs]\n\n", e.name, time.Since(start).Seconds())
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	return nil
}
