package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/model"
)

// MultiPartitionRow is one partitioner's quality on the bench graph at
// the bench device count: the edge cut both strategies trade off against
// balance, and the halo set the cut induces.
type MultiPartitionRow struct {
	Strategy      string  `json:"strategy"`
	Devices       int     `json:"devices"`
	CutEdges      int64   `json:"cut_edges"`
	VertexBalance float64 `json:"vertex_balance"`
	EdgeBalance   float64 `json:"edge_balance"`
	HaloVertices  int     `json:"halo_vertices"`
}

// MultiDeviceRow is one device count's measured training throughput and
// per-epoch communication volumes. The K > 1 rows only exist because
// they passed the bitwise gate against K=1 first.
type MultiDeviceRow struct {
	Devices                int     `json:"devices"`
	BatchesPerSec          float64 `json:"batches_per_sec"`
	HaloBytesPerEpoch      int64   `json:"halo_bytes_per_epoch"`
	AllReduceBytesPerEpoch int64   `json:"all_reduce_bytes_per_epoch"`
	SimEpochSec            float64 `json:"sim_epoch_sec"`
}

// MultiBenchReport is the whole BENCH_multi.json document.
type MultiBenchReport struct {
	GOMAXPROCS int                 `json:"gomaxprocs"`
	NumCPU     int                 `json:"num_cpu"`
	Quick      bool                `json:"quick"`
	Dataset    string              `json:"dataset"`
	Platform   string              `json:"platform"`
	Epochs     int                 `json:"epochs"`
	Partitions []MultiPartitionRow `json:"partitions"`
	Rows       []MultiDeviceRow    `json:"rows"`
}

// runMultiBench measures multi-device scale-out — graph partitioning
// quality, K=1/2/4 training throughput, and per-epoch halo/all-reduce
// traffic — and writes BENCH_multi.json. Every K > 1 run is gated on
// bitwise identity with the K=1 reference (accuracy history, hit rate,
// transfer counters) before any number is reported: scale-out is a
// simulated-time optimisation, never a result change. quick shrinks
// epochs and timing reps for CI smoke runs.
func runMultiBench(outPath string, quick bool) error {
	epochs, reps := 2, 2
	if quick {
		epochs, reps = 1, 1
	}
	report := MultiBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      quick,
		Dataset:    dataset.OgbnArxiv,
		Platform:   "a100x4",
		Epochs:     epochs,
	}

	// Partitioner quality at the largest bench device count.
	ds, err := dataset.Load(report.Dataset)
	if err != nil {
		return err
	}
	for _, strat := range graph.PartitionStrategies() {
		part, err := graph.PartitionGraph(ds.Graph, 4, strat)
		if err != nil {
			return err
		}
		halo := 0
		for _, h := range part.Halos {
			halo += len(h)
		}
		report.Partitions = append(report.Partitions, MultiPartitionRow{
			Strategy:      string(strat),
			Devices:       4,
			CutEdges:      part.CutEdges,
			VertexBalance: part.VertexBalance(),
			EdgeBalance:   part.EdgeBalance(),
			HaloVertices:  halo,
		})
		fmt.Printf("partition %-6s k=4  cut %8d edges   balance v=%.2f e=%.2f   halo %d vertices\n",
			strat, part.CutEdges, part.VertexBalance(), part.EdgeBalance(), halo)
	}

	cfg := backend.Config{
		Dataset:     report.Dataset,
		Platform:    report.Platform,
		Model:       model.SAGE,
		Hidden:      32,
		Layers:      2,
		Epochs:      epochs,
		LR:          0.01,
		Seed:        7,
		Sampler:     backend.SamplerSAGE,
		BatchSize:   512,
		Fanouts:     []int{10, 5},
		CacheRatio:  0.2,
		CachePolicy: cache.Static,
	}
	if err := cfg.Validate(); err != nil {
		return err
	}

	run := func(devices int) (*backend.Perf, error) {
		c := cfg
		c.Devices = devices
		return backend.RunWith(c, backend.Options{EvalBatch: 512})
	}

	ref, err := run(1)
	if err != nil {
		return err
	}
	for _, k := range []int{1, 2, 4} {
		perf := ref
		if k > 1 {
			if perf, err = run(k); err != nil {
				return err
			}
			// The bitwise gate: scale-out must not move a single training
			// outcome or feature-plane counter.
			type gate struct {
				Acc    float64
				Hist   []float64
				Hit    float64
				Bytes  int64
				Iters  int
				MeanVi float64
				PeakVi int
			}
			g := func(p *backend.Perf) gate {
				return gate{p.Accuracy, p.AccuracyHistory, p.HitRate,
					p.TransferredBytes, p.Iterations, p.MeanBatchSize, p.PeakBatchSize}
			}
			if !reflect.DeepEqual(g(perf), g(ref)) {
				return fmt.Errorf("multi-bench: k=%d diverged from k=1: %+v vs %+v", k, g(perf), g(ref))
			}
		}
		best := 0.0
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			p, err := run(k)
			if err != nil {
				return err
			}
			if bps := float64(p.Iterations) / time.Since(start).Seconds(); bps > best {
				best = bps
			}
		}
		row := MultiDeviceRow{
			Devices:                k,
			BatchesPerSec:          best,
			HaloBytesPerEpoch:      perf.HaloBytes / int64(epochs),
			AllReduceBytesPerEpoch: perf.AllReduceBytes / int64(epochs),
			SimEpochSec:            perf.TimeSec,
		}
		report.Rows = append(report.Rows, row)
		fmt.Printf("devices %d  %7.1f b/s   halo %8.2f MB/epoch   all-reduce %8.2f MB/epoch   sim %.4fs/epoch\n",
			k, row.BatchesPerSec, float64(row.HaloBytesPerEpoch)/1e6,
			float64(row.AllReduceBytesPerEpoch)/1e6, row.SimEpochSec)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s; gomaxprocs=%d numcpu=%d]\n", outPath, report.GOMAXPROCS, report.NumCPU)
	return nil
}
