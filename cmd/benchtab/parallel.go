package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/model"
	"gnnavigator/internal/tensor"
)

// parallelWorkerCounts is the speedup-table column set.
var parallelWorkerCounts = []int{1, 2, 4, 8}

// ParallelBenchEntry is one row of BENCH_parallel.json: per-worker-count
// wall time and the speedup relative to serial.
type ParallelBenchEntry struct {
	Name    string          `json:"name"`
	Unit    string          `json:"unit"` // what one op is
	Seconds map[int]float64 `json:"seconds_per_op"`
	Speedup map[int]float64 `json:"speedup_vs_serial"`
}

// ParallelBenchReport is the whole BENCH_parallel.json document.
type ParallelBenchReport struct {
	GOMAXPROCS int                  `json:"gomaxprocs"`
	NumCPU     int                  `json:"num_cpu"`
	Workers    []int                `json:"workers"`
	Entries    []ParallelBenchEntry `json:"entries"`
}

// timeOp measures seconds/op of fn, autoscaling iterations to ~200ms.
func timeOp(fn func()) float64 {
	fn() // warm up (pool spin-up, page faults)
	iters := 1
	for {
		start := time.Now()
		for i := 0; i < iters; i++ {
			fn()
		}
		el := time.Since(start)
		if el > 200*time.Millisecond || iters > 1<<20 {
			return el.Seconds() / float64(iters)
		}
		iters *= 2
	}
}

// runParallelBench produces the serial-vs-N-workers speedup table for the
// sharded kernels plus a full training epoch, writes it to outPath, and
// prints it. Kernel shapes follow the acceptance benchmarks (256³).
func runParallelBench(outPath string) error {
	prev := tensor.Parallelism()
	defer tensor.SetParallelism(prev)

	rng := rand.New(rand.NewSource(1))
	mk := func() *tensor.Dense {
		m := tensor.New(256, 256)
		for i := range m.Data {
			m.Data[i] = rng.NormFloat64()
		}
		return m
	}
	a, b, out := mk(), mk(), tensor.New(256, 256)
	idx := make([]int32, 4096)
	for i := range idx {
		idx[i] = int32(rng.Intn(256))
	}
	gsrc := tensor.New(len(idx), 256)
	for i := range gsrc.Data {
		gsrc.Data[i] = rng.NormFloat64()
	}
	gout := tensor.New(len(idx), 256)

	epochCfg, err := backend.FromTemplate(backend.TemplatePyG, dataset.OgbnArxiv, model.SAGE, "rtx4090")
	if err != nil {
		return err
	}
	epochCfg.Epochs = 1

	cases := []struct {
		name, unit string
		fn         func()
	}{
		{"MatMulInto", "256x256x256 matmul", func() { tensor.MatMulInto(out, a, b) }},
		{"MatMulT1Into", "256x256x256 matmul", func() { tensor.MatMulT1Into(out, a, b) }},
		{"MatMulT2Into", "256x256x256 matmul", func() { tensor.MatMulT2Into(out, a, b) }},
		{"GatherRowsInto", "4096 rows x 256", func() { tensor.GatherRowsInto(gout, a, idx) }},
		{"ScatterAddRows", "4096 rows x 256", func() { tensor.ScatterAddRows(out, gsrc, idx) }},
		{"SoftmaxRows", "256x256", func() { a.SoftmaxRows() }},
		{"TrainEpoch", "ogbn-arxiv SAGE epoch", func() {
			if _, err := backend.RunWith(epochCfg, backend.Options{EvalBatch: 512}); err != nil {
				panic(err)
			}
		}},
	}

	report := ParallelBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Workers:    parallelWorkerCounts,
	}
	for _, c := range cases {
		e := ParallelBenchEntry{
			Name:    c.name,
			Unit:    c.unit,
			Seconds: map[int]float64{},
			Speedup: map[int]float64{},
		}
		for _, w := range parallelWorkerCounts {
			tensor.SetParallelism(w)
			e.Seconds[w] = timeOp(c.fn)
		}
		for _, w := range parallelWorkerCounts {
			e.Speedup[w] = e.Seconds[1] / e.Seconds[w]
		}
		report.Entries = append(report.Entries, e)
		fmt.Printf("%-16s", c.name)
		for _, w := range parallelWorkerCounts {
			fmt.Printf("  %dw %.3gms (%.2fx)", w, 1e3*e.Seconds[w], e.Speedup[w])
		}
		fmt.Println()
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s; gomaxprocs=%d numcpu=%d]\n", outPath, report.GOMAXPROCS, report.NumCPU)
	return nil
}
