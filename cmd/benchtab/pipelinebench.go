package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"time"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/model"
)

// pipelinePrefetchDepths is the BENCH_pipeline.json column set; -1 is the
// inline serial epoch loop, the reference row.
var pipelinePrefetchDepths = []int{-1, 1, 2, 4}

// PipelineBenchEntry is one workload row of BENCH_pipeline.json:
// per-prefetch-depth epoch wall time and speedup relative to the inline
// loop. Outputs are bitwise-identical across depths (the equivalence
// tests enforce it), so rows differ in wall time only.
type PipelineBenchEntry struct {
	Name    string          `json:"name"`
	Unit    string          `json:"unit"`
	Seconds map[int]float64 `json:"seconds_per_epoch"` // key -1 = inline
	Speedup map[int]float64 `json:"speedup_vs_serial"`
}

// PipelineBenchReport is the whole BENCH_pipeline.json document.
type PipelineBenchReport struct {
	GOMAXPROCS int                  `json:"gomaxprocs"`
	NumCPU     int                  `json:"num_cpu"`
	Depths     []int                `json:"prefetch_depths"`
	Entries    []PipelineBenchEntry `json:"entries"`
}

// runPipelineBench measures a full training epoch (sampling, cache,
// gather, forward/backward, eval) at each prefetch depth and writes the
// serial-vs-pipelined table. Two workloads: a cache-free PyG-style epoch
// (pure sample/gather vs compute overlap) and a FIFO-cached one (the
// lookup stage also runs ahead).
func runPipelineBench(outPath string) error {
	mkCfg := func(cached bool) (backend.Config, error) {
		cfg, err := backend.FromTemplate(backend.TemplatePyG, dataset.OgbnArxiv, model.SAGE, "rtx4090")
		if err != nil {
			return cfg, err
		}
		cfg.Epochs = 1
		if cached {
			cfg.CacheRatio = 0.2
			cfg.CachePolicy = cache.FIFO
		}
		return cfg, cfg.Validate()
	}

	report := PipelineBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Depths:     pipelinePrefetchDepths,
	}
	for _, c := range []struct {
		name, unit string
		cached     bool
	}{
		{"TrainEpoch", "ogbn-arxiv SAGE epoch, no cache", false},
		{"TrainEpochFIFO", "ogbn-arxiv SAGE epoch, fifo cache r=0.2", true},
	} {
		cfg, err := mkCfg(c.cached)
		if err != nil {
			return err
		}
		e := PipelineBenchEntry{
			Name:    c.name,
			Unit:    c.unit,
			Seconds: map[int]float64{},
			Speedup: map[int]float64{},
		}
		for _, depth := range pipelinePrefetchDepths {
			opts := backend.Options{EvalBatch: 512, Prefetch: depth}
			// One warm-up epoch (worker-pool spin-up, page faults), then
			// time the best of two measured epochs to damp scheduler noise.
			if _, err := backend.RunWith(cfg, opts); err != nil {
				return err
			}
			best := 0.0
			for rep := 0; rep < 2; rep++ {
				start := time.Now()
				if _, err := backend.RunWith(cfg, opts); err != nil {
					return err
				}
				if el := time.Since(start).Seconds(); rep == 0 || el < best {
					best = el
				}
			}
			e.Seconds[depth] = best
		}
		for _, depth := range pipelinePrefetchDepths {
			e.Speedup[depth] = e.Seconds[-1] / e.Seconds[depth]
		}
		report.Entries = append(report.Entries, e)
		fmt.Printf("%-16s", c.name)
		for _, depth := range pipelinePrefetchDepths {
			label := fmt.Sprintf("p%d", depth)
			if depth < 0 {
				label = "serial"
			}
			fmt.Printf("  %s %.3gs (%.2fx)", label, e.Seconds[depth], e.Speedup[depth])
		}
		fmt.Println()
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s; gomaxprocs=%d numcpu=%d]\n", outPath, report.GOMAXPROCS, report.NumCPU)
	return nil
}
