package main

import (
	"encoding/json"
	"fmt"
	"os"
	"reflect"
	"runtime"
	"time"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/estimator"
	"gnnavigator/internal/model"
	"gnnavigator/internal/pipeline"
	"gnnavigator/internal/plan"
	"gnnavigator/internal/sample"
)

// PlanReplayBench is the pipeline half of BENCH_plan.json: end-to-end
// batches/sec with the sampler running live vs replaying a compiled
// epoch plan. The two runs' batch digests are verified identical before
// any number is reported — replay is a pure wall-clock optimisation.
type PlanReplayBench struct {
	Dataset        string  `json:"dataset"`
	Epochs         int     `json:"epochs"`
	Batches        int     `json:"batches"`
	PlanBytes      int64   `json:"plan_bytes"`
	CompileSec     float64 `json:"compile_sec"`
	LiveBatchSec   float64 `json:"batches_per_sec_live"`
	ReplayBatchSec float64 `json:"batches_per_sec_replay"`
	Speedup        float64 `json:"speedup"`
}

// PlanShareBench is the calibration half: wall time of a serial probe
// fan-out with each probe re-sampling live vs all probes fetching their
// epoch plan from the shared single-flight plan cache. The probe set is
// built as UniquePlans sampling cores crossed with cache-policy
// variants, so the cache-counter proof is exact: Compiles must equal
// UniquePlans and CacheHits must equal Probes - UniquePlans, or the
// bench fails.
type PlanShareBench struct {
	Dataset     string  `json:"dataset"`
	Probes      int     `json:"probes"`
	UniquePlans int     `json:"unique_plans"`
	Compiles    int64   `json:"plan_compiles"`
	CacheHits   int64   `json:"plan_cache_hits"`
	NoShareSec  float64 `json:"collect_sec_no_share"`
	ShareSec    float64 `json:"collect_sec_shared"`
	Speedup     float64 `json:"speedup"`
}

// PlanBenchReport is the whole BENCH_plan.json document.
type PlanBenchReport struct {
	GOMAXPROCS int             `json:"gomaxprocs"`
	NumCPU     int             `json:"num_cpu"`
	Quick      bool            `json:"quick"`
	Replay     PlanReplayBench `json:"replay"`
	Sharing    PlanShareBench  `json:"sharing"`
}

// runPlanBench measures what the epoch-plan compiler buys — sampler-free
// pipeline replay and compile-once calibration sharing — and writes
// BENCH_plan.json. quick shrinks epochs, probe count and timing reps
// for CI smoke runs.
func runPlanBench(outPath string, quick bool) error {
	epochs, reps, coreCount := 3, 2, 2
	if quick {
		epochs, reps, coreCount = 1, 1, 1
	}

	report := PlanBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      quick,
	}

	replay, err := benchPlanReplay(epochs, reps)
	if err != nil {
		return err
	}
	report.Replay = replay

	sharing, err := benchPlanSharing(coreCount)
	if err != nil {
		return err
	}
	report.Sharing = sharing

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s; gomaxprocs=%d numcpu=%d]\n", outPath, report.GOMAXPROCS, report.NumCPU)
	return nil
}

// benchPlanReplay times live sampling vs plan replay through the full
// gather pipeline after a digest-equality gate.
func benchPlanReplay(epochs, reps int) (PlanReplayBench, error) {
	var out PlanReplayBench
	ds, err := dataset.Load(dataset.OgbnArxiv)
	if err != nil {
		return out, err
	}
	smp := &sample.NodeWise{Fanouts: []int{10, 5}}
	mkCfg := func(pl *plan.Plan) pipeline.Config {
		return pipeline.Config{
			Graph:     ds.Graph,
			Sampler:   smp,
			Plan:      pl,
			Seed:      1,
			Epochs:    epochs,
			BatchSize: 512,
			Targets:   ds.TrainIdx,
			Shuffle:   true,
			Gather:    true,
			Prefetch:  2,
		}
	}

	// Compile (plan.Compile, not plan.Shared: the sharing half below
	// owns the process-wide cache counters and resets them itself).
	key := plan.KeyFor(ds.Name, false, smp, 512, 1, epochs, true, ds.TrainIdx)
	start := time.Now()
	pl, err := plan.Compile(ds.Graph, smp, key, ds.TrainIdx)
	if err != nil {
		return out, err
	}
	out.CompileSec = time.Since(start).Seconds()
	out.Dataset = ds.Name
	out.Epochs = epochs
	out.PlanBytes = pl.Bytes()

	// Equality gate: replay must be bitwise-identical to live sampling.
	dLive, nLive, err := pipelineDigest(mkCfg(nil))
	if err != nil {
		return out, err
	}
	dPlan, nPlan, err := pipelineDigest(mkCfg(pl))
	if err != nil {
		return out, err
	}
	if dLive != dPlan || nLive != nPlan {
		return out, fmt.Errorf("plan-bench: replay digest diverged from live sampling: (%v,%d) vs (%v,%d)",
			dPlan, nPlan, dLive, nLive)
	}
	out.Batches = nLive

	timeRun := func(pl *plan.Plan) (float64, error) {
		best := 0.0
		for rep := 0; rep < reps; rep++ {
			start := time.Now()
			_, n, err := pipelineDigest(mkCfg(pl))
			if err != nil {
				return 0, err
			}
			bps := float64(n) / time.Since(start).Seconds()
			if bps > best {
				best = bps
			}
		}
		return best, nil
	}
	if out.LiveBatchSec, err = timeRun(nil); err != nil {
		return out, err
	}
	if out.ReplayBatchSec, err = timeRun(pl); err != nil {
		return out, err
	}
	out.Speedup = out.ReplayBatchSec / out.LiveBatchSec
	fmt.Printf("replay   %s e=%d  live %7.1f b/s   replay %7.1f b/s   %.2fx  (compile %.3gs, plan %.1f MB)\n",
		out.Dataset, out.Epochs, out.LiveBatchSec, out.ReplayBatchSec, out.Speedup,
		out.CompileSec, float64(out.PlanBytes)/1e6)
	return out, nil
}

// benchPlanSharing builds coreCount sampling cores × 4 cache-policy
// variants and times the serial calibration fan-out without plan sharing
// (each probe re-samples live) vs with it (estimator.Collect's
// compile-once path). Record equality and the exact cache-counter
// accounting gate the timings.
func benchPlanSharing(coreCount int) (PlanShareBench, error) {
	var out PlanShareBench
	out.Dataset = dataset.OgbnArxiv

	// One probe row per (core, policy): every probe in a core samples the
	// identical stream, so the shared path must compile exactly one plan
	// per core and serve the rest from cache.
	type variant struct {
		policy cache.Policy
		ratio  float64
	}
	variants := []variant{
		{cache.None, 0}, {cache.Static, 0.2}, {cache.FIFO, 0.2}, {cache.LRU, 0.2},
	}
	var cfgs []backend.Config
	for core := 0; core < coreCount; core++ {
		for _, v := range variants {
			cfg := backend.Config{
				Dataset:  out.Dataset,
				Platform: "rtx4090",
				Model:    model.SAGE,
				Hidden:   32, Layers: 2, Heads: 2,
				Epochs: 2, LR: 0.01,
				Seed:        101 + int64(core)*997,
				Sampler:     backend.SamplerSAGE,
				BatchSize:   512,
				Fanouts:     []int{10, 5},
				CacheRatio:  v.ratio,
				CachePolicy: v.policy,
			}
			if err := cfg.Validate(); err != nil {
				return out, err
			}
			cfgs = append(cfgs, cfg)
		}
	}
	out.Probes = len(cfgs)
	out.UniquePlans = coreCount

	// Warm the memoized dataset stats off the clock so both sides time
	// profiling runs only.
	ds, err := dataset.Load(out.Dataset)
	if err != nil {
		return out, err
	}
	estimator.ProfileDataset(ds)

	// Baseline: each probe runs with live sampling (no plan fetch at all;
	// none of these policies touches the plan cache without SharePlan).
	start := time.Now()
	noShare := make([]*backend.Perf, len(cfgs))
	for i, cfg := range cfgs {
		perf, err := backend.RunWith(cfg, backend.Options{SkipTraining: true})
		if err != nil {
			return out, err
		}
		noShare[i] = perf
	}
	out.NoShareSec = time.Since(start).Seconds()

	// Shared: the calibration collector's compile-once path, serial so
	// the only difference from the baseline is plan sharing.
	plan.ResetCounters()
	start = time.Now()
	recs, err := estimator.CollectWith(cfgs, false, 1)
	if err != nil {
		return out, err
	}
	out.ShareSec = time.Since(start).Seconds()
	out.Compiles = plan.Compiles()
	out.CacheHits = plan.CacheHits()

	// Gate 1: replay changed nothing but wall time.
	for i := range cfgs {
		pa, pb := *noShare[i], *recs[i].Perf
		pa.WallSec, pb.WallSec = 0, 0
		if !reflect.DeepEqual(pa, pb) {
			return out, fmt.Errorf("plan-bench: probe %d (%s) diverged under plan sharing", i, cfgs[i].Label())
		}
	}
	// Gate 2: each unique plan was sampled exactly once.
	if out.Compiles != int64(out.UniquePlans) || out.CacheHits != int64(out.Probes-out.UniquePlans) {
		return out, fmt.Errorf("plan-bench: plan cache accounting: %d compiles + %d hits for %d probes over %d unique plans",
			out.Compiles, out.CacheHits, out.Probes, out.UniquePlans)
	}
	out.Speedup = out.NoShareSec / out.ShareSec
	fmt.Printf("sharing  %s  %d probes / %d plans  live %.3gs   shared %.3gs (%d compiles, %d hits)   %.2fx\n",
		out.Dataset, out.Probes, out.UniquePlans, out.NoShareSec, out.ShareSec,
		out.Compiles, out.CacheHits, out.Speedup)
	return out, nil
}
