package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"time"

	"gnnavigator/internal/dataset"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/sample"
)

// SampleBenchEntry is one workload row of BENCH_sample.json: the frozen
// map-based batch assembly vs the epoch-stamped frontier path, same
// sampler parameters, same target plan, same RNG discipline. The two
// paths produce bitwise-identical mini-batches (the equivalence tests
// enforce it), so rows differ in throughput and allocation only.
type SampleBenchEntry struct {
	Name   string `json:"name"`
	Mode   string `json:"mode"`
	Params string `json:"params"`

	BatchesPerSecMap     float64 `json:"batches_per_sec_map"`
	BatchesPerSecStamped float64 `json:"batches_per_sec_stamped"`
	Speedup              float64 `json:"speedup"`

	AllocsPerOpMap     float64 `json:"allocs_per_op_map"`
	AllocsPerOpStamped float64 `json:"allocs_per_op_stamped"`

	MeanBatchVertices float64 `json:"mean_batch_vertices"`
}

// SampleBenchReport is the whole BENCH_sample.json document.
type SampleBenchReport struct {
	GOMAXPROCS int                `json:"gomaxprocs"`
	NumCPU     int                `json:"num_cpu"`
	Dataset    string             `json:"dataset"`
	BatchSize  int                `json:"batch_size"`
	Entries    []SampleBenchEntry `json:"entries"`
}

// measureSampler drives s over the batch plan until enough wall time has
// accumulated, returning batches/sec, allocs per Sample call, and the
// mean batch vertex count. One long-lived RNG stream feeds every call so
// the measurement charges the sampler, not rand.New; sampling is a
// single-goroutine producer stage, so this is deliberately serial.
func measureSampler(s sample.Sampler, g *graph.Graph, plan [][]int32) (bps, allocs, meanV float64) {
	rng := rand.New(rand.NewSource(17))
	var sumV int
	for _, tg := range plan { // warm up scratch to steady state
		sumV += s.Sample(rng, g, tg).NumVertices
	}
	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	n := 0
	for time.Since(start) < 700*time.Millisecond || n < 2*len(plan) {
		for _, tg := range plan {
			s.Sample(rng, g, tg)
			n++
		}
	}
	elapsed := time.Since(start).Seconds()
	runtime.ReadMemStats(&after)
	return float64(n) / elapsed,
		float64(after.Mallocs-before.Mallocs) / float64(n),
		float64(sumV) / float64(len(plan))
}

// runSampleBench measures map-path vs stamped-path sampler throughput on
// the scaled ogbn-arxiv stand-in, per sampler mode × fanout, and writes
// BENCH_sample.json.
func runSampleBench(outPath string) error {
	const batchSize = 1024
	ds, err := dataset.Load(dataset.OgbnArxiv)
	if err != nil {
		return err
	}
	g := ds.Graph
	plan := sample.EpochBatches(sample.EpochRNG(1, 0), ds.TrainIdx, batchSize)

	workloads := []struct {
		name, mode, params string
		sampler            sample.Sampler
	}{
		{"NodeWise/f=10,5", "node-wise", "fanouts=[10 5]",
			&sample.NodeWise{Fanouts: []int{10, 5}}},
		{"NodeWise/f=25,10", "node-wise", "fanouts=[25 10]",
			&sample.NodeWise{Fanouts: []int{25, 10}}},
		{"NodeWise/f=15,10,5", "node-wise", "fanouts=[15 10 5]",
			&sample.NodeWise{Fanouts: []int{15, 10, 5}}},
		{"LayerWise/d=512,256", "layer-wise", "deltas=[512 256]",
			&sample.LayerWise{Deltas: []int{512, 256}}},
		{"SubgraphWise/w=4", "subgraph-wise", "walk=4 layers=2",
			&sample.SubgraphWise{WalkLength: 4, Layers: 2}},
	}

	report := SampleBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Dataset:    ds.Name,
		BatchSize:  batchSize,
	}
	for _, w := range workloads {
		ref := sample.NewMapReference(w.sampler)
		if ref == nil {
			return fmt.Errorf("sample-bench: no map reference for %s", w.name)
		}
		mapBps, mapAllocs, meanV := measureSampler(ref, g, plan)
		stampBps, stampAllocs, _ := measureSampler(w.sampler, g, plan)
		e := SampleBenchEntry{
			Name:                 w.name,
			Mode:                 w.mode,
			Params:               w.params,
			BatchesPerSecMap:     mapBps,
			BatchesPerSecStamped: stampBps,
			Speedup:              stampBps / mapBps,
			AllocsPerOpMap:       mapAllocs,
			AllocsPerOpStamped:   stampAllocs,
			MeanBatchVertices:    meanV,
		}
		report.Entries = append(report.Entries, e)
		fmt.Printf("%-22s map %8.1f b/s (%6.0f allocs)   stamped %8.1f b/s (%4.1f allocs)   %.2fx\n",
			w.name, mapBps, mapAllocs, stampBps, stampAllocs, e.Speedup)
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("[wrote %s; gomaxprocs=%d numcpu=%d]\n", outPath, report.GOMAXPROCS, report.NumCPU)
	return nil
}
