package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"sync"
	"time"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/infer"
	"gnnavigator/internal/model"
	"gnnavigator/internal/serve"
)

// The serve bench drives the HTTP serving stack (internal/serve over
// infer.Engine) with closed-loop load-generator clients and writes
// BENCH_serve.json. Two request-skew workloads run against identical
// fresh servers:
//
//   - uniform: every vertex equally likely — the cache's worst case;
//   - zipf: Zipf-skewed popularity — the production-shaped case the
//     LRU feature plane exists for.
//
// The report carries client-side p50/p99 latency and throughput plus
// the server's own coalescing and cache counters; in-process runs gate
// on the zipf hit rate beating uniform at equal capacity.

// serveBenchDataset/serveCacheRatio pin the bench shape; the trained
// model is tiny (the bench measures the serving stack, not accuracy).
const (
	serveBenchDataset = dataset.OgbnArxiv
	serveCacheRatio   = 0.1
	serveZipfSkew     = 1.3
)

// ServeWorkloadBench is one workload's measurements.
type ServeWorkloadBench struct {
	Workload    string  `json:"workload"`
	Clients     int     `json:"clients"`
	Requests    int64   `json:"requests"`
	Errors      int64   `json:"errors"`
	Vertices    int64   `json:"vertices"`
	DurationSec float64 `json:"duration_sec"`
	P50Ms       float64 `json:"p50_ms"`
	P99Ms       float64 `json:"p99_ms"`
	RPS         float64 `json:"rps"`
	// Server-side counters (absent in external mode when /stats is
	// unreachable).
	Flushes          int64   `json:"flushes"`
	MeanBatch        float64 `json:"mean_batch"`
	HitRate          float64 `json:"hit_rate"`
	TransferredBytes int64   `json:"transferred_bytes"`
}

// ServeBenchReport is the whole BENCH_serve.json document.
type ServeBenchReport struct {
	GOMAXPROCS int                  `json:"gomaxprocs"`
	NumCPU     int                  `json:"num_cpu"`
	Quick      bool                 `json:"quick"`
	External   string               `json:"external_url,omitempty"`
	Dataset    string               `json:"dataset"`
	ModelKind  string               `json:"model_kind,omitempty"`
	CacheRows  int                  `json:"cache_rows"`
	Workloads  []ServeWorkloadBench `json:"workloads"`
}

// runServeBench measures the serving stack and writes BENCH_serve.json.
// modelPath, when non-empty, is where the bench's trained model is kept
// (reused if it already exists — CI trains once and serves twice);
// empty trains into a throwaway temp file. url, when non-empty,
// switches to external mode: the load generator drives a running
// gnnserve at that base URL instead of an in-process server, and the
// hit-rate gate is skipped (the external cache's state is not ours to
// reason about). quick shrinks the client fleet for CI smoke runs.
func runServeBench(outPath, modelPath, url string, quick bool) error {
	report := ServeBenchReport{
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
		Quick:      quick,
		External:   url,
		Dataset:    serveBenchDataset,
	}
	clients, perClient := 8, 400
	if quick {
		clients, perClient = 2, 60
	}

	if url != "" {
		for _, wl := range []string{"uniform", "zipf"} {
			// The external graph is gnnserve's -dataset; the named bench
			// dataset supplies the vertex-ID universe, which matches when
			// both sides use their defaults.
			d, err := dataset.Load(serveBenchDataset)
			if err != nil {
				return err
			}
			res, err := driveClients(url, wl, clients, perClient, d.Graph.NumVertices())
			if err != nil {
				return err
			}
			attachRemoteStats(url, &res)
			report.Workloads = append(report.Workloads, res)
		}
		return writeServeReport(outPath, &report)
	}

	mdl, d, err := serveBenchModel(modelPath)
	if err != nil {
		return err
	}
	report.ModelKind = string(mdl.Cfg().Kind)
	nV := d.Graph.NumVertices()
	cacheRows := int(serveCacheRatio * float64(nV))
	report.CacheRows = cacheRows

	for _, wl := range []string{"uniform", "zipf"} {
		// A fresh server (and fresh LRU plane) per workload, so the two
		// hit rates are measured from identical cold starts.
		c, err := cache.New(cache.LRU, cacheRows, d.Graph)
		if err != nil {
			return err
		}
		eng, err := infer.New(infer.Config{
			Graph: d.Graph, Model: mdl, Seed: 11,
			Source: cache.NewCachedSource(c, d.Graph),
		})
		if err != nil {
			return err
		}
		srv, err := serve.New(serve.Config{Engine: eng})
		if err != nil {
			return err
		}
		ts := httptest.NewServer(srv.Handler())
		res, err := driveClients(ts.URL, wl, clients, perClient, nV)
		st := srv.Snapshot()
		ts.Close()
		srv.Close()
		if err != nil {
			return err
		}
		res.Flushes = st.Flushes
		res.MeanBatch = st.MeanBatch
		res.HitRate = st.HitRate
		res.TransferredBytes = st.TransferredBytes
		report.Workloads = append(report.Workloads, res)
	}

	// The point of the LRU feature plane: skewed popularity must cache
	// better than uniform at equal capacity. A bench run where it does
	// not is measuring a bug, not a tradeoff.
	uni, zpf := report.Workloads[0], report.Workloads[1]
	if zpf.HitRate <= uni.HitRate {
		return fmt.Errorf("zipf hit rate %.3f not above uniform %.3f at equal capacity (%d rows)",
			zpf.HitRate, uni.HitRate, cacheRows)
	}
	return writeServeReport(outPath, &report)
}

// serveBenchModel loads path if it holds a model, otherwise trains the
// bench's tiny model (one epoch, small SAGE) and saves it there.
func serveBenchModel(path string) (*model.Model, *dataset.Dataset, error) {
	d, err := dataset.Load(serveBenchDataset)
	if err != nil {
		return nil, nil, err
	}
	if path == "" {
		dir, err := os.MkdirTemp("", "servebench")
		if err != nil {
			return nil, nil, err
		}
		defer os.RemoveAll(dir)
		path = filepath.Join(dir, "model.gnav")
	} else if m, err := model.Load(path); err == nil {
		return m, d, nil
	}
	cfg := backend.Config{
		Dataset:     serveBenchDataset,
		Platform:    "rtx4090",
		Sampler:     backend.SamplerSAGE,
		BatchSize:   1024,
		Fanouts:     []int{10, 5},
		CachePolicy: cache.None,
		Model:       model.SAGE,
		Hidden:      32,
		Layers:      2,
		Epochs:      1,
		LR:          0.01,
		Seed:        11,
	}
	if _, err := backend.RunWith(cfg, backend.Options{EvalBatch: 512, SaveModelPath: path}); err != nil {
		return nil, nil, err
	}
	m, err := model.Load(path)
	return m, d, err
}

// driveClients runs the closed-loop fleet: each client owns a
// deterministic RNG and fires perClient /predict requests of 1–3
// vertices back to back, drawing targets uniformly or Zipf-skewed over
// the vertex universe.
func driveClients(baseURL, workload string, clients, perClient, numVertices int) (ServeWorkloadBench, error) {
	res := ServeWorkloadBench{Workload: workload, Clients: clients}
	type clientOut struct {
		lat      []float64
		vertices int64
		errs     int64
		firstErr error
	}
	outs := make([]clientOut, clients)
	var wg sync.WaitGroup
	start := time.Now()
	for ci := 0; ci < clients; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			out := &outs[ci]
			rng := rand.New(rand.NewSource(int64(1000*ci) + int64(len(workload))))
			var zipf *rand.Zipf
			if workload == "zipf" {
				zipf = rand.NewZipf(rng, serveZipfSkew, 1, uint64(numVertices-1))
			}
			out.lat = make([]float64, 0, perClient)
			for r := 0; r < perClient; r++ {
				n := 1 + rng.Intn(3)
				verts := make([]int32, n)
				for i := range verts {
					if zipf != nil {
						verts[i] = int32(zipf.Uint64())
					} else {
						verts[i] = rng.Int31n(int32(numVertices))
					}
				}
				body, _ := json.Marshal(map[string][]int32{"vertices": verts})
				t0 := time.Now()
				resp, err := http.Post(baseURL+"/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					out.errs++
					if out.firstErr == nil {
						out.firstErr = err
					}
					continue
				}
				var pr struct {
					Classes []int32 `json:"classes"`
				}
				decErr := json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK || decErr != nil || len(pr.Classes) != n {
					out.errs++
					if out.firstErr == nil {
						out.firstErr = fmt.Errorf("request failed: status %d, decode %v, %d classes for %d vertices",
							resp.StatusCode, decErr, len(pr.Classes), n)
					}
					continue
				}
				out.lat = append(out.lat, float64(time.Since(t0))/float64(time.Millisecond))
				out.vertices += int64(n)
			}
		}(ci)
	}
	wg.Wait()
	res.DurationSec = time.Since(start).Seconds()

	var all []float64
	for i := range outs {
		all = append(all, outs[i].lat...)
		res.Vertices += outs[i].vertices
		res.Errors += outs[i].errs
		if outs[i].firstErr != nil {
			return res, fmt.Errorf("serve bench %s client %d: %w", workload, i, outs[i].firstErr)
		}
	}
	res.Requests = int64(len(all)) + res.Errors
	if len(all) == 0 {
		return res, fmt.Errorf("serve bench %s: no request succeeded", workload)
	}
	sort.Float64s(all)
	at := func(q float64) float64 {
		i := int(q*float64(len(all))) - 1
		if i < 0 {
			i = 0
		}
		return all[i]
	}
	res.P50Ms, res.P99Ms = at(0.50), at(0.99)
	if res.DurationSec > 0 {
		res.RPS = float64(res.Requests) / res.DurationSec
	}
	return res, nil
}

// attachRemoteStats best-effort copies a running gnnserve's /stats
// counters into the workload row (external mode only; the numbers are
// cumulative across workloads there, unlike in-process runs).
func attachRemoteStats(baseURL string, res *ServeWorkloadBench) {
	resp, err := http.Get(baseURL + "/stats")
	if err != nil {
		return
	}
	defer resp.Body.Close()
	var st serve.Stats
	if json.NewDecoder(resp.Body).Decode(&st) != nil {
		return
	}
	res.Flushes = st.Flushes
	res.MeanBatch = st.MeanBatch
	res.HitRate = st.HitRate
	res.TransferredBytes = st.TransferredBytes
}

func writeServeReport(outPath string, report *ServeBenchReport) error {
	blob, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(outPath, append(blob, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("serve bench written to %s\n", outPath)
	for _, w := range report.Workloads {
		fmt.Printf("  %-8s %6d req  p50 %6.2fms  p99 %6.2fms  %7.1f req/s  hit %5.1f%%  %5.1f verts/flush\n",
			w.Workload, w.Requests, w.P50Ms, w.P99Ms, w.RPS, 100*w.HitRate, w.MeanBatch)
	}
	return nil
}
