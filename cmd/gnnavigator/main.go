// Command gnnavigator runs the full adaptive-training workflow from the
// command line: calibrate the estimator, explore the design space under
// the given requirements, print the guideline, and (optionally) train
// with it.
//
// Example:
//
//	gnnavigator -dataset reddit2 -model sage -platform rtx4090 \
//	    -priority ex-tm -max-mem 1.5 -train
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/core"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/dse"
	"gnnavigator/internal/hw"
	"gnnavigator/internal/model"
	"gnnavigator/internal/pipeline"
	"gnnavigator/internal/tensor"
)

func main() {
	log.SetFlags(0)
	var (
		dsName    = flag.String("dataset", dataset.Reddit2, "dataset name: "+strings.Join(dataset.Names(), ", "))
		modelName = flag.String("model", "sage", "GNN architecture: gcn, sage, gat")
		platform  = flag.String("platform", "rtx4090", "hardware platform profile")
		priority  = flag.String("priority", "balance", "guideline priority: balance, ex-tm, ex-ma, ex-ta")
		maxMem    = flag.Float64("max-mem", 0, "memory budget in GB (0 = unconstrained)")
		maxTime   = flag.Float64("max-time", 0, "epoch time budget in seconds (0 = unconstrained)")
		minAcc    = flag.Float64("min-acc", 0, "minimum accuracy in [0,1] (0 = unconstrained)")
		samples   = flag.Int("calib-samples", 14, "estimator calibration probes per dataset")
		policies  = flag.String("policies", "", "comma-separated cache policies to explore (none,static,freq,fifo,lru,opt); empty = default space")
		precision = flag.String("precision", "", "pin the feature storage precision (float32, float16, int8); empty = $GNNAV_PRECISION or explore all")
		devices   = flag.Int("devices", 0, "pin the data-parallel device count (power of two the platform hosts); 0 = explore the default 1/2/4 sweep")
		epochs    = flag.Int("epochs", 3, "training epochs")
		doTrain   = flag.Bool("train", false, "execute the chosen guideline after exploring")
		seed      = flag.Int64("seed", 1, "random seed")
		procs     = flag.Int("procs", 0, "tensor kernel workers (0 = GOMAXPROCS / $GNNAV_PROCS; 1 = serial)")
		prefetch  = flag.Int("prefetch", 0, "minibatch pipeline depth (0 = $GNNAV_PREFETCH or inline; results identical at any depth)")
		savePlan  = flag.String("save-plan", "", "compile the training run's epoch plan and write it to this file (with -train)")
		loadPlan  = flag.String("load-plan", "", "replay a compiled epoch plan from this file instead of sampling live (default $GNNAV_PLAN; with -train)")
		ckptPath  = flag.String("checkpoint", "", "snapshot the training state to this file every -checkpoint-every epochs (with -train; atomic, checksummed)")
		ckptEvery = flag.Int("checkpoint-every", 1, "epochs between checkpoint snapshots (with -checkpoint)")
		resume    = flag.String("resume", "", "resume training from this checkpoint file (with -train); the resumed run is bitwise-identical to an uninterrupted one")
		saveModel = flag.String("save-model", "", "write the trained model to this file after -train (atomic, checksummed; serve it with gnnserve)")
		timeout   = flag.Duration("timeout", 0, "wall-clock budget for the whole workflow (0 = none); calibration, exploration and training abort cleanly when it expires")
	)
	flag.Parse()

	// Like -prefetch/GNNAV_PREFETCH: the flag wins, the environment fills
	// the default, so wrapper scripts can pin a plan once for many runs.
	if *loadPlan == "" {
		*loadPlan = os.Getenv("GNNAV_PLAN")
	}
	if *precision == "" {
		*precision = os.Getenv("GNNAV_PRECISION")
	}
	prec := cache.Precision(strings.TrimSpace(*precision))
	if !prec.Valid() {
		log.Fatalf("unknown precision %q; have %v", *precision, cache.Precisions())
	}

	if *procs > 0 {
		tensor.SetParallelism(*procs)
	}
	// != 0 so -prefetch -1 forces the inline loop even when
	// GNNAV_PREFETCH is set (SetDefaultPrefetch clamps negatives to 0).
	if *prefetch != 0 {
		pipeline.SetDefaultPrefetch(*prefetch)
	}

	plat, ok := hw.Profiles()[*platform]
	if !ok {
		log.Fatalf("unknown platform %q; have: %s", *platform, strings.Join(hw.ProfileNames(), ", "))
	}
	if *devices < 0 || *devices > plat.DeviceCount() {
		log.Fatalf("-devices %d out of range for platform %q (%d devices)", *devices, *platform, plat.DeviceCount())
	}
	kind := model.Kind(*modelName)
	switch kind {
	case model.GCN, model.SAGE, model.GAT:
	default:
		log.Fatalf("unknown model %q", *modelName)
	}
	prio := dse.Priority(*priority)
	valid := false
	for _, p := range dse.Priorities() {
		if p == prio {
			valid = true
		}
	}
	if !valid {
		log.Fatalf("unknown priority %q", *priority)
	}
	// A -policies list narrows the explored cache-policy dimension (the
	// rest of the space stays at the default grid); "freq" selects the
	// pre-sample-admission policy introduced with the feature plane.
	space := dse.DefaultSpace()
	if *policies != "" {
		space.Policies = space.Policies[:0]
		for _, s := range strings.Split(*policies, ",") {
			pol := cache.Policy(strings.TrimSpace(s))
			if !pol.Valid() {
				log.Fatalf("unknown cache policy %q; have none, static, freq, fifo, lru, opt", s)
			}
			space.Policies = append(space.Policies, pol)
		}
	}
	// A pinned precision collapses the explored precision dimension to it;
	// otherwise the default space explores all three widths. Same for a
	// pinned device count (the default sweep explores 1/2/4; counts the
	// platform cannot host are pruned by validation).
	if prec != "" {
		space.Precisions = []cache.Precision{prec}
	}
	if *devices > 0 {
		space.DeviceCounts = []int{*devices}
	}

	// nil when unbounded: backend runs skip the per-batch cancellation
	// check entirely instead of polling a context that can never expire.
	var ctx context.Context
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(context.Background(), *timeout)
		defer cancel()
	}

	fmt.Fprintf(os.Stderr, "calibrating estimator (leave-one-out over %v)...\n", otherDatasets(*dsName))
	nav, err := core.New(core.Input{
		Dataset:  *dsName,
		Model:    kind,
		Platform: *platform,
		Priority: prio,
		Constraints: dse.Constraints{
			MaxTimeSec:  *maxTime,
			MaxMemoryGB: *maxMem,
			MinAccuracy: *minAcc,
		},
		Space:           space,
		Precision:       prec,
		Devices:         *devices,
		CalibSamples:    *samples,
		Epochs:          *epochs,
		Prefetch:        *prefetch,
		SavePlan:        *savePlan,
		LoadPlan:        *loadPlan,
		Ctx:             ctx,
		Checkpoint:      *ckptPath,
		CheckpointEvery: *ckptEvery,
		Resume:          *resume,
		SaveModel:       *saveModel,
		// -procs also governs the Navigator's coarse fan-outs (calibration
		// runs, explorer predictions); 0 inherits the tensor default set
		// above, so GNNAV_PROCS flows through end to end.
		Parallelism: *procs,
		Seed:        *seed,
	})
	if err != nil {
		log.Fatalf("calibration failed: %v", err)
	}

	g, err := nav.Explore()
	if err != nil {
		log.Fatalf("exploration failed: %v", err)
	}
	fmt.Printf("explored %d candidates (%d pruned); Pareto front: %d points\n",
		g.Explored, g.Pruned, len(g.Pareto))
	fmt.Printf("\nguidelines per priority:\n")
	for _, p := range dse.Priorities() {
		pt := g.PerPriority[p]
		marker := " "
		if p == prio {
			marker = ">"
		}
		fmt.Printf("%s %-8s %-46s pred T=%.2fs Γ=%.2fGB Acc=%.1f%%\n",
			marker, p, pt.Cfg.Label(), pt.Pred.TimeSec, pt.Pred.MemoryGB, 100*pt.Pred.Accuracy)
	}

	if *doTrain {
		fmt.Println("\ntraining with the chosen guideline...")
		perf, err := nav.Train(g.Chosen.Cfg)
		if err != nil {
			log.Fatalf("training failed: %v", err)
		}
		fmt.Printf("measured: T=%.2fs Γ=%.2fGB Acc=%.1f%% (hit rate %.0f%%, %d iterations)\n",
			perf.TimeSec, perf.MemoryGB, 100*perf.Accuracy, 100*perf.HitRate, perf.Iterations)
	}
}

func otherDatasets(target string) []string {
	var out []string
	for _, n := range dataset.Names() {
		if n != target {
			out = append(out, n)
		}
	}
	return out
}
