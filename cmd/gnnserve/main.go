// Command gnnserve serves a trained GNN model over HTTP: it loads a
// GNAVMDL1 artifact written by `gnnavigator -train -save-model` (or
// backend.Options.SaveModelPath), wires it to the shared inference
// engine with an optional device feature cache, and answers
//
//	POST /predict {"vertices":[...]} → {"classes":[...]}
//	GET  /stats                      → latency/throughput/cache counters
//	GET  /healthz                    → liveness + model identity
//
// Concurrent requests are coalesced into minibatches (bounded wait,
// bounded batch) so the engine amortizes its fixed per-batch cost the
// same way training does.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/infer"
	"gnnavigator/internal/model"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/serve"
	"gnnavigator/internal/tensor"
)

func main() {
	var (
		modelPath = flag.String("model", "", "trained model file to serve (from gnnavigator -save-model); required")
		dsName    = flag.String("dataset", dataset.OgbnArxiv, "graph the model serves predictions for")
		addr      = flag.String("addr", ":8080", "listen address")
		policy    = flag.String("cache-policy", "lru", "feature cache policy (none,static,freq,fifo,lru)")
		ratio     = flag.Float64("cache-ratio", 0.1, "feature cache capacity as a fraction of the graph's float32 feature bytes")
		precision = flag.String("precision", "float32", "cached feature storage precision (float32, float16, int8)")
		maxBatch  = flag.Int("max-batch", 256, "coalescer: flush when this many vertices are pending")
		maxWait   = flag.Duration("max-wait", 2*time.Millisecond, "coalescer: flush the oldest request after waiting this long")
		reqLimit  = flag.Int("request-limit", 1024, "maximum vertices in a single /predict request")
		batchSize = flag.Int("batch-size", 512, "engine minibatch size")
		prefetch  = flag.Int("prefetch", 0, "engine pipeline depth (<= 0 inline; results identical at any depth)")
		fanout    = flag.Int("fanout", 15, "neighbors sampled per layer (0 = whole neighborhood)")
		seed      = flag.Int64("seed", 1, "sampling seed (predictions are a pure function of seed+targets)")
		procs     = flag.Int("procs", 0, "tensor kernel workers (0 = GOMAXPROCS / $GNNAV_PROCS; 1 = serial)")
	)
	flag.Parse()
	log.SetFlags(log.LstdFlags | log.Lmsgprefix)
	log.SetPrefix("gnnserve: ")
	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "gnnserve: -model is required")
		flag.Usage()
		os.Exit(2)
	}
	if *procs > 0 {
		tensor.SetParallelism(*procs)
	}

	mdl, err := model.Load(*modelPath)
	if err != nil {
		log.Fatal(err)
	}
	d, err := dataset.Load(*dsName)
	if err != nil {
		log.Fatal(err)
	}
	g := d.Graph
	if mdl.Cfg().InDim != g.FeatDim {
		log.Fatalf("model %s reads %d-dim features, dataset %s has %d-dim", *modelPath, mdl.Cfg().InDim, *dsName, g.FeatDim)
	}
	if mdl.Cfg().OutDim != g.NumClasses {
		log.Fatalf("model %s emits %d classes, dataset %s has %d", *modelPath, mdl.Cfg().OutDim, *dsName, g.NumClasses)
	}

	src, desc, err := buildSource(g, cache.Policy(*policy), *ratio, cache.Precision(*precision))
	if err != nil {
		log.Fatal(err)
	}
	fanouts := make([]int, mdl.Cfg().Layers)
	for i := range fanouts {
		fanouts[i] = *fanout
	}
	eng, err := infer.New(infer.Config{
		Graph:     g,
		Model:     mdl,
		Sampler:   &sample.NodeWise{Fanouts: fanouts},
		Source:    src,
		Seed:      *seed,
		BatchSize: *batchSize,
		Prefetch:  *prefetch,
	})
	if err != nil {
		log.Fatal(err)
	}
	srv, err := serve.New(serve.Config{
		Engine:      eng,
		MaxBatch:    *maxBatch,
		MaxWait:     *maxWait,
		MaxVertices: *reqLimit,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Close()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := httpSrv.Shutdown(shutCtx); err != nil {
			log.Printf("shutdown: %v", err)
		}
	}()

	log.Printf("serving %s model on %s (%d vertices, %d classes, %s) at %s",
		mdl.Cfg().Kind, *dsName, g.NumVertices(), g.NumClasses, desc, *addr)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	log.Print("stopped")
}

// buildSource wires the serving feature plane: nil (direct host
// gathers) when the cache is disabled or sized to zero, a cached source
// otherwise. The capacity follows the backend's byte-budget convention:
// ratio of the graph's float32 feature bytes, so compact precisions
// hold proportionally more rows.
func buildSource(g *graph.Graph, policy cache.Policy, ratio float64, prec cache.Precision) (cache.FeatureSource, string, error) {
	if !policy.Valid() || policy == cache.Opt {
		return nil, "", fmt.Errorf("gnnserve: unsupported cache policy %q", policy)
	}
	if !prec.Valid() {
		return nil, "", fmt.Errorf("gnnserve: unknown precision %q", prec)
	}
	capVertices := int(prec.EffectiveCacheRows(ratio, float64(g.NumVertices()), g.FeatDim))
	if policy == cache.None || capVertices <= 0 {
		return nil, "no cache", nil
	}
	c, err := cache.NewAtPrecision(policy, capVertices, g, prec)
	if err != nil {
		return nil, "", err
	}
	return cache.NewCachedSource(c, g), fmt.Sprintf("%s cache, %d rows, %s", policy, capVertices, prec), nil
}
