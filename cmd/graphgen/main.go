// Command graphgen synthesizes benchmark graphs and writes them in the
// library's binary format, so downstream tools can checkpoint datasets
// instead of regenerating them.
//
// Examples:
//
//	graphgen -dataset reddit2 -o reddit2.gnav      # a named stand-in
//	graphgen -kind ba -n 100000 -m 4 -o ba.gnav    # raw Barabási–Albert
//	graphgen -kind rmat -scale 16 -o rmat.gnav     # RMAT scale 16
//	graphgen -info -i reddit2.gnav                 # inspect a saved graph
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"gnnavigator/internal/dataset"
	"gnnavigator/internal/gen"
	"gnnavigator/internal/graph"
)

func main() {
	log.SetFlags(0)
	var (
		dsName  = flag.String("dataset", "", "named dataset stand-in to synthesize (overrides -kind)")
		kind    = flag.String("kind", "ba", "raw generator: ba, rmat")
		n       = flag.Int("n", 10000, "vertices (ba)")
		m       = flag.Int("m", 4, "attachments per vertex (ba)")
		scale   = flag.Int("scale", 14, "log2 vertices (rmat)")
		edgeFac = flag.Int("edgefactor", 8, "edges per vertex (rmat)")
		seed    = flag.Int64("seed", 1, "random seed")
		out     = flag.String("o", "", "output file (binary graph format)")
		in      = flag.String("i", "", "input file for -info")
		info    = flag.Bool("info", false, "print statistics of the -i graph and exit")
	)
	flag.Parse()

	if *info {
		f, err := os.Open(*in)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		g, err := graph.ReadFrom(f)
		if err != nil {
			log.Fatalf("reading %s: %v", *in, err)
		}
		s := g.Stats()
		fmt.Printf("name:      %s\n", g.Name)
		fmt.Printf("vertices:  %d\n", g.NumVertices())
		fmt.Printf("edges:     %d\n", g.NumEdges())
		fmt.Printf("degree:    min=%d max=%d mean=%.2f std=%.2f\n", s.Min, s.Max, s.Mean, s.Std)
		fmt.Printf("power-law: alpha=%.2f gini=%.3f\n", s.PowerLawAlpha, s.GiniCoefficient)
		if g.Features != nil {
			fmt.Printf("features:  dim=%d\n", g.FeatDim)
		}
		if g.Labels != nil {
			fmt.Printf("labels:    classes=%d\n", g.NumClasses)
		}
		return
	}

	if *out == "" {
		log.Fatal("need -o output path (or -info -i file)")
	}
	var g *graph.Graph
	var err error
	switch {
	case *dsName != "":
		d, lerr := dataset.Load(*dsName)
		if lerr != nil {
			log.Fatal(lerr)
		}
		g = d.Graph
	case *kind == "ba":
		g, err = gen.BarabasiAlbert(rand.New(rand.NewSource(*seed)), *n, *m)
	case *kind == "rmat":
		g, err = gen.RMAT(rand.New(rand.NewSource(*seed)), *scale, *edgeFac, 0.57, 0.19, 0.19, 0.05)
	default:
		log.Fatalf("unknown -kind %q", *kind)
	}
	if err != nil {
		log.Fatal(err)
	}
	f, err := os.Create(*out)
	if err != nil {
		log.Fatal(err)
	}
	if err := g.Write(f); err != nil {
		log.Fatal(err)
	}
	if err := f.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %s: %d vertices, %d edges\n", *out, g.NumVertices(), g.NumEdges())
}
