// Adaptive: the Fig. 6 scenario — one application, different priorities.
//
// The same Navigator session produces different guidelines depending on
// which performance metrics the application emphasizes: a balanced
// profile, a time+memory extreme (edge deployment), a memory+accuracy
// extreme (shared GPU), and a time+accuracy extreme (deadline training).
// Each guideline is then executed for real and compared against its
// prediction.
//
// Run with: go run ./examples/adaptive
package main

import (
	"fmt"
	"log"

	"gnnavigator/internal/core"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/dse"
	"gnnavigator/internal/model"
)

func main() {
	log.SetFlags(0)
	fmt.Println("Adaptive guidelines on Reddit2 + SAGE: one explorer, four priorities")

	nav, err := core.New(core.Input{
		Dataset:       dataset.Reddit2,
		Model:         model.SAGE,
		Platform:      "rtx4090",
		CalibDatasets: []string{dataset.OgbnArxiv, dataset.OgbnProducts},
		CalibSamples:  12,
		Epochs:        3,
		Space: dse.Space{
			BatchSizes:  []int{512, 1024, 2048},
			FanoutSets:  [][]int{{5, 5}, {10, 5}, {15, 8}, {25, 10}},
			CacheRatios: []float64{0, 0.08, 0.15, 0.3, 0.45},
			BiasRates:   []float64{0, 0.9},
			Hiddens:     []int{32, 64},
		},
		Seed: 9,
	})
	if err != nil {
		log.Fatalf("calibration: %v", err)
	}
	g, err := nav.Explore()
	if err != nil {
		log.Fatalf("exploration: %v", err)
	}
	fmt.Printf("explored %d candidates, Pareto front %d points\n\n", g.Explored, len(g.Pareto))
	fmt.Printf("%-8s %-44s %18s %18s\n", "priority", "guideline", "predicted T/Γ/Acc", "measured T/Γ/Acc")
	for _, p := range dse.Priorities() {
		pt := g.PerPriority[p]
		perf, err := nav.Train(pt.Cfg)
		if err != nil {
			log.Fatalf("train %s: %v", p, err)
		}
		fmt.Printf("%-8s %-44s %5.2fs %5.2fGB %4.1f%% %5.2fs %5.2fGB %4.1f%%\n",
			p, pt.Cfg.Label(),
			pt.Pred.TimeSec, pt.Pred.MemoryGB, 100*pt.Pred.Accuracy,
			perf.TimeSec, perf.MemoryGB, 100*perf.Accuracy)
	}

	// A constrained scenario: the same exploration under a hard memory
	// budget, as an application on a small device would impose.
	fmt.Println("\nSame application under a 1.2 GB device-memory budget:")
	nav2, err := core.New(core.Input{
		Dataset:       dataset.Reddit2,
		Model:         model.SAGE,
		Platform:      "rtx4090",
		Constraints:   dse.Constraints{MaxMemoryGB: 1.2},
		CalibDatasets: []string{dataset.OgbnArxiv, dataset.OgbnProducts},
		CalibSamples:  12,
		Epochs:        3,
		Space: dse.Space{
			BatchSizes:  []int{512, 1024, 2048},
			FanoutSets:  [][]int{{5, 5}, {10, 5}, {15, 8}, {25, 10}},
			CacheRatios: []float64{0, 0.08, 0.15, 0.3, 0.45},
			BiasRates:   []float64{0, 0.9},
			Hiddens:     []int{32, 64},
		},
		Seed: 9,
	})
	if err != nil {
		log.Fatalf("constrained calibration: %v", err)
	}
	g2, err := nav2.Explore()
	if err != nil {
		log.Fatalf("constrained exploration: %v", err)
	}
	pt := g2.PerPriority[dse.Balance]
	fmt.Printf("balance guideline: %s (predicted Γ=%.2f GB, %d candidates pruned)\n",
		pt.Cfg.Label(), pt.Pred.MemoryGB, g2.Pruned)
}
