// Estimator: train and validate the gray-box performance estimator.
//
// Demonstrates the Fig. 5 comparison (gray-box vs black-box mini-batch
// size prediction) and the Table 2 validation metrics (R² for T and Γ,
// MSE for Acc) on a held-out dataset.
//
// Run with: go run ./examples/estimator
package main

import (
	"fmt"
	"log"

	"gnnavigator/internal/dataset"
	"gnnavigator/internal/estimator"
	"gnnavigator/internal/model"
	"gnnavigator/internal/regress"
)

func main() {
	log.SetFlags(0)
	fmt.Println("Gray-box estimator walkthrough")
	fmt.Println("collecting ground truth on Ogbn-arxiv (train) and Reddit2 (held out)...")

	trainRecs, err := estimator.CollectCached(dataset.OgbnArxiv, model.SAGE, "rtx4090", 20, 7, true)
	if err != nil {
		log.Fatalf("collect train: %v", err)
	}
	testRecs, err := estimator.CollectCached(dataset.Reddit2, model.SAGE, "rtx4090", 14, 8, true)
	if err != nil {
		log.Fatalf("collect test: %v", err)
	}

	gray, err := estimator.Train(trainRecs)
	if err != nil {
		log.Fatalf("train gray-box: %v", err)
	}
	black, err := estimator.TrainBlackBoxBatchSize(trainRecs)
	if err != nil {
		log.Fatalf("train black-box: %v", err)
	}

	fmt.Println("\nFig. 5-style scatter: measured vs predicted mini-batch size |Vi|")
	fmt.Printf("%12s %12s %12s\n", "measured", "gray-box", "black-box")
	var gp, bp, truth []float64
	for _, r := range testRecs {
		g := gray.PredictBatchSize(r.Cfg, r.Stats)
		b := black.Predict(r.Cfg)
		gp = append(gp, g)
		bp = append(bp, b)
		truth = append(truth, r.Perf.MeanBatchSize)
		fmt.Printf("%12.0f %12.0f %12.0f\n", r.Perf.MeanBatchSize, g, b)
	}
	fmt.Printf("gray-box  R2=%.3f  MSE=%.0f\n", regress.R2(gp, truth), regress.MSE(gp, truth))
	fmt.Printf("black-box R2=%.3f  MSE=%.0f\n", regress.R2(bp, truth), regress.MSE(bp, truth))

	fmt.Println("\nTable 2-style validation on the held-out dataset:")
	v, err := estimator.Validate(gray, testRecs)
	if err != nil {
		log.Fatalf("validate: %v", err)
	}
	fmt.Printf("R2(T)=%.4f  R2(Γ)=%.4f  MSE(Acc)=%.4f  R2(|Vi|)=%.4f  (n=%d)\n",
		v.R2Time, v.R2Memory, v.MSEAcc, v.R2Batch, v.NumTested)

	fmt.Println("\nPer-config predictions vs ground truth:")
	fmt.Printf("%-44s %16s %16s\n", "config", "pred T/Γ", "true T/Γ")
	for _, r := range testRecs[:5] {
		p, err := gray.Predict(r.Cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-44s %7.2fs %6.2fGB %7.2fs %6.2fGB\n",
			r.Cfg.Label(), p.TimeSec, p.MemoryGB, r.Perf.TimeSec, r.Perf.MemoryGB)
	}
}
