// Quickstart: the minimal end-to-end GNNavigator workflow of Fig. 2.
//
//  1. Declare the application: dataset, GNN model, hardware platform and
//     a performance priority.
//  2. Let the Navigator calibrate its gray-box estimator and explore the
//     design space for a training guideline.
//  3. Execute the guideline on the reconfigurable runtime backend.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"gnnavigator/internal/core"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/dse"
	"gnnavigator/internal/model"
)

func main() {
	log.SetFlags(0)
	fmt.Println("GNNavigator quickstart: Reddit2 + GraphSAGE on an RTX 4090 platform")
	fmt.Println("Step 1: input analysis + estimator calibration (leave-one-out probing)...")

	nav, err := core.New(core.Input{
		Dataset:  dataset.Reddit2,
		Model:    model.SAGE,
		Platform: "rtx4090",
		Priority: dse.Balance,
		// Small calibration budget so the quickstart finishes fast; the
		// benchmark harness uses bigger budgets.
		CalibDatasets: []string{dataset.OgbnArxiv},
		CalibSamples:  12,
		Epochs:        3,
		Space: dse.Space{
			BatchSizes:  []int{512, 1024, 2048},
			FanoutSets:  [][]int{{5, 5}, {10, 5}, {25, 10}},
			CacheRatios: []float64{0, 0.15, 0.45},
			BiasRates:   []float64{0, 0.9},
			Hiddens:     []int{64},
		},
		Seed: 1,
	})
	if err != nil {
		log.Fatalf("calibration failed: %v", err)
	}

	fmt.Println("Step 2: automatic guideline exploration...")
	g, err := nav.Explore()
	if err != nil {
		log.Fatalf("exploration failed: %v", err)
	}
	fmt.Printf("  explored %d candidates (%d pruned), Pareto front has %d points\n",
		g.Explored, g.Pruned, len(g.Pareto))
	fmt.Printf("  chosen guideline: %s\n", g.Chosen.Cfg.Label())
	fmt.Printf("  predicted: T=%.2fs Γ=%.2fGB Acc=%.1f%%\n",
		g.Chosen.Pred.TimeSec, g.Chosen.Pred.MemoryGB, 100*g.Chosen.Pred.Accuracy)

	fmt.Println("Step 3: training with the guideline...")
	perf, err := nav.Train(g.Chosen.Cfg)
	if err != nil {
		log.Fatalf("training failed: %v", err)
	}
	fmt.Printf("  measured: T=%.2fs Γ=%.2fGB Acc=%.1f%% (cache hit rate %.0f%%)\n",
		perf.TimeSec, perf.MemoryGB, 100*perf.Accuracy, 100*perf.HitRate)
	if !perf.Feasible {
		fmt.Println("  WARNING: configuration exceeds device memory")
		os.Exit(1)
	}
}
