// Templates: reproduce existing GNN training systems on the unified
// reconfigurable backend (Fig. 3) and profile the Fig. 1 trade-offs.
//
// Each template is just a configuration preset — PyG (no cache), PaGraph
// (static degree-ordered cache), 2PGraph (cache-aware biased sampling),
// GraphSAINT (random-walk subgraphs), FastGCN (layer-wise sampling) — so
// "reproducing a system" is a one-line reconfiguration.
//
// Run with: go run ./examples/templates
package main

import (
	"fmt"
	"log"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/model"
)

func main() {
	log.SetFlags(0)
	fmt.Println("Reproducing existing systems via backend templates (Reddit2 + SAGE)")
	fmt.Printf("%-10s %10s %10s %10s %8s\n", "template", "T(s)", "Γ(GB)", "acc", "hit")

	var pyg *backend.Perf
	for _, tpl := range backend.Templates() {
		cfg, err := backend.FromTemplate(tpl, dataset.Reddit2, model.SAGE, "rtx4090")
		if err != nil {
			log.Fatalf("template %s: %v", tpl, err)
		}
		cfg.Epochs = 3
		perf, err := backend.Run(cfg)
		if err != nil {
			log.Fatalf("run %s: %v", tpl, err)
		}
		fmt.Printf("%-10s %10.3f %10.3f %9.1f%% %7.0f%%\n",
			tpl, perf.TimeSec, perf.MemoryGB, 100*perf.Accuracy, 100*perf.HitRate)
		if tpl == backend.TemplatePyG {
			pyg = perf
		}
	}

	fmt.Println("\nFig. 1a-style PaGraph sweep: cache memory buys epoch time")
	fmt.Printf("%-12s %12s %12s\n", "cacheRatio", "Γ(GB)", "T(s)")
	for _, ratio := range []float64{0.1, 0.3, 0.5} {
		cfg, err := backend.FromTemplate(backend.TemplatePaFull, dataset.Reddit2, model.SAGE, "rtx4090")
		if err != nil {
			log.Fatal(err)
		}
		cfg.CacheRatio = ratio
		cfg.Epochs = 1
		perf, err := backend.RunWith(cfg, backend.Options{SkipTraining: true})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12.2f %12.3f %12.3f\n", ratio, perf.MemoryGB, perf.TimeSec)
	}
	if pyg != nil {
		fmt.Printf("\n(PyG reference: T=%.3fs Γ=%.3fGB)\n", pyg.TimeSec, pyg.MemoryGB)
	}
}
