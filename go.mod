module gnnavigator

go 1.24
