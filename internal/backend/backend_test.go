package backend

import (
	"context"
	"testing"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/model"
)

// fastCfg returns a small, quick configuration for tests.
func fastCfg() Config {
	return Config{
		Dataset:     dataset.OgbnArxiv,
		Platform:    "rtx4090",
		Sampler:     SamplerSAGE,
		BatchSize:   512,
		Fanouts:     []int{8, 5},
		CachePolicy: cache.None,
		Model:       model.SAGE,
		Hidden:      24,
		Layers:      2,
		Epochs:      2,
		LR:          0.01,
		Seed:        42,
	}
}

func TestConfigValidate(t *testing.T) {
	good := fastCfg()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"unknown dataset", func(c *Config) { c.Dataset = "nope" }},
		{"unknown platform", func(c *Config) { c.Platform = "tpu" }},
		{"unknown sampler", func(c *Config) { c.Sampler = "magic" }},
		{"empty fanouts", func(c *Config) { c.Fanouts = nil }},
		{"fanouts/layers mismatch", func(c *Config) { c.Fanouts = []int{5} }},
		{"zero batch", func(c *Config) { c.BatchSize = 0 }},
		{"bias without cache", func(c *Config) { c.BiasRate = 0.5 }},
		{"bad bias", func(c *Config) { c.BiasRate = 2; c.CacheRatio = 0.1; c.CachePolicy = cache.Static }},
		{"bad cache ratio", func(c *Config) { c.CacheRatio = 1.5 }},
		{"cache ratio without policy", func(c *Config) { c.CacheRatio = 0.2 }},
		{"zero epochs", func(c *Config) { c.Epochs = 0 }},
		{"zero lr", func(c *Config) { c.LR = 0 }},
		{"zero hidden", func(c *Config) { c.Hidden = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := fastCfg()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

func TestTemplatesInstantiate(t *testing.T) {
	for _, tpl := range Templates() {
		tpl := tpl
		t.Run(string(tpl), func(t *testing.T) {
			cfg, err := FromTemplate(tpl, dataset.Reddit2, model.SAGE, "rtx4090")
			if err != nil {
				t.Fatalf("FromTemplate(%s): %v", tpl, err)
			}
			if err := cfg.Validate(); err != nil {
				t.Errorf("template %s invalid: %v", tpl, err)
			}
		})
	}
	if _, err := FromTemplate("no-such", dataset.Reddit2, model.SAGE, "rtx4090"); err == nil {
		t.Error("unknown template accepted")
	}
}

func TestRunProducesSanePerf(t *testing.T) {
	perf, err := Run(fastCfg())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if perf.TimeSec <= 0 {
		t.Errorf("TimeSec = %v, want > 0", perf.TimeSec)
	}
	if perf.MemoryGB <= 0 {
		t.Errorf("MemoryGB = %v, want > 0", perf.MemoryGB)
	}
	if perf.Accuracy <= 0.15 {
		t.Errorf("Accuracy = %v, want above chance (0.1)", perf.Accuracy)
	}
	if !perf.Feasible {
		t.Error("small config reported infeasible")
	}
	if perf.Iterations == 0 || perf.MeanBatchSize <= 0 {
		t.Errorf("diagnostics empty: %+v", perf)
	}
	if len(perf.EpochTimes) != 2 || len(perf.AccuracyHistory) != 2 {
		t.Errorf("history lengths: %d epochs, %d accs", len(perf.EpochTimes), len(perf.AccuracyHistory))
	}
}

func TestRunDeterministic(t *testing.T) {
	a, err := Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(fastCfg())
	if err != nil {
		t.Fatal(err)
	}
	if a.TimeSec != b.TimeSec || a.Accuracy != b.Accuracy || a.MemoryGB != b.MemoryGB {
		t.Errorf("same seed differs: %+v vs %+v", a, b)
	}
}

func TestCacheReducesTransferTime(t *testing.T) {
	base := fastCfg()
	noCache, err := RunWith(base, Options{SkipTraining: true})
	if err != nil {
		t.Fatal(err)
	}
	cached := base
	cached.CacheRatio = 0.4
	cached.CachePolicy = cache.Static
	withCache, err := RunWith(cached, Options{SkipTraining: true})
	if err != nil {
		t.Fatal(err)
	}
	if withCache.HitRate <= 0.05 {
		t.Errorf("static cache hit rate %.3f too low", withCache.HitRate)
	}
	if withCache.TimeBreakdown.TTransfer >= noCache.TimeBreakdown.TTransfer {
		t.Errorf("cache did not reduce transfer: %v vs %v",
			withCache.TimeBreakdown.TTransfer, noCache.TimeBreakdown.TTransfer)
	}
	if withCache.MemoryGB <= noCache.MemoryGB {
		t.Errorf("cache did not increase memory: %v vs %v", withCache.MemoryGB, noCache.MemoryGB)
	}
}

func TestBiasedSamplingRaisesHitRate(t *testing.T) {
	base := fastCfg()
	base.CacheRatio = 0.15
	base.CachePolicy = cache.Static
	unbiased, err := RunWith(base, Options{SkipTraining: true})
	if err != nil {
		t.Fatal(err)
	}
	biased := base
	biased.BiasRate = 0.9
	with, err := RunWith(biased, Options{SkipTraining: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.HitRate <= unbiased.HitRate {
		t.Errorf("bias did not raise hit rate: %.3f vs %.3f", with.HitRate, unbiased.HitRate)
	}
}

func TestSkipTrainingFaster(t *testing.T) {
	cfg := fastCfg()
	full, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	skip, err := RunWith(cfg, Options{SkipTraining: true})
	if err != nil {
		t.Fatal(err)
	}
	if skip.Accuracy != 0 || len(skip.AccuracyHistory) != 0 {
		t.Error("SkipTraining still reported accuracy")
	}
	// Timing model outputs must match (same seeds drive sampling).
	if skip.TimeSec != full.TimeSec {
		t.Errorf("timing differs with SkipTraining: %v vs %v", skip.TimeSec, full.TimeSec)
	}
	if skip.WallSec >= full.WallSec {
		t.Logf("note: skip wall %v >= full wall %v (can happen on tiny configs)", skip.WallSec, full.WallSec)
	}
}

func TestAllSamplersRun(t *testing.T) {
	for _, s := range []SamplerKind{SamplerSAGE, SamplerFastGCN, SamplerSAINT} {
		s := s
		t.Run(string(s), func(t *testing.T) {
			cfg := fastCfg()
			cfg.Sampler = s
			if s == SamplerSAINT {
				cfg.Fanouts = nil
				cfg.WalkLength = 6
			}
			perf, err := RunWith(cfg, Options{SkipTraining: true})
			if err != nil {
				t.Fatalf("Run(%s): %v", s, err)
			}
			if perf.TimeSec <= 0 {
				t.Errorf("%s TimeSec = %v", s, perf.TimeSec)
			}
		})
	}
}

func TestInfeasibleWhenCacheExceedsMemory(t *testing.T) {
	cfg := fastCfg()
	cfg.Dataset = dataset.OgbnProducts // 2.45M full vertices
	cfg.Platform = "m90-2g"            // 2 GiB constrained device
	cfg.CacheRatio = 1.0
	cfg.CachePolicy = cache.Static
	// A wide model with big fanouts so runtime memory alone is large.
	cfg.BatchSize = 2048
	cfg.Fanouts = []int{25, 10}
	cfg.Hidden = 512
	perf, err := RunWith(cfg, Options{SkipTraining: true})
	if err != nil {
		t.Fatal(err)
	}
	if perf.Feasible {
		t.Errorf("full products cache + runtime (%.1f GB) on 2 GiB device reported feasible", perf.MemoryGB)
	}
	// The same config on the 80 GiB A100 must be feasible.
	cfg.Platform = "a100"
	perf, err = RunWith(cfg, Options{SkipTraining: true})
	if err != nil {
		t.Fatal(err)
	}
	if !perf.Feasible {
		t.Errorf("%.1f GB reported infeasible on 80 GiB A100", perf.MemoryGB)
	}
}

func TestReorderRuns(t *testing.T) {
	cfg := fastCfg()
	cfg.Reorder = true
	cfg.CacheRatio = 0.2
	cfg.CachePolicy = cache.Static
	perf, err := RunWith(cfg, Options{SkipTraining: true})
	if err != nil {
		t.Fatalf("Run with reorder: %v", err)
	}
	if perf.HitRate <= 0 {
		t.Error("reordered run has zero hit rate with static cache")
	}
}

// TestCPUOnlyCachingBuysNothing: on the CPU-only platform the link is a
// memcpy, so a cache cannot meaningfully reduce epoch time — the paper's
// motivation for platform-adaptive guidelines.
func TestCPUOnlyCachingBuysNothing(t *testing.T) {
	base := fastCfg()
	base.Dataset = dataset.Reddit2
	base.Platform = "cpu-only"
	noCache, err := RunWith(base, Options{SkipTraining: true})
	if err != nil {
		t.Fatal(err)
	}
	cached := base
	cached.CacheRatio = 0.45
	cached.CachePolicy = cache.Static
	withCache, err := RunWith(cached, Options{SkipTraining: true})
	if err != nil {
		t.Fatal(err)
	}
	cpuGain := noCache.TimeSec / withCache.TimeSec

	// The same pair on the PCIe-attached GPU platform must gain more.
	gpuBase := base
	gpuBase.Platform = "rtx4090"
	gpuNo, err := RunWith(gpuBase, Options{SkipTraining: true})
	if err != nil {
		t.Fatal(err)
	}
	gpuCached := cached
	gpuCached.Platform = "rtx4090"
	gpuWith, err := RunWith(gpuCached, Options{SkipTraining: true})
	if err != nil {
		t.Fatal(err)
	}
	gpuGain := gpuNo.TimeSec / gpuWith.TimeSec
	if cpuGain >= gpuGain {
		t.Errorf("cache gain on CPU-only (%.3fx) not below GPU (%.3fx)", cpuGain, gpuGain)
	}
	if cpuGain > 1.1 {
		t.Errorf("cache sped up CPU-only training %.2fx; transfers should be ~free", cpuGain)
	}
}

// TestTemplatesAcrossDatasets: every template must run on every dataset.
func TestTemplatesAcrossDatasets(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-product of templates x datasets is slow")
	}
	for _, ds := range dataset.Names() {
		for _, tpl := range Templates() {
			cfg, err := FromTemplate(tpl, ds, model.SAGE, "rtx4090")
			if err != nil {
				t.Fatalf("FromTemplate(%s, %s): %v", tpl, ds, err)
			}
			cfg.Epochs = 1
			perf, err := RunWith(cfg, Options{SkipTraining: true})
			if err != nil {
				t.Fatalf("Run(%s, %s): %v", tpl, ds, err)
			}
			if perf.TimeSec <= 0 || perf.MemoryGB <= 0 {
				t.Errorf("%s on %s degenerate: %+v", tpl, ds, perf)
			}
		}
	}
}

func TestEvaluateErrors(t *testing.T) {
	d := dataset.MustLoad(dataset.OgbnArxiv)
	m, err := model.New(model.Config{
		Kind: model.SAGE, InDim: d.Graph.FeatDim, Hidden: 4,
		OutDim: d.Graph.NumClasses, Layers: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(context.Background(), m, d.Graph, nil, 0, 1); err == nil {
		t.Error("Evaluate with empty index accepted")
	}
	bad, err := model.New(model.Config{Kind: model.SAGE, InDim: 4, Hidden: 4, OutDim: 2, Layers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Evaluate(context.Background(), bad, d.Graph, d.ValIdx, 0, 1); err == nil {
		t.Error("Evaluate with mismatched model input width accepted")
	}
}
