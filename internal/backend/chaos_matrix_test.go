package backend

import (
	"errors"
	"fmt"
	"path/filepath"
	"strings"
	"testing"

	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/model"
	"gnnavigator/internal/plan"
	"gnnavigator/internal/tensor"
)

// chaosTrial runs the full persistence + train + resume workflow,
// passing through every injection point reachable from this package:
// plan save/load, the pipeline's sample and gather stages, the tensor
// worker pool, the cache shard update, checkpoint save/load and model
// save/load. It returns the training run's Perf and the resumed run's
// Perf.
func chaosTrial(dir string, cfg Config) (*Perf, *Perf, error) {
	p, err := CompilePlan(cfg)
	if err != nil {
		return nil, nil, err
	}
	planPath := filepath.Join(dir, "epoch.plan")
	if err := plan.SaveFile(planPath, p); err != nil {
		return nil, nil, err
	}
	loaded, err := plan.LoadFile(planPath)
	if err != nil {
		return nil, nil, err
	}
	ckpt := filepath.Join(dir, "run.ckpt")
	mdlPath := filepath.Join(dir, "run.gnav")
	p1, err := RunWith(cfg, Options{Plan: loaded, CheckpointPath: ckpt, SaveModelPath: mdlPath})
	if err != nil {
		return nil, nil, err
	}
	if _, err := model.Load(mdlPath); err != nil {
		return nil, nil, err
	}
	// Resume from the final snapshot: a pure fast-forward that must
	// reproduce the run it replays.
	p2, err := RunWith(cfg, Options{ResumeFrom: ckpt})
	if err != nil {
		return nil, nil, err
	}
	return p1, p2, nil
}

// TestChaosMatrixEveryPoint is the armed-fault matrix of the chaos
// suite: each injection point in the catalog is armed in turn (error,
// delay, and — where a containment layer exists by design — panic), and
// the workflow must either return a clean, recognizable error or finish
// with results identical to the unfaulted reference. Never a crash, a
// hang (the CI job adds a wall-clock timeout), or silent corruption.
func TestChaosMatrixEveryPoint(t *testing.T) {
	defer faultinject.Reset()
	// The tensor/worker point fires per dispatched shard job, and a
	// single-CPU host dispatches none — force two workers so the pool
	// path actually runs (outputs are pinned identical at any count).
	defer tensor.WithParallelism(2)()
	cfg := ckptCfg()
	cfg.Epochs = 2
	ref1, ref2, err := chaosTrial(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	// The dist points only fire on multi-device runs, so they get their
	// own trial config (and reference) on a two-device platform.
	multi := cfg
	multi.Platform = "rtx4090x2"
	multi.Devices = 2
	refM1, refM2, err := chaosTrial(t.TempDir(), multi)
	if err != nil {
		t.Fatal(err)
	}
	distPoints := map[faultinject.Point]bool{
		faultinject.DistHalo:      true,
		faultinject.DistAllReduce: true,
	}

	// The stage/worker sites run under the pipeline's (or the tensor
	// pool's) panic containment (dist/halo fires inside the gather
	// stage); the IO points and dist/allreduce are plain error-return
	// sites, so Panic is out of contract there.
	contained := map[faultinject.Point]bool{
		faultinject.PipelineSample: true,
		faultinject.PipelineGather: true,
		faultinject.TensorWorker:   true,
		faultinject.CacheShard:     true,
		faultinject.DistHalo:       true,
	}
	for _, pt := range faultinject.Points() {
		if pt == faultinject.EstimatorProbe {
			// estimator/probe sits above this package (the estimator
			// imports backend); its chaos coverage lives in package
			// estimator.
			continue
		}
		if pt == faultinject.ServeDecode || pt == faultinject.ServeFlush {
			// The serving points sit outside the training workflow; their
			// chaos coverage lives in packages serve (TestChaosServeDecode)
			// and infer (TestChaosServeFlush).
			continue
		}
		kinds := []faultinject.Kind{faultinject.Error, faultinject.Delay}
		if contained[pt] {
			kinds = append(kinds, faultinject.Panic)
		}
		trialCfg, trialRef1, trialRef2 := cfg, ref1, ref2
		if distPoints[pt] {
			trialCfg, trialRef1, trialRef2 = multi, refM1, refM2
		}
		for _, kind := range kinds {
			t.Run(fmt.Sprintf("%s/%s", pt, kind), func(t *testing.T) {
				defer faultinject.Reset()
				faultinject.Arm(pt, faultinject.Spec{Kind: kind, Count: 1})
				before := faultinject.Hits(pt)
				p1, p2, err := chaosTrial(t.TempDir(), trialCfg)
				faultinject.Reset()
				if faultinject.Hits(pt) == before {
					t.Fatalf("trial never passed through %s", pt)
				}
				if kind == faultinject.Delay {
					if err != nil {
						t.Fatalf("delay fault failed the trial: %v", err)
					}
					perfEqual(t, "delayed trial run", p1, trialRef1)
					perfEqual(t, "delayed trial resume", p2, trialRef2)
					return
				}
				if err == nil {
					t.Fatalf("armed %s fault at %s was hit but produced no error", kind, pt)
				}
				if !errors.Is(err, faultinject.ErrInjected) && !strings.Contains(err.Error(), "injected") {
					t.Fatalf("fault surfaced as an unrecognizable error: %v", err)
				}
			})
		}
	}

	// After the whole matrix, a clean trial still reproduces the
	// reference bit-for-bit: no armed fault left residue behind.
	p1, p2, err := chaosTrial(t.TempDir(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	perfEqual(t, "post-matrix run", p1, ref1)
	perfEqual(t, "post-matrix resume", p2, ref2)
}
