package backend

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"

	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/model"
	"gnnavigator/internal/nn"
)

// Checkpoint persistence for RunWith: a periodic atomic snapshot of
// everything the training consumer mutates that the pipeline cannot
// re-derive — model parameters, Adam moments, and the per-epoch accuracy
// history — keyed by the run config's fingerprint and the number of
// completed epochs.
//
// Everything else (cache residency, plan position, Perf volume counters)
// is a pure function of the config, so resume reconstructs it by
// fast-forwarding the pipeline through the completed epochs with the NN
// work skipped; see RunWith. That is what makes a resumed run
// bitwise-identical to a never-interrupted one.
//
// Format: magic "GNAVCKP1", body, CRC-64/ECMA of the body as the
// trailing 8 bytes (little-endian) — the same footer discipline as the
// GNAVPLN2 plan format. Files are written atomically (tmp+rename) and a
// failed write or rename leaves no *.tmp behind.

var ckptMagic = [8]byte{'G', 'N', 'A', 'V', 'C', 'K', 'P', '1'}

// snapshotCheckpoint captures the training state after `epochs`
// completed epochs (copies everywhere — the run keeps mutating the
// originals).
func snapshotCheckpoint(cfg Config, mdl *model.Model, opt *nn.Adam, epochs int, accHistory []float64) *Checkpoint {
	params := mdl.Params()
	ck := &Checkpoint{
		Fingerprint: cfg.Fingerprint(),
		Epochs:      epochs,
		Params:      make([][]float64, len(params)),
		Adam:        opt.State(params),
		AccHistory:  append([]float64(nil), accHistory...),
	}
	for i, p := range params {
		ck.Params[i] = append([]float64(nil), p.Value.Data...)
	}
	return ck
}

// restoreCheckpoint installs a verified snapshot into a freshly built
// model/optimizer pair.
func restoreCheckpoint(mdl *model.Model, opt *nn.Adam, ck *Checkpoint) error {
	params := mdl.Params()
	if len(ck.Params) != len(params) {
		return fmt.Errorf("checkpoint holds %d params, model has %d", len(ck.Params), len(params))
	}
	for i, p := range params {
		if len(ck.Params[i]) != len(p.Value.Data) {
			return fmt.Errorf("checkpoint param %d holds %d scalars, model param %q has %d",
				i, len(ck.Params[i]), p.Name, len(p.Value.Data))
		}
	}
	for i, p := range params {
		copy(p.Value.Data, ck.Params[i])
	}
	return opt.SetState(params, ck.Adam)
}

var ckptCRC = crc64.MakeTable(crc64.ECMA)

// Checkpoint is one resumable training snapshot.
type Checkpoint struct {
	// Fingerprint identifies the run configuration the snapshot belongs
	// to (Config.Fingerprint()); resume refuses a mismatch rather than
	// silently continuing a different run.
	Fingerprint string
	// Epochs is the number of fully completed training epochs.
	Epochs int
	// Params holds every trainable parameter's values, flattened, in
	// Model.Params() order.
	Params [][]float64
	// Adam is the optimizer state over the same parameter order.
	Adam nn.AdamState
	// AccHistory is the per-epoch validation accuracy so far (length
	// Epochs).
	AccHistory []float64
}

// SaveCheckpoint writes ck to path atomically.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	if err := faultinject.Fire(faultinject.CheckpointSave); err != nil {
		return fmt.Errorf("backend: save checkpoint %s: %w", path, err)
	}
	var body bytes.Buffer
	if err := writeCheckpointBody(&body, ck); err != nil {
		return fmt.Errorf("backend: save checkpoint %s: %w", path, err)
	}
	payload := body.Bytes()
	// Checksum the intact body; the chaos Mutate hook corrupts after, so
	// the load side must catch it.
	sum := crc64.Checksum(payload, ckptCRC)
	faultinject.Mutate(faultinject.CheckpointSave, payload)
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	werr := func() error {
		w := bufio.NewWriter(f)
		if _, err := w.Write(ckptMagic[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, sum); err != nil {
			return err
		}
		return w.Flush()
	}()
	if werr != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("backend: save checkpoint %s: %w", path, werr)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("backend: save checkpoint %s: %w", path, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("backend: save checkpoint %s: %w", path, err)
	}
	return nil
}

// LoadCheckpoint reads and verifies a snapshot written by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	if err := faultinject.Fire(faultinject.CheckpointLoad); err != nil {
		return nil, fmt.Errorf("backend: load checkpoint %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(ckptMagic)+8 {
		return nil, fmt.Errorf("backend: load checkpoint %s: truncated (%d bytes)", path, len(data))
	}
	var magic [8]byte
	copy(magic[:], data)
	if magic != ckptMagic {
		return nil, fmt.Errorf("backend: load checkpoint %s: bad magic %q", path, magic[:])
	}
	payload, footer := data[8:len(data)-8], data[len(data)-8:]
	want := binary.LittleEndian.Uint64(footer)
	if got := crc64.Checksum(payload, ckptCRC); got != want {
		return nil, fmt.Errorf("backend: load checkpoint %s: checksum mismatch: file says %016x, body hashes to %016x (corrupt or truncated)", path, want, got)
	}
	br := bytes.NewReader(payload)
	ck, err := readCheckpointBody(br)
	if err != nil {
		return nil, fmt.Errorf("backend: load checkpoint %s: %w", path, err)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("backend: load checkpoint %s: %d trailing bytes after body", path, br.Len())
	}
	return ck, nil
}

func writeCheckpointBody(w io.Writer, ck *Checkpoint) error {
	if err := ckWriteString(w, ck.Fingerprint); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(ck.Epochs)); err != nil {
		return err
	}
	if err := ckWriteFloats(w, ck.AccHistory); err != nil {
		return err
	}
	if err := binary.Write(w, binary.LittleEndian, int64(len(ck.Params))); err != nil {
		return err
	}
	for _, p := range ck.Params {
		if err := ckWriteFloats(w, p); err != nil {
			return err
		}
	}
	if err := binary.Write(w, binary.LittleEndian, int64(ck.Adam.T)); err != nil {
		return err
	}
	if len(ck.Adam.M) != len(ck.Params) || len(ck.Adam.V) != len(ck.Params) {
		return fmt.Errorf("checkpoint adam state holds %d/%d moment vectors for %d params",
			len(ck.Adam.M), len(ck.Adam.V), len(ck.Params))
	}
	for i := range ck.Params {
		if err := ckWriteFloats(w, ck.Adam.M[i]); err != nil {
			return err
		}
		if err := ckWriteFloats(w, ck.Adam.V[i]); err != nil {
			return err
		}
	}
	return nil
}

func readCheckpointBody(r io.Reader) (*Checkpoint, error) {
	ck := &Checkpoint{}
	var err error
	if ck.Fingerprint, err = ckReadString(r); err != nil {
		return nil, err
	}
	var epochs int64
	if err := binary.Read(r, binary.LittleEndian, &epochs); err != nil {
		return nil, err
	}
	if epochs < 0 || epochs > 1<<20 {
		return nil, fmt.Errorf("corrupt epoch count %d", epochs)
	}
	ck.Epochs = int(epochs)
	if ck.AccHistory, err = ckReadFloats(r); err != nil {
		return nil, err
	}
	var nparams int64
	if err := binary.Read(r, binary.LittleEndian, &nparams); err != nil {
		return nil, err
	}
	if nparams < 0 || nparams > 1<<20 {
		return nil, fmt.Errorf("corrupt param count %d", nparams)
	}
	ck.Params = make([][]float64, nparams)
	for i := range ck.Params {
		if ck.Params[i], err = ckReadFloats(r); err != nil {
			return nil, err
		}
	}
	var t int64
	if err := binary.Read(r, binary.LittleEndian, &t); err != nil {
		return nil, err
	}
	ck.Adam.T = int(t)
	ck.Adam.M = make([][]float64, nparams)
	ck.Adam.V = make([][]float64, nparams)
	for i := 0; i < int(nparams); i++ {
		if ck.Adam.M[i], err = ckReadFloats(r); err != nil {
			return nil, err
		}
		if ck.Adam.V[i], err = ckReadFloats(r); err != nil {
			return nil, err
		}
	}
	return ck, nil
}

func ckWriteString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func ckReadString(r io.Reader) (string, error) {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n < 0 || n > 1<<20 {
		return "", fmt.Errorf("corrupt string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// ckWriteFloats writes a length-prefixed []float64; nil and empty both
// round-trip as length 0 → nil, which is what AdamState uses to mean
// "untouched moments".
func ckWriteFloats(w io.Writer, arr []float64) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(arr))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, arr)
}

func ckReadFloats(r io.Reader) ([]float64, error) {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<32 {
		return nil, fmt.Errorf("corrupt array length %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	arr := make([]float64, n)
	if err := binary.Read(r, binary.LittleEndian, arr); err != nil {
		return nil, err
	}
	return arr, nil
}
