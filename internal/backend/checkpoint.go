package backend

import (
	"bytes"
	"fmt"
	"io"

	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/model"
	"gnnavigator/internal/nn"
	"gnnavigator/internal/safefile"
)

// Checkpoint persistence for RunWith: a periodic atomic snapshot of
// everything the training consumer mutates that the pipeline cannot
// re-derive — model parameters, Adam moments, and the per-epoch accuracy
// history — keyed by the run config's fingerprint and the number of
// completed epochs.
//
// Everything else (cache residency, plan position, Perf volume counters)
// is a pure function of the config, so resume reconstructs it by
// fast-forwarding the pipeline through the completed epochs with the NN
// work skipped; see RunWith. That is what makes a resumed run
// bitwise-identical to a never-interrupted one.
//
// Format: magic "GNAVCKP1", body, CRC-64/ECMA of the body as the
// trailing 8 bytes (little-endian) — the footer discipline shared with
// the plan and model formats via internal/safefile. Files are written
// atomically (tmp+rename) and a failed write or rename leaves no *.tmp
// behind.

var ckptMagic = [8]byte{'G', 'N', 'A', 'V', 'C', 'K', 'P', '1'}

// snapshotCheckpoint captures the training state after `epochs`
// completed epochs (copies everywhere — the run keeps mutating the
// originals).
func snapshotCheckpoint(cfg Config, mdl *model.Model, opt *nn.Adam, epochs int, accHistory []float64) *Checkpoint {
	params := mdl.Params()
	ck := &Checkpoint{
		Fingerprint: cfg.Fingerprint(),
		Epochs:      epochs,
		Params:      make([][]float64, len(params)),
		Adam:        opt.State(params),
		AccHistory:  append([]float64(nil), accHistory...),
	}
	for i, p := range params {
		ck.Params[i] = append([]float64(nil), p.Value.Data...)
	}
	return ck
}

// restoreCheckpoint installs a verified snapshot into a freshly built
// model/optimizer pair.
func restoreCheckpoint(mdl *model.Model, opt *nn.Adam, ck *Checkpoint) error {
	params := mdl.Params()
	if len(ck.Params) != len(params) {
		return fmt.Errorf("checkpoint holds %d params, model has %d", len(ck.Params), len(params))
	}
	for i, p := range params {
		if len(ck.Params[i]) != len(p.Value.Data) {
			return fmt.Errorf("checkpoint param %d holds %d scalars, model param %q has %d",
				i, len(ck.Params[i]), p.Name, len(p.Value.Data))
		}
	}
	for i, p := range params {
		copy(p.Value.Data, ck.Params[i])
	}
	return opt.SetState(params, ck.Adam)
}

// Checkpoint is one resumable training snapshot.
type Checkpoint struct {
	// Fingerprint identifies the run configuration the snapshot belongs
	// to (Config.Fingerprint()); resume refuses a mismatch rather than
	// silently continuing a different run.
	Fingerprint string
	// Epochs is the number of fully completed training epochs.
	Epochs int
	// Params holds every trainable parameter's values, flattened, in
	// Model.Params() order.
	Params [][]float64
	// Adam is the optimizer state over the same parameter order.
	Adam nn.AdamState
	// AccHistory is the per-epoch validation accuracy so far (length
	// Epochs).
	AccHistory []float64
}

// SaveCheckpoint writes ck to path atomically.
func SaveCheckpoint(path string, ck *Checkpoint) error {
	if err := faultinject.Fire(faultinject.CheckpointSave); err != nil {
		return fmt.Errorf("backend: save checkpoint %s: %w", path, err)
	}
	var body bytes.Buffer
	if err := writeCheckpointBody(&body, ck); err != nil {
		return fmt.Errorf("backend: save checkpoint %s: %w", path, err)
	}
	payload := body.Bytes()
	// Checksum the intact body; the chaos Mutate hook corrupts after, so
	// the load side must catch it.
	sum := safefile.Checksum(payload)
	faultinject.Mutate(faultinject.CheckpointSave, payload)
	if err := safefile.Write(path, ckptMagic, payload, sum); err != nil {
		return fmt.Errorf("backend: save checkpoint %s: %w", path, err)
	}
	return nil
}

// LoadCheckpoint reads and verifies a snapshot written by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	if err := faultinject.Fire(faultinject.CheckpointLoad); err != nil {
		return nil, fmt.Errorf("backend: load checkpoint %s: %w", path, err)
	}
	payload, err := safefile.Read(path, ckptMagic)
	if err != nil {
		return nil, fmt.Errorf("backend: load checkpoint %s: %w", path, err)
	}
	br := bytes.NewReader(payload)
	ck, err := readCheckpointBody(br)
	if err != nil {
		return nil, fmt.Errorf("backend: load checkpoint %s: %w", path, err)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("backend: load checkpoint %s: %d trailing bytes after body", path, br.Len())
	}
	return ck, nil
}

func writeCheckpointBody(w io.Writer, ck *Checkpoint) error {
	if err := safefile.WriteString(w, ck.Fingerprint); err != nil {
		return err
	}
	if err := safefile.WriteInt(w, int64(ck.Epochs)); err != nil {
		return err
	}
	if err := safefile.WriteFloats(w, ck.AccHistory); err != nil {
		return err
	}
	if err := safefile.WriteInt(w, int64(len(ck.Params))); err != nil {
		return err
	}
	for _, p := range ck.Params {
		if err := safefile.WriteFloats(w, p); err != nil {
			return err
		}
	}
	if err := safefile.WriteInt(w, int64(ck.Adam.T)); err != nil {
		return err
	}
	if len(ck.Adam.M) != len(ck.Params) || len(ck.Adam.V) != len(ck.Params) {
		return fmt.Errorf("checkpoint adam state holds %d/%d moment vectors for %d params",
			len(ck.Adam.M), len(ck.Adam.V), len(ck.Params))
	}
	for i := range ck.Params {
		if err := safefile.WriteFloats(w, ck.Adam.M[i]); err != nil {
			return err
		}
		if err := safefile.WriteFloats(w, ck.Adam.V[i]); err != nil {
			return err
		}
	}
	return nil
}

func readCheckpointBody(r io.Reader) (*Checkpoint, error) {
	ck := &Checkpoint{}
	var err error
	if ck.Fingerprint, err = safefile.ReadString(r); err != nil {
		return nil, err
	}
	epochs, err := safefile.ReadInt(r)
	if err != nil {
		return nil, err
	}
	if epochs < 0 || epochs > 1<<20 {
		return nil, fmt.Errorf("corrupt epoch count %d", epochs)
	}
	ck.Epochs = int(epochs)
	if ck.AccHistory, err = safefile.ReadFloats(r); err != nil {
		return nil, err
	}
	nparams, err := safefile.ReadInt(r)
	if err != nil {
		return nil, err
	}
	if nparams < 0 || nparams > 1<<20 {
		return nil, fmt.Errorf("corrupt param count %d", nparams)
	}
	ck.Params = make([][]float64, nparams)
	for i := range ck.Params {
		if ck.Params[i], err = safefile.ReadFloats(r); err != nil {
			return nil, err
		}
	}
	t, err := safefile.ReadInt(r)
	if err != nil {
		return nil, err
	}
	ck.Adam.T = int(t)
	ck.Adam.M = make([][]float64, nparams)
	ck.Adam.V = make([][]float64, nparams)
	for i := 0; i < int(nparams); i++ {
		if ck.Adam.M[i], err = safefile.ReadFloats(r); err != nil {
			return nil, err
		}
		if ck.Adam.V[i], err = safefile.ReadFloats(r); err != nil {
			return nil, err
		}
	}
	return ck, nil
}
