package backend

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/faultinject"
)

// ckptCfg is fastCfg with a dynamic cache and dropout switched on — the
// two pieces of state a sloppy resume would get wrong: cache residency
// (reconstructed by replay) and dropout masks (per-batch RNG derivation).
func ckptCfg() Config {
	cfg := fastCfg()
	cfg.Epochs = 3
	cfg.CacheRatio = 0.05
	cfg.CachePolicy = cache.LRU
	cfg.Dropout = 0.2
	return cfg
}

// perfEqual compares two Perf results bitwise, ignoring only the actual
// wall clock.
func perfEqual(t *testing.T, label string, got, want *Perf) {
	t.Helper()
	a, b := *got, *want
	a.WallSec, b.WallSec = 0, 0
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("%s: Perf differs:\ngot:  %+v\nwant: %+v", label, a, b)
	}
}

// TestResumeBitwiseIdentical is the acceptance contract: a run
// checkpointed after epoch k and resumed produces final weights and Perf
// counters bitwise-identical to the uninterrupted run — at prefetch
// depths 0, 1 and 4, crossed between the interrupted and resumed halves.
func TestResumeBitwiseIdentical(t *testing.T) {
	cfg := ckptCfg()
	ref, err := RunWith(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	refParams := paramSnapshot(t, cfg, 0, "")

	for _, prefetch := range []int{-1, 1, 4} {
		t.Run(fmt.Sprintf("prefetch=%d", prefetch), func(t *testing.T) {
			defer faultinject.Reset()
			ckpt := filepath.Join(t.TempDir(), "run.ckpt")
			// Interrupted run: with CheckpointEvery=2 and 3 epochs, the run
			// snapshots after epoch 2 and again after epoch 3 (final).
			// Failing the second save deterministically "kills" the run
			// with exactly the epoch-2 snapshot on disk — the crash-after-
			// epoch-k scenario, reproducible bit-for-bit.
			faultinject.Arm(faultinject.CheckpointSave, faultinject.Spec{Kind: faultinject.Error, After: 1, Count: 1})
			p1, err := RunWith(cfg, Options{
				Prefetch:        prefetch,
				CheckpointPath:  ckpt,
				CheckpointEvery: 2,
			})
			faultinject.Reset()
			if p1 != nil || !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("interrupted run returned (%v, %v), want injected save failure", p1, err)
			}
			mid, err := LoadCheckpoint(ckpt)
			if err != nil {
				t.Fatal(err)
			}
			if mid.Epochs != 2 {
				t.Fatalf("interrupted checkpoint holds %d epochs, want 2", mid.Epochs)
			}
			// Resume from the epoch-2 snapshot and finish the run.
			p2, err := RunWith(cfg, Options{Prefetch: prefetch, ResumeFrom: ckpt})
			if err != nil {
				t.Fatal(err)
			}
			perfEqual(t, "resumed vs uninterrupted", p2, ref)
			gotParams := paramSnapshot(t, cfg, prefetch, ckpt)
			if !reflect.DeepEqual(gotParams, refParams) {
				t.Fatal("resumed final weights differ from the uninterrupted run")
			}
		})
	}
}

// paramSnapshot runs cfg to completion (optionally resuming) and returns
// the final flattened weights.
func paramSnapshot(t *testing.T, cfg Config, prefetch int, resume string) [][]float64 {
	t.Helper()
	// Rebuild deterministically: save a final checkpoint and read the
	// weights out of it, so the comparison covers the persisted form too.
	dir := t.TempDir()
	out := filepath.Join(dir, "final.ckpt")
	_, err := RunWith(cfg, Options{Prefetch: prefetch, ResumeFrom: resume, CheckpointPath: out})
	if err != nil {
		t.Fatal(err)
	}
	ck, err := LoadCheckpoint(out)
	if err != nil {
		t.Fatal(err)
	}
	if ck.Epochs != cfg.Epochs {
		t.Fatalf("final checkpoint records %d epochs, want %d", ck.Epochs, cfg.Epochs)
	}
	return ck.Params
}

// TestCheckpointRejectsMismatch: a snapshot from a different config (or
// too many epochs) must be refused, not silently continued.
func TestCheckpointRejectsMismatch(t *testing.T) {
	cfg := ckptCfg()
	cfg.Epochs = 1
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := RunWith(cfg, Options{CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.LR = cfg.LR * 2
	if _, err := RunWith(other, Options{ResumeFrom: ckpt}); err == nil || !strings.Contains(err.Error(), "different config") {
		t.Fatalf("resume under a different config returned %v", err)
	}
	// ck.Epochs (1) > cfg.Epochs would need Epochs 0, which Validate
	// rejects; equal is allowed and runs zero training batches.
	same, err := RunWith(cfg, Options{ResumeFrom: ckpt})
	if err != nil {
		t.Fatalf("resume with all epochs complete failed: %v", err)
	}
	full, err := RunWith(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	perfEqual(t, "fully-resumed vs fresh", same, full)
	// SkipTraining cannot resume or checkpoint.
	if _, err := RunWith(cfg, Options{SkipTraining: true, ResumeFrom: ckpt}); err == nil {
		t.Fatal("SkipTraining+ResumeFrom accepted")
	}
	if _, err := RunWith(cfg, Options{SkipTraining: true, CheckpointPath: ckpt}); err == nil {
		t.Fatal("SkipTraining+CheckpointPath accepted")
	}
}

// TestCheckpointRejectsCorruption: bit flips and truncation anywhere in
// the file fail the CRC-64 footer check.
func TestCheckpointRejectsCorruption(t *testing.T) {
	cfg := ckptCfg()
	cfg.Epochs = 1
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	if _, err := RunWith(cfg, Options{CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(t.TempDir(), "bad.ckpt")
	for _, pos := range []int{0, 12, len(data) / 2, len(data) - 4} {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x08
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(bad); err == nil {
			t.Errorf("bit flip at byte %d of %d loaded without error", pos, len(data))
		}
	}
	for _, n := range []int{0, 8, len(data) / 2, len(data) - 1} {
		if err := os.WriteFile(bad, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadCheckpoint(bad); err == nil {
			t.Errorf("checkpoint truncated to %d of %d bytes loaded without error", n, len(data))
		}
	}
}

// TestChaosCheckpointCorruptInjection: an armed Corrupt fault damages
// the payload after the checksum is computed; the resume must refuse the
// file, never train on corrupt weights.
func TestChaosCheckpointCorruptInjection(t *testing.T) {
	defer faultinject.Reset()
	cfg := ckptCfg()
	cfg.Epochs = 1
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	faultinject.Arm(faultinject.CheckpointSave, faultinject.Spec{Kind: faultinject.Corrupt, Seed: 11, Bits: 1, Count: 1})
	if _, err := RunWith(cfg, Options{CheckpointPath: ckpt}); err != nil {
		t.Fatalf("corrupt-armed run failed at save time: %v", err)
	}
	faultinject.Reset()
	if _, err := RunWith(cfg, Options{ResumeFrom: ckpt}); err == nil || !strings.Contains(err.Error(), "checksum") {
		t.Fatalf("resume from silently corrupted checkpoint returned %v", err)
	}
}

// TestChaosCheckpointIOInjection: Error faults at the save/load points
// surface cleanly and leave no tmp files.
func TestChaosCheckpointIOInjection(t *testing.T) {
	defer faultinject.Reset()
	cfg := ckptCfg()
	cfg.Epochs = 1
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	faultinject.Arm(faultinject.CheckpointSave, faultinject.Spec{Kind: faultinject.Error, Count: 1})
	if _, err := RunWith(cfg, Options{CheckpointPath: ckpt}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("run with failing checkpoint save returned %v", err)
	}
	if _, err := os.Stat(ckpt + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("failed checkpoint save stranded a tmp file")
	}
	faultinject.Reset()
	if _, err := RunWith(cfg, Options{CheckpointPath: ckpt}); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.CheckpointLoad, faultinject.Spec{Kind: faultinject.Error, Count: 1})
	if _, err := RunWith(cfg, Options{ResumeFrom: ckpt}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("resume with failing checkpoint load returned %v", err)
	}
}

// TestCheckpointSaveCleansUpTmpOnRenameFailure mirrors the plan-side
// satellite fix for the checkpoint writer.
func TestCheckpointSaveCleansUpTmpOnRenameFailure(t *testing.T) {
	target := filepath.Join(t.TempDir(), "is-a-dir")
	if err := os.MkdirAll(filepath.Join(target, "x"), 0o755); err != nil {
		t.Fatal(err)
	}
	ck := &Checkpoint{Fingerprint: "f", Epochs: 0}
	if err := SaveCheckpoint(target, ck); err == nil {
		t.Fatal("SaveCheckpoint onto a non-empty directory succeeded")
	}
	if _, err := os.Stat(target + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp file stranded after failed rename: stat err = %v", err)
	}
}
