// Package backend implements GNNavigator's reconfigurable runtime backend
// (Fig. 3): a single parameterized training engine whose configuration
// space subsumes the systems the paper compares against. A Config selects
// sampler, hop list, bias rate, cache ratio and policy, model architecture
// and batch size; Run executes real mini-batch training on the scaled
// synthetic graph while the simulator (internal/sim) prices every
// iteration on the chosen hardware platform at paper scale.
package backend

import (
	"fmt"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/hw"
	"gnnavigator/internal/model"
)

// SamplerKind names a sampling strategy (Fig. 3 "Sampler Choices").
type SamplerKind string

// Supported sampler kinds.
const (
	SamplerSAGE    SamplerKind = "sage"    // node-wise neighbor sampling
	SamplerFastGCN SamplerKind = "fastgcn" // layer-wise importance sampling
	SamplerSAINT   SamplerKind = "saint"   // subgraph-wise random walks
)

// Config is one point in the design space: every blue-dashed reconfigurable
// setting of Fig. 3.
type Config struct {
	// Workload.
	Dataset  string
	Platform string // key into hw.Profiles()

	// Cat. 1: sampling.
	Sampler    SamplerKind
	BatchSize  int   // |B_0|
	Fanouts    []int // hop list (node-wise); per-hop vertex budgets are derived for layer-wise
	WalkLength int   // subgraph-wise only
	BiasRate   float64

	// Cat. 2: transmission.
	CacheRatio  float64 // r: fraction of |V| resident on device
	CachePolicy cache.Policy
	// Precision is the feature-plane storage width (float32 baseline
	// when empty): it selects how cached rows are stored and how the
	// host link prices transfers, and rescales the cache capacity a
	// fixed Γ budget buys.
	Precision cache.Precision

	// Cat. 3: model design.
	Model   model.Kind
	Hidden  int
	Layers  int
	Heads   int
	Dropout float64

	// Cat. 4: computation.
	Reorder bool // degree-descending relabel before training

	// Cat. 5: scale-out. Devices is the data-parallel device count K
	// (0 or 1 = single device). K > 1 partitions the graph's vertices
	// into K shards, gives each device its own feature-cache shard over
	// its shard's vertices, meters halo-exchange and all-reduce traffic,
	// and divides the simulator's per-device terms by K. The determinism
	// contract extends across K: results are bitwise-identical to the
	// single-device run. K must be a power of two (the ordered tree
	// all-reduce is IEEE-exact only then) no larger than the platform's
	// device count, and the Opt cache policy is single-device only (its
	// Belady script indexes the global access stream, which shards do
	// not see).
	Devices int
	// Partition selects the vertex partitioner for Devices > 1
	// (graph.PartitionHash or graph.PartitionGreedy; empty = greedy).
	Partition graph.PartitionStrategy

	// Training loop.
	Epochs int
	LR     float64
	Seed   int64
}

// Validate checks the configuration against the backend's limits.
func (c Config) Validate() error {
	if _, err := dataset.Load(c.Dataset); err != nil {
		return fmt.Errorf("backend: %w", err)
	}
	if _, ok := hw.Profiles()[c.Platform]; !ok {
		return fmt.Errorf("backend: unknown platform %q", c.Platform)
	}
	switch c.Sampler {
	case SamplerSAGE, SamplerFastGCN:
		if len(c.Fanouts) == 0 {
			return fmt.Errorf("backend: sampler %q needs a hop list", c.Sampler)
		}
		if len(c.Fanouts) != c.Layers {
			return fmt.Errorf("backend: hop list length %d != layers %d", len(c.Fanouts), c.Layers)
		}
	case SamplerSAINT:
		if c.WalkLength < 1 {
			return fmt.Errorf("backend: saint sampler needs WalkLength >= 1")
		}
	default:
		return fmt.Errorf("backend: unknown sampler %q", c.Sampler)
	}
	if c.BatchSize < 1 {
		return fmt.Errorf("backend: batch size %d < 1", c.BatchSize)
	}
	if c.BiasRate < 0 || c.BiasRate > 1 {
		return fmt.Errorf("backend: bias rate %v out of [0,1]", c.BiasRate)
	}
	if c.CacheRatio < 0 || c.CacheRatio > 1 {
		return fmt.Errorf("backend: cache ratio %v out of [0,1]", c.CacheRatio)
	}
	if !c.CachePolicy.Valid() {
		return fmt.Errorf("backend: unknown cache policy %q", c.CachePolicy)
	}
	if !c.Precision.Valid() {
		return fmt.Errorf("backend: unknown feature precision %q (have %v)", c.Precision, cache.Precisions())
	}
	if c.CacheRatio > 0 && c.CachePolicy == cache.None {
		return fmt.Errorf("backend: cache ratio %v with policy none", c.CacheRatio)
	}
	if c.BiasRate > 0 && c.CacheRatio == 0 {
		return fmt.Errorf("backend: cache-aware bias needs a cache (ratio > 0)")
	}
	if c.CachePolicy == cache.Opt && c.BiasRate > 0 {
		// Circular dependency: Opt's eviction script needs the exact future
		// access order (a replayable plan), but cache-aware bias makes the
		// access order depend on residency — which Opt's evictions mutate.
		return fmt.Errorf("backend: opt cache policy requires unbiased sampling (BiasRate %v)", c.BiasRate)
	}
	if c.Devices < 0 {
		return fmt.Errorf("backend: device count %d < 0", c.Devices)
	}
	if k := c.DeviceCount(); k > 1 {
		if k&(k-1) != 0 {
			return fmt.Errorf("backend: device count %d is not a power of two (the ordered all-reduce is IEEE-exact only for powers of two)", k)
		}
		if have := hw.Profiles()[c.Platform].DeviceCount(); k > have {
			return fmt.Errorf("backend: %d devices requested but platform %q has %d", k, c.Platform, have)
		}
		if c.CachePolicy == cache.Opt {
			return fmt.Errorf("backend: opt cache policy is single-device only (its Belady script indexes the global access stream)")
		}
	}
	if c.Partition != "" && !c.Partition.Valid() {
		return fmt.Errorf("backend: unknown partition strategy %q (have %v)", c.Partition, graph.PartitionStrategies())
	}
	if c.Layers < 1 || c.Hidden < 1 {
		return fmt.Errorf("backend: bad model dims layers=%d hidden=%d", c.Layers, c.Hidden)
	}
	if c.Epochs < 1 {
		return fmt.Errorf("backend: epochs %d < 1", c.Epochs)
	}
	if c.LR <= 0 {
		return fmt.Errorf("backend: learning rate %v <= 0", c.LR)
	}
	return nil
}

// Template names the configuration presets of Fig. 3 — each reproduces an
// existing system on the unified backend.
type Template string

// Built-in templates.
const (
	TemplatePyG     Template = "pyg"      // no cache, big fanouts
	TemplatePaFull  Template = "pa-full"  // PaGraph, ideal memory
	TemplatePaLow   Template = "pa-low"   // PaGraph, resource-limited
	Template2PGraph Template = "2pgraph"  // cache-aware biased sampling
	TemplateSAINT   Template = "saint"    // GraphSAINT random walks
	TemplateFastGCN Template = "fast-gcn" // FastGCN layer-wise
)

// Templates lists all presets in presentation order.
func Templates() []Template {
	return []Template{TemplatePyG, TemplatePaFull, TemplatePaLow,
		Template2PGraph, TemplateSAINT, TemplateFastGCN}
}

// FromTemplate instantiates a template for a dataset/model/platform triple.
// The returned Config is a starting point; callers may tweak any knob —
// that is the whole point of the reconfigurable backend.
func FromTemplate(tpl Template, ds string, kind model.Kind, platform string) (Config, error) {
	base := Config{
		Dataset:  ds,
		Platform: platform,
		Model:    kind,
		Hidden:   64,
		Layers:   2,
		Heads:    2,
		Dropout:  0.1,
		Epochs:   3,
		LR:       0.01,
		Seed:     1,

		Sampler:     SamplerSAGE,
		BatchSize:   1024,
		Fanouts:     []int{25, 10},
		CachePolicy: cache.None,
	}
	switch tpl {
	case TemplatePyG:
		// Stock PyG NeighborLoader defaults: no device cache at all.
	case TemplatePaFull:
		// PaGraph: static degree-ordered cache sized to "free" memory,
		// cache update policy disabled (Fig. 3's template text).
		base.CacheRatio = 0.45
		base.CachePolicy = cache.Static
	case TemplatePaLow:
		base.CacheRatio = 0.08
		base.CachePolicy = cache.Static
	case Template2PGraph:
		// 2PGraph: cache-aware (locality/biased) sampling against a modest
		// static cache; compact batches via smaller fanouts. The small
		// fanouts matter twice: they cut compute, and they leave the
		// biased p(η) real freedom to prefer cached neighbors.
		base.Fanouts = []int{10, 5}
		base.CacheRatio = 0.1
		base.CachePolicy = cache.Static
		base.BiasRate = 0.9
	case TemplateSAINT:
		base.Sampler = SamplerSAINT
		base.WalkLength = 12
		base.BatchSize = 512
		base.Fanouts = nil
	case TemplateFastGCN:
		base.Sampler = SamplerFastGCN
		base.Fanouts = []int{20, 10} // converted to per-hop budgets at run time
	default:
		return Config{}, fmt.Errorf("backend: unknown template %q", tpl)
	}
	if err := base.Validate(); err != nil {
		return Config{}, fmt.Errorf("backend: template %s: %w", tpl, err)
	}
	return base, nil
}

// Fingerprint renders the full configuration as a stable string — the
// identity a checkpoint records so resume can refuse a snapshot taken
// under any different config. Every field participates: two configs
// fingerprint equal iff they run identically (fidelity options like
// prefetch or parallelism are deliberately excluded; outputs are
// pinned bitwise-identical across those).
func (c Config) Fingerprint() string { return fmt.Sprintf("%#v", c) }

// FeaturePrecision resolves the config's feature storage width, with
// the zero value meaning the float32 baseline.
func (c Config) FeaturePrecision() cache.Precision { return c.Precision.OrDefault() }

// DeviceCount resolves the config's data-parallel device count, with
// the zero value meaning a single device.
func (c Config) DeviceCount() int {
	if c.Devices < 1 {
		return 1
	}
	return c.Devices
}

// PartitionStrategy resolves the config's vertex partitioner, with the
// zero value meaning greedy (the edge-cut-minimizing default).
func (c Config) PartitionStrategy() graph.PartitionStrategy {
	if c.Partition == "" {
		return graph.PartitionGreedy
	}
	return c.Partition
}

// Label renders a short human-readable identifier for result tables.
func (c Config) Label() string {
	l := fmt.Sprintf("%s/%s b=%d f=%v r=%.2f/%s bias=%.1f",
		c.Sampler, c.Model, c.BatchSize, c.Fanouts, c.CacheRatio, c.CachePolicy, c.BiasRate)
	if p := c.FeaturePrecision(); p != cache.Float32 {
		l += "/" + string(p)
	}
	if k := c.DeviceCount(); k > 1 {
		l += fmt.Sprintf(" k=%d/%s", k, c.PartitionStrategy())
	}
	return l
}
