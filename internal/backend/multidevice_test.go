package backend

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/graph"
)

// multiCfg is fastCfg on a 4-device platform with a prefilled cache and
// dropout on — the state a sloppy scale-out would get wrong: sharded
// residency (must union to the global cache) and the RNG chains (must
// stay on the single logical training stream).
func multiCfg() Config {
	cfg := fastCfg()
	cfg.Platform = "a100x4"
	cfg.BatchSize = 256
	cfg.CacheRatio = 0.1
	cfg.CachePolicy = cache.Static
	cfg.Dropout = 0.2
	return cfg
}

// multiPerfEqual compares the K-device Perf against the single-device
// reference on every field the determinism contract pins across device
// counts: training outcomes, feature-plane counters and batch shapes.
// Simulated time/memory legitimately differ (the simulator divides
// per-device terms by K), as do the new comm-byte fields (zero at K=1).
func multiPerfEqual(t *testing.T, label string, got, want *Perf) {
	t.Helper()
	if got.Accuracy != want.Accuracy {
		t.Errorf("%s: accuracy %v != %v", label, got.Accuracy, want.Accuracy)
	}
	if !reflect.DeepEqual(got.AccuracyHistory, want.AccuracyHistory) {
		t.Errorf("%s: accuracy history %v != %v", label, got.AccuracyHistory, want.AccuracyHistory)
	}
	if got.HitRate != want.HitRate {
		t.Errorf("%s: hit rate %v != %v", label, got.HitRate, want.HitRate)
	}
	if got.TransferredBytes != want.TransferredBytes {
		t.Errorf("%s: transferred bytes %d != %d", label, got.TransferredBytes, want.TransferredBytes)
	}
	if got.Iterations != want.Iterations {
		t.Errorf("%s: iterations %d != %d", label, got.Iterations, want.Iterations)
	}
	if got.MeanBatchSize != want.MeanBatchSize || got.PeakBatchSize != want.PeakBatchSize ||
		got.MeanBatchEdges != want.MeanBatchEdges || got.PeakBatchEdges != want.PeakBatchEdges {
		t.Errorf("%s: batch shape stats diverge: %v/%d/%v/%d vs %v/%d/%v/%d", label,
			got.MeanBatchSize, got.PeakBatchSize, got.MeanBatchEdges, got.PeakBatchEdges,
			want.MeanBatchSize, want.PeakBatchSize, want.MeanBatchEdges, want.PeakBatchEdges)
	}
}

// TestMultiDeviceBitwiseIdentical is the scale-out acceptance contract:
// K-device runs produce final weights, accuracy history and
// feature-plane counters bitwise-identical to the single-device run, at
// K ∈ {2, 4} crossed with prefetch depths {-1, 1, 4}. Run under -race
// this also shakes out data races in the per-partition fan-out.
func TestMultiDeviceBitwiseIdentical(t *testing.T) {
	base := multiCfg()
	ref, err := RunWith(base, Options{EvalBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	if ref.HaloBytes != 0 || ref.AllReduceBytes != 0 {
		t.Fatalf("single-device run metered comm traffic: halo=%d allreduce=%d",
			ref.HaloBytes, ref.AllReduceBytes)
	}
	refParams := paramSnapshot(t, base, 0, "")

	for _, k := range []int{2, 4} {
		cfg := base
		cfg.Devices = k
		for _, prefetch := range []int{-1, 1, 4} {
			t.Run(fmt.Sprintf("k=%d/prefetch=%d", k, prefetch), func(t *testing.T) {
				p, err := RunWith(cfg, Options{EvalBatch: 256, Prefetch: prefetch})
				if err != nil {
					t.Fatal(err)
				}
				multiPerfEqual(t, fmt.Sprintf("k=%d", k), p, ref)
				if p.HaloBytes <= 0 {
					t.Errorf("k=%d metered no halo traffic", k)
				}
				if p.AllReduceBytes <= 0 {
					t.Errorf("k=%d metered no all-reduce traffic", k)
				}
			})
		}
		t.Run(fmt.Sprintf("k=%d/params", k), func(t *testing.T) {
			if got := paramSnapshot(t, cfg, 4, ""); !reflect.DeepEqual(got, refParams) {
				t.Fatalf("k=%d final weights differ from single-device run", k)
			}
		})
	}
}

// TestMultiDeviceDynamicPolicy covers the dynamic-policy split: LRU
// shards divide the capacity proportionally, so per-shard miss counters
// may lawfully diverge from the global cache's — but the gathered
// features, and therefore weights and accuracy, must not.
func TestMultiDeviceDynamicPolicy(t *testing.T) {
	base := multiCfg()
	base.CachePolicy = cache.LRU
	base.CacheRatio = 0.05
	ref, err := RunWith(base, Options{EvalBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	cfg := base
	cfg.Devices = 2
	cfg.Partition = graph.PartitionHash
	p, err := RunWith(cfg, Options{EvalBatch: 256})
	if err != nil {
		t.Fatal(err)
	}
	if p.Accuracy != ref.Accuracy || !reflect.DeepEqual(p.AccuracyHistory, ref.AccuracyHistory) {
		t.Fatalf("k=2 LRU accuracy diverged: %v/%v vs %v/%v",
			p.Accuracy, p.AccuracyHistory, ref.Accuracy, ref.AccuracyHistory)
	}
	if !reflect.DeepEqual(paramSnapshot(t, cfg, 0, ""), paramSnapshot(t, base, 0, "")) {
		t.Fatal("k=2 LRU final weights differ from single-device run")
	}
}

// TestMultiDeviceValidate covers the scale-out config rules.
func TestMultiDeviceValidate(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative devices", func(c *Config) { c.Devices = -1 }},
		{"non-power-of-two devices", func(c *Config) { c.Devices = 3 }},
		{"more devices than platform", func(c *Config) { c.Devices = 8 }},
		{"devices on single-device platform", func(c *Config) { c.Platform = "rtx4090"; c.Devices = 2 }},
		{"opt policy multi-device", func(c *Config) {
			c.Devices = 2
			c.CacheRatio = 0.1
			c.CachePolicy = cache.Opt
		}},
		{"bad partition strategy", func(c *Config) { c.Devices = 2; c.Partition = "metis" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			c := multiCfg()
			tc.mutate(&c)
			if err := c.Validate(); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
	good := multiCfg()
	good.Devices = 4
	good.Partition = graph.PartitionHash
	if err := good.Validate(); err != nil {
		t.Fatalf("valid multi-device config rejected: %v", err)
	}
	if l := good.Label(); l == multiCfg().Label() {
		t.Fatal("multi-device label does not mention the device count")
	}
}

// TestChaosDistHalo: an error armed at the halo-exchange point must
// surface as a clean, recognizable run error — never a hang or a crash.
// (The point fires inside the gather stage, whose panic containment the
// chaos matrix exercises for the Panic kind.)
func TestChaosDistHalo(t *testing.T) {
	defer faultinject.Reset()
	cfg := multiCfg()
	cfg.Devices = 2
	cfg.Epochs = 1
	faultinject.Arm(faultinject.DistHalo, faultinject.Spec{Kind: faultinject.Error, Count: 1})
	_, err := RunWith(cfg, Options{EvalBatch: 128})
	if faultinject.Hits(faultinject.DistHalo) == 0 {
		t.Fatal("run never passed through dist/halo")
	}
	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected halo fault surfaced as %v, want ErrInjected", err)
	}
}

// TestChaosDistAllReduce: same contract for the all-reduce point, which
// fires on the consumer's gradient-aggregation path.
func TestChaosDistAllReduce(t *testing.T) {
	defer faultinject.Reset()
	cfg := multiCfg()
	cfg.Devices = 2
	cfg.Epochs = 1
	faultinject.Arm(faultinject.DistAllReduce, faultinject.Spec{Kind: faultinject.Error, Count: 1})
	_, err := RunWith(cfg, Options{EvalBatch: 128})
	if faultinject.Hits(faultinject.DistAllReduce) == 0 {
		t.Fatal("run never passed through dist/allreduce")
	}
	if err == nil || !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("injected all-reduce fault surfaced as %v, want ErrInjected", err)
	}
}
