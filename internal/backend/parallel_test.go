package backend

import (
	"testing"

	"gnnavigator/internal/dataset"
	"gnnavigator/internal/model"
)

// TestRunParallelBitwiseEqualSerial runs full training (sampling, cache,
// gather, forward, backward, Adam) at parallelism 1 and 4 with the same
// seed and demands identical results: every sharded kernel preserves the
// serial per-element accumulation order, and all rng draws stay on the
// serial path. Run under -race this also shakes out data races in the
// sharded kernels.
func TestRunParallelBitwiseEqualSerial(t *testing.T) {
	cfg, err := FromTemplate(Template2PGraph, dataset.OgbnArxiv, model.SAGE, "rtx4090")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Epochs = 2
	cfg.BatchSize = 256

	serial, err := RunWith(cfg, Options{EvalBatch: 256, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunWith(cfg, Options{EvalBatch: 256, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}

	if serial.Accuracy != par.Accuracy {
		t.Errorf("accuracy %v (serial) != %v (parallel)", serial.Accuracy, par.Accuracy)
	}
	if len(serial.AccuracyHistory) != len(par.AccuracyHistory) {
		t.Fatalf("history lengths differ: %d vs %d", len(serial.AccuracyHistory), len(par.AccuracyHistory))
	}
	for i := range serial.AccuracyHistory {
		if serial.AccuracyHistory[i] != par.AccuracyHistory[i] {
			t.Errorf("epoch %d accuracy %v != %v", i, serial.AccuracyHistory[i], par.AccuracyHistory[i])
		}
	}
	for i := range serial.EpochTimes {
		if serial.EpochTimes[i] != par.EpochTimes[i] {
			t.Errorf("epoch %d simulated time %v != %v", i, serial.EpochTimes[i], par.EpochTimes[i])
		}
	}
	if serial.MeanBatchSize != par.MeanBatchSize || serial.PeakBatchSize != par.PeakBatchSize {
		t.Errorf("batch stats diverge: %v/%d vs %v/%d",
			serial.MeanBatchSize, serial.PeakBatchSize, par.MeanBatchSize, par.PeakBatchSize)
	}
}

// TestRunGATParallel covers the attention layer's sharded forward on a
// real run at parallel settings (GCN/SAGE are covered above).
func TestRunGATParallel(t *testing.T) {
	cfg, err := FromTemplate(TemplatePyG, dataset.OgbnArxiv, model.GAT, "rtx4090")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Epochs = 1
	cfg.BatchSize = 128
	cfg.Fanouts = []int{5, 5}

	serial, err := RunWith(cfg, Options{EvalBatch: 128, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := RunWith(cfg, Options{EvalBatch: 128, Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	if serial.Accuracy != par.Accuracy {
		t.Errorf("GAT accuracy %v (serial) != %v (parallel)", serial.Accuracy, par.Accuracy)
	}
}
