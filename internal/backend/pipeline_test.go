package backend

import (
	"context"
	"reflect"
	"testing"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/model"
)

// perfFingerprint strips the wall-clock field (the only legitimately
// nondeterministic output) so Perf values can be compared exactly.
func perfFingerprint(p *Perf) Perf {
	q := *p
	q.WallSec = 0
	return q
}

// TestRunPrefetchBitwiseEqualSerial is the acceptance test for the
// pipelined engine: full backend.RunWith (sampling, cache, gather,
// forward, backward, Adam, per-epoch evaluation) at prefetch depths
// {0, 1, 4} must produce bitwise-identical Perf. Per-batch RNGs are
// derived from (seed, epoch, batchIndex), so how far the producer stages
// run ahead cannot change any draw; run under -race (CI does) this also
// shakes out stage/consumer races.
func TestRunPrefetchBitwiseEqualSerial(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		// Dynamic cache: the lookup stage mutates residency ahead of the
		// consumer.
		{"fifo-cache", func(c *Config) {
			c.CacheRatio = 0.2
			c.CachePolicy = cache.FIFO
		}},
		// Biased sampling against a dynamic cache: the coupled path, where
		// the sampler and cache stages must stay fused.
		{"coupled-bias-lru", func(c *Config) {
			c.CacheRatio = 0.2
			c.CachePolicy = cache.LRU
			c.BiasRate = 0.9
		}},
		// Frequency pre-fill: the pre-sample admission pass must be
		// deterministic and independent of the pipeline depth, and the
		// immutable residency lets the bias run unfused.
		{"freq-bias", func(c *Config) {
			c.CacheRatio = 0.2
			c.CachePolicy = cache.Freq
			c.BiasRate = 0.9
		}},
		// No cache at all, SAINT sampler for coverage of a second sampler.
		{"saint-no-cache", func(c *Config) {
			c.Sampler = SamplerSAINT
			c.Fanouts = nil
			c.WalkLength = 6
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := fastCfg()
			cfg.BatchSize = 256
			tc.mutate(&cfg)
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
			base, err := RunWith(cfg, Options{EvalBatch: 256, Prefetch: -1})
			if err != nil {
				t.Fatal(err)
			}
			want := perfFingerprint(base)
			for _, depth := range []int{1, 4} {
				got, err := RunWith(cfg, Options{EvalBatch: 256, Prefetch: depth})
				if err != nil {
					t.Fatal(err)
				}
				if g := perfFingerprint(got); !reflect.DeepEqual(g, want) {
					t.Errorf("prefetch %d diverges from serial:\nserial:   %+v\nprefetch: %+v", depth, want, g)
				}
			}
		})
	}
}

// TestEvaluatePrefetchEqual pins the standalone evaluation path to the
// same contract.
func TestEvaluatePrefetchEqual(t *testing.T) {
	d, err := dataset.Load(dataset.OgbnArxiv)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.New(model.Config{
		Kind: model.SAGE, InDim: d.Graph.FeatDim, Hidden: 16,
		OutDim: d.Graph.NumClasses, Layers: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	serial, err := EvaluateWith(context.Background(), m, d.Graph, d.ValIdx, 1200, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{1, 3} {
		got, err := EvaluateWith(context.Background(), m, d.Graph, d.ValIdx, 1200, 7, depth)
		if err != nil {
			t.Fatal(err)
		}
		if got != serial {
			t.Errorf("eval accuracy at prefetch %d = %v, serial = %v", depth, got, serial)
		}
	}
}
