package backend

import (
	"context"
	"fmt"
	"math"
	"time"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/dist"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/hw"
	"gnnavigator/internal/infer"
	"gnnavigator/internal/model"
	"gnnavigator/internal/nn"
	"gnnavigator/internal/pipeline"
	"gnnavigator/internal/plan"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/sim"
	"gnnavigator/internal/tensor"
)

// Perf is the measured performance triple Perf⟨T, Γ, Acc⟩ of §3.1, plus
// the diagnostics the estimator trains on.
type Perf struct {
	// TimeSec is the simulated epoch time T at paper scale (mean over
	// measured epochs), per Eq. 4.
	TimeSec float64
	// MemoryGB is the simulated peak device memory Γ in gigabytes (1e9).
	MemoryGB float64
	// Accuracy is the validation accuracy from real training on the
	// scaled graph.
	Accuracy float64

	// Feasible is false when Γ exceeds the device's capacity: the config
	// would OOM and its other numbers are hypothetical.
	Feasible bool

	// Diagnostics.
	HitRate float64
	// TransferredBytes is the cumulative host→device feature traffic the
	// feature plane measured on the scaled run (scaled feature width);
	// the simulator rescales it per batch into Eq. 6's t_transfer.
	TransferredBytes int64
	// HaloBytes is the cumulative device-to-device halo-exchange traffic
	// (scaled feature width) the multi-device feature plane metered:
	// rows whose consumer partition is not their owner. 0 for
	// single-device runs.
	HaloBytes int64
	// AllReduceBytes is the cumulative modeled interconnect traffic of
	// the per-step gradient all-reduce (ring schedule, 2(K-1)/K of the
	// parameter payload per device per step). 0 for single-device runs.
	AllReduceBytes  int64
	MeanBatchSize   float64 // mean measured |V_i| (scaled graph)
	PeakBatchSize   int
	PeakBatchEdges  int
	MeanBatchEdges  float64
	Breakdown       sim.MemoryBreakdown
	EpochTimes      []float64
	AccuracyHistory []float64 // validation accuracy after each epoch
	TimeBreakdown   sim.BatchTiming
	WallSec         float64 // actual Go wall-clock spent (informational)
	Iterations      int
}

// Options tunes how much real work Run performs; the zero value means
// "full fidelity".
type Options struct {
	// SkipTraining replaces the NN train step with sampling+cache
	// simulation only. Accuracy is reported as 0 and AccuracyHistory is
	// empty. Used by timing-only sweeps.
	SkipTraining bool
	// EvalBatch limits validation to this many vertices (0 = all).
	EvalBatch int
	// Parallelism overrides the tensor worker count for this run
	// (0 = keep the process-wide setting; 1 = serial deterministic
	// reference path). Outputs are bitwise-identical at any setting.
	// The override mutates the process-wide tensor setting for the
	// run's duration (restored on return), so runs with different
	// non-zero Parallelism values must not execute concurrently.
	Parallelism int
	// Prefetch is the minibatch pipeline depth: sampling, cache lookup
	// and feature gather for batch i+k overlap training compute for
	// batch i (internal/pipeline). 0 = the process-wide default
	// (pipeline.DefaultPrefetch, settable via GNNAV_PREFETCH or the
	// -prefetch CLI flags); < 0 forces the inline serial loop. Outputs
	// are bitwise-identical at every depth.
	Prefetch int
	// SharePlan fetches the run's epoch plan from the process-wide
	// single-flight plan cache (plan.Shared) and replays it instead of
	// sampling live — the calibration fan-out's "compile once, replay
	// everywhere" path: probes differing only in cache/model knobs share
	// one compiled plan. The determinism contract makes replay bitwise-
	// identical to live sampling, so results are unchanged. Runs with
	// cache-aware bias (BiasRate > 0) silently fall back to live sampling;
	// their access stream depends on residency and cannot be replayed.
	SharePlan bool
	// Plan supplies an explicit pre-compiled epoch plan to replay
	// (gnnavigator -load-plan). It must be compatible with the run's
	// (sampler, seed, epochs, batch size, targets); incompatibility — or
	// combining it with BiasRate > 0 — is an error, not a fallback.
	Plan *plan.Plan

	// Ctx, when non-nil, cancels the run cooperatively at batch
	// granularity (including per-epoch validation): RunWith returns
	// ctx.Err() after the pipeline tears down. Deadlines time-box long
	// runs the same way.
	Ctx context.Context
	// CheckpointPath, when set, snapshots the training state (model
	// parameters, Adam moments, accuracy history, completed-epoch count)
	// to this file after every CheckpointEvery-th completed epoch,
	// atomically (tmp+rename, CRC-64 footer). Incompatible with
	// SkipTraining — a timing-only sweep has no state worth resuming.
	CheckpointPath string
	// CheckpointEvery is the snapshot cadence in epochs (<= 0 means 1,
	// i.e. after every epoch).
	CheckpointEvery int
	// ResumeFrom, when set, loads a checkpoint written by a previous run
	// of the *same* Config (fingerprint-checked) and continues from its
	// completed-epoch count. The completed epochs are fast-forwarded
	// through the full pipeline with the NN work skipped — sampling and
	// cache evolution are pure functions of the config, so residency,
	// plan position and every Perf volume counter reconstruct exactly —
	// and the restored parameters/optimizer state make the remaining
	// epochs bitwise-identical to a never-interrupted run (all Perf
	// fields except wall-clock WallSec). Incompatible with SkipTraining.
	ResumeFrom string
	// SaveModelPath, when set, writes the trained model (config +
	// parameters, GNAVMDL1 format) to this file after the run completes
	// — the artifact cmd/gnnserve loads. Atomic (tmp+rename, CRC-64
	// footer), like checkpoints. Incompatible with SkipTraining, which
	// trains nothing worth serving.
	SaveModelPath string
}

// prefetchDepth resolves the Options.Prefetch encoding to a concrete
// pipeline depth.
func (o Options) prefetchDepth() int {
	switch {
	case o.Prefetch > 0:
		return o.Prefetch
	case o.Prefetch < 0:
		return 0
	default:
		return pipeline.DefaultPrefetch()
	}
}

// applyParallelism installs the Options.Parallelism override as the
// process-wide tensor worker count and returns the restore function
// (a no-op when no override is set). Callers that fan many runs out
// concurrently (estimator.CollectWith) must hoist this around the whole
// fan-out — apply once, clear the per-run field — rather than let each
// run mutate the global setting; see tensor.WithParallelism.
func (o Options) applyParallelism() (restore func()) {
	return tensor.WithParallelism(o.Parallelism)
}

// Run executes cfg on the backend and returns its performance.
func Run(cfg Config) (*Perf, error) { return RunWith(cfg, Options{}) }

// RunWith executes cfg with explicit fidelity options.
//
// Concurrent RunWith calls are safe and deterministic — each run owns
// its sampler, cache, model, workspace and RNG chain, and the shared
// dataset/profile/baseline memoizations are locked — provided at most
// one distinct Options.Parallelism override is active at a time (see
// applyParallelism). The Step-1 calibration fan-out relies on this.
func RunWith(cfg Config, opts Options) (*Perf, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if opts.SkipTraining && (opts.ResumeFrom != "" || opts.CheckpointPath != "") {
		return nil, fmt.Errorf("backend: checkpoint/resume requires training (SkipTraining is set)")
	}
	if opts.SkipTraining && opts.SaveModelPath != "" {
		return nil, fmt.Errorf("backend: saving a model requires training (SkipTraining is set)")
	}
	// Resume: the checkpoint pins the run identity and the training state;
	// everything else below reconstructs by replay.
	var ck *Checkpoint
	if opts.ResumeFrom != "" {
		var err error
		if ck, err = LoadCheckpoint(opts.ResumeFrom); err != nil {
			return nil, err
		}
		if ck.Fingerprint != cfg.Fingerprint() {
			return nil, fmt.Errorf("backend: checkpoint %s was taken under a different config", opts.ResumeFrom)
		}
		if ck.Epochs > cfg.Epochs {
			return nil, fmt.Errorf("backend: checkpoint %s holds %d completed epochs, run wants %d", opts.ResumeFrom, ck.Epochs, cfg.Epochs)
		}
		if len(ck.AccHistory) != ck.Epochs {
			return nil, fmt.Errorf("backend: checkpoint %s: %d accuracy entries for %d epochs", opts.ResumeFrom, len(ck.AccHistory), ck.Epochs)
		}
	}
	restore := opts.applyParallelism()
	defer restore()
	start := time.Now()
	ds, err := dataset.Load(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	g := ds.Graph
	if cfg.Reorder {
		g, err = g.Relabel(g.DegreeReorderPerm())
		if err != nil {
			return nil, fmt.Errorf("backend: reorder: %w", err)
		}
	}
	plat := hw.Profiles()[cfg.Platform]

	// Device cache sized from the float32-denominated byte budget
	// (CacheRatio of the scaled graph's feature array): at the float32
	// baseline this is exactly ratio·|V| rows, at compact precisions the
	// same Γ budget holds 2–4× the vertices (the ratio is
	// scale-invariant; memory accounting uses the full-scale ratio).
	// Every run gathers through one feature plane: the direct graph
	// source when nothing is cached, the cached source otherwise.
	prec := cfg.FeaturePrecision()
	capVertices := int(prec.EffectiveCacheRows(cfg.CacheRatio, float64(g.NumVertices()), g.FeatDim))
	policy := cfg.CachePolicy
	if capVertices == 0 {
		policy = cache.None
	}

	// Epoch-plan resolution: an explicit opts.Plan is replayed as given;
	// SharePlan (the calibration fan-out) and the Opt policy (which needs
	// the exact future access order) fetch the run's plan from the
	// process-wide single-flight cache. Cache-aware bias makes sampling
	// depend on residency, so biased runs always sample live: SharePlan
	// silently falls back, an explicit Plan is an error, and Opt+bias is
	// already rejected by Validate.
	var pl *plan.Plan
	if opts.Plan != nil || ((opts.SharePlan || policy == cache.Opt) && cfg.BiasRate == 0) {
		if cfg.BiasRate > 0 {
			return nil, fmt.Errorf("backend: plan replay is incompatible with cache-aware biased sampling (BiasRate %v)", cfg.BiasRate)
		}
		preSmp, _, err := buildSampler(cfg, nil)
		if err != nil {
			return nil, err
		}
		if opts.Plan != nil {
			if err := opts.Plan.CompatibleWith(preSmp, cfg.Seed, cfg.Epochs, cfg.BatchSize, true, ds.TrainIdx); err != nil {
				return nil, fmt.Errorf("backend: %w", err)
			}
			pl = opts.Plan
		} else {
			key := plan.KeyFor(cfg.Dataset, cfg.Reorder, preSmp, cfg.BatchSize, cfg.Seed, cfg.Epochs, true, ds.TrainIdx)
			if pl, err = plan.Shared(g, preSmp, key, ds.TrainIdx); err != nil {
				return nil, err
			}
		}
	}

	// Pre-sample admission for the Freq policy, mined from a compiled
	// plan: an unbiased instance of the run's own sampler compiles a
	// salted one-epoch plan (fetched through the shared plan cache, so
	// every probe of a calibration fan-out reuses the same pre-sampling
	// pass), and the most frequently touched input vertices fill the
	// cache before training. The mining plan is always unbiased —
	// matching the legacy pre-sample pass, which drew without residency
	// bias even for biased runs — so it is shared across bias rates too.
	freqOrder := func() ([]int32, error) {
		preSmp, _, err := buildSampler(cfg, nil)
		if err != nil {
			return nil, err
		}
		mineKey := plan.KeyFor(cfg.Dataset, cfg.Reorder, preSmp, cfg.BatchSize, cfg.Seed+freqSeedSalt, 1, true, ds.TrainIdx)
		minePl, err := plan.Shared(g, preSmp, mineKey, ds.TrainIdx)
		if err != nil {
			return nil, err
		}
		return minePl.CountOrder(g), nil
	}

	devices := cfg.DeviceCount()
	var src cache.FeatureSource
	if devices > 1 {
		// Multi-device feature plane: partition the (possibly reordered)
		// vertex set, shard the cache budget across the K partitions, and
		// meter halo-exchange traffic. The shard construction walks the
		// same global admission order the single-device cache uses, so
		// prefilled residency — and every transfer counter — is bitwise
		// the single-device run's.
		part, err := graph.PartitionGraph(g, devices, cfg.PartitionStrategy())
		if err != nil {
			return nil, fmt.Errorf("backend: %w", err)
		}
		var order []int32
		switch policy {
		case cache.Static:
			order = g.DegreeOrder()
		case cache.Freq:
			if order, err = freqOrder(); err != nil {
				return nil, err
			}
		}
		if src, err = dist.NewSource(g, part, policy, capVertices, order, prec); err != nil {
			return nil, err
		}
	} else {
		switch {
		case policy == cache.None:
			src = cache.NewGraphSourceAt(g, prec)
		case policy == cache.Freq:
			order, err := freqOrder()
			if err != nil {
				return nil, err
			}
			devCache, err := cache.NewWithPrecision(cache.Freq, capVertices, g, order, prec)
			if err != nil {
				return nil, err
			}
			src = cache.NewCachedSource(devCache, g)
		case policy == cache.Opt:
			// Belady upper bound: the run's own plan is mined for the exact
			// future access order the device cache will see.
			script, err := cache.BuildOptScript(g.NumVertices(), pl.BatchInputs(cfg.Epochs))
			if err != nil {
				return nil, err
			}
			devCache, err := cache.NewOptWithPrecision(capVertices, g, script, prec)
			if err != nil {
				return nil, err
			}
			src = cache.NewCachedSource(devCache, g)
		default:
			devCache, err := cache.NewAtPrecision(policy, capVertices, g, prec)
			if err != nil {
				return nil, err
			}
			src = cache.NewCachedSource(devCache, g)
		}
	}

	smp, walkSteps, err := buildSampler(cfg, src)
	if err != nil {
		return nil, err
	}

	var mdl *model.Model
	var opt nn.Optimizer
	if !opts.SkipTraining {
		mdl, err = model.New(model.Config{
			Kind: cfg.Model, InDim: g.FeatDim, Hidden: cfg.Hidden,
			OutDim: g.NumClasses, Layers: cfg.Layers, Heads: cfg.Heads,
			Dropout: cfg.Dropout, Seed: cfg.Seed + 7,
		})
		if err != nil {
			return nil, err
		}
		opt = nn.NewAdam(cfg.LR)
		if ck != nil {
			if err := restoreCheckpoint(mdl, opt.(*nn.Adam), ck); err != nil {
				return nil, fmt.Errorf("backend: resume from %s: %w", opts.ResumeFrom, err)
			}
		}
	} else {
		// Timing-only sweeps still need FLOPs/param counts.
		mdl, err = model.New(model.Config{
			Kind: cfg.Model, InDim: g.FeatDim, Hidden: cfg.Hidden,
			OutDim: g.NumClasses, Layers: cfg.Layers, Heads: cfg.Heads,
			Seed: cfg.Seed + 7,
		})
		if err != nil {
			return nil, err
		}
	}

	// The gradient all-reduce: created whenever K > 1 so its modeled
	// wire traffic is metered even on timing-only sweeps and through
	// resume fast-forward (the metering is a pure function of the config,
	// so a resumed run's AllReduceBytes reconstructs exactly); Step only
	// runs on trained batches.
	var red *dist.Reducer
	if devices > 1 {
		if red, err = dist.NewReducer(devices, mdl.Params()); err != nil {
			return nil, err
		}
	}

	// Effective vertex scale: a full-scale mini-batch is NOT the measured
	// batch times |V_full|/|V_scaled| — on big graphs fanouts, not graph
	// size, bound batch growth. The expected full-scale batch follows the
	// collision (balls-in-bins) form of Eq. 12's overlap penalty:
	//
	//	E[|V_i|_full] = N_full · (1 - e^(-bound/N_full))
	//
	// with bound = |B_0|·Π(1+k_l) the τ=1 limit. The effective scale is
	// that expectation divided by the measured batch, capped by the plain
	// linear scale. Without this, products-scale workloads would absurdly
	// touch the whole 2.4M-vertex graph every iteration.
	fullBound := analyticFullBound(cfg, ds)
	nFull := float64(ds.FullVertices)
	collisionFull := nFull * (1 - math.Exp(-fullBound/nFull))
	effScale := func(measuredVi int) float64 {
		s := ds.Scale
		if measuredVi > 0 {
			if b := collisionFull / float64(measuredVi); b < s {
				s = b
			}
		}
		if s < 1 {
			s = 1
		}
		return s
	}
	featShare := featureFLOPShare(cfg, g.FeatDim)
	// Full-scale all-reduce payload per step: |Φ| scalars at the 4-byte
	// transfer currency (the simulator applies the ring wire factor).
	var arBytes float64
	if devices > 1 {
		arBytes = float64(paramsAtFullScale(mdl, ds, cfg)) * 4
	}

	perf := &Perf{Feasible: true}
	var sumBatch, sumEdges float64
	var sumTiming sim.BatchTiming

	// The run owns one workspace arena: every forward/backward
	// intermediate is recycled after the optimizer step. The gathered
	// feature matrix lives in the pipeline's buffer ring, so the gather
	// for batch i+1 can fill one buffer while batch i trains from
	// another without the steady-state loop allocating.
	ws := tensor.NewWorkspace()
	mdl.SetWorkspace(ws)
	prefetch := opts.prefetchDepth()

	// resumeEpochs is how many leading epochs are fast-forwarded: the
	// pipeline runs them in full (sampling, cache evolution, volume
	// accounting — all pure functions of cfg, so they reconstruct the
	// interrupted run's state exactly), but the NN train step and the
	// per-epoch validation are skipped; the checkpoint supplies their
	// results.
	resumeEpochs := 0
	if ck != nil {
		resumeEpochs = ck.Epochs
	}

	// The epoch loop runs on the staged pipeline engine: a sampler stage
	// and a cache-lookup+gather stage run up to `prefetch` batches ahead
	// of this consumer, which keeps all model state single-threaded.
	// Cache-aware biased sampling against a dynamic cache reads residency
	// that the lookup stage mutates, so those runs fuse the two producer
	// stages to preserve the serial residency sequence.
	var timings []sim.BatchTiming
	consume := func(b *pipeline.Batch) error {
		mb := b.MB
		vols := sim.BatchVolumes{
			SampledVertices:  mb.NumVertices,
			TargetVertices:   len(b.Targets),
			InputVertices:    len(mb.InputNodes),
			MissVertices:     b.Miss,
			TransferBytes:    float64(b.TransferBytes),
			CacheUpdateOps:   b.CacheOps,
			SampledEdges:     mb.NumEdges,
			FLOPs:            mdl.FLOPs(mb),
			FeatureFLOPShare: featShare,
			ScaledFeatDim:    g.FeatDim,
			Layers:           cfg.Layers,
			WalkSteps:        walkSteps * len(b.Targets),
			HaloBytes:        float64(b.HaloBytes),
			AllReduceBytes:   arBytes,
		}
		wl := sim.Workload{
			VertexScale:    effScale(mb.NumVertices),
			FeatDim:        ds.FullFeatDim,
			BytesPerScalar: 4,
			Precision:      prec,
			Devices:        devices,
		}
		bt := sim.EstimateBatch(vols, plat, wl)
		timings = append(timings, bt)
		sumTiming.TSample += bt.TSample
		sumTiming.TTransfer += bt.TTransfer
		sumTiming.TReplace += bt.TReplace
		sumTiming.TCompute += bt.TCompute
		sumTiming.THalo += bt.THalo
		sumTiming.TAllReduce += bt.TAllReduce

		perf.HaloBytes += b.HaloBytes
		if red != nil {
			perf.AllReduceBytes += red.WireBytesPerStep()
		}

		sumBatch += float64(mb.NumVertices)
		sumEdges += float64(mb.NumEdges)
		perf.PeakBatchSize = max(perf.PeakBatchSize, mb.NumVertices)
		perf.PeakBatchEdges = max(perf.PeakBatchEdges, mb.NumEdges)
		perf.Iterations++

		if !opts.SkipTraining && b.Epoch >= resumeEpochs {
			if cfg.Dropout > 0 {
				// Per-batch mask stream: a pure function of (seed, epoch,
				// index), like every other random draw in the run — so a
				// resumed run's masks match the uninterrupted run's exactly.
				// The salt decorrelates the dropout chain from the sampler's.
				mdl.SeedDropout(sample.BatchSeed(cfg.Seed^dropoutSeedSalt, b.Epoch, b.Index))
			}
			logits, err := mdl.Forward(mb, b.Feats, true)
			if err != nil {
				return err
			}
			_, dLogits := nn.SoftmaxCrossEntropyWS(ws, logits, b.Labels)
			mdl.Backward(dLogits)
			if red != nil {
				// Per-step gradient aggregation across the K replicas: the
				// ordered tree reduce leaves identical replica gradients
				// bitwise-unchanged, so the optimizer below sees exactly the
				// single-device gradient.
				if err := red.Step(mdl.Params()); err != nil {
					return err
				}
			}
			opt.Step(mdl.Params())
			ws.ReleaseAll()
		}
		return nil
	}
	// One inference engine for the whole run: per-epoch validation reuses
	// its sampler's frontier tables and pick scratch instead of regrowing
	// them every epoch, and shares the run's workspace arena (the engine
	// only attaches its own when the model has none). Each Accuracy call
	// is a fresh pipeline run, so the single-producer contract holds.
	evalEng, err := infer.New(infer.Config{
		Graph: g, Model: mdl, Seed: cfg.Seed + 29, Prefetch: prefetch,
	})
	if err != nil {
		return nil, err
	}
	ckptEvery := opts.CheckpointEvery
	if ckptEvery <= 0 {
		ckptEvery = 1
	}
	epochEnd := func(epoch int) error {
		perf.EpochTimes = append(perf.EpochTimes, sim.EpochTime(timings))
		timings = timings[:0]
		if opts.SkipTraining {
			return nil
		}
		if epoch < resumeEpochs {
			// Fast-forwarded epoch: the checkpoint recorded its validation
			// accuracy; re-evaluating would waste work (the restored
			// parameters are post-resume, not this epoch's).
			acc := ck.AccHistory[epoch]
			perf.AccuracyHistory = append(perf.AccuracyHistory, acc)
			perf.Accuracy = acc
			return nil
		}
		acc, err := evalEng.Accuracy(opts.Ctx, ds.ValIdx, opts.EvalBatch)
		if err != nil {
			return err
		}
		perf.AccuracyHistory = append(perf.AccuracyHistory, acc)
		perf.Accuracy = acc
		if opts.CheckpointPath != "" && ((epoch+1)%ckptEvery == 0 || epoch == cfg.Epochs-1) {
			snap := snapshotCheckpoint(cfg, mdl, opt.(*nn.Adam), epoch+1, perf.AccuracyHistory)
			if err := SaveCheckpoint(opts.CheckpointPath, snap); err != nil {
				return err
			}
		}
		return nil
	}
	err = pipeline.Run(pipeline.Config{
		Graph:     g,
		Sampler:   smp,
		Source:    src,
		Seed:      cfg.Seed,
		Epochs:    cfg.Epochs,
		BatchSize: cfg.BatchSize,
		Targets:   ds.TrainIdx,
		Shuffle:   true,
		Gather:    !opts.SkipTraining,
		Prefetch:  prefetch,
		Plan:      pl,
		Ctx:       opts.Ctx,
		// Keyed on the effective policy, not cfg.CachePolicy: a
		// zero-capacity cache is downgraded to None above, and a
		// prefilled (None/Static/Freq) residency never needs stage
		// fusion.
		CoupledSampler: cfg.BiasRate > 0 && policy.Dynamic(),
	}, consume, epochEnd)
	if err != nil {
		return nil, err
	}

	if opts.SaveModelPath != "" {
		if err := model.Save(opts.SaveModelPath, mdl); err != nil {
			return nil, err
		}
	}

	// Aggregate timing/volumes.
	n := float64(perf.Iterations)
	perf.MeanBatchSize = sumBatch / n
	perf.MeanBatchEdges = sumEdges / n
	perf.TimeBreakdown = sim.BatchTiming{
		TSample: sumTiming.TSample / n, TTransfer: sumTiming.TTransfer / n,
		TReplace: sumTiming.TReplace / n, TCompute: sumTiming.TCompute / n,
		THalo: sumTiming.THalo / n, TAllReduce: sumTiming.TAllReduce / n,
	}
	var sumEpoch float64
	for _, t := range perf.EpochTimes {
		sumEpoch += t
	}
	perf.TimeSec = sumEpoch / float64(len(perf.EpochTimes))
	perf.HitRate = src.HitRate()
	perf.TransferredBytes = src.TransferredBytes()

	// Eq. 9-10 memory at paper scale.
	hidden := 0
	for l := 0; l < cfg.Layers; l++ {
		if l == cfg.Layers-1 {
			hidden += g.NumClasses
		} else {
			hidden += cfg.Hidden
		}
	}
	// Per-edge messages carry the hidden width: scatter-gather frameworks
	// transform before aggregating whenever the input width exceeds the
	// output width, so the buffer never exceeds the hidden dimension.
	wl := sim.Workload{
		VertexScale:    effScale(perf.PeakBatchSize),
		FeatDim:        ds.FullFeatDim,
		BytesPerScalar: 4,
		Precision:      prec,
		Devices:        devices,
	}
	mem := sim.EstimateMemory(sim.MemoryVolumes{
		ModelParams:       paramsAtFullScale(mdl, ds, cfg),
		CacheVertices:     prec.EffectiveCacheRows(cfg.CacheRatio, float64(ds.FullVertices), ds.FullFeatDim),
		PeakBatchVertices: perf.PeakBatchSize,
		PeakBatchEdges:    perf.PeakBatchEdges,
		HiddenDims:        hidden,
		MaxWidth:          cfg.Hidden,
		Layers:            cfg.Layers,
	}, wl)
	perf.Breakdown = mem
	perf.MemoryGB = mem.Total() / 1e9
	perf.Feasible = sim.FitsDevice(mem, plat, 0.02)
	perf.WallSec = time.Since(start).Seconds()
	return perf, nil
}

// buildSampler wires the configured sampling strategy, including the
// cache-aware bias (2PGraph) when BiasRate > 0 and a residency view is
// supplied — the feature plane implements sample.Residency, so p(η)
// reads device residency through the same abstraction the gather stage
// transfers through. It returns the per-target random-walk step count
// for host-cost accounting (SAINT only).
func buildSampler(cfg Config, res sample.Residency) (sample.Sampler, int, error) {
	var bias sample.BiasFunc
	if cfg.BiasRate > 0 && res != nil {
		bias = sample.ResidencyBias(res)
	}
	switch cfg.Sampler {
	case SamplerSAGE:
		return &sample.NodeWise{
			Fanouts:      cfg.Fanouts,
			Bias:         bias,
			BiasStrength: cfg.BiasRate * 8, // weight scale for weighted draws
		}, 0, nil
	case SamplerFastGCN:
		// Per-hop budgets: fanout * batch size bounds the layer width.
		deltas := make([]int, len(cfg.Fanouts))
		for i, k := range cfg.Fanouts {
			deltas[i] = k * cfg.BatchSize / 2
		}
		return &sample.LayerWise{Deltas: deltas}, 0, nil
	case SamplerSAINT:
		return &sample.SubgraphWise{WalkLength: cfg.WalkLength, Layers: cfg.Layers},
			cfg.WalkLength, nil
	}
	return nil, 0, fmt.Errorf("backend: unknown sampler %q", cfg.Sampler)
}

// freqSeedSalt decorrelates the Freq pre-sampling (mining) plan's RNG
// chain from the training epochs' (sample.BatchRNG over (Seed, epoch,
// batch)): the admission counts come from a statistically identical but
// independent one-epoch plan, compiled through the shared plan cache and
// mined with plan.CountOrder.
const freqSeedSalt = 0x5eed

// dropoutSeedSalt decorrelates the per-batch dropout mask streams from
// the sampling chain rooted at the same (Seed, epoch, batch) triple.
const dropoutSeedSalt = 0x1d40

// CompilePlan compiles (or fetches from the process-wide plan cache) the
// epoch plan cfg's training run follows — the artifact `gnnavigator
// -save-plan` persists and `-load-plan` feeds back through Options.Plan.
// Requires unbiased sampling: a cache-aware bias makes the sampling
// depend on residency, which a pre-compiled plan cannot reflect.
func CompilePlan(cfg Config) (*plan.Plan, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.BiasRate > 0 {
		return nil, fmt.Errorf("backend: cannot compile a plan for cache-aware biased sampling (BiasRate %v)", cfg.BiasRate)
	}
	ds, err := dataset.Load(cfg.Dataset)
	if err != nil {
		return nil, err
	}
	g := ds.Graph
	if cfg.Reorder {
		g, err = g.Relabel(g.DegreeReorderPerm())
		if err != nil {
			return nil, fmt.Errorf("backend: reorder: %w", err)
		}
	}
	preSmp, _, err := buildSampler(cfg, nil)
	if err != nil {
		return nil, err
	}
	key := plan.KeyFor(cfg.Dataset, cfg.Reorder, preSmp, cfg.BatchSize, cfg.Seed, cfg.Epochs, true, ds.TrainIdx)
	return plan.Shared(g, preSmp, key, ds.TrainIdx)
}

// analyticFullBound is the τ=1 bound of Eq. 12 at paper scale: the
// maximum distinct vertices one batch can touch, with fanouts capped by
// the full-scale average degree.
func analyticFullBound(cfg Config, ds *dataset.Dataset) float64 {
	b0 := float64(cfg.BatchSize)
	switch cfg.Sampler {
	case SamplerSAINT:
		return b0 * float64(cfg.WalkLength+1)
	case SamplerFastGCN:
		total := b0
		for _, k := range cfg.Fanouts {
			total += float64(k) * b0 / 2
		}
		return total
	default:
		prod := b0
		for _, k := range cfg.Fanouts {
			kk := float64(k)
			if kk > ds.FullAvgDegree {
				kk = ds.FullAvgDegree
			}
			prod *= 1 + kk
		}
		return prod
	}
}

// featureFLOPShare estimates the fraction of model FLOPs proportional to
// the input feature dimension: the first layer's dense work dominates when
// in >> hidden.
func featureFLOPShare(cfg Config, featDim int) float64 {
	in := float64(featDim)
	rest := float64(cfg.Hidden) * float64(max(cfg.Layers-1, 1))
	return in / (in + rest)
}

// paramsAtFullScale adjusts |Φ| for the paper-scale input feature
// dimension: the first layer's weight matrix grows with n_attr.
func paramsAtFullScale(m *model.Model, ds *dataset.Dataset, cfg Config) int {
	p := m.NumParams()
	// First layer in-dim contribution scales from scaled FeatDim to full.
	delta := (ds.FullFeatDim - ds.Graph.FeatDim) * cfg.Hidden
	if cfg.Layers == 1 {
		delta = (ds.FullFeatDim - ds.Graph.FeatDim) * ds.Graph.NumClasses
	}
	if cfg.Model == model.SAGE {
		delta *= 2 // self + neighbor paths
	}
	return p + max(delta, 0)
}

// Evaluate measures accuracy of mdl on the given vertices using a
// deterministic node-wise sampler with generous fanouts — the shared
// evaluation loop in internal/infer — at the process-wide default
// prefetch depth. A non-nil ctx cancels the run at batch granularity.
func Evaluate(ctx context.Context, mdl *model.Model, g *graph.Graph, idx []int32, limit int, seed int64) (float64, error) {
	return EvaluateWith(ctx, mdl, g, idx, limit, seed, pipeline.DefaultPrefetch())
}

// EvaluateWith is Evaluate at an explicit prefetch depth: sampling and
// feature gather for chunk i+1 overlap the forward pass for chunk i.
// Results are bitwise-identical at any depth.
func EvaluateWith(ctx context.Context, mdl *model.Model, g *graph.Graph, idx []int32, limit int, seed int64, prefetch int) (float64, error) {
	eng, err := infer.New(infer.Config{Graph: g, Model: mdl, Seed: seed, Prefetch: prefetch})
	if err != nil {
		return 0, err
	}
	return eng.Accuracy(ctx, idx, limit)
}
