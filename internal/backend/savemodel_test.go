package backend

import (
	"context"
	"math"
	"path/filepath"
	"testing"

	"gnnavigator/internal/dataset"
	"gnnavigator/internal/model"
)

// TestSaveModel pins the train→save→load→serve contract: a model saved
// by RunWith and loaded back must reproduce the run's final validation
// accuracy exactly (same eval seed, same limit), because the parameters
// round-trip bitwise and evaluation is deterministic.
func TestSaveModel(t *testing.T) {
	cfg := fastCfg()
	cfg.Epochs = 1
	path := filepath.Join(t.TempDir(), "model.gnav")
	perf, err := RunWith(cfg, Options{EvalBatch: 512, SaveModelPath: path})
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := model.Load(path)
	if err != nil {
		t.Fatal(err)
	}
	d := dataset.MustLoad(cfg.Dataset)
	acc, err := EvaluateWith(context.Background(), loaded, d.Graph, d.ValIdx, 512, cfg.Seed+29, 0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Float64bits(acc) != math.Float64bits(perf.Accuracy) {
		t.Errorf("loaded model evaluates to %v, run reported %v (not bitwise)", acc, perf.Accuracy)
	}

	if _, err := RunWith(cfg, Options{SkipTraining: true, SaveModelPath: path}); err == nil {
		t.Error("SkipTraining+SaveModelPath accepted")
	}
}
