//go:build !race

package cache

import (
	"math/rand"
	"testing"

	"gnnavigator/internal/gen"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/tensor"
)

// Allocation-regression bounds for the array-backed cache and the
// feature plane: steady state (after a warm-up pass grows the slot
// table, the miss scratch and the gather buffer), lookup+update and the
// full gather path must allocate nothing. Guarded !race because the
// race runtime adds bookkeeping allocations.

func TestLookupUpdateZeroAllocs(t *testing.T) {
	g, err := gen.BarabasiAlbert(rand.New(rand.NewSource(7)), 3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	stream := accessStream(t, g, 16, 512, 19)
	for _, policy := range Policies() {
		c, err := kernelFor(t, policy, 400, g, stream)
		if err != nil {
			t.Fatal(err)
		}
		var miss []int32
		drive := func() {
			for _, batch := range stream {
				miss = c.LookupInto(miss[:0], batch)
				c.Update(miss)
			}
		}
		drive() // warm up: slot table growth, miss scratch
		if allocs := testing.AllocsPerRun(10, drive); allocs != 0 {
			t.Errorf("%s: lookup+update allocates %.1f/op in steady state", policy, allocs)
		}
	}
}

func TestGatherIntoZeroAllocs(t *testing.T) {
	g, err := gen.BarabasiAlbert(rand.New(rand.NewSource(7)), 3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := gen.AttachFeatures(rand.New(rand.NewSource(9)), g, make([]int32, g.NumVertices()), 2,
		gen.FeatureSpec{Dim: 16, Noise: 0.5}); err != nil {
		t.Fatal(err)
	}
	stream := accessStream(t, g, 16, 512, 19)
	// Parallelism 1 keeps the row-copy loop inline: the worker pool's
	// dispatch bookkeeping (one signal channel per sharded call) is the
	// pool's cost, not the gather path's, and would drown the regression
	// this test guards — that the sources themselves reuse every buffer.
	// The fused dequant kernels must hold the bound at every precision:
	// quantization happens in place on admission and widening reuses the
	// pre-bound kernel, so compact storage adds no per-batch allocations.
	defer tensor.WithParallelism(1)()
	for _, prec := range Precisions() {
		c, err := NewAtPrecision(LRU, 400, g, prec)
		if err != nil {
			t.Fatal(err)
		}
		for _, src := range []FeatureSource{NewCachedSource(c, g), NewGraphSourceAt(g, prec)} {
			feats := sizeFor(nil, 512, g.FeatDim)
			drive := func() {
				for _, batch := range stream {
					feats, _ = src.GatherInto(feats, batch)
				}
			}
			drive() // warm up scratch
			if allocs := testing.AllocsPerRun(10, drive); allocs != 0 {
				t.Errorf("%s/%T: GatherInto allocates %.1f/op in steady state", prec, src, allocs)
			}
		}
	}
}

// kernelFor builds a policy's cache: Freq routes through NewWithOrder,
// Opt through NewOpt with a script compiled from the access stream
// itself (driving past the script's horizon is legal — every remaining
// access prices as "never used again" and bypasses, allocation-free).
func kernelFor(t *testing.T, policy Policy, capacity int, g *graph.Graph, stream [][]int32) (*Cache, error) {
	t.Helper()
	switch policy {
	case Freq:
		return NewWithOrder(Freq, capacity, g, g.DegreeOrder())
	case Opt:
		script, err := BuildOptScript(g.NumVertices(), sliceSeq(stream))
		if err != nil {
			return nil, err
		}
		return NewOpt(capacity, g, script)
	default:
		return New(policy, capacity, g)
	}
}
