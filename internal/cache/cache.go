// Package cache models the device-side feature cache that transmission
// strategies build on (Fig. 3 "Device Cache"). A cache holds feature rows
// for up to a fixed number of vertices; each mini-batch looks up its input
// vertices, transfers the misses over the host-device link, and then
// (policy permitting) updates the cache.
//
// The policies correspond to the paper's templates:
//
//   - None:   PyG — nothing is cached, everything is transferred.
//   - Static: PaGraph — the cache is pre-filled with the highest-degree
//     vertices and never updated (cachepolicy = None in the template).
//   - Freq:   frequency pre-fill — the cache is pre-filled with the
//     vertices most frequently touched by a pre-sampling pass of the
//     run's own sampler (pre-sample admission), then frozen like Static.
//     Degree order approximates access frequency; Freq measures it.
//   - FIFO:   a dynamic policy that admits misses and evicts in insertion
//     order.
//   - LRU:    a dynamic policy that evicts the least-recently-used entry.
//
// Layout: the cache is array-backed. Residency is a dense slot table
// (slot[v] int32, −1 = absent) over the vertex space; eviction order is
// an intrusive doubly-linked ring threaded through per-slot next/prev
// arrays (no per-entry heap nodes, no container/list); static residency
// additionally keeps a bitset so the biased-sampling hot loop probes one
// bit instead of four bytes; and hit/miss/update counters are atomics.
// Steady-state LookupInto+Update performs zero allocations and zero
// hashing. The pre-refactor map+list implementation is frozen in
// mapref.go (NewMapReference) and the equivalence tests pin both to
// identical hits, misses and evictions for every policy.
//
// Concurrency contract (sharper than the old mutex-guarded version):
// exactly one goroutine — the pipeline's cache stage — may issue
// Lookup/LookupInto/Update, in batch order. Residency reads (Contains)
// and the counter accessors (Len, Stats, HitRate) are lock-free and safe
// from any goroutine concurrently with the writer; this is what lets
// cache-aware samplers probe residency without serializing against the
// gather stage. Determinism is still an ordering property: biased
// samplers whose p(η) reads residency of a *dynamic* (FIFO/LRU) cache
// must run fused with the cache stage (pipeline.Config.CoupledSampler).
// Static and Freq residency is immutable after construction, so Contains
// is order-independent and samplers may read it freely.
package cache

import (
	"fmt"
	"math/bits"
	"sync/atomic"

	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/graph"
)

// Policy names a cache replacement policy.
type Policy string

// Supported policies.
const (
	None   Policy = "none"
	Static Policy = "static"
	Freq   Policy = "freq"
	FIFO   Policy = "fifo"
	LRU    Policy = "lru"
	// Opt is the offline-optimal (Belady MIN) policy: evictions and
	// admissions consult the exact future access order compiled from the
	// run's epoch plan (internal/plan), so it is the upper bound every
	// online policy is measured against. Script-driven — construct with
	// NewOpt. Requires unbiased sampling (the replayable-plan contract).
	Opt Policy = "opt"
)

// Policies lists all supported policies in presentation order (Opt last:
// the upper-bound ablation row).
func Policies() []Policy { return []Policy{None, Static, Freq, FIFO, LRU, Opt} }

// Valid reports whether p is a known policy.
func (p Policy) Valid() bool {
	switch p {
	case None, Static, Freq, FIFO, LRU, Opt:
		return true
	}
	return false
}

// Dynamic reports whether the policy mutates residency at run time
// (FIFO/LRU/Opt). None never holds anything; Static and Freq are frozen
// after construction.
func (p Policy) Dynamic() bool { return p == FIFO || p == LRU || p == Opt }

// Prefilled reports whether the policy fixes residency up front from an
// admission order (Static from degree order, Freq from pre-sampled
// access frequency).
func (p Policy) Prefilled() bool { return p == Static || p == Freq }

// Kernel is the lookup/update surface shared by the array-backed Cache
// and the frozen MapReference: what the feature plane (source.go), the
// equivalence tests and benchtab -cache-bench program against.
type Kernel interface {
	Policy() Policy
	Capacity() int
	Len() int
	Contains(v int32) bool
	// Lookup records an access to each node and returns the subset that
	// missed; LookupInto is the zero-alloc variant appending into dst's
	// storage (pass the previous result's [:0] to amortize).
	Lookup(nodes []int32) []int32
	LookupInto(dst, nodes []int32) []int32
	// Update admits missed vertices per the policy and returns the number
	// of replacement operations performed.
	Update(miss []int32) int
	Stats() (hits, misses, updates int64)
	HitRate() float64
	ResetStats()
}

// Cache is the array-backed vertex-feature cache with hit/miss
// accounting. See the package comment for the layout and the
// single-writer concurrency contract. When constructed over a graph
// with features, the cache actually owns its resident feature rows
// (RowOf): admissions copy the row into slot storage, so hits can be
// served from device memory instead of re-reading the host array.
type Cache struct {
	policy   Policy
	capacity int

	// slots maps vertex -> slot index (−1 = absent). It is published
	// through an atomic pointer so lock-free Contains readers survive the
	// lazy growth a graph-less cache performs on first admission; slot
	// values themselves are written/read with element atomics.
	slots atomic.Pointer[[]int32]

	// Intrusive eviction ring over slot indices: next/prev thread the
	// FIFO/LRU order through the slot arrays, head is the next victim,
	// tail the most recent admission. Writer-only state.
	next, prev []int32
	head, tail int32

	// vertexOf inverts the slot table (slot -> vertex). Writer-only.
	vertexOf []int32
	size     atomic.Int32

	// static is the residency bitset for prefilled policies — one bit
	// per vertex, immutable after construction, probed lock-free by the
	// biased-sampling hot loop.
	static    []uint64
	staticLen int

	// Resident feature rows in slot order, quantized at the cache's
	// precision (exactly one of rows/rows16/rows8 is non-nil when the
	// cache owns rows; all are nil when built without features). g is
	// the host-side feature store admissions quantize from; qscale and
	// qzero are the per-slot int8 quantization parameters.
	prec    Precision
	rows    []float32
	rows16  []uint16
	rows8   []uint8
	qscale  []float32
	qzero   []float32
	featDim int
	g       *graph.Graph

	// Opt (Belady) state: the compiled future-access script, per-vertex
	// cursors into its occurrence lists, per-slot next-use positions and
	// an indexed max-heap over slots keyed by (nextUse, vertex). clock is
	// the global access position. Writer-only; see opt.go.
	script  *OptScript
	cursor  []int32
	nextUse []int32
	heapOf  []int32 // heap position -> slot
	heapPos []int32 // slot -> heap position
	clock   int32

	hits, misses, updates atomic.Int64
}

// defaultAdmissionOrder resolves the admission order a policy's
// plain constructor (New, NewMapReference, NewShards) can derive on its
// own: Static pre-fills from g's degree order; Freq needs a pre-sampled
// frequency order the caller must supply through the named WithOrder
// constructor; Opt is script-driven (NewOpt), not order-driven. This is
// the one shared home for the admission-order rules all six cache
// constructors used to restate.
func defaultAdmissionOrder(policy Policy, g *graph.Graph, withOrder string) ([]int32, error) {
	switch policy {
	case Freq:
		return nil, fmt.Errorf("cache: freq policy needs a pre-sampled admission order; use %s", withOrder)
	case Opt:
		return nil, fmt.Errorf("cache: opt policy needs a compiled plan script; use NewOpt")
	case Static:
		if g == nil {
			return nil, fmt.Errorf("cache: static policy requires a graph for degree ordering")
		}
		return g.DegreeOrder(), nil
	}
	return nil, nil
}

// requireAdmissionOrder validates the (policy, explicit order) pair the
// WithOrder constructors receive: prefilled policies need a non-nil
// order, and Opt takes a script, never an order.
func requireAdmissionOrder(policy Policy, order []int32) error {
	if policy == Opt {
		return fmt.Errorf("cache: opt policy is script-driven; use NewOpt")
	}
	if policy.Prefilled() && order == nil {
		return fmt.Errorf("cache: %s policy requires an admission order", policy)
	}
	return nil
}

// New builds a cache with the given policy and capacity (in vertices).
// For Static, the cache is pre-filled with the capacity highest-degree
// vertices of g (PaGraph's policy). Freq needs an explicit admission
// order (NewWithOrder) and Opt a compiled plan script (NewOpt). g may be
// nil for None/FIFO/LRU, in which case the cache tracks residency only
// (no feature rows) and grows its slot table lazily.
func New(policy Policy, capacity int, g *graph.Graph) (*Cache, error) {
	return NewAtPrecision(policy, capacity, g, Float32)
}

// NewAtPrecision is New with an explicit feature-row storage precision:
// admitted rows are quantized once into slot storage and dequantized on
// the gather path. Float32 (and the zero value "") is the verbatim
// baseline.
func NewAtPrecision(policy Policy, capacity int, g *graph.Graph, prec Precision) (*Cache, error) {
	order, err := defaultAdmissionOrder(policy, g, "NewWithPrecision")
	if err != nil {
		return nil, err
	}
	return NewWithPrecision(policy, capacity, g, order, prec)
}

// NewWithOrder builds a cache whose prefilled residency (Static/Freq)
// comes from the given admission order: the first capacity vertices of
// order become resident. For dynamic policies and None the order is
// ignored. This is also how Freq caches are made — the backend
// pre-samples the run's own batch plan, counts vertex accesses, and
// passes the frequency-descending order here.
func NewWithOrder(policy Policy, capacity int, g *graph.Graph, order []int32) (*Cache, error) {
	return NewWithPrecision(policy, capacity, g, order, Float32)
}

// NewWithPrecision is NewWithOrder with an explicit feature-row storage
// precision (see Precision): admissions quantize the host row once into
// slot storage, and the gather path dequantizes on read. A row served
// from slot storage is bitwise-identical to the same row freshly
// round-tripped from the host, so hit/miss routing never changes
// gathered values at any precision.
func NewWithPrecision(policy Policy, capacity int, g *graph.Graph, order []int32, prec Precision) (*Cache, error) {
	if !policy.Valid() {
		return nil, fmt.Errorf("cache: unknown policy %q", policy)
	}
	if !prec.Valid() {
		return nil, fmt.Errorf("cache: unknown precision %q", prec)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("cache: negative capacity %d", capacity)
	}
	if err := requireAdmissionOrder(policy, order); err != nil {
		return nil, err
	}
	c := &Cache{policy: policy, capacity: capacity, head: -1, tail: -1, prec: prec.OrDefault()}
	if g != nil {
		c.growSlots(int32(g.NumVertices() - 1))
		if g.Features != nil && capacity > 0 && policy != None {
			c.featDim = g.FeatDim
			c.g = g
			c.allocRows(min(capacity, g.NumVertices()))
		}
	} else {
		empty := []int32{}
		c.slots.Store(&empty)
	}
	if policy.Dynamic() {
		c.next = make([]int32, capacity)
		c.prev = make([]int32, capacity)
		c.vertexOf = make([]int32, capacity)
	}
	if policy.Prefilled() {
		n := min(capacity, len(order))
		c.vertexOf = make([]int32, n)
		var maxV int32 = -1
		for _, v := range order[:n] {
			if v > maxV {
				maxV = v
			}
		}
		c.growSlots(maxV)
		c.static = make([]uint64, int(maxV)/64+1)
		slots := *c.slots.Load()
		for i, v := range order[:n] {
			c.static[v>>6] |= 1 << (uint(v) & 63)
			slots[v] = int32(i)
			c.vertexOf[i] = v
			if c.ownsRows() {
				c.storeRow(int32(i), g.Feature(v))
			}
		}
		c.staticLen = n
	}
	return c, nil
}

// growSlots ensures the slot table covers vertex v, publishing a larger
// array when needed. Writer-side only; readers keep seeing a consistent
// (possibly stale-length) snapshot through the atomic pointer.
func (c *Cache) growSlots(v int32) {
	cur := c.slots.Load()
	var old []int32
	if cur != nil {
		old = *cur
	}
	if int(v) < len(old) {
		return
	}
	n := max(64, len(old)*2)
	for n <= int(v) {
		n *= 2
	}
	grown := make([]int32, n)
	copy(grown, old)
	for i := len(old); i < n; i++ {
		grown[i] = -1
	}
	c.slots.Store(&grown)
}

// slotOf returns v's slot (−1 absent) via the lock-free read path.
func (c *Cache) slotOf(v int32) int32 {
	arr := *c.slots.Load()
	if int(v) >= len(arr) {
		return -1
	}
	return atomic.LoadInt32(&arr[v])
}

// Policy returns the cache's policy.
func (c *Cache) Policy() Policy { return c.policy }

// Precision returns the cache's feature-row storage precision.
func (c *Cache) Precision() Precision { return c.prec.OrDefault() }

// ownsRows reports whether the cache holds feature rows (it was built
// over a graph with features and a nonzero capacity).
func (c *Cache) ownsRows() bool { return c.rows != nil || c.rows16 != nil || c.rows8 != nil }

// allocRows allocates slot-order row storage for up to n rows at the
// cache's precision.
func (c *Cache) allocRows(n int) {
	switch c.prec.OrDefault() {
	case Float16:
		c.rows16 = make([]uint16, n*c.featDim)
	case Int8:
		c.rows8 = make([]uint8, n*c.featDim)
		c.qscale = make([]float32, n)
		c.qzero = make([]float32, n)
	default:
		c.rows = make([]float32, n*c.featDim)
	}
}

// storeRow quantizes one host feature row into slot s — the admission
// copy, and the only place quantization happens for cached rows. The
// code/parameter computation is shared with the fused host round trip
// (Precision.WidenRow), so a later hit served from this slot is
// bitwise-identical to the miss-path value.
func (c *Cache) storeRow(s int32, src []float32) {
	lo := int(s) * c.featDim
	switch {
	case c.rows != nil:
		copy(c.rows[lo:lo+c.featDim], src)
	case c.rows16 != nil:
		for j, f := range src {
			c.rows16[lo+j] = f32ToF16(f)
		}
	case c.rows8 != nil:
		scale, zero := int8RowParams(src)
		c.qscale[s], c.qzero[s] = scale, zero
		int8QuantizeRow(c.rows8[lo:lo+c.featDim], src, scale, zero)
	}
}

// rowInto dequantizes v's resident row from device slot storage into
// dst (widened to float64), reporting whether it was served. Same
// slot-reuse hazard guard and single-stage contract as RowOf.
func (c *Cache) rowInto(dst []float64, v int32) bool {
	if !c.ownsRows() {
		return false
	}
	s := c.slotOf(v)
	if s < 0 || c.vertexOf[s] != v {
		return false
	}
	lo := int(s) * c.featDim
	switch {
	case c.rows != nil:
		for j, f := range c.rows[lo : lo+c.featDim] {
			dst[j] = float64(f)
		}
	case c.rows16 != nil:
		for j, h := range c.rows16[lo : lo+c.featDim] {
			dst[j] = float64(f16ToF32(h))
		}
	default:
		scale, zero := float64(c.qscale[s]), float64(c.qzero[s])
		for j, q := range c.rows8[lo : lo+c.featDim] {
			dst[j] = zero + scale*float64(q)
		}
	}
	return true
}

// Capacity returns the capacity in vertices.
func (c *Cache) Capacity() int { return c.capacity }

// Len returns the number of currently resident vertices.
func (c *Cache) Len() int {
	if c.policy.Prefilled() {
		return c.staticLen
	}
	return int(c.size.Load())
}

// Contains reports whether v is resident without touching accounting or
// recency state. Lock-free: prefilled policies probe the immutable
// bitset, dynamic policies read the slot table atomically (the value a
// concurrent reader sees is some batch-boundary-consistent residency;
// order-dependent consumers must run fused with the writer stage).
func (c *Cache) Contains(v int32) bool {
	if c.policy.Prefilled() {
		return c.staticBit(v)
	}
	if c.policy == None {
		return false
	}
	return c.slotOf(v) >= 0
}

func (c *Cache) staticBit(v int32) bool {
	w := int(v) >> 6
	return w < len(c.static) && c.static[w]>>(uint(v)&63)&1 == 1
}

// RowOf returns the resident feature row of v from device-side slot
// storage, or nil when v is absent or the cache owns no float32 rows
// (compact precisions store quantized rows; use the gather path, which
// dequantizes via rowInto). The vertexOf check guards the one hazard of
// slot reuse: a slot admitted for v earlier in the batch may have been
// evicted and refilled for a different vertex by a later admission.
// Single-stage use only (the gather path); not safe concurrently with
// Update.
func (c *Cache) RowOf(v int32) []float32 {
	if c.rows == nil {
		return nil
	}
	s := c.slotOf(v)
	if s < 0 || c.vertexOf[s] != v {
		return nil
	}
	return c.rows[int(s)*c.featDim : (int(s)+1)*c.featDim]
}

// Lookup records an access to each node and returns the subset that
// missed (these must be transferred from the host). For LRU, hits
// refresh recency. Allocates the returned slice; hot paths should use
// LookupInto.
func (c *Cache) Lookup(nodes []int32) []int32 { return c.LookupInto(nil, nodes) }

// LookupInto is Lookup appending the misses into dst's storage (pass
// the previous result's [:0] to make steady-state lookup 0 allocs/op).
// Writer-stage only.
func (c *Cache) LookupInto(dst, nodes []int32) []int32 {
	var hits, misses int64
	switch {
	case c.policy.Prefilled():
		for _, v := range nodes {
			if c.staticBit(v) {
				hits++
			} else {
				misses++
				dst = append(dst, v)
			}
		}
	case c.policy == None:
		misses = int64(len(nodes))
		dst = append(dst, nodes...)
	case c.policy == Opt:
		// Belady bookkeeping: every access advances the vertex's script
		// cursor (and the global clock); a hit refreshes the slot's
		// next-use key in the eviction heap. Admissions are deferred to
		// Update, which reads the already-advanced cursors — correct
		// because a batch's input vertices are distinct.
		arr := *c.slots.Load()
		for _, v := range nodes {
			next := c.scriptAdvance(v)
			s := int32(-1)
			if int(v) < len(arr) {
				s = atomic.LoadInt32(&arr[v])
			}
			if s < 0 {
				misses++
				dst = append(dst, v)
				continue
			}
			hits++
			c.nextUse[s] = next
			c.heapFix(s)
		}
	default:
		// Hoist the slot-array snapshot out of the loop: the writer is
		// the only goroutine that swaps it (growSlots), so one load
		// covers the whole batch.
		arr := *c.slots.Load()
		lru := c.policy == LRU
		for _, v := range nodes {
			s := int32(-1)
			if int(v) < len(arr) {
				s = atomic.LoadInt32(&arr[v])
			}
			if s < 0 {
				misses++
				dst = append(dst, v)
				continue
			}
			hits++
			if lru {
				c.moveToBack(s)
			}
		}
	}
	c.hits.Add(hits)
	c.misses.Add(misses)
	return dst
}

// Update admits missed vertices according to the policy, evicting as
// needed, and returns the number of replacement operations performed
// (the stale-data volume of Eq. 5). None, Static and Freq never update.
// Writer-stage only; zero allocations once the slot table covers the
// touched vertex range.
func (c *Cache) Update(miss []int32) int {
	if err := faultinject.Fire(faultinject.CacheShard); err != nil {
		// Update has no error return; the pipeline's gather-stage
		// containment converts this panic back into a clean error.
		panic(err)
	}
	if !c.policy.Dynamic() || c.capacity == 0 {
		return 0
	}
	if c.policy == Opt {
		return c.optUpdate(miss)
	}
	// One growth check covers the batch, so the admission loop works on
	// a single slot-array snapshot.
	maxV := int32(-1)
	for _, v := range miss {
		if v > maxV {
			maxV = v
		}
	}
	if maxV >= 0 {
		c.growSlots(maxV)
	}
	arr := *c.slots.Load()
	var ops int
	for _, v := range miss {
		if atomic.LoadInt32(&arr[v]) >= 0 {
			continue
		}
		var s int32
		if n := c.size.Load(); int(n) >= c.capacity {
			victim := c.head
			if victim < 0 {
				break
			}
			c.unlink(victim)
			atomic.StoreInt32(&arr[c.vertexOf[victim]], -1)
			ops++
			s = victim
		} else {
			s = n
			c.size.Store(n + 1)
		}
		atomic.StoreInt32(&arr[v], s)
		c.vertexOf[s] = v
		if c.ownsRows() {
			// The admission is the transfer: the row lands (quantized) in
			// device slot storage, where later hits read it back.
			c.storeRow(s, c.g.Feature(v))
		}
		c.pushBack(s)
		ops++
	}
	c.updates.Add(int64(ops))
	return ops
}

// --- intrusive ring ------------------------------------------------------

// pushBack appends slot s at the ring's tail (most recently admitted /
// used position).
func (c *Cache) pushBack(s int32) {
	c.next[s] = -1
	c.prev[s] = c.tail
	if c.tail >= 0 {
		c.next[c.tail] = s
	} else {
		c.head = s
	}
	c.tail = s
}

// unlink removes slot s from the ring.
func (c *Cache) unlink(s int32) {
	if c.prev[s] >= 0 {
		c.next[c.prev[s]] = c.next[s]
	} else {
		c.head = c.next[s]
	}
	if c.next[s] >= 0 {
		c.prev[c.next[s]] = c.prev[s]
	} else {
		c.tail = c.prev[s]
	}
}

// moveToBack refreshes slot s to the ring's tail (LRU hit).
func (c *Cache) moveToBack(s int32) {
	if c.tail == s {
		return
	}
	c.unlink(s)
	c.pushBack(s)
}

// --- accounting ----------------------------------------------------------

// HitRate returns hits / (hits+misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	h, m := c.hits.Load(), c.misses.Load()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}

// Stats returns cumulative (hits, misses, updateOps).
func (c *Cache) Stats() (hits, misses, updates int64) {
	return c.hits.Load(), c.misses.Load(), c.updates.Load()
}

// ResetStats clears accounting but keeps residency.
func (c *Cache) ResetStats() {
	c.hits.Store(0)
	c.misses.Store(0)
	c.updates.Store(0)
}

// residentBits reports the number of set bits in the static bitset
// (test hook for the prefill paths).
func (c *Cache) residentBits() int {
	n := 0
	for _, w := range c.static {
		n += bits.OnesCount64(w)
	}
	return n
}
