// Package cache models the device-side feature cache that transmission
// strategies build on (Fig. 3 "Device Cache"). A cache holds feature rows
// for up to a fixed number of vertices; each mini-batch looks up its input
// vertices, transfers the misses over the host-device link, and then
// (policy permitting) updates the cache.
//
// The policies correspond to the paper's templates:
//
//   - None:   PyG — nothing is cached, everything is transferred.
//   - Static: PaGraph — the cache is pre-filled with the highest-degree
//     vertices and never updated (cachepolicy = None in the template).
//   - FIFO:   a dynamic policy that admits misses and evicts in insertion
//     order.
//   - LRU:    a dynamic policy that evicts the least-recently-used entry.
package cache

import (
	"container/list"
	"fmt"
	"sync"

	"gnnavigator/internal/graph"
)

// Policy names a cache replacement policy.
type Policy string

// Supported policies.
const (
	None   Policy = "none"
	Static Policy = "static"
	FIFO   Policy = "fifo"
	LRU    Policy = "lru"
)

// Policies lists all supported policies in presentation order.
func Policies() []Policy { return []Policy{None, Static, FIFO, LRU} }

// Valid reports whether p is a known policy.
func (p Policy) Valid() bool {
	switch p {
	case None, Static, FIFO, LRU:
		return true
	}
	return false
}

// Cache is a vertex-feature cache with hit/miss accounting.
//
// Concurrency contract: all methods are mutex-guarded, so the pipelined
// engine's lookup stage may run ahead of the training consumer while
// cache-aware samplers call Contains from another goroutine. Determinism,
// however, is an ordering property the mutex cannot provide: exactly one
// goroutine (the pipeline's cache stage) must issue Lookup/Update, in
// batch order. Biased samplers whose p(η) reads residency of a *dynamic*
// (FIFO/LRU) cache must run fused with that stage — see
// pipeline.Config.CoupledSampler — because residency then depends on how
// far the updates have progressed. Static caches are immutable after New,
// so Contains is order-independent and samplers may read them freely.
type Cache struct {
	mu       sync.Mutex
	policy   Policy
	capacity int

	resident map[int32]*list.Element
	order    *list.List // FIFO/LRU ordering; front = next eviction victim

	hits, misses   int64
	updates        int64 // admissions + evictions performed by dynamic policies
	staticResident map[int32]bool
}

// New builds a cache with the given policy and capacity (in vertices).
// For Static, the cache is pre-filled with the capacity highest-degree
// vertices of g (PaGraph's policy); g may be nil for other policies.
func New(policy Policy, capacity int, g *graph.Graph) (*Cache, error) {
	if !policy.Valid() {
		return nil, fmt.Errorf("cache: unknown policy %q", policy)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("cache: negative capacity %d", capacity)
	}
	c := &Cache{
		policy:   policy,
		capacity: capacity,
		resident: make(map[int32]*list.Element),
		order:    list.New(),
	}
	if policy == Static {
		if g == nil {
			return nil, fmt.Errorf("cache: static policy requires a graph for degree ordering")
		}
		c.staticResident = make(map[int32]bool, capacity)
		for i, v := range g.DegreeOrder() {
			if i >= capacity {
				break
			}
			c.staticResident[v] = true
		}
	}
	return c, nil
}

// Policy returns the cache's policy.
func (c *Cache) Policy() Policy { return c.policy }

// Capacity returns the capacity in vertices.
func (c *Cache) Capacity() int { return c.capacity }

// Dynamic reports whether the policy mutates residency at run time
// (FIFO/LRU). None never holds anything and Static is frozen after New.
func (p Policy) Dynamic() bool { return p == FIFO || p == LRU }

// Len returns the number of currently resident vertices.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.policy == Static {
		return len(c.staticResident)
	}
	return len(c.resident)
}

// Contains reports whether v is resident without touching accounting or
// recency state.
func (c *Cache) Contains(v int32) bool {
	if c.policy == Static {
		// staticResident is immutable after New: lock-free read keeps the
		// biased-sampling hot loop cheap and order-independent.
		return c.staticResident[v]
	}
	c.mu.Lock()
	_, ok := c.resident[v]
	c.mu.Unlock()
	return ok
}

// Lookup records an access to each node and returns the subset that missed
// (these must be transferred from the host). For LRU, hits refresh
// recency.
func (c *Cache) Lookup(nodes []int32) (miss []int32) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range nodes {
		if c.policy == Static {
			if c.staticResident[v] {
				c.hits++
			} else {
				c.misses++
				miss = append(miss, v)
			}
			continue
		}
		if el, ok := c.resident[v]; ok {
			c.hits++
			if c.policy == LRU {
				c.order.MoveToBack(el)
			}
			continue
		}
		c.misses++
		miss = append(miss, v)
	}
	return miss
}

// Update admits missed vertices according to the policy, evicting as
// needed, and returns the number of replacement operations performed
// (the stale-data volume of Eq. 5). None and Static never update.
func (c *Cache) Update(miss []int32) int {
	if c.policy == None || c.policy == Static || c.capacity == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var ops int
	for _, v := range miss {
		if _, ok := c.resident[v]; ok {
			continue
		}
		if len(c.resident) >= c.capacity {
			victim := c.order.Front()
			if victim == nil {
				break
			}
			delete(c.resident, victim.Value.(int32))
			c.order.Remove(victim)
			ops++
		}
		c.resident[v] = c.order.PushBack(v)
		ops++
	}
	c.updates += int64(ops)
	return ops
}

// HitRate returns hits / (hits+misses), or 0 before any lookup.
func (c *Cache) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Stats returns cumulative (hits, misses, updateOps).
func (c *Cache) Stats() (hits, misses, updates int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.updates
}

// ResetStats clears accounting but keeps residency.
func (c *Cache) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.updates = 0, 0, 0
}
