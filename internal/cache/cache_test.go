package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gnnavigator/internal/gen"
	"gnnavigator/internal/graph"
)

func starGraph(t *testing.T) *graph.Graph {
	t.Helper()
	// Vertex 0 is the hub (degree 9); leaves have degree 1.
	adj := make([][]int32, 10)
	for i := int32(1); i < 10; i++ {
		adj[0] = append(adj[0], i)
		adj[i] = []int32{0}
	}
	g, err := graph.FromAdjList(adj)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	if _, err := New("bogus", 4, nil); err == nil {
		t.Error("unknown policy accepted")
	}
	if _, err := New(FIFO, -1, nil); err == nil {
		t.Error("negative capacity accepted")
	}
	if _, err := New(Static, 4, nil); err == nil {
		t.Error("static without graph accepted")
	}
}

func TestNoneAlwaysMisses(t *testing.T) {
	c, err := New(None, 100, nil)
	if err != nil {
		t.Fatal(err)
	}
	nodes := []int32{1, 2, 3}
	miss := c.Lookup(nodes)
	if len(miss) != 3 {
		t.Errorf("miss = %v, want all", miss)
	}
	c.Update(miss)
	miss = c.Lookup(nodes)
	if len(miss) != 3 {
		t.Errorf("None policy cached something: %v", miss)
	}
	if c.HitRate() != 0 {
		t.Errorf("HitRate = %v, want 0", c.HitRate())
	}
}

func TestStaticCachesHighestDegree(t *testing.T) {
	g := starGraph(t)
	c, err := New(Static, 1, g)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Contains(0) {
		t.Error("hub not resident in static cache")
	}
	miss := c.Lookup([]int32{0, 1, 2})
	if len(miss) != 2 {
		t.Errorf("miss = %v, want [1 2]", miss)
	}
	if ops := c.Update(miss); ops != 0 {
		t.Errorf("static Update performed %d ops, want 0", ops)
	}
	if got := c.HitRate(); got != 1.0/3 {
		t.Errorf("HitRate = %v, want 1/3", got)
	}
}

func TestFIFOEvictsInOrder(t *testing.T) {
	c, err := New(FIFO, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Update(c.Lookup([]int32{1, 2})) // cache: 1,2
	if c.Len() != 2 {
		t.Fatalf("Len = %d, want 2", c.Len())
	}
	// Access 1 (hit, but FIFO ignores recency), then insert 3 -> evicts 1.
	c.Lookup([]int32{1})
	c.Update(c.Lookup([]int32{3}))
	if c.Contains(1) {
		t.Error("FIFO kept 1; should evict oldest regardless of recency")
	}
	if !c.Contains(2) || !c.Contains(3) {
		t.Error("FIFO resident set wrong")
	}
}

func TestLRURespectsRecency(t *testing.T) {
	c, err := New(LRU, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Update(c.Lookup([]int32{1, 2})) // cache: 1,2
	c.Lookup([]int32{1})              // 1 is now most recent
	c.Update(c.Lookup([]int32{3}))    // evicts 2
	if !c.Contains(1) {
		t.Error("LRU evicted recently used 1")
	}
	if c.Contains(2) {
		t.Error("LRU kept least recently used 2")
	}
}

func TestUpdateCountsOps(t *testing.T) {
	c, err := New(FIFO, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	// First two admissions: 2 ops, no eviction.
	if ops := c.Update([]int32{1, 2}); ops != 2 {
		t.Errorf("ops = %d, want 2", ops)
	}
	// Third: evict + admit = 2 ops.
	if ops := c.Update([]int32{3}); ops != 2 {
		t.Errorf("ops = %d, want 2 (evict+admit)", ops)
	}
	_, _, updates := c.Stats()
	if updates != 4 {
		t.Errorf("cumulative updates = %d, want 4", updates)
	}
}

func TestZeroCapacityDynamic(t *testing.T) {
	c, err := New(LRU, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	if ops := c.Update([]int32{1, 2}); ops != 0 {
		t.Errorf("zero-capacity cache performed %d update ops", ops)
	}
	if len(c.Lookup([]int32{1})) != 1 {
		t.Error("zero-capacity cache produced a hit")
	}
}

func TestResetStats(t *testing.T) {
	c, err := New(FIFO, 2, nil)
	if err != nil {
		t.Fatal(err)
	}
	c.Update(c.Lookup([]int32{1, 2}))
	c.Lookup([]int32{1})
	c.ResetStats()
	h, m, u := c.Stats()
	if h != 0 || m != 0 || u != 0 {
		t.Errorf("stats after reset = %d/%d/%d", h, m, u)
	}
	if !c.Contains(1) {
		t.Error("ResetStats dropped residency")
	}
}

// Property (LRU): residency never exceeds capacity, and because hits
// refresh recency, a batch no larger than the capacity is fully resident
// right after Lookup+Update — a re-lookup yields zero misses.
//
// Note this is deliberately NOT asserted for FIFO: under FIFO a batch
// vertex that *hit* may still be evicted by admissions from the same
// batch (hits do not refresh insertion order), which is exactly the
// anomaly that makes FIFO cheaper but weaker than LRU.
func TestLRUBatchResidencyProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(20)
		c, err := New(LRU, capacity, nil)
		if err != nil {
			return false
		}
		for round := 0; round < 10; round++ {
			batch := make([]int32, 1+rng.Intn(capacity)) // fits in cache
			for i := range batch {
				batch[i] = int32(rng.Intn(50))
			}
			c.Update(c.Lookup(batch))
			if c.Len() > capacity {
				return false
			}
			if miss := c.Lookup(batch); len(miss) != 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property (FIFO): the capacity bound always holds and misses are a
// subset of the batch.
func TestFIFOCapacityProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		capacity := 1 + rng.Intn(20)
		c, err := New(FIFO, capacity, nil)
		if err != nil {
			return false
		}
		for round := 0; round < 10; round++ {
			batch := make([]int32, 1+rng.Intn(30))
			inBatch := map[int32]bool{}
			for i := range batch {
				batch[i] = int32(rng.Intn(50))
				inBatch[batch[i]] = true
			}
			miss := c.Lookup(batch)
			for _, v := range miss {
				if !inBatch[v] {
					return false
				}
			}
			c.Update(miss)
			if c.Len() > capacity {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestStaticHitRateGrowsWithCapacity reproduces the PaGraph premise: on a
// power-law graph, a bigger static cache yields a higher hit rate under
// degree-weighted access.
func TestStaticHitRateGrowsWithCapacity(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	g, err := gen.BarabasiAlbert(rng, 1000, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Degree-weighted accesses: walk random edges.
	accesses := make([]int32, 0, 5000)
	for i := 0; i < 5000; i++ {
		v := int32(rng.Intn(1000))
		ns := g.Neighbors(v)
		if len(ns) == 0 {
			continue
		}
		accesses = append(accesses, ns[rng.Intn(len(ns))])
	}
	rate := func(capacity int) float64 {
		c, err := New(Static, capacity, g)
		if err != nil {
			t.Fatal(err)
		}
		c.Lookup(accesses)
		return c.HitRate()
	}
	small, large := rate(50), rate(500)
	if large <= small {
		t.Errorf("hit rate did not grow with capacity: %v -> %v", small, large)
	}
	if large < 0.3 {
		t.Errorf("500/1000 static cache hit rate %.2f too low for power-law access", large)
	}
}
