package cache

import (
	"errors"
	"testing"

	"gnnavigator/internal/faultinject"
)

// TestChaosUpdateInjectedError: an Error fault at the cache/shard point
// surfaces as a panic wrapping ErrInjected (Update has no error return;
// the pipeline's stage containment converts it back into an error — see
// the pipeline chaos suite for that half).
func TestChaosUpdateInjectedError(t *testing.T) {
	defer faultinject.Reset()
	c, err := New(LRU, 4, starGraph(t))
	if err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.CacheShard, faultinject.Spec{Kind: faultinject.Error, After: 1, Count: 1})
	c.Update(c.Lookup([]int32{1, 2})) // hit 0: scheduled to pass
	func() {
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("armed cache/shard fault did not fire")
			}
			if err, ok := r.(error); !ok || !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("Update panicked with %v, want ErrInjected", r)
			}
		}()
		c.Update(c.Lookup([]int32{3})) // hit 1: fires
	}()
	// The schedule is exhausted (Count 1): the cache keeps working and
	// the interrupted admission was simply skipped, not half-applied.
	c.Update(c.Lookup([]int32{4}))
	if !c.Contains(4) {
		t.Error("cache stopped admitting after a contained injected fault")
	}
}

// TestChaosUpdateDelayPreservesResults: a Delay fault slows Update but
// leaves residency and counters identical to an unfaulted run.
func TestChaosUpdateDelayPreservesResults(t *testing.T) {
	defer faultinject.Reset()
	g := starGraph(t)
	run := func() (hits, misses, updates int64) {
		c, err := New(LRU, 4, g)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range [][]int32{{1, 2}, {3, 1}, {4, 5, 2}, {1, 3}} {
			c.Update(c.Lookup(batch))
		}
		return c.Stats()
	}
	h0, m0, u0 := run()
	faultinject.Arm(faultinject.CacheShard, faultinject.Spec{Kind: faultinject.Delay})
	h1, m1, u1 := run()
	if h0 != h1 || m0 != m1 || u0 != u1 {
		t.Errorf("delay fault changed results: (%d,%d,%d) vs (%d,%d,%d)", h0, m0, u0, h1, m1, u1)
	}
}
