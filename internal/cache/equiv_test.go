package cache

import (
	"math/rand"
	"sync"
	"testing"

	"gnnavigator/internal/gen"
	"gnnavigator/internal/graph"
)

// accessStream builds a deterministic degree-skewed access pattern over
// g: batches of edge-walk endpoints, the same shape the samplers feed
// the cache.
func accessStream(t *testing.T, g *graph.Graph, batches, batchLen int, seed int64) [][]int32 {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := g.NumVertices()
	out := make([][]int32, batches)
	for b := range out {
		batch := make([]int32, 0, batchLen)
		for len(batch) < batchLen {
			v := int32(rng.Intn(n))
			if ns := g.Neighbors(v); len(ns) > 0 {
				v = ns[rng.Intn(len(ns))]
			}
			batch = append(batch, v)
		}
		out[b] = batch
	}
	return out
}

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(rand.New(rand.NewSource(3)), 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// kernelPair builds the array-backed cache and the frozen map+list
// reference with identical parameters.
func kernelPair(t *testing.T, policy Policy, capacity int, g *graph.Graph) (Kernel, Kernel) {
	t.Helper()
	if policy == Freq {
		order := g.DegreeOrder() // any fixed admission order
		c, err := NewWithOrder(Freq, capacity, g, order)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := NewMapReferenceWithOrder(Freq, capacity, order)
		if err != nil {
			t.Fatal(err)
		}
		return c, ref
	}
	c, err := New(policy, capacity, g)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := NewMapReference(policy, capacity, g)
	if err != nil {
		t.Fatal(err)
	}
	return c, ref
}

// TestKernelEquivalence pins the array-backed cache bitwise against the
// frozen map+list reference for every policy: identical miss lists (in
// order), identical per-batch update ops, identical cumulative stats,
// and identical residency after every batch.
func TestKernelEquivalence(t *testing.T) {
	g := testGraph(t)
	stream := accessStream(t, g, 60, 256, 11)
	for _, policy := range Policies() {
		if policy == Opt {
			// Script-driven: the frozen map+list reference predates the
			// offline-optimal policy and has no counterpart to compare
			// against. Opt's invariants are pinned in opt_test.go.
			continue
		}
		t.Run(string(policy), func(t *testing.T) {
			for _, capacity := range []int{0, 1, 7, 300} {
				c, ref := kernelPair(t, policy, capacity, g)
				var missC, missR []int32
				for bi, batch := range stream {
					missC = c.LookupInto(missC[:0], batch)
					missR = ref.LookupInto(missR[:0], batch)
					if len(missC) != len(missR) {
						t.Fatalf("cap %d batch %d: miss count %d vs %d", capacity, bi, len(missC), len(missR))
					}
					for i := range missC {
						if missC[i] != missR[i] {
							t.Fatalf("cap %d batch %d: miss[%d] = %d vs %d", capacity, bi, i, missC[i], missR[i])
						}
					}
					if oc, or := c.Update(missC), ref.Update(missR); oc != or {
						t.Fatalf("cap %d batch %d: update ops %d vs %d", capacity, bi, oc, or)
					}
					if c.Len() != ref.Len() {
						t.Fatalf("cap %d batch %d: len %d vs %d", capacity, bi, c.Len(), ref.Len())
					}
					for _, v := range batch {
						if c.Contains(v) != ref.Contains(v) {
							t.Fatalf("cap %d batch %d: residency of %d diverges", capacity, bi, v)
						}
					}
				}
				hc, mc, uc := c.Stats()
				hr, mr, ur := ref.Stats()
				if hc != hr || mc != mr || uc != ur {
					t.Fatalf("cap %d: stats (%d,%d,%d) vs (%d,%d,%d)", capacity, hc, mc, uc, hr, mr, ur)
				}
			}
		})
	}
}

// TestCachedRowsMatchHost verifies the cache actually owns its resident
// feature rows: after admissions, RowOf serves a verbatim copy of the
// host row for every resident vertex, and nil for absent ones.
func TestCachedRowsMatchHost(t *testing.T) {
	g := testGraph(t)
	if err := gen.AttachFeatures(rand.New(rand.NewSource(5)), g, make([]int32, g.NumVertices()), 2,
		gen.FeatureSpec{Dim: 8, Noise: 0.5}); err != nil {
		t.Fatal(err)
	}
	for _, policy := range []Policy{Static, FIFO, LRU} {
		c, err := New(policy, 200, g)
		if err != nil {
			t.Fatal(err)
		}
		for _, batch := range accessStream(t, g, 20, 128, 23) {
			c.Update(c.Lookup(batch))
			for _, v := range batch {
				row := c.RowOf(v)
				if c.Contains(v) {
					if row == nil {
						t.Fatalf("%s: resident %d has no row", policy, v)
					}
					for j, f := range g.Feature(v) {
						if row[j] != f {
							t.Fatalf("%s: row of %d differs at %d", policy, v, j)
						}
					}
				} else if row != nil {
					t.Fatalf("%s: absent %d served a row", policy, v)
				}
			}
		}
	}
}

// TestFreqPrefill covers NewWithOrder admission semantics: exactly the
// first capacity order entries become resident, bitset and slot table
// agree, and lookups never mutate residency.
func TestFreqPrefill(t *testing.T) {
	g := testGraph(t)
	order := []int32{42, 7, 1999, 3, 500}
	c, err := NewWithOrder(Freq, 3, g, order)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 3 || c.residentBits() != 3 {
		t.Fatalf("Len = %d, bits = %d, want 3", c.Len(), c.residentBits())
	}
	for i, v := range order {
		want := i < 3
		if c.Contains(v) != want {
			t.Errorf("Contains(%d) = %v, want %v", v, !want, want)
		}
	}
	if ops := c.Update(c.Lookup([]int32{9, 10, 11})); ops != 0 {
		t.Errorf("freq cache performed %d update ops", ops)
	}
	if c.Contains(9) {
		t.Error("freq cache admitted at run time")
	}
	if _, err := New(Freq, 3, g); err == nil {
		t.Error("New accepted freq without an admission order")
	}
}

// TestShardsEmptyShardOrder: a prefilled shard whose vertex residue
// class has no entry in the admission order is a valid (empty) shard,
// not a construction error.
func TestShardsEmptyShardOrder(t *testing.T) {
	g := testGraph(t)
	order := []int32{0, 4, 8} // residue class 0 mod 4 only
	s, err := NewShardsWithOrder(Freq, 100, 4, g, order)
	if err != nil {
		t.Fatalf("empty shard order rejected: %v", err)
	}
	if s.Len() != 3 {
		t.Errorf("Len = %d, want 3", s.Len())
	}
	if !s.Contains(4) || s.Contains(1) {
		t.Error("residency wrong after sparse prefill")
	}
}

// TestShardsDeterministicAcrossWorkers drives a 4-shard cache with 1, 2
// and 4 writer goroutines (each owning whole shards) and requires
// identical aggregate hits/misses/updates — the ownership contract that
// makes the sharded plane deterministic. Run under -race (CI does) this
// also proves shard independence.
func TestShardsDeterministicAcrossWorkers(t *testing.T) {
	g := testGraph(t)
	stream := accessStream(t, g, 40, 256, 31)
	const nShards = 4
	for _, policy := range []Policy{Static, FIFO, LRU} {
		run := func(workers int) (int64, int64, int64) {
			s, err := NewShards(policy, 300, nShards, g)
			if err != nil {
				t.Fatal(err)
			}
			// Pre-split each batch by owning shard (outside the drive).
			sub := make([][][]int32, nShards)
			for _, batch := range stream {
				perShard := make([][]int32, nShards)
				for _, v := range batch {
					i := s.ShardOf(v)
					perShard[i] = append(perShard[i], v)
				}
				for i := range perShard {
					sub[i] = append(sub[i], perShard[i])
				}
			}
			var wg sync.WaitGroup
			for w := 0; w < workers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					var miss []int32
					for i := w; i < nShards; i += workers {
						shard := s.Shard(i)
						for _, batch := range sub[i] {
							miss = shard.LookupInto(miss[:0], batch)
							shard.Update(miss)
						}
					}
				}(w)
			}
			wg.Wait()
			return s.Stats()
		}
		h1, m1, u1 := run(1)
		for _, workers := range []int{2, 4} {
			h, m, u := run(workers)
			if h != h1 || m != m1 || u != u1 {
				t.Errorf("%s: %d workers gave (%d,%d,%d), 1 worker (%d,%d,%d)",
					policy, workers, h, m, u, h1, m1, u1)
			}
		}
		if h1+m1 == 0 {
			t.Errorf("%s: no accounting recorded", policy)
		}
	}
}
