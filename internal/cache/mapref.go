package cache

import (
	"container/list"
	"fmt"
	"sync"

	"gnnavigator/internal/graph"
)

// Frozen map+list cache.
//
// This file preserves the pre-refactor implementation: a global
// sync.Mutex around a map[int32]*list.Element plus a container/list
// eviction order, with a map[int32]bool for static residency. It exists
// for two reasons: the equivalence tests pin the array-backed Cache to
// identical hits, misses and evictions for every policy, and `benchtab
// -cache-bench` measures what dropping the map, the per-entry list
// nodes and the global lock buys. It is reference code — do not
// optimize it.

// MapReference is the frozen map+list cache. It implements Kernel; all
// methods are guarded by one global mutex, exactly as the old Cache was.
type MapReference struct {
	mu       sync.Mutex
	policy   Policy
	capacity int

	resident map[int32]*list.Element
	order    *list.List // FIFO/LRU ordering; front = next eviction victim

	hits, misses   int64
	updates        int64
	staticResident map[int32]bool
}

// NewMapReference builds the frozen reference with the given policy and
// capacity, mirroring New (Static pre-fills from g's degree order; Freq
// needs NewMapReferenceWithOrder).
func NewMapReference(policy Policy, capacity int, g *graph.Graph) (*MapReference, error) {
	order, err := defaultAdmissionOrder(policy, g, "NewMapReferenceWithOrder")
	if err != nil {
		return nil, err
	}
	return NewMapReferenceWithOrder(policy, capacity, order)
}

// NewMapReferenceWithOrder is NewWithOrder's frozen counterpart: the
// first capacity vertices of order become the immutable resident set of
// a prefilled (Static/Freq) policy.
func NewMapReferenceWithOrder(policy Policy, capacity int, order []int32) (*MapReference, error) {
	if !policy.Valid() {
		return nil, fmt.Errorf("cache: unknown policy %q", policy)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("cache: negative capacity %d", capacity)
	}
	if err := requireAdmissionOrder(policy, order); err != nil {
		return nil, err
	}
	c := &MapReference{
		policy:   policy,
		capacity: capacity,
		resident: make(map[int32]*list.Element),
		order:    list.New(),
	}
	if policy.Prefilled() {
		c.staticResident = make(map[int32]bool, capacity)
		for i, v := range order {
			if i >= capacity {
				break
			}
			c.staticResident[v] = true
		}
	}
	return c, nil
}

// Policy returns the cache's policy.
func (c *MapReference) Policy() Policy { return c.policy }

// Capacity returns the capacity in vertices.
func (c *MapReference) Capacity() int { return c.capacity }

// Len returns the number of currently resident vertices.
func (c *MapReference) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.policy.Prefilled() {
		return len(c.staticResident)
	}
	return len(c.resident)
}

// Contains reports whether v is resident without touching accounting.
func (c *MapReference) Contains(v int32) bool {
	if c.policy.Prefilled() {
		return c.staticResident[v]
	}
	c.mu.Lock()
	_, ok := c.resident[v]
	c.mu.Unlock()
	return ok
}

// Lookup records an access to each node and returns the misses.
func (c *MapReference) Lookup(nodes []int32) []int32 { return c.LookupInto(nil, nodes) }

// LookupInto is Lookup appending into dst's storage.
func (c *MapReference) LookupInto(dst, nodes []int32) []int32 {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, v := range nodes {
		if c.policy.Prefilled() {
			if c.staticResident[v] {
				c.hits++
			} else {
				c.misses++
				dst = append(dst, v)
			}
			continue
		}
		if el, ok := c.resident[v]; ok {
			c.hits++
			if c.policy == LRU {
				c.order.MoveToBack(el)
			}
			continue
		}
		c.misses++
		dst = append(dst, v)
	}
	return dst
}

// Update admits missed vertices per the policy, evicting as needed.
func (c *MapReference) Update(miss []int32) int {
	if !c.policy.Dynamic() || c.capacity == 0 {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	var ops int
	for _, v := range miss {
		if _, ok := c.resident[v]; ok {
			continue
		}
		if len(c.resident) >= c.capacity {
			victim := c.order.Front()
			if victim == nil {
				break
			}
			delete(c.resident, victim.Value.(int32))
			c.order.Remove(victim)
			ops++
		}
		c.resident[v] = c.order.PushBack(v)
		ops++
	}
	c.updates += int64(ops)
	return ops
}

// HitRate returns hits / (hits+misses), or 0 before any lookup.
func (c *MapReference) HitRate() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	total := c.hits + c.misses
	if total == 0 {
		return 0
	}
	return float64(c.hits) / float64(total)
}

// Stats returns cumulative (hits, misses, updateOps).
func (c *MapReference) Stats() (hits, misses, updates int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.updates
}

// ResetStats clears accounting but keeps residency.
func (c *MapReference) ResetStats() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits, c.misses, c.updates = 0, 0, 0
}
