package cache

import (
	"cmp"
	"fmt"
	"iter"
	"math"
	"slices"
	"sync/atomic"

	"gnnavigator/internal/graph"
)

// Offline-optimal (Belady MIN) cache policy.
//
// Since a run's entire sampling is a pure function of its configuration
// (the compiled epoch plan of internal/plan), the exact future access
// stream the device cache will see is known before training starts. Opt
// exploits it: on a miss with the cache full, the incoming vertex is
// admitted only if its next use comes sooner than that of the resident
// entry needed farthest in the future (which is evicted); otherwise the
// miss bypasses the cache. Residency starts from an earliest-first-
// access prefill, mirroring the free prefill Static/Freq enjoy. On the
// identical access stream this dominates every online policy — it is
// the upper-bound row of the cache ablation, the headroom the paper's
// policy knob is measured against.
//
// Opt is Dynamic (it mutates residency at run time) but not Prefilled
// (its residency is not an immutable order-derived set). It requires
// unbiased sampling: a cache-aware bias makes the access stream depend
// on residency, which the pre-compiled script cannot reflect — the
// backend rejects Opt together with BiasRate > 0.

// OptScript is the exact future access order compiled from an epoch
// plan, in CSR form: occOff[v]..occOff[v+1] indexes occPos, the
// ascending global access positions of vertex v over the whole stream
// (one position per input-vertex access, batches in (epoch, index)
// order).
type OptScript struct {
	n      int
	occOff []int32
	occPos []int32
}

// Accesses returns the script's total access count.
func (s *OptScript) Accesses() int { return len(s.occPos) }

// BuildOptScript compiles the future access order from a batch input
// stream over a vertex space of size numVertices (two passes: counts,
// then positions). plan.Plan.BatchInputs supplies the stream.
func BuildOptScript(numVertices int, stream iter.Seq[[]int32]) (*OptScript, error) {
	occOff := make([]int32, numVertices+1)
	var total int64
	for nodes := range stream {
		for _, v := range nodes {
			occOff[v+1]++
		}
		total += int64(len(nodes))
	}
	if total > math.MaxInt32 {
		return nil, fmt.Errorf("cache: opt script has %d accesses (int32 position overflow)", total)
	}
	for v := 0; v < numVertices; v++ {
		occOff[v+1] += occOff[v]
	}
	occPos := make([]int32, total)
	cur := make([]int32, numVertices)
	copy(cur, occOff[:numVertices])
	pos := int32(0)
	for nodes := range stream {
		for _, v := range nodes {
			occPos[cur[v]] = pos
			cur[v]++
			pos++
		}
	}
	return &OptScript{n: numVertices, occOff: occOff, occPos: occPos}, nil
}

// NewOpt builds the Belady cache over a compiled access script. g may
// be nil to track residency only (no feature rows), as with the other
// constructors.
func NewOpt(capacity int, g *graph.Graph, script *OptScript) (*Cache, error) {
	return NewOptWithPrecision(capacity, g, script, Float32)
}

// NewOptWithPrecision is NewOpt with slot storage held at the given
// feature precision.
func NewOptWithPrecision(capacity int, g *graph.Graph, script *OptScript, prec Precision) (*Cache, error) {
	if script == nil {
		return nil, fmt.Errorf("cache: opt policy needs a compiled plan script; use BuildOptScript")
	}
	if capacity < 0 {
		return nil, fmt.Errorf("cache: negative capacity %d", capacity)
	}
	if !prec.Valid() {
		return nil, fmt.Errorf("cache: unknown precision %q", prec)
	}
	c := &Cache{policy: Opt, capacity: capacity, head: -1, tail: -1, prec: prec.OrDefault()}
	maxV := int32(script.n) - 1
	if g != nil && int32(g.NumVertices())-1 > maxV {
		maxV = int32(g.NumVertices()) - 1
	}
	if maxV >= 0 {
		c.growSlots(maxV)
	} else {
		empty := []int32{}
		c.slots.Store(&empty)
	}
	if g != nil && g.Features != nil && capacity > 0 {
		c.featDim = g.FeatDim
		c.g = g
		c.allocRows(min(capacity, g.NumVertices()))
	}
	c.script = script
	c.cursor = make([]int32, script.n)
	copy(c.cursor, script.occOff[:script.n])
	c.vertexOf = make([]int32, capacity)
	c.nextUse = make([]int32, capacity)
	c.heapOf = make([]int32, 0, capacity)
	c.heapPos = make([]int32, capacity)
	c.prefillOpt()
	return c, nil
}

// prefillOpt admits the first capacity distinct vertices the script
// touches, in order of earliest first access: each prefilled entry's
// first access is a guaranteed hit, and Belady eviction takes over from
// there. Like the Static/Freq prefill, construction-time admissions
// count no update ops.
func (c *Cache) prefillOpt() {
	if c.capacity == 0 {
		return
	}
	sc := c.script
	touched := make([]int32, 0, sc.n)
	for v := 0; v < sc.n; v++ {
		if sc.occOff[v+1] > sc.occOff[v] {
			touched = append(touched, int32(v))
		}
	}
	// First-access positions are unique, so this order is total.
	slices.SortFunc(touched, func(a, b int32) int {
		return cmp.Compare(sc.occPos[sc.occOff[a]], sc.occPos[sc.occOff[b]])
	})
	n := min(c.capacity, len(touched))
	arr := *c.slots.Load()
	for i := 0; i < n; i++ {
		v := touched[i]
		s := int32(i)
		arr[v] = s
		c.vertexOf[s] = v
		c.nextUse[s] = sc.occPos[sc.occOff[v]]
		c.heapPush(s)
		if c.ownsRows() {
			c.storeRow(s, c.g.Feature(v))
		}
	}
	c.size.Store(int32(n))
}

// scriptInf is the next-use key of a vertex the script never touches
// again: one past the last position, so it always compares as farthest.
func (c *Cache) scriptInf() int32 { return int32(len(c.script.occPos)) }

// scriptAdvance records one access: it bumps the global clock and moves
// v's cursor past every scripted occurrence at or before this position
// (tolerant skip-forward, so a stream that deviates from the script
// degrades the policy instead of corrupting it), returning v's next
// future use.
func (c *Cache) scriptAdvance(v int32) int32 {
	pos := c.clock
	c.clock++
	sc := c.script
	if int(v) >= sc.n {
		return c.scriptInf()
	}
	cur := c.cursor[v]
	end := sc.occOff[v+1]
	for cur < end && sc.occPos[cur] <= pos {
		cur++
	}
	c.cursor[v] = cur
	if cur < end {
		return sc.occPos[cur]
	}
	return c.scriptInf()
}

// futureOf returns v's next scripted use without recording an access
// (the admission path; LookupInto already advanced the cursor).
func (c *Cache) futureOf(v int32) int32 {
	sc := c.script
	if int(v) >= sc.n {
		return c.scriptInf()
	}
	if cur := c.cursor[v]; cur < sc.occOff[v+1] {
		return sc.occPos[cur]
	}
	return c.scriptInf()
}

// optUpdate is Update for the Belady policy: a miss is admitted only if
// its next use comes sooner than the worst resident entry's (bypassing
// otherwise), evicting the entry needed farthest in the future. Ops
// accounting mirrors the ring policies: evict and admit each count one
// replacement op; a bypass counts none.
func (c *Cache) optUpdate(miss []int32) int {
	maxV := int32(-1)
	for _, v := range miss {
		if v > maxV {
			maxV = v
		}
	}
	if maxV >= 0 {
		c.growSlots(maxV)
	}
	arr := *c.slots.Load()
	var ops int
	for _, v := range miss {
		if atomic.LoadInt32(&arr[v]) >= 0 {
			continue
		}
		next := c.futureOf(v)
		var s int32
		if n := c.size.Load(); int(n) >= c.capacity {
			top := c.heapOf[0]
			if next >= c.nextUse[top] {
				// Bypass: v is needed no sooner than every resident
				// entry (or never again); admitting it could only
				// displace a more useful row.
				continue
			}
			atomic.StoreInt32(&arr[c.vertexOf[top]], -1)
			ops++
			s = top
			c.vertexOf[s] = v
			c.nextUse[s] = next
			c.heapFix(s)
		} else {
			s = n
			c.size.Store(n + 1)
			c.vertexOf[s] = v
			c.nextUse[s] = next
			c.heapPush(s)
		}
		atomic.StoreInt32(&arr[v], s)
		if c.ownsRows() {
			c.storeRow(s, c.g.Feature(v))
		}
		ops++
	}
	c.updates.Add(int64(ops))
	return ops
}

// --- indexed max-heap over slots, keyed by (nextUse, vertex) -------------

// optWorse reports whether slot a is a better eviction victim than b:
// needed farther in the future, ties (both never needed again) broken by
// vertex id for determinism.
func (c *Cache) optWorse(a, b int32) bool {
	if c.nextUse[a] != c.nextUse[b] {
		return c.nextUse[a] > c.nextUse[b]
	}
	return c.vertexOf[a] > c.vertexOf[b]
}

func (c *Cache) heapPush(s int32) {
	c.heapPos[s] = int32(len(c.heapOf))
	c.heapOf = append(c.heapOf, s)
	c.heapUp(int(c.heapPos[s]))
}

// heapFix restores the heap invariant around slot s after its nextUse
// key changed.
func (c *Cache) heapFix(s int32) {
	c.heapUp(int(c.heapPos[s]))
	c.heapDown(int(c.heapPos[s]))
}

func (c *Cache) heapUp(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !c.optWorse(c.heapOf[i], c.heapOf[parent]) {
			return
		}
		c.heapSwap(i, parent)
		i = parent
	}
}

func (c *Cache) heapDown(i int) {
	n := len(c.heapOf)
	for {
		worst := i
		if l := 2*i + 1; l < n && c.optWorse(c.heapOf[l], c.heapOf[worst]) {
			worst = l
		}
		if r := 2*i + 2; r < n && c.optWorse(c.heapOf[r], c.heapOf[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		c.heapSwap(i, worst)
		i = worst
	}
}

func (c *Cache) heapSwap(i, j int) {
	c.heapOf[i], c.heapOf[j] = c.heapOf[j], c.heapOf[i]
	c.heapPos[c.heapOf[i]] = int32(i)
	c.heapPos[c.heapOf[j]] = int32(j)
}
