package cache

import (
	"iter"
	"testing"
)

// sliceSeq adapts a materialized batch stream to the iter.Seq form
// BuildOptScript consumes (it iterates the stream twice).
func sliceSeq(stream [][]int32) iter.Seq[[]int32] {
	return func(yield func([]int32) bool) {
		for _, b := range stream {
			if !yield(b) {
				return
			}
		}
	}
}

// driveStats replays a stream against k and returns (hits, misses, ops).
func driveStats(k Kernel, stream [][]int32) (int64, int64, int64) {
	var miss []int32
	var ops int64
	for _, batch := range stream {
		miss = k.LookupInto(miss[:0], batch)
		ops += int64(k.Update(miss))
	}
	h, m, _ := k.Stats()
	return h, m, ops
}

// TestOptHandComputedBelady pins the Opt kernel to a worked MIN example:
// capacity 2, stream [0 1][2 0][0 1][3]. The optimal prefill admits the
// two earliest-first-access vertices (0, 1); vertex 2 must bypass (its
// next use, never, is no sooner than the heap maximum) and so must 3.
// That yields 5 hits, 2 misses and zero cache operations — any eviction
// here would be strictly worse.
func TestOptHandComputedBelady(t *testing.T) {
	g := testGraph(t)
	stream := [][]int32{{0, 1}, {2, 0}, {0, 1}, {3}}
	script, err := BuildOptScript(g.NumVertices(), sliceSeq(stream))
	if err != nil {
		t.Fatal(err)
	}
	if script.Accesses() != 7 {
		t.Fatalf("Accesses = %d, want 7", script.Accesses())
	}
	c, err := NewOpt(2, g, script)
	if err != nil {
		t.Fatal(err)
	}
	if c.Len() != 2 || !c.Contains(0) || !c.Contains(1) {
		t.Fatalf("prefill wrong: len %d, resident(0)=%v resident(1)=%v",
			c.Len(), c.Contains(0), c.Contains(1))
	}
	h, m, ops := driveStats(c, stream)
	if h != 5 || m != 2 || ops != 0 {
		t.Errorf("got hits=%d misses=%d ops=%d, want 5/2/0", h, m, ops)
	}
	if !c.Contains(0) || !c.Contains(1) || c.Contains(2) || c.Contains(3) {
		t.Error("residency changed: MIN never evicts here")
	}
}

// TestOptDominatesOnlinePolicies is the upper-bound contract: on one
// shared access stream at equal capacity, the offline-optimal policy
// must achieve a hit rate no worse than every online policy (and the
// degree/frequency prefills). A violation fails — it would mean the
// Belady implementation mis-prices some eviction.
func TestOptDominatesOnlinePolicies(t *testing.T) {
	g := testGraph(t)
	stream := accessStream(t, g, 60, 256, 17)
	for _, capacity := range []int{50, 300, 1000} {
		script, err := BuildOptScript(g.NumVertices(), sliceSeq(stream))
		if err != nil {
			t.Fatal(err)
		}
		opt, err := NewOpt(capacity, g, script)
		if err != nil {
			t.Fatal(err)
		}
		oh, om, _ := driveStats(opt, stream)
		optRate := float64(oh) / float64(oh+om)
		for _, policy := range []Policy{Static, Freq, FIFO, LRU} {
			var k Kernel
			if policy == Freq {
				k, err = NewWithOrder(Freq, capacity, g, g.DegreeOrder())
			} else {
				k, err = New(policy, capacity, g)
			}
			if err != nil {
				t.Fatal(err)
			}
			h, m, _ := driveStats(k, stream)
			rate := float64(h) / float64(h+m)
			if optRate < rate {
				t.Errorf("cap %d: opt hit rate %.4f below %s's %.4f", capacity, optRate, policy, rate)
			}
		}
	}
}

// TestOptDeterministic: two Opt caches over the same script replay the
// same stream to bitwise-identical miss lists, residency and stats.
func TestOptDeterministic(t *testing.T) {
	g := testGraph(t)
	stream := accessStream(t, g, 30, 128, 29)
	mk := func() *Cache {
		script, err := BuildOptScript(g.NumVertices(), sliceSeq(stream))
		if err != nil {
			t.Fatal(err)
		}
		c, err := NewOpt(120, g, script)
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	a, b := mk(), mk()
	var ma, mb []int32
	for bi, batch := range stream {
		ma = a.LookupInto(ma[:0], batch)
		mb = b.LookupInto(mb[:0], batch)
		if len(ma) != len(mb) {
			t.Fatalf("batch %d: miss count %d vs %d", bi, len(ma), len(mb))
		}
		for i := range ma {
			if ma[i] != mb[i] {
				t.Fatalf("batch %d: miss[%d] %d vs %d", bi, i, ma[i], mb[i])
			}
		}
		if oa, ob := a.Update(ma), b.Update(mb); oa != ob {
			t.Fatalf("batch %d: ops %d vs %d", bi, oa, ob)
		}
	}
	ha, sa, ua := a.Stats()
	hb, sb, ub := b.Stats()
	if ha != hb || sa != sb || ua != ub {
		t.Fatalf("stats diverge: (%d,%d,%d) vs (%d,%d,%d)", ha, sa, ua, hb, sb, ub)
	}
	if ha+sa == 0 {
		t.Fatal("no accesses recorded")
	}
}

// TestOptConstruction covers the policy's construction contract: Opt is
// script-driven, so every order-based or script-less constructor must
// reject it, and NewOpt validates its own inputs.
func TestOptConstruction(t *testing.T) {
	g := testGraph(t)
	if _, err := New(Opt, 3, g); err == nil {
		t.Error("New accepted opt without a script")
	}
	if _, err := NewWithOrder(Opt, 3, g, []int32{1, 2, 3}); err == nil {
		t.Error("NewWithOrder accepted opt")
	}
	if _, err := NewMapReference(Opt, 3, g); err == nil {
		t.Error("NewMapReference accepted opt")
	}
	if _, err := NewShards(Opt, 8, 4, g); err == nil {
		t.Error("NewShards accepted opt")
	}
	if _, err := NewOpt(3, g, nil); err == nil {
		t.Error("NewOpt accepted a nil script")
	}
	if _, err := NewOpt(-1, g, &OptScript{}); err == nil {
		t.Error("NewOpt accepted negative capacity")
	}
	if !Opt.Valid() || !Opt.Dynamic() || Opt.Prefilled() {
		t.Errorf("policy classification wrong: valid=%v dynamic=%v prefilled=%v",
			Opt.Valid(), Opt.Dynamic(), Opt.Prefilled())
	}
	found := false
	for _, p := range Policies() {
		if p == Opt {
			found = true
		}
	}
	if !found {
		t.Error("Policies() does not list opt")
	}
}

// TestOptBeyondScriptHorizon: accesses past the compiled script are
// legal — they price as "never used again", never evict, and stay
// allocation-free (the alloc test covers the latter).
func TestOptBeyondScriptHorizon(t *testing.T) {
	g := testGraph(t)
	stream := accessStream(t, g, 10, 64, 41)
	script, err := BuildOptScript(g.NumVertices(), sliceSeq(stream))
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewOpt(40, g, script)
	if err != nil {
		t.Fatal(err)
	}
	driveStats(c, stream)
	resident := c.Len()
	h1, m1, _ := c.Stats()
	// Replay past the horizon: hits/misses still accrue, residency is
	// frozen (every candidate admission bypasses).
	if ops := c.Update(c.Lookup(stream[0])); ops != 0 {
		t.Errorf("beyond-horizon update performed %d ops", ops)
	}
	h2, m2, _ := c.Stats()
	if h2+m2 != h1+m1+int64(len(stream[0])) {
		t.Errorf("accounting stopped past the horizon: %d+%d vs %d+%d+%d", h2, m2, h1, m1, len(stream[0]))
	}
	if c.Len() != resident {
		t.Errorf("residency changed past the horizon: %d -> %d", resident, c.Len())
	}
}
