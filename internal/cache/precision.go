package cache

import "math"

// The compact feature plane.
//
// Feature bytes dominate both Eq. 6's transfer term and the Γ_cache
// share of device memory, so the storage width of a feature row is a
// design knob exactly like sampling fanout: a Precision selects how
// rows are stored in Cache slot storage and priced over the host link.
// Rows are quantized once — on admission for cached rows, fused into
// the gather kernel for host-routed rows — and dequantized inside the
// same sharded copy loop that widens them to float64 for compute, so
// the steady-state gather path stays at zero allocations per batch.
//
// Equivalence contract (two tiers):
//
//   - Float32 (and the zero value "") is the verbatim baseline: every
//     pre-precision bitwise pin — cache vs frozen MapReference, pipeline
//     outputs at any prefetch depth or worker count — holds unchanged.
//   - Float16/Int8 are tolerance-based against the float32 values, with
//     proven per-element bounds (see below), and *bitwise* self-
//     consistent: a row served from quantized slot storage is identical
//     to the same row freshly round-tripped from the host, so hit/miss
//     routing can never change gathered values.
//
// Error bounds:
//
//   - Float16: IEEE 754 binary16 with round-to-nearest-even; relative
//     error ≤ 2⁻¹¹ in the normal range (|x| ≥ 2⁻¹⁴), absolute error
//     ≤ 2⁻²⁵ in the subnormal range. Values beyond the half range
//     saturate to ±65504.
//   - Int8: asymmetric per-row quantization onto 255 codes with
//     scale = (max−min)/255, zero = min; absolute error ≤ scale/2
//     (plus float arithmetic noise), and a constant row reproduces
//     exactly.
//
// Transfer vs storage pricing: the host→device payload of a row is
// featDim quantized scalars (RowBytes) — the int8 per-row scale/zero
// pair rides the same metadata channel as the gather indices, which
// Eq. 6 never priced. Device storage (StorageRowBytes) does charge
// those 8 bytes, shrinking the effective capacity a fixed Γ budget
// buys (EffectiveCacheRows).

// Precision names a feature-row storage width. The zero value means
// Float32 (the pre-precision baseline).
type Precision string

// Supported precisions.
const (
	// Float32 stores rows verbatim — 4 bytes/scalar, zero error.
	Float32 Precision = "float32"
	// Float16 bit-packs rows as IEEE 754 binary16 in uint16 — 2
	// bytes/scalar.
	Float16 Precision = "float16"
	// Int8 stores rows as uint8 codes with a per-row (scale, zero)
	// pair — 1 byte/scalar + 8 bytes/row of device-side parameters.
	Int8 Precision = "int8"
)

// Precisions lists all supported precisions in width-descending order
// (the presentation order of the ablation and bench tables).
func Precisions() []Precision { return []Precision{Float32, Float16, Int8} }

// Valid reports whether p is a known precision (the zero value counts:
// it resolves to Float32).
func (p Precision) Valid() bool {
	switch p {
	case "", Float32, Float16, Int8:
		return true
	}
	return false
}

// OrDefault resolves the zero value to the Float32 baseline, so an
// unset config field keeps pre-precision behaviour.
func (p Precision) OrDefault() Precision {
	if p == "" {
		return Float32
	}
	return p
}

// BytesPerScalar returns the stored width of one feature scalar.
func (p Precision) BytesPerScalar() int {
	switch p.OrDefault() {
	case Float16:
		return 2
	case Int8:
		return 1
	}
	return 4
}

// RowBytes is the host→device transfer payload of one feature row at
// this precision: featDim quantized scalars. The int8 per-row
// scale/zero pair is deliberately absent — it travels the same
// unpriced metadata channel as the gather indices — so int8 transfer
// is exactly 0.25× and float16 exactly 0.5× of the float32 baseline.
func (p Precision) RowBytes(featDim int) int64 {
	return int64(featDim) * int64(p.BytesPerScalar())
}

// StorageRowBytes is the device memory one cached row occupies: the
// quantized payload plus, for int8, the two float32 quantization
// parameters stored per slot.
func (p Precision) StorageRowBytes(featDim int) int64 {
	b := p.RowBytes(featDim)
	if p.OrDefault() == Int8 {
		b += 8
	}
	return b
}

// EffectiveCacheRows converts a float32-denominated cache budget
// (ratio · vertices · featDim · 4 bytes — how cache ratios have always
// been priced) into a capacity in rows at this precision. The Float32
// path returns exactly ratio*vertices, the pre-precision expression,
// so every bitwise pin on the baseline holds unchanged; compact
// precisions divide the byte budget by their storage row bytes and cap
// at the vertex count — a fixed Γ budget holds 2–4× the vertices.
func (p Precision) EffectiveCacheRows(ratio, vertices float64, featDim int) float64 {
	if p.OrDefault() == Float32 {
		return ratio * vertices
	}
	budget := ratio * vertices * float64(featDim) * 4
	rows := budget / float64(p.StorageRowBytes(featDim))
	return math.Min(rows, vertices)
}

// widenFunc widens one host float32 row into a float64 destination
// through the precision's quantize→dequantize round trip — the fused
// dequant kernel the sharded copy loops dispatch per row.
type widenFunc func(dst []float64, src []float32)

// widen returns the precision's fused kernel. The returned values are
// references to top-level functions, so binding one costs no
// allocation.
func (p Precision) widen() widenFunc {
	switch p.OrDefault() {
	case Float16:
		return widenFloat16
	case Int8:
		return widenInt8
	}
	return widenFloat32
}

// WidenRow applies the fused quantize→dequantize→widen transform to
// one feature row: dst[j] = float64(dequant(quant(src[j]))). For
// Float32 this is the plain widening copy. The gather paths use the
// same kernels pre-bound per source; this entry point serves the
// equivalence tests and benchtab's quant micro-bench.
func (p Precision) WidenRow(dst []float64, src []float32) { p.widen()(dst, src) }

func widenFloat32(dst []float64, src []float32) {
	for j, f := range src {
		dst[j] = float64(f)
	}
}

func widenFloat16(dst []float64, src []float32) {
	for j, f := range src {
		dst[j] = float64(f16ToF32(f32ToF16(f)))
	}
}

func widenInt8(dst []float64, src []float32) {
	scale, zero := int8RowParams(src)
	if scale == 0 {
		z := float64(zero)
		for j := range src {
			dst[j] = z
		}
		return
	}
	s64, z64 := float64(scale), float64(zero)
	for j, f := range src {
		dst[j] = z64 + s64*int8Code(f, zero, s64)
	}
}

// --- float16 (IEEE 754 binary16, manual — no deps) -----------------------

// f32ToF16 converts a float32 to binary16 bits with round-to-nearest-
// even. Overflow saturates to ±65504 (the largest finite half) instead
// of ±Inf — a saturated feature value degrades gracefully, an Inf one
// poisons every downstream aggregate. NaN stays NaN.
func f32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23) & 0xff
	man := b & 0x7fffff
	switch {
	case exp == 0xff: // Inf or NaN
		if man != 0 {
			return sign | 0x7e00 // quiet NaN
		}
		return sign | 0x7bff // saturate Inf
	case exp > 142: // unbiased > 15: beyond the half range
		return sign | 0x7bff
	case exp >= 113: // unbiased in [-14, 15]: normal half
		v := uint32(exp-112)<<10 | man>>13
		round := man & 0x1fff // the 13 dropped bits
		if round > 0x1000 || (round == 0x1000 && v&1 == 1) {
			v++ // carries ripple into the exponent correctly
		}
		if v >= 0x7c00 {
			v = 0x7bff // rounding crossed into Inf: saturate
		}
		return sign | uint16(v)
	case exp >= 102: // subnormal half: value = round(|x| / 2⁻²⁴) codes
		man |= 0x800000 // make the implicit leading 1 explicit
		s := uint32(126 - exp)
		v := man >> s
		round := man & (1<<s - 1)
		half := uint32(1) << (s - 1)
		if round > half || (round == half && v&1 == 1) {
			v++ // may carry into the smallest normal — still correct bits
		}
		return sign | uint16(v)
	}
	return sign // below half the smallest subnormal: ±0
}

// f16ToF32 converts binary16 bits to float32 (exact: every half value
// is representable).
func f16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h>>10) & 0x1f
	man := uint32(h & 0x3ff)
	switch {
	case exp == 0x1f: // Inf or NaN
		return math.Float32frombits(sign | 0x7f800000 | man<<13)
	case exp != 0: // normal
		return math.Float32frombits(sign | (exp+112)<<23 | man<<13)
	case man != 0: // subnormal: man × 2⁻²⁴, exact in float32
		v := float32(man) * 0x1p-24
		if sign != 0 {
			v = -v
		}
		return v
	}
	return math.Float32frombits(sign) // ±0
}

// --- int8 (asymmetric per-row) -------------------------------------------

// int8RowParams computes the per-row quantization mapping [min, max]
// onto the 255 codes: q = round((x−zero)/scale), x̂ = zero + scale·q,
// so the reconstruction error is at most scale/2. A constant row gets
// scale 0 (every element reproduces exactly as zero); an empty row is
// (0, 0).
func int8RowParams(src []float32) (scale, zero float32) {
	if len(src) == 0 {
		return 0, 0
	}
	lo, hi := src[0], src[0]
	for _, f := range src[1:] {
		if f < lo {
			lo = f
		}
		if f > hi {
			hi = f
		}
	}
	if hi == lo {
		return 0, lo
	}
	return (hi - lo) / 255, lo
}

// int8Code returns the clamped code of f under (zero, scale) as a
// float64 — the shared rounding rule of the quantize (storeRow) and
// fused round-trip (widenInt8) paths, which keeps the two bitwise
// consistent.
func int8Code(f, zero float32, scale64 float64) float64 {
	// The subtraction must happen in float64, where it is exact for any
	// two float32 inputs — in float32 it rounds by up to (hi-lo)·2⁻²⁵,
	// which would push the worst-case round-trip error past scale/2.
	q := math.Round((float64(f) - float64(zero)) / scale64)
	if q < 0 {
		return 0
	}
	if q > 255 {
		return 255
	}
	return q
}

// int8QuantizeRow fills dst with the codes of src under (scale, zero).
func int8QuantizeRow(dst []uint8, src []float32, scale, zero float32) {
	if scale == 0 {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	s64 := float64(scale)
	for i, f := range src {
		dst[i] = uint8(int8Code(f, zero, s64))
	}
}
