package cache

import (
	"math"
	"math/rand"
	"testing"

	"gnnavigator/internal/gen"
	"gnnavigator/internal/tensor"
)

func TestPrecisionRegistry(t *testing.T) {
	if got := Precisions(); len(got) != 3 || got[0] != Float32 || got[1] != Float16 || got[2] != Int8 {
		t.Fatalf("Precisions() = %v", got)
	}
	for _, p := range append(Precisions(), "") {
		if !p.Valid() {
			t.Errorf("%q invalid", p)
		}
	}
	if Precision("fp8").Valid() {
		t.Error("fp8 accepted")
	}
	if Precision("").OrDefault() != Float32 {
		t.Error("zero value does not default to float32")
	}
	for _, tc := range []struct {
		p          Precision
		perScalar  int
		row, store int64 // at featDim 16
	}{
		{Float32, 4, 64, 64},
		{Float16, 2, 32, 32},
		{Int8, 1, 16, 24}, // +8 bytes of per-row scale/zero in storage only
	} {
		if got := tc.p.BytesPerScalar(); got != tc.perScalar {
			t.Errorf("%s: BytesPerScalar = %d, want %d", tc.p, got, tc.perScalar)
		}
		if got := tc.p.RowBytes(16); got != tc.row {
			t.Errorf("%s: RowBytes(16) = %d, want %d", tc.p, got, tc.row)
		}
		if got := tc.p.StorageRowBytes(16); got != tc.store {
			t.Errorf("%s: StorageRowBytes(16) = %d, want %d", tc.p, got, tc.store)
		}
	}
	g := testGraph(t)
	if _, err := NewAtPrecision(LRU, 10, g, "fp8"); err == nil {
		t.Error("NewAtPrecision accepted an unknown precision")
	}
	if _, err := NewOptWithPrecision(10, g, &OptScript{n: g.NumVertices()}, "fp8"); err == nil {
		t.Error("NewOptWithPrecision accepted an unknown precision")
	}
}

// TestEffectiveCacheRows pins the capacity contract: the float32 path is
// exactly the pre-precision ratio·vertices expression (bitwise — the
// baseline pins depend on it), compact precisions stretch the same byte
// budget 2–4× and cap at the vertex count.
func TestEffectiveCacheRows(t *testing.T) {
	ratio, vertices := 0.3, 12345.0
	if got, want := Float32.EffectiveCacheRows(ratio, vertices, 64), ratio*vertices; got != want {
		t.Fatalf("float32 rows = %v, want exactly %v", got, want)
	}
	// float16: budget r·v·fd·4 over fd·2 per row = exactly 2·r·v.
	if got, want := Float16.EffectiveCacheRows(ratio, vertices, 64), 2*ratio*vertices; got != want {
		t.Fatalf("float16 rows = %v, want %v", got, want)
	}
	// int8: fd·4 over fd+8 per row (ratio 0.1 keeps it under the vertex cap).
	if got, want := Int8.EffectiveCacheRows(0.1, vertices, 64), 0.1*vertices*256/72; math.Abs(got-want) > 1e-9*want {
		t.Fatalf("int8 rows = %v, want %v", got, want)
	}
	// A large ratio cannot exceed the vertex count at compact precisions.
	if got := Int8.EffectiveCacheRows(0.3, vertices, 64); got != vertices {
		t.Fatalf("int8 rows uncapped: %v", got)
	}
	// ...but the float32 identity stays uncapped (pre-precision behavior:
	// callers cap against NumVertices themselves).
	if got := Float32.EffectiveCacheRows(1, vertices, 64); got != vertices {
		t.Fatalf("float32 rows at ratio 1 = %v", got)
	}
}

// TestFloat16ExhaustiveRoundTrip proves f16→f32→f16 is the identity for
// every finite half bit pattern: f16ToF32 is exact and f32ToF16 rounds a
// value that is already representable to itself.
func TestFloat16ExhaustiveRoundTrip(t *testing.T) {
	for h := 0; h < 1<<16; h++ {
		bits := uint16(h)
		if bits>>10&0x1f == 0x1f {
			continue // Inf/NaN: saturated/canonicalized by design
		}
		f := f16ToF32(bits)
		if got := f32ToF16(f); got != bits {
			t.Fatalf("bits %#04x -> %v -> %#04x", bits, f, got)
		}
	}
}

func TestFloat16SpecialValues(t *testing.T) {
	if got := f16ToF32(f32ToF16(float32(math.Inf(1)))); got != 65504 {
		t.Errorf("+Inf -> %v, want 65504 (saturate)", got)
	}
	if got := f16ToF32(f32ToF16(float32(math.Inf(-1)))); got != -65504 {
		t.Errorf("-Inf -> %v, want -65504", got)
	}
	if got := f16ToF32(f32ToF16(1e6)); got != 65504 {
		t.Errorf("overflow 1e6 -> %v, want 65504", got)
	}
	// 65520 is the rounding midpoint above the largest finite half;
	// RNE would carry into Inf — saturation must clamp it.
	if got := f16ToF32(f32ToF16(65520)); got != 65504 {
		t.Errorf("65520 -> %v, want 65504", got)
	}
	if got := f16ToF32(f32ToF16(float32(math.NaN()))); !math.IsNaN(float64(got)) {
		t.Errorf("NaN -> %v, want NaN", got)
	}
	if f32ToF16(0) != 0 || f32ToF16(float32(math.Copysign(0, -1))) != 0x8000 {
		t.Error("signed zeros not preserved")
	}
	// Smallest subnormal half is 2⁻²⁴; half of it rounds to even (zero),
	// anything above half rounds up to one code.
	if got := f32ToF16(0x1p-24); got != 0x0001 {
		t.Errorf("2^-24 -> %#04x, want 0x0001", got)
	}
	if got := f32ToF16(0x1p-25); got != 0 {
		t.Errorf("2^-25 (tie, round to even) -> %#04x, want 0", got)
	}
	if got := f32ToF16(0x1.8p-25); got != 0x0001 {
		t.Errorf("1.5*2^-25 -> %#04x, want 0x0001", got)
	}
}

// TestFloat16ErrorBound verifies the documented tolerance: relative
// error ≤ 2⁻¹¹ in the normal half range, absolute ≤ 2⁻²⁵ below it.
func TestFloat16ErrorBound(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	check := func(x float32) {
		t.Helper()
		got := float64(f16ToF32(f32ToF16(x)))
		d := math.Abs(got - float64(x))
		tol := math.Max(math.Abs(float64(x))*0x1p-11, 0x1p-25)
		if d > tol {
			t.Fatalf("x=%v: |%v - x| = %v > %v", x, got, d, tol)
		}
	}
	for i := 0; i < 200000; i++ {
		switch i % 4 {
		case 0:
			check((rng.Float32() - 0.5) * 2)
		case 1:
			check((rng.Float32() - 0.5) * 130000)
		case 2:
			check((rng.Float32() - 0.5) * 0x1p-13)
		default:
			check(float32(rng.NormFloat64()))
		}
	}
}

// TestInt8RoundTripBound verifies the asymmetric per-row quantizer's
// contract: error ≤ scale/2 per element, constant rows exact, and
// endpoints (row min/max) reproduced to float noise.
func TestInt8RoundTripBound(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	dst := make([]float64, 64)
	for trial := 0; trial < 2000; trial++ {
		row := make([]float32, 64)
		spread := float32(math.Pow(10, rng.Float64()*6-3))
		off := float32(rng.NormFloat64()) * spread
		for j := range row {
			row[j] = off + (rng.Float32()-0.5)*spread
		}
		widenInt8(dst, row)
		lo, hi := row[0], row[0]
		for _, f := range row[1:] {
			lo, hi = min(lo, f), max(hi, f)
		}
		tol := float64(hi-lo)/510*(1+1e-6) + 1e-30
		for j, f := range row {
			if d := math.Abs(dst[j] - float64(f)); d > tol {
				t.Fatalf("trial %d col %d: |%v - %v| = %v > %v (scale/2 = %v)",
					trial, j, dst[j], f, d, tol, float64(hi-lo)/510)
			}
		}
	}
	// Constant rows: scale 0, every element exact.
	row := []float32{3.25, 3.25, 3.25}
	widenInt8(dst[:3], row)
	for j := range row {
		if dst[j] != 3.25 {
			t.Fatalf("constant row col %d: %v", j, dst[j])
		}
	}
}

// TestWidenRowFloat32Identity pins the baseline kernel: a bitwise
// widening copy, nothing else.
func TestWidenRowFloat32Identity(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	src := make([]float32, 128)
	for j := range src {
		src[j] = float32(rng.NormFloat64()) * 1e3
	}
	dst := make([]float64, len(src))
	Float32.WidenRow(dst, src)
	for j, f := range src {
		if dst[j] != float64(f) {
			t.Fatalf("col %d: %v != %v", j, dst[j], float64(f))
		}
	}
}

// TestGatherConsistencyAcrossSources is the tolerance-tier equivalence
// contract, end to end through the gather path: at every precision, a
// cached source (rows dequantized from slot storage on hits, fused on
// misses) is bitwise-identical to a kernel source over the frozen
// MapReference (every row through the host round trip) on the same
// access stream — so hit/miss routing can never change gathered values
// — and both stay within the precision's error bound of the float32
// gather.
func TestGatherConsistencyAcrossSources(t *testing.T) {
	g := testGraph(t)
	if err := gen.AttachFeatures(rand.New(rand.NewSource(5)), g, make([]int32, g.NumVertices()), 2,
		gen.FeatureSpec{Dim: 12, Noise: 0.5}); err != nil {
		t.Fatal(err)
	}
	stream := accessStream(t, g, 24, 200, 29)
	for _, prec := range Precisions() {
		t.Run(string(prec), func(t *testing.T) {
			c, err := NewAtPrecision(LRU, 300, g, prec)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := NewMapReference(LRU, 300, g)
			if err != nil {
				t.Fatal(err)
			}
			cached := NewCachedSource(c, g)
			host := NewKernelSourceAt(ref, g, prec)
			var a, b *tensor.Dense
			for bi, batch := range stream {
				a, _ = cached.GatherInto(a, batch)
				b, _ = host.GatherInto(b, batch)
				for i, v := range batch {
					ra, rb, hr := a.Row(i), b.Row(i), g.Feature(v)
					for j := range ra {
						if ra[j] != rb[j] {
							t.Fatalf("batch %d vertex %d col %d: cached %v vs host %v", bi, v, j, ra[j], rb[j])
						}
						d := math.Abs(ra[j] - float64(hr[j]))
						var tol float64
						switch prec {
						case Float16:
							tol = math.Max(math.Abs(float64(hr[j]))*0x1p-11, 0x1p-24)
						case Int8:
							lo, hi := hr[0], hr[0]
							for _, f := range hr[1:] {
								lo, hi = min(lo, f), max(hi, f)
							}
							tol = float64(hi-lo)/510*(1+1e-6) + 1e-12
						}
						if d > tol {
							t.Fatalf("batch %d vertex %d col %d: |%v - %v| = %v > %v", bi, v, j, ra[j], hr[j], d, tol)
						}
					}
				}
			}
		})
	}
}

// TestPrecisionSourceAccounting pins the transfer pricing: an uncached
// source prices every row at RowBytes, so the byte ratios between
// precisions are exactly the payload-width ratios.
func TestPrecisionSourceAccounting(t *testing.T) {
	g := testGraph(t)
	if err := gen.AttachFeatures(rand.New(rand.NewSource(5)), g, make([]int32, g.NumVertices()), 2,
		gen.FeatureSpec{Dim: 12, Noise: 0.5}); err != nil {
		t.Fatal(err)
	}
	batch := accessStream(t, g, 1, 256, 31)[0]
	bytesAt := func(p Precision) int64 {
		s := NewGraphSourceAt(g, p)
		st := s.Access(batch)
		return st.TransferBytes
	}
	f32 := bytesAt(Float32)
	if got := bytesAt(Float16) * 2; got != f32 {
		t.Errorf("float16 transfer not exactly half: %d vs %d", got/2, f32)
	}
	if got := bytesAt(Int8) * 4; got != f32 {
		t.Errorf("int8 transfer not exactly a quarter: %d vs %d", got/4, f32)
	}
}
