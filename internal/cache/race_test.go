package cache

import (
	"sync"
	"testing"
)

// TestConcurrentLookupUpdateRace exercises the concurrency contract the
// pipelined engine relies on: one writer goroutine issuing Lookup/Update
// in order (the cache stage) while other goroutines read Contains, Len,
// HitRate and Stats (biased samplers and diagnostics). Run under -race
// (CI does) this fails loudly if any path drops the mutex.
func TestConcurrentLookupUpdateRace(t *testing.T) {
	for _, pol := range []Policy{FIFO, LRU} {
		t.Run(string(pol), func(t *testing.T) {
			c, err := New(pol, 64, nil)
			if err != nil {
				t.Fatal(err)
			}
			var wg sync.WaitGroup
			stop := make(chan struct{})

			// Readers: the sampler-side view.
			for r := 0; r < 3; r++ {
				wg.Add(1)
				go func(r int) {
					defer wg.Done()
					for i := 0; ; i++ {
						select {
						case <-stop:
							return
						default:
						}
						c.Contains(int32((i * 7) % 512))
						c.HitRate()
						c.Len()
						c.Stats()
					}
				}(r)
			}

			// Single writer: the pipeline's cache stage.
			nodes := make([]int32, 32)
			for iter := 0; iter < 400; iter++ {
				for j := range nodes {
					nodes[j] = int32((iter*13 + j) % 512)
				}
				miss := c.Lookup(nodes)
				c.Update(miss)
			}
			close(stop)
			wg.Wait()

			hits, misses, updates := c.Stats()
			if hits+misses == 0 || updates == 0 {
				t.Errorf("no accounting recorded: hits=%d misses=%d updates=%d", hits, misses, updates)
			}
			if c.Len() > c.Capacity() {
				t.Errorf("resident %d exceeds capacity %d", c.Len(), c.Capacity())
			}
		})
	}
}

// TestPolicyDynamic pins the classification the pipeline uses to decide
// stage fusion.
func TestPolicyDynamic(t *testing.T) {
	if None.Dynamic() || Static.Dynamic() {
		t.Error("none/static misreported as dynamic")
	}
	if !FIFO.Dynamic() || !LRU.Dynamic() {
		t.Error("fifo/lru misreported as static")
	}
}
