package cache

import (
	"fmt"

	"gnnavigator/internal/graph"
)

// Shards partitions the vertex space across independent array-backed
// caches so multiple writer goroutines can run lookup+update
// concurrently without sharing a lock: vertex v belongs to shard
// v & (n-1), each shard owns capacity/n slots, its own eviction ring and
// its own counters.
//
// Locking contract: the structure itself holds no locks. Each shard is a
// full Cache with the single-writer contract, so concurrency is achieved
// by ownership — every shard must have exactly one goroutine issuing
// Lookup/Update against it (workers may own several shards). Because a
// shard's access sub-stream is carved from the batch stream by vertex id,
// the per-shard sequences — and therefore every shard's hits, misses and
// evictions — are identical at any worker count; `benchtab -cache-bench`
// verifies this before timing. Note that a sharded dynamic cache is a
// different replacement policy than a global one (per-shard capacity,
// per-shard eviction order): the single-Cache form stays bitwise-equal
// to the frozen map+list reference, the sharded form trades that for
// lock-free parallel writers.
type Shards struct {
	shards []*Cache
	mask   int32
}

// NewShards builds n (a power of two) independent shards with the total
// capacity split evenly. Prefilled policies (Static/Freq) admit each
// shard's share from the global admission order restricted to the
// shard's vertices.
func NewShards(policy Policy, capacity, n int, g *graph.Graph) (*Shards, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("cache: shard count %d is not a power of two", n)
	}
	order, err := defaultAdmissionOrder(policy, g, "NewShardsWithOrder")
	if err != nil {
		return nil, err
	}
	return NewShardsWithOrder(policy, capacity, n, g, order)
}

// NewShardsWithOrder is NewShards with an explicit admission order for
// prefilled policies (the Freq path).
func NewShardsWithOrder(policy Policy, capacity, n int, g *graph.Graph, order []int32) (*Shards, error) {
	if n < 1 || n&(n-1) != 0 {
		return nil, fmt.Errorf("cache: shard count %d is not a power of two", n)
	}
	if err := requireAdmissionOrder(policy, order); err != nil {
		return nil, err
	}
	s := &Shards{shards: make([]*Cache, n), mask: int32(n - 1)}
	for i := range s.shards {
		share := capacity / n
		if i < capacity%n {
			share++
		}
		var shardOrder []int32
		if policy.Prefilled() {
			// Non-nil even when no order entry lands in this shard: an
			// empty prefilled shard is a valid state, distinct from a
			// missing admission order.
			shardOrder = []int32{}
			for _, v := range order {
				if v&s.mask == int32(i) {
					shardOrder = append(shardOrder, v)
				}
			}
		}
		c, err := NewWithOrder(policy, share, g, shardOrder)
		if err != nil {
			return nil, err
		}
		s.shards[i] = c
	}
	return s, nil
}

// NumShards returns the shard count.
func (s *Shards) NumShards() int { return len(s.shards) }

// ShardOf returns the shard index owning vertex v.
func (s *Shards) ShardOf(v int32) int { return int(v & s.mask) }

// Shard returns shard i for its owning worker to drive.
func (s *Shards) Shard(i int) *Cache { return s.shards[i] }

// Contains reports residency of v (lock-free, any goroutine).
func (s *Shards) Contains(v int32) bool { return s.shards[v&s.mask].Contains(v) }

// Stats aggregates cumulative (hits, misses, updateOps) over all shards.
func (s *Shards) Stats() (hits, misses, updates int64) {
	for _, c := range s.shards {
		h, m, u := c.Stats()
		hits += h
		misses += m
		updates += u
	}
	return hits, misses, updates
}

// Len returns the total resident vertex count.
func (s *Shards) Len() int {
	n := 0
	for _, c := range s.shards {
		n += c.Len()
	}
	return n
}

// HitRate returns the aggregate hit rate over all shards.
func (s *Shards) HitRate() float64 {
	h, m, _ := s.Stats()
	if h+m == 0 {
		return 0
	}
	return float64(h) / float64(h+m)
}
