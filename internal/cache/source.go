package cache

import (
	"gnnavigator/internal/graph"
	"gnnavigator/internal/tensor"
)

// The feature plane.
//
// A FeatureSource is the single abstraction every layer that touches
// vertex features programs against: the pipeline's cache+gather stage,
// the backend's transfer accounting, and (through Resident) the
// cache-aware biased samplers. A source owns the route a feature row
// takes to the device — straight over the host link (graph source) or
// through the device cache (cached source) — and accounts every
// transferred byte, which internal/sim prices as Eq. 6's t_transfer.
//
// Sources follow the same single-stage contract as samplers: Access and
// GatherInto run on exactly one goroutine per pipeline run (the cache
// stage, or the fused producer), so sources keep mutable scratch across
// batches without locking. Resident, like Cache.Contains, is lock-free
// and safe from other goroutines.

// BatchStats is one batch's transfer outcome.
type BatchStats struct {
	// Miss is the number of requested rows absent from the device (the
	// transfer volume numerator of Eq. 6).
	Miss int
	// CacheOps is the number of replacement operations admitting the
	// misses performed (Eq. 5's stale-data volume).
	CacheOps int
	// TransferBytes is the host→device feature traffic this batch caused
	// at the scaled graph's feature width.
	TransferBytes int64
	// HaloBytes is the device-to-device halo-exchange traffic this batch
	// caused at the scaled feature width: rows a partition's consumer
	// fetched from a remote owner. Always 0 for single-device sources;
	// the multi-device plane (internal/dist) meters it.
	HaloBytes int64
}

// FeatureSource serves feature rows to the device and accounts the
// host→device traffic doing so.
type FeatureSource interface {
	// Access records a batch's row requests (cache lookup + policy
	// update) without materializing the rows — the timing-only path.
	Access(nodes []int32) BatchStats
	// GatherInto fills dst (reallocating only when capacity is short)
	// with the feature rows of nodes, row i ↔ nodes[i], routing each row
	// through the device cache when one backs the source, and returns
	// the matrix actually filled plus the batch's transfer outcome.
	GatherInto(dst *tensor.Dense, nodes []int32) (*tensor.Dense, BatchStats)
	// Resident reports device residency of v — what a locality-aware
	// p(η) bias reads. Lock-free.
	Resident(v int32) bool
	// HitRate returns the cumulative cache hit rate (0 for uncached).
	HitRate() float64
	// TransferredBytes returns cumulative host→device feature traffic.
	TransferredBytes() int64
}

// GatherRowsInto copies the raw float32 features of nodes from g into a
// float64 matrix (row i ↔ nodes[i]), reusing dst's storage when its
// capacity suffices. The copy is sharded over rows on the tensor worker
// pool and routed through the Float32 widen kernel — the same kernel
// family the precision-aware sources dispatch. This is the feature
// plane's host-side gather kernel; model.GatherFeaturesInto delegates
// here.
func GatherRowsInto(dst *tensor.Dense, g *graph.Graph, nodes []int32) *tensor.Dense {
	dst = sizeFor(dst, len(nodes), g.FeatDim)
	tensor.ParallelRows(len(nodes), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			widenFloat32(dst.Row(i), g.Feature(nodes[i]))
		}
	})
	return dst
}

// sizeFor shapes dst to rows×cols, reallocating only when capacity is
// short.
func sizeFor(dst *tensor.Dense, rows, cols int) *tensor.Dense {
	n := rows * cols
	if dst == nil || cap(dst.Data) < n {
		return tensor.New(rows, cols)
	}
	dst.Rows, dst.Cols = rows, cols
	dst.Data = dst.Data[:n]
	return dst
}

// NewGraphSource returns the direct (uncached) source: every requested
// row crosses the host-device link at float32. This is the None-policy
// feature plane (PyG's template).
func NewGraphSource(g *graph.Graph) FeatureSource {
	return NewGraphSourceAt(g, Float32)
}

// NewGraphSourceAt is NewGraphSource with rows quantized to prec for
// the transfer (fused into the gather's widen kernel) and priced at the
// precision's row bytes.
func NewGraphSourceAt(g *graph.Graph, prec Precision) FeatureSource {
	s := &graphSource{g: g, rowBytes: prec.RowBytes(g.FeatDim), widen: prec.widen()}
	// Bound once so per-batch gathers dispatch a pre-allocated closure
	// (a fresh closure per call would cost one allocation per batch).
	s.copyFn = s.copyRange
	return s
}

type graphSource struct {
	g        *graph.Graph
	rowBytes int64
	widen    widenFunc
	bytes    int64

	// transient per-call state for the pre-bound sharded copy loop
	dst    *tensor.Dense
	nodes  []int32
	copyFn func(lo, hi int)
}

func (s *graphSource) copyRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		s.widen(s.dst.Row(i), s.g.Feature(s.nodes[i]))
	}
}

func (s *graphSource) Access(nodes []int32) BatchStats {
	st := BatchStats{Miss: len(nodes), TransferBytes: int64(len(nodes)) * s.rowBytes}
	s.bytes += st.TransferBytes
	return st
}

func (s *graphSource) GatherInto(dst *tensor.Dense, nodes []int32) (*tensor.Dense, BatchStats) {
	st := s.Access(nodes)
	dst = sizeFor(dst, len(nodes), s.g.FeatDim)
	s.dst, s.nodes = dst, nodes
	tensor.ParallelRows(len(nodes), s.copyFn)
	s.dst, s.nodes = nil, nil
	return dst, st
}

func (s *graphSource) Resident(int32) bool     { return false }
func (s *graphSource) HitRate() float64        { return 0 }
func (s *graphSource) TransferredBytes() int64 { return s.bytes }

// NewCachedSource returns the cached feature plane over the array-backed
// Cache: hits are served (dequantized) from the cache's own slot
// storage, misses transfer from the host at the cache's precision and —
// policy permitting — land quantized in the cache on admission. The
// source inherits the cache's precision, so the two planes can never
// disagree on row width.
func NewCachedSource(c *Cache, g *graph.Graph) FeatureSource {
	prec := c.Precision()
	s := &kernelSource{k: c, c: c, g: g, rowBytes: prec.RowBytes(g.FeatDim), widen: prec.widen()}
	s.copyFn = s.copyRange
	return s
}

// NewKernelSource returns a feature plane over any cache Kernel (in
// particular the frozen MapReference), with rows always gathered from
// the host array at float32. Feature output is identical to the cached
// source — cached rows are verbatim copies — so the equivalence tests
// can swap kernels under an unchanged pipeline.
func NewKernelSource(k Kernel, g *graph.Graph) FeatureSource {
	return NewKernelSourceAt(k, g, Float32)
}

// NewKernelSourceAt is NewKernelSource at a given precision: every row
// takes the host round trip through the precision's fused
// quantize→dequantize kernel. Because cached rows are quantized with
// the same kernel on admission, output stays identical to a cached
// source at the same precision — the tolerance-tier analogue of the
// float32 equivalence contract.
func NewKernelSourceAt(k Kernel, g *graph.Graph, prec Precision) FeatureSource {
	s := &kernelSource{k: k, g: g, rowBytes: prec.RowBytes(g.FeatDim), widen: prec.widen()}
	s.copyFn = s.copyRange
	return s
}

type kernelSource struct {
	k        Kernel
	c        *Cache // non-nil when hits may be served from slot storage
	g        *graph.Graph
	rowBytes int64
	widen    widenFunc
	bytes    int64

	missBuf []int32 // lookup scratch, reused across batches

	// transient per-call state for the pre-bound sharded copy loop
	dst    *tensor.Dense
	nodes  []int32
	copyFn func(lo, hi int)
}

// copyRange fills dst rows [lo, hi): hits dequantized from device slot
// storage, everything else from the host feature array through the
// precision's fused widen kernel. Slot rows were quantized by the same
// kernel on admission, so the output cannot depend on the branch taken;
// the loop only reads cache state, so sharding it across the worker
// pool is safe.
func (s *kernelSource) copyRange(lo, hi int) {
	for i := lo; i < hi; i++ {
		row := s.dst.Row(i)
		if s.c != nil && s.c.rowInto(row, s.nodes[i]) {
			continue
		}
		s.widen(row, s.g.Feature(s.nodes[i]))
	}
}

func (s *kernelSource) Access(nodes []int32) BatchStats {
	miss := s.k.LookupInto(s.missBuf[:0], nodes)
	s.missBuf = miss
	ops := s.k.Update(miss)
	st := BatchStats{
		Miss:          len(miss),
		CacheOps:      ops,
		TransferBytes: int64(len(miss)) * s.rowBytes,
	}
	s.bytes += st.TransferBytes
	return st
}

func (s *kernelSource) GatherInto(dst *tensor.Dense, nodes []int32) (*tensor.Dense, BatchStats) {
	st := s.Access(nodes)
	dst = sizeFor(dst, len(nodes), s.g.FeatDim)
	// The Access above already admitted this batch's misses, so the
	// cache-row branch in copyRange also serves just-transferred rows
	// from device storage.
	s.dst, s.nodes = dst, nodes
	tensor.ParallelRows(len(nodes), s.copyFn)
	s.dst, s.nodes = nil, nil
	return dst, st
}

func (s *kernelSource) Resident(v int32) bool   { return s.k.Contains(v) }
func (s *kernelSource) HitRate() float64        { return s.k.HitRate() }
func (s *kernelSource) TransferredBytes() int64 { return s.bytes }
