// Package core exposes GNNavigator's top-level API — the three-step
// workflow of Fig. 2. Users declare their application (dataset, model,
// hardware platform, requirements and priorities); the Navigator analyzes
// the inputs and calibrates its gray-box estimator (Step 1), automatically
// explores the design space for training guidelines (Step 2), and executes
// the chosen guideline on the reconfigurable runtime backend (Step 3).
package core

import (
	"context"
	"fmt"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/dse"
	"gnnavigator/internal/estimator"
	"gnnavigator/internal/model"
	"gnnavigator/internal/plan"
)

// Input is everything the user supplies (Fig. 2 "User Input").
type Input struct {
	// Dataset names the graph to train on (a registered dataset).
	Dataset string
	// Model selects the GNN architecture.
	Model model.Kind
	// Platform selects the heterogeneous hardware (hw.Profiles key).
	Platform string

	// Constraints are hard runtime constraints; Priority picks the
	// emphasis used to choose among satisfying candidates.
	Constraints dse.Constraints
	Priority    dse.Priority

	// Space overrides the explored design space (zero value = DefaultSpace).
	Space dse.Space

	// Precision pins the feature-plane storage width of the base config
	// (and, unless Space.Precisions overrides it, of every explored
	// candidate). Empty = the float32 baseline. The gnnavigator
	// -precision flag and GNNAV_PRECISION env map onto this.
	Precision cache.Precision

	// Devices pins the data-parallel device count of the base config
	// (and, unless Space.DeviceCounts overrides it, of every explored
	// candidate). 0 or 1 = single device; K > 1 must be a power of two
	// the platform hosts. The gnnavigator -devices flag maps onto this.
	Devices int

	// CalibDatasets are profiled to train the estimator. Default: every
	// built-in dataset except the target (the paper's leave-one-out rule,
	// §4.1: "established upon the performance across all the datasets
	// available, except the one waiting for estimation").
	CalibDatasets []string
	// CalibSamples is the number of probe configs per calibration dataset
	// (default 16).
	CalibSamples int
	// AugmentGraphs adds this many random power-law graphs to calibration
	// (the paper's data enhancement; default 0).
	AugmentGraphs int

	// Final-training hyperparameters.
	Layers int     // default 2
	Heads  int     // default 2 (GAT)
	Epochs int     // default 3
	LR     float64 // default 0.01

	// Prefetch is the minibatch pipeline depth for every backend run the
	// Navigator issues — calibration profiling (the DSE measurement path)
	// and final training alike. 0 = process default, < 0 = inline; see
	// backend.Options.Prefetch. Any value yields bitwise-identical
	// results, so this is purely a wall-clock knob.
	Prefetch int

	// Parallelism bounds the Navigator's coarse-grained fan-outs: the
	// concurrent calibration profiling runs of Step 1
	// (estimator.CollectWith) and the concurrent estimator predictions of
	// Step 2 (dse.Explorer.Workers). 0 = the process-wide tensor worker
	// default (GOMAXPROCS / $GNNAV_PROCS / -procs), 1 = serial. Every
	// fan-out is index-stamped, so Guidelines and calibration records are
	// bitwise-identical at any value — like Prefetch, this is purely a
	// wall-clock knob.
	Parallelism int

	// SavePlan, when non-empty, compiles the final training run's epoch
	// plan (backend.CompilePlan) and writes it to this path before
	// training. LoadPlan, when non-empty, replays a previously saved plan
	// instead of sampling live — the plan must be compatible with the
	// chosen configuration (sampler, seed, epochs, batch size, dataset).
	// Replay is bitwise-identical to live sampling; both require unbiased
	// sampling (BiasRate 0). The gnnavigator -save-plan/-load-plan flags
	// (and the GNNAV_PLAN env default for loading) map onto these.
	SavePlan string
	LoadPlan string

	// Ctx, when non-nil, cancels every backend run and estimator query
	// the Navigator issues — calibration profiling, exploration, and
	// final training alike. The gnnavigator -timeout flag maps onto this
	// (context.WithTimeout). nil means no cancellation.
	Ctx context.Context

	// Checkpoint, when non-empty, makes Train snapshot its state to this
	// path every CheckpointEvery epochs (default 1) plus once at the end;
	// Resume, when non-empty, restores such a snapshot before training
	// and fast-forwards to it — the resumed run is bitwise-identical to
	// an uninterrupted one. See backend.Options. The gnnavigator
	// -checkpoint/-checkpoint-every/-resume flags map onto these.
	Checkpoint      string
	CheckpointEvery int
	Resume          string

	// SaveModel, when non-empty, writes the trained model (config +
	// parameters, GNAVMDL1) to this path after Train completes — the
	// artifact cmd/gnnserve loads. The gnnavigator -save-model flag maps
	// onto this.
	SaveModel string

	Seed int64
}

// Guidelines is the Navigator's output for Step 2: the chosen training
// configuration, the per-priority alternatives, and the predicted Pareto
// front behind them.
type Guidelines struct {
	// Chosen is the guideline for the requested priority.
	Chosen dse.Point
	// PerPriority maps each emphasis (Bal, Ex-TM, Ex-MA, Ex-TA) to its
	// decision.
	PerPriority map[dse.Priority]dse.Point
	// Pareto is the predicted non-dominated front.
	Pareto []dse.Point
	// Explored and Pruned count estimator evaluations and constraint-cut
	// leaves.
	Explored, Pruned int
}

// Navigator is a calibrated exploration session for one application.
type Navigator struct {
	in   Input
	est  *estimator.Estimator
	base backend.Config
}

// New performs Step 1 (input analysis and estimator calibration) and
// returns a ready-to-explore Navigator. Calibration cost is dominated by
// ground-truth profiling runs: CalibSamples × len(CalibDatasets) backend
// executions (memoized per process).
func New(in Input) (*Navigator, error) {
	if _, err := dataset.Load(in.Dataset); err != nil {
		return nil, err
	}
	if in.Priority == "" {
		in.Priority = dse.Balance
	}
	if in.CalibSamples == 0 {
		in.CalibSamples = 16
	}
	if in.Layers == 0 {
		in.Layers = 2
	}
	if in.Heads == 0 {
		in.Heads = 2
	}
	if in.Epochs == 0 {
		in.Epochs = 3
	}
	if in.LR == 0 {
		in.LR = 0.01
	}
	// Only a genuinely absent Space falls back to the default grid. The
	// old heuristic (Size() <= 1 && no BatchSizes) also matched legitimate
	// single-point spaces — e.g. a user pinning everything but CacheRatios
	// — and silently explored the full DefaultSpace instead.
	if in.Space.IsZero() {
		in.Space = dse.DefaultSpace()
	}
	if len(in.CalibDatasets) == 0 {
		for _, name := range dataset.Names() {
			if name != in.Dataset {
				in.CalibDatasets = append(in.CalibDatasets, name)
			}
		}
	}
	for _, name := range in.CalibDatasets {
		if name == in.Dataset {
			return nil, fmt.Errorf("core: calibration dataset %q equals the target (leave-one-out violated)", name)
		}
	}

	var records []estimator.Record
	for i, name := range in.CalibDatasets {
		recs, err := estimator.CollectCachedWith(name, in.Model, in.Platform,
			in.CalibSamples, in.Seed+int64(i)*101, true, in.Parallelism,
			backend.Options{Prefetch: in.Prefetch, Ctx: in.Ctx})
		if err != nil {
			return nil, fmt.Errorf("core: calibration on %s: %w", name, err)
		}
		records = append(records, recs...)
	}
	if in.AugmentGraphs > 0 {
		augRecords, err := augment(in)
		if err != nil {
			return nil, err
		}
		records = append(records, augRecords...)
	}
	est, err := estimator.Train(records)
	if err != nil {
		return nil, fmt.Errorf("core: estimator training: %w", err)
	}

	base := backend.Config{
		Dataset:     in.Dataset,
		Platform:    in.Platform,
		Model:       in.Model,
		Hidden:      64,
		Layers:      in.Layers,
		Heads:       in.Heads,
		Epochs:      in.Epochs,
		LR:          in.LR,
		Seed:        in.Seed,
		Sampler:     backend.SamplerSAGE,
		BatchSize:   1024,
		Fanouts:     defaultFanouts(in.Layers),
		CachePolicy: cache.None,
		Precision:   in.Precision,
		Devices:     in.Devices,
	}
	if err := base.Validate(); err != nil {
		return nil, fmt.Errorf("core: base config: %w", err)
	}
	return &Navigator{in: in, est: est, base: base}, nil
}

// augment profiles random power-law graphs (without accuracy, to keep
// data enhancement cheap) and returns their records.
func augment(in Input) ([]estimator.Record, error) {
	sets, err := dataset.PowerLawAugment(in.Seed+999, in.AugmentGraphs)
	if err != nil {
		return nil, err
	}
	var records []estimator.Record
	for i, d := range sets {
		if err := dataset.Register(d); err != nil {
			// Already registered by an earlier Navigator in this process.
			d2, lerr := dataset.Load(d.Name)
			if lerr != nil {
				return nil, err
			}
			d = d2
		}
		cfgs := estimator.ProbeConfigs(d.Name, in.Model, in.Platform, 4, in.Seed+int64(i)*7)
		recs, err := estimator.CollectWith(cfgs, false, in.Parallelism,
			backend.Options{Prefetch: in.Prefetch, Ctx: in.Ctx})
		if err != nil {
			return nil, err
		}
		records = append(records, recs...)
	}
	return records, nil
}

func defaultFanouts(layers int) []int {
	f := make([]int, layers)
	for i := range f {
		if i == 0 {
			f[i] = 25
		} else {
			f[i] = 10
		}
	}
	return f
}

// Estimator exposes the calibrated estimator (for validation tooling).
func (n *Navigator) Estimator() *estimator.Estimator { return n.est }

// BaseConfig returns the exploration base (dataset/platform/model fixed;
// the Space varies the rest).
func (n *Navigator) BaseConfig() backend.Config { return n.base }

// Explore performs Step 2: automatic guideline generation. The
// underlying estimator queries fan out across Input.Parallelism workers;
// the Guidelines are identical at any width.
func (n *Navigator) Explore() (*Guidelines, error) {
	ex := &dse.Explorer{
		Est:         n.est,
		Space:       n.in.Space,
		Constraints: n.in.Constraints,
		Workers:     n.in.Parallelism,
		Ctx:         n.in.Ctx,
	}
	res, err := ex.Explore(n.base)
	if err != nil {
		return nil, err
	}
	g := &Guidelines{
		PerPriority: make(map[dse.Priority]dse.Point, 4),
		Pareto:      res.Pareto,
		Explored:    res.Evaluated,
		Pruned:      res.Pruned,
	}
	// Decide over the Pareto front (Fig. 4's decision maker): dominated
	// candidates can never be the right guideline.
	for _, p := range dse.Priorities() {
		pt, err := dse.Decide(res.Pareto, p)
		if err != nil {
			return nil, fmt.Errorf("core: no guideline satisfies the constraints: %w", err)
		}
		g.PerPriority[p] = pt
	}
	g.Chosen = g.PerPriority[n.in.Priority]
	return g, nil
}

// Train performs Step 3: execute a guideline configuration for real and
// return the measured performance. The run uses the Navigator's pipeline
// prefetch depth; results are bitwise-identical at any depth. When
// Input.SavePlan/LoadPlan are set, the run's epoch plan is persisted /
// replayed from disk; Input.Checkpoint/Resume snapshot and restore the
// training state (see Input).
func (n *Navigator) Train(cfg backend.Config) (*backend.Perf, error) {
	opts := backend.Options{
		Prefetch:        n.in.Prefetch,
		Ctx:             n.in.Ctx,
		CheckpointPath:  n.in.Checkpoint,
		CheckpointEvery: n.in.CheckpointEvery,
		ResumeFrom:      n.in.Resume,
		SaveModelPath:   n.in.SaveModel,
	}
	if n.in.LoadPlan != "" {
		p, err := plan.LoadFile(n.in.LoadPlan)
		if err != nil {
			return nil, fmt.Errorf("core: load plan: %w", err)
		}
		opts.Plan = p
	}
	if n.in.SavePlan != "" {
		p, err := backend.CompilePlan(cfg)
		if err != nil {
			return nil, fmt.Errorf("core: compile plan: %w", err)
		}
		if err := plan.SaveFile(n.in.SavePlan, p); err != nil {
			return nil, fmt.Errorf("core: save plan: %w", err)
		}
		if opts.Plan == nil {
			// Replay the plan just compiled: the run skips its sampler
			// stage and is guaranteed consistent with the saved artifact.
			opts.Plan = p
		}
	}
	return backend.RunWith(cfg, opts)
}

// Run chains Explore and Train on the chosen guideline.
func (n *Navigator) Run() (*Guidelines, *backend.Perf, error) {
	g, err := n.Explore()
	if err != nil {
		return nil, nil, err
	}
	perf, err := n.Train(g.Chosen.Cfg)
	if err != nil {
		return g, nil, err
	}
	return g, perf, nil
}
