package core

import (
	"reflect"
	"sync"
	"testing"

	"gnnavigator/internal/dataset"
	"gnnavigator/internal/dse"
	"gnnavigator/internal/model"
)

var (
	navOnce sync.Once
	navErr  error
	nav     *Navigator
)

// sharedNavigator builds one calibrated Navigator for the whole test
// binary (calibration is the expensive step).
func sharedNavigator(t *testing.T) *Navigator {
	t.Helper()
	navOnce.Do(func() {
		nav, navErr = New(Input{
			Dataset:       dataset.Reddit2,
			Model:         model.SAGE,
			Platform:      "rtx4090",
			CalibDatasets: []string{dataset.OgbnArxiv},
			CalibSamples:  16,
			Epochs:        2,
			Space: dse.Space{
				BatchSizes:  []int{512, 1024},
				FanoutSets:  [][]int{{5, 5}, {10, 5}, {15, 8}},
				CacheRatios: []float64{0, 0.15, 0.45},
				BiasRates:   []float64{0, 0.9},
				Hiddens:     []int{32},
			},
			Seed: 21,
		})
	})
	if navErr != nil {
		t.Fatalf("New: %v", navErr)
	}
	return nav
}

func TestNewValidatesInput(t *testing.T) {
	if _, err := New(Input{Dataset: "bogus", Model: model.SAGE, Platform: "rtx4090"}); err == nil {
		t.Error("unknown dataset accepted")
	}
	if _, err := New(Input{
		Dataset: dataset.Reddit2, Model: model.SAGE, Platform: "rtx4090",
		CalibDatasets: []string{dataset.Reddit2},
	}); err == nil {
		t.Error("leave-one-out violation accepted")
	}
}

func TestExploreProducesGuidelines(t *testing.T) {
	n := sharedNavigator(t)
	g, err := n.Explore()
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if g.Explored == 0 {
		t.Error("nothing explored")
	}
	if len(g.Pareto) == 0 {
		t.Error("empty Pareto front")
	}
	if len(g.PerPriority) != 4 {
		t.Errorf("PerPriority has %d entries, want 4", len(g.PerPriority))
	}
	if err := g.Chosen.Cfg.Validate(); err != nil {
		t.Errorf("chosen guideline invalid: %v", err)
	}
	// Emphasis sanity: Ex-TM's prediction can't be slower AND hungrier
	// than Ex-MA's.
	tm := g.PerPriority[dse.TimeMemory].Pred
	ma := g.PerPriority[dse.MemoryAccuracy].Pred
	if tm.TimeSec > ma.TimeSec && tm.MemoryGB > ma.MemoryGB {
		t.Errorf("Ex-TM (T=%.2f Γ=%.2f) dominated by Ex-MA (T=%.2f Γ=%.2f) on its own objectives",
			tm.TimeSec, tm.MemoryGB, ma.TimeSec, ma.MemoryGB)
	}
}

func TestTrainChosenGuideline(t *testing.T) {
	n := sharedNavigator(t)
	g, err := n.Explore()
	if err != nil {
		t.Fatal(err)
	}
	perf, err := n.Train(g.Chosen.Cfg)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	if perf.Accuracy < 0.3 {
		t.Errorf("guideline accuracy %.3f below sanity floor", perf.Accuracy)
	}
	if !perf.Feasible {
		t.Error("chosen guideline infeasible when actually run")
	}
}

func TestBaseConfigShape(t *testing.T) {
	n := sharedNavigator(t)
	base := n.BaseConfig()
	if base.Dataset != dataset.Reddit2 || base.Model != model.SAGE {
		t.Errorf("base config wrong: %+v", base)
	}
	if len(base.Fanouts) != base.Layers {
		t.Errorf("base fanouts %v vs layers %d", base.Fanouts, base.Layers)
	}
}

func TestConstraintsRespectedInGuidelines(t *testing.T) {
	n := sharedNavigator(t)
	// Re-explore with a memory budget; all guidelines must respect it.
	nav2 := &Navigator{in: n.in, est: n.est, base: n.base}
	nav2.in.Constraints = dse.Constraints{MaxMemoryGB: 1.0}
	g, err := nav2.Explore()
	if err != nil {
		t.Fatalf("constrained Explore: %v", err)
	}
	for p, pt := range g.PerPriority {
		if pt.Pred.MemoryGB > 1.0 {
			t.Errorf("%s guideline predicts %.2f GB over the 1 GB budget", p, pt.Pred.MemoryGB)
		}
	}
}

// TestParallelismInvariantGuidelines: Input.Parallelism is a wall-clock
// knob only — Guidelines are identical at any fan-out width.
func TestParallelismInvariantGuidelines(t *testing.T) {
	n := sharedNavigator(t)
	mk := func(workers int) *Navigator {
		nav := &Navigator{in: n.in, est: n.est, base: n.base}
		nav.in.Parallelism = workers
		return nav
	}
	serial, err := mk(1).Explore()
	if err != nil {
		t.Fatalf("serial Explore: %v", err)
	}
	for _, workers := range []int{3, 8} {
		g, err := mk(workers).Explore()
		if err != nil {
			t.Fatalf("workers=%d Explore: %v", workers, err)
		}
		if !reflect.DeepEqual(g, serial) {
			t.Fatalf("workers=%d: Guidelines differ from serial", workers)
		}
	}
}

// TestUserSpaceHonored: a legitimate single-point Space (only CacheRatios
// set) must survive New — the old Size()<=1 heuristic silently replaced
// it with DefaultSpace and explored hundreds of unwanted configs.
func TestUserSpaceHonored(t *testing.T) {
	sharedNavigator(t) // warm the calibration record cache
	n, err := New(Input{
		Dataset:       dataset.Reddit2,
		Model:         model.SAGE,
		Platform:      "rtx4090",
		CalibDatasets: []string{dataset.OgbnArxiv},
		CalibSamples:  16,
		Epochs:        2,
		Space:         dse.Space{CacheRatios: []float64{0.15}},
		Seed:          21,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	g, err := n.Explore()
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if g.Explored != 1 {
		t.Fatalf("single-point Space explored %d configs, want exactly 1 (DefaultSpace substituted?)", g.Explored)
	}
	if got := g.Chosen.Cfg.CacheRatio; got != 0.15 {
		t.Errorf("chosen guideline cache ratio %v, want the pinned 0.15", got)
	}
}

// TestZeroSpaceDefaults: the genuine zero value still falls back to the
// full default grid.
func TestZeroSpaceDefaults(t *testing.T) {
	sharedNavigator(t) // warm the calibration record cache
	n, err := New(Input{
		Dataset:       dataset.Reddit2,
		Model:         model.SAGE,
		Platform:      "rtx4090",
		CalibDatasets: []string{dataset.OgbnArxiv},
		CalibSamples:  16,
		Epochs:        2,
		Seed:          21,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if !reflect.DeepEqual(n.in.Space, dse.DefaultSpace()) {
		t.Errorf("zero Space not replaced by DefaultSpace: %+v", n.in.Space)
	}
}

func TestAugmentedCalibration(t *testing.T) {
	if testing.Short() {
		t.Skip("augmentation profiling is slow")
	}
	n, err := New(Input{
		Dataset:       dataset.OgbnProducts,
		Model:         model.SAGE,
		Platform:      "rtx4090",
		CalibDatasets: []string{dataset.OgbnArxiv},
		CalibSamples:  12,
		AugmentGraphs: 2,
		Epochs:        2,
		Space: dse.Space{
			BatchSizes:  []int{1024},
			FanoutSets:  [][]int{{10, 5}},
			CacheRatios: []float64{0, 0.2},
		},
		Seed: 5,
	})
	if err != nil {
		t.Fatalf("New with augmentation: %v", err)
	}
	if _, err := n.Explore(); err != nil {
		t.Fatalf("Explore: %v", err)
	}
}
