// Package dataset provides named, deterministic stand-ins for the graph
// datasets the paper evaluates on: Ogbn-arxiv (AR), Ogbn-products (PR),
// Reddit (RD) and Reddit2 (RD2).
//
// Real OGB/Reddit data cannot ship in an offline stdlib-only module, so
// each dataset is a *scaled synthetic equivalent*: a seeded power-law
// community graph whose shape statistics (degree skew, homophily, feature
// dimensionality ratio, class count, attainable accuracy band) mirror the
// original. Every dataset also records its *paper-scale* metadata
// (|V|, average degree, feature dim); the timing/memory simulator uses the
// Scale factor to express measured per-batch volumes at paper scale, so
// simulated epoch times and memory footprints land in the paper's units.
package dataset

import (
	"fmt"
	"math/rand"
	"slices"
	"sync"

	"gnnavigator/internal/gen"
	"gnnavigator/internal/graph"
)

// Dataset bundles a training-ready graph with split indices and the
// paper-scale metadata needed by the performance simulator.
type Dataset struct {
	Name  string
	Graph *graph.Graph

	// TrainIdx/ValIdx/TestIdx partition the labeled vertices.
	TrainIdx, ValIdx, TestIdx []int32

	// FullVertices and FullFeatDim are the paper-scale |V| and per-vertex
	// attribute dimension n_attr of the original dataset.
	FullVertices int
	FullFeatDim  int
	// FullAvgDegree is the paper-scale average degree.
	FullAvgDegree float64

	// Scale = FullVertices / |V_scaled|: multiply measured per-batch vertex
	// counts by Scale to express them at paper scale.
	Scale float64
}

// Spec declares how to synthesize a dataset stand-in.
type Spec struct {
	Name           string
	Seed           int64
	NumVertices    int
	NumCommunities int
	NumClasses     int
	AvgDegree      float64
	IntraFraction  float64
	HubBias        float64
	FeatDim        int
	FeatureNoise   float64
	DegreeNoise    float64
	LabelFlip      float64
	TrainFraction  float64
	ValFraction    float64

	FullVertices  int
	FullFeatDim   int
	FullAvgDegree float64
}

// Canonical dataset names.
const (
	OgbnArxiv    = "ogbn-arxiv"    // AR
	OgbnProducts = "ogbn-products" // PR
	Reddit       = "reddit"        // RD
	Reddit2      = "reddit2"       // RD2
)

// specs defines the four named stand-ins. Scaled sizes keep full test runs
// in seconds while preserving the originals' shape:
//   - AR:  citation graph, modest degree, hard task (paper acc ~61%).
//   - PR:  co-purchase, high homophily, easy task (paper acc ~90%).
//   - RD:  very dense social graph (avg degree ~490 in the original).
//   - RD2: pruned Reddit, mid density, mid difficulty (paper acc ~79%).
var specs = map[string]Spec{
	OgbnArxiv: {
		Name: OgbnArxiv, Seed: 1001,
		NumVertices: 6000, NumCommunities: 10, NumClasses: 10,
		AvgDegree: 13, IntraFraction: 0.65, HubBias: 0.7,
		FeatDim: 32, FeatureNoise: 1.7, DegreeNoise: 0.5, LabelFlip: 0.22,
		TrainFraction: 0.55, ValFraction: 0.2,
		FullVertices: 169_343, FullFeatDim: 128, FullAvgDegree: 13.7,
	},
	OgbnProducts: {
		Name: OgbnProducts, Seed: 1002,
		NumVertices: 12000, NumCommunities: 12, NumClasses: 12,
		AvgDegree: 25, IntraFraction: 0.85, HubBias: 0.85,
		FeatDim: 40, FeatureNoise: 0.55, DegreeNoise: 0.9, LabelFlip: 0.05,
		TrainFraction: 0.4, ValFraction: 0.25,
		FullVertices: 2_449_029, FullFeatDim: 100, FullAvgDegree: 50.5,
	},
	Reddit: {
		Name: Reddit, Seed: 1003,
		NumVertices: 8000, NumCommunities: 10, NumClasses: 10,
		AvgDegree: 55, IntraFraction: 0.8, HubBias: 0.8,
		FeatDim: 48, FeatureNoise: 0.8, DegreeNoise: 0.9, LabelFlip: 0.06,
		TrainFraction: 0.65, ValFraction: 0.15,
		FullVertices: 232_965, FullFeatDim: 602, FullAvgDegree: 492,
	},
	Reddit2: {
		Name: Reddit2, Seed: 1004,
		NumVertices: 8000, NumCommunities: 10, NumClasses: 10,
		AvgDegree: 28, IntraFraction: 0.7, HubBias: 0.8,
		FeatDim: 48, FeatureNoise: 2.2, DegreeNoise: 2.5, LabelFlip: 0.08,
		TrainFraction: 0.65, ValFraction: 0.15,
		FullVertices: 232_965, FullFeatDim: 602, FullAvgDegree: 99.6,
	},
}

var (
	cacheMu sync.Mutex
	cache   = map[string]*Dataset{}
)

// Names returns the canonical dataset names in a stable order.
func Names() []string {
	names := make([]string, 0, len(specs))
	for n := range specs {
		names = append(names, n)
	}
	slices.Sort(names)
	return names
}

// Load materializes (and memoizes) a named dataset. Generation is
// deterministic: the same name always yields the same graph.
func Load(name string) (*Dataset, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if d, ok := cache[name]; ok {
		return d, nil
	}
	spec, ok := specs[name]
	if !ok {
		return nil, fmt.Errorf("dataset: unknown dataset %q (have %v)", name, Names())
	}
	d, err := Synthesize(spec)
	if err != nil {
		return nil, err
	}
	cache[name] = d
	return d, nil
}

// Register adds d to the registry so runtime configurations can refer to
// it by name — used for the power-law augmentation graphs the estimator
// trains on. Registering a name that already exists is an error.
func Register(d *Dataset) error {
	if d == nil || d.Name == "" {
		return fmt.Errorf("dataset: cannot register unnamed dataset")
	}
	cacheMu.Lock()
	defer cacheMu.Unlock()
	if _, exists := cache[d.Name]; exists {
		return fmt.Errorf("dataset: %q already registered", d.Name)
	}
	if _, exists := specs[d.Name]; exists {
		return fmt.Errorf("dataset: %q collides with a built-in dataset", d.Name)
	}
	cache[d.Name] = d
	return nil
}

// MustLoad is Load that panics on error; for tests and examples where the
// named datasets are known to exist.
func MustLoad(name string) *Dataset {
	d, err := Load(name)
	if err != nil {
		panic(err)
	}
	return d
}

// Synthesize draws a dataset from an explicit spec (exported so benchmarks
// can produce custom-scale variants and power-law augmentation sets).
func Synthesize(spec Spec) (*Dataset, error) {
	if spec.NumVertices < 10 {
		return nil, fmt.Errorf("dataset: spec %q too small (n=%d)", spec.Name, spec.NumVertices)
	}
	if spec.TrainFraction+spec.ValFraction >= 1 {
		return nil, fmt.Errorf("dataset: spec %q train+val fractions %v+%v >= 1",
			spec.Name, spec.TrainFraction, spec.ValFraction)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	g, comm, err := gen.PowerLawCommunity(rng, gen.PowerLawCommunitySpec{
		NumVertices:    spec.NumVertices,
		NumCommunities: spec.NumCommunities,
		AvgDegree:      spec.AvgDegree,
		IntraFraction:  spec.IntraFraction,
		HubBias:        spec.HubBias,
	})
	if err != nil {
		return nil, fmt.Errorf("dataset %q: %w", spec.Name, err)
	}
	g.Name = spec.Name
	if err := gen.AttachFeatures(rng, g, comm, spec.NumClasses, gen.FeatureSpec{
		Dim:          spec.FeatDim,
		Noise:        spec.FeatureNoise,
		FlipFraction: spec.LabelFlip,
		DegreeNoise:  spec.DegreeNoise,
	}); err != nil {
		return nil, fmt.Errorf("dataset %q: %w", spec.Name, err)
	}

	perm := rng.Perm(spec.NumVertices)
	nTrain := int(spec.TrainFraction * float64(spec.NumVertices))
	nVal := int(spec.ValFraction * float64(spec.NumVertices))
	d := &Dataset{
		Name:          spec.Name,
		Graph:         g,
		FullVertices:  spec.FullVertices,
		FullFeatDim:   spec.FullFeatDim,
		FullAvgDegree: spec.FullAvgDegree,
	}
	if d.FullVertices == 0 {
		d.FullVertices = spec.NumVertices
	}
	if d.FullFeatDim == 0 {
		d.FullFeatDim = spec.FeatDim
	}
	if d.FullAvgDegree == 0 {
		d.FullAvgDegree = spec.AvgDegree
	}
	d.Scale = float64(d.FullVertices) / float64(spec.NumVertices)
	for i, v := range perm {
		switch {
		case i < nTrain:
			d.TrainIdx = append(d.TrainIdx, int32(v))
		case i < nTrain+nVal:
			d.ValIdx = append(d.ValIdx, int32(v))
		default:
			d.TestIdx = append(d.TestIdx, int32(v))
		}
	}
	slices.Sort(d.TrainIdx)
	slices.Sort(d.ValIdx)
	slices.Sort(d.TestIdx)
	return d, nil
}

// PowerLawAugment generates count random power-law graphs with randomized
// scale and density. The paper uses exactly this kind of set as "data
// enhancement" when training the performance estimator (§4.1).
func PowerLawAugment(seed int64, count int) ([]*Dataset, error) {
	rng := rand.New(rand.NewSource(seed))
	out := make([]*Dataset, 0, count)
	for i := 0; i < count; i++ {
		n := 2000 + rng.Intn(8000)
		spec := Spec{
			Name:           fmt.Sprintf("powerlaw-aug-%d-%d", seed, i),
			Seed:           rng.Int63(),
			NumVertices:    n,
			NumCommunities: 6 + rng.Intn(8),
			NumClasses:     6 + rng.Intn(8),
			AvgDegree:      8 + rng.Float64()*40,
			IntraFraction:  0.6 + rng.Float64()*0.3,
			HubBias:        0.5 + rng.Float64()*0.45,
			FeatDim:        24 + 8*rng.Intn(4),
			FeatureNoise:   0.5 + rng.Float64(),
			DegreeNoise:    rng.Float64(),
			LabelFlip:      rng.Float64() * 0.2,
			TrainFraction:  0.5,
			ValFraction:    0.2,
			FullVertices:   n * (20 + rng.Intn(80)),
			FullFeatDim:    64 + 32*rng.Intn(16),
		}
		spec.FullAvgDegree = spec.AvgDegree * (1 + rng.Float64()*3)
		d, err := Synthesize(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}
