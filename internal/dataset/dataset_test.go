package dataset

import (
	"testing"
)

func TestLoadAllNamed(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			d, err := Load(name)
			if err != nil {
				t.Fatalf("Load(%q): %v", name, err)
			}
			if err := d.Graph.Validate(); err != nil {
				t.Fatalf("graph invalid: %v", err)
			}
			if d.Graph.NumClasses < 2 {
				t.Errorf("NumClasses = %d, want >= 2", d.Graph.NumClasses)
			}
			if d.Scale < 1 {
				t.Errorf("Scale = %v, want >= 1", d.Scale)
			}
			n := d.Graph.NumVertices()
			if got := len(d.TrainIdx) + len(d.ValIdx) + len(d.TestIdx); got != n {
				t.Errorf("split sizes sum to %d, want %d", got, n)
			}
		})
	}
}

func TestLoadUnknown(t *testing.T) {
	if _, err := Load("no-such-dataset"); err == nil {
		t.Fatal("Load of unknown dataset succeeded")
	}
}

func TestLoadMemoizes(t *testing.T) {
	a := MustLoad(Reddit2)
	b := MustLoad(Reddit2)
	if a != b {
		t.Error("Load returned distinct instances for the same name")
	}
}

func TestSplitsDisjoint(t *testing.T) {
	d := MustLoad(OgbnArxiv)
	seen := make(map[int32]string)
	check := func(idx []int32, part string) {
		for _, v := range idx {
			if prev, dup := seen[v]; dup {
				t.Fatalf("vertex %d in both %s and %s", v, prev, part)
			}
			seen[v] = part
		}
	}
	check(d.TrainIdx, "train")
	check(d.ValIdx, "val")
	check(d.TestIdx, "test")
}

func TestShapeStatisticsMirrorOriginals(t *testing.T) {
	// Reddit must be denser than Reddit2, which is denser than Arxiv —
	// the density ordering of the real datasets.
	rd := MustLoad(Reddit).Graph.Stats()
	rd2 := MustLoad(Reddit2).Graph.Stats()
	ar := MustLoad(OgbnArxiv).Graph.Stats()
	if !(rd.Mean > rd2.Mean && rd2.Mean > ar.Mean) {
		t.Errorf("density ordering violated: RD=%.1f RD2=%.1f AR=%.1f",
			rd.Mean, rd2.Mean, ar.Mean)
	}
	// All stand-ins must be degree-skewed (power law).
	for _, name := range Names() {
		s := MustLoad(name).Graph.Stats()
		if s.GiniCoefficient < 0.1 {
			t.Errorf("%s Gini = %.3f, want skewed", name, s.GiniCoefficient)
		}
	}
}

func TestSynthesizeRejectsBadSpec(t *testing.T) {
	if _, err := Synthesize(Spec{Name: "tiny", NumVertices: 5}); err == nil {
		t.Error("tiny spec accepted")
	}
	if _, err := Synthesize(Spec{
		Name: "badsplit", NumVertices: 100, NumCommunities: 2, NumClasses: 2,
		AvgDegree: 4, FeatDim: 8, TrainFraction: 0.8, ValFraction: 0.3,
	}); err == nil {
		t.Error("overlapping split fractions accepted")
	}
}

func TestPowerLawAugment(t *testing.T) {
	sets, err := PowerLawAugment(99, 3)
	if err != nil {
		t.Fatalf("PowerLawAugment: %v", err)
	}
	if len(sets) != 3 {
		t.Fatalf("got %d sets, want 3", len(sets))
	}
	for _, d := range sets {
		if err := d.Graph.Validate(); err != nil {
			t.Errorf("%s invalid: %v", d.Name, err)
		}
		if d.Scale <= 1 {
			t.Errorf("%s Scale = %v, want > 1", d.Name, d.Scale)
		}
	}
}

func TestPowerLawAugmentDeterministic(t *testing.T) {
	a, err := PowerLawAugment(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PowerLawAugment(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i].Graph.NumEdges() != b[i].Graph.NumEdges() {
			t.Errorf("set %d: %d vs %d edges for same seed", i,
				a[i].Graph.NumEdges(), b[i].Graph.NumEdges())
		}
	}
}
