// Package dist is the multi-device training substrate: a partitioned
// feature plane whose K shards serve disjoint vertex sub-streams of each
// batch (with remote rows metered through a halo-exchange step), and a
// deterministic ordered all-reduce for per-step gradient aggregation.
//
// Determinism contract. A K-device run at the same global batch schedule
// is bitwise-identical to the K=1 run: the batch's gathered feature
// matrix is assembled from per-partition gathers that route every row
// through the same widen/dequantize kernels the single-device plane
// dispatches (the feature plane guarantees gathered values never depend
// on the hit/miss branch), and the all-reduce of K identical replica
// gradients reduces in a fixed partition-index tree whose result is
// exactly the original gradient for power-of-two K. What changes with K
// is only the new communication accounting: BatchStats.HaloBytes and the
// reducer's wire bytes.
//
// Counter semantics per policy. With prefilled policies (static, freq)
// the shards are built by walking the *global* admission order and
// bucketing each admitted vertex to its owner, so the union of shard
// residency equals the single cache's residency exactly and every
// miss/transfer counter matches K=1. Dynamic policies (fifo, lru) shard
// the capacity proportionally to partition size; per-shard eviction is
// then a different replacement policy than one global ring (the same
// caveat cache.Shards documents), so volume counters may diverge from
// K=1 while trained parameters and accuracy remain bitwise-identical.
// The opt policy's clairvoyant script is compiled against one global
// cache and is rejected upstream (backend.Config.Validate) at K > 1.
package dist

import (
	"fmt"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/tensor"
)

// Source is the K-partition feature plane. It implements
// cache.FeatureSource plus the pipeline's BatchAware hook (BeginBatch),
// which hands it the sampled minibatch topology the halo classification
// needs. Like every feature source, Access/GatherInto/BeginBatch run on
// one goroutine per pipeline run; the per-partition fan-out inside is
// the source's own.
type Source struct {
	g    *graph.Graph
	part *graph.Partition
	k    int
	subs []cache.FeatureSource

	rowBytes int64 // halo currency: precision row bytes at graph width

	// per-batch scratch: the vertex sub-stream (and original row
	// positions) of each partition, the per-partition staging matrices
	// the sub-gathers fill, and their stats.
	perNodes [][]int32
	perPos   [][]int32
	staging  []*tensor.Dense
	perStats []cache.BatchStats

	// halo state: the current minibatch (set by BeginBatch) and a
	// per-consumer-device stamp array deduplicating remote rows within a
	// batch.
	mb         *sample.MiniBatch
	stamps     [][]int32
	batchStamp int32

	// cumulative accounting
	lookups, misses int64
	bytes           int64
	haloBytes       int64
}

// NewSource builds the partitioned feature plane over part. policy and
// capacity mirror the single-device cache configuration; order is the
// global admission order for prefilled policies (static: degree order,
// freq: mined frequency order) and ignored otherwise. Policy none or a
// zero capacity yields uncached per-partition planes (every row crosses
// the host link, as at K=1).
func NewSource(g *graph.Graph, part *graph.Partition, policy cache.Policy, capacity int, order []int32, prec cache.Precision) (*Source, error) {
	if g == nil || part == nil {
		return nil, fmt.Errorf("dist: nil graph or partition")
	}
	if len(part.Owner) != g.NumVertices() {
		return nil, fmt.Errorf("dist: partition covers %d vertices, graph has %d", len(part.Owner), g.NumVertices())
	}
	if part.K < 1 {
		return nil, fmt.Errorf("dist: partition has K = %d", part.K)
	}
	if policy == cache.Opt {
		return nil, fmt.Errorf("dist: opt policy's global clairvoyant script cannot be sharded; use K=1")
	}
	k := part.K
	s := &Source{
		g: g, part: part, k: k,
		subs:     make([]cache.FeatureSource, k),
		rowBytes: prec.RowBytes(g.FeatDim),
		perNodes: make([][]int32, k),
		perPos:   make([][]int32, k),
		staging:  make([]*tensor.Dense, k),
		perStats: make([]cache.BatchStats, k),
		stamps:   make([][]int32, k),
	}
	for i := range s.stamps {
		s.stamps[i] = make([]int32, g.NumVertices())
	}
	switch {
	case policy == cache.None || capacity <= 0:
		for i := range s.subs {
			s.subs[i] = cache.NewGraphSourceAt(g, prec)
		}
	case policy.Prefilled():
		// Global-order walk: admit exactly what the single cache would
		// (the first capacity vertices of the global order), bucketed to
		// each vertex's owner. Shard residency unions to the global
		// residency, so hit/miss outcomes match K=1 per vertex.
		if len(order) > capacity {
			order = order[:capacity]
		}
		buckets := make([][]int32, k)
		for i := range buckets {
			buckets[i] = []int32{} // non-nil: prefilled caches require an order
		}
		for _, v := range order {
			o := part.Owner[v]
			buckets[o] = append(buckets[o], v)
		}
		for i := range s.subs {
			c, err := cache.NewWithPrecision(policy, len(buckets[i]), g, buckets[i], prec)
			if err != nil {
				return nil, fmt.Errorf("dist: shard %d: %w", i, err)
			}
			s.subs[i] = cache.NewCachedSource(c, g)
		}
	case policy.Dynamic():
		for i, cap := range splitCapacity(capacity, part.VertexCounts) {
			c, err := cache.NewAtPrecision(policy, cap, g, prec)
			if err != nil {
				return nil, fmt.Errorf("dist: shard %d: %w", i, err)
			}
			s.subs[i] = cache.NewCachedSource(c, g)
		}
	default:
		return nil, fmt.Errorf("dist: unsupported cache policy %q", policy)
	}
	return s, nil
}

// splitCapacity divides total capacity across partitions proportionally
// to their vertex counts, distributing the remainder by largest
// fractional share (ties to the lower partition index) so the shares are
// deterministic and sum exactly to total.
func splitCapacity(total int, counts []int) []int {
	k := len(counts)
	caps := make([]int, k)
	n := 0
	for _, c := range counts {
		n += c
	}
	if n == 0 {
		return caps
	}
	rem := total
	type frac struct {
		idx  int
		part int // numerator of the fractional share, over n
	}
	fracs := make([]frac, 0, k)
	for i, c := range counts {
		caps[i] = total * c / n
		rem -= caps[i]
		fracs = append(fracs, frac{idx: i, part: total * c % n})
	}
	// Hand out the remainder to the largest fractional shares.
	for ; rem > 0; rem-- {
		best := -1
		for _, f := range fracs {
			if f.part > 0 && (best < 0 || f.part > fracs[best].part) {
				best = f.idx
			}
		}
		if best < 0 {
			best = 0
		}
		caps[best]++
		fracs[best].part = 0
	}
	return caps
}

// BeginBatch implements the pipeline's BatchAware hook: it hands the
// source the sampled topology of the batch about to be served, which the
// halo classification reads (which consumer partition each input row's
// destination vertices belong to is only visible in the sampled blocks).
func (s *Source) BeginBatch(mb *sample.MiniBatch) { s.mb = mb }

// meterHalo classifies the current batch's remote feature rows: for each
// destination vertex of the input-layer block, every sampled neighbor
// owned by a different partition than the destination's owner is one row
// that partition must fetch over the interconnect. Rows are deduplicated
// per (consumer, vertex) within the batch — a device fetches each remote
// row once per batch, however many of its destinations touch it.
func (s *Source) meterHalo() int64 {
	if err := faultinject.Fire(faultinject.DistHalo); err != nil {
		// No error return on the FeatureSource path; the pipeline's
		// gather-stage containment converts this panic into a clean error.
		panic(fmt.Errorf("dist: halo exchange: %w", err))
	}
	if s.mb == nil || s.k == 1 || len(s.mb.Blocks) == 0 {
		return 0
	}
	s.batchStamp++
	blk := &s.mb.Blocks[0]
	owner := s.part.Owner
	var rows int64
	for j := 0; j < blk.DstCount; j++ {
		c := owner[blk.SrcNodes[j]]
		st := s.stamps[c]
		for _, idx := range blk.Indices[blk.Offsets[j]:blk.Offsets[j+1]] {
			u := blk.SrcNodes[idx]
			if owner[u] != c && st[u] != s.batchStamp {
				st[u] = s.batchStamp
				rows++
			}
		}
	}
	return rows * s.rowBytes
}

// split partitions nodes into per-owner sub-streams, preserving batch
// order within each, and records each row's original position for the
// scatter after the per-partition gathers.
func (s *Source) split(nodes []int32) {
	for k := 0; k < s.k; k++ {
		s.perNodes[k] = s.perNodes[k][:0]
		s.perPos[k] = s.perPos[k][:0]
	}
	owner := s.part.Owner
	for i, v := range nodes {
		k := owner[v]
		s.perNodes[k] = append(s.perNodes[k], v)
		s.perPos[k] = append(s.perPos[k], int32(i))
	}
}

// reduceStats sums the per-partition batch stats in fixed partition
// index order — independent of which worker finished first — and folds
// them into the cumulative accounting.
func (s *Source) reduceStats(nodes []int32, halo int64) cache.BatchStats {
	var st cache.BatchStats
	for k := 0; k < s.k; k++ {
		st.Miss += s.perStats[k].Miss
		st.CacheOps += s.perStats[k].CacheOps
		st.TransferBytes += s.perStats[k].TransferBytes
	}
	st.HaloBytes = halo
	s.lookups += int64(len(nodes))
	s.misses += int64(st.Miss)
	s.bytes += st.TransferBytes
	s.haloBytes += halo
	return st
}

// Access implements the timing-only path: each partition's shard looks
// up and updates on its own sub-stream (fanned out on the tensor worker
// pool), and the batch's halo rows are classified and metered.
func (s *Source) Access(nodes []int32) cache.BatchStats {
	halo := s.meterHalo()
	s.split(nodes)
	tensor.ForEachIndex(s.k, 0, func(k int) {
		s.perStats[k] = s.subs[k].Access(s.perNodes[k])
	})
	return s.reduceStats(nodes, halo)
}

// GatherInto fills dst with the feature rows of nodes. Each partition
// worker gathers its owned rows into a per-partition staging matrix
// through its own shard (lookup, update, transfer accounting, row
// copies), then scatters them to the rows' batch positions — the local
// materialization half of a gather-then-exchange step. Workers run
// concurrently on the tensor pool; rows land at positions determined
// only by the batch order, so dst is bitwise-identical to the
// single-device gather at any worker count.
func (s *Source) GatherInto(dst *tensor.Dense, nodes []int32) (*tensor.Dense, cache.BatchStats) {
	halo := s.meterHalo()
	s.split(nodes)
	dst = sizeFor(dst, len(nodes), s.g.FeatDim)
	tensor.ForEachIndex(s.k, 0, func(k int) {
		s.staging[k], s.perStats[k] = s.subs[k].GatherInto(s.staging[k], s.perNodes[k])
		for j, pos := range s.perPos[k] {
			copy(dst.Row(int(pos)), s.staging[k].Row(j))
		}
	})
	return dst, s.reduceStats(nodes, halo)
}

// sizeFor shapes dst to rows×cols, reallocating only when capacity is
// short (the cache package's helper, restated for the staging planes).
func sizeFor(dst *tensor.Dense, rows, cols int) *tensor.Dense {
	n := rows * cols
	if dst == nil || cap(dst.Data) < n {
		return tensor.New(rows, cols)
	}
	dst.Rows, dst.Cols = rows, cols
	dst.Data = dst.Data[:n]
	return dst
}

// Resident reports residency of v on its owning partition's shard.
func (s *Source) Resident(v int32) bool {
	return s.subs[s.part.Owner[v]].Resident(v)
}

// HitRate returns the cumulative hit rate across all shards.
func (s *Source) HitRate() float64 {
	if s.lookups == 0 {
		return 0
	}
	return float64(s.lookups-s.misses) / float64(s.lookups)
}

// TransferredBytes returns cumulative host→device feature traffic summed
// over shards (halo traffic is accounted separately; see HaloBytes).
func (s *Source) TransferredBytes() int64 { return s.bytes }

// HaloBytes returns cumulative device-to-device halo-exchange traffic.
func (s *Source) HaloBytes() int64 { return s.haloBytes }

// Partition exposes the vertex partition backing the plane.
func (s *Source) Partition() *graph.Partition { return s.part }
