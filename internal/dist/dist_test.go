package dist

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/nn"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/tensor"
)

// testGraph builds a random graph with features: n vertices, ~deg
// neighbors each (both directions), FeatDim-dim rows.
func testGraph(t *testing.T, n, deg, featDim int, seed int64) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		for d := 0; d < deg; d++ {
			u := int32(rng.Intn(n))
			if u == int32(v) {
				continue
			}
			adj[v] = append(adj[v], u)
			adj[u] = append(adj[u], int32(v))
		}
	}
	g, err := graph.FromAdjList(adj)
	if err != nil {
		t.Fatalf("FromAdjList: %v", err)
	}
	g.FeatDim = featDim
	g.Features = make([]float32, n*featDim)
	for i := range g.Features {
		g.Features[i] = rng.Float32()*2 - 1
	}
	return g
}

// batches derives deterministic node streams from the graph.
func batches(g *graph.Graph, count, size int, seed int64) [][]int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]int32, count)
	for b := range out {
		nodes := make([]int32, 0, size)
		seen := map[int32]bool{}
		for len(nodes) < size {
			v := int32(rng.Intn(g.NumVertices()))
			if !seen[v] {
				seen[v] = true
				nodes = append(nodes, v)
			}
		}
		out[b] = nodes
	}
	return out
}

// globalSource builds the single-device feature plane the dist source
// must match: same policy, capacity and admission order.
func globalSource(t *testing.T, g *graph.Graph, policy cache.Policy, capacity int, order []int32, prec cache.Precision) cache.FeatureSource {
	t.Helper()
	if policy == cache.None || capacity <= 0 {
		return cache.NewGraphSourceAt(g, prec)
	}
	var (
		c   *cache.Cache
		err error
	)
	if policy.Prefilled() {
		c, err = cache.NewWithPrecision(policy, capacity, g, order, prec)
	} else {
		c, err = cache.NewAtPrecision(policy, capacity, g, prec)
	}
	if err != nil {
		t.Fatalf("global cache: %v", err)
	}
	return cache.NewCachedSource(c, g)
}

// TestSourceMatchesGlobal drives the dist plane and the single-device
// plane over the same batch streams and requires bitwise-identical
// gathered matrices for every policy, and identical counters for the
// policies whose shards replicate global residency (none, static, freq).
func TestSourceMatchesGlobal(t *testing.T) {
	g := testGraph(t, 400, 4, 7, 1)
	order := g.DegreeOrder()
	for _, prec := range []cache.Precision{cache.Float32, cache.Int8} {
		for _, tc := range []struct {
			policy        cache.Policy
			capacity      int
			countersMatch bool
		}{
			{cache.None, 0, true},
			{cache.Static, 120, true},
			{cache.Freq, 150, true},
			{cache.LRU, 100, false},
			{cache.FIFO, 100, false},
		} {
			for _, k := range []int{2, 4} {
				part, err := graph.PartitionGraph(g, k, graph.PartitionGreedy)
				if err != nil {
					t.Fatalf("partition: %v", err)
				}
				ds, err := NewSource(g, part, tc.policy, tc.capacity, order, prec)
				if err != nil {
					t.Fatalf("%s/%s K=%d: NewSource: %v", tc.policy, prec.OrDefault(), k, err)
				}
				gs := globalSource(t, g, tc.policy, tc.capacity, order, prec)
				var dsDst, gsDst *tensor.Dense
				for _, nodes := range batches(g, 6, 64, 42) {
					var dsSt, gsSt cache.BatchStats
					dsDst, dsSt = ds.GatherInto(dsDst, nodes)
					gsDst, gsSt = gs.GatherInto(gsDst, nodes)
					if !reflect.DeepEqual(dsDst.Data, gsDst.Data) {
						t.Fatalf("%s/%s K=%d: gathered rows diverge from global plane", tc.policy, prec.OrDefault(), k)
					}
					if tc.countersMatch {
						gsSt.HaloBytes = dsSt.HaloBytes // the one new field
						if dsSt != gsSt {
							t.Fatalf("%s/%s K=%d: stats %+v != global %+v", tc.policy, prec.OrDefault(), k, dsSt, gsSt)
						}
					}
				}
				if tc.countersMatch {
					if ds.TransferredBytes() != gs.TransferredBytes() {
						t.Fatalf("%s/%s K=%d: transferred %d != global %d", tc.policy, prec.OrDefault(), k, ds.TransferredBytes(), gs.TransferredBytes())
					}
					if ds.HitRate() != gs.HitRate() {
						t.Fatalf("%s/%s K=%d: hit rate %v != global %v", tc.policy, prec.OrDefault(), k, ds.HitRate(), gs.HitRate())
					}
				}
			}
		}
	}
}

// TestSourceDeterministicAcrossWorkers pins the fan-out: the gathered
// matrix and stats must be identical at every tensor parallelism level.
func TestSourceDeterministicAcrossWorkers(t *testing.T) {
	g := testGraph(t, 300, 3, 5, 2)
	part, err := graph.PartitionGraph(g, 4, graph.PartitionHash)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	run := func(workers int) (*tensor.Dense, []cache.BatchStats) {
		defer tensor.WithParallelism(workers)()
		src, err := NewSource(g, part, cache.Static, 90, g.DegreeOrder(), cache.Float32)
		if err != nil {
			t.Fatalf("NewSource: %v", err)
		}
		var dst *tensor.Dense
		var stats []cache.BatchStats
		var out *tensor.Dense
		for _, nodes := range batches(g, 5, 48, 7) {
			var st cache.BatchStats
			dst, st = src.GatherInto(dst, nodes)
			stats = append(stats, st)
			if out == nil {
				out = tensor.New(0, 0)
			}
			out.Data = append(out.Data, dst.Data...)
		}
		return out, stats
	}
	ref, refStats := run(1)
	for _, w := range []int{2, 8} {
		got, gotStats := run(w)
		if !reflect.DeepEqual(got.Data, ref.Data) {
			t.Fatalf("workers=%d: gathered rows differ from serial", w)
		}
		if !reflect.DeepEqual(gotStats, refStats) {
			t.Fatalf("workers=%d: stats differ from serial", w)
		}
	}
}

// TestHaloHandComputed checks the halo classification on a hand-built
// block: two destinations owned by different parts sharing a remote
// neighbor.
func TestHaloHandComputed(t *testing.T) {
	// Path 0-1-2-3, greedy K=2 owns: part0={1,2}, part1={0,3} (see the
	// partitioner's hand-computed test).
	g := testGraph(t, 4, 0, 3, 3) // topology replaced below
	adj := [][]int32{{1}, {0, 2}, {1, 3}, {2}}
	pg, err := graph.FromAdjList(adj)
	if err != nil {
		t.Fatalf("FromAdjList: %v", err)
	}
	pg.FeatDim, pg.Features = g.FeatDim, g.Features[:4*g.FeatDim]
	part, err := graph.PartitionGraph(pg, 2, graph.PartitionGreedy)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	src, err := NewSource(pg, part, cache.None, 0, nil, cache.Float32)
	if err != nil {
		t.Fatalf("NewSource: %v", err)
	}
	// Block: dst 1 (owner 0) aggregates {0, 2}; dst 3 (owner 1)
	// aggregates {2}. Remote rows: vertex 0 for part 0; vertex 2 for
	// part 1 -> 2 halo rows.
	mb := &sample.MiniBatch{
		Blocks: []sample.Block{{
			SrcNodes: []int32{1, 3, 0, 2},
			DstCount: 2,
			Offsets:  []int32{0, 2, 3},
			Indices:  []int32{2, 3, 3},
		}},
	}
	src.BeginBatch(mb)
	st := src.Access(mb.Blocks[0].SrcNodes)
	wantRows := int64(2)
	if want := wantRows * int64(cache.Float32.RowBytes(pg.FeatDim)); st.HaloBytes != want {
		t.Fatalf("HaloBytes = %d, want %d", st.HaloBytes, want)
	}
	// Second batch with the same topology: dedup stamps must reset.
	src.BeginBatch(mb)
	st = src.Access(mb.Blocks[0].SrcNodes)
	if want := wantRows * int64(cache.Float32.RowBytes(pg.FeatDim)); st.HaloBytes != want {
		t.Fatalf("second batch HaloBytes = %d, want %d", st.HaloBytes, want)
	}
	if src.HaloBytes() != 2*st.HaloBytes {
		t.Fatalf("cumulative HaloBytes = %d, want %d", src.HaloBytes(), 2*st.HaloBytes)
	}
}

// TestHaloZeroWithoutBatch pins the no-topology fallback: a source used
// without BeginBatch (outside the pipeline) meters no halo traffic.
func TestHaloZeroWithoutBatch(t *testing.T) {
	g := testGraph(t, 100, 3, 4, 4)
	part, err := graph.PartitionGraph(g, 2, graph.PartitionHash)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	src, err := NewSource(g, part, cache.None, 0, nil, cache.Float32)
	if err != nil {
		t.Fatalf("NewSource: %v", err)
	}
	if st := src.Access([]int32{0, 1, 2}); st.HaloBytes != 0 {
		t.Fatalf("HaloBytes = %d without a batch topology", st.HaloBytes)
	}
}

func TestSplitCapacity(t *testing.T) {
	cases := []struct {
		total  int
		counts []int
		want   []int
	}{
		{10, []int{50, 50}, []int{5, 5}},
		{10, []int{75, 25}, []int{8, 2}}, // 7.5/2.5: tied remainders go to the lower index
		{7, []int{1, 1, 1}, []int{3, 2, 2}},
		{0, []int{10, 10}, []int{0, 0}},
		{5, []int{0, 10}, []int{0, 5}},
	}
	for _, tc := range cases {
		got := splitCapacity(tc.total, tc.counts)
		if !reflect.DeepEqual(got, tc.want) {
			t.Errorf("splitCapacity(%d, %v) = %v, want %v", tc.total, tc.counts, got, tc.want)
		}
		sum := 0
		for _, c := range got {
			sum += c
		}
		if sum != tc.total {
			t.Errorf("splitCapacity(%d, %v) sums to %d", tc.total, tc.counts, sum)
		}
	}
}

func TestSourceRejectsOpt(t *testing.T) {
	g := testGraph(t, 50, 2, 3, 5)
	part, err := graph.PartitionGraph(g, 2, graph.PartitionHash)
	if err != nil {
		t.Fatalf("partition: %v", err)
	}
	if _, err := NewSource(g, part, cache.Opt, 10, nil, cache.Float32); err == nil {
		t.Fatal("opt policy accepted")
	}
}

// reducerParams builds a small parameter set with pseudo-random grads.
func reducerParams(seed int64) []*nn.Param {
	rng := rand.New(rand.NewSource(seed))
	mk := func(name string, rows, cols int) *nn.Param {
		p := &nn.Param{Name: name, Value: tensor.New(rows, cols), Grad: tensor.New(rows, cols)}
		for i := range p.Grad.Data {
			p.Grad.Data[i] = rng.NormFloat64()
		}
		return p
	}
	return []*nn.Param{mk("w0", 7, 5), mk("b0", 1, 5), mk("w1", 5, 3)}
}

// TestReducerBitwiseIdentity: averaging K identical replicas must leave
// the gradient bitwise-unchanged for power-of-two K, at every worker
// count.
func TestReducerBitwiseIdentity(t *testing.T) {
	for _, k := range []int{2, 4, 8} {
		for _, workers := range []int{1, 4} {
			restore := tensor.WithParallelism(workers)
			params := reducerParams(11)
			want := make([][]float64, len(params))
			for i, p := range params {
				want[i] = append([]float64(nil), p.Grad.Data...)
			}
			r, err := NewReducer(k, params)
			if err != nil {
				t.Fatalf("K=%d: %v", k, err)
			}
			if err := r.Step(params); err != nil {
				t.Fatalf("K=%d: Step: %v", k, err)
			}
			for i, p := range params {
				if !reflect.DeepEqual(p.Grad.Data, want[i]) {
					t.Fatalf("K=%d workers=%d: param %s gradient changed by all-reduce", k, workers, p.Name)
				}
			}
			restore()
		}
	}
}

func TestReducerRejectsNonPowerOfTwo(t *testing.T) {
	for _, k := range []int{0, 1, 3, 6} {
		if _, err := NewReducer(k, reducerParams(1)); err == nil {
			t.Errorf("K=%d accepted", k)
		}
	}
}

func TestReducerWireBytes(t *testing.T) {
	params := reducerParams(2)
	scalars := 0
	for _, p := range params {
		scalars += len(p.Grad.Data)
	}
	r, err := NewReducer(4, params)
	if err != nil {
		t.Fatal(err)
	}
	want := int64(2 * 3 * scalars * 4 / 4) // 2(K-1)/K * scalars * 4 at K=4
	if r.WireBytesPerStep() != want {
		t.Fatalf("WireBytesPerStep = %d, want %d", r.WireBytesPerStep(), want)
	}
}

// TestReducerInjectedFault pins the clean-error path of the
// dist/allreduce injection point.
func TestReducerInjectedFault(t *testing.T) {
	defer faultinject.Reset()
	faultinject.Arm(faultinject.DistAllReduce, faultinject.Spec{Kind: faultinject.Error, Count: 1})
	params := reducerParams(3)
	r, err := NewReducer(2, params)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Step(params); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("Step error = %v, want ErrInjected", err)
	}
	if hits := faultinject.Hits(faultinject.DistAllReduce); hits != 1 {
		t.Fatalf("hits = %d, want 1", hits)
	}
}
