package dist

import (
	"fmt"
	"math"

	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/nn"
	"gnnavigator/internal/tensor"
)

// Reducer is the deterministic ordered all-reduce for per-step gradient
// aggregation across K data-parallel devices. Because the substrate's
// determinism contract makes every replica's backward pass
// bitwise-identical, the K per-device gradients are K identical copies;
// the reducer materializes them in per-device staging buffers and
// reduces in a fixed partition-index tree — pairing (0,1), (2,3), then
// (0,2), ... — so the summation order never depends on worker completion
// order. For power-of-two K every tree add doubles equal addends and the
// final 1/K rescale divides by a power of two, both exact in IEEE-754,
// so the averaged gradient is bitwise the single-device gradient. (An
// odd K would round: g + 2g is already inexact — which is why the
// backend restricts device counts to powers of two.)
type Reducer struct {
	k       int
	staging [][]float64
	wire    int64
}

// NewReducer builds a K-device reducer for models shaped like params
// (the staging buffers are sized lazily per parameter, so params only
// fixes the byte accounting). K must be a power of two, >= 2.
func NewReducer(k int, params []*nn.Param) (*Reducer, error) {
	if k < 2 || k&(k-1) != 0 {
		return nil, fmt.Errorf("dist: reducer needs a power-of-two device count >= 2, got %d", k)
	}
	scalars := 0
	for _, p := range params {
		scalars += len(p.Grad.Data)
	}
	// Ring all-reduce wire traffic per step: each device sends (and
	// receives) 2(K-1)/K of the payload at the 4-byte transfer currency.
	wire := int64(math.Ceil(2 * float64(k-1) / float64(k) * float64(scalars) * 4))
	r := &Reducer{k: k, staging: make([][]float64, k), wire: wire}
	return r, nil
}

// WireBytesPerStep returns the modeled interconnect traffic of one
// all-reduce step (ring schedule, 4 bytes per scalar).
func (r *Reducer) WireBytesPerStep() int64 { return r.wire }

// Step averages the gradients of params across the K replicas: each
// parameter's gradient is broadcast into the K staging buffers (the
// per-device copies), tree-reduced in partition-index order, rescaled by
// 1/K, and written back — leaving the gradient bitwise-unchanged for
// identical replicas, by the argument in the type comment. The
// per-element work is sharded over the tensor worker pool; elements are
// independent, so the result is identical at every worker count.
func (r *Reducer) Step(params []*nn.Param) error {
	if err := faultinject.Fire(faultinject.DistAllReduce); err != nil {
		return fmt.Errorf("dist: all-reduce: %w", err)
	}
	for _, p := range params {
		g := p.Grad.Data
		n := len(g)
		if n == 0 {
			continue
		}
		for i := range r.staging {
			if cap(r.staging[i]) < n {
				r.staging[i] = make([]float64, n)
			}
			r.staging[i] = r.staging[i][:n]
		}
		staging, kf := r.staging, float64(r.k)
		tensor.ParallelRange(n, func(lo, hi int) {
			// Broadcast: each device's replica gradient.
			for i := range staging {
				copy(staging[i][lo:hi], g[lo:hi])
			}
			// Fixed-order tree reduce: stride doubling over partition
			// indices, independent of scheduling.
			for stride := 1; stride < len(staging); stride *= 2 {
				for i := 0; i+stride < len(staging); i += 2 * stride {
					a, b := staging[i], staging[i+stride]
					for j := lo; j < hi; j++ {
						a[j] += b[j]
					}
				}
			}
			for j := lo; j < hi; j++ {
				g[j] = staging[0][j] / kf
			}
		})
	}
	return nil
}
