package dse

import (
	"context"
	"errors"
	"testing"
)

// TestChaosExploreContextCancel: a cancelled context stops the
// leaf-evaluation fan-out cleanly — Explore returns the context error
// instead of a partial Result.
func TestChaosExploreContextCancel(t *testing.T) {
	est := sharedEstimator(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ex := &Explorer{Est: est, Space: smallSpace(), Ctx: ctx}
	if _, err := ex.Explore(baseCfg()); !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled Explore returned %v, want context.Canceled", err)
	}
	// The same explorer with the cancellation lifted completes normally.
	ex.Ctx = context.Background()
	res, err := ex.Explore(baseCfg())
	if err != nil {
		t.Fatalf("Explore after lifting cancellation: %v", err)
	}
	if res.Evaluated == 0 {
		t.Error("post-cancel exploration evaluated nothing")
	}
}
