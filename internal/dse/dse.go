// Package dse implements GNNavigator's application-driven design space
// exploration (§3.3, Fig. 4): the design space spanned by the backend's
// reconfigurable settings, a DFS explorer with constraint pruning driven
// by the gray-box estimator, Pareto-front extraction over ⟨T, Γ, Acc⟩,
// and the priority-weighted decision maker that turns the front into
// training guidelines (Bal, Ex-TM, Ex-MA, Ex-TA).
package dse

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/estimator"
	"gnnavigator/internal/hw"
	"gnnavigator/internal/tensor"
)

// Space enumerates the reconfigurable settings of Fig. 3 that the explorer
// searches over. Empty slices pin the corresponding knob to the base
// config's value.
type Space struct {
	Samplers    []backend.SamplerKind
	BatchSizes  []int
	FanoutSets  [][]int
	WalkLengths []int
	CacheRatios []float64
	Policies    []cache.Policy
	// Precisions varies the feature-plane storage width (Cat. 2's second
	// transmission knob): compact precisions shrink Eq. 6's transfer
	// payload and stretch a fixed Γ_cache budget over more rows, at a
	// quantization accuracy cost the estimator measures.
	Precisions []cache.Precision
	BiasRates  []float64
	Hiddens    []int
	// LayerCounts varies model depth (Fig. 3's "Model Layers" knob). For
	// hop-list samplers only fanout sets whose length matches the depth
	// are admitted.
	LayerCounts []int
	// DeviceCounts varies the data-parallel device count (Cat. 5's
	// scale-out knob): K devices divide the simulator's per-device terms
	// by K but add halo-exchange and all-reduce interconnect traffic.
	// Config.Validate prunes counts the base platform cannot host (and
	// non-power-of-two counts) automatically.
	DeviceCounts []int
}

// DefaultSpace is the grid used throughout the evaluation. It subsumes
// every template: PyG, PaGraph (full/low), 2PGraph, SAINT and FastGCN all
// appear as points in it.
func DefaultSpace() Space {
	return Space{
		Samplers:    []backend.SamplerKind{backend.SamplerSAGE, backend.SamplerSAINT},
		BatchSizes:  []int{512, 1024, 2048},
		FanoutSets:  [][]int{{5, 5}, {10, 5}, {15, 8}, {25, 10}},
		WalkLengths: []int{8, 12},
		CacheRatios: []float64{0, 0.08, 0.15, 0.3, 0.45},
		// Opt last: the offline-optimal upper bound. Config.Validate
		// rejects Opt with cache-aware bias, so forEachLeaf's Validate
		// filter prunes those combos automatically.
		Policies:   []cache.Policy{cache.Static, cache.Freq, cache.FIFO, cache.LRU, cache.Opt},
		Precisions: cache.Precisions(),
		BiasRates:  []float64{0, 0.9},
		Hiddens:    []int{32, 64},
		// Multi-device counts survive only on platforms that host them
		// (the Validate filter prunes the rest), so the default grid is
		// safe on single-device platforms too.
		DeviceCounts: []int{1, 2, 4},
	}
}

// IsZero reports whether no dimension of the space is set at all — the
// genuine zero value, as opposed to a deliberately narrow space that
// pins most knobs and varies one (e.g. only CacheRatios). Callers that
// substitute DefaultSpace for "no space given" must test this, not
// Size(), which is 1 for any single-point space.
func (s Space) IsZero() bool {
	return len(s.Samplers) == 0 && len(s.BatchSizes) == 0 &&
		len(s.FanoutSets) == 0 && len(s.WalkLengths) == 0 &&
		len(s.CacheRatios) == 0 && len(s.Policies) == 0 &&
		len(s.Precisions) == 0 && len(s.BiasRates) == 0 &&
		len(s.Hiddens) == 0 && len(s.LayerCounts) == 0 &&
		len(s.DeviceCounts) == 0
}

// Size returns an upper bound on the number of leaf configurations.
func (s Space) Size() int {
	n := 1
	mul := func(k int) {
		if k > 0 {
			n *= k
		}
	}
	mul(len(s.Samplers))
	mul(len(s.BatchSizes))
	mul(len(s.FanoutSets) + len(s.WalkLengths))
	mul(len(s.CacheRatios))
	mul(len(s.Policies))
	mul(len(s.Precisions))
	mul(len(s.BiasRates))
	mul(len(s.Hiddens))
	mul(len(s.LayerCounts))
	mul(len(s.DeviceCounts))
	return n
}

// Constraints are the runtime constraints of Fig. 4. Zero values mean
// unconstrained.
type Constraints struct {
	MaxTimeSec  float64
	MaxMemoryGB float64
	MinAccuracy float64
}

// finite reports whether v is an ordinary float (not NaN, not ±Inf).
func finite(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0)
}

// Satisfied reports whether a prediction meets the constraints (including
// device feasibility). Non-finite predictions are infeasible by fiat: a
// NaN or Inf metric cannot be compared against a budget, and letting one
// survive into the candidate set would poison the decision maker's
// min-max normalization (every score becomes NaN and no candidate can
// ever win).
func (c Constraints) Satisfied(p estimator.Prediction) bool {
	if !p.Feasible {
		return false
	}
	if !finite(p.TimeSec) || !finite(p.MemoryGB) || !finite(p.Accuracy) {
		return false
	}
	if c.MaxTimeSec > 0 && p.TimeSec > c.MaxTimeSec {
		return false
	}
	if c.MaxMemoryGB > 0 && p.MemoryGB > c.MaxMemoryGB {
		return false
	}
	if c.MinAccuracy > 0 && p.Accuracy < c.MinAccuracy {
		return false
	}
	return true
}

// Priority names the guideline emphases of Table 1.
type Priority string

// Guideline priorities.
const (
	Balance        Priority = "balance" // Bal: equal emphasis on T, Γ, Acc
	TimeMemory     Priority = "ex-tm"   // Ex-TM: emphasize time and memory
	MemoryAccuracy Priority = "ex-ma"   // Ex-MA: emphasize memory and accuracy
	TimeAccuracy   Priority = "ex-ta"   // Ex-TA: emphasize time and accuracy
)

// Priorities lists all guideline emphases in Table 1 order.
func Priorities() []Priority {
	return []Priority{Balance, TimeMemory, MemoryAccuracy, TimeAccuracy}
}

// Weights returns the (time, memory, accuracy) emphasis of the priority.
func (p Priority) Weights() (wT, wG, wA float64) {
	switch p {
	case TimeMemory:
		return 1, 1, 0.25
	case MemoryAccuracy:
		return 0.25, 1, 1
	case TimeAccuracy:
		return 1, 0.25, 1
	default: // Balance
		return 1, 1, 1
	}
}

// accGuardBand is the maximum accuracy sacrifice any guideline may make
// relative to the best candidate. The paper's "extreme" guidelines trade
// accuracy only marginally ("a negligible drop in Acc by 2.8%"); without
// this guard a time-emphasizing priority could pick a degenerate config
// that barely learns.
const accGuardBand = 0.1

// Point pairs a candidate configuration with its predicted performance.
type Point struct {
	Cfg  backend.Config
	Pred estimator.Prediction
}

// Result summarizes one exploration.
type Result struct {
	// Candidates are all constraint-satisfying evaluated points.
	Candidates []Point
	// Pareto is the non-dominated subset over (T, Γ, -Acc).
	Pareto []Point
	// Evaluated counts estimator queries; Pruned counts leaf configs
	// skipped by constraint pruning without evaluation.
	Evaluated, Pruned int
}

// Explorer runs the DFS of Fig. 4.
type Explorer struct {
	Est         *estimator.Estimator
	Space       Space
	Constraints Constraints
	// DisablePruning turns constraint pruning off (ablation).
	DisablePruning bool
	// Workers bounds how many estimator.Predict calls run concurrently
	// during Explore: 0 = the process-wide tensor worker default
	// (GOMAXPROCS / $GNNAV_PROCS / -procs), 1 = serial. Evaluation
	// results are index-stamped into the DFS leaf order, so Candidates,
	// Pareto and every Decide over them are bitwise-identical at any
	// worker count.
	Workers int
	// Ctx, when non-nil, cancels the exploration: the leaf-evaluation
	// fan-out checks it before every estimator query and Explore returns
	// the context's error. nil means no cancellation.
	Ctx context.Context
}

func (e *Explorer) workerCount() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return tensor.Parallelism()
}

// forEachLeaf enumerates, in DFS order, every admissible leaf
// configuration of the subtree under one (cache ratio, precision) pair:
// the inner-loop admission rules (fanout/depth match for hop-list
// samplers, collapsing duplicate no-cache policy×bias combos,
// node-wise-only cache bias, and Config.Validate) all live here, so
// leaf evaluation and prune accounting count exactly the same set of
// configurations. Precision is not collapsed at ratio 0: an uncached
// run still transfers (and quantizes) every row, so the precisions
// remain distinct designs.
func (s Space) forEachLeaf(base backend.Config, ratio float64, prec cache.Precision, yield func(backend.Config)) {
	for _, smp := range s.Samplers {
		for _, b0 := range s.BatchSizes {
			shapes := len(s.FanoutSets)
			if smp == backend.SamplerSAINT {
				shapes = len(s.WalkLengths)
			}
			for sh := 0; sh < shapes; sh++ {
				for _, layers := range s.LayerCounts {
					for _, pol := range s.Policies {
						for _, bias := range s.BiasRates {
							for _, hidden := range s.Hiddens {
								for _, dev := range s.DeviceCounts {
									cfg := base
									cfg.Sampler = smp
									cfg.BatchSize = b0
									cfg.CacheRatio = ratio
									cfg.Precision = prec
									cfg.Hidden = hidden
									cfg.Layers = layers
									cfg.Devices = dev
									if smp == backend.SamplerSAINT {
										cfg.Fanouts = nil
										cfg.WalkLength = s.WalkLengths[sh]
									} else {
										cfg.Fanouts = s.FanoutSets[sh]
										cfg.WalkLength = 0
										if len(cfg.Fanouts) != cfg.Layers {
											continue
										}
									}
									if ratio == 0 {
										cfg.CachePolicy = cache.None
										cfg.BiasRate = 0
										if pol != s.Policies[0] || bias != s.BiasRates[0] {
											continue // collapse duplicate no-cache combos
										}
									} else {
										cfg.CachePolicy = pol
										cfg.BiasRate = bias
										if bias > 0 && smp != backend.SamplerSAGE {
											continue // cache-aware bias is node-wise only
										}
									}
									// Validate prunes device counts the platform
									// cannot host (and Opt at K > 1).
									if cfg.Validate() != nil {
										continue
									}
									yield(cfg)
								}
							}
						}
					}
				}
			}
		}
	}
}

// countLeaves reports exactly how many leaves forEachLeaf would yield
// under one (cache ratio, precision) pair — the number of estimator
// queries pruning the subtree saves. Counting through the shared
// enumerator (instead of multiplying dimension sizes) keeps Evaluated +
// Pruned invariant against the pruning-disabled total.
func (s Space) countLeaves(base backend.Config, ratio float64, prec cache.Precision) int {
	n := 0
	s.forEachLeaf(base, ratio, prec, func(backend.Config) { n++ })
	return n
}

// Explore traverses the design space depth-first from the base config
// (which supplies dataset, platform, model kind, layers, epochs, LR).
// Dimension order puts CacheRatio early so the memory lower bound can cut
// whole subtrees, mirroring the paper's pruning discussion.
//
// Explore runs in two stages: a serial leaf generator walks the space,
// cutting (and exactly counting) subtrees the cache-memory lower bound
// already rules out; the surviving leaves are then evaluated on a
// bounded worker pool (see Workers). The estimator is safe for
// concurrent Predict use and each result lands in its leaf's index slot,
// so the output is deterministic — identical to the serial traversal.
func (e *Explorer) Explore(base backend.Config) (*Result, error) {
	if e.Est == nil {
		return nil, fmt.Errorf("dse: explorer needs a trained estimator")
	}
	ds, err := dataset.Load(base.Dataset)
	if err != nil {
		return nil, err
	}
	plat, ok := hw.Profiles()[base.Platform]
	if !ok {
		return nil, fmt.Errorf("dse: unknown platform %q", base.Platform)
	}
	s := e.normalizedSpace(base)
	res := &Result{}

	var leaves []backend.Config
	for _, ratio := range s.CacheRatios {
		for _, prec := range s.Precisions {
			// Constraint pruning: Γ_cache alone is a lower bound on Γ for
			// the whole subtree under this (cache ratio, precision) pair
			// (Eq. 9 is a sum of non-negative parts). The bound is
			// precision-aware: the rows a float32-denominated budget buys
			// at this precision, each at its storage row bytes — so a
			// compact precision can keep a subtree a float32 budget would
			// cut. If it already violates the memory budget or the device
			// capacity, the subtree cannot contain a satisfying candidate.
			if !e.DisablePruning {
				rows := prec.EffectiveCacheRows(ratio, float64(ds.FullVertices), ds.FullFeatDim)
				cacheBytes := rows * float64(prec.StorageRowBytes(ds.FullFeatDim))
				overBudget := e.Constraints.MaxMemoryGB > 0 && cacheBytes/1e9 > e.Constraints.MaxMemoryGB
				overDevice := cacheBytes > plat.Device.MemCapacityBytes
				if overBudget || overDevice {
					res.Pruned += s.countLeaves(base, ratio, prec)
					continue
				}
			}
			s.forEachLeaf(base, ratio, prec, func(cfg backend.Config) {
				leaves = append(leaves, cfg)
			})
		}
	}

	preds := make([]estimator.Prediction, len(leaves))
	// The fan-out short-circuits on the first Predict error like the old
	// DFS's early return (a failing estimator dependency — e.g. a
	// baseline run, which only caches success — would otherwise re-fail
	// once per leaf).
	if err := tensor.ForEachIndexErr(len(leaves), e.workerCount(), func(i int) error {
		if e.Ctx != nil {
			if cerr := e.Ctx.Err(); cerr != nil {
				return cerr
			}
		}
		var err error
		preds[i], err = e.Est.Predict(leaves[i])
		return err
	}); err != nil {
		return nil, err
	}
	res.Evaluated = len(leaves)
	for i, cfg := range leaves {
		if e.Constraints.Satisfied(preds[i]) {
			res.Candidates = append(res.Candidates, Point{Cfg: cfg, Pred: preds[i]})
		}
	}
	res.Pareto = ParetoFront(res.Candidates)
	return res, nil
}

// normalizedSpace fills empty dimensions from the base config.
func (e *Explorer) normalizedSpace(base backend.Config) Space {
	s := e.Space
	if len(s.Samplers) == 0 {
		s.Samplers = []backend.SamplerKind{base.Sampler}
	}
	if len(s.BatchSizes) == 0 {
		s.BatchSizes = []int{base.BatchSize}
	}
	if len(s.FanoutSets) == 0 {
		s.FanoutSets = [][]int{base.Fanouts}
	}
	if len(s.WalkLengths) == 0 {
		wl := base.WalkLength
		if wl == 0 {
			wl = 8
		}
		s.WalkLengths = []int{wl}
	}
	if len(s.CacheRatios) == 0 {
		s.CacheRatios = []float64{base.CacheRatio}
	}
	if len(s.Policies) == 0 {
		// The policy paired with nonzero cache ratios. The base's policy
		// is usually "none" (no cache), which would invalidate every
		// cached candidate, so default to the static PaGraph-style cache.
		pol := base.CachePolicy
		if pol == "" || pol == cache.None {
			pol = cache.Static
		}
		s.Policies = []cache.Policy{pol}
	}
	if len(s.Precisions) == 0 {
		s.Precisions = []cache.Precision{base.FeaturePrecision()}
	}
	if len(s.BiasRates) == 0 {
		s.BiasRates = []float64{base.BiasRate}
	}
	if len(s.Hiddens) == 0 {
		s.Hiddens = []int{base.Hidden}
	}
	if len(s.LayerCounts) == 0 {
		s.LayerCounts = []int{base.Layers}
	}
	if len(s.DeviceCounts) == 0 {
		s.DeviceCounts = []int{base.DeviceCount()}
	}
	return s
}

// dominates reports whether a dominates b: no worse on all of (T, Γ, Acc)
// and strictly better on at least one.
func dominates(a, b Point) bool {
	if a.Pred.TimeSec > b.Pred.TimeSec || a.Pred.MemoryGB > b.Pred.MemoryGB ||
		a.Pred.Accuracy < b.Pred.Accuracy {
		return false
	}
	return a.Pred.TimeSec < b.Pred.TimeSec || a.Pred.MemoryGB < b.Pred.MemoryGB ||
		a.Pred.Accuracy > b.Pred.Accuracy
}

// ParetoFront returns the non-dominated subset of points over
// (minimize T, minimize Γ, maximize Acc), preserving input order.
//
// It runs as a sort-and-sweep: points sorted by (T asc, Γ asc, Acc desc)
// are swept once while an incremental staircase maps cache memory Γ to
// the best accuracy seen at-or-below it. A point is dominated exactly
// when an earlier, distinct triple offers Γ ≤ and Acc ≥ its own (T ≤
// holds by the sort, and distinctness forces one of the three to be
// strict). Cost: O(n log n) for the sort and the staircase searches,
// plus a splice memmove per surviving point that is O(front size) in
// the worst case (a fully anticorrelated T/Γ front) — still a flat
// float64 copy, orders of magnitude cheaper per element than the
// all-pairs reference's dominates() calls. Any non-finite coordinate
// falls back to the quadratic reference, whose pairwise comparisons
// define the semantics sorting NaNs would break.
func ParetoFront(points []Point) []Point {
	n := len(points)
	if n <= 2 {
		return paretoFrontQuadratic(points)
	}
	for _, p := range points {
		if !finite(p.Pred.TimeSec) || !finite(p.Pred.MemoryGB) || !finite(p.Pred.Accuracy) {
			return paretoFrontQuadratic(points)
		}
	}
	ord := make([]int, n)
	for i := range ord {
		ord[i] = i
	}
	slices.SortFunc(ord, func(a, b int) int {
		pa, pb := points[a].Pred, points[b].Pred
		switch {
		case pa.TimeSec != pb.TimeSec:
			if pa.TimeSec < pb.TimeSec {
				return -1
			}
			return 1
		case pa.MemoryGB != pb.MemoryGB:
			if pa.MemoryGB < pb.MemoryGB {
				return -1
			}
			return 1
		case pa.Accuracy != pb.Accuracy:
			if pa.Accuracy > pb.Accuracy {
				return -1
			}
			return 1
		default:
			return a - b
		}
	})
	dominated := make([]bool, n)
	// Staircase over processed points: gs strictly ascending, accs[i] the
	// best accuracy among all points with Γ <= gs[i] (so also strictly
	// ascending — entries a cheaper-Γ point already beats are elided).
	var gs, accs []float64
	for i := 0; i < n; {
		p := points[ord[i]].Pred
		// Identical ⟨T, Γ, Acc⟩ triples are adjacent in the sort order and
		// never dominate each other; they share one verdict.
		j := i + 1
		for j < n {
			q := points[ord[j]].Pred
			if q.TimeSec != p.TimeSec || q.MemoryGB != p.MemoryGB || q.Accuracy != p.Accuracy {
				break
			}
			j++
		}
		k := sort.Search(len(gs), func(m int) bool { return gs[m] > p.MemoryGB }) - 1
		if k >= 0 && accs[k] >= p.Accuracy {
			for _, idx := range ord[i:j] {
				dominated[idx] = true
			}
		} else {
			// New best accuracy at this Γ: insert, dropping entries at
			// Γ >= ours whose accuracy we match or beat.
			pos := sort.Search(len(gs), func(m int) bool { return gs[m] >= p.MemoryGB })
			cut := pos
			for cut < len(gs) && accs[cut] <= p.Accuracy {
				cut++
			}
			gs = slices.Insert(slices.Delete(gs, pos, cut), pos, p.MemoryGB)
			accs = slices.Insert(slices.Delete(accs, pos, cut), pos, p.Accuracy)
		}
		i = j
	}
	var front []Point
	for i, p := range points {
		if !dominated[i] {
			front = append(front, p)
		}
	}
	return front
}

// paretoFrontQuadratic is the all-pairs O(n²) reference front: the
// fallback for non-finite inputs and the oracle the equivalence tests
// compare the sweep against.
func paretoFrontQuadratic(points []Point) []Point {
	var front []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	return front
}

// Decide applies the decision maker: metrics are min-max normalized over
// the candidate set and combined with the priority's weights; the lowest
// score wins. Ties break toward lower time. Candidates whose predicted
// accuracy trails the best by more than accGuardBand are excluded — every
// guideline must keep "comparable accuracy" (§4.2).
func Decide(candidates []Point, priority Priority) (Point, error) {
	if len(candidates) == 0 {
		return Point{}, fmt.Errorf("dse: no candidates satisfy the constraints")
	}
	// Non-finite candidates (possible only when callers bypass
	// Constraints.Satisfied, which rejects them) are excluded before
	// anything else: a NaN metric would poison the min-max normalization
	// (math.Min propagates NaN, turning every score NaN), and an Inf
	// accuracy would set a guard band no finite candidate can meet.
	scorable := func(p Point) bool {
		return finite(p.Pred.TimeSec) && finite(p.Pred.MemoryGB) && finite(p.Pred.Accuracy)
	}
	finiteCands := make([]Point, 0, len(candidates))
	for _, p := range candidates {
		if scorable(p) {
			finiteCands = append(finiteCands, p)
		}
	}
	if len(finiteCands) == 0 {
		return Point{}, fmt.Errorf("dse: no candidate has a finite score")
	}
	candidates = finiteCands
	bestAcc := math.Inf(-1)
	for _, p := range candidates {
		if p.Pred.Accuracy > bestAcc {
			bestAcc = p.Pred.Accuracy
		}
	}
	guarded := make([]Point, 0, len(candidates))
	for _, p := range candidates {
		if p.Pred.Accuracy >= bestAcc-accGuardBand {
			guarded = append(guarded, p)
		}
	}
	if len(guarded) > 0 {
		candidates = guarded
	}
	minT, maxT := math.Inf(1), math.Inf(-1)
	minG, maxG := math.Inf(1), math.Inf(-1)
	minA, maxA := math.Inf(1), math.Inf(-1)
	for _, p := range candidates {
		minT = math.Min(minT, p.Pred.TimeSec)
		maxT = math.Max(maxT, p.Pred.TimeSec)
		minG = math.Min(minG, p.Pred.MemoryGB)
		maxG = math.Max(maxG, p.Pred.MemoryGB)
		minA = math.Min(minA, p.Pred.Accuracy)
		maxA = math.Max(maxA, p.Pred.Accuracy)
	}
	norm := func(v, lo, hi float64) float64 {
		if hi-lo < 1e-12 {
			return 0
		}
		return (v - lo) / (hi - lo)
	}
	wT, wG, wA := priority.Weights()
	best := -1
	bestScore := math.Inf(1)
	for i, p := range candidates {
		score := wT*norm(p.Pred.TimeSec, minT, maxT) +
			wG*norm(p.Pred.MemoryGB, minG, maxG) +
			wA*(1-norm(p.Pred.Accuracy, minA, maxA))
		if score < bestScore || (score == bestScore && best >= 0 && p.Pred.TimeSec < candidates[best].Pred.TimeSec) {
			bestScore = score
			best = i
		}
	}
	if best < 0 {
		// Unreachable after the finiteness filter above (finite inputs
		// always produce a finite first score), but a panic on
		// candidates[-1] is the failure mode this function once had —
		// keep the guard.
		return Point{}, fmt.Errorf("dse: no candidate has a finite score")
	}
	return candidates[best], nil
}
