// Package dse implements GNNavigator's application-driven design space
// exploration (§3.3, Fig. 4): the design space spanned by the backend's
// reconfigurable settings, a DFS explorer with constraint pruning driven
// by the gray-box estimator, Pareto-front extraction over ⟨T, Γ, Acc⟩,
// and the priority-weighted decision maker that turns the front into
// training guidelines (Bal, Ex-TM, Ex-MA, Ex-TA).
package dse

import (
	"fmt"
	"math"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/estimator"
	"gnnavigator/internal/hw"
)

// Space enumerates the reconfigurable settings of Fig. 3 that the explorer
// searches over. Empty slices pin the corresponding knob to the base
// config's value.
type Space struct {
	Samplers    []backend.SamplerKind
	BatchSizes  []int
	FanoutSets  [][]int
	WalkLengths []int
	CacheRatios []float64
	Policies    []cache.Policy
	BiasRates   []float64
	Hiddens     []int
	// LayerCounts varies model depth (Fig. 3's "Model Layers" knob). For
	// hop-list samplers only fanout sets whose length matches the depth
	// are admitted.
	LayerCounts []int
}

// DefaultSpace is the grid used throughout the evaluation. It subsumes
// every template: PyG, PaGraph (full/low), 2PGraph, SAINT and FastGCN all
// appear as points in it.
func DefaultSpace() Space {
	return Space{
		Samplers:    []backend.SamplerKind{backend.SamplerSAGE, backend.SamplerSAINT},
		BatchSizes:  []int{512, 1024, 2048},
		FanoutSets:  [][]int{{5, 5}, {10, 5}, {15, 8}, {25, 10}},
		WalkLengths: []int{8, 12},
		CacheRatios: []float64{0, 0.08, 0.15, 0.3, 0.45},
		Policies:    []cache.Policy{cache.Static, cache.FIFO, cache.LRU},
		BiasRates:   []float64{0, 0.9},
		Hiddens:     []int{32, 64},
	}
}

// Size returns an upper bound on the number of leaf configurations.
func (s Space) Size() int {
	n := 1
	mul := func(k int) {
		if k > 0 {
			n *= k
		}
	}
	mul(len(s.Samplers))
	mul(len(s.BatchSizes))
	mul(len(s.FanoutSets) + len(s.WalkLengths))
	mul(len(s.CacheRatios))
	mul(len(s.Policies))
	mul(len(s.BiasRates))
	mul(len(s.Hiddens))
	mul(len(s.LayerCounts))
	return n
}

// Constraints are the runtime constraints of Fig. 4. Zero values mean
// unconstrained.
type Constraints struct {
	MaxTimeSec  float64
	MaxMemoryGB float64
	MinAccuracy float64
}

// Satisfied reports whether a prediction meets the constraints (including
// device feasibility).
func (c Constraints) Satisfied(p estimator.Prediction) bool {
	if !p.Feasible {
		return false
	}
	if c.MaxTimeSec > 0 && p.TimeSec > c.MaxTimeSec {
		return false
	}
	if c.MaxMemoryGB > 0 && p.MemoryGB > c.MaxMemoryGB {
		return false
	}
	if c.MinAccuracy > 0 && p.Accuracy < c.MinAccuracy {
		return false
	}
	return true
}

// Priority names the guideline emphases of Table 1.
type Priority string

// Guideline priorities.
const (
	Balance        Priority = "balance" // Bal: equal emphasis on T, Γ, Acc
	TimeMemory     Priority = "ex-tm"   // Ex-TM: emphasize time and memory
	MemoryAccuracy Priority = "ex-ma"   // Ex-MA: emphasize memory and accuracy
	TimeAccuracy   Priority = "ex-ta"   // Ex-TA: emphasize time and accuracy
)

// Priorities lists all guideline emphases in Table 1 order.
func Priorities() []Priority {
	return []Priority{Balance, TimeMemory, MemoryAccuracy, TimeAccuracy}
}

// Weights returns the (time, memory, accuracy) emphasis of the priority.
func (p Priority) Weights() (wT, wG, wA float64) {
	switch p {
	case TimeMemory:
		return 1, 1, 0.25
	case MemoryAccuracy:
		return 0.25, 1, 1
	case TimeAccuracy:
		return 1, 0.25, 1
	default: // Balance
		return 1, 1, 1
	}
}

// accGuardBand is the maximum accuracy sacrifice any guideline may make
// relative to the best candidate. The paper's "extreme" guidelines trade
// accuracy only marginally ("a negligible drop in Acc by 2.8%"); without
// this guard a time-emphasizing priority could pick a degenerate config
// that barely learns.
const accGuardBand = 0.1

// Point pairs a candidate configuration with its predicted performance.
type Point struct {
	Cfg  backend.Config
	Pred estimator.Prediction
}

// Result summarizes one exploration.
type Result struct {
	// Candidates are all constraint-satisfying evaluated points.
	Candidates []Point
	// Pareto is the non-dominated subset over (T, Γ, -Acc).
	Pareto []Point
	// Evaluated counts estimator queries; Pruned counts leaf configs
	// skipped by constraint pruning without evaluation.
	Evaluated, Pruned int
}

// Explorer runs the DFS of Fig. 4.
type Explorer struct {
	Est         *estimator.Estimator
	Space       Space
	Constraints Constraints
	// DisablePruning turns constraint pruning off (ablation).
	DisablePruning bool
}

// Explore traverses the design space depth-first from the base config
// (which supplies dataset, platform, model kind, layers, epochs, LR).
// Dimension order puts CacheRatio early so the memory lower bound can cut
// whole subtrees, mirroring the paper's pruning discussion.
func (e *Explorer) Explore(base backend.Config) (*Result, error) {
	if e.Est == nil {
		return nil, fmt.Errorf("dse: explorer needs a trained estimator")
	}
	ds, err := dataset.Load(base.Dataset)
	if err != nil {
		return nil, err
	}
	plat, ok := hw.Profiles()[base.Platform]
	if !ok {
		return nil, fmt.Errorf("dse: unknown platform %q", base.Platform)
	}
	s := e.normalizedSpace(base)
	res := &Result{}

	// leafCount(dims...) for prune accounting below a cut.
	leafsBelow := func(level int) int {
		n := 1
		if level <= 0 {
			n *= len(s.Samplers)
		}
		if level <= 1 {
			n *= len(s.BatchSizes)
		}
		// Level 2 (shape) depends on sampler; bound with the max.
		if level <= 2 {
			m := len(s.FanoutSets)
			if len(s.WalkLengths) > m {
				m = len(s.WalkLengths)
			}
			n *= m
		}
		if level <= 3 {
			n *= len(s.Policies)
		}
		if level <= 4 {
			n *= len(s.BiasRates)
		}
		if level <= 5 {
			n *= len(s.Hiddens)
		}
		if level <= 6 {
			n *= len(s.LayerCounts)
		}
		return n
	}

	for _, ratio := range s.CacheRatios {
		// Constraint pruning: Γ_cache alone is a lower bound on Γ for the
		// whole subtree under this cache ratio (Eq. 9 is a sum of
		// non-negative parts). If it already violates the memory budget or
		// the device capacity, the subtree cannot contain a satisfying
		// candidate.
		if !e.DisablePruning {
			cacheBytes := ratio * float64(ds.FullVertices) * float64(ds.FullFeatDim) * 4
			overBudget := e.Constraints.MaxMemoryGB > 0 && cacheBytes/1e9 > e.Constraints.MaxMemoryGB
			overDevice := cacheBytes > plat.Device.MemCapacityBytes
			if overBudget || overDevice {
				res.Pruned += leafsBelow(0)
				continue
			}
		}
		for _, smp := range s.Samplers {
			for _, b0 := range s.BatchSizes {
				shapes := len(s.FanoutSets)
				if smp == backend.SamplerSAINT {
					shapes = len(s.WalkLengths)
				}
				for sh := 0; sh < shapes; sh++ {
					for _, layers := range s.LayerCounts {
						for _, pol := range s.Policies {
							for _, bias := range s.BiasRates {
								for _, hidden := range s.Hiddens {
									cfg := base
									cfg.Sampler = smp
									cfg.BatchSize = b0
									cfg.CacheRatio = ratio
									cfg.Hidden = hidden
									cfg.Layers = layers
									if smp == backend.SamplerSAINT {
										cfg.Fanouts = nil
										cfg.WalkLength = s.WalkLengths[sh]
									} else {
										cfg.Fanouts = s.FanoutSets[sh]
										cfg.WalkLength = 0
										if len(cfg.Fanouts) != cfg.Layers {
											continue
										}
									}
									if ratio == 0 {
										cfg.CachePolicy = cache.None
										cfg.BiasRate = 0
										if pol != s.Policies[0] || bias != s.BiasRates[0] {
											continue // collapse duplicate no-cache combos
										}
									} else {
										cfg.CachePolicy = pol
										cfg.BiasRate = bias
										if bias > 0 && smp != backend.SamplerSAGE {
											continue // cache-aware bias is node-wise only
										}
									}
									if cfg.Validate() != nil {
										continue
									}
									pred, err := e.Est.Predict(cfg)
									if err != nil {
										return nil, err
									}
									res.Evaluated++
									if e.Constraints.Satisfied(pred) {
										res.Candidates = append(res.Candidates, Point{Cfg: cfg, Pred: pred})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	res.Pareto = ParetoFront(res.Candidates)
	return res, nil
}

// normalizedSpace fills empty dimensions from the base config.
func (e *Explorer) normalizedSpace(base backend.Config) Space {
	s := e.Space
	if len(s.Samplers) == 0 {
		s.Samplers = []backend.SamplerKind{base.Sampler}
	}
	if len(s.BatchSizes) == 0 {
		s.BatchSizes = []int{base.BatchSize}
	}
	if len(s.FanoutSets) == 0 {
		s.FanoutSets = [][]int{base.Fanouts}
	}
	if len(s.WalkLengths) == 0 {
		wl := base.WalkLength
		if wl == 0 {
			wl = 8
		}
		s.WalkLengths = []int{wl}
	}
	if len(s.CacheRatios) == 0 {
		s.CacheRatios = []float64{base.CacheRatio}
	}
	if len(s.Policies) == 0 {
		// The policy paired with nonzero cache ratios. The base's policy
		// is usually "none" (no cache), which would invalidate every
		// cached candidate, so default to the static PaGraph-style cache.
		pol := base.CachePolicy
		if pol == "" || pol == cache.None {
			pol = cache.Static
		}
		s.Policies = []cache.Policy{pol}
	}
	if len(s.BiasRates) == 0 {
		s.BiasRates = []float64{base.BiasRate}
	}
	if len(s.Hiddens) == 0 {
		s.Hiddens = []int{base.Hidden}
	}
	if len(s.LayerCounts) == 0 {
		s.LayerCounts = []int{base.Layers}
	}
	return s
}

// dominates reports whether a dominates b: no worse on all of (T, Γ, Acc)
// and strictly better on at least one.
func dominates(a, b Point) bool {
	if a.Pred.TimeSec > b.Pred.TimeSec || a.Pred.MemoryGB > b.Pred.MemoryGB ||
		a.Pred.Accuracy < b.Pred.Accuracy {
		return false
	}
	return a.Pred.TimeSec < b.Pred.TimeSec || a.Pred.MemoryGB < b.Pred.MemoryGB ||
		a.Pred.Accuracy > b.Pred.Accuracy
}

// ParetoFront returns the non-dominated subset of points over
// (minimize T, minimize Γ, maximize Acc).
func ParetoFront(points []Point) []Point {
	var front []Point
	for i, p := range points {
		dominated := false
		for j, q := range points {
			if i != j && dominates(q, p) {
				dominated = true
				break
			}
		}
		if !dominated {
			front = append(front, p)
		}
	}
	return front
}

// Decide applies the decision maker: metrics are min-max normalized over
// the candidate set and combined with the priority's weights; the lowest
// score wins. Ties break toward lower time. Candidates whose predicted
// accuracy trails the best by more than accGuardBand are excluded — every
// guideline must keep "comparable accuracy" (§4.2).
func Decide(candidates []Point, priority Priority) (Point, error) {
	if len(candidates) == 0 {
		return Point{}, fmt.Errorf("dse: no candidates satisfy the constraints")
	}
	bestAcc := math.Inf(-1)
	for _, p := range candidates {
		if p.Pred.Accuracy > bestAcc {
			bestAcc = p.Pred.Accuracy
		}
	}
	guarded := make([]Point, 0, len(candidates))
	for _, p := range candidates {
		if p.Pred.Accuracy >= bestAcc-accGuardBand {
			guarded = append(guarded, p)
		}
	}
	if len(guarded) > 0 {
		candidates = guarded
	}
	minT, maxT := math.Inf(1), math.Inf(-1)
	minG, maxG := math.Inf(1), math.Inf(-1)
	minA, maxA := math.Inf(1), math.Inf(-1)
	for _, p := range candidates {
		minT = math.Min(minT, p.Pred.TimeSec)
		maxT = math.Max(maxT, p.Pred.TimeSec)
		minG = math.Min(minG, p.Pred.MemoryGB)
		maxG = math.Max(maxG, p.Pred.MemoryGB)
		minA = math.Min(minA, p.Pred.Accuracy)
		maxA = math.Max(maxA, p.Pred.Accuracy)
	}
	norm := func(v, lo, hi float64) float64 {
		if hi-lo < 1e-12 {
			return 0
		}
		return (v - lo) / (hi - lo)
	}
	wT, wG, wA := priority.Weights()
	best := -1
	bestScore := math.Inf(1)
	for i, p := range candidates {
		score := wT*norm(p.Pred.TimeSec, minT, maxT) +
			wG*norm(p.Pred.MemoryGB, minG, maxG) +
			wA*(1-norm(p.Pred.Accuracy, minA, maxA))
		if score < bestScore || (score == bestScore && best >= 0 && p.Pred.TimeSec < candidates[best].Pred.TimeSec) {
			bestScore = score
			best = i
		}
	}
	return candidates[best], nil
}
