package dse

import (
	"reflect"
	"testing"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/estimator"
	"gnnavigator/internal/model"
)

// sharedEstimator trains a small estimator once for all dse tests.
func sharedEstimator(t *testing.T) *estimator.Estimator {
	t.Helper()
	recs, err := estimator.CollectCached(dataset.OgbnArxiv, model.SAGE, "rtx4090", 24, 7, true)
	if err != nil {
		t.Fatalf("calibration: %v", err)
	}
	e, err := estimator.Train(recs)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return e
}

func baseCfg() backend.Config {
	return backend.Config{
		Dataset:     dataset.OgbnArxiv,
		Platform:    "rtx4090",
		Sampler:     backend.SamplerSAGE,
		BatchSize:   512,
		Fanouts:     []int{10, 5},
		CachePolicy: cache.None,
		Model:       model.SAGE,
		Hidden:      32,
		Layers:      2,
		Epochs:      2,
		LR:          0.01,
		Seed:        3,
	}
}

func smallSpace() Space {
	return Space{
		Samplers:    []backend.SamplerKind{backend.SamplerSAGE},
		BatchSizes:  []int{512, 1024},
		FanoutSets:  [][]int{{5, 5}, {10, 5}},
		CacheRatios: []float64{0, 0.15, 0.45},
		Policies:    []cache.Policy{cache.Static},
		BiasRates:   []float64{0, 0.9},
		Hiddens:     []int{32},
	}
}

func TestExploreFindsCandidates(t *testing.T) {
	ex := &Explorer{Est: sharedEstimator(t), Space: smallSpace()}
	res, err := ex.Explore(baseCfg())
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	if res.Evaluated == 0 || len(res.Candidates) == 0 {
		t.Fatalf("empty exploration: %+v", res)
	}
	if len(res.Pareto) == 0 || len(res.Pareto) > len(res.Candidates) {
		t.Errorf("pareto size %d vs candidates %d", len(res.Pareto), len(res.Candidates))
	}
	// Every Pareto point must itself be a candidate and non-dominated.
	for _, p := range res.Pareto {
		for _, q := range res.Candidates {
			if dominates(q, p) {
				t.Errorf("pareto point %s dominated by %s", p.Cfg.Label(), q.Cfg.Label())
			}
		}
	}
}

func TestExploreNeedsEstimator(t *testing.T) {
	ex := &Explorer{Space: smallSpace()}
	if _, err := ex.Explore(baseCfg()); err == nil {
		t.Error("explorer without estimator accepted")
	}
}

func TestConstraintPruning(t *testing.T) {
	est := sharedEstimator(t)
	// Reddit2 at full scale: 233k vertices x 602 attrs x 4 B ≈ 0.56 GB per
	// unit cache ratio, so ratio 0.45 alone (~0.25 GB) busts a 0.2 GB
	// budget and its whole subtree can be pruned without evaluation.
	base := baseCfg()
	base.Dataset = dataset.Reddit2
	tight := Constraints{MaxMemoryGB: 0.2}
	with := &Explorer{Est: est, Space: smallSpace(), Constraints: tight}
	resWith, err := with.Explore(base)
	if err != nil {
		t.Fatal(err)
	}
	without := &Explorer{Est: est, Space: smallSpace(), Constraints: tight, DisablePruning: true}
	resWithout, err := without.Explore(base)
	if err != nil {
		t.Fatal(err)
	}
	if resWith.Pruned == 0 {
		t.Error("tight memory constraint pruned nothing")
	}
	if resWith.Evaluated >= resWithout.Evaluated {
		t.Errorf("pruning did not reduce evaluations: %d vs %d",
			resWith.Evaluated, resWithout.Evaluated)
	}
	// Exact prune accounting: every pruned leaf is one the disabled run
	// evaluated, no more, no fewer.
	if resWithout.Pruned != 0 {
		t.Errorf("pruning-disabled run reported %d pruned leaves", resWithout.Pruned)
	}
	if resWith.Evaluated+resWith.Pruned != resWithout.Evaluated {
		t.Errorf("prune accounting inexact: evaluated %d + pruned %d != %d total leaves",
			resWith.Evaluated, resWith.Pruned, resWithout.Evaluated)
	}
	// Pruning must not change the satisfying candidate set.
	if !reflect.DeepEqual(resWith.Candidates, resWithout.Candidates) {
		t.Errorf("pruning changed the candidate set: %d vs %d candidates",
			len(resWith.Candidates), len(resWithout.Candidates))
	}
}

// TestPruneAccountingExactAcrossSpaces drives the invariant through
// spaces that exercise every admission rule the old multiplicative count
// got wrong: samplers with mismatched fanout/depth combos, SAINT (which
// uses WalkLengths, not FanoutSets), collapsed no-cache policy×bias
// duplicates, and bias rates inadmissible off the node-wise sampler.
func TestPruneAccountingExactAcrossSpaces(t *testing.T) {
	est := sharedEstimator(t)
	base := baseCfg()
	base.Dataset = dataset.Reddit2
	spaces := map[string]Space{
		"small": smallSpace(),
		"mixed-samplers": {
			Samplers:    []backend.SamplerKind{backend.SamplerSAGE, backend.SamplerSAINT},
			BatchSizes:  []int{512},
			FanoutSets:  [][]int{{10}, {10, 5}, {15, 8}},
			WalkLengths: []int{8, 12},
			LayerCounts: []int{1, 2},
			CacheRatios: []float64{0, 0.3, 0.45},
			Policies:    []cache.Policy{cache.Static, cache.LRU},
			BiasRates:   []float64{0, 0.9},
			Hiddens:     []int{32},
		},
	}
	for name, space := range spaces {
		tight := Constraints{MaxMemoryGB: 0.2}
		with, err := (&Explorer{Est: est, Space: space, Constraints: tight}).Explore(base)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		without, err := (&Explorer{Est: est, Space: space, Constraints: tight, DisablePruning: true}).Explore(base)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if with.Pruned == 0 {
			t.Errorf("%s: nothing pruned under a 0.2 GB budget", name)
		}
		if with.Evaluated+with.Pruned != without.Evaluated {
			t.Errorf("%s: evaluated %d + pruned %d != total %d",
				name, with.Evaluated, with.Pruned, without.Evaluated)
		}
	}
}

func TestConstraintsSatisfied(t *testing.T) {
	p := estimator.Prediction{TimeSec: 5, MemoryGB: 2, Accuracy: 0.8, Feasible: true}
	if !(Constraints{}).Satisfied(p) {
		t.Error("unconstrained rejected feasible point")
	}
	if (Constraints{MaxTimeSec: 4}).Satisfied(p) {
		t.Error("time constraint not enforced")
	}
	if (Constraints{MaxMemoryGB: 1}).Satisfied(p) {
		t.Error("memory constraint not enforced")
	}
	if (Constraints{MinAccuracy: 0.9}).Satisfied(p) {
		t.Error("accuracy constraint not enforced")
	}
	p.Feasible = false
	if (Constraints{}).Satisfied(p) {
		t.Error("infeasible point accepted")
	}
}

func TestParetoFrontKnown(t *testing.T) {
	mk := func(t, g, a float64) Point {
		return Point{Pred: estimator.Prediction{TimeSec: t, MemoryGB: g, Accuracy: a, Feasible: true}}
	}
	pts := []Point{
		mk(1, 1, 0.9), // non-dominated
		mk(2, 2, 0.8), // dominated by the first
		mk(0.5, 3, 0.7),
		mk(3, 0.5, 0.95),
	}
	front := ParetoFront(pts)
	if len(front) != 3 {
		t.Fatalf("front size = %d, want 3", len(front))
	}
	for _, p := range front {
		if p.Pred.TimeSec == 2 {
			t.Error("dominated point on the front")
		}
	}
}

func TestParetoFrontEmpty(t *testing.T) {
	if got := ParetoFront(nil); len(got) != 0 {
		t.Errorf("front of empty set = %v", got)
	}
}

func TestDecidePriorities(t *testing.T) {
	mk := func(t, g, a float64) Point {
		return Point{Pred: estimator.Prediction{TimeSec: t, MemoryGB: g, Accuracy: a, Feasible: true}}
	}
	// Accuracy spread kept within the decision maker's guard band so the
	// emphasis weights (not the guard) decide.
	fast := mk(1, 10, 0.72)     // fastest, memory-hungry, lower acc
	lean := mk(10, 1, 0.72)     // slow, tiny memory
	accurate := mk(10, 10, 0.8) // slow, hungry, most accurate
	cands := []Point{fast, lean, accurate}

	got, err := Decide(cands, TimeMemory)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pred.Accuracy == 0.8 {
		t.Error("Ex-TM picked the accuracy point")
	}
	got, err = Decide(cands, TimeAccuracy)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pred.TimeSec == 10 && got.Pred.Accuracy == 0.72 {
		t.Error("Ex-TA picked the slow low-accuracy point")
	}
	if _, err := Decide(nil, Balance); err == nil {
		t.Error("Decide on empty candidates accepted")
	}
}

// TestDecideAccuracyGuard: a config whose predicted accuracy collapses is
// never chosen, even under time-emphasizing priorities.
func TestDecideAccuracyGuard(t *testing.T) {
	mk := func(t, g, a float64) Point {
		return Point{Pred: estimator.Prediction{TimeSec: t, MemoryGB: g, Accuracy: a, Feasible: true}}
	}
	degenerate := mk(0.1, 0.1, 0.2) // superfast but barely learns
	sane := mk(1, 1, 0.8)
	for _, p := range Priorities() {
		got, err := Decide([]Point{degenerate, sane}, p)
		if err != nil {
			t.Fatal(err)
		}
		if got.Pred.Accuracy == 0.2 {
			t.Errorf("%s picked the degenerate low-accuracy point", p)
		}
	}
}

func TestDecideBalancePrefersDominating(t *testing.T) {
	mk := func(t, g, a float64) Point {
		return Point{Pred: estimator.Prediction{TimeSec: t, MemoryGB: g, Accuracy: a, Feasible: true}}
	}
	good := mk(1, 1, 0.9)
	bad := mk(5, 5, 0.5)
	got, err := Decide([]Point{bad, good}, Balance)
	if err != nil {
		t.Fatal(err)
	}
	if got.Pred.TimeSec != 1 {
		t.Error("Balance did not pick the dominating point")
	}
}

func TestSpaceSizeAndNormalize(t *testing.T) {
	s := smallSpace()
	if s.Size() == 0 {
		t.Error("Size = 0")
	}
	ex := &Explorer{Est: sharedEstimator(t)} // empty space pins to base
	res, err := ex.Explore(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if res.Evaluated != 1 {
		t.Errorf("empty space evaluated %d configs, want exactly the base", res.Evaluated)
	}
}

// TestLayerCountsExplored: the "Model Layers" knob of Fig. 3 produces
// candidates at every admissible depth (fanout-set length must match).
func TestLayerCountsExplored(t *testing.T) {
	space := smallSpace()
	space.LayerCounts = []int{1, 2}
	space.FanoutSets = [][]int{{10}, {10, 5}}
	ex := &Explorer{Est: sharedEstimator(t), Space: space}
	res, err := ex.Explore(baseCfg())
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	depths := map[int]int{}
	for _, p := range res.Candidates {
		depths[p.Cfg.Layers]++
		if p.Cfg.Sampler != backend.SamplerSAINT && len(p.Cfg.Fanouts) != p.Cfg.Layers {
			t.Fatalf("candidate %s has fanouts/layers mismatch", p.Cfg.Label())
		}
	}
	if depths[1] == 0 || depths[2] == 0 {
		t.Errorf("layer depths not both explored: %v", depths)
	}
}

func TestPrioritiesListed(t *testing.T) {
	if len(Priorities()) != 4 {
		t.Errorf("Priorities = %v", Priorities())
	}
	for _, p := range Priorities() {
		wT, wG, wA := p.Weights()
		if wT <= 0 || wG <= 0 || wA <= 0 {
			t.Errorf("priority %s has non-positive weight", p)
		}
	}
}

// TestExploreSweepsDevices: DeviceCounts joins the space. On a
// multi-device platform the explorer evaluates scaled-out leaves; on a
// single-device platform the Validate filter prunes every K > 1 leaf,
// leaving exactly the K=1 enumeration.
func TestExploreSweepsDevices(t *testing.T) {
	est := sharedEstimator(t)
	sp := smallSpace()
	sp.DeviceCounts = []int{1, 2}
	multiBase := baseCfg()
	multiBase.Platform = "rtx4090x2"
	res, err := (&Explorer{Est: est, Space: sp}).Explore(multiBase)
	if err != nil {
		t.Fatal(err)
	}
	single, multi := 0, 0
	for _, c := range res.Candidates {
		if c.Cfg.DeviceCount() > 1 {
			multi++
		} else {
			single++
		}
	}
	if single == 0 || multi == 0 {
		t.Fatalf("device sweep lopsided: %d single-device vs %d multi-device candidates", single, multi)
	}

	// Single-device platform: the K=2 half of the grid is inadmissible,
	// so the evaluation count collapses to the K=1-only space's.
	resSingle, err := (&Explorer{Est: est, Space: sp}).Explore(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	spOne := sp
	spOne.DeviceCounts = []int{1}
	resOne, err := (&Explorer{Est: est, Space: spOne}).Explore(baseCfg())
	if err != nil {
		t.Fatal(err)
	}
	if resSingle.Evaluated != resOne.Evaluated {
		t.Errorf("single-device platform evaluated %d leaves, want the K=1-only %d",
			resSingle.Evaluated, resOne.Evaluated)
	}
	for _, c := range resSingle.Candidates {
		if c.Cfg.DeviceCount() > 1 {
			t.Fatalf("multi-device candidate %s on a single-device platform", c.Cfg.Label())
		}
	}
}

// TestDefaultSpaceIncludesDevices pins the scale-out knob in the
// evaluation grid.
func TestDefaultSpaceIncludesDevices(t *testing.T) {
	if got := DefaultSpace().DeviceCounts; len(got) < 2 || got[0] != 1 {
		t.Fatalf("DefaultSpace().DeviceCounts = %v, want a sweep starting at 1", got)
	}
}
