package dse

import (
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/estimator"
)

// TestExploreParallelEquivalence: the determinism contract of the
// parallel explorer — Candidates, Pareto, counters and every Decide are
// bitwise-identical at any worker count. Run under -race in CI, this is
// also the concurrency soak for estimator.Predict.
func TestExploreParallelEquivalence(t *testing.T) {
	est := sharedEstimator(t)
	space := smallSpace()
	space.Samplers = []backend.SamplerKind{backend.SamplerSAGE, backend.SamplerSAINT}
	space.WalkLengths = []int{8, 12}
	base := baseCfg()

	serial, err := (&Explorer{Est: est, Space: space, Workers: 1}).Explore(base)
	if err != nil {
		t.Fatalf("serial Explore: %v", err)
	}
	if len(serial.Candidates) == 0 {
		t.Fatal("serial exploration found no candidates; equivalence test is vacuous")
	}
	for _, workers := range []int{0, 4, runtime.GOMAXPROCS(0)} {
		res, err := (&Explorer{Est: est, Space: space, Workers: workers}).Explore(base)
		if err != nil {
			t.Fatalf("workers=%d Explore: %v", workers, err)
		}
		if !reflect.DeepEqual(res, serial) {
			t.Fatalf("workers=%d: Result differs from serial (candidates %d vs %d, pareto %d vs %d, evaluated %d vs %d, pruned %d vs %d)",
				workers, len(res.Candidates), len(serial.Candidates),
				len(res.Pareto), len(serial.Pareto),
				res.Evaluated, serial.Evaluated, res.Pruned, serial.Pruned)
		}
		for _, p := range Priorities() {
			want, err1 := Decide(serial.Pareto, p)
			got, err2 := Decide(res.Pareto, p)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("workers=%d %s: Decide error mismatch: %v vs %v", workers, p, err1, err2)
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("workers=%d %s: Decide diverged: %s vs %s",
					workers, p, got.Cfg.Label(), want.Cfg.Label())
			}
		}
	}
}

// mkPt builds a candidate point with the given prediction triple.
func mkPt(T, g, a float64) Point {
	return Point{Pred: estimator.Prediction{TimeSec: T, MemoryGB: g, Accuracy: a, Feasible: true}}
}

// TestParetoFrontMatchesQuadratic cross-checks the sort-and-sweep front
// against the all-pairs reference on random point sets. Values are drawn
// from a coarse grid so ties — the delicate part of the sweep — occur
// constantly.
func TestParetoFrontMatchesQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	grid := func(levels int) float64 {
		return float64(rng.Intn(levels)) / float64(levels-1)
	}
	for _, n := range []int{0, 1, 2, 3, 5, 17, 100, 400} {
		for _, levels := range []int{2, 4, 16} {
			pts := make([]Point, n)
			for i := range pts {
				pts[i] = mkPt(grid(levels), grid(levels), grid(levels))
			}
			want := paretoFrontQuadratic(pts)
			got := ParetoFront(pts)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("n=%d levels=%d: sweep front (%d pts) != quadratic front (%d pts)",
					n, levels, len(got), len(want))
			}
		}
	}
	// Continuous values (ties only at duplicates) for good measure.
	for _, n := range []int{50, 333} {
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = mkPt(rng.Float64(), rng.Float64(), rng.Float64())
		}
		if got, want := ParetoFront(pts), paretoFrontQuadratic(pts); !reflect.DeepEqual(got, want) {
			t.Fatalf("continuous n=%d: sweep front != quadratic front", n)
		}
	}
}

// TestParetoFrontDuplicatesKept: identical non-dominated points all stay
// on the front (they do not dominate each other), in input order.
func TestParetoFrontDuplicatesKept(t *testing.T) {
	dup := mkPt(1, 1, 0.9)
	pts := []Point{dup, mkPt(2, 2, 0.5), dup, mkPt(0.5, 3, 0.7)}
	front := ParetoFront(pts)
	if !reflect.DeepEqual(front, []Point{dup, dup, mkPt(0.5, 3, 0.7)}) {
		t.Fatalf("duplicate handling wrong: %d-point front", len(front))
	}
}

// TestParetoFrontNaNFallback: non-finite coordinates route to the
// quadratic reference instead of corrupting the sweep's sort. Points are
// tagged through Cfg.BatchSize because reflect.DeepEqual can't compare
// NaN predictions (NaN != NaN).
func TestParetoFrontNaNFallback(t *testing.T) {
	pts := []Point{
		mkPt(math.NaN(), 1, 0.9),
		mkPt(1, 1, 0.9),
		mkPt(2, 2, 0.5),
		mkPt(1, math.Inf(1), 0.9),
	}
	for i := range pts {
		pts[i].Cfg.BatchSize = i
	}
	tags := func(front []Point) []int {
		out := make([]int, len(front))
		for i, p := range front {
			out[i] = p.Cfg.BatchSize
		}
		return out
	}
	want := tags(paretoFrontQuadratic(pts))
	got := tags(ParetoFront(pts))
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("NaN input: sweep picked %v, reference %v", got, want)
	}
}

// TestSatisfiedRejectsNonFinite: a NaN or Inf metric can never satisfy
// the constraints, even unconstrained — otherwise it would reach the
// decision maker and poison every score.
func TestSatisfiedRejectsNonFinite(t *testing.T) {
	base := estimator.Prediction{TimeSec: 1, MemoryGB: 1, Accuracy: 0.8, Feasible: true}
	if !(Constraints{}).Satisfied(base) {
		t.Fatal("finite feasible point rejected")
	}
	for name, p := range map[string]estimator.Prediction{
		"nan-time":   {TimeSec: math.NaN(), MemoryGB: 1, Accuracy: 0.8, Feasible: true},
		"inf-time":   {TimeSec: math.Inf(1), MemoryGB: 1, Accuracy: 0.8, Feasible: true},
		"nan-mem":    {TimeSec: 1, MemoryGB: math.NaN(), Accuracy: 0.8, Feasible: true},
		"inf-mem":    {TimeSec: 1, MemoryGB: math.Inf(1), Accuracy: 0.8, Feasible: true},
		"nan-acc":    {TimeSec: 1, MemoryGB: 1, Accuracy: math.NaN(), Feasible: true},
		"neginf-acc": {TimeSec: 1, MemoryGB: 1, Accuracy: math.Inf(-1), Feasible: true},
	} {
		if (Constraints{}).Satisfied(p) {
			t.Errorf("%s accepted", name)
		}
	}
}

// TestDecideAllNaNDoesNotPanic is the regression test for the
// candidates[-1] panic: if every score is NaN (candidates that bypassed
// Satisfied), Decide must return an error, not crash.
func TestDecideAllNaNDoesNotPanic(t *testing.T) {
	cands := []Point{
		mkPt(math.NaN(), 1, 0.5),
		mkPt(math.NaN(), 2, 0.6),
	}
	if _, err := Decide(cands, Balance); err == nil {
		t.Fatal("Decide on all-NaN candidates returned no error")
	}
	// A single finite candidate among NaNs must win.
	cands = append(cands, mkPt(1, 1, math.NaN()), mkPt(3, 3, 0.55))
	got, err := Decide(cands, Balance)
	if err != nil {
		t.Fatalf("Decide with one finite candidate: %v", err)
	}
	if got.Pred.TimeSec != 3 {
		t.Fatalf("Decide picked a NaN-scored candidate: %+v", got.Pred)
	}
}

// TestDecideInfAccuracyCannotEvictFinite: a non-finite candidate must
// not set the accuracy guard band — an +Inf-accuracy point would
// otherwise exclude every finite candidate and fail the decision.
func TestDecideInfAccuracyCannotEvictFinite(t *testing.T) {
	cands := []Point{
		mkPt(1, 1, math.Inf(1)), // bogus prediction, bypassed Satisfied
		mkPt(1, 1, 0.9),
	}
	got, err := Decide(cands, Balance)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if got.Pred.Accuracy != 0.9 {
		t.Fatalf("Decide picked the non-finite candidate: %+v", got.Pred)
	}
	// Same via a non-finite metric on an otherwise high-accuracy point.
	cands = []Point{
		mkPt(1, math.Inf(1), 0.95),
		mkPt(1, 1, 0.8),
	}
	got, err = Decide(cands, Balance)
	if err != nil {
		t.Fatalf("Decide: %v", err)
	}
	if got.Pred.Accuracy != 0.8 {
		t.Fatalf("unscorable point set the guard band: %+v", got.Pred)
	}
}

// TestDecideTieBreakOrderIndependent: equal scores break toward lower
// time, regardless of candidate order.
func TestDecideTieBreakOrderIndependent(t *testing.T) {
	// Symmetric under Balance's equal T/Γ weights: both score identically.
	fast := mkPt(1, 2, 0.8)
	lean := mkPt(2, 1, 0.8)
	a, err := Decide([]Point{fast, lean}, Balance)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Decide([]Point{lean, fast}, Balance)
	if err != nil {
		t.Fatal(err)
	}
	if a.Pred.TimeSec != 1 || b.Pred.TimeSec != 1 {
		t.Fatalf("tie did not break toward lower time: %v / %v", a.Pred.TimeSec, b.Pred.TimeSec)
	}
}

// TestSpaceIsZero distinguishes the genuine zero value from narrow
// single-point spaces (the core.New default-substitution bug).
func TestSpaceIsZero(t *testing.T) {
	if !(Space{}).IsZero() {
		t.Error("zero Space not IsZero")
	}
	one := Space{CacheRatios: []float64{0.15}}
	if one.IsZero() {
		t.Error("single-dimension Space reported zero")
	}
	if one.Size() > 1 {
		t.Errorf("single-point Space Size = %d", one.Size())
	}
	if (Space{Policies: []cache.Policy{cache.LRU}}).IsZero() {
		t.Error("policy-only Space reported zero")
	}
	if smallSpace().IsZero() {
		t.Error("smallSpace reported zero")
	}
}
