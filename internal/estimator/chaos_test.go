package estimator

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/model"
)

// fastRetry shrinks the backoff so chaos tests don't sleep; restore the
// previous policy in defer.
func fastRetry(attempts int) RetryPolicy {
	return RetryPolicy{Attempts: attempts, BaseDelay: time.Microsecond, MaxDelay: 10 * time.Microsecond}
}

// probeCfgs draws a pair of cheap probe configs for the retry tests.
func probeCfgs() []backend.Config {
	return ProbeConfigs(dataset.OgbnArxiv, model.SAGE, "rtx4090", 2, 99)
}

// TestChaosProbeRetryRecovers: transient injected failures at the
// estimator/probe point are absorbed by the backoff loop, and the
// recovered sweep's records are identical to an unfaulted run.
func TestChaosProbeRetryRecovers(t *testing.T) {
	defer faultinject.Reset()
	cfgs := probeCfgs()
	ref, err := CollectWith(cfgs, false, 1)
	if err != nil {
		t.Fatalf("reference collect: %v", err)
	}
	defer SetRetryPolicy(SetRetryPolicy(fastRetry(3)))
	// The first probe fails its first two attempts and succeeds on the
	// third; Count 2 then leaves the schedule exhausted for the second
	// probe — two consecutive failures is exactly what 3 attempts absorb.
	faultinject.Arm(faultinject.EstimatorProbe, faultinject.Spec{Kind: faultinject.Error, Count: 2})
	got, err := CollectWith(cfgs, false, 1)
	faultinject.Reset()
	if err != nil {
		t.Fatalf("collect with transient probe faults: %v", err)
	}
	for i := range ref {
		a, b := *ref[i].Perf, *got[i].Perf
		a.WallSec, b.WallSec = 0, 0
		if !reflect.DeepEqual(a, b) {
			t.Errorf("record %d differs after retry-recovered collection", i)
		}
	}
}

// TestChaosProbeRetryExhausted: a persistent fault (fires on every hit)
// defeats the bounded retry and surfaces as a clean ErrInjected — the
// sweep fails, it does not hang or loop forever.
func TestChaosProbeRetryExhausted(t *testing.T) {
	defer faultinject.Reset()
	defer SetRetryPolicy(SetRetryPolicy(fastRetry(3)))
	faultinject.Arm(faultinject.EstimatorProbe, faultinject.Spec{Kind: faultinject.Error})
	before := faultinject.Hits(faultinject.EstimatorProbe)
	_, err := CollectWith(probeCfgs(), false, 1)
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("exhausted retries returned %v, want ErrInjected", err)
	}
	// The failing probe was tried exactly Attempts times, then gave up
	// (the fan-out short-circuits, so only one probe's attempts count).
	if n := faultinject.Hits(faultinject.EstimatorProbe) - before; n != 3 {
		t.Errorf("probe site hit %d times, want exactly 3 attempts", n)
	}
}

// TestChaosProbeNoRetryOnCancel: context errors are terminal — a
// cancelled calibration sweep stops immediately instead of retrying
// toward an already-dead deadline.
func TestChaosProbeNoRetryOnCancel(t *testing.T) {
	defer faultinject.Reset()
	defer SetRetryPolicy(SetRetryPolicy(fastRetry(5)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	before := faultinject.Hits(faultinject.EstimatorProbe)
	_, err := CollectWith(probeCfgs(), false, 1, backend.Options{Ctx: ctx})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled collect returned %v, want context.Canceled", err)
	}
	if n := faultinject.Hits(faultinject.EstimatorProbe) - before; n != 0 {
		t.Errorf("cancelled sweep still ran %d probe attempts", n)
	}
}
