// Package estimator implements the paper's "gray-box" performance
// estimator (§3.3): the white-box half is the analytic decomposition of
// Eqs. 4–12 (executable in internal/sim), and the black-box half is a set
// of learned regressors for the residual quantities theory cannot pin
// down — the mini-batch overlap penalty of Eq. 12, the cache hit rate, and
// the accuracy delta of Eq. 11.
//
// Prediction composes the two: learned volume models feed the analytic
// timing/memory formulas, so a platform change never requires retraining —
// exactly the property the paper claims for its estimator.
package estimator

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/hw"
	"gnnavigator/internal/model"
	"gnnavigator/internal/nn"
	"gnnavigator/internal/regress"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/sim"
	"gnnavigator/internal/tensor"
)

// GraphStats are the dataset-profiling features of Fig. 2's Step 1
// ("Graph Profiling: e.g. data distribution").
type GraphStats struct {
	LogVertices float64
	AvgDegree   float64
	Alpha       float64 // power-law exponent
	Gini        float64 // degree skew
	Homophily   float64 // same-label edge fraction
	Classes     float64
	FeatDim     float64
	TrainCount  float64
	// ProbeAcc is the validation accuracy of a tiny linear classifier on
	// raw vertex features — a cheap task-difficulty proxy that anchors
	// cross-dataset accuracy prediction (Eq. 11's dataset term).
	ProbeAcc float64
}

// flightCell single-flights one memoized computation: the mutex
// serializes concurrent callers, and done is set only on success, so a
// failed (or panicking) computation is retried by the next caller
// rather than cached for the process lifetime. Both of this package's
// expensive memoizations — dataset stats and baseline accuracy — run
// through it.
type flightCell[T any] struct {
	mu   sync.Mutex
	done bool
	val  T
}

// get returns the cached value, computing it under the cell lock when
// absent.
func (c *flightCell[T]) get(compute func() (T, error)) (T, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.done {
		return c.val, nil
	}
	v, err := compute()
	if err != nil {
		return v, err
	}
	c.val = v
	c.done = true
	return v, nil
}

// cellFor fetches or creates the flight cell for key under the map's
// lock.
func cellFor[T any](mu *sync.Mutex, m map[string]*flightCell[T], key string) *flightCell[T] {
	mu.Lock()
	defer mu.Unlock()
	e, ok := m[key]
	if !ok {
		e = &flightCell[T]{}
		m[key] = e
	}
	return e
}

var (
	statsMu    sync.Mutex
	statsCache = map[string]*flightCell[GraphStats]{}
)

// ProfileDataset computes (and memoizes) GraphStats for d. Safe for
// concurrent use: callers racing on an unprofiled dataset block on a
// single computation rather than duplicating it.
func ProfileDataset(d *dataset.Dataset) GraphStats {
	st, _ := cellFor(&statsMu, statsCache, d.Name).get(func() (GraphStats, error) {
		return computeGraphStats(d), nil
	})
	return st
}

func computeGraphStats(d *dataset.Dataset) GraphStats {
	g := d.Graph
	s := g.Stats()
	var same, total int
	n := g.NumVertices()
	for v := 0; v < n; v++ {
		for _, u := range g.Neighbors(int32(v)) {
			total++
			if g.Labels != nil && g.Labels[u] == g.Labels[v] {
				same++
			}
		}
	}
	hom := 0.0
	if total > 0 {
		hom = float64(same) / float64(total)
	}
	return GraphStats{
		LogVertices: math.Log(float64(n)),
		AvgDegree:   s.Mean,
		Alpha:       s.PowerLawAlpha,
		Gini:        s.GiniCoefficient,
		Homophily:   hom,
		Classes:     float64(g.NumClasses),
		FeatDim:     float64(g.FeatDim),
		TrainCount:  float64(len(d.TrainIdx)),
		ProbeAcc:    probeAccuracy(d),
	}
}

// probeAccuracy trains a small softmax-regression probe on raw features
// (no graph structure) and returns its held-out accuracy.
func probeAccuracy(d *dataset.Dataset) float64 {
	g := d.Graph
	if g.Labels == nil || g.NumClasses < 2 {
		return 0
	}
	rng := rand.New(rand.NewSource(4242))
	pick := func(idx []int32, limit int) []int32 {
		if len(idx) <= limit {
			return idx
		}
		out := make([]int32, limit)
		for i := range out {
			out[i] = idx[rng.Intn(len(idx))]
		}
		return out
	}
	trainIdx := pick(d.TrainIdx, 800)
	valIdx := pick(d.ValIdx, 400)
	lin := nn.NewLinear(rng, "probe", g.FeatDim, g.NumClasses)
	opt := nn.NewAdam(0.05)
	x := model.GatherFeatures(g, trainIdx)
	labels := make([]int32, len(trainIdx))
	for i, v := range trainIdx {
		labels[i] = g.Labels[v]
	}
	for step := 0; step < 40; step++ {
		logits := lin.Forward(x)
		_, dl := nn.SoftmaxCrossEntropy(logits, labels)
		lin.Backward(dl)
		opt.Step(lin.Params())
	}
	xv := model.GatherFeatures(g, valIdx)
	vLabels := make([]int32, len(valIdx))
	for i, v := range valIdx {
		vLabels[i] = g.Labels[v]
	}
	return nn.Accuracy(lin.Forward(xv), vLabels)
}

// RetryPolicy bounds the transient-failure retry loop around each
// calibration profiling run (see CollectWith): up to Attempts total
// tries, sleeping an exponentially growing backoff between them —
// BaseDelay doubled per retry, capped at MaxDelay. Retrying is safe
// because a probe run is deterministic and side-effect-free on failure:
// the package's memoizations (dataset stats, baseline accuracy, the
// calibration cache) single-flight and store success only, so a retry
// re-executes from a clean slate and — when it succeeds — yields the
// exact records an unfaulted run would have produced.
type RetryPolicy struct {
	Attempts  int
	BaseDelay time.Duration
	MaxDelay  time.Duration
}

// DefaultRetryPolicy is the probe retry policy CollectWith starts with:
// three total attempts, 5ms backoff doubling to a 50ms cap — enough to
// ride out transient failures without meaningfully delaying a genuine
// (persistent) one.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Attempts: 3, BaseDelay: 5 * time.Millisecond, MaxDelay: 50 * time.Millisecond}
}

var (
	retryMu    sync.Mutex
	probeRetry = DefaultRetryPolicy()
)

// SetRetryPolicy replaces the probe retry policy and returns the
// previous one (restore it in defer); zero/negative fields fall back to
// the defaults. Attempts 1 disables retrying entirely.
func SetRetryPolicy(p RetryPolicy) RetryPolicy {
	d := DefaultRetryPolicy()
	if p.Attempts < 1 {
		p.Attempts = d.Attempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = d.BaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = d.MaxDelay
	}
	retryMu.Lock()
	defer retryMu.Unlock()
	prev := probeRetry
	probeRetry = p
	return prev
}

func retryPolicy() RetryPolicy {
	retryMu.Lock()
	defer retryMu.Unlock()
	return probeRetry
}

// runProbe executes one calibration profiling run under the retry
// policy. Context errors are terminal: a cancelled sweep must stop, not
// retry its way past the deadline.
func runProbe(cfg backend.Config, opts backend.Options) (*backend.Perf, error) {
	pol := retryPolicy()
	delay := pol.BaseDelay
	var err error
	for attempt := 0; attempt < pol.Attempts; attempt++ {
		if attempt > 0 {
			time.Sleep(delay)
			delay *= 2
			if delay > pol.MaxDelay {
				delay = pol.MaxDelay
			}
		}
		if opts.Ctx != nil {
			if cerr := opts.Ctx.Err(); cerr != nil {
				return nil, cerr
			}
		}
		var perf *backend.Perf
		if err = faultinject.Fire(faultinject.EstimatorProbe); err == nil {
			perf, err = backend.RunWith(cfg, opts)
		}
		if err == nil {
			return perf, nil
		}
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return nil, err
		}
	}
	return nil, err
}

// Record pairs a configuration with its ground-truth performance, as
// measured by actually executing it on the runtime backend.
type Record struct {
	Cfg   backend.Config
	Stats GraphStats
	Perf  *backend.Perf
}

// Collect executes each config on the backend and returns records. When
// withAccuracy is false the NN training step is skipped (records then
// carry zero accuracy and are excluded from accuracy-model training).
// An optional Options value tunes run fidelity knobs (pipeline prefetch,
// parallelism) for every profiling run; SkipTraining is always derived
// from withAccuracy. Perf outputs are bitwise-identical across those
// knobs, so they change profiling wall time only, never the records.
//
// Collect fans the profiling runs — the dominant cost of Step-1
// calibration — out across the process-wide default worker count; use
// CollectWith to pick the width explicitly.
func Collect(cfgs []backend.Config, withAccuracy bool, opts ...backend.Options) ([]Record, error) {
	return CollectWith(cfgs, withAccuracy, 0, opts...)
}

// CollectWith is Collect with an explicit fan-out width: up to `workers`
// backend profiling runs execute concurrently (0 = the process-wide
// tensor worker default, 1 = serial). Every run is deterministic in
// isolation — it owns its sampler, cache, model and RNG chain — and
// records are index-stamped into the cfgs order, so the output is
// identical at every worker count (WallSec, which measures host time,
// is the one informational exception). Transient per-probe failures
// retry with bounded exponential backoff (RetryPolicy); a probe that
// still fails after the last attempt fails the sweep, and context
// cancellation is never retried.
func CollectWith(cfgs []backend.Config, withAccuracy bool, workers int, opts ...backend.Options) ([]Record, error) {
	runOpts := backend.Options{}
	if len(opts) > 0 {
		runOpts = opts[0]
	}
	runOpts.SkipTraining = !withAccuracy
	// Compile once, replay everywhere: probes that share a sampling core
	// (sampler, batch size, seed, epochs — see ProbeConfigs) differ only
	// in cache/model knobs, so they fetch one compiled epoch plan from the
	// shared plan cache instead of each re-sampling the identical stream.
	// Replay is bitwise-identical to live sampling, so records are
	// unchanged; biased probes fall back to live sampling automatically.
	runOpts.SharePlan = true
	if workers <= 0 {
		workers = tensor.Parallelism()
	}
	if workers > 1 && runOpts.Parallelism > 0 {
		// Hoist the per-run tensor override into one scope around the
		// whole fan-out (see tensor.WithParallelism): concurrent RunWith
		// calls each setting and restoring the process-wide worker count
		// would interleave their restores and could leave the override
		// stuck after the last run returns.
		defer tensor.WithParallelism(runOpts.Parallelism)()
		runOpts.Parallelism = 0
	}
	out := make([]Record, len(cfgs))
	// The fan-out short-circuits like the old serial loop: after the
	// first failure the remaining (expensive) profiling runs are skipped,
	// not executed.
	if err := tensor.ForEachIndexErr(len(cfgs), workers, func(i int) error {
		cfg := cfgs[i]
		ds, err := dataset.Load(cfg.Dataset)
		if err != nil {
			return err
		}
		perf, err := runProbe(cfg, runOpts)
		if err != nil {
			return fmt.Errorf("estimator: collect %s: %w", cfg.Label(), err)
		}
		out[i] = Record{Cfg: cfg, Stats: ProfileDataset(ds), Perf: perf}
		return nil
	}); err != nil {
		return nil, err
	}
	return out, nil
}

// samplingCore is the subset of probe knobs that determines an epoch
// plan (the plan.Key dimensions): sampler shape, batch size and seed.
// Probes built over the same core sample identical streams, so their
// profiling runs share one compiled plan (Collect sets SharePlan).
type samplingCore struct {
	sampler    backend.SamplerKind
	batchSize  int
	fanouts    []int
	walkLength int
	seed       int64
}

// ProbeConfigs draws n randomized configurations on a dataset, spanning
// the design space, for estimator training. The draw is structured as a
// pool of ~2n/3 sampling cores crossed with per-probe cache/model knobs:
// the cache dimensions (ratio, policy, bias) are what the estimator must
// learn to separate, and reusing cores across them means the calibration
// fan-out compiles each unique epoch plan once and replays it for every
// probe that shares it. The pool deliberately stays close to the probe
// count: probes sharing a core also share their accuracy label (same
// stream, same model seed), so an aggressively small pool starves the
// accuracy regressor of distinct observations. Two thirds keeps ~1/3 of
// sampling work deduplicated without measurably hurting Table-2 MSE.
func ProbeConfigs(dsName string, kind model.Kind, platform string, n int, seed int64) []backend.Config {
	rng := rand.New(rand.NewSource(seed))
	batchSizes := []int{256, 512, 1024, 2048}
	fanoutSets := [][]int{{5, 5}, {10, 5}, {10, 10}, {15, 8}, {25, 10}}
	ratios := []float64{0, 0.05, 0.1, 0.2, 0.35, 0.5}
	cores := make([]samplingCore, max(2, (2*n+2)/3))
	for i := range cores {
		c := samplingCore{
			sampler:   backend.SamplerSAGE,
			batchSize: batchSizes[rng.Intn(len(batchSizes))],
			fanouts:   fanoutSets[rng.Intn(len(fanoutSets))],
			seed:      rng.Int63(),
		}
		switch rng.Intn(5) {
		case 0:
			c.sampler = backend.SamplerSAINT
			c.fanouts = nil
			c.walkLength = 4 + rng.Intn(12)
		case 1:
			c.sampler = backend.SamplerFastGCN
		}
		cores[i] = c
	}
	out := make([]backend.Config, 0, n)
	for len(out) < n {
		core := cores[rng.Intn(len(cores))]
		cfg := backend.Config{
			Dataset:  dsName,
			Platform: platform,
			Model:    kind,
			Hidden:   32,
			Layers:   2,
			Heads:    2,
			Epochs:   2,
			LR:       0.01,
			Seed:     core.seed,

			Sampler:     core.sampler,
			BatchSize:   core.batchSize,
			Fanouts:     core.fanouts,
			WalkLength:  core.walkLength,
			CacheRatio:  ratios[rng.Intn(len(ratios))],
			CachePolicy: cache.None,
		}
		if cfg.CacheRatio > 0 {
			switch rng.Intn(5) {
			case 0:
				cfg.CachePolicy = cache.Static
				if rng.Intn(2) == 0 && cfg.Sampler == backend.SamplerSAGE {
					cfg.BiasRate = 0.5 + 0.4*rng.Float64()
				}
			case 1:
				cfg.CachePolicy = cache.FIFO
			case 2:
				cfg.CachePolicy = cache.Freq
			case 3:
				cfg.CachePolicy = cache.Opt
			default:
				cfg.CachePolicy = cache.LRU
			}
		}
		// Precision is drawn independently of the cache dimensions (it
		// matters at ratio 0 too: the uncached transfer payload and the
		// quantization accuracy cost remain), float32-biased so the
		// baseline stays well represented.
		switch rng.Intn(3) {
		case 1:
			cfg.Precision = cache.Float16
		case 2:
			cfg.Precision = cache.Int8
		}
		// On multi-device platforms, roughly half the probes scale out so
		// the time residual sees the comm-overhead-vs-K-speedup tradeoff
		// (power-of-two counts up to the platform's; single-device
		// platforms never draw one). The partitioner alternates too.
		if maxDev := hw.Profiles()[platform].DeviceCount(); maxDev > 1 && rng.Intn(2) == 0 {
			k := 2
			for k*2 <= maxDev && rng.Intn(2) == 0 {
				k *= 2
			}
			cfg.Devices = k
			if rng.Intn(2) == 0 {
				cfg.Partition = graph.PartitionHash
			}
		}
		if cfg.Validate() != nil {
			continue
		}
		out = append(out, cfg)
	}
	return out
}

// features builds the shared regression feature vector from a config and
// its dataset stats. The white-box quantities (the analytic Eq. 12 bound,
// effective fanouts) are features too — that is what makes the residual
// models "gray".
func features(cfg backend.Config, st GraphStats) []float64 {
	b0 := float64(cfg.BatchSize)
	bound := analyticBound(cfg, st)
	var sumFan, minFan float64
	minFan = math.Inf(1)
	for _, k := range cfg.Fanouts {
		kk := math.Min(float64(k), st.AvgDegree)
		sumFan += kk
		if kk < minFan {
			minFan = kk
		}
	}
	if len(cfg.Fanouts) == 0 {
		sumFan = float64(cfg.WalkLength)
		minFan = 1
	}
	policy := 0.0
	switch cfg.CachePolicy {
	case cache.Static:
		policy = 1
	case cache.FIFO:
		policy = 2
	case cache.LRU:
		policy = 3
	case cache.Freq:
		policy = 4
	case cache.Opt:
		policy = 5
	}
	samplerCode := 0.0
	switch cfg.Sampler {
	case backend.SamplerFastGCN:
		samplerCode = 1
	case backend.SamplerSAINT:
		samplerCode = 2
	}
	return []float64{
		math.Log(b0),
		math.Log(bound) - math.Log(b0), // analytic expansion factor
		float64(len(cfg.Fanouts)),
		sumFan,
		minFan,
		float64(cfg.WalkLength),
		cfg.CacheRatio,
		policy,
		cfg.BiasRate,
		samplerCode,
		float64(cfg.Hidden) / 64,
		float64(cfg.Epochs),
		st.LogVertices,
		st.AvgDegree / 50,
		st.Alpha,
		st.Gini,
		st.Homophily,
		st.Classes / 10,
		st.ProbeAcc,
		math.Log(b0) - st.LogVertices, // batch/graph size ratio
		// Feature-plane storage width relative to float32 (1, 0.5, 0.25):
		// the accuracy regressor reads the quantization cost off it, the
		// time/memory residuals the payload shrinkage.
		float64(cfg.FeaturePrecision().BytesPerScalar()) / 4,
		// Scale-out: the device count K (time residuals read the K-divided
		// compute/transfer terms and the comm overhead off it; accuracy is
		// K-invariant by the determinism contract) and the partitioner
		// (greedy 0, hash 1 — hash cuts more edges, so more halo traffic).
		math.Log2(float64(cfg.DeviceCount())),
		partitionCode(cfg),
	}
}

// partitionCode encodes the partition strategy for the regressors:
// greedy (the default) 0, hash 1. Single-device configs read 0 — the
// partitioner is inert there.
func partitionCode(cfg backend.Config) float64 {
	if cfg.DeviceCount() > 1 && cfg.PartitionStrategy() == graph.PartitionHash {
		return 1
	}
	return 0
}

// collisionDistinct is the balls-in-bins expectation for the number of
// distinct vertices hit by `draws` (possibly repeated) vertex draws from a
// pool of n: n·(1 - e^(-draws/n)). This is the executable form of Eq. 12's
// f_overlapping: the analytic bound shrunk by expected overlap. The
// learned residual then corrects for non-uniform (degree-skewed,
// locality-biased) draws.
func collisionDistinct(draws, n float64) float64 {
	if n <= 0 {
		return 0
	}
	return n * (1 - math.Exp(-draws/n))
}

// analyticBatch is the white-box E[|V_i|]: the τ=1 bound pushed through
// the collision model.
func analyticBatch(cfg backend.Config, st GraphStats) float64 {
	n := math.Exp(st.LogVertices)
	v := collisionDistinct(analyticBound(cfg, st), n)
	return math.Max(v, float64(cfg.BatchSize))
}

// analyticEdges is the white-box expected sampled edge count per batch:
// per-layer destination widths interpolate geometrically between the
// target count and vi, each destination sampling keff neighbors.
func analyticEdges(cfg backend.Config, st GraphStats, vi float64) float64 {
	b0 := math.Max(float64(cfg.BatchSize), 1)
	if vi < b0 {
		vi = b0
	}
	switch cfg.Sampler {
	case backend.SamplerSAINT:
		// Induced subgraph: each vertex keeps roughly deg·(vi/n) of its
		// neighbors, floored by the walk path edges themselves.
		n := math.Exp(st.LogVertices)
		induced := vi * st.AvgDegree * math.Min(vi/n, 1) * float64(max(cfg.Layers, 1))
		return math.Max(induced, 2*vi)
	default:
		L := len(cfg.Fanouts)
		if L == 0 {
			return 2 * vi
		}
		var edges float64
		for l := 0; l < L; l++ {
			// GNN layer l's dst width; hop index is L-1-l.
			dst := vi * math.Pow(b0/vi, float64(l+1)/float64(L))
			keff := math.Min(float64(cfg.Fanouts[L-1-l]), st.AvgDegree)
			edges += dst * keff
		}
		return edges
	}
}

// fullScaleBound is the τ=1 bound of Eq. 12 at paper scale (fanouts
// capped by the full-scale average degree) — the same rule the backend
// uses to cap its effective vertex scale.
func fullScaleBound(cfg backend.Config, ds *dataset.Dataset) float64 {
	b0 := float64(cfg.BatchSize)
	switch cfg.Sampler {
	case backend.SamplerSAINT:
		return b0 * float64(cfg.WalkLength+1)
	case backend.SamplerFastGCN:
		total := b0
		for _, k := range cfg.Fanouts {
			total += float64(k) * b0 / 2
		}
		return total
	default:
		prod := b0
		for _, k := range cfg.Fanouts {
			kk := float64(k)
			if kk > ds.FullAvgDegree {
				kk = ds.FullAvgDegree
			}
			prod *= 1 + kk
		}
		return prod
	}
}

// analyticBound is the τ=1 upper bound of Eq. 12, per sampler family.
func analyticBound(cfg backend.Config, st GraphStats) float64 {
	switch cfg.Sampler {
	case backend.SamplerSAINT:
		// Each root contributes at most WalkLength+1 distinct vertices.
		return float64(cfg.BatchSize) * float64(cfg.WalkLength+1)
	case backend.SamplerFastGCN:
		// Per-hop budgets cap growth at fanout*b0/2 new vertices per hop.
		total := float64(cfg.BatchSize)
		for _, k := range cfg.Fanouts {
			total += float64(k*cfg.BatchSize) / 2
		}
		return total
	default:
		// Node-wise: |B0|·Π(1+k_l), with k capped by the average degree.
		fan := make([]int, len(cfg.Fanouts))
		for i, k := range cfg.Fanouts {
			fan[i] = int(math.Min(float64(k), st.AvgDegree+1))
		}
		return sample.AnalyticBatchSize(cfg.BatchSize, fan, 1)
	}
}

// Estimator is the trained gray-box model. After Train returns, every
// prediction method is read-only and safe for concurrent use — the DSE
// explorer fans Predict out across a worker pool.
type Estimator struct {
	// batchRatio predicts log(measured |V_i| / analytic bound) ≤ 0: the
	// learned f_overlapping of Eq. 12.
	batchRatio regress.Regressor
	// edgePerVertex predicts sampled edges / |V_i|.
	edgePerVertex regress.Regressor
	// hitRate predicts the average cache hit rate (Eq. 5–6's hit term).
	hitRate regress.Regressor
	// acc predicts δAcc, the accuracy change relative to the dataset's
	// unbiased-sampling baseline — exactly Eq. 11's formulation ("taking
	// the training accuracy with unbiased sampling as the baseline, the
	// estimator measures the accuracy changes δAcc").
	acc regress.Regressor
	// peakRatio predicts peak/mean batch size.
	peakRatio regress.Regressor

	accTrained bool
}

var (
	baselineMu  sync.Mutex
	baselineAcc = map[string]*flightCell[float64]{}
)

// BaselineAccuracy returns (memoized) the validation accuracy of the
// canonical unbiased configuration on a dataset — the reference point of
// Eq. 11. It costs one short backend run per (dataset, epochs) per
// process; concurrent callers for the same key block on that single run,
// and a failed run is retried on the next call (flightCell caches
// success only).
func BaselineAccuracy(dsName string, epochs int) (float64, error) {
	key := fmt.Sprintf("%s/%d", dsName, epochs)
	return cellFor(&baselineMu, baselineAcc, key).get(func() (float64, error) {
		cfg := backend.Config{
			Dataset: dsName, Platform: "rtx4090", Model: model.SAGE,
			Hidden: 32, Layers: 2, Epochs: epochs, LR: 0.01, Seed: 4242,
			Sampler: backend.SamplerSAGE, BatchSize: 1024, Fanouts: []int{10, 5},
			CachePolicy: cache.None,
		}
		perf, err := backend.Run(cfg)
		if err != nil {
			return 0, fmt.Errorf("estimator: baseline run on %s: %w", dsName, err)
		}
		return perf.Accuracy, nil
	})
}

// Train fits the estimator on ground-truth records. Records with zero
// accuracy (SkipTraining collections) still train the volume models.
func Train(records []Record) (*Estimator, error) {
	if len(records) < 8 {
		return nil, fmt.Errorf("estimator: need at least 8 records, have %d", len(records))
	}
	var X [][]float64
	var yBatch, yEdge, yHit, yPeak []float64
	var Xacc [][]float64
	var yAcc []float64
	for _, r := range records {
		f := features(r.Cfg, r.Stats)
		X = append(X, f)
		ratio := r.Perf.MeanBatchSize / analyticBatch(r.Cfg, r.Stats)
		yBatch = append(yBatch, math.Log(clamp(ratio, 1e-3, 10)))
		eRatio := r.Perf.MeanBatchEdges / math.Max(analyticEdges(r.Cfg, r.Stats, r.Perf.MeanBatchSize), 1)
		yEdge = append(yEdge, math.Log(clamp(eRatio, 1e-3, 10)))
		yHit = append(yHit, r.Perf.HitRate)
		yPeak = append(yPeak, float64(r.Perf.PeakBatchSize)/math.Max(r.Perf.MeanBatchSize, 1))
		if len(r.Perf.AccuracyHistory) > 0 {
			base, err := BaselineAccuracy(r.Cfg.Dataset, r.Cfg.Epochs)
			if err != nil {
				return nil, err
			}
			Xacc = append(Xacc, f)
			yAcc = append(yAcc, r.Perf.Accuracy-base)
		}
	}
	e := &Estimator{
		// Ridge on log-residuals: the analytic core carries the shape, so
		// the learned part stays low-variance and generalizes across
		// datasets (the Table 2 leave-one-out setting).
		batchRatio:    &regress.Ridge{Lambda: 2},
		edgePerVertex: &regress.Ridge{Lambda: 2},
		hitRate:       &regress.Forest{Trees: 40, MaxDepth: 5, Seed: 13},
		peakRatio:     &regress.Tree{MaxDepth: 4},
		acc:           &regress.Forest{Trees: 50, MaxDepth: 6, Seed: 14},
	}
	if err := e.batchRatio.Fit(X, yBatch); err != nil {
		return nil, err
	}
	if err := e.edgePerVertex.Fit(X, yEdge); err != nil {
		return nil, err
	}
	if err := e.hitRate.Fit(X, yHit); err != nil {
		return nil, err
	}
	if err := e.peakRatio.Fit(X, yPeak); err != nil {
		return nil, err
	}
	if len(Xacc) >= 8 {
		if err := e.acc.Fit(Xacc, yAcc); err != nil {
			return nil, err
		}
		e.accTrained = true
	}
	return e, nil
}

// Prediction is the estimator's output for one candidate configuration.
type Prediction struct {
	TimeSec   float64
	MemoryGB  float64
	Accuracy  float64
	BatchSize float64 // predicted mean |V_i|
	HitRate   float64
	Feasible  bool
	Breakdown sim.MemoryBreakdown
}

// PredictBatchSize returns the gray-box E[|V_i|] of Eq. 12 for cfg: the
// analytic collision model scaled by the learned residual.
func (e *Estimator) PredictBatchSize(cfg backend.Config, st GraphStats) float64 {
	base := analyticBatch(cfg, st)
	ratio := math.Exp(e.batchRatio.Predict(features(cfg, st)))
	v := base * clamp(ratio, 0.05, 5)
	// A batch can never be smaller than its seed set or larger than the
	// graph.
	return clamp(v, float64(cfg.BatchSize), math.Exp(st.LogVertices))
}

// Predict estimates Perf⟨T, Γ, Acc⟩ for cfg without executing it. Safe
// for concurrent use: the regressors are read-only after Train, and the
// memoized dataset stats / baseline accuracy lookups single-flight their
// first computation.
func (e *Estimator) Predict(cfg backend.Config) (Prediction, error) {
	if err := cfg.Validate(); err != nil {
		return Prediction{}, err
	}
	ds, err := dataset.Load(cfg.Dataset)
	if err != nil {
		return Prediction{}, err
	}
	st := ProfileDataset(ds)
	f := features(cfg, st)
	plat := hw.Profiles()[cfg.Platform]

	vi := e.PredictBatchSize(cfg, st)
	edgeRatio := math.Exp(e.edgePerVertex.Predict(f))
	edges := analyticEdges(cfg, st, vi) * clamp(edgeRatio, 0.05, 5)
	hit := clamp(e.hitRate.Predict(f), 0, 1)
	if cfg.CacheRatio == 0 {
		hit = 0
	}
	miss := vi * (1 - hit)
	var updates float64
	if cfg.CachePolicy.Dynamic() {
		updates = 2 * miss
	}

	// Analytic FLOPs via the real per-layer formulas on predicted counts.
	flops, err := analyticFLOPs(cfg, ds, vi, edges)
	if err != nil {
		return Prediction{}, err
	}

	// Mirror the backend's effective-scale rule: the expected full-scale
	// batch is the collision form N_full·(1-e^(-bound/N_full)).
	nFull := float64(ds.FullVertices)
	collisionFull := nFull * (1 - math.Exp(-fullScaleBound(cfg, ds)/nFull))
	scale := ds.Scale
	if b := collisionFull / math.Max(vi, 1); b < scale {
		scale = b
	}
	if scale < 1 {
		scale = 1
	}
	wl := sim.Workload{VertexScale: scale, FeatDim: ds.FullFeatDim, BytesPerScalar: 4,
		Precision: cfg.FeaturePrecision(), Devices: cfg.DeviceCount()}
	walkSteps := 0
	if cfg.Sampler == backend.SamplerSAINT {
		walkSteps = cfg.WalkLength * cfg.BatchSize
	}
	// Scale-out comm volumes: under a random (owner-uniform) partition a
	// batch row is remote with probability (K-1)/K, so the expected halo
	// payload is that fraction of the batch's rows at the scaled storage
	// width (greedy partitions cut less; the time residual corrects). The
	// all-reduce moves the full-scale parameter payload each step.
	var haloBytes, arBytes float64
	if k := float64(cfg.DeviceCount()); k > 1 {
		haloBytes = vi * (k - 1) / k * float64(cfg.FeaturePrecision().RowBytes(ds.Graph.FeatDim))
		arBytes = float64(analyticParams(cfg, ds)) * 4
	}
	vols := sim.BatchVolumes{
		SampledVertices:  int(vi),
		TargetVertices:   cfg.BatchSize,
		InputVertices:    int(vi),
		MissVertices:     int(miss),
		CacheUpdateOps:   int(updates),
		SampledEdges:     int(edges),
		FLOPs:            flops,
		FeatureFLOPShare: featShare(cfg, ds),
		ScaledFeatDim:    ds.Graph.FeatDim,
		Layers:           cfg.Layers,
		WalkSteps:        walkSteps,
		HaloBytes:        haloBytes,
		AllReduceBytes:   arBytes,
	}
	bt := sim.EstimateBatch(vols, plat, wl)
	nIter := math.Ceil(float64(len(ds.TrainIdx)) / float64(cfg.BatchSize))
	timeSec := nIter * bt.Critical()

	peak := vi * math.Max(e.peakRatio.Predict(f), 1)
	hidden := 0
	for l := 0; l < cfg.Layers; l++ {
		if l == cfg.Layers-1 {
			hidden += ds.Graph.NumClasses
		} else {
			hidden += cfg.Hidden
		}
	}
	mem := sim.EstimateMemory(sim.MemoryVolumes{
		ModelParams:       analyticParams(cfg, ds),
		CacheVertices:     cfg.FeaturePrecision().EffectiveCacheRows(cfg.CacheRatio, float64(ds.FullVertices), ds.FullFeatDim),
		PeakBatchVertices: int(peak),
		PeakBatchEdges:    int(edges * math.Max(e.peakRatio.Predict(f), 1)),
		HiddenDims:        hidden,
		MaxWidth:          cfg.Hidden,
		Layers:            cfg.Layers,
	}, wl)

	pred := Prediction{
		TimeSec:   timeSec,
		MemoryGB:  mem.Total() / 1e9,
		BatchSize: vi,
		HitRate:   hit,
		Feasible:  sim.FitsDevice(mem, plat, 0.02),
		Breakdown: mem,
	}
	if e.accTrained {
		base, err := BaselineAccuracy(cfg.Dataset, cfg.Epochs)
		if err != nil {
			return Prediction{}, err
		}
		pred.Accuracy = clamp(base+e.acc.Predict(f), 0, 1)
	}
	return pred, nil
}

// analyticFLOPs prices predicted batch volumes using the real model layer
// formulas, with per-layer widths interpolated geometrically between the
// target count (output side) and |V_i| (input side).
func analyticFLOPs(cfg backend.Config, ds *dataset.Dataset, vi, edges float64) (float64, error) {
	mdl, err := model.New(model.Config{
		Kind: cfg.Model, InDim: ds.Graph.FeatDim, Hidden: cfg.Hidden,
		OutDim: ds.Graph.NumClasses, Layers: cfg.Layers, Heads: cfg.Heads, Seed: 1,
	})
	if err != nil {
		return 0, err
	}
	L := cfg.Layers
	mb := &sample.MiniBatch{Blocks: make([]sample.Block, L)}
	b0 := math.Max(float64(cfg.BatchSize), 1)
	if vi < b0 {
		vi = b0
	}
	for l := 0; l < L; l++ {
		// Layer l consumes src width s_l and produces dst width s_{l+1},
		// where s_0 = vi (inputs) and s_L = b0 (targets).
		sl := vi * math.Pow(b0/vi, float64(l)/float64(L))
		sl1 := vi * math.Pow(b0/vi, float64(l+1)/float64(L))
		el := edges * sl1 / vi
		mb.Blocks[l] = fakeBlock(int(sl), int(sl1), int(el))
	}
	mb.InputNodes = mb.Blocks[0].SrcNodes
	return mdl.FLOPs(mb), nil
}

// fakeBlock allocates a structurally valid block with the requested counts
// (contents are irrelevant; only sizes feed the FLOPs formulas).
func fakeBlock(src, dst, edges int) sample.Block {
	if dst < 1 {
		dst = 1
	}
	if src < dst {
		src = dst
	}
	if edges < 0 {
		edges = 0
	}
	off := make([]int32, dst+1)
	for i := 1; i <= dst; i++ {
		off[i] = int32(edges * i / dst)
	}
	return sample.Block{
		SrcNodes: make([]int32, src),
		DstCount: dst,
		Offsets:  off,
		Indices:  make([]int32, edges),
	}
}

func featShare(cfg backend.Config, ds *dataset.Dataset) float64 {
	in := float64(ds.Graph.FeatDim)
	rest := float64(cfg.Hidden) * math.Max(float64(cfg.Layers-1), 1)
	return in / (in + rest)
}

// analyticParams computes |Φ| at paper scale (first-layer weights grow
// with the full attribute dimension).
func analyticParams(cfg backend.Config, ds *dataset.Dataset) int {
	in := ds.FullFeatDim
	hidden := cfg.Hidden
	out := ds.Graph.NumClasses
	total := 0
	for l := 0; l < cfg.Layers; l++ {
		li := hidden
		if l == 0 {
			li = in
		}
		lo := hidden
		if l == cfg.Layers-1 {
			lo = out
		}
		switch cfg.Model {
		case model.SAGE:
			total += 2*li*lo + 2*lo
		case model.GAT:
			total += li*lo + 3*lo
		default:
			total += li*lo + lo
		}
	}
	return total
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
