package estimator

import (
	"testing"

	"gnnavigator/internal/dataset"
	"gnnavigator/internal/model"
)

func TestBaselineAccuracyMemoized(t *testing.T) {
	a, err := BaselineAccuracy(dataset.OgbnArxiv, 2)
	if err != nil {
		t.Fatalf("BaselineAccuracy: %v", err)
	}
	if a <= 0.1 || a >= 1 {
		t.Errorf("baseline accuracy %v out of sane range", a)
	}
	b, err := BaselineAccuracy(dataset.OgbnArxiv, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("memoized baseline differs across calls")
	}
	if _, err := BaselineAccuracy("no-such-dataset", 2); err == nil {
		t.Error("unknown dataset accepted")
	}
}

func TestProfileDatasetMemoized(t *testing.T) {
	d := dataset.MustLoad(dataset.OgbnProducts)
	a := ProfileDataset(d)
	b := ProfileDataset(d)
	if a != b {
		t.Error("ProfileDataset not deterministic/memoized")
	}
	if a.ProbeAcc <= 0 || a.ProbeAcc > 1 {
		t.Errorf("ProbeAcc = %v out of range", a.ProbeAcc)
	}
}

// TestProbeAccTracksTaskDifficulty: products (low noise, high homophily)
// must have a higher linear-probe accuracy than reddit2 (high noise).
func TestProbeAccTracksTaskDifficulty(t *testing.T) {
	pr := ProfileDataset(dataset.MustLoad(dataset.OgbnProducts))
	rd2 := ProfileDataset(dataset.MustLoad(dataset.Reddit2))
	if pr.ProbeAcc <= rd2.ProbeAcc {
		t.Errorf("probe accuracy ordering wrong: PR %.3f <= RD2 %.3f", pr.ProbeAcc, rd2.ProbeAcc)
	}
}

// TestPredictionTimeRespondsToPlatform: the same config must be predicted
// slower on the weak device — without retraining, because the platform
// enters only through the white-box half.
func TestPredictionTimeRespondsToPlatform(t *testing.T) {
	recs, err := CollectCached(dataset.OgbnArxiv, model.SAGE, "rtx4090", 24, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Train(recs)
	if err != nil {
		t.Fatal(err)
	}
	cfg := recs[0].Cfg
	fast, err := e.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Platform = "m90"
	slow, err := e.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if slow.TimeSec <= fast.TimeSec {
		t.Errorf("M90 predicted %.4fs, not slower than RTX4090 %.4fs", slow.TimeSec, fast.TimeSec)
	}
}

func TestCollisionDistinct(t *testing.T) {
	// Far below pool size: nearly no collisions.
	if got := collisionDistinct(10, 1e9); got < 9.9 || got > 10 {
		t.Errorf("collisionDistinct(10, 1e9) = %v", got)
	}
	// Far above pool size: saturates at the pool.
	if got := collisionDistinct(1e9, 100); got < 99.9 || got > 100 {
		t.Errorf("collisionDistinct(1e9, 100) = %v", got)
	}
	if got := collisionDistinct(5, 0); got != 0 {
		t.Errorf("collisionDistinct with empty pool = %v", got)
	}
}
