package estimator

import (
	"math"
	"testing"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/model"
	"gnnavigator/internal/regress"
)

func TestProfileDataset(t *testing.T) {
	d := dataset.MustLoad(dataset.Reddit2)
	st := ProfileDataset(d)
	if st.LogVertices <= 0 || st.AvgDegree <= 0 {
		t.Errorf("degenerate stats: %+v", st)
	}
	if st.Homophily < 0.4 {
		t.Errorf("homophily = %v, want the planted structure (>0.4)", st.Homophily)
	}
	if st.Gini < 0.1 {
		t.Errorf("gini = %v, want skewed", st.Gini)
	}
}

func TestProbeConfigsValid(t *testing.T) {
	cfgs := ProbeConfigs(dataset.OgbnArxiv, model.SAGE, "rtx4090", 30, 5)
	if len(cfgs) != 30 {
		t.Fatalf("got %d configs, want 30", len(cfgs))
	}
	var saint, cached, biased int
	for _, c := range cfgs {
		if err := c.Validate(); err != nil {
			t.Errorf("invalid probe config %s: %v", c.Label(), err)
		}
		if c.Sampler == backend.SamplerSAINT {
			saint++
		}
		if c.CacheRatio > 0 {
			cached++
		}
		if c.BiasRate > 0 {
			biased++
		}
	}
	if saint == 0 || cached == 0 {
		t.Errorf("probe grid lacks diversity: saint=%d cached=%d biased=%d", saint, cached, biased)
	}
}

// trainedEstimator collects a small calibration set once per test binary.
func trainedEstimator(t *testing.T) (*Estimator, []Record) {
	t.Helper()
	recs, err := CollectCached(dataset.OgbnArxiv, model.SAGE, "rtx4090", 24, 7, true)
	if err != nil {
		t.Fatalf("CollectCached: %v", err)
	}
	e, err := Train(recs)
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	return e, recs
}

func TestTrainRequiresRecords(t *testing.T) {
	if _, err := Train(nil); err == nil {
		t.Error("Train on empty records accepted")
	}
}

func TestPredictInSaneRanges(t *testing.T) {
	e, recs := trainedEstimator(t)
	for _, r := range recs[:5] {
		p, err := e.Predict(r.Cfg)
		if err != nil {
			t.Fatalf("Predict: %v", err)
		}
		if p.TimeSec <= 0 || p.MemoryGB <= 0 {
			t.Errorf("non-positive prediction: %+v", p)
		}
		if p.Accuracy < 0 || p.Accuracy > 1 {
			t.Errorf("accuracy %v out of [0,1]", p.Accuracy)
		}
		if p.BatchSize < float64(r.Cfg.BatchSize) {
			t.Errorf("predicted |Vi| %v below batch size %d", p.BatchSize, r.Cfg.BatchSize)
		}
		if p.HitRate < 0 || p.HitRate > 1 {
			t.Errorf("hit rate %v out of [0,1]", p.HitRate)
		}
	}
}

func TestSelfValidationStrong(t *testing.T) {
	// In-sample validation must be strong — this bounds implementation
	// error, not generalization.
	e, recs := trainedEstimator(t)
	v, err := Validate(e, recs)
	if err != nil {
		t.Fatal(err)
	}
	if v.R2Time < 0.6 {
		t.Errorf("in-sample R2(T) = %.3f, want >= 0.6", v.R2Time)
	}
	if v.R2Memory < 0.8 {
		t.Errorf("in-sample R2(Γ) = %.3f, want >= 0.8", v.R2Memory)
	}
	if v.R2Batch < 0.8 {
		t.Errorf("in-sample R2(|Vi|) = %.3f, want >= 0.8", v.R2Batch)
	}
	if math.IsNaN(v.MSEAcc) || v.MSEAcc > 0.05 {
		t.Errorf("in-sample MSE(Acc) = %v, want <= 0.05", v.MSEAcc)
	}
}

// TestCrossDatasetGeneralization is the Table-2 scenario in miniature:
// train on one dataset's probes, predict batch sizes on another.
func TestCrossDatasetGeneralization(t *testing.T) {
	if testing.Short() {
		t.Skip("cross-dataset calibration is slow")
	}
	trainRecs, err := CollectCached(dataset.OgbnArxiv, model.SAGE, "rtx4090", 24, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Train(trainRecs)
	if err != nil {
		t.Fatal(err)
	}
	testRecs, err := CollectCached(dataset.Reddit2, model.SAGE, "rtx4090", 12, 8, false)
	if err != nil {
		t.Fatal(err)
	}
	var pred, truth []float64
	for _, r := range testRecs {
		pred = append(pred, e.PredictBatchSize(r.Cfg, r.Stats))
		truth = append(truth, r.Perf.MeanBatchSize)
	}
	if r2 := regress.R2(pred, truth); r2 < 0.3 {
		t.Errorf("cross-dataset R2(|Vi|) = %.3f, want >= 0.3", r2)
	}
}

// TestGrayBoxBeatsBlackBox reproduces Fig. 5's claim on held-out configs.
func TestGrayBoxBeatsBlackBox(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow")
	}
	recs, err := CollectCached(dataset.OgbnArxiv, model.SAGE, "rtx4090", 24, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	train, test := recs[:16], recs[16:]
	e, err := Train(train)
	if err != nil {
		t.Fatal(err)
	}
	bb, err := TrainBlackBoxBatchSize(train)
	if err != nil {
		t.Fatal(err)
	}
	var gb, bbp, truth []float64
	for _, r := range test {
		gb = append(gb, e.PredictBatchSize(r.Cfg, r.Stats))
		bbp = append(bbp, bb.Predict(r.Cfg))
		truth = append(truth, r.Perf.MeanBatchSize)
	}
	gbErr := regress.MSE(gb, truth)
	bbErr := regress.MSE(bbp, truth)
	if gbErr >= bbErr {
		t.Errorf("gray-box MSE %.1f >= black-box MSE %.1f on held-out configs", gbErr, bbErr)
	}
}

func TestPredictRejectsInvalidConfig(t *testing.T) {
	e, _ := trainedEstimator(t)
	bad := backend.Config{Dataset: "nope"}
	if _, err := e.Predict(bad); err == nil {
		t.Error("invalid config accepted")
	}
}

func TestPredictionRespondsToCacheRatio(t *testing.T) {
	e, recs := trainedEstimator(t)
	base := recs[0].Cfg
	base.CacheRatio = 0
	base.CachePolicy = cache.None
	base.BiasRate = 0
	noCache, err := e.Predict(base)
	if err != nil {
		t.Fatal(err)
	}
	big := base
	big.CacheRatio = 0.5
	big.CachePolicy = cache.Static
	withCache, err := e.Predict(big)
	if err != nil {
		t.Fatal(err)
	}
	if withCache.MemoryGB <= noCache.MemoryGB {
		t.Errorf("cache memory not reflected: %.3f vs %.3f GB", withCache.MemoryGB, noCache.MemoryGB)
	}
}

func TestAnalyticBoundShapes(t *testing.T) {
	st := GraphStats{AvgDegree: 20, LogVertices: math.Log(8000)}
	sage := backend.Config{Sampler: backend.SamplerSAGE, BatchSize: 100, Fanouts: []int{10, 5}}
	if got := analyticBound(sage, st); got != 100*11*6 {
		t.Errorf("sage bound = %v, want 6600", got)
	}
	saint := backend.Config{Sampler: backend.SamplerSAINT, BatchSize: 100, WalkLength: 4}
	if got := analyticBound(saint, st); got != 500 {
		t.Errorf("saint bound = %v, want 500", got)
	}
	fg := backend.Config{Sampler: backend.SamplerFastGCN, BatchSize: 100, Fanouts: []int{10, 5}}
	if got := analyticBound(fg, st); got != 100+500+250 {
		t.Errorf("fastgcn bound = %v, want 850", got)
	}
	// Fanouts above the average degree are capped.
	big := backend.Config{Sampler: backend.SamplerSAGE, BatchSize: 100, Fanouts: []int{1000}}
	if got := analyticBound(big, st); got > 100*22 {
		t.Errorf("capped bound = %v, want <= 2200", got)
	}
}

func TestFakeBlockShapes(t *testing.T) {
	b := fakeBlock(10, 4, 9)
	if len(b.SrcNodes) != 10 || b.DstCount != 4 || len(b.Indices) != 9 {
		t.Errorf("fakeBlock shape wrong: %+v", b)
	}
	if int(b.Offsets[4]) != 9 {
		t.Errorf("offsets end = %d, want 9", b.Offsets[4])
	}
	// Degenerate inputs clamp.
	b = fakeBlock(0, 0, -5)
	if b.DstCount != 1 || len(b.Indices) != 0 {
		t.Errorf("degenerate fakeBlock: %+v", b)
	}
}
