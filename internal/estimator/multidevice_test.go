package estimator

import (
	"testing"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/model"
)

// TestProbeConfigsDrawDevices: on a multi-device platform the probe pool
// must include scaled-out configurations (or the time residual never
// sees the comm-overhead-vs-speedup tradeoff); on a single-device
// platform it must draw none.
func TestProbeConfigsDrawDevices(t *testing.T) {
	multi := 0
	for _, c := range ProbeConfigs(dataset.OgbnArxiv, model.SAGE, "a100x4", 40, 5) {
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid probe %s: %v", c.Label(), err)
		}
		if c.DeviceCount() > 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no multi-device probes drawn on a 4-device platform")
	}
	for _, c := range ProbeConfigs(dataset.OgbnArxiv, model.SAGE, "rtx4090", 40, 5) {
		if c.DeviceCount() > 1 {
			t.Fatalf("multi-device probe %s drawn on a single-device platform", c.Label())
		}
	}
}

// TestPredictionRespondsToDevices: scaling the same config from one to
// four devices must change the predicted time through the white-box half
// (K-divided compute/transfer vs added halo + all-reduce terms) without
// retraining — and keep the comm overhead visible: K=4 must not predict
// a full 4x speedup.
func TestPredictionRespondsToDevices(t *testing.T) {
	recs, err := CollectCached(dataset.OgbnArxiv, model.SAGE, "rtx4090", 24, 7, true)
	if err != nil {
		t.Fatal(err)
	}
	e, err := Train(recs)
	if err != nil {
		t.Fatal(err)
	}
	// A transfer/compute-bound point (no cache, big fanouts): scale-out
	// has to help here. Host-sampling-bound points (e.g. SAINT with a
	// huge cache) legitimately see ~no speedup — sampling is not divided.
	cfg := backend.Config{
		Dataset: dataset.OgbnArxiv, Platform: "a100x4",
		Sampler: backend.SamplerSAGE, BatchSize: 1024, Fanouts: []int{25, 10},
		CachePolicy: cache.None, Model: model.SAGE, Hidden: 64, Layers: 2,
		Epochs: 2, LR: 0.01, Seed: 3,
	}
	one, err := e.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Devices = 4
	four, err := e.Predict(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if four.TimeSec >= one.TimeSec {
		t.Errorf("K=4 predicted %.4fs, not faster than K=1 %.4fs", four.TimeSec, one.TimeSec)
	}
	if four.TimeSec <= one.TimeSec/4 {
		t.Errorf("K=4 predicted %.4fs <= ideal %.4fs: comm overhead missing", four.TimeSec, one.TimeSec/4)
	}
}
