package estimator

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/model"
	"gnnavigator/internal/tensor"
)

// TestCollectWithEquivalence: fanning profiling runs across workers must
// not change the records — each backend run is deterministic in
// isolation and results are index-stamped. WallSec (host wall clock) is
// the documented informational exception.
func TestCollectWithEquivalence(t *testing.T) {
	cfgs := ProbeConfigs(dataset.OgbnArxiv, model.SAGE, "rtx4090", 4, 55)
	strip := func(recs []Record) []Record {
		out := make([]Record, len(recs))
		for i, r := range recs {
			p := *r.Perf
			p.WallSec = 0
			out[i] = Record{Cfg: r.Cfg, Stats: r.Stats, Perf: &p}
		}
		return out
	}
	serial, err := CollectWith(cfgs, false, 1)
	if err != nil {
		t.Fatalf("serial CollectWith: %v", err)
	}
	for _, workers := range []int{2, 4, runtime.GOMAXPROCS(0)} {
		par, err := CollectWith(cfgs, false, workers)
		if err != nil {
			t.Fatalf("workers=%d CollectWith: %v", workers, err)
		}
		if !reflect.DeepEqual(strip(par), strip(serial)) {
			t.Fatalf("workers=%d: records differ from serial", workers)
		}
	}
}

// TestCollectWithParallelismHoist: a per-run tensor override survives a
// parallel fan-out — applied once around the whole Collect, restored
// after — instead of racing per-run set/restore pairs.
func TestCollectWithParallelismHoist(t *testing.T) {
	prev := tensor.Parallelism()
	cfgs := ProbeConfigs(dataset.OgbnArxiv, model.SAGE, "rtx4090", 3, 56)
	if _, err := CollectWith(cfgs, false, 2, backend.Options{Parallelism: 2}); err != nil {
		t.Fatalf("CollectWith: %v", err)
	}
	if got := tensor.Parallelism(); got != prev {
		t.Fatalf("tensor parallelism leaked: %d, want %d", got, prev)
	}
}

// TestPredictConcurrent soaks Estimator.Predict from many goroutines
// (under -race in CI) and checks every result matches the serial
// prediction bit for bit.
func TestPredictConcurrent(t *testing.T) {
	e, recs := trainedEstimator(t)
	cfgs := make([]backend.Config, 0, 8)
	for _, r := range recs[:min(8, len(recs))] {
		cfgs = append(cfgs, r.Cfg)
	}
	want := make([]Prediction, len(cfgs))
	for i, cfg := range cfgs {
		p, err := e.Predict(cfg)
		if err != nil {
			t.Fatalf("serial Predict %s: %v", cfg.Label(), err)
		}
		want[i] = p
	}
	const goroutines = 8
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for rep := 0; rep < 4; rep++ {
				for i, cfg := range cfgs {
					p, err := e.Predict(cfg)
					if err != nil {
						errs[g] = err
						return
					}
					if p != want[i] {
						t.Errorf("goroutine %d: Predict(%s) diverged from serial", g, cfg.Label())
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Predict: %v", err)
		}
	}
}

// TestProfileDatasetConcurrent: concurrent profiling of the same dataset
// single-flights the computation and agrees on the result.
func TestProfileDatasetConcurrent(t *testing.T) {
	d := dataset.MustLoad(dataset.OgbnProducts)
	want := ProfileDataset(d)
	var wg sync.WaitGroup
	got := make([]GraphStats, 8)
	for i := range got {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = ProfileDataset(d)
		}(i)
	}
	wg.Wait()
	for i, st := range got {
		if st != want {
			t.Fatalf("goroutine %d: stats diverged", i)
		}
	}
}

// TestBaselineAccuracyConcurrent: racing callers share one baseline run
// and one result.
func TestBaselineAccuracyConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	accs := make([]float64, 6)
	errs := make([]error, 6)
	for i := range accs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			accs[i], errs[i] = BaselineAccuracy(dataset.OgbnProducts, 1)
		}(i)
	}
	wg.Wait()
	for i := range accs {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if accs[i] != accs[0] {
			t.Fatalf("goroutine %d: accuracy %v != %v", i, accs[i], accs[0])
		}
	}
}
