package estimator

import (
	"reflect"
	"testing"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/model"
	"gnnavigator/internal/plan"
)

// planProbeSet builds one sampling core crossed with cache-policy
// variants — the probe shape whose sampling the plan cache deduplicates.
func planProbeSet(t *testing.T) []backend.Config {
	t.Helper()
	variants := []struct {
		policy cache.Policy
		ratio  float64
	}{
		{cache.None, 0}, {cache.Static, 0.2}, {cache.FIFO, 0.2}, {cache.LRU, 0.2},
	}
	var cfgs []backend.Config
	for _, v := range variants {
		cfg := backend.Config{
			Dataset:  dataset.OgbnArxiv,
			Platform: "rtx4090",
			Model:    model.SAGE,
			Hidden:   32, Layers: 2, Heads: 2,
			Epochs: 2, LR: 0.01,
			Seed:        5151,
			Sampler:     backend.SamplerSAGE,
			BatchSize:   512,
			Fanouts:     []int{10, 5},
			CacheRatio:  v.ratio,
			CachePolicy: v.policy,
		}
		if err := cfg.Validate(); err != nil {
			t.Fatal(err)
		}
		cfgs = append(cfgs, cfg)
	}
	return cfgs
}

// TestCollectPlanSharedEquivalent is the calibration-sharing contract:
// Collect's plan-shared profiling runs must return Records identical to
// the live re-sampling path (modulo WallSec, the documented host-time
// exception), while compiling each unique epoch plan exactly once.
func TestCollectPlanSharedEquivalent(t *testing.T) {
	cfgs := planProbeSet(t)

	// Reference: every probe samples live (no SharePlan).
	want := make([]*backend.Perf, len(cfgs))
	for i, cfg := range cfgs {
		perf, err := backend.RunWith(cfg, backend.Options{SkipTraining: true})
		if err != nil {
			t.Fatal(err)
		}
		want[i] = perf
	}

	plan.ResetCounters()
	recs, err := CollectWith(cfgs, false, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != len(cfgs) {
		t.Fatalf("got %d records, want %d", len(recs), len(cfgs))
	}
	for i := range cfgs {
		pa, pb := *want[i], *recs[i].Perf
		pa.WallSec, pb.WallSec = 0, 0
		if !reflect.DeepEqual(pa, pb) {
			t.Errorf("probe %d (%s): plan-shared Perf differs from live sampling:\nshared: %+v\nlive:   %+v",
				i, cfgs[i].Label(), pb, pa)
		}
	}
	// All four probes share one sampling core: exactly one compile, the
	// rest cache hits. (The plans themselves persist across ResetCounters,
	// so this test builds its core from a seed no other caller uses.)
	if c, h := plan.Compiles(), plan.CacheHits(); c != 1 || h != int64(len(cfgs)-1) {
		t.Errorf("plan cache counters (compiles=%d, hits=%d), want (1, %d)", c, h, len(cfgs)-1)
	}
}

// TestProbeConfigsShareCores: the probe generator must draw more probes
// than sampling cores (pigeonhole), so real calibration fan-outs always
// contain plan-sharing collisions for the cache to exploit.
func TestProbeConfigsShareCores(t *testing.T) {
	cfgs := ProbeConfigs(dataset.OgbnArxiv, model.SAGE, "rtx4090", 30, 5)
	seeds := map[int64]bool{}
	for _, c := range cfgs {
		seeds[c.Seed] = true
	}
	if len(seeds) >= len(cfgs) {
		t.Errorf("%d probes drew %d distinct sampling cores — no sharing possible", len(cfgs), len(seeds))
	}
	if len(seeds) < 2 {
		t.Errorf("only %d distinct cores — diversity collapsed", len(seeds))
	}
}
