package estimator

import (
	"fmt"
	"math"
	"sync"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/model"
	"gnnavigator/internal/regress"
)

// Validation reports Table 2's metrics on a held-out record set: R² for
// the theory-grounded T and Γ predictions, MSE for the black-box Acc.
type Validation struct {
	R2Time    float64
	R2Memory  float64
	MSEAcc    float64
	R2Batch   float64 // extra: Eq. 12 mini-batch size prediction quality
	NumTested int
}

// Validate scores e against ground-truth records.
func Validate(e *Estimator, records []Record) (Validation, error) {
	var predT, trueT, predG, trueG, predA, trueA, predB, trueB []float64
	for _, r := range records {
		p, err := e.Predict(r.Cfg)
		if err != nil {
			return Validation{}, err
		}
		predT = append(predT, p.TimeSec)
		trueT = append(trueT, r.Perf.TimeSec)
		predG = append(predG, p.MemoryGB)
		trueG = append(trueG, r.Perf.MemoryGB)
		predB = append(predB, p.BatchSize)
		trueB = append(trueB, r.Perf.MeanBatchSize)
		if len(r.Perf.AccuracyHistory) > 0 {
			predA = append(predA, p.Accuracy)
			trueA = append(trueA, r.Perf.Accuracy)
		}
	}
	v := Validation{
		R2Time:    regress.R2(predT, trueT),
		R2Memory:  regress.R2(predG, trueG),
		R2Batch:   regress.R2(predB, trueB),
		NumTested: len(records),
	}
	if len(predA) > 0 {
		v.MSEAcc = regress.MSE(predA, trueA)
	} else {
		v.MSEAcc = math.NaN()
	}
	return v, nil
}

// BlackBoxBatchSize is the pure black-box baseline of Fig. 5: a decision
// tree regressor mapping raw configuration knobs directly to |V_i|, with
// no analytic structure at all.
type BlackBoxBatchSize struct {
	tree *regress.Tree
}

// rawFeatures deliberately exposes only the raw knobs (no analytic bound,
// no graph statistics beyond size) — matching how a naive tuner would
// model the problem.
func rawFeatures(cfg backend.Config) []float64 {
	f := []float64{float64(cfg.BatchSize), float64(cfg.WalkLength), float64(len(cfg.Fanouts))}
	for i := 0; i < 3; i++ {
		k := 0
		if i < len(cfg.Fanouts) {
			k = cfg.Fanouts[i]
		}
		f = append(f, float64(k))
	}
	code := 0.0
	switch cfg.Sampler {
	case backend.SamplerFastGCN:
		code = 1
	case backend.SamplerSAINT:
		code = 2
	}
	return append(f, code)
}

// TrainBlackBoxBatchSize fits the baseline on records.
func TrainBlackBoxBatchSize(records []Record) (*BlackBoxBatchSize, error) {
	if len(records) < 4 {
		return nil, fmt.Errorf("estimator: need >= 4 records for black-box baseline")
	}
	var X [][]float64
	var y []float64
	for _, r := range records {
		X = append(X, rawFeatures(r.Cfg))
		y = append(y, r.Perf.MeanBatchSize)
	}
	t := &regress.Tree{MaxDepth: 6, MinLeaf: 2}
	if err := t.Fit(X, y); err != nil {
		return nil, err
	}
	return &BlackBoxBatchSize{tree: t}, nil
}

// Predict returns the baseline's |V_i| estimate.
func (b *BlackBoxBatchSize) Predict(cfg backend.Config) float64 {
	return b.tree.Predict(rawFeatures(cfg))
}

// --- cached calibration --------------------------------------------------

var (
	calibMu    sync.Mutex
	calibCache = map[string]*flightCell[[]Record]{}
)

// CollectCached memoizes Collect for a standard probe grid, keyed by
// (dataset, model, platform, n, seed, accuracy). Experiment harnesses and
// tests share calibration data through this, since ground-truth collection
// is the expensive step. Run-fidelity options (prefetch/parallelism) are
// deliberately absent from the key: backend outputs are bitwise-identical
// across them, so records collected at any depth are interchangeable.
// Concurrent callers on a cold key single-flight the probe sweep.
func CollectCached(dsName string, kind model.Kind, platform string, n int, seed int64, withAccuracy bool, opts ...backend.Options) ([]Record, error) {
	return CollectCachedWith(dsName, kind, platform, n, seed, withAccuracy, 0, opts...)
}

// CollectCachedWith is CollectCached with an explicit fan-out width for
// the underlying profiling runs (see CollectWith). The width is not part
// of the memo key: records are identical at every worker count.
func CollectCachedWith(dsName string, kind model.Kind, platform string, n int, seed int64, withAccuracy bool, workers int, opts ...backend.Options) ([]Record, error) {
	key := fmt.Sprintf("%s/%s/%s/%d/%d/%v", dsName, kind, platform, n, seed, withAccuracy)
	return cellFor(&calibMu, calibCache, key).get(func() ([]Record, error) {
		cfgs := ProbeConfigs(dsName, kind, platform, n, seed)
		return CollectWith(cfgs, withAccuracy, workers, opts...)
	})
}
