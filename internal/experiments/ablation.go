package experiments

import (
	"fmt"
	"io"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/dse"
	"gnnavigator/internal/estimator"
	"gnnavigator/internal/model"
	"gnnavigator/internal/sim"
)

// AblationPruning quantifies the explorer's constraint pruning: estimator
// evaluations with and without the Γ_cache lower-bound cut.
type AblationPruning struct {
	EvaluatedWith, EvaluatedWithout int
	PrunedLeaves                    int
	CandidatesEqual                 bool
}

// RunAblationPruning runs the DSE under a tight memory budget twice.
func RunAblationPruning(w io.Writer, f Fidelity) (*AblationPruning, error) {
	recs, err := estimator.CollectCached(dataset.OgbnArxiv, model.SAGE, platform, calibSamples(f), 7, true)
	if err != nil {
		return nil, err
	}
	est, err := estimator.Train(recs)
	if err != nil {
		return nil, err
	}
	base := backend.Config{
		Dataset: dataset.Reddit2, Platform: platform, Model: model.SAGE,
		Hidden: 64, Layers: 2, Epochs: 2, LR: 0.01, Seed: 3,
		Sampler: backend.SamplerSAGE, BatchSize: 1024, Fanouts: []int{10, 5},
		CachePolicy: cache.None,
	}
	space := dse.Space{
		BatchSizes:  []int{512, 1024, 2048},
		FanoutSets:  [][]int{{5, 5}, {10, 5}, {15, 8}, {25, 10}},
		CacheRatios: []float64{0, 0.08, 0.15, 0.3, 0.45, 0.6},
		Policies:    []cache.Policy{cache.Static, cache.LRU},
		BiasRates:   []float64{0, 0.9},
		Hiddens:     []int{32, 64},
	}
	constraints := dse.Constraints{MaxMemoryGB: 0.2}
	with, err := (&dse.Explorer{Est: est, Space: space, Constraints: constraints}).Explore(base)
	if err != nil {
		return nil, err
	}
	without, err := (&dse.Explorer{Est: est, Space: space, Constraints: constraints, DisablePruning: true}).Explore(base)
	if err != nil {
		return nil, err
	}
	res := &AblationPruning{
		EvaluatedWith:    with.Evaluated,
		EvaluatedWithout: without.Evaluated,
		PrunedLeaves:     with.Pruned,
		CandidatesEqual:  len(with.Candidates) == len(without.Candidates),
	}
	fmt.Fprintln(w, "# Ablation: DSE constraint pruning (Reddit2, 0.2 GB memory budget)")
	fmt.Fprintf(w, "evaluations with pruning:    %d\n", res.EvaluatedWith)
	fmt.Fprintf(w, "evaluations without pruning: %d\n", res.EvaluatedWithout)
	fmt.Fprintf(w, "leaves pruned:               %d\n", res.PrunedLeaves)
	fmt.Fprintf(w, "candidate sets identical:    %v\n", res.CandidatesEqual)
	return res, nil
}

// AblationCacheRow is one cache policy's performance at a fixed ratio.
type AblationCacheRow struct {
	Policy     cache.Policy
	Precision  cache.Precision
	HitRate    float64
	EpochSec   float64
	MemoryGB   float64
	TransferMB float64 // measured host→device feature traffic (scaled run)
}

// RunAblationCachePolicy compares none/static/freq/fifo/lru/opt at the
// same capacity on Reddit2+SAGE — the "cache update policy" knob of
// Fig. 3, including the feature plane's pre-sample-admission policy and
// the plan-mined offline-optimal (Belady) upper bound.
func RunAblationCachePolicy(w io.Writer, f Fidelity) ([]AblationCacheRow, error) {
	fmt.Fprintln(w, "# Ablation: cache policy at fixed ratio 0.3 (Reddit2+SAGE; opt = offline upper bound)")
	fmt.Fprintf(w, "%-8s %-9s %8s %10s %10s %10s\n", "policy", "precision", "hit", "epoch(s)", "Γ(GB)", "xfer(MB)")
	var out []AblationCacheRow
	run := func(pol cache.Policy, prec cache.Precision) error {
		cfg, err := backend.FromTemplate(backend.TemplatePyG, dataset.Reddit2, model.SAGE, platform)
		if err != nil {
			return err
		}
		cfg.Epochs = 2
		cfg.Precision = prec
		if pol != cache.None {
			cfg.CacheRatio = 0.3
			cfg.CachePolicy = pol
		}
		perf, err := backend.RunWith(cfg, backend.Options{SkipTraining: true})
		if err != nil {
			return err
		}
		row := AblationCacheRow{
			Policy: pol, Precision: cfg.FeaturePrecision(),
			HitRate: perf.HitRate, EpochSec: perf.TimeSec,
			MemoryGB: perf.MemoryGB, TransferMB: float64(perf.TransferredBytes) / 1e6,
		}
		out = append(out, row)
		fmt.Fprintf(w, "%-8s %-9s %8.3f %10.3f %10.2f %10.1f\n",
			row.Policy, row.Precision, row.HitRate, row.EpochSec, row.MemoryGB, row.TransferMB)
		return nil
	}
	for _, pol := range cache.Policies() {
		if err := run(pol, cache.Float32); err != nil {
			return nil, err
		}
	}
	// The precision knob at a fixed policy: same Static cache budget, rows
	// stored and transferred at each width. Compact rows raise the hit
	// rate (more rows per Γ) and cut transfer 2–4× on top of it.
	fmt.Fprintln(w, "# precision at fixed policy static, ratio 0.3")
	for _, prec := range cache.Precisions()[1:] {
		if err := run(cache.Static, prec); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// AblationPipeline quantifies Eq. 4's max() pipeline model against a
// serial execution model.
type AblationPipeline struct {
	PipelinedSec, SerialSec float64
}

// RunAblationPipeline compares the pipelined epoch time (Eq. 4) with the
// unpipelined sum on the PaGraph template.
func RunAblationPipeline(w io.Writer, f Fidelity) (*AblationPipeline, error) {
	cfg, err := backend.FromTemplate(backend.TemplatePaFull, dataset.Reddit2, model.SAGE, platform)
	if err != nil {
		return nil, err
	}
	cfg.Epochs = 1
	perf, err := backend.RunWith(cfg, backend.Options{SkipTraining: true})
	if err != nil {
		return nil, err
	}
	// Rebuild per-iteration timings from the mean breakdown (uniform
	// approximation over iterations).
	bt := perf.TimeBreakdown
	batches := make([]sim.BatchTiming, perf.Iterations)
	for i := range batches {
		batches[i] = bt
	}
	res := &AblationPipeline{
		PipelinedSec: sim.EpochTime(batches),
		SerialSec:    sim.EpochTimeUnpipelined(batches),
	}
	fmt.Fprintln(w, "# Ablation: pipelined (Eq. 4) vs serial epoch time (PaGraph template, Reddit2)")
	fmt.Fprintf(w, "pipelined: %.3fs  serial: %.3fs  overlap gain: %s\n",
		res.PipelinedSec, res.SerialSec, speedup(res.SerialSec, res.PipelinedSec))
	return res, nil
}
