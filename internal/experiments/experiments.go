// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the Go reproduction stack. Each experiment has a
// Run* function that writes the same rows/series the paper reports to an
// io.Writer and returns the structured results, so both the benchtab CLI
// and the root-level testing.B benchmarks share one implementation.
//
// Fidelity levels: Quick trims calibration budgets and sweep densities so
// the full suite finishes in minutes; Full uses the evaluation defaults.
package experiments

import (
	"fmt"
	"io"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/model"
)

// Fidelity selects experiment budgets.
type Fidelity int

// Fidelity levels.
const (
	Quick Fidelity = iota
	Full
)

// Task names a dataset+model pair from Table 1.
type Task struct {
	Name    string
	Dataset string
	Model   model.Kind
}

// Table1Tasks returns the paper's three applications.
func Table1Tasks() []Task {
	return []Task{
		{Name: "PR+SAGE", Dataset: dataset.OgbnProducts, Model: model.SAGE},
		{Name: "RD2+SAGE", Dataset: dataset.Reddit2, Model: model.SAGE},
		{Name: "AR+GAT", Dataset: dataset.OgbnArxiv, Model: model.GAT},
	}
}

// platform is the default evaluation platform.
const platform = "rtx4090"

// epochs returns the training epoch budget for the fidelity.
func epochs(f Fidelity) int {
	if f == Quick {
		return 2
	}
	return 3
}

// calibSamples returns the per-dataset estimator calibration budget.
func calibSamples(f Fidelity) int {
	if f == Quick {
		return 12
	}
	return 20
}

// Row is one labeled result line of a table.
type Row struct {
	Label    string
	TimeSec  float64
	MemoryGB float64
	Accuracy float64
}

// speedup formats t relative to a baseline time.
func speedup(baseline, t float64) string {
	if t <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", baseline/t)
}

// memDelta formats memory change relative to a baseline.
func memDelta(baseline, m float64) string {
	if baseline <= 0 {
		return "-"
	}
	d := (m - baseline) / baseline * 100
	if d >= 0 {
		return fmt.Sprintf("+%.1f%%", d)
	}
	return fmt.Sprintf("%.1f%%", d)
}

// printRows renders rows with PyG-relative annotations (Table 1 style).
func printRows(w io.Writer, rows []Row) {
	if len(rows) == 0 {
		return
	}
	base := rows[0]
	fmt.Fprintf(w, "%-12s %10s %8s %10s %8s %8s\n",
		"method", "T(s)", "speedup", "Γ(GB)", "Δmem", "acc")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12s %10.2f %8s %10.2f %8s %7.2f%%\n",
			r.Label, r.TimeSec, speedup(base.TimeSec, r.TimeSec),
			r.MemoryGB, memDelta(base.MemoryGB, r.MemoryGB), 100*r.Accuracy)
	}
}

// runTemplate executes a backend template on a task.
func runTemplate(tpl backend.Template, task Task, ep int) (Row, error) {
	cfg, err := backend.FromTemplate(tpl, task.Dataset, task.Model, platform)
	if err != nil {
		return Row{}, err
	}
	cfg.Epochs = ep
	perf, err := backend.Run(cfg)
	if err != nil {
		return Row{}, err
	}
	return Row{Label: string(tpl), TimeSec: perf.TimeSec, MemoryGB: perf.MemoryGB, Accuracy: perf.Accuracy}, nil
}
