package experiments

import (
	"bytes"
	"strings"
	"testing"

	"gnnavigator/internal/backend"
)

// The experiment harness is exercised end-to-end at Quick fidelity. These
// tests assert the *shape* results the paper reports; absolute numbers are
// simulator-scale.

func TestFig1aTradeoffShape(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	var buf bytes.Buffer
	pts, err := RunFig1a(&buf, Quick)
	if err != nil {
		t.Fatalf("RunFig1a: %v", err)
	}
	if len(pts) < 3 {
		t.Fatalf("too few sweep points: %d", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	if last.EpochSec >= first.EpochSec {
		t.Errorf("bigger cache did not speed up the epoch: %.3f -> %.3f", first.EpochSec, last.EpochSec)
	}
	if last.MemoryMB <= first.MemoryMB {
		t.Errorf("bigger cache did not cost memory: %.1f -> %.1f MB", first.MemoryMB, last.MemoryMB)
	}
	// Hit rate must be monotone nondecreasing in the ratio.
	for i := 1; i < len(pts); i++ {
		if pts[i].HitRate+1e-9 < pts[i-1].HitRate {
			t.Errorf("hit rate fell with bigger cache: %.3f -> %.3f", pts[i-1].HitRate, pts[i].HitRate)
		}
	}
	if !strings.Contains(buf.String(), "Fig 1a") {
		t.Error("missing header in output")
	}
}

func TestFig1b2PGraphFasterButLessAccurate(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	var buf bytes.Buffer
	pts, err := RunFig1b(&buf, Quick)
	if err != nil {
		t.Fatalf("RunFig1b: %v", err)
	}
	last := pts[len(pts)-1]
	if last.TwoPTime >= last.PaGraphTime {
		t.Errorf("2PGraph epoch (%.3fs) not faster than PaGraph (%.3fs)", last.TwoPTime, last.PaGraphTime)
	}
	if last.TwoPAcc >= last.PaGraphAcc {
		t.Errorf("2PGraph accuracy %.3f did not trail PaGraph %.3f (the paper's 3%% drop)",
			last.TwoPAcc, last.PaGraphAcc)
	}
}

func TestFig5GrayBoxWins(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	var buf bytes.Buffer
	res, err := RunFig5(&buf, Quick)
	if err != nil {
		t.Fatalf("RunFig5: %v", err)
	}
	if res.GrayMSE >= res.BlackMSE {
		t.Errorf("gray-box MSE %.0f not better than black-box %.0f", res.GrayMSE, res.BlackMSE)
	}
	if res.GrayR2 <= res.BlackR2 {
		t.Errorf("gray-box R2 %.3f not better than black-box %.3f", res.GrayR2, res.BlackR2)
	}
	if len(res.Points) == 0 {
		t.Error("no scatter points")
	}
}

func TestAblationPruningSafeAndEffective(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	var buf bytes.Buffer
	res, err := RunAblationPruning(&buf, Quick)
	if err != nil {
		t.Fatalf("RunAblationPruning: %v", err)
	}
	if res.EvaluatedWith >= res.EvaluatedWithout {
		t.Errorf("pruning saved nothing: %d vs %d", res.EvaluatedWith, res.EvaluatedWithout)
	}
	if !res.CandidatesEqual {
		t.Error("pruning changed the candidate set (unsound bound)")
	}
}

func TestAblationCachePolicy(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	var buf bytes.Buffer
	rows, err := RunAblationCachePolicy(&buf, Quick)
	if err != nil {
		t.Fatalf("RunAblationCachePolicy: %v", err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d, want 6 policies + 2 compact precisions", len(rows))
	}
	byPolicy := map[string]AblationCacheRow{}
	byPrecision := map[string]AblationCacheRow{}
	for _, r := range rows[:6] {
		byPolicy[string(r.Policy)] = r
	}
	for _, r := range rows[6:] {
		byPrecision[string(r.Precision)] = r
	}
	if byPolicy["none"].HitRate != 0 {
		t.Error("policy none produced hits")
	}
	// On a power-law graph with degree-weighted access, the static
	// degree-ordered cache must beat FIFO churn.
	if byPolicy["static"].HitRate <= byPolicy["none"].HitRate {
		t.Error("static cache no better than no cache")
	}
	if byPolicy["freq"].HitRate <= byPolicy["none"].HitRate {
		t.Error("freq pre-fill no better than no cache")
	}
	// Transfer volume must mirror the hit rate: every cached policy moves
	// fewer bytes than no cache at all.
	for _, pol := range []string{"static", "freq", "fifo", "lru", "opt"} {
		if byPolicy[pol].TransferMB >= byPolicy["none"].TransferMB {
			t.Errorf("%s transferred %.1f MB, not below none's %.1f MB",
				pol, byPolicy[pol].TransferMB, byPolicy["none"].TransferMB)
		}
	}
	// The plan-mined offline-optimal policy is the upper bound: at equal
	// capacity (every cached row runs ratio 0.3) it must dominate or tie
	// every online policy's hit rate. A violation here means the Belady
	// implementation is wrong, not that the bound is loose.
	for _, pol := range []string{"static", "freq", "fifo", "lru"} {
		if byPolicy["opt"].HitRate < byPolicy[pol].HitRate {
			t.Errorf("opt hit rate %.4f below %s's %.4f — offline optimum violated",
				byPolicy["opt"].HitRate, pol, byPolicy[pol].HitRate)
		}
	}
	// The precision sweep runs the static policy at the same Γ budget:
	// compact rows fit more vertices (hit rate cannot drop) and each miss
	// moves a narrower payload, so transfer must fall below the float32
	// static row's.
	f32 := byPolicy["static"]
	for _, prec := range []string{"float16", "int8"} {
		r, ok := byPrecision[prec]
		if !ok {
			t.Fatalf("no %s precision row", prec)
		}
		if r.HitRate < f32.HitRate {
			t.Errorf("%s hit rate %.4f below float32 static's %.4f at the same budget",
				prec, r.HitRate, f32.HitRate)
		}
		if r.TransferMB >= f32.TransferMB {
			t.Errorf("%s transferred %.1f MB, not below float32 static's %.1f MB",
				prec, r.TransferMB, f32.TransferMB)
		}
	}
}

func TestAblationPipelineGain(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	var buf bytes.Buffer
	res, err := RunAblationPipeline(&buf, Quick)
	if err != nil {
		t.Fatalf("RunAblationPipeline: %v", err)
	}
	if res.PipelinedSec >= res.SerialSec {
		t.Errorf("pipelining gained nothing: %.3f vs %.3f", res.PipelinedSec, res.SerialSec)
	}
}

// TestTable1ShapeQuick runs the headline experiment on one task and
// asserts the relationships the paper's Table 1 demonstrates.
func TestTable1ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	// Restrict to the RD2+SAGE task by running templates directly (full
	// RunTable1 covers all three tasks in the bench).
	task := Table1Tasks()[1]
	rows := map[backend.Template]Row{}
	for _, tpl := range []backend.Template{
		backend.TemplatePyG, backend.TemplatePaFull,
		backend.TemplatePaLow, backend.Template2PGraph,
	} {
		row, err := runTemplate(tpl, task, 2)
		if err != nil {
			t.Fatalf("template %s: %v", tpl, err)
		}
		rows[tpl] = row
	}
	pyg := rows[backend.TemplatePyG]
	paFull := rows[backend.TemplatePaFull]
	paLow := rows[backend.TemplatePaLow]
	twoP := rows[backend.Template2PGraph]
	// PaGraph trades memory for speed.
	if !(paFull.TimeSec < pyg.TimeSec && paFull.MemoryGB > pyg.MemoryGB) {
		t.Errorf("Pa-Full shape wrong: T %.3f vs %.3f, Γ %.3f vs %.3f",
			paFull.TimeSec, pyg.TimeSec, paFull.MemoryGB, pyg.MemoryGB)
	}
	// Pa-Low is between PyG and Pa-Full on both axes.
	if !(paLow.TimeSec <= pyg.TimeSec && paLow.TimeSec >= paFull.TimeSec) {
		t.Errorf("Pa-Low time %.3f not between Pa-Full %.3f and PyG %.3f",
			paLow.TimeSec, paFull.TimeSec, pyg.TimeSec)
	}
	// 2PGraph is fastest, uses less memory than PyG, loses accuracy.
	if !(twoP.TimeSec < pyg.TimeSec) {
		t.Errorf("2P not faster than PyG: %.3f vs %.3f", twoP.TimeSec, pyg.TimeSec)
	}
	if !(twoP.MemoryGB < pyg.MemoryGB) {
		t.Errorf("2P memory %.3f not below PyG %.3f", twoP.MemoryGB, pyg.MemoryGB)
	}
	if !(twoP.Accuracy < pyg.Accuracy-0.01) {
		t.Errorf("2P accuracy %.3f did not trail PyG %.3f", twoP.Accuracy, pyg.Accuracy)
	}
}

// TestFig6GuidelinesOnFront checks that the Navigator's picks land on the
// measured Pareto front of the exhausted (coarse) design space.
func TestFig6GuidelinesOnFront(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	var buf bytes.Buffer
	res, err := RunFig6(&buf, Quick)
	if err != nil {
		t.Fatalf("RunFig6: %v", err)
	}
	if len(res.Points) < 10 {
		t.Fatalf("sweep too small: %d points", len(res.Points))
	}
	if len(res.FrontTM) == 0 || len(res.FrontMA) == 0 {
		t.Fatal("empty Pareto fronts")
	}
	if res.GuidelineHits < 2 {
		t.Errorf("only %d/3 Navigator guidelines on the measured front", res.GuidelineHits)
	}
}

// TestTable2ShapeQuick runs the estimator validation at quick fidelity and
// asserts the Table 2 quality bands loosely (cross-dataset generalization
// on synthetic stand-ins is the hard case).
func TestTable2ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment harness is slow")
	}
	var buf bytes.Buffer
	rows, err := RunTable2(&buf, Quick)
	if err != nil {
		t.Fatalf("RunTable2: %v", err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 datasets", len(rows))
	}
	for _, r := range rows {
		if r.R2Memory < 0.5 {
			t.Errorf("%s: R2(Γ) = %.3f, want >= 0.5", r.Dataset, r.R2Memory)
		}
		if r.MSEAcc > 0.08 {
			t.Errorf("%s: MSE(Acc) = %.4f, want <= 0.08", r.Dataset, r.MSEAcc)
		}
	}
}
