package experiments

import (
	"fmt"
	"io"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/model"
)

// Fig1aPoint is one cache-ratio setting of PaGraph's speed/memory
// trade-off (Fig. 1a: epoch time falls as cache memory rises).
type Fig1aPoint struct {
	CacheRatio float64
	MemoryMB   float64
	EpochSec   float64
	HitRate    float64
	// TransferMB is the measured host→device feature traffic of the
	// scaled run (feature-plane accounting), the quantity Eq. 6 prices.
	TransferMB float64
}

// RunFig1a sweeps the PaGraph template's cache ratio on Reddit2+SAGE and
// reports the trade-off curve.
func RunFig1a(w io.Writer, f Fidelity) ([]Fig1aPoint, error) {
	ratios := []float64{0, 0.1, 0.2, 0.3, 0.45, 0.6}
	if f == Quick {
		ratios = []float64{0, 0.15, 0.3, 0.6}
	}
	fmt.Fprintln(w, "# Fig 1a: PaGraph speedup vs memory trade-off (Reddit2+SAGE)")
	fmt.Fprintf(w, "%10s %12s %12s %8s %12s\n", "cacheRatio", "memory(MB)", "epoch(s)", "hit", "xfer(MB)")
	var out []Fig1aPoint
	for _, r := range ratios {
		cfg, err := backend.FromTemplate(backend.TemplatePaFull, dataset.Reddit2, model.SAGE, platform)
		if err != nil {
			return nil, err
		}
		cfg.CacheRatio = r
		if r == 0 {
			cfg.CachePolicy = cache.None
		}
		cfg.Epochs = 1
		perf, err := backend.RunWith(cfg, backend.Options{SkipTraining: true})
		if err != nil {
			return nil, err
		}
		p := Fig1aPoint{
			CacheRatio: r,
			MemoryMB:   perf.MemoryGB * 1000,
			EpochSec:   perf.TimeSec,
			HitRate:    perf.HitRate,
			TransferMB: float64(perf.TransferredBytes) / 1e6,
		}
		out = append(out, p)
		fmt.Fprintf(w, "%10.2f %12.1f %12.3f %8.2f %12.1f\n", p.CacheRatio, p.MemoryMB, p.EpochSec, p.HitRate, p.TransferMB)
	}
	if len(out) >= 2 {
		first, last := out[0], out[len(out)-1]
		fmt.Fprintf(w, "-> %s speedup for %s memory\n",
			speedup(first.EpochSec, last.EpochSec), memDelta(first.MemoryMB, last.MemoryMB))
	}
	return out, nil
}

// Fig1bPoint is one epoch of the PaGraph vs 2PGraph accuracy/time
// comparison (Fig. 1b: 2PGraph trains faster but converges lower).
type Fig1bPoint struct {
	Epoch       int
	PaGraphAcc  float64
	TwoPAcc     float64
	PaGraphTime float64
	TwoPTime    float64
}

// RunFig1b trains PaGraph and 2PGraph templates on Reddit2+SAGE and
// reports per-epoch accuracy plus the speedup/accuracy-drop summary.
func RunFig1b(w io.Writer, f Fidelity) ([]Fig1bPoint, error) {
	ep := 4
	if f == Quick {
		ep = 3
	}
	run := func(tpl backend.Template) (*backend.Perf, error) {
		cfg, err := backend.FromTemplate(tpl, dataset.Reddit2, model.SAGE, platform)
		if err != nil {
			return nil, err
		}
		cfg.Epochs = ep
		return backend.Run(cfg)
	}
	pa, err := run(backend.TemplatePaFull)
	if err != nil {
		return nil, err
	}
	tp, err := run(backend.Template2PGraph)
	if err != nil {
		return nil, err
	}
	fmt.Fprintln(w, "# Fig 1b: PaGraph vs 2PGraph — epoch time and accuracy trade-off (Reddit2+SAGE)")
	fmt.Fprintf(w, "%6s %12s %12s\n", "epoch", "PaGraph acc", "2PGraph acc")
	var out []Fig1bPoint
	for i := 0; i < ep; i++ {
		p := Fig1bPoint{
			Epoch:       i + 1,
			PaGraphAcc:  pa.AccuracyHistory[i],
			TwoPAcc:     tp.AccuracyHistory[i],
			PaGraphTime: pa.EpochTimes[i],
			TwoPTime:    tp.EpochTimes[i],
		}
		out = append(out, p)
		fmt.Fprintf(w, "%6d %11.2f%% %11.2f%%\n", p.Epoch, 100*p.PaGraphAcc, 100*p.TwoPAcc)
	}
	fmt.Fprintf(w, "-> 2PGraph epoch time %.2fs vs PaGraph %.2fs (%s speedup), final acc %.2f%% vs %.2f%% (%.1f pt drop)\n",
		tp.TimeSec, pa.TimeSec, speedup(pa.TimeSec, tp.TimeSec),
		100*tp.Accuracy, 100*pa.Accuracy, 100*(pa.Accuracy-tp.Accuracy))
	return out, nil
}
