package experiments

import (
	"fmt"
	"io"

	"gnnavigator/internal/dataset"
	"gnnavigator/internal/estimator"
	"gnnavigator/internal/model"
	"gnnavigator/internal/regress"
)

// Fig5Result compares gray-box and black-box mini-batch size prediction on
// held-out configurations (Fig. 5's scatter, summarized numerically).
type Fig5Result struct {
	GrayR2, BlackR2   float64
	GrayMSE, BlackMSE float64
	// Points carries (measured, grayPred, blackPred) triples for plotting.
	Points [][3]float64
}

// RunFig5 trains both estimators on Ogbn-arxiv probe configs and evaluates
// mini-batch size prediction on held-out Reddit2 probes — a strictly
// harder (cross-dataset) version of the paper's setup.
func RunFig5(w io.Writer, f Fidelity) (*Fig5Result, error) {
	n := calibSamples(f)
	trainRecs, err := estimator.CollectCached(dataset.OgbnArxiv, model.SAGE, platform, n, 7, true)
	if err != nil {
		return nil, err
	}
	testRecs, err := estimator.CollectCached(dataset.Reddit2, model.SAGE, platform, n, 8, false)
	if err != nil {
		return nil, err
	}
	gray, err := estimator.Train(trainRecs)
	if err != nil {
		return nil, err
	}
	black, err := estimator.TrainBlackBoxBatchSize(trainRecs)
	if err != nil {
		return nil, err
	}
	res := &Fig5Result{}
	var gp, bp, truth []float64
	fmt.Fprintln(w, "# Fig 5: mini-batch size prediction — gray-box vs black-box (train: AR, test: RD2)")
	fmt.Fprintf(w, "%12s %12s %12s\n", "measured", "gray-box", "black-box")
	for _, r := range testRecs {
		g := gray.PredictBatchSize(r.Cfg, r.Stats)
		b := black.Predict(r.Cfg)
		m := r.Perf.MeanBatchSize
		gp = append(gp, g)
		bp = append(bp, b)
		truth = append(truth, m)
		res.Points = append(res.Points, [3]float64{m, g, b})
		fmt.Fprintf(w, "%12.0f %12.0f %12.0f\n", m, g, b)
	}
	res.GrayR2 = regress.R2(gp, truth)
	res.BlackR2 = regress.R2(bp, truth)
	res.GrayMSE = regress.MSE(gp, truth)
	res.BlackMSE = regress.MSE(bp, truth)
	fmt.Fprintf(w, "-> gray-box R2=%.3f MSE=%.0f | black-box R2=%.3f MSE=%.0f\n",
		res.GrayR2, res.GrayMSE, res.BlackR2, res.BlackMSE)
	return res, nil
}
