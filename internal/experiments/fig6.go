package experiments

import (
	"fmt"
	"io"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/cache"
	"gnnavigator/internal/core"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/dse"
	"gnnavigator/internal/model"
)

// Fig6Point is one actually-executed design-space candidate on
// Reddit2+SAGE (each scatter point of Fig. 6).
type Fig6Point struct {
	Cfg      backend.Config
	TimeSec  float64
	MemoryGB float64
	Accuracy float64
	OnFront  bool
	// Picked marks the Navigator guideline closest to this point:
	// "" (none), "balance", or "extreme".
	Picked string
}

// Fig6Result carries both panels: (a) time vs memory, (b) memory vs
// accuracy, over the same exhausted ground-truth sweep.
type Fig6Result struct {
	Points []Fig6Point
	// FrontTM / FrontMA index Points on the two 2-D Pareto fronts.
	FrontTM, FrontMA []int
	// GuidelineHits counts Navigator picks that land on (or tie with) the
	// measured front.
	GuidelineHits int
}

// fig6Grid is the coarse exhaustive grid actually executed.
func fig6Grid(f Fidelity) []backend.Config {
	batch := []int{512, 1024, 2048}
	fan := [][]int{{5, 5}, {10, 5}, {25, 10}}
	ratios := []float64{0, 0.15, 0.45}
	biases := []float64{0, 0.9}
	if f == Quick {
		batch = []int{512, 1024}
		ratios = []float64{0, 0.3}
	}
	var out []backend.Config
	for _, b := range batch {
		for _, fo := range fan {
			for _, r := range ratios {
				for _, bi := range biases {
					cfg := backend.Config{
						Dataset:  dataset.Reddit2,
						Platform: platform,
						Model:    model.SAGE,
						Hidden:   64, Layers: 2, Heads: 2,
						Epochs: 2, LR: 0.01, Seed: 17,
						Sampler:     backend.SamplerSAGE,
						BatchSize:   b,
						Fanouts:     fo,
						CacheRatio:  r,
						CachePolicy: cache.None,
						BiasRate:    0,
					}
					if r > 0 {
						cfg.CachePolicy = cache.Static
						cfg.BiasRate = bi
					} else if bi > 0 {
						continue
					}
					out = append(out, cfg)
				}
			}
		}
	}
	return out
}

// dominates2D reports a ≤ b on both minimized axes with one strict.
func dominates2D(ax, ay, bx, by float64) bool {
	if ax > bx || ay > by {
		return false
	}
	return ax < bx || ay < by
}

// RunFig6 exhausts the coarse design space with real executions, draws the
// measured Pareto fronts of both panels, and checks that the Navigator's
// balance/extreme guidelines land on them.
func RunFig6(w io.Writer, f Fidelity) (*Fig6Result, error) {
	grid := fig6Grid(f)
	fmt.Fprintf(w, "# Fig 6: design space exhausted on Reddit2+SAGE (%d configs, real runs)\n", len(grid))
	res := &Fig6Result{}
	for _, cfg := range grid {
		perf, err := backend.Run(cfg)
		if err != nil {
			return nil, fmt.Errorf("fig6 %s: %w", cfg.Label(), err)
		}
		res.Points = append(res.Points, Fig6Point{
			Cfg: cfg, TimeSec: perf.TimeSec, MemoryGB: perf.MemoryGB, Accuracy: perf.Accuracy,
		})
	}
	// Panel (a): minimize (T, Γ). Panel (b): minimize (Γ, -Acc).
	for i, p := range res.Points {
		onTM, onMA := true, true
		for j, q := range res.Points {
			if i == j {
				continue
			}
			if dominates2D(q.TimeSec, q.MemoryGB, p.TimeSec, p.MemoryGB) {
				onTM = false
			}
			if dominates2D(q.MemoryGB, -q.Accuracy, p.MemoryGB, -p.Accuracy) {
				onMA = false
			}
		}
		if onTM {
			res.FrontTM = append(res.FrontTM, i)
		}
		if onMA {
			res.FrontMA = append(res.FrontMA, i)
		}
		if onTM || onMA {
			res.Points[i].OnFront = true
		}
	}

	// Navigator guidelines over the same space.
	nav, err := core.New(core.Input{
		Dataset:  dataset.Reddit2,
		Model:    model.SAGE,
		Platform: platform,
		Space: dse.Space{
			BatchSizes:  []int{512, 1024, 2048},
			FanoutSets:  [][]int{{5, 5}, {10, 5}, {25, 10}},
			CacheRatios: []float64{0, 0.15, 0.3, 0.45},
			BiasRates:   []float64{0, 0.9},
			Hiddens:     []int{64},
		},
		CalibSamples: calibSamples(f),
		Epochs:       2,
		Seed:         31,
	})
	if err != nil {
		return nil, err
	}
	g, err := nav.Explore()
	if err != nil {
		return nil, err
	}
	mark := func(cfg backend.Config, tag string) {
		// Find the grid point matching the guideline's key knobs.
		best, bestD := -1, 1e18
		for i, p := range res.Points {
			d := 0.0
			if p.Cfg.BatchSize != cfg.BatchSize {
				d += 1
			}
			if p.Cfg.CacheRatio != cfg.CacheRatio {
				d += 1
			}
			if p.Cfg.BiasRate != cfg.BiasRate {
				d += 0.5
			}
			if len(p.Cfg.Fanouts) > 0 && len(cfg.Fanouts) > 0 && p.Cfg.Fanouts[0] != cfg.Fanouts[0] {
				d += 0.5
			}
			if d < bestD {
				bestD, best = d, i
			}
		}
		if best >= 0 {
			res.Points[best].Picked = tag
			if res.Points[best].OnFront {
				res.GuidelineHits++
			}
		}
	}
	mark(g.PerPriority[dse.Balance].Cfg, "balance")
	mark(g.PerPriority[dse.TimeMemory].Cfg, "extreme")
	mark(g.PerPriority[dse.MemoryAccuracy].Cfg, "extreme")

	fmt.Fprintf(w, "%-44s %9s %9s %7s %7s %9s\n", "config", "T(s)", "Γ(GB)", "acc", "front", "picked")
	for _, p := range res.Points {
		front := ""
		if p.OnFront {
			front = "*"
		}
		fmt.Fprintf(w, "%-44s %9.2f %9.2f %6.1f%% %7s %9s\n",
			p.Cfg.Label(), p.TimeSec, p.MemoryGB, 100*p.Accuracy, front, p.Picked)
	}
	fmt.Fprintf(w, "-> panel (a) front: %d points; panel (b) front: %d points; guideline hits on front: %d/3\n",
		len(res.FrontTM), len(res.FrontMA), res.GuidelineHits)
	return res, nil
}
