package experiments

import (
	"fmt"
	"io"

	"gnnavigator/internal/backend"
	"gnnavigator/internal/core"
	"gnnavigator/internal/dse"
)

// Table1Result is one task's block of Table 1.
type Table1Result struct {
	Task Task
	Rows []Row // PyG, Pa-Full, Pa-Low, 2P, Bal, Ex-TM, Ex-MA, Ex-TA
}

// table1Space is the design space Navigator explores for Table 1; it
// contains every baseline template as a point. Fanouts below [10,5] are
// excluded: they are off the accuracy cliff on the real datasets, which
// the reduced-scale stand-ins cannot reflect (the scaled graphs saturate
// coverage even at tiny fanouts), so admitting them would let the
// explorer claim speedups the full-scale task could not deliver.
func table1Space() dse.Space {
	return dse.Space{
		Samplers:    []backend.SamplerKind{backend.SamplerSAGE},
		BatchSizes:  []int{512, 1024, 2048},
		FanoutSets:  [][]int{{10, 5}, {15, 8}, {20, 10}, {25, 10}},
		CacheRatios: []float64{0, 0.08, 0.15, 0.3, 0.45},
		BiasRates:   []float64{0, 0.5, 0.9},
		Hiddens:     []int{64},
	}
}

// RunTable1 reproduces Table 1: for each application, the four baseline
// templates plus GNNavigator's Bal/Ex-TM/Ex-MA/Ex-TA guidelines, all
// actually executed on the backend.
func RunTable1(w io.Writer, f Fidelity) ([]Table1Result, error) {
	ep := epochs(f)
	var out []Table1Result
	for _, task := range Table1Tasks() {
		fmt.Fprintf(w, "# Table 1: %s\n", task.Name)
		var rows []Row
		for _, tpl := range []backend.Template{
			backend.TemplatePyG, backend.TemplatePaFull,
			backend.TemplatePaLow, backend.Template2PGraph,
		} {
			row, err := runTemplate(tpl, task, ep)
			if err != nil {
				return nil, fmt.Errorf("table1 %s %s: %w", task.Name, tpl, err)
			}
			rows = append(rows, row)
		}

		// Navigator guidelines with leave-one-out calibration.
		nav, err := core.New(core.Input{
			Dataset:      task.Dataset,
			Model:        task.Model,
			Platform:     platform,
			Space:        table1Space(),
			CalibSamples: calibSamples(f),
			Epochs:       ep,
			Seed:         31,
		})
		if err != nil {
			return nil, fmt.Errorf("table1 %s navigator: %w", task.Name, err)
		}
		g, err := nav.Explore()
		if err != nil {
			return nil, fmt.Errorf("table1 %s explore: %w", task.Name, err)
		}
		labels := map[dse.Priority]string{
			dse.Balance: "Bal", dse.TimeMemory: "Ex-TM",
			dse.MemoryAccuracy: "Ex-MA", dse.TimeAccuracy: "Ex-TA",
		}
		for _, p := range dse.Priorities() {
			pt := g.PerPriority[p]
			perf, err := nav.Train(pt.Cfg)
			if err != nil {
				return nil, fmt.Errorf("table1 %s train %s: %w", task.Name, p, err)
			}
			rows = append(rows, Row{
				Label:    labels[p],
				TimeSec:  perf.TimeSec,
				MemoryGB: perf.MemoryGB,
				Accuracy: perf.Accuracy,
			})
		}
		printRows(w, rows)
		fmt.Fprintf(w, "(explored %d candidates, pruned %d)\n\n", g.Explored, g.Pruned)
		out = append(out, Table1Result{Task: task, Rows: rows})
	}
	return out, nil
}
