package experiments

import (
	"fmt"
	"io"

	"gnnavigator/internal/dataset"
	"gnnavigator/internal/estimator"
	"gnnavigator/internal/model"
)

// Table2Row is one dataset column of Table 2: estimator precision under
// leave-one-dataset-out training.
type Table2Row struct {
	Dataset  string
	R2Time   float64
	R2Memory float64
	MSEAcc   float64
	R2Batch  float64
}

// RunTable2 validates the gray-box estimator on Reddit, Reddit2 and
// Ogbn-products. For each target, the estimator trains on probe records
// from all *other* datasets plus power-law augmentation (the paper's §4.1
// protocol) and is scored on the target's ground truth.
func RunTable2(w io.Writer, f Fidelity) ([]Table2Row, error) {
	targets := []string{dataset.Reddit, dataset.Reddit2, dataset.OgbnProducts}
	all := dataset.Names()
	n := calibSamples(f)

	fmt.Fprintln(w, "# Table 2: estimator prediction validation (leave-one-dataset-out)")
	fmt.Fprintf(w, "%-14s %10s %10s %10s %10s\n", "dataset", "R2(T)", "R2(Γ)", "MSE(Acc)", "R2(|Vi|)")
	var out []Table2Row
	for ti, target := range targets {
		var trainRecs []estimator.Record
		for di, name := range all {
			if name == target {
				continue
			}
			recs, err := estimator.CollectCached(name, model.SAGE, platform, n, 7+int64(di), true)
			if err != nil {
				return nil, err
			}
			trainRecs = append(trainRecs, recs...)
		}
		// Power-law augmentation (volumes only — accuracy labels come from
		// the real datasets).
		aug, err := augmentRecords(2, 400+int64(ti))
		if err != nil {
			return nil, err
		}
		trainRecs = append(trainRecs, aug...)

		est, err := estimator.Train(trainRecs)
		if err != nil {
			return nil, err
		}
		testRecs, err := estimator.CollectCached(target, model.SAGE, platform, n, 97+int64(ti), true)
		if err != nil {
			return nil, err
		}
		v, err := estimator.Validate(est, testRecs)
		if err != nil {
			return nil, err
		}
		row := Table2Row{
			Dataset: target, R2Time: v.R2Time, R2Memory: v.R2Memory,
			MSEAcc: v.MSEAcc, R2Batch: v.R2Batch,
		}
		out = append(out, row)
		fmt.Fprintf(w, "%-14s %10.4f %10.4f %10.4f %10.4f\n",
			row.Dataset, row.R2Time, row.R2Memory, row.MSEAcc, row.R2Batch)
	}
	return out, nil
}

// augmentRecords profiles `count` random power-law graphs (volumes only).
func augmentRecords(count int, seed int64) ([]estimator.Record, error) {
	sets, err := dataset.PowerLawAugment(seed, count)
	if err != nil {
		return nil, err
	}
	var records []estimator.Record
	for i, d := range sets {
		if err := dataset.Register(d); err != nil {
			// Registered by a previous call in this process; reuse it.
			d2, lerr := dataset.Load(d.Name)
			if lerr != nil {
				return nil, err
			}
			d = d2
		}
		cfgs := estimator.ProbeConfigs(d.Name, model.SAGE, platform, 6, seed+int64(i)*13)
		recs, err := estimator.Collect(cfgs, false)
		if err != nil {
			return nil, err
		}
		records = append(records, recs...)
	}
	return records, nil
}
