// Package faultinject provides named, deterministic fault-injection
// points for the chaos test suite. A point is a call site in a
// production path (the pipeline's stages, the tensor worker pool, the
// cache's update path, plan/checkpoint/model IO, estimator probe runs,
// the serving path)
// that consults this package's registry on every pass: disarmed — the
// permanent production state — the consultation is a single atomic load
// and the site behaves as if the call were compiled out; armed, the
// site fails in a precisely scheduled way.
//
// Determinism contract: faults are scheduled by hit count, never by
// probability or wall clock. Arm(point, Spec{After: 3, Count: 1}) fires
// on exactly the 4th pass through the site and never again, so a chaos
// run is exactly reproducible — the same fault hits the same batch of
// the same epoch every time. Byte corruption (Mutate) flips bits chosen
// by a SplitMix64 stream seeded from Spec.Seed and the hit index,
// deterministic in the same way.
//
// The registry is process-global and safe for concurrent use; tests
// that arm points must not run in parallel with tests that assume a
// clean registry (use Reset in defer).
package faultinject

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Point names one injection site.
type Point string

// The injection-point catalog. Each constant is a real call site in the
// named subsystem; the chaos suite arms each in turn.
const (
	// PipelineSample fires in the pipeline's sampler stage, once per
	// batch, before the minibatch is sampled (or replayed from a plan).
	PipelineSample Point = "pipeline/sample"
	// PipelineGather fires in the pipeline's cache-lookup+gather stage,
	// once per batch, before the feature plane is touched.
	PipelineGather Point = "pipeline/gather"
	// TensorWorker fires in the tensor worker pool, once per dispatched
	// shard job (the sharded kernels' unit of work).
	TensorWorker Point = "tensor/worker"
	// CacheShard fires in Cache.Update — once per batch per cache, and
	// once per shard per batch when the cache is sharded (cache.Shards).
	CacheShard Point = "cache/shard"
	// PlanSave fires in plan.SaveFile before the file is written; with
	// Kind Corrupt it bit-flips the serialized payload instead, which the
	// CRC-64 footer must catch on load.
	PlanSave Point = "plan/save"
	// PlanLoad fires in plan.LoadFile before the file is read.
	PlanLoad Point = "plan/load"
	// CheckpointSave fires in backend.SaveCheckpoint before the write;
	// Kind Corrupt bit-flips the serialized payload.
	CheckpointSave Point = "backend/checkpoint-save"
	// CheckpointLoad fires in backend.LoadCheckpoint before the read.
	CheckpointLoad Point = "backend/checkpoint-load"
	// EstimatorProbe fires at the start of every calibration profiling
	// run in estimator.CollectWith — the site the bounded-backoff retry
	// policy wraps.
	EstimatorProbe Point = "estimator/probe"
	// ModelSave fires in model.Save before the file is written; Kind
	// Corrupt bit-flips the serialized payload, which the CRC-64 footer
	// must catch on load.
	ModelSave Point = "model/save"
	// ModelLoad fires in model.Load before the file is read.
	ModelLoad Point = "model/load"
	// ServeDecode fires in the serving handler before a /predict request
	// body is decoded (internal/serve).
	ServeDecode Point = "serve/decode"
	// ServeFlush fires in the request coalescer before a coalesced batch
	// is flushed through the inference engine (internal/infer).
	ServeFlush Point = "serve/flush"
	// DistHalo fires in the multi-device feature plane's halo-exchange
	// step (dist.Source), once per batch, before remote-partition rows
	// are classified and metered.
	DistHalo Point = "dist/halo"
	// DistAllReduce fires in the ordered gradient all-reduce
	// (dist.Reducer.Step), once per training step, before the replica
	// buffers are reduced.
	DistAllReduce Point = "dist/allreduce"
)

// Points lists the full injection-point catalog.
func Points() []Point {
	return []Point{PipelineSample, PipelineGather, TensorWorker, CacheShard,
		PlanSave, PlanLoad, CheckpointSave, CheckpointLoad, EstimatorProbe,
		ModelSave, ModelLoad, ServeDecode, ServeFlush, DistHalo, DistAllReduce}
}

// Kind selects what an armed point does when its schedule fires.
type Kind int

// Fault kinds.
const (
	// Error makes Fire return ErrInjected (wrapped with the point name).
	Error Kind = iota
	// Panic makes Fire panic — the input to every containment path.
	Panic
	// Delay makes Fire sleep Spec.Sleep (default 1ms) and return nil:
	// a slow stage, not a failed one.
	Delay
	// Corrupt makes Mutate flip Spec.Bits deterministic bits (default 1)
	// in the buffer it is given; Fire returns nil.
	Corrupt
)

func (k Kind) String() string {
	switch k {
	case Error:
		return "error"
	case Panic:
		return "panic"
	case Delay:
		return "delay"
	case Corrupt:
		return "corrupt"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// ErrInjected is the sentinel all Error-kind faults wrap; chaos tests
// assert errors.Is(err, ErrInjected) to distinguish an injected failure
// from a real one.
var ErrInjected = errors.New("injected fault")

// Spec schedules a fault at a point.
type Spec struct {
	Kind Kind
	// After skips the first After hits of the site (0 = fire from the
	// first hit). Hit counting starts at Arm.
	After int64
	// Count bounds how many hits fire (0 = every hit past After).
	Count int64
	// Sleep is the Delay duration (default 1ms).
	Sleep time.Duration
	// Seed roots the Corrupt bit-position stream (default 1).
	Seed uint64
	// Bits is how many bits Corrupt flips per firing (default 1).
	Bits int
}

// armedPoint is the registry entry for one armed site.
type armedPoint struct {
	spec  Spec
	hits  atomic.Int64 // passes through the site since Arm
	fired atomic.Int64 // firings so far
}

// fire reports whether this pass (hit index h, 0-based) is scheduled.
func (a *armedPoint) shouldFire(h int64) bool {
	if h < a.spec.After {
		return false
	}
	if a.spec.Count > 0 && a.fired.Load() >= a.spec.Count {
		return false
	}
	a.fired.Add(1)
	return true
}

var (
	// armedN is the fast path: zero means no point is armed anywhere and
	// Fire/Mutate return immediately after one atomic load. This is the
	// production state; everything below it is test machinery.
	armedN atomic.Int32

	mu    sync.Mutex
	table = map[Point]*armedPoint{}
	// hitLog keeps cumulative per-point hit counts across Disarm/Reset so
	// tests can assert a site was actually exercised.
	hitLog sync.Map // Point -> *atomic.Int64
)

// Arm schedules a fault at p. Re-arming an armed point replaces its
// spec and restarts its hit count.
func Arm(p Point, spec Spec) {
	if spec.Sleep <= 0 {
		spec.Sleep = time.Millisecond
	}
	if spec.Seed == 0 {
		spec.Seed = 1
	}
	if spec.Bits <= 0 {
		spec.Bits = 1
	}
	mu.Lock()
	defer mu.Unlock()
	if _, ok := table[p]; !ok {
		armedN.Add(1)
	}
	table[p] = &armedPoint{spec: spec}
}

// Disarm removes any fault at p.
func Disarm(p Point) {
	mu.Lock()
	defer mu.Unlock()
	if _, ok := table[p]; ok {
		delete(table, p)
		armedN.Add(-1)
	}
}

// Reset disarms every point. Chaos tests defer it so a failed assertion
// cannot leave a fault armed for the rest of the package run.
func Reset() {
	mu.Lock()
	defer mu.Unlock()
	armedN.Add(int32(-len(table)))
	table = map[Point]*armedPoint{}
}

// Enabled reports whether any point is armed — the same single load the
// sites' fast path performs.
func Enabled() bool { return armedN.Load() != 0 }

// Hits returns how many times site p has been passed (armed or not
// since the point was first armed; counting survives Disarm/Reset).
func Hits(p Point) int64 {
	if v, ok := hitLog.Load(p); ok {
		return v.(*atomic.Int64).Load()
	}
	return 0
}

func countHit(p Point) {
	v, ok := hitLog.Load(p)
	if !ok {
		v, _ = hitLog.LoadOrStore(p, new(atomic.Int64))
	}
	v.(*atomic.Int64).Add(1)
}

func lookup(p Point) *armedPoint {
	mu.Lock()
	defer mu.Unlock()
	return table[p]
}

// Fire is the injection site entry point: a no-op (one atomic load)
// unless p is armed, in which case it counts the hit and — when the
// schedule fires — returns an error, panics, or sleeps per the spec.
// Sites without an error return propagate the Error kind by panicking
// with the returned error themselves; the containment layers convert it
// back. Corrupt-kind specs never fire here (only through Mutate).
func Fire(p Point) error {
	if armedN.Load() == 0 {
		return nil
	}
	a := lookup(p)
	if a == nil {
		return nil
	}
	if a.spec.Kind == Corrupt {
		// Corrupt specs schedule Mutate calls only; consuming their
		// hit/fire budget here would exhaust Count before the site's
		// Mutate pass ever sees it.
		return nil
	}
	countHit(p)
	h := a.hits.Add(1) - 1
	if !a.shouldFire(h) {
		return nil
	}
	switch a.spec.Kind {
	case Panic:
		panic(fmt.Sprintf("faultinject: %s: injected panic (hit %d)", p, h))
	case Delay:
		time.Sleep(a.spec.Sleep)
		return nil
	default:
		return fmt.Errorf("faultinject: %s (hit %d): %w", p, h, ErrInjected)
	}
}

// Mutate is the byte-corruption site entry point: when p is armed with
// a Corrupt spec and the schedule fires, it flips Spec.Bits bits of buf
// at positions drawn from a SplitMix64 stream seeded by (Spec.Seed, hit
// index). Any other armed kind (or disarmed state) leaves buf
// untouched. Callers hand Mutate the serialized payload just before it
// is written, so checksum verification on the read side is what must
// catch the damage.
func Mutate(p Point, buf []byte) {
	if armedN.Load() == 0 || len(buf) == 0 {
		return
	}
	a := lookup(p)
	if a == nil || a.spec.Kind != Corrupt {
		return
	}
	countHit(p)
	h := a.hits.Add(1) - 1
	if !a.shouldFire(h) {
		return
	}
	s := a.spec.Seed + uint64(h)*0x9e3779b97f4a7c15
	for i := 0; i < a.spec.Bits; i++ {
		s = splitmix64(&s)
		bit := s % uint64(len(buf)*8)
		buf[bit/8] ^= 1 << (bit % 8)
	}
}

// splitmix64 advances *s and returns the next output — the same mixer
// the sampling RNG derivation uses, so corruption positions are stable
// across platforms.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
