package faultinject

import (
	"bytes"
	"errors"
	"testing"
	"time"
)

// TestDisarmedIsNoOp: the production state — nothing armed — must let
// every entry point fall through untouched.
func TestDisarmedIsNoOp(t *testing.T) {
	Reset()
	if Enabled() {
		t.Fatal("Enabled() true with empty registry")
	}
	if err := Fire(PipelineSample); err != nil {
		t.Fatalf("disarmed Fire returned %v", err)
	}
	buf := []byte{1, 2, 3}
	Mutate(PlanSave, buf)
	if !bytes.Equal(buf, []byte{1, 2, 3}) {
		t.Fatalf("disarmed Mutate touched the buffer: %v", buf)
	}
}

// TestErrorSchedule: After skips exactly that many hits, Count bounds
// firings, and fired errors wrap ErrInjected.
func TestErrorSchedule(t *testing.T) {
	defer Reset()
	Arm(CacheShard, Spec{Kind: Error, After: 2, Count: 2})
	var fired int
	for i := 0; i < 6; i++ {
		err := Fire(CacheShard)
		switch {
		case i < 2 || i >= 4:
			if err != nil {
				t.Fatalf("hit %d: unexpected fire: %v", i, err)
			}
		default:
			if !errors.Is(err, ErrInjected) {
				t.Fatalf("hit %d: want ErrInjected, got %v", i, err)
			}
			fired++
		}
	}
	if fired != 2 {
		t.Fatalf("fired %d times, want 2", fired)
	}
}

// TestPanicKind: Panic fires as a panic, not an error.
func TestPanicKind(t *testing.T) {
	defer Reset()
	Arm(TensorWorker, Spec{Kind: Panic, Count: 1})
	defer func() {
		if recover() == nil {
			t.Fatal("expected injected panic")
		}
	}()
	Fire(TensorWorker)
}

// TestDelayKind: Delay sleeps and returns nil.
func TestDelayKind(t *testing.T) {
	defer Reset()
	Arm(PipelineGather, Spec{Kind: Delay, Sleep: 5 * time.Millisecond, Count: 1})
	start := time.Now()
	if err := Fire(PipelineGather); err != nil {
		t.Fatalf("delay fired as error: %v", err)
	}
	if d := time.Since(start); d < 5*time.Millisecond {
		t.Fatalf("delay slept %v, want >= 5ms", d)
	}
}

// TestMutateDeterministic: the same spec corrupts the same bits every
// time, and a different seed corrupts different ones.
func TestMutateDeterministic(t *testing.T) {
	defer Reset()
	base := make([]byte, 64)
	run := func(seed uint64) []byte {
		Reset()
		Arm(PlanSave, Spec{Kind: Corrupt, Seed: seed, Bits: 3, Count: 1})
		buf := append([]byte(nil), base...)
		Mutate(PlanSave, buf)
		return buf
	}
	a, b := run(7), run(7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	if bytes.Equal(a, base) {
		t.Fatal("armed Mutate left the buffer untouched")
	}
	if c := run(8); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}
}

// TestMutateIgnoresNonCorruptKinds: an Error-armed point must not eat a
// Mutate call's schedule or touch bytes.
func TestMutateIgnoresNonCorruptKinds(t *testing.T) {
	defer Reset()
	Arm(PlanSave, Spec{Kind: Error})
	buf := []byte{42}
	Mutate(PlanSave, buf)
	if buf[0] != 42 {
		t.Fatal("non-corrupt spec mutated bytes")
	}
	if !errors.Is(Fire(PlanSave), ErrInjected) {
		t.Fatal("error spec did not fire after Mutate call")
	}
}

// TestHitsSurviveReset: the cumulative hit log is what chaos tests use
// to prove a site was exercised, so Reset must not clear it.
func TestHitsSurviveReset(t *testing.T) {
	defer Reset()
	before := Hits(PlanLoad)
	Arm(PlanLoad, Spec{Kind: Delay, Sleep: time.Microsecond})
	Fire(PlanLoad)
	Fire(PlanLoad)
	Reset()
	if got := Hits(PlanLoad) - before; got != 2 {
		t.Fatalf("Hits delta %d, want 2", got)
	}
}
