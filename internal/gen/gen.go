// Package gen synthesizes graphs with controllable shape statistics.
//
// The paper evaluates on Ogbn-arxiv, Ogbn-products, Reddit and Reddit2 and
// additionally augments the estimator's training set with "randomly
// generated power-law graphs" (§4.1). Since those datasets cannot ship in
// an offline stdlib-only module, this package provides seeded generators
// that reproduce the properties the GNNavigator pipeline actually consumes:
// power-law degree distributions (cacheability, sampling skew), community
// structure correlated with labels (GNN learnability), and tunable scale.
package gen

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"gnnavigator/internal/graph"
)

// BarabasiAlbert generates an undirected preferential-attachment graph with
// n vertices where each arriving vertex attaches to m existing vertices.
// Both arc directions are stored. The resulting degree distribution follows
// a power law with exponent close to 3.
//
// The build is two-pass: generation appends only to the repeated endpoint
// pool (which doubles as the edge log — growth edges are its consecutive
// pairs after the seed prefix), and a counting pass over that pool then
// sizes the CSR arrays exactly. No per-vertex append slices, no CSR
// re-copy: the whole graph costs a handful of flat allocations.
func BarabasiAlbert(rng *rand.Rand, n, m int) (*graph.Graph, error) {
	if n <= m || m < 1 {
		return nil, fmt.Errorf("gen: BarabasiAlbert requires n > m >= 1 (n=%d, m=%d)", n, m)
	}
	// repeated holds one entry per arc endpoint, so sampling uniformly from
	// it implements preferential attachment. After generation, vertex v
	// appears in it exactly degree(v) times.
	repeated := make([]int32, 0, m*(2*n-m-1))

	// Seed clique over the first m+1 vertices.
	for v := 0; v <= m; v++ {
		for u := 0; u <= m; u++ {
			if u != v {
				repeated = append(repeated, int32(v))
			}
		}
	}
	seedArcs := len(repeated)
	chosen := make(map[int32]bool, m)
	targets := make([]int32, 0, m)
	for v := m + 1; v < n; v++ {
		clear(chosen)
		for len(chosen) < m {
			u := repeated[rng.Intn(len(repeated))]
			if int(u) != v {
				chosen[u] = true
			}
		}
		// Map iteration order is randomized; materialize and sort so the
		// generator is deterministic for a fixed seed.
		targets = targets[:0]
		for u := range chosen {
			targets = append(targets, u)
		}
		slices.Sort(targets)
		for _, u := range targets {
			repeated = append(repeated, int32(v), u)
		}
	}

	// Counted pre-size pass: degree(v) = multiplicity of v in repeated.
	offsets := make([]int64, n+1)
	for _, v := range repeated {
		offsets[v+1]++
	}
	for v := 0; v < n; v++ {
		offsets[v+1] += offsets[v]
	}
	adj := make([]int32, len(repeated))
	cur := make([]int64, n)
	copy(cur, offsets[:n])
	emit := func(v, u int32) {
		adj[cur[v]] = u
		cur[v]++
	}
	for v := int32(0); v <= int32(m); v++ {
		for u := int32(0); u <= int32(m); u++ {
			if u != v {
				emit(v, u)
			}
		}
	}
	for k := seedArcs; k < len(repeated); k += 2 {
		v, u := repeated[k], repeated[k+1]
		emit(v, u)
		emit(u, v)
	}
	for v := 0; v < n; v++ {
		slices.Sort(adj[offsets[v]:offsets[v+1]])
	}
	return graph.NewCSR(offsets, adj)
}

// RMAT generates a directed R-MAT graph with 2^scale vertices and
// approximately edgeFactor * 2^scale distinct edges, using the standard
// recursive quadrant probabilities (a, b, c, d), a+b+c+d ≈ 1.
// Self-loops and duplicate edges are discarded.
func RMAT(rng *rand.Rand, scale, edgeFactor int, a, b, c, d float64) (*graph.Graph, error) {
	if scale < 1 || scale > 24 {
		return nil, fmt.Errorf("gen: RMAT scale %d out of [1,24]", scale)
	}
	if s := a + b + c + d; s < 0.999 || s > 1.001 {
		return nil, fmt.Errorf("gen: RMAT probabilities sum to %v, want 1", s)
	}
	n := 1 << scale
	target := edgeFactor * n
	seen := make(map[int64]bool, target)
	adj := make([][]int32, n)
	attempts := 0
	for len(seen) < target && attempts < 20*target {
		attempts++
		var src, dst int
		for level := 0; level < scale; level++ {
			r := rng.Float64()
			switch {
			case r < a:
				// top-left: no bit set
			case r < a+b:
				dst |= 1 << level
			case r < a+b+c:
				src |= 1 << level
			default:
				src |= 1 << level
				dst |= 1 << level
			}
		}
		if src == dst {
			continue
		}
		key := int64(src)<<32 | int64(dst)
		if seen[key] {
			continue
		}
		seen[key] = true
		adj[src] = append(adj[src], int32(dst))
	}
	for v := range adj {
		slices.Sort(adj[v])
	}
	return graph.FromAdjList(adj)
}

// SBMSpec configures a stochastic block model draw.
type SBMSpec struct {
	// CommunitySizes gives the number of vertices in each block.
	CommunitySizes []int
	// AvgIntraDegree is the expected number of within-community neighbors
	// per vertex.
	AvgIntraDegree float64
	// AvgInterDegree is the expected number of cross-community neighbors
	// per vertex.
	AvgInterDegree float64
}

// SBM draws an undirected stochastic block model graph. It returns the
// graph together with the community assignment (one block id per vertex).
// Expected degrees are matched by sampling a fixed number of random
// endpoints rather than by O(n^2) Bernoulli trials, which keeps generation
// linear in the number of edges.
func SBM(rng *rand.Rand, spec SBMSpec) (*graph.Graph, []int32, error) {
	if len(spec.CommunitySizes) == 0 {
		return nil, nil, fmt.Errorf("gen: SBM needs at least one community")
	}
	var n int
	for i, s := range spec.CommunitySizes {
		if s <= 0 {
			return nil, nil, fmt.Errorf("gen: SBM community %d has size %d", i, s)
		}
		n += s
	}
	comm := make([]int32, n)
	members := make([][]int32, len(spec.CommunitySizes))
	v := 0
	for c, s := range spec.CommunitySizes {
		for i := 0; i < s; i++ {
			comm[v] = int32(c)
			members[c] = append(members[c], int32(v))
			v++
		}
	}
	adj := make([][]int32, n)
	addEdge := func(a, b int32) {
		if a == b {
			return
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	// Intra-community edges: each vertex initiates AvgIntraDegree/2
	// expected edges toward a random co-member.
	for u := 0; u < n; u++ {
		m := members[comm[u]]
		if len(m) < 2 {
			continue
		}
		edges := poissonish(rng, spec.AvgIntraDegree/2)
		for i := 0; i < edges; i++ {
			addEdge(int32(u), m[rng.Intn(len(m))])
		}
	}
	// Inter-community edges toward any random vertex.
	for u := 0; u < n; u++ {
		edges := poissonish(rng, spec.AvgInterDegree/2)
		for i := 0; i < edges; i++ {
			addEdge(int32(u), int32(rng.Intn(n)))
		}
	}
	for v := range adj {
		slices.Sort(adj[v])
		adj[v] = dedupSorted(adj[v])
	}
	g, err := graph.FromAdjList(adj)
	if err != nil {
		return nil, nil, err
	}
	return g, comm, nil
}

// PowerLawCommunitySpec describes the combined generator used for the
// dataset stand-ins: community structure (so labels are learnable by a
// GNN) overlaid with preferential attachment (so degrees are power-law,
// which is what drives cache hit rates and sampling skew).
type PowerLawCommunitySpec struct {
	NumVertices    int
	NumCommunities int
	// AvgDegree targets the mean total degree.
	AvgDegree float64
	// IntraFraction in [0,1] is the fraction of each vertex's edges that
	// stay within its community (label homophily).
	IntraFraction float64
	// HubBias >= 0 skews endpoint choice toward already-popular vertices;
	// 0 gives Erdős–Rényi-like degrees, 1 gives strong power-law hubs.
	HubBias float64
}

// PowerLawCommunity draws a graph per spec, returning the graph and the
// community assignment.
func PowerLawCommunity(rng *rand.Rand, spec PowerLawCommunitySpec) (*graph.Graph, []int32, error) {
	n := spec.NumVertices
	k := spec.NumCommunities
	if n < 2 || k < 1 || k > n {
		return nil, nil, fmt.Errorf("gen: bad PowerLawCommunity spec n=%d k=%d", n, k)
	}
	if spec.IntraFraction < 0 || spec.IntraFraction > 1 {
		return nil, nil, fmt.Errorf("gen: IntraFraction %v out of [0,1]", spec.IntraFraction)
	}
	comm := make([]int32, n)
	members := make([][]int32, k)
	for v := 0; v < n; v++ {
		c := int32(v % k)
		comm[v] = c
		members[c] = append(members[c], int32(v))
	}
	adj := make([][]int32, n)
	// weight[v] grows with v's degree to implement preferential endpoint
	// selection. Start at 1 so isolated vertices remain reachable.
	weight := make([]float64, n)
	for i := range weight {
		weight[i] = 1
	}
	// A simple alias-free scheme: maintain a repeated endpoint pool like
	// Barabási–Albert, refreshed lazily. For hub bias < 1 we mix uniform
	// and preferential choices.
	pool := make([]int32, 0, int(spec.AvgDegree)*n)
	for v := 0; v < n; v++ {
		pool = append(pool, int32(v))
	}
	pick := func(cands []int32) int32 {
		if rng.Float64() < spec.HubBias {
			// Preferential: draw from pool until we hit a candidate set
			// member; bounded retries keep worst case linear.
			for try := 0; try < 8; try++ {
				u := pool[rng.Intn(len(pool))]
				if cands == nil {
					return u
				}
				// Membership test by community id (cands are exactly one
				// community's members in our usage).
				if comm[u] == comm[cands[0]] {
					return u
				}
			}
		}
		if cands == nil {
			return int32(rng.Intn(n))
		}
		return cands[rng.Intn(len(cands))]
	}
	halfEdges := int(spec.AvgDegree * float64(n) / 2)
	for i := 0; i < halfEdges; i++ {
		u := int32(rng.Intn(n))
		var v int32
		if rng.Float64() < spec.IntraFraction {
			v = pick(members[comm[u]])
		} else {
			v = pick(nil)
		}
		if u == v {
			continue
		}
		adj[u] = append(adj[u], v)
		adj[v] = append(adj[v], u)
		pool = append(pool, u, v)
		weight[u]++
		weight[v]++
	}
	for v := range adj {
		slices.Sort(adj[v])
		adj[v] = dedupSorted(adj[v])
	}
	g, err := graph.FromAdjList(adj)
	if err != nil {
		return nil, nil, err
	}
	return g, comm, nil
}

// FeatureSpec controls synthetic feature/label generation.
type FeatureSpec struct {
	// Dim is the feature dimensionality.
	Dim int
	// Noise is the standard deviation of per-feature Gaussian noise added
	// to the class centroid; larger values make classification harder.
	Noise float64
	// FlipFraction is the fraction of vertices whose label is replaced by
	// a uniformly random class (label noise, bounds attainable accuracy).
	FlipFraction float64
	// DegreeNoise scales extra noise with normalized log-degree: a vertex
	// at the maximum degree gets Noise·(1+DegreeNoise). This mirrors real
	// social/co-purchase graphs, where hub vertices aggregate many
	// communities and carry weaker class signal — and it is what makes
	// hub-biased (cache-aware) sampling cost accuracy, as the paper's
	// Fig. 1b profiles for 2PGraph.
	DegreeNoise float64
}

// AttachFeatures decorates g with class-conditional features derived from
// the community assignment: class c's centroid is a fixed random unit-ish
// vector, and each vertex's feature is centroid + noise. Labels equal the
// (possibly flipped) community ids.
func AttachFeatures(rng *rand.Rand, g *graph.Graph, comm []int32, numClasses int, spec FeatureSpec) error {
	n := g.NumVertices()
	if len(comm) != n {
		return fmt.Errorf("gen: community length %d != n %d", len(comm), n)
	}
	if spec.Dim < 1 {
		return fmt.Errorf("gen: feature dim %d < 1", spec.Dim)
	}
	centroids := make([][]float32, numClasses)
	for c := range centroids {
		row := make([]float32, spec.Dim)
		for j := range row {
			row[j] = float32(rng.NormFloat64())
		}
		centroids[c] = row
	}
	maxDeg := 1
	for v := 0; v < n; v++ {
		if d := g.Degree(int32(v)); d > maxDeg {
			maxDeg = d
		}
	}
	logMax := math.Log(1 + float64(maxDeg))
	g.FeatDim = spec.Dim
	g.Features = make([]float32, n*spec.Dim)
	g.NumClasses = numClasses
	g.Labels = make([]int32, n)
	for v := 0; v < n; v++ {
		c := comm[v] % int32(numClasses)
		g.Labels[v] = c
		if spec.FlipFraction > 0 && rng.Float64() < spec.FlipFraction {
			g.Labels[v] = int32(rng.Intn(numClasses))
		}
		noise := spec.Noise
		if spec.DegreeNoise > 0 && logMax > 0 {
			degNorm := math.Log(1+float64(g.Degree(int32(v)))) / logMax
			noise *= 1 + spec.DegreeNoise*degNorm
		}
		base := v * spec.Dim
		cen := centroids[c]
		for j := 0; j < spec.Dim; j++ {
			g.Features[base+j] = cen[j] + float32(rng.NormFloat64()*noise)
		}
	}
	return nil
}

// poissonish draws a cheap non-negative integer with the given mean using
// the floor+Bernoulli decomposition (exact mean, bounded variance). It
// avoids a full Poisson sampler, which the pipeline does not need.
func poissonish(rng *rand.Rand, mean float64) int {
	if mean <= 0 {
		return 0
	}
	k := int(mean)
	if rng.Float64() < mean-float64(k) {
		k++
	}
	return k
}

func dedupSorted(s []int32) []int32 {
	if len(s) < 2 {
		return s
	}
	out := s[:1]
	for _, v := range s[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
