package gen

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBarabasiAlbertBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g, err := BarabasiAlbert(rng, 500, 3)
	if err != nil {
		t.Fatalf("BarabasiAlbert: %v", err)
	}
	if g.NumVertices() != 500 {
		t.Fatalf("NumVertices = %d, want 500", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	s := g.Stats()
	if s.Min < 3 {
		t.Errorf("min degree = %d, want >= 3 (every vertex attaches m times)", s.Min)
	}
	// Power-law graphs should have a hub much larger than the mean.
	if float64(s.Max) < 3*s.Mean {
		t.Errorf("max degree %d not hubby enough vs mean %.1f", s.Max, s.Mean)
	}
	if s.GiniCoefficient < 0.1 {
		t.Errorf("Gini = %v, want skewed (>0.1)", s.GiniCoefficient)
	}
}

func TestBarabasiAlbertRejectsBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if _, err := BarabasiAlbert(rng, 3, 3); err == nil {
		t.Error("n == m accepted")
	}
	if _, err := BarabasiAlbert(rng, 10, 0); err == nil {
		t.Error("m == 0 accepted")
	}
}

func TestBarabasiAlbertDeterministic(t *testing.T) {
	g1, err := BarabasiAlbert(rand.New(rand.NewSource(42)), 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := BarabasiAlbert(rand.New(rand.NewSource(42)), 200, 2)
	if err != nil {
		t.Fatal(err)
	}
	if g1.NumEdges() != g2.NumEdges() {
		t.Fatalf("same seed produced %d vs %d edges", g1.NumEdges(), g2.NumEdges())
	}
	for v := int32(0); v < 200; v++ {
		a, b := g1.Neighbors(v), g2.Neighbors(v)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("same seed produced different adjacency at vertex %d", v)
			}
		}
	}
}

func TestRMATBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g, err := RMAT(rng, 10, 8, 0.57, 0.19, 0.19, 0.05)
	if err != nil {
		t.Fatalf("RMAT: %v", err)
	}
	if g.NumVertices() != 1024 {
		t.Fatalf("NumVertices = %d, want 1024", g.NumVertices())
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// RMAT with skewed quadrants should be heavy-tailed.
	s := g.Stats()
	if s.GiniCoefficient < 0.2 {
		t.Errorf("RMAT Gini = %v, want > 0.2", s.GiniCoefficient)
	}
	if g.NumEdges() < int64(4*1024) {
		t.Errorf("NumEdges = %d, want at least half the 8x target", g.NumEdges())
	}
}

func TestRMATRejectsBadArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	if _, err := RMAT(rng, 0, 8, 0.25, 0.25, 0.25, 0.25); err == nil {
		t.Error("scale 0 accepted")
	}
	if _, err := RMAT(rng, 5, 8, 0.9, 0.2, 0.2, 0.2); err == nil {
		t.Error("probabilities summing to 1.5 accepted")
	}
}

func TestSBMCommunityStructure(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g, comm, err := SBM(rng, SBMSpec{
		CommunitySizes: []int{300, 300, 300},
		AvgIntraDegree: 12,
		AvgInterDegree: 2,
	})
	if err != nil {
		t.Fatalf("SBM: %v", err)
	}
	if g.NumVertices() != 900 || len(comm) != 900 {
		t.Fatalf("sizes wrong: n=%d, len(comm)=%d", g.NumVertices(), len(comm))
	}
	// Most edges should be intra-community.
	var intra, total int
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(int32(v)) {
			total++
			if comm[u] == comm[int32(v)] {
				intra++
			}
		}
	}
	frac := float64(intra) / float64(total)
	if frac < 0.7 {
		t.Errorf("intra-community edge fraction = %.2f, want > 0.7", frac)
	}
}

func TestPowerLawCommunity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g, comm, err := PowerLawCommunity(rng, PowerLawCommunitySpec{
		NumVertices:    2000,
		NumCommunities: 8,
		AvgDegree:      16,
		IntraFraction:  0.8,
		HubBias:        0.8,
	})
	if err != nil {
		t.Fatalf("PowerLawCommunity: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.Mean < 8 || s.Mean > 24 {
		t.Errorf("mean degree = %.1f, want near 16 (dedup removes some)", s.Mean)
	}
	if s.GiniCoefficient < 0.15 {
		t.Errorf("Gini = %v, want skewed (hub bias)", s.GiniCoefficient)
	}
	// Homophily check.
	var intra, total int
	for v := 0; v < g.NumVertices(); v++ {
		for _, u := range g.Neighbors(int32(v)) {
			total++
			if comm[u] == comm[v] {
				intra++
			}
		}
	}
	if frac := float64(intra) / float64(total); frac < 0.5 {
		t.Errorf("homophily = %.2f, want > 0.5", frac)
	}
}

func TestAttachFeatures(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, comm, err := PowerLawCommunity(rng, PowerLawCommunitySpec{
		NumVertices: 300, NumCommunities: 4, AvgDegree: 8, IntraFraction: 0.7, HubBias: 0.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachFeatures(rng, g, comm, 4, FeatureSpec{Dim: 16, Noise: 0.3}); err != nil {
		t.Fatalf("AttachFeatures: %v", err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	if g.FeatDim != 16 || len(g.Features) != 300*16 {
		t.Fatalf("feature shape wrong: dim=%d len=%d", g.FeatDim, len(g.Features))
	}
	// With low noise, same-class features should be closer than cross-class
	// ones on average.
	dist := func(a, b []float32) float64 {
		var s float64
		for i := range a {
			d := float64(a[i] - b[i])
			s += d * d
		}
		return s
	}
	var same, cross float64
	var nSame, nCross int
	for i := 0; i < 200; i++ {
		u, v := int32(rng.Intn(300)), int32(rng.Intn(300))
		if u == v {
			continue
		}
		d := dist(g.Feature(u), g.Feature(v))
		if g.Labels[u] == g.Labels[v] {
			same += d
			nSame++
		} else {
			cross += d
			nCross++
		}
	}
	if nSame == 0 || nCross == 0 {
		t.Skip("degenerate draw")
	}
	if same/float64(nSame) >= cross/float64(nCross) {
		t.Errorf("same-class mean dist %.2f >= cross-class %.2f",
			same/float64(nSame), cross/float64(nCross))
	}
}

func TestAttachFeaturesErrors(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, comm, err := SBM(rng, SBMSpec{CommunitySizes: []int{10, 10}, AvgIntraDegree: 4, AvgInterDegree: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := AttachFeatures(rng, g, comm[:5], 2, FeatureSpec{Dim: 4}); err == nil {
		t.Error("short community slice accepted")
	}
	if err := AttachFeatures(rng, g, comm, 2, FeatureSpec{Dim: 0}); err == nil {
		t.Error("zero feature dim accepted")
	}
}

// TestPoissonishMeanProperty: sample mean must approximate the target mean.
func TestPoissonishMeanProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		mean := rng.Float64() * 10
		var sum int
		const trials = 4000
		for i := 0; i < trials; i++ {
			sum += poissonish(rng, mean)
		}
		got := float64(sum) / trials
		return got > mean-0.5 && got < mean+0.5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestPoissonishZero(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	if got := poissonish(rng, 0); got != 0 {
		t.Errorf("poissonish(0) = %d, want 0", got)
	}
	if got := poissonish(rng, -3); got != 0 {
		t.Errorf("poissonish(-3) = %d, want 0", got)
	}
}
