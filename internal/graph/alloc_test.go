//go:build !race

package graph

import (
	"math/rand"
	"testing"
)

// TestInducedSubgraphWithAllocBound pins the steady-state allocation
// count of a scratch-reusing induction: only what the returned Graph
// keeps (offsets, adj, the struct, its Name) may allocate — the remap
// table must not. Guarded !race because the race runtime adds
// bookkeeping allocations.
func TestInducedSubgraphWithAllocBound(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	adj := make([][]int32, 300)
	for v := range adj {
		for d := 0; d < 6; d++ {
			adj[v] = append(adj[v], int32(rng.Intn(len(adj))))
		}
	}
	g, err := FromAdjList(adj)
	if err != nil {
		t.Fatal(err)
	}
	verts := make([]int32, 50)
	for i := range verts {
		verts[i] = int32(i * 5)
	}
	var f Frontier
	if _, err := g.InducedSubgraphWith(verts, &f); err != nil { // warm up
		t.Fatal(err)
	}
	got := testing.AllocsPerRun(20, func() {
		if _, err := g.InducedSubgraphWith(verts, &f); err != nil {
			t.Fatal(err)
		}
	})
	if got > 6 {
		t.Errorf("InducedSubgraphWith steady-state allocs/op = %v, want <= 6", got)
	}
}
