package graph

// Frontier is an epoch-stamped dense vertex table: O(1) membership and
// position lookup over a vertex space of known size, with O(1) reset.
// It replaces the `map[int32]int32` / `map[int32]bool` tables the batch
// assembly hot path used to rebuild per block — no hashing, and no
// clearing between rounds: a round's entries are the slots whose stamp
// equals the current epoch, so Reset just bumps the epoch and every stale
// slot becomes vacant at once.
//
// Overflow rule: the epoch counter is a uint32, so after 2^32-1 resets it
// would wrap to 0 — the value every fresh slot holds — and stale entries
// from 2^32 rounds ago would read as live. Reset detects the wrap, clears
// the stamp array once (the only O(n) reset in ~4 billion), and restarts
// at epoch 1. Growing the table likewise restarts at epoch 1 because the
// new arrays are all-zero.
//
// A Frontier is single-owner scratch: samplers embed one per producer
// stage and the pipeline engine guarantees each stage runs on one
// goroutine, so no locking is needed. The zero value is ready to use.
type Frontier struct {
	pos   []int32
	stamp []uint32
	epoch uint32
}

// Reset prepares the table for a new round over vertex ids in [0, n).
// Entries from previous rounds become vacant; no memory is written unless
// the table must grow or the epoch counter wraps.
func (f *Frontier) Reset(n int) {
	if len(f.stamp) < n {
		f.stamp = make([]uint32, n)
		f.pos = make([]int32, n)
		f.epoch = 0
	}
	f.epoch++
	if f.epoch == 0 { // uint32 wrap: clear once, restart
		clear(f.stamp)
		f.epoch = 1
	}
}

// Has reports whether v was inserted since the last Reset.
func (f *Frontier) Has(v int32) bool { return f.stamp[v] == f.epoch }

// Pos returns v's stored value and whether v is present this round.
func (f *Frontier) Pos(v int32) (int32, bool) {
	if f.stamp[v] == f.epoch {
		return f.pos[v], true
	}
	return 0, false
}

// Set inserts v with value p (overwriting any value from this round).
func (f *Frontier) Set(v, p int32) {
	f.stamp[v] = f.epoch
	f.pos[v] = p
}

// PosOrInsert returns v's stored value when v is live this round;
// otherwise it inserts v with value next and reports false. The fused
// form saves the second table walk on the miss path of dedup/remap
// loops, which run once per sampled edge.
func (f *Frontier) PosOrInsert(v, next int32) (int32, bool) {
	if f.stamp[v] == f.epoch {
		return f.pos[v], true
	}
	f.stamp[v] = f.epoch
	f.pos[v] = next
	return next, false
}
