package graph

import "testing"

func TestFrontierBasics(t *testing.T) {
	var f Frontier
	f.Reset(10)
	if f.Has(3) {
		t.Fatal("fresh table reports membership")
	}
	f.Set(3, 7)
	if !f.Has(3) {
		t.Fatal("Set did not insert")
	}
	if p, ok := f.Pos(3); !ok || p != 7 {
		t.Fatalf("Pos(3) = %d,%v want 7,true", p, ok)
	}
	if _, ok := f.Pos(4); ok {
		t.Fatal("Pos reports an absent vertex")
	}
	f.Set(3, 9) // overwrite within a round
	if p, _ := f.Pos(3); p != 9 {
		t.Fatalf("overwrite: Pos(3) = %d want 9", p)
	}
	f.Reset(10)
	if f.Has(3) {
		t.Fatal("Reset did not vacate previous round's entries")
	}
}

func TestFrontierGrowAndShrinkRequests(t *testing.T) {
	var f Frontier
	f.Reset(4)
	f.Set(2, 1)
	f.Reset(100) // grow: fresh arrays, nothing live
	for v := int32(0); v < 100; v++ {
		if f.Has(v) {
			t.Fatalf("vertex %d live after grow", v)
		}
	}
	f.Set(99, 5)
	f.Reset(4) // smaller n keeps the bigger table
	if f.Has(99) {
		t.Fatal("entry survived Reset")
	}
}

// TestFrontierStampOverflow exercises the wrap rule: after 2^32-1 resets
// the epoch counter would collide with the zero value of fresh slots, so
// Reset must clear the stamps once and restart at epoch 1.
func TestFrontierStampOverflow(t *testing.T) {
	var f Frontier
	f.Reset(8)
	f.Set(5, 1)
	f.epoch = ^uint32(0) // as if 2^32-1 rounds had passed; slot 5 stamp is 1
	f.stamp[5] = f.epoch // make slot 5 live in the pre-wrap round
	f.Reset(8)
	if f.epoch != 1 {
		t.Fatalf("post-wrap epoch = %d, want 1", f.epoch)
	}
	for v := int32(0); v < 8; v++ {
		if f.Has(v) {
			t.Fatalf("vertex %d live after stamp overflow reset", v)
		}
	}
	f.Set(2, 3)
	if p, ok := f.Pos(2); !ok || p != 3 {
		t.Fatal("table unusable after overflow reset")
	}
}

func TestInducedSubgraphWithReuse(t *testing.T) {
	g, err := FromAdjList([][]int32{{1, 2}, {0, 2}, {0, 1, 3}, {2}})
	if err != nil {
		t.Fatal(err)
	}
	var f Frontier
	// Repeated inductions through one scratch table must match the
	// one-shot API, including duplicate/range error behavior.
	for i := 0; i < 3; i++ {
		sub, err := g.InducedSubgraphWith([]int32{0, 2}, &f)
		if err != nil {
			t.Fatal(err)
		}
		want, err := g.InducedSubgraph([]int32{0, 2})
		if err != nil {
			t.Fatal(err)
		}
		if sub.NumVertices() != want.NumVertices() || sub.NumEdges() != want.NumEdges() {
			t.Fatalf("iteration %d: reused-scratch induction diverged", i)
		}
	}
	if _, err := g.InducedSubgraphWith([]int32{1, 1}, &f); err == nil {
		t.Fatal("duplicate vertex not rejected")
	}
	if _, err := g.InducedSubgraphWith([]int32{9}, &f); err == nil {
		t.Fatal("out-of-range vertex not rejected")
	}
	// The failed calls must not poison the next successful one.
	if _, err := g.InducedSubgraphWith([]int32{3, 2}, &f); err != nil {
		t.Fatalf("induction after error: %v", err)
	}
}
