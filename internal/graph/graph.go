// Package graph provides the compressed-sparse-row (CSR) graph substrate
// used throughout GNNavigator: adjacency storage, degree statistics,
// subgraph induction, and vertex reordering.
//
// All vertex identifiers are dense int32 indices in [0, NumVertices).
// Graphs are treated as directed adjacency in CSR form; undirected graphs
// store both arc directions. The package is deliberately free of any
// training or sampling logic — those live in higher layers.
package graph

import (
	"cmp"
	"errors"
	"fmt"
	"math"
	"slices"
)

// Graph is an immutable CSR adjacency structure.
//
// The neighbors of vertex v occupy Adj[Offsets[v]:Offsets[v+1]].
// A Graph additionally carries per-vertex dense features and integer
// class labels, because every consumer in this repository (samplers,
// caches, trainers) needs them together.
type Graph struct {
	offsets []int64
	adj     []int32

	// Features is row-major [NumVertices x FeatDim]. May be nil for
	// topology-only graphs.
	Features []float32
	FeatDim  int

	// Labels holds a class id per vertex, or nil.
	Labels []int32
	// NumClasses is the number of distinct label classes (0 if unlabeled).
	NumClasses int

	// Name is an optional human-readable identifier (dataset name).
	Name string
}

// ErrMalformed reports a structurally invalid CSR input.
var ErrMalformed = errors.New("graph: malformed CSR input")

// NewCSR builds a Graph from raw CSR arrays. It validates monotonicity of
// offsets and range of adjacency targets.
func NewCSR(offsets []int64, adj []int32) (*Graph, error) {
	if len(offsets) == 0 {
		return nil, fmt.Errorf("%w: empty offsets", ErrMalformed)
	}
	n := len(offsets) - 1
	if offsets[0] != 0 {
		return nil, fmt.Errorf("%w: offsets[0] = %d, want 0", ErrMalformed, offsets[0])
	}
	for i := 0; i < n; i++ {
		if offsets[i+1] < offsets[i] {
			return nil, fmt.Errorf("%w: offsets not monotonic at %d", ErrMalformed, i)
		}
	}
	if offsets[n] != int64(len(adj)) {
		return nil, fmt.Errorf("%w: offsets[n]=%d != len(adj)=%d", ErrMalformed, offsets[n], len(adj))
	}
	for i, u := range adj {
		if u < 0 || int(u) >= n {
			return nil, fmt.Errorf("%w: adj[%d]=%d out of range [0,%d)", ErrMalformed, i, u, n)
		}
	}
	return &Graph{offsets: offsets, adj: adj}, nil
}

// FromAdjList builds a Graph from an adjacency list. The adjacency list is
// copied into CSR form; neighbor order is preserved.
func FromAdjList(neighbors [][]int32) (*Graph, error) {
	n := len(neighbors)
	offsets := make([]int64, n+1)
	var m int64
	for i, ns := range neighbors {
		offsets[i] = m
		m += int64(len(ns))
		_ = i
	}
	offsets[n] = m
	adj := make([]int32, 0, m)
	for _, ns := range neighbors {
		adj = append(adj, ns...)
	}
	return NewCSR(offsets, adj)
}

// NumVertices returns |V|.
func (g *Graph) NumVertices() int { return len(g.offsets) - 1 }

// NumEdges returns the number of stored arcs |E|.
func (g *Graph) NumEdges() int64 { return g.offsets[len(g.offsets)-1] }

// Degree returns the out-degree of v.
func (g *Graph) Degree(v int32) int {
	return int(g.offsets[v+1] - g.offsets[v])
}

// Neighbors returns the neighbor slice of v. The slice aliases internal
// storage and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 {
	return g.adj[g.offsets[v]:g.offsets[v+1]]
}

// Offsets exposes the CSR offsets array (read-only by convention).
func (g *Graph) Offsets() []int64 { return g.offsets }

// Adj exposes the CSR adjacency array (read-only by convention).
func (g *Graph) Adj() []int32 { return g.adj }

// Feature returns the feature row of v (aliases internal storage).
func (g *Graph) Feature(v int32) []float32 {
	base := int(v) * g.FeatDim
	return g.Features[base : base+g.FeatDim]
}

// DegreeStats summarizes the degree distribution of a graph. It drives the
// analytic parts of the performance estimator (Eq. 11–12 of the paper).
type DegreeStats struct {
	Min, Max int
	Mean     float64
	// Std is the standard deviation of the degree distribution.
	Std float64
	// PowerLawAlpha is the fitted exponent of P(d) ~ d^-alpha via the
	// Clauset-style MLE over degrees >= 1 (2.0–3.5 for typical graphs).
	PowerLawAlpha float64
	// GiniCoefficient in [0,1]: 0 = perfectly uniform degrees,
	// close to 1 = extremely skewed. Captures cacheability.
	GiniCoefficient float64
}

// Stats computes DegreeStats over all vertices.
func (g *Graph) Stats() DegreeStats {
	n := g.NumVertices()
	if n == 0 {
		return DegreeStats{}
	}
	degs := make([]int, n)
	var sum float64
	min, max := math.MaxInt, 0
	for v := 0; v < n; v++ {
		d := g.Degree(int32(v))
		degs[v] = d
		sum += float64(d)
		if d < min {
			min = d
		}
		if d > max {
			max = d
		}
	}
	mean := sum / float64(n)
	var sq float64
	for _, d := range degs {
		diff := float64(d) - mean
		sq += diff * diff
	}
	std := math.Sqrt(sq / float64(n))

	// MLE power-law fit: alpha = 1 + n' / sum(ln(d/dmin)) over d >= dmin.
	const dmin = 1.0
	var lnSum float64
	var np int
	for _, d := range degs {
		if d >= 1 {
			lnSum += math.Log(float64(d) / dmin)
			np++
		}
	}
	alpha := 0.0
	if lnSum > 0 {
		alpha = 1 + float64(np)/lnSum
	}

	slices.Sort(degs)
	// Gini = sum_i (2i - n - 1) d_i / (n * sum d).
	var gini float64
	for i, d := range degs {
		gini += float64(2*(i+1)-n-1) * float64(d)
	}
	if sum > 0 {
		gini /= float64(n) * sum
	}
	return DegreeStats{
		Min: min, Max: max, Mean: mean, Std: std,
		PowerLawAlpha: alpha, GiniCoefficient: gini,
	}
}

// DegreeOrder returns the vertex ids sorted by descending degree.
// Ties are broken by ascending id so the order is deterministic.
// PaGraph-style static caches fill device memory in this order.
func (g *Graph) DegreeOrder() []int32 {
	n := g.NumVertices()
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortFunc(order, func(a, b int32) int {
		if da, db := g.Degree(a), g.Degree(b); da != db {
			return cmp.Compare(db, da)
		}
		return cmp.Compare(a, b)
	})
	return order
}

// InducedSubgraph extracts the subgraph induced by vertices, relabeling
// them 0..len(vertices)-1 in input order. Edges whose endpoint is outside
// the vertex set are dropped. Features and labels are gathered when
// present. Duplicate input vertices are an error.
//
// This one-shot form keeps an O(len(vertices)) hash map: a small vertex
// set on a huge graph should not pay for |V|-length scratch arrays. Call
// sites that induce repeatedly should hold a Frontier and use
// InducedSubgraphWith, whose dense table amortizes to zero per call.
// Both forms produce identical graphs (no iteration-order dependence).
func (g *Graph) InducedSubgraph(vertices []int32) (*Graph, error) {
	remap := make(map[int32]int32, len(vertices))
	for i, v := range vertices {
		if v < 0 || int(v) >= g.NumVertices() {
			return nil, fmt.Errorf("graph: induced subgraph vertex %d out of range", v)
		}
		if _, dup := remap[v]; dup {
			return nil, fmt.Errorf("graph: duplicate vertex %d in induced subgraph", v)
		}
		remap[v] = int32(i)
	}
	offsets := make([]int64, len(vertices)+1)
	var adj []int32
	for i, v := range vertices {
		offsets[i] = int64(len(adj))
		for _, u := range g.Neighbors(v) {
			if lu, ok := remap[u]; ok {
				adj = append(adj, lu)
			}
		}
	}
	offsets[len(vertices)] = int64(len(adj))
	return g.finishInduced(vertices, offsets, adj)
}

// InducedSubgraphWith is InducedSubgraph with a caller-owned
// epoch-stamped remap table, for call sites that induce repeatedly
// (dataset scaling sweeps, SAINT-style epochs): the table resets by
// epoch bump instead of rebuilding a hash map per call, and the adjacency
// is pre-sized to the vertex set's total degree.
func (g *Graph) InducedSubgraphWith(vertices []int32, remap *Frontier) (*Graph, error) {
	remap.Reset(g.NumVertices())
	var bound int64
	for i, v := range vertices {
		if v < 0 || int(v) >= g.NumVertices() {
			return nil, fmt.Errorf("graph: induced subgraph vertex %d out of range", v)
		}
		if _, dup := remap.PosOrInsert(v, int32(i)); dup {
			return nil, fmt.Errorf("graph: duplicate vertex %d in induced subgraph", v)
		}
		bound += int64(g.Degree(v))
	}
	offsets := make([]int64, len(vertices)+1)
	adj := make([]int32, 0, bound)
	for i, v := range vertices {
		offsets[i] = int64(len(adj))
		for _, u := range g.Neighbors(v) {
			if lu, ok := remap.Pos(u); ok {
				adj = append(adj, lu)
			}
		}
	}
	offsets[len(vertices)] = int64(len(adj))
	return g.finishInduced(vertices, offsets, adj)
}

// finishInduced wraps induced CSR arrays into a Graph and gathers
// features/labels; shared tail of both induction forms.
func (g *Graph) finishInduced(vertices []int32, offsets []int64, adj []int32) (*Graph, error) {
	sub, err := NewCSR(offsets, adj)
	if err != nil {
		return nil, err
	}
	sub.Name = g.Name + "/induced"
	if g.Features != nil {
		sub.FeatDim = g.FeatDim
		sub.Features = make([]float32, len(vertices)*g.FeatDim)
		for i, v := range vertices {
			copy(sub.Features[i*g.FeatDim:(i+1)*g.FeatDim], g.Feature(v))
		}
	}
	if g.Labels != nil {
		sub.NumClasses = g.NumClasses
		sub.Labels = make([]int32, len(vertices))
		for i, v := range vertices {
			sub.Labels[i] = g.Labels[v]
		}
	}
	return sub, nil
}

// Relabel returns a new Graph with vertex v renamed to perm[v]. perm must
// be a permutation of [0, n). Degree-descending relabeling improves cache
// locality and is the "Reorder" knob of the runtime backend.
func (g *Graph) Relabel(perm []int32) (*Graph, error) {
	n := g.NumVertices()
	if len(perm) != n {
		return nil, fmt.Errorf("graph: perm length %d != n %d", len(perm), n)
	}
	seen := make([]bool, n)
	for _, p := range perm {
		if p < 0 || int(p) >= n || seen[p] {
			return nil, fmt.Errorf("graph: perm is not a permutation (value %d)", p)
		}
		seen[p] = true
	}
	inv := make([]int32, n) // inv[new] = old
	for old, nw := range perm {
		inv[nw] = int32(old)
	}
	offsets := make([]int64, n+1)
	adj := make([]int32, 0, g.NumEdges())
	for nw := 0; nw < n; nw++ {
		offsets[nw] = int64(len(adj))
		old := inv[nw]
		for _, u := range g.Neighbors(old) {
			adj = append(adj, perm[u])
		}
	}
	offsets[n] = int64(len(adj))
	out, err := NewCSR(offsets, adj)
	if err != nil {
		return nil, err
	}
	out.Name = g.Name
	if g.Features != nil {
		out.FeatDim = g.FeatDim
		out.Features = make([]float32, len(g.Features))
		for nw := 0; nw < n; nw++ {
			copy(out.Features[nw*g.FeatDim:(nw+1)*g.FeatDim], g.Feature(inv[nw]))
		}
	}
	if g.Labels != nil {
		out.NumClasses = g.NumClasses
		out.Labels = make([]int32, n)
		for nw := 0; nw < n; nw++ {
			out.Labels[nw] = g.Labels[inv[nw]]
		}
	}
	return out, nil
}

// DegreeReorderPerm returns the permutation that relabels vertices in
// descending-degree order (hub vertices get the smallest new ids).
func (g *Graph) DegreeReorderPerm() []int32 {
	order := g.DegreeOrder()
	perm := make([]int32, len(order))
	for nw, old := range order {
		perm[old] = int32(nw)
	}
	return perm
}

// Validate re-checks structural invariants; useful in tests and after
// hand-construction.
func (g *Graph) Validate() error {
	_, err := NewCSR(g.offsets, g.adj)
	if err != nil {
		return err
	}
	if g.Features != nil && len(g.Features) != g.NumVertices()*g.FeatDim {
		return fmt.Errorf("%w: features length %d != n*dim %d", ErrMalformed,
			len(g.Features), g.NumVertices()*g.FeatDim)
	}
	if g.Labels != nil {
		if len(g.Labels) != g.NumVertices() {
			return fmt.Errorf("%w: labels length %d != n %d", ErrMalformed, len(g.Labels), g.NumVertices())
		}
		for v, c := range g.Labels {
			if c < 0 || int(c) >= g.NumClasses {
				return fmt.Errorf("%w: label[%d]=%d out of range [0,%d)", ErrMalformed, v, c, g.NumClasses)
			}
		}
	}
	return nil
}
