package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// triangle returns the directed triangle 0->1,1->2,2->0 plus reverse arcs.
func triangle(t *testing.T) *Graph {
	t.Helper()
	g, err := FromAdjList([][]int32{{1, 2}, {2, 0}, {0, 1}})
	if err != nil {
		t.Fatalf("FromAdjList: %v", err)
	}
	return g
}

func TestNewCSRValid(t *testing.T) {
	g, err := NewCSR([]int64{0, 2, 3, 3}, []int32{1, 2, 0})
	if err != nil {
		t.Fatalf("NewCSR: %v", err)
	}
	if g.NumVertices() != 3 {
		t.Errorf("NumVertices = %d, want 3", g.NumVertices())
	}
	if g.NumEdges() != 3 {
		t.Errorf("NumEdges = %d, want 3", g.NumEdges())
	}
	if got := g.Degree(0); got != 2 {
		t.Errorf("Degree(0) = %d, want 2", got)
	}
	if got := g.Degree(2); got != 0 {
		t.Errorf("Degree(2) = %d, want 0", got)
	}
}

func TestNewCSRRejectsMalformed(t *testing.T) {
	cases := []struct {
		name    string
		offsets []int64
		adj     []int32
	}{
		{"empty offsets", nil, nil},
		{"nonzero first", []int64{1, 2}, []int32{0}},
		{"non-monotonic", []int64{0, 2, 1}, []int32{0, 1}},
		{"length mismatch", []int64{0, 1}, []int32{0, 1}},
		{"target out of range", []int64{0, 1}, []int32{5}},
		{"negative target", []int64{0, 1}, []int32{-1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := NewCSR(tc.offsets, tc.adj); err == nil {
				t.Errorf("NewCSR(%v, %v) succeeded, want error", tc.offsets, tc.adj)
			}
		})
	}
}

func TestNeighbors(t *testing.T) {
	g := triangle(t)
	ns := g.Neighbors(0)
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 2 {
		t.Errorf("Neighbors(0) = %v, want [1 2]", ns)
	}
}

func TestStatsUniform(t *testing.T) {
	// 4-cycle: every vertex has degree 2.
	g, err := FromAdjList([][]int32{{1, 3}, {0, 2}, {1, 3}, {2, 0}})
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.Min != 2 || s.Max != 2 {
		t.Errorf("Min/Max = %d/%d, want 2/2", s.Min, s.Max)
	}
	if s.Mean != 2 {
		t.Errorf("Mean = %v, want 2", s.Mean)
	}
	if s.Std != 0 {
		t.Errorf("Std = %v, want 0", s.Std)
	}
	if s.GiniCoefficient > 1e-12 {
		t.Errorf("Gini = %v, want 0 for uniform degrees", s.GiniCoefficient)
	}
}

func TestStatsSkewed(t *testing.T) {
	// Star: hub 0 connected to 1..9.
	adj := make([][]int32, 10)
	for i := int32(1); i < 10; i++ {
		adj[0] = append(adj[0], i)
		adj[i] = []int32{0}
	}
	g, err := FromAdjList(adj)
	if err != nil {
		t.Fatal(err)
	}
	s := g.Stats()
	if s.Max != 9 || s.Min != 1 {
		t.Errorf("Max/Min = %d/%d, want 9/1", s.Max, s.Min)
	}
	if s.GiniCoefficient <= 0 {
		t.Errorf("Gini = %v, want > 0 for star", s.GiniCoefficient)
	}
}

func TestDegreeOrderDeterministic(t *testing.T) {
	adj := [][]int32{{1, 2, 3}, {0}, {0}, {0, 1, 2}}
	g, err := FromAdjList(adj)
	if err != nil {
		t.Fatal(err)
	}
	order := g.DegreeOrder()
	// Vertices 0 and 3 have degree 3 (tie broken by id), then 1, 2 (degree 1).
	want := []int32{0, 3, 1, 2}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("DegreeOrder = %v, want %v", order, want)
		}
	}
}

func TestInducedSubgraph(t *testing.T) {
	g := triangle(t)
	g.FeatDim = 2
	g.Features = []float32{0, 0, 1, 1, 2, 2}
	g.Labels = []int32{0, 1, 0}
	g.NumClasses = 2

	sub, err := g.InducedSubgraph([]int32{0, 2})
	if err != nil {
		t.Fatalf("InducedSubgraph: %v", err)
	}
	if sub.NumVertices() != 2 {
		t.Fatalf("sub.NumVertices = %d, want 2", sub.NumVertices())
	}
	// Original edges among {0,2}: 0->2 and 2->0. Relabeled: 0->1, 1->0.
	if ns := sub.Neighbors(0); len(ns) != 1 || ns[0] != 1 {
		t.Errorf("sub.Neighbors(0) = %v, want [1]", ns)
	}
	if ns := sub.Neighbors(1); len(ns) != 1 || ns[0] != 0 {
		t.Errorf("sub.Neighbors(1) = %v, want [0]", ns)
	}
	if sub.Features[2] != 2 || sub.Features[3] != 2 {
		t.Errorf("sub feature row 1 = %v, want [2 2]", sub.Features[2:4])
	}
	if sub.Labels[1] != 0 {
		t.Errorf("sub.Labels[1] = %d, want 0", sub.Labels[1])
	}
	if err := sub.Validate(); err != nil {
		t.Errorf("sub.Validate: %v", err)
	}
}

func TestInducedSubgraphErrors(t *testing.T) {
	g := triangle(t)
	if _, err := g.InducedSubgraph([]int32{0, 0}); err == nil {
		t.Error("duplicate vertices accepted")
	}
	if _, err := g.InducedSubgraph([]int32{7}); err == nil {
		t.Error("out-of-range vertex accepted")
	}
}

func TestRelabelIdentity(t *testing.T) {
	g := triangle(t)
	out, err := g.Relabel([]int32{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	for v := int32(0); v < 3; v++ {
		a, b := g.Neighbors(v), out.Neighbors(v)
		if len(a) != len(b) {
			t.Fatalf("degree mismatch at %d", v)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Errorf("Neighbors(%d)[%d] = %d, want %d", v, i, b[i], a[i])
			}
		}
	}
}

func TestRelabelRejectsNonPermutation(t *testing.T) {
	g := triangle(t)
	if _, err := g.Relabel([]int32{0, 0, 1}); err == nil {
		t.Error("non-permutation accepted")
	}
	if _, err := g.Relabel([]int32{0, 1}); err == nil {
		t.Error("short perm accepted")
	}
}

func TestDegreeReorderPermMovesHubFirst(t *testing.T) {
	// Vertex 2 is the hub.
	adj := [][]int32{{2}, {2}, {0, 1, 3}, {2}}
	g, err := FromAdjList(adj)
	if err != nil {
		t.Fatal(err)
	}
	perm := g.DegreeReorderPerm()
	if perm[2] != 0 {
		t.Errorf("perm[hub] = %d, want 0", perm[2])
	}
	out, err := g.Relabel(perm)
	if err != nil {
		t.Fatal(err)
	}
	if out.Degree(0) != 3 {
		t.Errorf("relabeled vertex 0 degree = %d, want 3", out.Degree(0))
	}
}

// TestRelabelPreservesEdgesProperty checks, for random graphs and random
// permutations, that relabeling preserves edge multiset and degrees.
func TestRelabelPreservesEdgesProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		adj := make([][]int32, n)
		for v := 0; v < n; v++ {
			d := rng.Intn(5)
			for i := 0; i < d; i++ {
				adj[v] = append(adj[v], int32(rng.Intn(n)))
			}
		}
		g, err := FromAdjList(adj)
		if err != nil {
			return false
		}
		perm := make([]int32, n)
		for i := range perm {
			perm[i] = int32(i)
		}
		rng.Shuffle(n, func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
		out, err := g.Relabel(perm)
		if err != nil {
			return false
		}
		if out.NumEdges() != g.NumEdges() {
			return false
		}
		// Degree of old vertex v must equal degree of perm[v].
		for v := 0; v < n; v++ {
			if g.Degree(int32(v)) != out.Degree(perm[v]) {
				return false
			}
		}
		// Edge (v,u) must map to (perm[v], perm[u]).
		for v := 0; v < n; v++ {
			old := g.Neighbors(int32(v))
			nw := out.Neighbors(perm[v])
			for i := range old {
				if nw[i] != perm[old[i]] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestInducedSubgraphProperty checks the induced subgraph never contains a
// vertex outside the selection and preserves internal edges.
func TestInducedSubgraphProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(40)
		adj := make([][]int32, n)
		for v := 0; v < n; v++ {
			d := rng.Intn(6)
			for i := 0; i < d; i++ {
				adj[v] = append(adj[v], int32(rng.Intn(n)))
			}
		}
		g, err := FromAdjList(adj)
		if err != nil {
			return false
		}
		k := 1 + rng.Intn(n)
		sel := rng.Perm(n)[:k]
		verts := make([]int32, k)
		inSel := map[int32]bool{}
		for i, v := range sel {
			verts[i] = int32(v)
			inSel[int32(v)] = true
		}
		sub, err := g.InducedSubgraph(verts)
		if err != nil {
			return false
		}
		if sub.NumVertices() != k {
			return false
		}
		// Count internal edges in original.
		var internal int64
		for _, v := range verts {
			for _, u := range g.Neighbors(v) {
				if inSel[u] {
					internal++
				}
			}
		}
		return sub.NumEdges() == internal && sub.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestValidateCatchesBadLabels(t *testing.T) {
	g := triangle(t)
	g.Labels = []int32{0, 5, 0}
	g.NumClasses = 2
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted out-of-range label")
	}
}
