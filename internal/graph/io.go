package graph

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// Binary serialization for graphs: a small versioned little-endian format
// so synthesized datasets can be checkpointed and shared between tools
// without regeneration.
//
// Layout (all integers little-endian):
//
//	magic   [4]byte  "GNAV"
//	version uint16   (currently 1)
//	flags   uint16   bit0 = has features, bit1 = has labels
//	nameLen uint32, name bytes
//	n       uint64   vertices
//	m       uint64   arcs
//	offsets [n+1]int64
//	adj     [m]int32
//	if features: featDim uint32, data [n*featDim]float32
//	if labels:   numClasses uint32, labels [n]int32

var magic = [4]byte{'G', 'N', 'A', 'V'}

const formatVersion = 1

const (
	flagFeatures = 1 << iota
	flagLabels
)

// Write serializes the graph. It returns the first write error.
func (g *Graph) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	var flags uint16
	if g.Features != nil {
		flags |= flagFeatures
	}
	if g.Labels != nil {
		flags |= flagLabels
	}
	le := binary.LittleEndian
	if err := binary.Write(bw, le, uint16(formatVersion)); err != nil {
		return err
	}
	if err := binary.Write(bw, le, flags); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint32(len(g.Name))); err != nil {
		return err
	}
	if _, err := bw.WriteString(g.Name); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint64(g.NumVertices())); err != nil {
		return err
	}
	if err := binary.Write(bw, le, uint64(g.NumEdges())); err != nil {
		return err
	}
	if err := binary.Write(bw, le, g.offsets); err != nil {
		return err
	}
	if err := binary.Write(bw, le, g.adj); err != nil {
		return err
	}
	if g.Features != nil {
		if err := binary.Write(bw, le, uint32(g.FeatDim)); err != nil {
			return err
		}
		if err := binary.Write(bw, le, g.Features); err != nil {
			return err
		}
	}
	if g.Labels != nil {
		if err := binary.Write(bw, le, uint32(g.NumClasses)); err != nil {
			return err
		}
		if err := binary.Write(bw, le, g.Labels); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadFrom deserializes a graph written by Write, validating structure.
func ReadFrom(r io.Reader) (*Graph, error) {
	br := bufio.NewReader(r)
	var m [4]byte
	if _, err := io.ReadFull(br, m[:]); err != nil {
		return nil, fmt.Errorf("graph: reading magic: %w", err)
	}
	if m != magic {
		return nil, fmt.Errorf("graph: bad magic %q", m)
	}
	le := binary.LittleEndian
	var version, flags uint16
	if err := binary.Read(br, le, &version); err != nil {
		return nil, err
	}
	if version != formatVersion {
		return nil, fmt.Errorf("graph: unsupported format version %d", version)
	}
	if err := binary.Read(br, le, &flags); err != nil {
		return nil, err
	}
	var nameLen uint32
	if err := binary.Read(br, le, &nameLen); err != nil {
		return nil, err
	}
	if nameLen > 1<<20 {
		return nil, fmt.Errorf("graph: implausible name length %d", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(br, name); err != nil {
		return nil, err
	}
	var n, edges uint64
	if err := binary.Read(br, le, &n); err != nil {
		return nil, err
	}
	if err := binary.Read(br, le, &edges); err != nil {
		return nil, err
	}
	const maxReasonable = 1 << 33
	if n > maxReasonable || edges > maxReasonable {
		return nil, fmt.Errorf("graph: implausible sizes n=%d m=%d", n, edges)
	}
	offsets := make([]int64, n+1)
	if err := binary.Read(br, le, offsets); err != nil {
		return nil, err
	}
	adj := make([]int32, edges)
	if err := binary.Read(br, le, adj); err != nil {
		return nil, err
	}
	g, err := NewCSR(offsets, adj)
	if err != nil {
		return nil, err
	}
	g.Name = string(name)
	if flags&flagFeatures != 0 {
		var dim uint32
		if err := binary.Read(br, le, &dim); err != nil {
			return nil, err
		}
		if uint64(dim)*n > maxReasonable {
			return nil, fmt.Errorf("graph: implausible feature dim %d", dim)
		}
		g.FeatDim = int(dim)
		g.Features = make([]float32, n*uint64(dim))
		if err := binary.Read(br, le, g.Features); err != nil {
			return nil, err
		}
	}
	if flags&flagLabels != 0 {
		var classes uint32
		if err := binary.Read(br, le, &classes); err != nil {
			return nil, err
		}
		g.NumClasses = int(classes)
		g.Labels = make([]int32, n)
		if err := binary.Read(br, le, g.Labels); err != nil {
			return nil, err
		}
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	return g, nil
}
