package graph

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWriteReadRoundTrip(t *testing.T) {
	g := triangle(t)
	g.Name = "tri"
	g.FeatDim = 2
	g.Features = []float32{1, 2, 3, 4, 5, 6}
	g.Labels = []int32{0, 1, 0}
	g.NumClasses = 2

	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatalf("ReadFrom: %v", err)
	}
	if back.Name != "tri" || back.NumVertices() != 3 || back.NumEdges() != 6 {
		t.Fatalf("round trip mismatch: %+v", back)
	}
	for v := int32(0); v < 3; v++ {
		a, b := g.Neighbors(v), back.Neighbors(v)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("adjacency mismatch at %d", v)
			}
		}
	}
	for i := range g.Features {
		if g.Features[i] != back.Features[i] {
			t.Fatal("features mismatch")
		}
	}
	for i := range g.Labels {
		if g.Labels[i] != back.Labels[i] {
			t.Fatal("labels mismatch")
		}
	}
	if back.NumClasses != 2 {
		t.Errorf("NumClasses = %d", back.NumClasses)
	}
}

func TestRoundTripTopologyOnly(t *testing.T) {
	g := triangle(t)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFrom(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Features != nil || back.Labels != nil {
		t.Error("topology-only graph grew features/labels")
	}
}

func TestReadFromRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":         {},
		"bad magic":     []byte("NOPE...."),
		"truncated":     append([]byte("GNAV"), 1, 0),
		"short version": []byte("GNAV"),
	}
	for name, data := range cases {
		if _, err := ReadFrom(bytes.NewReader(data)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestReadFromRejectsWrongVersion(t *testing.T) {
	g := triangle(t)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // bump version field
	if _, err := ReadFrom(bytes.NewReader(data)); err == nil {
		t.Error("wrong version accepted")
	}
}

func TestReadFromRejectsTruncatedBody(t *testing.T) {
	g := triangle(t)
	g.FeatDim = 4
	g.Features = make([]float32, 12)
	var buf bytes.Buffer
	if err := g.Write(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{len(data) / 2, len(data) - 3} {
		if _, err := ReadFrom(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

// Property: any random graph with features/labels round-trips exactly.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		adj := make([][]int32, n)
		for v := 0; v < n; v++ {
			d := rng.Intn(5)
			for i := 0; i < d; i++ {
				adj[v] = append(adj[v], int32(rng.Intn(n)))
			}
		}
		g, err := FromAdjList(adj)
		if err != nil {
			return false
		}
		g.Name = "prop"
		if seed%2 == 0 {
			g.FeatDim = 1 + rng.Intn(8)
			g.Features = make([]float32, n*g.FeatDim)
			for i := range g.Features {
				g.Features[i] = rng.Float32()
			}
		}
		if seed%3 == 0 {
			g.NumClasses = 2 + rng.Intn(5)
			g.Labels = make([]int32, n)
			for i := range g.Labels {
				g.Labels[i] = int32(rng.Intn(g.NumClasses))
			}
		}
		var buf bytes.Buffer
		if err := g.Write(&buf); err != nil {
			return false
		}
		back, err := ReadFrom(&buf)
		if err != nil {
			return false
		}
		if back.NumVertices() != g.NumVertices() || back.NumEdges() != g.NumEdges() {
			return false
		}
		for v := 0; v < n; v++ {
			a, b := g.Neighbors(int32(v)), back.Neighbors(int32(v))
			if len(a) != len(b) {
				return false
			}
			for i := range a {
				if a[i] != b[i] {
					return false
				}
			}
		}
		return back.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
