package graph

import (
	"fmt"
	"slices"
)

// K-way vertex partitioning for multi-device training. A Partition
// assigns every vertex to exactly one of K parts; the part that owns a
// vertex stores its feature row, and any other part that needs the row
// (because one of its own vertices has an arc to it) must fetch it over
// the inter-device interconnect. The quality metrics reported here — cut
// arcs, per-part balance, halo sets — are exactly the quantities the
// simulator prices: halo bytes scale with the boundary size, and
// per-part balance bounds the slowest device's share of the work.

// PartitionStrategy selects the vertex-assignment heuristic.
type PartitionStrategy string

const (
	// PartitionHash assigns vertices by a splitmix64 hash of the vertex
	// id: O(V), perfectly streaming, expected balance within O(sqrt) of
	// uniform, but oblivious to structure — the expected cut fraction is
	// (K-1)/K.
	PartitionHash PartitionStrategy = "hash"
	// PartitionGreedy is linear deterministic greedy (LDG) over
	// DegreeOrder: each vertex joins the part holding most of its
	// already-assigned neighbors, weighted by remaining capacity.
	// High-degree vertices are placed first so the hubs that dominate
	// boundary traffic anchor their neighborhoods.
	PartitionGreedy PartitionStrategy = "greedy"
)

// Valid reports whether s names a known strategy.
func (s PartitionStrategy) Valid() bool {
	return s == PartitionHash || s == PartitionGreedy
}

// PartitionStrategies lists the known strategies in stable order.
func PartitionStrategies() []PartitionStrategy {
	return []PartitionStrategy{PartitionHash, PartitionGreedy}
}

// Partition is a K-way vertex partition of a graph.
type Partition struct {
	// K is the number of parts. Parts may be empty when K exceeds the
	// vertex count.
	K int
	// Strategy records the heuristic that produced the assignment.
	Strategy PartitionStrategy
	// Owner[v] is the part index owning vertex v, in [0, K).
	Owner []int32
	// CutEdges counts stored arcs whose endpoints lie in different
	// parts. Undirected graphs store both arc directions, so each cut
	// undirected edge contributes 2 here.
	CutEdges int64
	// VertexCounts[k] is the number of vertices owned by part k.
	VertexCounts []int
	// EdgeCounts[k] is the number of stored arcs whose source vertex is
	// owned by part k.
	EdgeCounts []int64
	// Halos[k] lists, sorted ascending, the vertices NOT owned by part k
	// to which some vertex owned by k has an arc — the boundary feature
	// rows part k must request from their owners.
	Halos [][]int32
}

// PartitionGraph partitions g into k parts with the given strategy.
func PartitionGraph(g *Graph, k int, strategy PartitionStrategy) (*Partition, error) {
	if g == nil {
		return nil, fmt.Errorf("graph: partition: nil graph")
	}
	if k < 1 {
		return nil, fmt.Errorf("graph: partition: k = %d, want >= 1", k)
	}
	if !strategy.Valid() {
		return nil, fmt.Errorf("graph: partition: unknown strategy %q (have %v)", strategy, PartitionStrategies())
	}
	n := g.NumVertices()
	owner := make([]int32, n)
	switch {
	case k == 1:
		// Identity: everything in part 0, no cut, no halo.
	case strategy == PartitionHash:
		for v := range owner {
			owner[v] = int32(splitmix64(uint64(v)) % uint64(k))
		}
	default:
		assignGreedy(g, k, owner)
	}
	p := &Partition{
		K:            k,
		Strategy:     strategy,
		Owner:        owner,
		VertexCounts: make([]int, k),
		EdgeCounts:   make([]int64, k),
		Halos:        make([][]int32, k),
	}
	for _, o := range owner {
		p.VertexCounts[o]++
	}
	// One pass over the CSR arrays collects cut arcs, per-part edge
	// counts, and halo sets (deduplicated via sort+compact afterwards).
	for v := 0; v < n; v++ {
		ov := owner[v]
		ns := g.Neighbors(int32(v))
		p.EdgeCounts[ov] += int64(len(ns))
		for _, u := range ns {
			if owner[u] != ov {
				p.CutEdges++
				p.Halos[ov] = append(p.Halos[ov], u)
			}
		}
	}
	for i := range p.Halos {
		slices.Sort(p.Halos[i])
		p.Halos[i] = slices.Compact(p.Halos[i])
	}
	return p, nil
}

// assignGreedy fills owner with the LDG assignment: walk vertices in
// DegreeOrder; each joins the part p maximizing
// |assigned neighbors in p| * (1 - size(p)/C), with capacity
// C = ceil(n/k). A part at capacity scores <= 0 and is never chosen by
// affinity, so no part exceeds C; a vertex with no positive-scoring part
// (no assigned neighbors, or all of them in full parts) falls back to
// the least-loaded part. All ties break toward the lower part index, so
// the assignment is deterministic.
func assignGreedy(g *Graph, k int, owner []int32) {
	n := len(owner)
	for v := range owner {
		owner[v] = -1
	}
	capacity := (n + k - 1) / k
	sizes := make([]int, k)
	affinity := make([]int, k) // scratch: assigned-neighbor count per part
	touched := make([]int32, 0, 64)
	for _, v := range g.DegreeOrder() {
		for _, u := range g.Neighbors(v) {
			if o := owner[u]; o >= 0 {
				if affinity[o] == 0 {
					touched = append(touched, o)
				}
				affinity[o]++
			}
		}
		best, bestScore := int32(-1), 0.0
		// Iterate touched parts in index order so equal scores pick the
		// lower index regardless of neighbor order.
		slices.Sort(touched)
		for _, p := range touched {
			score := float64(affinity[p]) * (1 - float64(sizes[p])/float64(capacity))
			if score > bestScore {
				best, bestScore = p, score
			}
			affinity[p] = 0
		}
		touched = touched[:0]
		if best < 0 {
			best = leastLoaded(sizes)
		}
		owner[v] = best
		sizes[best]++
	}
}

// leastLoaded returns the lowest-index part with minimum size.
func leastLoaded(sizes []int) int32 {
	best := 0
	for p := 1; p < len(sizes); p++ {
		if sizes[p] < sizes[best] {
			best = p
		}
	}
	return int32(best)
}

// VertexBalance is max over parts of VertexCounts[k] divided by the
// ideal n/K share (1.0 = perfectly balanced; 0 for empty graphs).
func (p *Partition) VertexBalance() float64 { return balance(p.VertexCounts) }

// EdgeBalance is max over parts of EdgeCounts[k] divided by the ideal
// |E|/K share (1.0 = perfectly balanced; 0 for edgeless graphs).
func (p *Partition) EdgeBalance() float64 { return balance(p.EdgeCounts) }

func balance[T int | int64](counts []T) float64 {
	var total, max T
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	if total == 0 {
		return 0
	}
	return float64(max) * float64(len(counts)) / float64(total)
}

// HaloVertices returns the total halo-set size summed over parts: the
// number of (part, remote vertex) feature-row dependencies a full pass
// over the graph implies.
func (p *Partition) HaloVertices() int {
	n := 0
	for _, h := range p.Halos {
		n += len(h)
	}
	return n
}

// splitmix64 is the SplitMix64 finalizer, the same mixer the sampling
// layer uses for per-batch seeds. It is bijective, so hash partitioning
// inherits its full avalanche behavior.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
