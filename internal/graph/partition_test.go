package graph

import (
	"reflect"
	"testing"
)

// pathGraph builds the undirected path 0-1-2-...-(n-1) with both arc
// directions stored.
func pathGraph(t *testing.T, n int) *Graph {
	t.Helper()
	adj := make([][]int32, n)
	for v := 0; v < n; v++ {
		if v > 0 {
			adj[v] = append(adj[v], int32(v-1))
		}
		if v < n-1 {
			adj[v] = append(adj[v], int32(v+1))
		}
	}
	g, err := FromAdjList(adj)
	if err != nil {
		t.Fatalf("FromAdjList: %v", err)
	}
	return g
}

func TestPartitionK1Identity(t *testing.T) {
	g := pathGraph(t, 7)
	for _, s := range PartitionStrategies() {
		p, err := PartitionGraph(g, 1, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		for v, o := range p.Owner {
			if o != 0 {
				t.Fatalf("%s: Owner[%d] = %d, want 0", s, v, o)
			}
		}
		if p.CutEdges != 0 {
			t.Fatalf("%s: CutEdges = %d, want 0", s, p.CutEdges)
		}
		if len(p.Halos[0]) != 0 {
			t.Fatalf("%s: Halos[0] = %v, want empty", s, p.Halos[0])
		}
		if p.VertexCounts[0] != 7 || p.EdgeCounts[0] != g.NumEdges() {
			t.Fatalf("%s: counts %v / %v", s, p.VertexCounts, p.EdgeCounts)
		}
		if got := p.VertexBalance(); got != 1 {
			t.Fatalf("%s: VertexBalance = %v, want 1", s, got)
		}
	}
}

func TestPartitionKExceedsVertices(t *testing.T) {
	g := pathGraph(t, 3)
	for _, s := range PartitionStrategies() {
		p, err := PartitionGraph(g, 8, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		// Empty parts are allowed; every vertex still has exactly one owner.
		total := 0
		for k, c := range p.VertexCounts {
			if c < 0 {
				t.Fatalf("%s: VertexCounts[%d] = %d", s, k, c)
			}
			total += c
		}
		if total != 3 {
			t.Fatalf("%s: vertex counts sum to %d, want 3", s, total)
		}
		for v, o := range p.Owner {
			if o < 0 || int(o) >= 8 {
				t.Fatalf("%s: Owner[%d] = %d out of range", s, v, o)
			}
		}
	}
}

func TestPartitionSingleVertex(t *testing.T) {
	g, err := FromAdjList([][]int32{nil})
	if err != nil {
		t.Fatalf("FromAdjList: %v", err)
	}
	for _, s := range PartitionStrategies() {
		p, err := PartitionGraph(g, 4, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if p.CutEdges != 0 || p.HaloVertices() != 0 {
			t.Fatalf("%s: cut=%d halo=%d, want 0/0", s, p.CutEdges, p.HaloVertices())
		}
		if p.VertexCounts[p.Owner[0]] != 1 {
			t.Fatalf("%s: owner count mismatch: %v", s, p.VertexCounts)
		}
	}
}

// TestPartitionGreedyHandComputed walks the LDG assignment on the path
// 0-1-2-3 with K=2 (capacity ceil(4/2)=2) by hand:
//
//	DegreeOrder = [1 2 0 3] (degree desc, id asc).
//	v1: no assigned neighbors -> least-loaded -> part 0. sizes [1 0]
//	v2: neighbor 1 in part 0, score 1*(1-1/2)=0.5 > 0 -> part 0. sizes [2 0]
//	v0: neighbor 1 in part 0, score 1*(1-2/2)=0 (full) -> fallback -> part 1
//	v3: neighbor 2 in part 0, score 0 -> fallback -> part 1. sizes [2 2]
//
// Owner = [1 0 0 1]; cut arcs {0-1, 1-0, 2-3, 3-2} -> CutEdges 4;
// part 0 (owns 1,2) needs remote rows {0,3}; part 1 (owns 0,3) needs {1,2}.
func TestPartitionGreedyHandComputed(t *testing.T) {
	g := pathGraph(t, 4)
	p, err := PartitionGraph(g, 2, PartitionGreedy)
	if err != nil {
		t.Fatalf("PartitionGraph: %v", err)
	}
	if want := []int32{1, 0, 0, 1}; !reflect.DeepEqual(p.Owner, want) {
		t.Fatalf("Owner = %v, want %v", p.Owner, want)
	}
	if p.CutEdges != 4 {
		t.Fatalf("CutEdges = %d, want 4", p.CutEdges)
	}
	if want := []int32{0, 3}; !reflect.DeepEqual(p.Halos[0], want) {
		t.Fatalf("Halos[0] = %v, want %v", p.Halos[0], want)
	}
	if want := []int32{1, 2}; !reflect.DeepEqual(p.Halos[1], want) {
		t.Fatalf("Halos[1] = %v, want %v", p.Halos[1], want)
	}
	if !reflect.DeepEqual(p.VertexCounts, []int{2, 2}) {
		t.Fatalf("VertexCounts = %v, want [2 2]", p.VertexCounts)
	}
	if !reflect.DeepEqual(p.EdgeCounts, []int64{4, 2}) {
		t.Fatalf("EdgeCounts = %v, want [4 2]", p.EdgeCounts)
	}
	if got := p.VertexBalance(); got != 1 {
		t.Fatalf("VertexBalance = %v, want 1", got)
	}
	if got := p.EdgeBalance(); got != 4.0*2/6 {
		t.Fatalf("EdgeBalance = %v, want %v", got, 4.0*2/6)
	}
}

// TestPartitionGreedyCutsLessThanHash checks the heuristic earns its
// keep on a clustered graph: two dense blobs joined by one bridge edge.
func TestPartitionGreedyCutsLessThanHash(t *testing.T) {
	const half = 16
	adj := make([][]int32, 2*half)
	clique := func(base int) {
		for i := 0; i < half; i++ {
			for j := 0; j < half; j++ {
				if i != j {
					adj[base+i] = append(adj[base+i], int32(base+j))
				}
			}
		}
	}
	clique(0)
	clique(half)
	adj[half-1] = append(adj[half-1], int32(half))
	adj[half] = append(adj[half], int32(half-1))
	g, err := FromAdjList(adj)
	if err != nil {
		t.Fatalf("FromAdjList: %v", err)
	}
	greedy, err := PartitionGraph(g, 2, PartitionGreedy)
	if err != nil {
		t.Fatalf("greedy: %v", err)
	}
	hash, err := PartitionGraph(g, 2, PartitionHash)
	if err != nil {
		t.Fatalf("hash: %v", err)
	}
	// Hash cuts ~half the arcs in expectation; greedy should keep most
	// of each blob together. (LDG is not optimal — the two bridge hubs
	// are placed first and one gets pulled across — but it must beat
	// hash by a wide margin.)
	if greedy.CutEdges >= hash.CutEdges {
		t.Fatalf("greedy cut %d not better than hash cut %d", greedy.CutEdges, hash.CutEdges)
	}
	if lim := g.NumEdges() / 4; greedy.CutEdges > lim {
		t.Fatalf("greedy CutEdges = %d, want <= %d (quarter of arcs)", greedy.CutEdges, lim)
	}
}

func TestPartitionDeterministic(t *testing.T) {
	g := pathGraph(t, 100)
	for _, s := range PartitionStrategies() {
		a, err := PartitionGraph(g, 4, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		b, err := PartitionGraph(g, 4, s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: partition not deterministic", s)
		}
	}
}

// TestPartitionHaloMatchesBruteForce cross-checks the CSR-pass halo
// computation against a direct per-part scan.
func TestPartitionHaloMatchesBruteForce(t *testing.T) {
	g := pathGraph(t, 50)
	p, err := PartitionGraph(g, 4, PartitionHash)
	if err != nil {
		t.Fatalf("PartitionGraph: %v", err)
	}
	var cut int64
	for k := 0; k < p.K; k++ {
		seen := map[int32]bool{}
		for v := 0; v < g.NumVertices(); v++ {
			if p.Owner[v] != int32(k) {
				continue
			}
			for _, u := range g.Neighbors(int32(v)) {
				if p.Owner[u] != int32(k) {
					seen[u] = true
					cut++
				}
			}
		}
		if len(seen) != len(p.Halos[k]) {
			t.Fatalf("part %d: halo size %d, want %d", k, len(p.Halos[k]), len(seen))
		}
		for _, u := range p.Halos[k] {
			if !seen[u] {
				t.Fatalf("part %d: halo lists %d, brute force does not", k, u)
			}
		}
		for i := 1; i < len(p.Halos[k]); i++ {
			if p.Halos[k][i-1] >= p.Halos[k][i] {
				t.Fatalf("part %d: halo not sorted/distinct at %d", k, i)
			}
		}
	}
	if cut != p.CutEdges {
		t.Fatalf("CutEdges = %d, brute force %d", p.CutEdges, cut)
	}
}

func TestPartitionErrors(t *testing.T) {
	g := pathGraph(t, 3)
	if _, err := PartitionGraph(g, 0, PartitionHash); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := PartitionGraph(g, 2, "metis"); err == nil {
		t.Fatal("unknown strategy accepted")
	}
	if _, err := PartitionGraph(nil, 2, PartitionHash); err == nil {
		t.Fatal("nil graph accepted")
	}
}

func TestPartitionGreedyBalanceCap(t *testing.T) {
	// A star graph tempts greedy to pile everything onto the hub's part;
	// the capacity term must keep every part at <= ceil(n/k).
	const n = 33
	adj := make([][]int32, n)
	for v := 1; v < n; v++ {
		adj[0] = append(adj[0], int32(v))
		adj[v] = append(adj[v], 0)
	}
	g, err := FromAdjList(adj)
	if err != nil {
		t.Fatalf("FromAdjList: %v", err)
	}
	p, err := PartitionGraph(g, 4, PartitionGreedy)
	if err != nil {
		t.Fatalf("PartitionGraph: %v", err)
	}
	cap := (n + 3) / 4
	for k, c := range p.VertexCounts {
		if c > cap {
			t.Fatalf("part %d has %d vertices, cap %d", k, c, cap)
		}
	}
}
