// Package hw describes the heterogeneous platforms GNN training runs on:
// a general-purpose host (sampling, file I/O), a throughput-oriented
// device (aggregate/combine), and the host-device link between them.
//
// The paper's estimator treats hardware exactly as (throughput, bandwidth,
// capacity) tuples — Eqs. 5–8 condition on "Host" and "Device" terms — so
// this package makes that abstraction concrete. Profiles are shaped like
// the boards named in §4.1 (RTX 4090, A100, and the constrained "M90");
// effective rates are deliberately far below peak spec because sparse GNN
// kernels are memory-bound.
package hw

import (
	"fmt"
	"sort"
)

// Host models the CPU side: sampling and feature gathering.
type Host struct {
	Name  string
	Cores int
	// SampleEdgesPerSec is the per-core neighbor-expansion throughput
	// (sampled edges per second).
	SampleEdgesPerSec float64
	// GatherBytesPerSec is the host-memory feature-gather bandwidth.
	GatherBytesPerSec float64
}

// Device models the accelerator: compute throughput and memory.
type Device struct {
	Name string
	// EffGFLOPS is the effective (not peak) GFLOP/s sustained on sparse
	// GNN aggregate/combine kernels.
	EffGFLOPS float64
	// MemBytesPerSec is device-memory bandwidth.
	MemBytesPerSec float64
	// MemCapacityBytes is total device memory.
	MemCapacityBytes float64
	// KernelLaunchSec is the fixed overhead per kernel launch.
	KernelLaunchSec float64
}

// Link models the host-device interconnect (PCIe/DMA).
type Link struct {
	Name        string
	BytesPerSec float64
	// LatencySec is the per-transfer fixed cost.
	LatencySec float64
}

// Platform bundles a host, device and link. Multi-device platforms set
// Devices > 1 and describe the device-to-device fabric in Interconnect;
// every device is an identical copy of Device with its own host link.
type Platform struct {
	Host   Host
	Device Device
	Link   Link

	// Devices is the number of identical accelerators (0 or 1 = single
	// device).
	Devices int
	// Interconnect is the device-to-device fabric (NVLink, PCIe peer)
	// carrying halo-exchange and all-reduce traffic. Only consulted when
	// Devices > 1.
	Interconnect Link
}

// DeviceCount returns the effective device count (Devices, floored at 1).
func (p Platform) DeviceCount() int {
	if p.Devices < 1 {
		return 1
	}
	return p.Devices
}

// Validate checks that all rates and capacities are positive, fixed
// overheads are non-negative, and multi-device platforms describe their
// interconnect.
func (p Platform) Validate() error {
	if p.Host.Cores < 1 || p.Host.SampleEdgesPerSec <= 0 || p.Host.GatherBytesPerSec <= 0 {
		return fmt.Errorf("hw: invalid host %+v", p.Host)
	}
	if p.Device.EffGFLOPS <= 0 || p.Device.MemBytesPerSec <= 0 || p.Device.MemCapacityBytes <= 0 {
		return fmt.Errorf("hw: invalid device %+v", p.Device)
	}
	if p.Device.KernelLaunchSec < 0 {
		return fmt.Errorf("hw: negative kernel launch overhead %v", p.Device.KernelLaunchSec)
	}
	if p.Link.BytesPerSec <= 0 || p.Link.LatencySec < 0 {
		return fmt.Errorf("hw: invalid link %+v", p.Link)
	}
	if p.Devices < 0 {
		return fmt.Errorf("hw: negative device count %d", p.Devices)
	}
	if p.DeviceCount() > 1 {
		if p.Interconnect.BytesPerSec <= 0 || p.Interconnect.LatencySec < 0 {
			return fmt.Errorf("hw: %d devices but invalid interconnect %+v", p.Devices, p.Interconnect)
		}
	}
	return nil
}

// FreeForCacheBytes returns the device memory available for feature
// caching after reserving reservedBytes for model + runtime state.
func (p Platform) FreeForCacheBytes(reservedBytes float64) float64 {
	free := p.Device.MemCapacityBytes - reservedBytes
	if free < 0 {
		return 0
	}
	return free
}

const (
	// GiB is 2^30 bytes.
	GiB = 1024 * 1024 * 1024
	// GB is 10^9 bytes.
	GB = 1e9
)

// RTX4090 is a high-end workstation platform over PCIe 4.0 x16.
func RTX4090() Platform {
	return Platform{
		Host: Host{Name: "xeon-32c", Cores: 32, SampleEdgesPerSec: 2.5e6, GatherBytesPerSec: 18 * GB},
		Device: Device{
			Name: "rtx4090", EffGFLOPS: 9000, MemBytesPerSec: 1008 * GB,
			MemCapacityBytes: 24 * GiB, KernelLaunchSec: 8e-6,
		},
		Link: Link{Name: "pcie4x16", BytesPerSec: 26 * GB, LatencySec: 12e-6},
	}
}

// A100 is a datacenter platform with NVLink-class bandwidth to host.
func A100() Platform {
	return Platform{
		Host: Host{Name: "epyc-64c", Cores: 64, SampleEdgesPerSec: 2.2e6, GatherBytesPerSec: 30 * GB},
		Device: Device{
			Name: "a100-80g", EffGFLOPS: 12000, MemBytesPerSec: 2039 * GB,
			MemCapacityBytes: 80 * GiB, KernelLaunchSec: 6e-6,
		},
		Link: Link{Name: "pcie4x16", BytesPerSec: 28 * GB, LatencySec: 10e-6},
	}
}

// M90 is the paper's constrained mid-range device: modest compute, small
// memory — the regime where cache-ratio choices matter most.
func M90() Platform {
	return Platform{
		Host: Host{Name: "desktop-16c", Cores: 16, SampleEdgesPerSec: 1.8e6, GatherBytesPerSec: 12 * GB},
		Device: Device{
			Name: "m90", EffGFLOPS: 2500, MemBytesPerSec: 350 * GB,
			MemCapacityBytes: 8 * GiB, KernelLaunchSec: 15e-6,
		},
		Link: Link{Name: "pcie3x16", BytesPerSec: 13 * GB, LatencySec: 18e-6},
	}
}

// CPUOnly models an Aligraph/Euler-style CPU-only deployment (§2.2):
// "device" compute runs on the same socket as the host, so the link is
// effectively a memcpy within system memory — near-infinite bandwidth and
// no transfer latency — but compute throughput is an order of magnitude
// below an accelerator. Caching buys nothing here; compute dominates.
func CPUOnly() Platform {
	return Platform{
		Host: Host{Name: "epyc-64c", Cores: 64, SampleEdgesPerSec: 2.2e6, GatherBytesPerSec: 30 * GB},
		Device: Device{
			Name: "cpu-only", EffGFLOPS: 450, MemBytesPerSec: 200 * GB,
			MemCapacityBytes: 256 * GiB, KernelLaunchSec: 1e-6,
		},
		Link: Link{Name: "memcpy", BytesPerSec: 100 * GB, LatencySec: 1e-7},
	}
}

// NVLink is a third-generation NVLink-class device fabric.
func NVLink() Link {
	return Link{Name: "nvlink3", BytesPerSec: 300 * GB, LatencySec: 2e-6}
}

// PCIePeer is peer-to-peer DMA over a shared PCIe switch — the fallback
// fabric for boards without a dedicated link.
func PCIePeer() Link {
	return Link{Name: "pcie-peer", BytesPerSec: 13 * GB, LatencySec: 25e-6}
}

// Profiles returns the named platforms keyed by device name. The "-Ng"
// variants cap device memory at N GiB — the paper's "manual constraints to
// simulate various scenarios of application" (§4.1) — and the "xN"
// variants replicate the board N times behind a device interconnect.
func Profiles() map[string]Platform {
	return map[string]Platform{
		"rtx4090":    RTX4090(),
		"rtx4090-8g": RTX4090().WithMemory(8 * GiB),
		"rtx4090x2":  RTX4090().WithDevices(2, PCIePeer()),
		"a100":       A100(),
		"a100x4":     A100().WithDevices(4, NVLink()),
		"m90":        M90(),
		"m90-2g":     M90().WithMemory(2 * GiB),
		"m90x4":      M90().WithDevices(4, PCIePeer()),
		"cpu-only":   CPUOnly(),
	}
}

// ProfileNames returns the profile keys sorted ascending, so help text
// and error messages list platforms in a stable order instead of map
// order.
func ProfileNames() []string {
	names := make([]string, 0, len(Profiles()))
	for name := range Profiles() {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// WithDevices returns a copy of p with n identical devices joined by the
// given interconnect.
func (p Platform) WithDevices(n int, interconnect Link) Platform {
	out := p
	out.Devices = n
	out.Interconnect = interconnect
	return out
}

// WithMemory returns a copy of p whose device memory is capped at bytes —
// the paper's "resource-limited circumstances" (Pa-Low) and "manual
// constraints to simulate various scenarios of application".
func (p Platform) WithMemory(bytes float64) Platform {
	out := p
	out.Device.MemCapacityBytes = bytes
	return out
}
