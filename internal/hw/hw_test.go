package hw

import "testing"

func TestProfilesAllValid(t *testing.T) {
	profiles := Profiles()
	if len(profiles) < 3 {
		t.Fatalf("only %d profiles", len(profiles))
	}
	for name, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
}

func TestProfileOrdering(t *testing.T) {
	// The datacenter part must out-spec the constrained part on every axis
	// the simulator consumes.
	a100, m90 := A100(), M90()
	if a100.Device.EffGFLOPS <= m90.Device.EffGFLOPS {
		t.Error("A100 compute not above M90")
	}
	if a100.Device.MemBytesPerSec <= m90.Device.MemBytesPerSec {
		t.Error("A100 memory bandwidth not above M90")
	}
	if a100.Device.MemCapacityBytes <= m90.Device.MemCapacityBytes {
		t.Error("A100 capacity not above M90")
	}
	if a100.Link.BytesPerSec <= m90.Link.BytesPerSec {
		t.Error("A100 link not above M90")
	}
}

func TestValidateRejectsBadPlatforms(t *testing.T) {
	good := RTX4090()
	cases := []struct {
		name   string
		mutate func(*Platform)
	}{
		{"zero cores", func(p *Platform) { p.Host.Cores = 0 }},
		{"zero sample rate", func(p *Platform) { p.Host.SampleEdgesPerSec = 0 }},
		{"zero gflops", func(p *Platform) { p.Device.EffGFLOPS = 0 }},
		{"zero device bw", func(p *Platform) { p.Device.MemBytesPerSec = 0 }},
		{"zero capacity", func(p *Platform) { p.Device.MemCapacityBytes = 0 }},
		{"zero link", func(p *Platform) { p.Link.BytesPerSec = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := good
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

func TestWithMemoryDoesNotMutateOriginal(t *testing.T) {
	orig := RTX4090()
	capped := orig.WithMemory(1 * GiB)
	if capped.Device.MemCapacityBytes != 1*GiB {
		t.Errorf("capped capacity = %v", capped.Device.MemCapacityBytes)
	}
	if orig.Device.MemCapacityBytes != 24*GiB {
		t.Error("WithMemory mutated the original")
	}
}

func TestFreeForCacheBytes(t *testing.T) {
	p := M90() // 8 GiB
	if got := p.FreeForCacheBytes(2 * GiB); got != 6*GiB {
		t.Errorf("FreeForCacheBytes = %v, want 6 GiB", got)
	}
	if got := p.FreeForCacheBytes(10 * GiB); got != 0 {
		t.Errorf("over-reserved FreeForCacheBytes = %v, want 0", got)
	}
}

func TestCPUOnlyShape(t *testing.T) {
	cpu := CPUOnly()
	if err := cpu.Validate(); err != nil {
		t.Fatal(err)
	}
	gpu := RTX4090()
	if cpu.Device.EffGFLOPS >= gpu.Device.EffGFLOPS {
		t.Error("CPU compute not below GPU")
	}
	// The defining property: transfers are nearly free relative to PCIe.
	if cpu.Link.BytesPerSec <= gpu.Link.BytesPerSec {
		t.Error("CPU-only memcpy link not faster than PCIe")
	}
	if cpu.Link.LatencySec >= gpu.Link.LatencySec {
		t.Error("CPU-only link latency not below PCIe")
	}
}

func TestCappedVariantsPresent(t *testing.T) {
	profiles := Profiles()
	full, ok1 := profiles["rtx4090"]
	capped, ok2 := profiles["rtx4090-8g"]
	if !ok1 || !ok2 {
		t.Fatal("expected rtx4090 and rtx4090-8g profiles")
	}
	if capped.Device.MemCapacityBytes >= full.Device.MemCapacityBytes {
		t.Error("capped variant not smaller than full")
	}
	// Only memory differs.
	if capped.Device.EffGFLOPS != full.Device.EffGFLOPS {
		t.Error("capped variant changed compute")
	}
}

func TestValidateRejectsNegativeOverheads(t *testing.T) {
	good := RTX4090()
	cases := []struct {
		name   string
		mutate func(*Platform)
	}{
		{"negative kernel launch", func(p *Platform) { p.Device.KernelLaunchSec = -1e-6 }},
		{"negative link latency", func(p *Platform) { p.Link.LatencySec = -1e-6 }},
		{"negative device count", func(p *Platform) { p.Devices = -1 }},
		{"multi-device no interconnect", func(p *Platform) { p.Devices = 2 }},
		{"negative interconnect latency", func(p *Platform) {
			p.Devices = 2
			p.Interconnect = Link{Name: "bad", BytesPerSec: 1 * GB, LatencySec: -1}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := good
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

func TestProfileNamesSorted(t *testing.T) {
	names := ProfileNames()
	if len(names) != len(Profiles()) {
		t.Fatalf("ProfileNames lists %d profiles, map has %d", len(names), len(Profiles()))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
	profiles := Profiles()
	for _, n := range names {
		if _, ok := profiles[n]; !ok {
			t.Fatalf("ProfileNames lists unknown profile %q", n)
		}
	}
}

func TestMultiDeviceProfiles(t *testing.T) {
	profiles := Profiles()
	for name, wantK := range map[string]int{"rtx4090x2": 2, "a100x4": 4, "m90x4": 4} {
		p, ok := profiles[name]
		if !ok {
			t.Fatalf("missing profile %q", name)
		}
		if p.DeviceCount() != wantK {
			t.Errorf("%s: DeviceCount = %d, want %d", name, p.DeviceCount(), wantK)
		}
		if p.Interconnect.BytesPerSec <= 0 {
			t.Errorf("%s: no interconnect bandwidth", name)
		}
	}
	// Single-device profiles report a count of 1 without setting Devices.
	if got := RTX4090().DeviceCount(); got != 1 {
		t.Errorf("single-device DeviceCount = %d, want 1", got)
	}
	// WithDevices must not mutate the original.
	orig := A100()
	_ = orig.WithDevices(4, NVLink())
	if orig.Devices != 0 {
		t.Error("WithDevices mutated the original")
	}
	// NVLink-class fabric should be much faster than PCIe peer DMA.
	if NVLink().BytesPerSec <= PCIePeer().BytesPerSec {
		t.Error("NVLink not faster than PCIe peer")
	}
}
