package hw

import "testing"

func TestProfilesAllValid(t *testing.T) {
	profiles := Profiles()
	if len(profiles) < 3 {
		t.Fatalf("only %d profiles", len(profiles))
	}
	for name, p := range profiles {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
}

func TestProfileOrdering(t *testing.T) {
	// The datacenter part must out-spec the constrained part on every axis
	// the simulator consumes.
	a100, m90 := A100(), M90()
	if a100.Device.EffGFLOPS <= m90.Device.EffGFLOPS {
		t.Error("A100 compute not above M90")
	}
	if a100.Device.MemBytesPerSec <= m90.Device.MemBytesPerSec {
		t.Error("A100 memory bandwidth not above M90")
	}
	if a100.Device.MemCapacityBytes <= m90.Device.MemCapacityBytes {
		t.Error("A100 capacity not above M90")
	}
	if a100.Link.BytesPerSec <= m90.Link.BytesPerSec {
		t.Error("A100 link not above M90")
	}
}

func TestValidateRejectsBadPlatforms(t *testing.T) {
	good := RTX4090()
	cases := []struct {
		name   string
		mutate func(*Platform)
	}{
		{"zero cores", func(p *Platform) { p.Host.Cores = 0 }},
		{"zero sample rate", func(p *Platform) { p.Host.SampleEdgesPerSec = 0 }},
		{"zero gflops", func(p *Platform) { p.Device.EffGFLOPS = 0 }},
		{"zero device bw", func(p *Platform) { p.Device.MemBytesPerSec = 0 }},
		{"zero capacity", func(p *Platform) { p.Device.MemCapacityBytes = 0 }},
		{"zero link", func(p *Platform) { p.Link.BytesPerSec = 0 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p := good
			tc.mutate(&p)
			if err := p.Validate(); err == nil {
				t.Errorf("%s accepted", tc.name)
			}
		})
	}
}

func TestWithMemoryDoesNotMutateOriginal(t *testing.T) {
	orig := RTX4090()
	capped := orig.WithMemory(1 * GiB)
	if capped.Device.MemCapacityBytes != 1*GiB {
		t.Errorf("capped capacity = %v", capped.Device.MemCapacityBytes)
	}
	if orig.Device.MemCapacityBytes != 24*GiB {
		t.Error("WithMemory mutated the original")
	}
}

func TestFreeForCacheBytes(t *testing.T) {
	p := M90() // 8 GiB
	if got := p.FreeForCacheBytes(2 * GiB); got != 6*GiB {
		t.Errorf("FreeForCacheBytes = %v, want 6 GiB", got)
	}
	if got := p.FreeForCacheBytes(10 * GiB); got != 0 {
		t.Errorf("over-reserved FreeForCacheBytes = %v, want 0", got)
	}
}

func TestCPUOnlyShape(t *testing.T) {
	cpu := CPUOnly()
	if err := cpu.Validate(); err != nil {
		t.Fatal(err)
	}
	gpu := RTX4090()
	if cpu.Device.EffGFLOPS >= gpu.Device.EffGFLOPS {
		t.Error("CPU compute not below GPU")
	}
	// The defining property: transfers are nearly free relative to PCIe.
	if cpu.Link.BytesPerSec <= gpu.Link.BytesPerSec {
		t.Error("CPU-only memcpy link not faster than PCIe")
	}
	if cpu.Link.LatencySec >= gpu.Link.LatencySec {
		t.Error("CPU-only link latency not below PCIe")
	}
}

func TestCappedVariantsPresent(t *testing.T) {
	profiles := Profiles()
	full, ok1 := profiles["rtx4090"]
	capped, ok2 := profiles["rtx4090-8g"]
	if !ok1 || !ok2 {
		t.Fatal("expected rtx4090 and rtx4090-8g profiles")
	}
	if capped.Device.MemCapacityBytes >= full.Device.MemCapacityBytes {
		t.Error("capped variant not smaller than full")
	}
	// Only memory differs.
	if capped.Device.EffGFLOPS != full.Device.EffGFLOPS {
		t.Error("capped variant changed compute")
	}
}
