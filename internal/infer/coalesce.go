package infer

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"gnnavigator/internal/faultinject"
)

// Request coalescing: the serving layer's answer to per-request batches
// being tiny. A GNN forward pass over 1 target costs nearly as much
// fixed overhead as one over 100, and the feature plane amortizes far
// better over a wide gather — so concurrent requests are merged into
// one engine Predict per flush. A flush happens when the pending batch
// reaches MaxBatch vertices or the oldest request has waited MaxWait,
// whichever comes first: bounded wait, bounded batch.

// ErrCoalescerClosed is returned by Predict after Close.
var ErrCoalescerClosed = errors.New("infer: coalescer closed")

// Defaults for CoalescerConfig's zero values.
const (
	defaultMaxBatch = 256
	defaultMaxWait  = 2 * time.Millisecond
)

// CoalescerConfig tunes the batching knobs.
type CoalescerConfig struct {
	// MaxBatch flushes as soon as the pending requests hold this many
	// target vertices (default 256). A single request larger than
	// MaxBatch still flushes whole — the engine chunks it internally.
	MaxBatch int
	// MaxWait bounds how long the first request of a batch waits for
	// company before the batch flushes anyway (default 2ms).
	MaxWait time.Duration
}

type coalReq struct {
	targets []int32
	resp    chan coalResp
}

type coalResp struct {
	classes []int32
	err     error
}

// Coalescer merges concurrent Predict calls into minibatched engine
// runs. Safe for concurrent use.
type Coalescer struct {
	eng      *Engine
	maxBatch int
	maxWait  time.Duration

	reqCh     chan *coalReq
	done      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once

	flushes      atomic.Int64
	flushedVerts atomic.Int64
}

// NewCoalescer starts the dispatcher goroutine; Close stops it.
func NewCoalescer(eng *Engine, cfg CoalescerConfig) *Coalescer {
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = defaultMaxBatch
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = defaultMaxWait
	}
	c := &Coalescer{
		eng:      eng,
		maxBatch: cfg.MaxBatch,
		maxWait:  cfg.MaxWait,
		reqCh:    make(chan *coalReq),
		done:     make(chan struct{}),
	}
	c.wg.Add(1)
	go c.dispatch()
	return c
}

// Predict enqueues targets, waits for the flush that carries them, and
// returns one class per target (in target order). The context is
// honored end to end at request granularity: a caller whose ctx expires
// while queued or in flight unblocks immediately with ctx.Err().
func (c *Coalescer) Predict(ctx context.Context, targets []int32) ([]int32, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("infer: empty target set")
	}
	r := &coalReq{targets: targets, resp: make(chan coalResp, 1)}
	var ctxDone <-chan struct{}
	if ctx != nil {
		ctxDone = ctx.Done()
	}
	select {
	case c.reqCh <- r:
	case <-ctxDone:
		return nil, ctx.Err()
	case <-c.done:
		return nil, ErrCoalescerClosed
	}
	select {
	case resp := <-r.resp:
		return resp.classes, resp.err
	case <-ctxDone:
		// The flush still answers into the buffered resp channel; the
		// result is simply abandoned.
		return nil, ctx.Err()
	case <-c.done:
		return nil, ErrCoalescerClosed
	}
}

// Flushes reports how many coalesced batches have been flushed.
func (c *Coalescer) Flushes() int64 { return c.flushes.Load() }

// MeanBatch reports the mean target vertices per flush.
func (c *Coalescer) MeanBatch() float64 {
	f := c.flushes.Load()
	if f == 0 {
		return 0
	}
	return float64(c.flushedVerts.Load()) / float64(f)
}

// Close stops the dispatcher. In-flight flushes complete (their callers
// get results); requests still queued when the dispatcher exits get
// ErrCoalescerClosed via Predict's done case.
func (c *Coalescer) Close() {
	c.closeOnce.Do(func() { close(c.done) })
	c.wg.Wait()
}

// dispatch is the single flusher goroutine: take one request, gather
// company until the batch fills or the wait expires, flush, repeat.
func (c *Coalescer) dispatch() {
	defer c.wg.Done()
	timer := time.NewTimer(c.maxWait)
	defer timer.Stop()
	for {
		var first *coalReq
		select {
		case first = <-c.reqCh:
		case <-c.done:
			return
		}
		batch := []*coalReq{first}
		verts := len(first.targets)
		if !timer.Stop() {
			select {
			case <-timer.C:
			default:
			}
		}
		timer.Reset(c.maxWait)
	fill:
		for verts < c.maxBatch {
			select {
			case r := <-c.reqCh:
				batch = append(batch, r)
				verts += len(r.targets)
			case <-timer.C:
				break fill
			case <-c.done:
				c.flush(batch, verts)
				return
			}
		}
		c.flush(batch, verts)
	}
}

// flush runs one coalesced engine Predict and scatters the per-vertex
// classes back to each request. Cross-request duplicate targets are
// collapsed inside Engine.Predict, so the union is passed as-is and the
// returned classes align with it positionally.
func (c *Coalescer) flush(batch []*coalReq, verts int) {
	c.flushes.Add(1)
	c.flushedVerts.Add(int64(verts))
	fail := func(err error) {
		for _, r := range batch {
			r.resp <- coalResp{err: err}
		}
	}
	if err := faultinject.Fire(faultinject.ServeFlush); err != nil {
		fail(fmt.Errorf("infer: flush: %w", err))
		return
	}
	union := make([]int32, 0, verts)
	for _, r := range batch {
		union = append(union, r.targets...)
	}
	pred, err := c.eng.Predict(context.Background(), union)
	if err != nil {
		fail(err)
		return
	}
	off := 0
	for _, r := range batch {
		classes := append([]int32(nil), pred.Classes[off:off+len(r.targets)]...)
		off += len(r.targets)
		r.resp <- coalResp{classes: classes}
	}
}
