// Package infer is the shared inference engine: the forward/eval path
// carved out of backend.RunWith's train loop so training and serving
// drive the same sample→gather→forward stages, kernels and workspace
// arena. An Engine owns a loaded model, a sampler, an optional
// cache.FeatureSource (the feature plane serving requests gather
// through) and the model's tensor.Workspace, and exposes two entry
// points over one internal pipeline run:
//
//   - Accuracy — the evaluation loop backend.Evaluate and RunWith's
//     per-epoch validation run on, pinned bitwise-identical to the
//     pre-extraction evaluateWith at every prefetch depth;
//   - Predict — per-request class inference for a handful of target
//     vertices, the serving path behind internal/serve and cmd/gnnserve.
//
// Determinism: every batch draws from sample.BatchRNG(Seed, 0, index),
// so a call's outputs are a pure function of (engine seed, target list,
// batch size) — independent of prefetch depth, worker count, and
// whatever ran before it on this engine.
//
// Concurrency: the sampler's scratch, the feature plane's single-writer
// contract and the model workspace all assume one run at a time, so an
// Engine serializes Predict/Accuracy calls behind an internal mutex.
// Concurrent callers coalesce better through a Coalescer (coalesce.go),
// which batches them into one Predict per flush.
package infer

import (
	"context"
	"fmt"
	"sync"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/model"
	"gnnavigator/internal/nn"
	"gnnavigator/internal/pipeline"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/tensor"
)

// defaultBatchSize chunks evaluation/prediction target lists — the
// historical Evaluate batch size, kept so extraction stays bitwise.
const defaultBatchSize = 512

// Config wires an Engine.
type Config struct {
	// Graph is the graph targets are sampled against.
	Graph *graph.Graph
	// Model is the loaded (trained) model; the engine attaches a fresh
	// workspace arena when the model has none.
	Model *model.Model
	// Sampler draws each batch's neighborhood; nil selects
	// EvalSampler(Model layers), the deterministic fanout-15 node-wise
	// sampler backend.Evaluate has always used.
	Sampler sample.Sampler
	// Source is the feature plane rows are gathered through — a shared
	// LRU plane for serving, nil for direct host gathers (the evaluation
	// default; output is identical either way at float32).
	Source cache.FeatureSource
	// Seed roots the per-batch RNG derivation.
	Seed int64
	// BatchSize chunks the target list (default 512).
	BatchSize int
	// Prefetch is the pipeline lookahead depth; <= 0 runs the inline
	// zero-goroutine path. Outputs are bitwise-identical at any depth.
	Prefetch int
}

// Stats aggregates one call's pipeline volumes — the serving analogue
// of the per-batch sim.BatchVolumes accounting.
type Stats struct {
	// Batches is how many pipeline batches the call ran.
	Batches int
	// SampledVertices and SampledEdges total the minibatch sizes.
	SampledVertices int
	SampledEdges    int
	// Miss, CacheOps and TransferBytes total the feature plane's batch
	// outcomes (zero when the engine gathers directly from the graph).
	Miss          int
	CacheOps      int
	TransferBytes int64
}

func (s *Stats) add(b *pipeline.Batch) {
	s.Batches++
	s.SampledVertices += b.MB.NumVertices
	s.SampledEdges += b.MB.NumEdges
	s.Miss += b.Miss
	s.CacheOps += b.CacheOps
	s.TransferBytes += b.TransferBytes
}

// Prediction is Predict's result.
type Prediction struct {
	// Classes holds the argmax class per requested target, aligned with
	// the call's target order (duplicates included).
	Classes []int32
	// Logits holds the raw output row per requested target, same
	// alignment. The matrix is owned by the caller.
	Logits *tensor.Dense
	// Stats are the call's pipeline volumes.
	Stats Stats
}

// Engine drives the shared forward path. Safe for concurrent use; calls
// serialize.
type Engine struct {
	cfg Config
	mu  sync.Mutex
}

// New validates cfg, applies defaults, and attaches a workspace arena
// to the model if it has none.
func New(cfg Config) (*Engine, error) {
	if cfg.Graph == nil || cfg.Model == nil {
		return nil, fmt.Errorf("infer: need a graph and a model")
	}
	if cfg.Model.Cfg().InDim != cfg.Graph.FeatDim {
		return nil, fmt.Errorf("infer: model input width %d != graph feature width %d",
			cfg.Model.Cfg().InDim, cfg.Graph.FeatDim)
	}
	if cfg.Sampler == nil {
		cfg.Sampler = EvalSampler(cfg.Model.Cfg().Layers)
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = defaultBatchSize
	}
	if cfg.Model.Workspace() == nil {
		cfg.Model.SetWorkspace(tensor.NewWorkspace())
	}
	return &Engine{cfg: cfg}, nil
}

// EvalSampler builds the deterministic node-wise sampler evaluation
// uses: generous fanout 15 per layer. Holding one instance across calls
// (as an Engine does) keeps its frontier tables and pick scratch warm.
func EvalSampler(layers int) *sample.NodeWise {
	fanouts := make([]int, layers)
	for i := range fanouts {
		fanouts[i] = 15
	}
	return &sample.NodeWise{Fanouts: fanouts}
}

// Graph returns the engine's graph.
func (e *Engine) Graph() *graph.Graph { return e.cfg.Graph }

// Model returns the engine's model.
func (e *Engine) Model() *model.Model { return e.cfg.Model }

// Source returns the engine's feature plane (nil when gathering
// directly from the graph).
func (e *Engine) Source() cache.FeatureSource { return e.cfg.Source }

// run is the one pipeline loop both entry points share: sample → gather
// (through the feature plane when one is configured) → forward, with
// the workspace recycled after each batch's visit. Batches arrive in
// strictly increasing index order at any prefetch depth.
func (e *Engine) run(ctx context.Context, targets []int32, visit func(b *pipeline.Batch, logits *tensor.Dense) error) error {
	e.mu.Lock()
	defer e.mu.Unlock()
	ws := e.cfg.Model.Workspace()
	return pipeline.Run(pipeline.Config{
		Graph:     e.cfg.Graph,
		Sampler:   e.cfg.Sampler,
		Source:    e.cfg.Source,
		Seed:      e.cfg.Seed,
		Epochs:    1,
		BatchSize: e.cfg.BatchSize,
		Targets:   targets,
		Gather:    true,
		Prefetch:  e.cfg.Prefetch,
		Ctx:       ctx,
	}, func(b *pipeline.Batch) error {
		logits, err := e.cfg.Model.Forward(b.MB, b.Feats, false)
		if err != nil {
			return err
		}
		if err := visit(b, logits); err != nil {
			return err
		}
		ws.ReleaseAll()
		return nil
	}, nil)
}

// Accuracy measures the model's accuracy over idx (limited to the first
// `limit` vertices when limit > 0) — the evaluation loop formerly
// inlined in backend. The arithmetic is kept exactly as it was
// (per-batch nn.Accuracy folded through the same int truncation), so
// results are bitwise-identical to the pre-extraction evaluateWith.
func (e *Engine) Accuracy(ctx context.Context, idx []int32, limit int) (float64, error) {
	if len(idx) == 0 {
		return 0, fmt.Errorf("infer: empty evaluation set")
	}
	if limit > 0 && limit < len(idx) {
		idx = idx[:limit]
	}
	var correct, total int
	err := e.run(ctx, idx, func(b *pipeline.Batch, logits *tensor.Dense) error {
		correct += int(nn.Accuracy(logits, b.Labels) * float64(len(b.Labels)))
		total += len(b.Labels)
		return nil
	})
	if err != nil {
		return 0, err
	}
	return float64(correct) / float64(total), nil
}

// Predict runs inference for the given target vertices and returns one
// class (and logits row) per target, in target order. Duplicate targets
// are deduplicated before sampling — the sampler collapses repeated
// seeds, so feeding them through would misalign rows — and every
// duplicate receives the unique vertex's result.
func (e *Engine) Predict(ctx context.Context, targets []int32) (*Prediction, error) {
	if len(targets) == 0 {
		return nil, fmt.Errorf("infer: empty target set")
	}
	n := e.cfg.Graph.NumVertices()
	for _, v := range targets {
		if v < 0 || int(v) >= n {
			return nil, fmt.Errorf("infer: target vertex %d out of range [0,%d)", v, n)
		}
	}
	// Dedup preserving first-seen order; pos maps vertex → unique row.
	pos := make(map[int32]int32, len(targets))
	uniq := make([]int32, 0, len(targets))
	for _, v := range targets {
		if _, ok := pos[v]; !ok {
			pos[v] = int32(len(uniq))
			uniq = append(uniq, v)
		}
	}
	outDim := e.cfg.Model.Cfg().OutDim
	logits := tensor.New(len(uniq), outDim)
	classes := make([]int32, len(uniq))
	p := &Prediction{}
	row := 0
	err := e.run(ctx, uniq, func(b *pipeline.Batch, lg *tensor.Dense) error {
		// uniq has no repeats and evaluation order is unshuffled, so each
		// batch's targets are exactly its chunk of uniq, in order: rows
		// append sequentially.
		for i, c := range lg.ArgmaxRows() {
			classes[row] = int32(c)
			copy(logits.Row(row), lg.Row(i))
			row++
		}
		p.Stats.add(b)
		return nil
	})
	if err != nil {
		return nil, err
	}
	if row != len(uniq) {
		return nil, fmt.Errorf("infer: predicted %d of %d targets", row, len(uniq))
	}
	if len(uniq) == len(targets) {
		p.Classes, p.Logits = classes, logits
		return p, nil
	}
	// Scatter unique results back over the duplicates.
	p.Classes = make([]int32, len(targets))
	p.Logits = tensor.New(len(targets), outDim)
	for i, v := range targets {
		u := pos[v]
		p.Classes[i] = classes[u]
		copy(p.Logits.Row(i), logits.Row(int(u)))
	}
	return p, nil
}
