package infer_test

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"
	"time"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/infer"
	"gnnavigator/internal/model"
	"gnnavigator/internal/nn"
	"gnnavigator/internal/pipeline"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/tensor"
)

func evalFixture(t *testing.T) (*dataset.Dataset, *model.Model) {
	t.Helper()
	d, err := dataset.Load(dataset.OgbnArxiv)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.New(model.Config{
		Kind: model.SAGE, InDim: d.Graph.FeatDim, Hidden: 16,
		OutDim: d.Graph.NumClasses, Layers: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d, m
}

// frozenEvaluate is a verbatim copy of backend's pre-extraction
// evaluateWith loop (the code infer.Engine.Accuracy replaced), kept here
// as the reference the engine is pinned against: same sampler, same
// batch size, same per-batch accuracy truncation.
func frozenEvaluate(m *model.Model, g *graph.Graph, idx []int32, limit int, seed int64, prefetch int) (float64, error) {
	if limit > 0 && limit < len(idx) {
		idx = idx[:limit]
	}
	fanouts := make([]int, m.Cfg().Layers)
	for i := range fanouts {
		fanouts[i] = 15
	}
	if m.Workspace() == nil {
		m.SetWorkspace(tensor.NewWorkspace())
	}
	ws := m.Workspace()
	var correct, total int
	err := pipeline.Run(pipeline.Config{
		Graph:     g,
		Sampler:   &sample.NodeWise{Fanouts: fanouts},
		Seed:      seed,
		Epochs:    1,
		BatchSize: 512,
		Targets:   idx,
		Gather:    true,
		Prefetch:  prefetch,
	}, func(b *pipeline.Batch) error {
		logits, err := m.Forward(b.MB, b.Feats, false)
		if err != nil {
			return err
		}
		correct += int(nn.Accuracy(logits, b.Labels) * float64(len(b.Labels)))
		total += len(b.Labels)
		ws.ReleaseAll()
		return nil
	}, nil)
	if err != nil {
		return 0, err
	}
	return float64(correct) / float64(total), nil
}

// TestAccuracyMatchesFrozenEvaluate is the extraction's acceptance test:
// Engine.Accuracy must be bitwise-identical to the loop it replaced, at
// every prefetch depth, and stable across repeated calls on one engine
// (warm sampler scratch must not leak into results). Run under -race in
// CI.
func TestAccuracyMatchesFrozenEvaluate(t *testing.T) {
	d, m := evalFixture(t)
	want, err := frozenEvaluate(m, d.Graph, d.ValIdx, 1200, 7, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, depth := range []int{0, 1, 4} {
		eng, err := infer.New(infer.Config{Graph: d.Graph, Model: m, Seed: 7, Prefetch: depth})
		if err != nil {
			t.Fatal(err)
		}
		for call := 0; call < 2; call++ {
			got, err := eng.Accuracy(context.Background(), d.ValIdx, 1200)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Errorf("prefetch %d call %d: accuracy %v, frozen reference %v (not bitwise)",
					depth, call, got, want)
			}
		}
	}
	if _, err := (&infer.Engine{}).Accuracy(context.Background(), nil, 0); err == nil {
		t.Error("empty evaluation set accepted")
	}
}

// TestPredictDeterministicAcrossPrefetch pins Predict's outputs — every
// class and every logit — across prefetch depths and repeated calls.
func TestPredictDeterministicAcrossPrefetch(t *testing.T) {
	d, m := evalFixture(t)
	targets := d.ValIdx[:700] // spans two 512-vertex pipeline batches
	eng0, err := infer.New(infer.Config{Graph: d.Graph, Model: m, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	base, err := eng0.Predict(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Classes) != len(targets) || base.Logits.Rows != len(targets) {
		t.Fatalf("got %d classes / %d logit rows for %d targets",
			len(base.Classes), base.Logits.Rows, len(targets))
	}
	if base.Stats.Batches != 2 || base.Stats.SampledVertices == 0 {
		t.Errorf("implausible stats: %+v", base.Stats)
	}
	for _, depth := range []int{0, 1, 4} {
		eng, err := infer.New(infer.Config{Graph: d.Graph, Model: m, Seed: 3, Prefetch: depth})
		if err != nil {
			t.Fatal(err)
		}
		got, err := eng.Predict(context.Background(), targets)
		if err != nil {
			t.Fatal(err)
		}
		for i := range targets {
			if got.Classes[i] != base.Classes[i] {
				t.Fatalf("prefetch %d: class[%d] = %d, want %d", depth, i, got.Classes[i], base.Classes[i])
			}
			for j, v := range got.Logits.Row(i) {
				if math.Float64bits(v) != math.Float64bits(base.Logits.Row(i)[j]) {
					t.Fatalf("prefetch %d: logits[%d][%d] = %v, want %v (not bitwise)",
						depth, i, j, v, base.Logits.Row(i)[j])
				}
			}
		}
	}
}

// TestPredictAlignsDuplicates: the sampler collapses repeated seed
// vertices, so Predict dedups and scatters — every duplicate must get
// exactly its vertex's result, in the caller's order.
func TestPredictAlignsDuplicates(t *testing.T) {
	d, m := evalFixture(t)
	eng, err := infer.New(infer.Config{Graph: d.Graph, Model: m, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	uniq := []int32{5, 9, 11}
	base, err := eng.Predict(context.Background(), uniq)
	if err != nil {
		t.Fatal(err)
	}
	dup := []int32{5, 9, 5, 11, 9, 5}
	got, err := eng.Predict(context.Background(), dup)
	if err != nil {
		t.Fatal(err)
	}
	at := map[int32]int{5: 0, 9: 1, 11: 2}
	for i, v := range dup {
		u := at[v]
		if got.Classes[i] != base.Classes[u] {
			t.Errorf("target %d (vertex %d): class %d, want %d", i, v, got.Classes[i], base.Classes[u])
		}
		for j, x := range got.Logits.Row(i) {
			if math.Float64bits(x) != math.Float64bits(base.Logits.Row(u)[j]) {
				t.Fatalf("target %d (vertex %d): logits diverge from unique run", i, v)
			}
		}
	}
	// Classes must agree with the returned logits.
	for i := range dup {
		best, arg := math.Inf(-1), 0
		for j, x := range got.Logits.Row(i) {
			if x > best {
				best, arg = x, j
			}
		}
		if int(got.Classes[i]) != arg {
			t.Errorf("target %d: class %d but logits argmax %d", i, got.Classes[i], arg)
		}
	}
}

// TestPredictMatchesCachedSource: routing gathers through an LRU feature
// plane must not change a single output bit (features are float32 at
// rest in both routes), while the plane's transfer accounting shows up
// in Stats.
func TestPredictMatchesCachedSource(t *testing.T) {
	d, m := evalFixture(t)
	targets := d.ValIdx[:600]
	direct, err := infer.New(infer.Config{Graph: d.Graph, Model: m, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := direct.Predict(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	c, err := cache.New(cache.LRU, d.Graph.NumVertices()/10, d.Graph)
	if err != nil {
		t.Fatal(err)
	}
	cached, err := infer.New(infer.Config{
		Graph: d.Graph, Model: m, Seed: 3, Source: cache.NewCachedSource(c, d.Graph),
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := cached.Predict(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	for i := range targets {
		if got.Classes[i] != want.Classes[i] {
			t.Fatalf("class[%d] = %d through cache, %d direct", i, got.Classes[i], want.Classes[i])
		}
		for j, v := range got.Logits.Row(i) {
			if math.Float64bits(v) != math.Float64bits(want.Logits.Row(i)[j]) {
				t.Fatalf("logits[%d][%d] differ through cache (not bitwise)", i, j)
			}
		}
	}
	if got.Stats.Miss == 0 || got.Stats.TransferBytes == 0 {
		t.Errorf("cached run recorded no transfers: %+v", got.Stats)
	}
	if want.Stats.Miss != 0 || want.Stats.CacheOps != 0 {
		t.Errorf("direct run recorded cache activity: %+v", want.Stats)
	}
}

func TestEngineValidation(t *testing.T) {
	d, m := evalFixture(t)
	if _, err := infer.New(infer.Config{Model: m}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := infer.New(infer.Config{Graph: d.Graph}); err == nil {
		t.Error("nil model accepted")
	}
	bad, err := model.New(model.Config{
		Kind: model.SAGE, InDim: d.Graph.FeatDim + 1, Hidden: 4,
		OutDim: d.Graph.NumClasses, Layers: 1, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := infer.New(infer.Config{Graph: d.Graph, Model: bad}); err == nil {
		t.Error("input-width mismatch accepted")
	}
	eng, err := infer.New(infer.Config{Graph: d.Graph, Model: m})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := eng.Predict(context.Background(), nil); err == nil {
		t.Error("empty target set accepted")
	}
	if _, err := eng.Predict(context.Background(), []int32{int32(d.Graph.NumVertices())}); err == nil {
		t.Error("out-of-range target accepted")
	}
	if _, err := eng.Predict(context.Background(), []int32{-1}); err == nil {
		t.Error("negative target accepted")
	}
}

func TestPredictHonorsContext(t *testing.T) {
	d, m := evalFixture(t)
	eng, err := infer.New(infer.Config{Graph: d.Graph, Model: m, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := eng.Predict(ctx, d.ValIdx[:600]); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Predict returned %v, want context.Canceled", err)
	}
	if _, err := eng.Accuracy(ctx, d.ValIdx, 600); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled Accuracy returned %v, want context.Canceled", err)
	}
}

// TestCoalescerMergesConcurrentRequests: concurrent callers must each
// get exactly the answer a solo Predict would give them, and with a
// generous window the dispatcher should need fewer flushes than there
// were requests. Fanout-limited sampling draws different neighborhoods
// depending on who shares the batch, so per-request equality is pinned
// with a full-neighborhood sampler (fanout <= 0 takes every neighbor
// and consumes no RNG): each target's logits are then a function of the
// target alone, whatever batch it rides in.
func TestCoalescerMergesConcurrentRequests(t *testing.T) {
	d, m := evalFixture(t)
	eng, err := infer.New(infer.Config{
		Graph: d.Graph, Model: m, Seed: 3,
		Sampler: &sample.NodeWise{Fanouts: []int{0, 0}},
	})
	if err != nil {
		t.Fatal(err)
	}
	const clients = 8
	want := make([][]int32, clients)
	reqs := make([][]int32, clients)
	for i := range reqs {
		reqs[i] = []int32{int32(3 * i), int32(3*i + 1), int32(3*i + 2)}
		p, err := eng.Predict(context.Background(), reqs[i])
		if err != nil {
			t.Fatal(err)
		}
		want[i] = p.Classes
	}
	col := infer.NewCoalescer(eng, infer.CoalescerConfig{MaxBatch: 4096, MaxWait: 300 * time.Millisecond})
	defer col.Close()
	var wg sync.WaitGroup
	errs := make([]error, clients)
	got := make([][]int32, clients)
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			got[i], errs[i] = col.Predict(context.Background(), reqs[i])
		}(i)
	}
	close(start)
	wg.Wait()
	for i := range got {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		for j := range want[i] {
			if got[i][j] != want[i][j] {
				t.Errorf("client %d target %d: class %d, want %d", i, j, got[i][j], want[i][j])
			}
		}
	}
	if f := col.Flushes(); f >= clients {
		t.Errorf("nothing coalesced: %d flushes for %d concurrent requests", f, clients)
	}
	if mb := col.MeanBatch(); mb < 3 {
		t.Errorf("mean batch %v, want >= a single request's 3 vertices", mb)
	}
}

// TestCoalescerSplitsAtMaxBatch: with a tiny vertex budget the same
// concurrent burst must split across several flushes — and still answer
// every request correctly.
func TestCoalescerSplitsAtMaxBatch(t *testing.T) {
	d, m := evalFixture(t)
	eng, err := infer.New(infer.Config{Graph: d.Graph, Model: m, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	col := infer.NewCoalescer(eng, infer.CoalescerConfig{MaxBatch: 4, MaxWait: 300 * time.Millisecond})
	defer col.Close()
	const clients = 6
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			targets := []int32{int32(3 * i), int32(3*i + 1), int32(3*i + 2)}
			classes, err := col.Predict(context.Background(), targets)
			if err != nil {
				t.Errorf("client %d: %v", i, err)
				return
			}
			if len(classes) != len(targets) {
				t.Errorf("client %d: %d classes for %d targets", i, len(classes), len(targets))
			}
		}(i)
	}
	wg.Wait()
	if f := col.Flushes(); f < 2 {
		t.Errorf("MaxBatch 4 never split an 18-vertex burst: %d flushes", f)
	}
}

func TestCoalescerCloseAndContext(t *testing.T) {
	d, m := evalFixture(t)
	eng, err := infer.New(infer.Config{Graph: d.Graph, Model: m, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	col := infer.NewCoalescer(eng, infer.CoalescerConfig{})
	if _, err := col.Predict(context.Background(), nil); err == nil {
		t.Error("empty request accepted")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := col.Predict(ctx, []int32{1}); err == nil {
		t.Error("cancelled request returned no error")
	}
	col.Close()
	col.Close() // idempotent
	if _, err := col.Predict(context.Background(), []int32{1}); !errors.Is(err, infer.ErrCoalescerClosed) {
		t.Errorf("Predict after Close returned %v, want ErrCoalescerClosed", err)
	}
}

// TestChaosServeFlush arms the serve/flush injection point: the flush
// must fail every request of its batch with a recognizable injected
// error, and the coalescer must serve cleanly once disarmed.
func TestChaosServeFlush(t *testing.T) {
	defer faultinject.Reset()
	d, m := evalFixture(t)
	eng, err := infer.New(infer.Config{Graph: d.Graph, Model: m, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	col := infer.NewCoalescer(eng, infer.CoalescerConfig{MaxWait: time.Millisecond})
	defer col.Close()
	faultinject.Arm(faultinject.ServeFlush, faultinject.Spec{Kind: faultinject.Error, Count: 1})
	if _, err := col.Predict(context.Background(), []int32{1, 2}); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("armed flush fault produced %v, want ErrInjected", err)
	}
	faultinject.Reset()
	classes, err := col.Predict(context.Background(), []int32{1, 2})
	if err != nil {
		t.Fatalf("flush after disarm: %v", err)
	}
	if len(classes) != 2 {
		t.Fatalf("got %d classes, want 2", len(classes))
	}
}
