package model

import (
	"fmt"
	"math"
	"math/rand"

	"gnnavigator/internal/nn"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/tensor"
)

// gatLayer implements multi-head additive attention (Veličković et al.):
//
//	z_j     = h_j · W            (per head)
//	e_ij    = LeakyReLU(aSrc·z_j + aDst·z_i)   over j ∈ N(i) ∪ {i}
//	α_i·    = softmax(e_i·)
//	y_i     = Σ_j α_ij z_j
//
// Heads are concatenated; the per-head output dim is out/heads.
//
// Forward is sharded over destination-row ranges (each dst owns a
// contiguous edge range, so scores, softmax and the weighted sum write
// disjoint slices). Backward's edge scatter accumulates into shared
// source rows, so it stays serial; its matmuls — which dominate — run on
// the sharded kernels.
type gatLayer struct {
	heads   int
	in, out int // out is the concatenated output dim
	perHead int
	slope   float64

	w    []*nn.Param // [heads] in×perHead
	aSrc []*nn.Param // [heads] 1×perHead
	aDst []*nn.Param // [heads] 1×perHead
	bias *nn.Param   // 1×out

	ws *tensor.Workspace

	// forward caches. alpha/pre live in the workspace arena (one Get per
	// head per Forward), not on the layer: they are per-iteration
	// intermediates, valid from Forward through Backward until the
	// trainer's ReleaseAll, and arena-backed buffers are shared across
	// layers and batch sizes instead of pinned per layer.
	blk   *sample.Block
	h     *tensor.Dense
	z     []*tensor.Dense // per head, src×perHead
	alpha [][]float64     // per head, per edge (flattened like edge list incl. self)
	pre   [][]float64     // pre-LeakyReLU scores per head/edge
	// edge list with self loops: for dst i, edges cover [dstOff[i], dstOff[i+1])
	edgeSrc []int32 // src position per edge
	edgeDst []int32 // dst index per edge
	dstOff  []int32 // per-dst edge range start; len = DstCount+1

	// reusable scratch (cap-grown, never shrunk)
	sSrc, sDst   []float64
	dAlpha, dPre []float64
	colSum       []float64
}

func newGATLayer(rng *rand.Rand, name string, in, out, heads int) (*gatLayer, error) {
	if heads < 1 || out%heads != 0 {
		return nil, fmt.Errorf("model: GAT out dim %d not divisible by heads %d", out, heads)
	}
	l := &gatLayer{heads: heads, in: in, out: out, perHead: out / heads, slope: 0.2}
	for h := 0; h < heads; h++ {
		w := nn.NewParam(fmt.Sprintf("%s.W%d", name, h), in, l.perHead)
		w.Value.GlorotInit(rng, in, l.perHead)
		as := nn.NewParam(fmt.Sprintf("%s.aSrc%d", name, h), 1, l.perHead)
		as.Value.GlorotInit(rng, l.perHead, 1)
		ad := nn.NewParam(fmt.Sprintf("%s.aDst%d", name, h), 1, l.perHead)
		ad.Value.GlorotInit(rng, l.perHead, 1)
		l.w = append(l.w, w)
		l.aSrc = append(l.aSrc, as)
		l.aDst = append(l.aDst, ad)
	}
	l.bias = nn.NewParam(name+".b", 1, out)
	l.z = make([]*tensor.Dense, heads)
	l.alpha = make([][]float64, heads)
	l.pre = make([][]float64, heads)
	return l, nil
}

func (l *gatLayer) setWorkspace(ws *tensor.Workspace) { l.ws = ws }

// buildEdges materializes the attention edge list: sampled neighbors plus a
// self edge per destination. The edge count is known exactly up front
// (one self edge per dst plus every sampled index), so the buffers are
// sized once and filled by position — no append growth in the hot path.
func (l *gatLayer) buildEdges(blk *sample.Block) {
	n := blk.DstCount + len(blk.Indices)
	l.edgeSrc = tensor.Grow(l.edgeSrc, n)
	l.edgeDst = tensor.Grow(l.edgeDst, n)
	l.dstOff = tensor.Grow(l.dstOff, blk.DstCount+1)
	e := 0
	for i := 0; i < blk.DstCount; i++ {
		l.dstOff[i] = int32(e)
		l.edgeSrc[e] = int32(i) // self
		l.edgeDst[e] = int32(i)
		e++
		for _, ix := range blk.Indices[blk.Offsets[i]:blk.Offsets[i+1]] {
			l.edgeSrc[e] = ix
			l.edgeDst[e] = int32(i)
			e++
		}
	}
	l.dstOff[blk.DstCount] = int32(e)
}

func (l *gatLayer) Forward(blk *sample.Block, h *tensor.Dense) *tensor.Dense {
	l.blk = blk
	l.h = h
	l.buildEdges(blk)
	nEdges := len(l.edgeSrc)
	out := l.ws.Get(blk.DstCount, l.out)

	for hd := 0; hd < l.heads; hd++ {
		z := l.ws.Get(h.Rows, l.perHead)
		// Sparse-skip kernel: h is post-dropout (exact zeros at rate P
		// during training), and the seed's MatMul skipped those terms.
		tensor.MatMulSparseInto(z, h, l.w[hd].Value)
		l.z[hd] = z
		as, ad := l.aSrc[hd].Value.Data, l.aDst[hd].Value.Data
		// Per-vertex score halves.
		l.sSrc = tensor.Grow(l.sSrc, z.Rows)
		sSrc := l.sSrc
		tensor.ParallelRows(z.Rows, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				row := z.Row(r)
				var s float64
				for j, a := range as {
					s += a * row[j]
				}
				sSrc[r] = s
			}
		})
		l.sDst = tensor.Grow(l.sDst, blk.DstCount)
		sDst := l.sDst
		tensor.ParallelRows(blk.DstCount, func(lo, hi int) {
			for r := lo; r < hi; r++ {
				row := z.Row(r)
				var s float64
				for j, a := range ad {
					s += a * row[j]
				}
				sDst[r] = s
			}
		})
		l.pre[hd] = l.ws.Get(1, nEdges).Data
		l.alpha[hd] = l.ws.Get(1, nEdges).Data
		pre, alpha := l.pre[hd], l.alpha[hd]
		// Scores, per-dst softmax and the weighted sum shard over dst
		// ranges: dst i owns edges [dstOff[i], dstOff[i+1]) and output
		// row i, so shards never share writes.
		base := hd * l.perHead
		tensor.ParallelRows(blk.DstCount, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				eLo, eHi := int(l.dstOff[i]), int(l.dstOff[i+1])
				for e := eLo; e < eHi; e++ {
					v := sSrc[l.edgeSrc[e]] + sDst[l.edgeDst[e]]
					pre[e] = v
					if v < 0 {
						v *= l.slope
					}
					alpha[e] = v
				}
				max := math.Inf(-1)
				for e := eLo; e < eHi; e++ {
					if alpha[e] > max {
						max = alpha[e]
					}
				}
				var sum float64
				for e := eLo; e < eHi; e++ {
					alpha[e] = math.Exp(alpha[e] - max)
					sum += alpha[e]
				}
				for e := eLo; e < eHi; e++ {
					alpha[e] /= sum
				}
				orow := out.Row(i)
				if hd == 0 {
					for j := range orow {
						orow[j] = 0
					}
				}
				for e := eLo; e < eHi; e++ {
					zrow := z.Row(int(l.edgeSrc[e]))
					a := alpha[e]
					for j := 0; j < l.perHead; j++ {
						orow[base+j] += a * zrow[j]
					}
				}
			}
		})
	}
	out.AddBias(l.bias.Value.Data)
	return out
}

func (l *gatLayer) Backward(dy *tensor.Dense) *tensor.Dense {
	blk := l.blk
	nEdges := len(l.edgeSrc)
	l.colSum = tensor.Grow(l.colSum, dy.Cols)
	dy.ColSumsInto(l.colSum)
	for j, s := range l.colSum {
		l.bias.Grad.Data[j] += s
	}
	dh := l.ws.GetZeroed(l.h.Rows, l.in)
	dhHead := l.ws.Get(l.h.Rows, l.in)
	dwScratch := l.ws.Get(l.in, l.perHead)
	for hd := 0; hd < l.heads; hd++ {
		z := l.z[hd]
		alpha := l.alpha[hd]
		pre := l.pre[hd]
		base := hd * l.perHead
		dz := l.ws.GetZeroed(z.Rows, l.perHead)
		l.dAlpha = tensor.Grow(l.dAlpha, nEdges)
		dAlpha := l.dAlpha
		// dz from the weighted sum; dAlpha_e = dy_i · z_src. Serial: many
		// edges share a src row of dz.
		for e := 0; e < nEdges; e++ {
			src, dst := int(l.edgeSrc[e]), int(l.edgeDst[e])
			zrow := z.Row(src)
			dyrow := dy.Row(dst)
			dzrow := dz.Row(src)
			a := alpha[e]
			var da float64
			for j := 0; j < l.perHead; j++ {
				g := dyrow[base+j]
				dzrow[j] += a * g
				da += g * zrow[j]
			}
			dAlpha[e] = da
		}
		// Softmax backward per dst: de = α (dα - Σ α dα). Dst ranges are
		// disjoint, so this shards.
		l.dPre = tensor.Grow(l.dPre, nEdges)
		dPre := l.dPre
		tensor.ParallelRows(blk.DstCount, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				eLo, eHi := int(l.dstOff[i]), int(l.dstOff[i+1])
				var dot float64
				for e := eLo; e < eHi; e++ {
					dot += alpha[e] * dAlpha[e]
				}
				for e := eLo; e < eHi; e++ {
					de := alpha[e] * (dAlpha[e] - dot)
					if pre[e] < 0 {
						de *= l.slope
					}
					dPre[e] = de
				}
			}
		})
		// dPre flows to aSrc·z_src and aDst·z_dst. Serial: src rows of dz
		// are shared across edges.
		as, ad := l.aSrc[hd].Value.Data, l.aDst[hd].Value.Data
		dAs, dAd := l.aSrc[hd].Grad.Data, l.aDst[hd].Grad.Data
		for e := 0; e < nEdges; e++ {
			src, dst := int(l.edgeSrc[e]), int(l.edgeDst[e])
			g := dPre[e]
			zs := z.Row(src)
			zd := z.Row(dst)
			dzs := dz.Row(src)
			dzd := dz.Row(dst)
			for j := 0; j < l.perHead; j++ {
				dAs[j] += g * zs[j]
				dAd[j] += g * zd[j]
				dzs[j] += g * as[j]
				dzd[j] += g * ad[j]
			}
		}
		// Through z = h·W. Sparse variant: h is post-dropout, matching
		// the forward projection's kernel choice.
		tensor.MatMulT1SparseInto(dwScratch, l.h, dz)
		l.w[hd].Grad.AddInPlace(dwScratch)
		tensor.MatMulT2Into(dhHead, dz, l.w[hd].Value)
		dh.AddInPlace(dhHead)
		l.ws.Put(dz)
	}
	l.ws.Put(dwScratch)
	l.ws.Put(dhHead)
	return dh
}

func (l *gatLayer) Params() []*nn.Param {
	out := make([]*nn.Param, 0, 3*l.heads+1)
	for hd := 0; hd < l.heads; hd++ {
		out = append(out, l.w[hd], l.aSrc[hd], l.aDst[hd])
	}
	return append(out, l.bias)
}

func (l *gatLayer) FLOPs(src, dst, edges int) float64 {
	e := float64(edges + dst)                                    // incl. self edges
	perHead := 2*float64(src)*float64(l.in)*float64(l.perHead) + // z = hW
		e*float64(l.perHead)*3 + // scores + weighted sum
		e*4 // softmax-ish
	return perHead * float64(l.heads)
}
