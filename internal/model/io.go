package model

import (
	"bytes"
	"fmt"
	"io"

	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/safefile"
)

// Model persistence: the artifact `gnnavigator -save-model` writes and
// cmd/gnnserve loads — everything needed to reconstruct a trained model
// for inference (and, because gradients rebuild from scratch, for
// further training): the full Config and every trainable parameter's
// values, flattened, in Params() order. Each parameter carries its name
// and shape so a load against a structurally different build fails
// loudly instead of silently misassigning weights.
//
// Format: magic "GNAVMDL1", body, CRC-64/ECMA of the body as the
// trailing 8 bytes (little-endian) — the footer discipline shared with
// the plan and checkpoint formats via internal/safefile. Files are
// written atomically (tmp+rename) and a failed write or rename leaves
// no *.tmp behind.

var modelMagic = [8]byte{'G', 'N', 'A', 'V', 'M', 'D', 'L', '1'}

// Save writes m to path atomically.
func Save(path string, m *Model) error {
	if err := faultinject.Fire(faultinject.ModelSave); err != nil {
		return fmt.Errorf("model: save %s: %w", path, err)
	}
	var body bytes.Buffer
	if err := writeModelBody(&body, m); err != nil {
		return fmt.Errorf("model: save %s: %w", path, err)
	}
	payload := body.Bytes()
	// Checksum the intact body; the chaos Mutate hook corrupts after, so
	// the load side must catch it.
	sum := safefile.Checksum(payload)
	faultinject.Mutate(faultinject.ModelSave, payload)
	if err := safefile.Write(path, modelMagic, payload, sum); err != nil {
		return fmt.Errorf("model: save %s: %w", path, err)
	}
	return nil
}

// Load reads a model written by Save: it rebuilds the architecture from
// the stored Config (New) and installs the stored parameter values —
// bitwise — over the fresh initialization. The loaded model round-trips
// exactly: same Cfg(), same Params() bits.
func Load(path string) (*Model, error) {
	if err := faultinject.Fire(faultinject.ModelLoad); err != nil {
		return nil, fmt.Errorf("model: load %s: %w", path, err)
	}
	payload, err := safefile.Read(path, modelMagic)
	if err != nil {
		return nil, fmt.Errorf("model: load %s: %w", path, err)
	}
	br := bytes.NewReader(payload)
	m, err := readModelBody(br)
	if err != nil {
		return nil, fmt.Errorf("model: load %s: %w", path, err)
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("model: load %s: %d trailing bytes after body", path, br.Len())
	}
	return m, nil
}

func writeModelBody(w io.Writer, m *Model) error {
	cfg := m.Cfg()
	if err := safefile.WriteString(w, string(cfg.Kind)); err != nil {
		return err
	}
	for _, v := range []int64{int64(cfg.InDim), int64(cfg.Hidden), int64(cfg.OutDim),
		int64(cfg.Layers), int64(cfg.Heads), cfg.Seed} {
		if err := safefile.WriteInt(w, v); err != nil {
			return err
		}
	}
	if err := safefile.WriteFloats(w, []float64{cfg.Dropout}); err != nil {
		return err
	}
	params := m.Params()
	if err := safefile.WriteInt(w, int64(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := safefile.WriteString(w, p.Name); err != nil {
			return err
		}
		if err := safefile.WriteInt(w, int64(p.Value.Rows)); err != nil {
			return err
		}
		if err := safefile.WriteInt(w, int64(p.Value.Cols)); err != nil {
			return err
		}
		if err := safefile.WriteFloats(w, p.Value.Data); err != nil {
			return err
		}
	}
	return nil
}

func readModelBody(r io.Reader) (*Model, error) {
	kind, err := safefile.ReadString(r)
	if err != nil {
		return nil, err
	}
	ints := make([]int64, 6)
	for i := range ints {
		if ints[i], err = safefile.ReadInt(r); err != nil {
			return nil, err
		}
	}
	for _, v := range ints[:5] {
		if v < 0 || v > 1<<20 {
			return nil, fmt.Errorf("corrupt model dimension %d", v)
		}
	}
	drop, err := safefile.ReadFloats(r)
	if err != nil {
		return nil, err
	}
	if len(drop) != 1 {
		return nil, fmt.Errorf("corrupt dropout field (%d values)", len(drop))
	}
	cfg := Config{
		Kind: Kind(kind), InDim: int(ints[0]), Hidden: int(ints[1]),
		OutDim: int(ints[2]), Layers: int(ints[3]), Heads: int(ints[4]),
		Dropout: drop[0], Seed: ints[5],
	}
	// New re-validates the config and rebuilds the layer stack; the
	// stored values then overwrite the fresh seed initialization.
	m, err := New(cfg)
	if err != nil {
		return nil, fmt.Errorf("corrupt model config: %w", err)
	}
	params := m.Params()
	n, err := safefile.ReadInt(r)
	if err != nil {
		return nil, err
	}
	if int(n) != len(params) {
		return nil, fmt.Errorf("file holds %d params, architecture has %d", n, len(params))
	}
	for _, p := range params {
		name, err := safefile.ReadString(r)
		if err != nil {
			return nil, err
		}
		rows, err := safefile.ReadInt(r)
		if err != nil {
			return nil, err
		}
		cols, err := safefile.ReadInt(r)
		if err != nil {
			return nil, err
		}
		if name != p.Name || int(rows) != p.Value.Rows || int(cols) != p.Value.Cols {
			return nil, fmt.Errorf("param mismatch: file has %s[%dx%d], architecture wants %s[%dx%d]",
				name, rows, cols, p.Name, p.Value.Rows, p.Value.Cols)
		}
		data, err := safefile.ReadFloats(r)
		if err != nil {
			return nil, err
		}
		if len(data) != len(p.Value.Data) {
			return nil, fmt.Errorf("param %s holds %d scalars, want %d", name, len(data), len(p.Value.Data))
		}
		copy(p.Value.Data, data)
	}
	return m, nil
}
