package model

import (
	"errors"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gnnavigator/internal/faultinject"
)

func testModel(t *testing.T, kind Kind) *Model {
	t.Helper()
	m, err := New(Config{
		Kind: kind, InDim: 12, Hidden: 8, OutDim: 5, Layers: 2, Heads: 2,
		Dropout: 0.3, Seed: 41,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Perturb away from the fresh initialization so a load that silently
	// kept New's values would be caught.
	for i, p := range m.Params() {
		for j := range p.Value.Data {
			p.Value.Data[j] += float64(i)*0.125 + float64(j)*1e-3
		}
	}
	return m
}

// TestSaveLoadRoundTrip pins the round trip bitwise: config fingerprint
// and every parameter scalar identical to the saved model's.
func TestSaveLoadRoundTrip(t *testing.T) {
	for _, kind := range []Kind{GCN, SAGE, GAT} {
		t.Run(string(kind), func(t *testing.T) {
			m := testModel(t, kind)
			path := filepath.Join(t.TempDir(), "model.gnav")
			if err := Save(path, m); err != nil {
				t.Fatal(err)
			}
			if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
				t.Errorf("tmp file left behind after a successful save")
			}
			got, err := Load(path)
			if err != nil {
				t.Fatal(err)
			}
			if got.Cfg() != m.Cfg() {
				t.Errorf("config round-trip:\nsaved:  %+v\nloaded: %+v", m.Cfg(), got.Cfg())
			}
			want, have := m.Params(), got.Params()
			if len(want) != len(have) {
				t.Fatalf("loaded %d params, want %d", len(have), len(want))
			}
			for i := range want {
				if want[i].Name != have[i].Name {
					t.Fatalf("param %d name %q, want %q", i, have[i].Name, want[i].Name)
				}
				for j := range want[i].Value.Data {
					w, h := want[i].Value.Data[j], have[i].Value.Data[j]
					if math.Float64bits(w) != math.Float64bits(h) {
						t.Fatalf("param %s[%d]: %v != %v (not bitwise)", want[i].Name, j, h, w)
					}
				}
			}
		})
	}
}

// TestLoadRejectsDamage flips each byte (and truncates at several
// lengths): every damaged file must be rejected, never a partial or
// silently wrong model.
func TestLoadRejectsDamage(t *testing.T) {
	m := testModel(t, SAGE)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gnav")
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad.gnav")
	for _, i := range []int{0, 7, 8, 9, len(data) / 2, len(data) - 9, len(data) - 1} {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x20
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bad); err == nil {
			t.Errorf("model with byte %d flipped loaded without error", i)
		}
	}
	for _, n := range []int{0, 4, 8, 20, len(data) / 2, len(data) - 8, len(data) - 1} {
		if err := os.WriteFile(bad, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Load(bad); err == nil {
			t.Errorf("model truncated to %d of %d bytes loaded without error", n, len(data))
		}
	}
}

func TestLoadRejectsWrongArchitecture(t *testing.T) {
	m := testModel(t, SAGE)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.gnav")
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(filepath.Join(dir, "missing.gnav")); err == nil {
		t.Error("missing file loaded without error")
	}
	// A plan/checkpoint magic must be refused outright.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	copy(data, "GNAVCKP1")
	bad := filepath.Join(dir, "bad.gnav")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bad); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Errorf("foreign magic accepted: %v", err)
	}
}

// TestChaosModelSave arms the model/save point with an error fault and
// with payload corruption: the former must surface as a recognizable
// injected error, the latter must be caught by the checksum on load.
func TestChaosModelSave(t *testing.T) {
	defer faultinject.Reset()
	m := testModel(t, SAGE)
	path := filepath.Join(t.TempDir(), "model.gnav")

	faultinject.Arm(faultinject.ModelSave, faultinject.Spec{Kind: faultinject.Error, Count: 1})
	if err := Save(path, m); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("armed save fault produced %v, want ErrInjected", err)
	}
	faultinject.Reset()

	faultinject.Arm(faultinject.ModelSave, faultinject.Spec{Kind: faultinject.Corrupt, Count: 1, Bits: 3})
	if err := Save(path, m); err != nil {
		t.Fatalf("corrupting save failed at write time: %v", err)
	}
	faultinject.Reset()
	if _, err := Load(path); err == nil || !strings.Contains(err.Error(), "checksum mismatch") {
		t.Fatalf("corrupted model loaded: %v", err)
	}

	// Disarmed, the same path works end to end.
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
}

// TestChaosModelLoad arms the model/load point: the failure must be a
// clean injected error, and the file must stay loadable afterwards.
func TestChaosModelLoad(t *testing.T) {
	defer faultinject.Reset()
	m := testModel(t, SAGE)
	path := filepath.Join(t.TempDir(), "model.gnav")
	if err := Save(path, m); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.ModelLoad, faultinject.Spec{Kind: faultinject.Error, Count: 1})
	if _, err := Load(path); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("armed load fault produced %v, want ErrInjected", err)
	}
	faultinject.Reset()
	if _, err := Load(path); err != nil {
		t.Fatalf("load after disarm: %v", err)
	}
}
