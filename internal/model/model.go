// Package model implements the graph neural networks the paper trains —
// GCN, GraphSAGE and GAT — with exact forward and backward passes over
// sampled mini-batch blocks (Algo. 1 lines 4–9: Aggregate, Combine, Loss,
// Backwards). Everything is pure Go on the tensor/nn substrate; the
// "device" that executes it is modeled separately in internal/sim.
//
// A model may be attached to a tensor.Workspace (SetWorkspace), in which
// case all forward/backward intermediates come from the arena and the
// training loop owner recycles them once per iteration with
// ws.ReleaseAll(). Aggregation loops are sharded over destination-row
// ranges on the tensor worker pool; outputs are bitwise-identical at any
// parallelism setting.
package model

import (
	"fmt"
	"math/rand"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/nn"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/tensor"
)

// Kind names a GNN architecture.
type Kind string

// Supported architectures.
const (
	GCN  Kind = "gcn"
	SAGE Kind = "sage"
	GAT  Kind = "gat"
)

// Config describes a model instance.
type Config struct {
	Kind    Kind
	InDim   int
	Hidden  int
	OutDim  int
	Layers  int
	Heads   int     // GAT only; defaults to 1
	Dropout float64 // applied to layer inputs during training
	Seed    int64
}

// convLayer is one graph convolution with cached state for backward.
type convLayer interface {
	Forward(blk *sample.Block, h *tensor.Dense) *tensor.Dense
	Backward(dy *tensor.Dense) *tensor.Dense
	Params() []*nn.Param
	setWorkspace(ws *tensor.Workspace)
	// FLOPs estimates the multiply-add count for a block with the given
	// edge and vertex counts (the white-box compute model of Eq. 8).
	FLOPs(srcCount, dstCount, edges int) float64
}

// Model is a stack of graph convolutions with activations and dropout.
type Model struct {
	cfg      Config
	layers   []convLayer
	acts     []nn.Activation
	dropouts []*nn.Dropout
	rng      *rand.Rand
	ws       *tensor.Workspace

	// cached per-forward state for backward
	lastBatch *sample.MiniBatch
}

// New builds a model per cfg.
func New(cfg Config) (*Model, error) {
	if cfg.Layers < 1 {
		return nil, fmt.Errorf("model: Layers = %d, want >= 1", cfg.Layers)
	}
	if cfg.InDim < 1 || cfg.OutDim < 1 || (cfg.Layers > 1 && cfg.Hidden < 1) {
		return nil, fmt.Errorf("model: bad dims in=%d hidden=%d out=%d", cfg.InDim, cfg.Hidden, cfg.OutDim)
	}
	if cfg.Heads == 0 {
		cfg.Heads = 1
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	m := &Model{cfg: cfg, rng: rng}
	for l := 0; l < cfg.Layers; l++ {
		in := cfg.Hidden
		if l == 0 {
			in = cfg.InDim
		}
		out := cfg.Hidden
		last := l == cfg.Layers-1
		if last {
			out = cfg.OutDim
		}
		var layer convLayer
		var err error
		switch cfg.Kind {
		case GCN:
			layer = newGCNLayer(rng, fmt.Sprintf("gcn%d", l), in, out)
		case SAGE:
			sl := newSAGELayer(rng, fmt.Sprintf("sage%d", l), in, out)
			// The self path consumes the layer input directly — post-
			// dropout at layer 0, post-ReLU+dropout on hidden layers —
			// so exact zeros abound during training and the zero-skip
			// matmul pays. The neighbor path consumes a mean aggregate
			// (dense even when its rows are sparse) and keeps the
			// branch-free kernel.
			sl.self.SparseInput = true
			layer = sl
		case GAT:
			heads := cfg.Heads
			if last {
				heads = 1 // output layer: single head, no concat
			}
			layer, err = newGATLayer(rng, fmt.Sprintf("gat%d", l), in, out, heads)
			if err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("model: unknown kind %q", cfg.Kind)
		}
		m.layers = append(m.layers, layer)
		if !last {
			if cfg.Kind == GAT {
				m.acts = append(m.acts, &nn.ELU{Alpha: 1})
			} else {
				m.acts = append(m.acts, &nn.ReLU{})
			}
		}
		m.dropouts = append(m.dropouts, &nn.Dropout{P: cfg.Dropout, Rng: rng})
	}
	return m, nil
}

// SetWorkspace attaches ws to every layer, activation and dropout so the
// whole forward/backward pass draws intermediates from the arena. The
// caller owns the recycle point: call ws.ReleaseAll() only after the
// iteration's outputs (logits, gradients) are no longer needed. A nil ws
// restores plain allocation.
func (m *Model) SetWorkspace(ws *tensor.Workspace) {
	m.ws = ws
	for _, l := range m.layers {
		l.setWorkspace(ws)
	}
	for _, a := range m.acts {
		a.SetWorkspace(ws)
	}
	for _, d := range m.dropouts {
		d.WS = ws
	}
}

// Workspace returns the attached arena (nil if none).
func (m *Model) Workspace() *tensor.Workspace { return m.ws }

// SeedDropout re-roots the dropout mask stream at an explicit seed: all
// dropout layers share one fresh serial RNG, drawn in layer order during
// Forward. Training loops that need checkpoint/resume determinism call
// this once per batch with a seed derived from (run seed, epoch, batch
// index), making every batch's masks a pure function of its coordinates
// — independent of how many batches ran before it in this process.
func (m *Model) SeedDropout(seed int64) {
	rng := rand.New(rand.NewSource(seed))
	for _, d := range m.dropouts {
		d.Rng = rng
	}
}

// Cfg returns the model configuration.
func (m *Model) Cfg() Config { return m.cfg }

// Name returns the architecture name.
func (m *Model) Name() string { return string(m.cfg.Kind) }

// Params returns all trainable parameters.
func (m *Model) Params() []*nn.Param {
	var out []*nn.Param
	for _, l := range m.layers {
		out = append(out, l.Params()...)
	}
	return out
}

// NumParams returns |Φ|, the scalar parameter count (drives Γ_model).
func (m *Model) NumParams() int { return nn.CountParams(m.Params()) }

// Forward runs the network over a mini-batch. feats holds the raw features
// of mb.InputNodes (row i ↔ InputNodes[i]). It returns logits for
// mb.Targets in order.
func (m *Model) Forward(mb *sample.MiniBatch, feats *tensor.Dense, train bool) (*tensor.Dense, error) {
	if len(mb.Blocks) != len(m.layers) {
		return nil, fmt.Errorf("model: %d blocks for %d layers", len(mb.Blocks), len(m.layers))
	}
	if feats.Rows != len(mb.InputNodes) {
		return nil, fmt.Errorf("model: feats rows %d != input nodes %d", feats.Rows, len(mb.InputNodes))
	}
	m.lastBatch = mb
	h := feats
	for l, layer := range m.layers {
		h = m.dropouts[l].Forward(h, train)
		h = layer.Forward(&mb.Blocks[l], h)
		if l < len(m.acts) {
			h = m.acts[l].Forward(h)
		}
	}
	return h, nil
}

// Backward propagates dLogits through the network, accumulating parameter
// gradients. It returns the gradient with respect to the input features
// (rarely needed; callers may ignore it).
func (m *Model) Backward(dLogits *tensor.Dense) *tensor.Dense {
	d := dLogits
	for l := len(m.layers) - 1; l >= 0; l-- {
		if l < len(m.acts) {
			d = m.acts[l].Backward(d)
		}
		d = m.layers[l].Backward(d)
		d = m.dropouts[l].Backward(d)
	}
	return d
}

// FLOPs estimates the batch's multiply-add count across all layers — the
// white-box input to the simulator's t_compute (Eq. 8).
func (m *Model) FLOPs(mb *sample.MiniBatch) float64 {
	var total float64
	for l, layer := range m.layers {
		blk := &mb.Blocks[l]
		total += layer.FLOPs(len(blk.SrcNodes), blk.DstCount, blk.NumEdges())
	}
	return total
}

// GatherFeatures copies the raw float32 features of nodes from g into a
// float64 tensor suitable for Forward (row i ↔ nodes[i]). In the real
// system this gather is the host-side feature lookup that precedes
// transmission (Algo. 1 line 3).
func GatherFeatures(g *graph.Graph, nodes []int32) *tensor.Dense {
	return GatherFeaturesInto(nil, g, nodes)
}

// GatherFeaturesInto is GatherFeatures reusing dst's storage when its
// capacity suffices (pass the previous return value to amortize the
// feature matrix across mini-batches and epochs). It returns the matrix
// actually filled, sharded over rows. The copy itself is the feature
// plane's gather kernel (cache.GatherRowsInto); cached transmission
// routes (hits served from device slot storage, per-batch transfer
// accounting) live behind cache.FeatureSource.
func GatherFeaturesInto(dst *tensor.Dense, g *graph.Graph, nodes []int32) *tensor.Dense {
	return cache.GatherRowsInto(dst, g, nodes)
}

// --- shared mean aggregation --------------------------------------------

// meanAggregate computes, for each dst, the mean of its sampled neighbor
// rows (plus optionally the dst row itself). It returns the aggregate and
// the per-dst divisor used (for backward), both drawn from ws. The loop
// is sharded over destination rows, which write disjoint output rows.
func meanAggregate(ws *tensor.Workspace, blk *sample.Block, h *tensor.Dense, includeSelf bool) (*tensor.Dense, []float64) {
	agg := ws.Get(blk.DstCount, h.Cols)
	div := ws.Get(1, blk.DstCount).Data
	tensor.ParallelRows(blk.DstCount, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := agg.Row(i)
			for j := range row {
				row[j] = 0
			}
			n := 0
			if includeSelf {
				src := h.Row(i) // dst i is src position i by the prefix invariant
				for j := range row {
					row[j] += src[j]
				}
				n++
			}
			for _, ix := range blk.Indices[blk.Offsets[i]:blk.Offsets[i+1]] {
				src := h.Row(int(ix))
				for j := range row {
					row[j] += src[j]
				}
				n++
			}
			if n > 0 {
				inv := 1 / float64(n)
				for j := range row {
					row[j] *= inv
				}
				div[i] = float64(n)
			} else {
				div[i] = 1
			}
		}
	})
	return agg, div
}

// meanAggregateBackward scatters dAgg back to source rows. Source rows
// are written by many destinations, so the parallel path shards over
// source-row ranges: every shard scans the full edge list and applies
// only the contributions landing in its range, preserving the serial
// accumulation order per row (bitwise-identical to the serial pass).
func meanAggregateBackward(ws *tensor.Workspace, blk *sample.Block, dAgg *tensor.Dense, div []float64, srcRows int, includeSelf bool) *tensor.Dense {
	dh := ws.Get(srcRows, dAgg.Cols)
	tensor.ParallelRows(srcRows, func(lo, hi int) {
		for r := lo; r < hi; r++ {
			row := dh.Row(r)
			for j := range row {
				row[j] = 0
			}
		}
		for i := 0; i < blk.DstCount; i++ {
			inv := 1 / div[i]
			drow := dAgg.Row(i)
			if includeSelf && i >= lo && i < hi {
				dst := dh.Row(i)
				for j := range dst {
					dst[j] += drow[j] * inv
				}
			}
			for _, ix := range blk.Indices[blk.Offsets[i]:blk.Offsets[i+1]] {
				if int(ix) < lo || int(ix) >= hi {
					continue
				}
				dst := dh.Row(int(ix))
				for j := range dst {
					dst[j] += drow[j] * inv
				}
			}
		}
	})
	return dh
}

// --- GCN ------------------------------------------------------------------

// gcnLayer computes Y = mean(self ∪ neighbors)·W + b, the sampled-subgraph
// analogue of Kipf–Welling propagation.
type gcnLayer struct {
	lin *nn.Linear
	ws  *tensor.Workspace

	blk     *sample.Block
	div     []float64
	srcRows int
}

func newGCNLayer(rng *rand.Rand, name string, in, out int) *gcnLayer {
	return &gcnLayer{lin: nn.NewLinear(rng, name, in, out)}
}

func (l *gcnLayer) setWorkspace(ws *tensor.Workspace) {
	l.ws = ws
	l.lin.WS = ws
}

func (l *gcnLayer) Forward(blk *sample.Block, h *tensor.Dense) *tensor.Dense {
	l.blk = blk
	l.srcRows = h.Rows
	agg, div := meanAggregate(l.ws, blk, h, true)
	l.div = div
	return l.lin.Forward(agg)
}

func (l *gcnLayer) Backward(dy *tensor.Dense) *tensor.Dense {
	dAgg := l.lin.Backward(dy)
	return meanAggregateBackward(l.ws, l.blk, dAgg, l.div, l.srcRows, true)
}

func (l *gcnLayer) Params() []*nn.Param { return l.lin.Params() }

func (l *gcnLayer) FLOPs(src, dst, edges int) float64 {
	in := l.lin.W.Value.Rows
	out := l.lin.W.Value.Cols
	return float64(edges+dst)*float64(in) + // aggregation adds
		2*float64(dst)*float64(in)*float64(out) // combine matmul
}

// --- GraphSAGE --------------------------------------------------------------

// sageLayer computes Y = H_dst·W_self + mean(neighbors)·W_nb + b
// (GraphSAGE-mean with separate self path).
type sageLayer struct {
	self *nn.Linear
	nb   *nn.Linear
	ws   *tensor.Workspace

	blk     *sample.Block
	div     []float64
	srcRows int
	hdrDst  tensor.Dense // reusable header aliasing the dst prefix of h
}

func newSAGELayer(rng *rand.Rand, name string, in, out int) *sageLayer {
	return &sageLayer{
		self: nn.NewLinear(rng, name+".self", in, out),
		nb:   nn.NewLinear(rng, name+".nb", in, out),
	}
}

func (l *sageLayer) setWorkspace(ws *tensor.Workspace) {
	l.ws = ws
	l.self.WS = ws
	l.nb.WS = ws
}

func (l *sageLayer) Forward(blk *sample.Block, h *tensor.Dense) *tensor.Dense {
	l.blk = blk
	l.srcRows = h.Rows
	// Self path: dst rows are the src prefix (aliased, not copied).
	l.hdrDst = tensor.Dense{Rows: blk.DstCount, Cols: h.Cols, Data: h.Data[:blk.DstCount*h.Cols]}
	ySelf := l.self.Forward(&l.hdrDst)
	agg, div := meanAggregate(l.ws, blk, h, false)
	l.div = div
	yNb := l.nb.Forward(agg)
	ySelf.AddInPlace(yNb)
	return ySelf
}

func (l *sageLayer) Backward(dy *tensor.Dense) *tensor.Dense {
	dAgg := l.nb.Backward(dy)
	dh := meanAggregateBackward(l.ws, l.blk, dAgg, l.div, l.srcRows, false)
	dDst := l.self.Backward(dy)
	// Scatter the self-path gradient into the dst prefix (disjoint rows).
	tensor.ParallelRows(l.blk.DstCount, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := dh.Row(i)
			srow := dDst.Row(i)
			for j := range row {
				row[j] += srow[j]
			}
		}
	})
	return dh
}

func (l *sageLayer) Params() []*nn.Param {
	return append(l.self.Params(), l.nb.Params()...)
}

func (l *sageLayer) FLOPs(src, dst, edges int) float64 {
	in := l.self.W.Value.Rows
	out := l.self.W.Value.Cols
	return float64(edges)*float64(in) + // neighbor aggregation
		4*float64(dst)*float64(in)*float64(out) // two matmuls
}
