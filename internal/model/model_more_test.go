package model

import (
	"math/rand"
	"testing"

	"gnnavigator/internal/dataset"
	"gnnavigator/internal/nn"
	"gnnavigator/internal/sample"
)

// TestThreeLayerModel exercises depth-3 block chains end to end.
func TestThreeLayerModel(t *testing.T) {
	d := dataset.MustLoad(dataset.OgbnArxiv)
	g := d.Graph
	s := &sample.NodeWise{Fanouts: []int{6, 4, 3}}
	rng := rand.New(rand.NewSource(4))
	mb := s.Sample(rng, g, d.TrainIdx[:64])
	if err := mb.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, kind := range []Kind{GCN, SAGE, GAT} {
		m, err := New(Config{
			Kind: kind, InDim: g.FeatDim, Hidden: 8, OutDim: g.NumClasses,
			Layers: 3, Heads: 2, Seed: 2,
		})
		if err != nil {
			t.Fatalf("New 3-layer %s: %v", kind, err)
		}
		feats := GatherFeatures(g, mb.InputNodes)
		logits, err := m.Forward(mb, feats, true)
		if err != nil {
			t.Fatalf("%s Forward: %v", kind, err)
		}
		if logits.Rows != len(mb.Targets) {
			t.Fatalf("%s logits rows %d != targets %d", kind, logits.Rows, len(mb.Targets))
		}
		labels := make([]int32, len(mb.Targets))
		for i, v := range mb.Targets {
			labels[i] = g.Labels[v]
		}
		loss, dl := nn.SoftmaxCrossEntropy(logits, labels)
		if loss <= 0 {
			t.Errorf("%s loss = %v", kind, loss)
		}
		m.Backward(dl)
		// Gradients must be nonzero somewhere in the FIRST layer, proving
		// the chain rule reached the input side through 3 hops.
		var nonzero bool
		for _, p := range m.Params()[:1] {
			for _, v := range p.Grad.Data {
				if v != 0 {
					nonzero = true
					break
				}
			}
		}
		if !nonzero {
			t.Errorf("%s: first-layer gradient all zero after backward", kind)
		}
	}
}

// TestSingleLayerModel: Layers=1 maps features straight to logits.
func TestSingleLayerModel(t *testing.T) {
	d := dataset.MustLoad(dataset.OgbnArxiv)
	g := d.Graph
	s := &sample.NodeWise{Fanouts: []int{5}}
	rng := rand.New(rand.NewSource(4))
	mb := s.Sample(rng, g, d.TrainIdx[:32])
	m, err := New(Config{Kind: GCN, InDim: g.FeatDim, Hidden: 1, OutDim: g.NumClasses, Layers: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	feats := GatherFeatures(g, mb.InputNodes)
	logits, err := m.Forward(mb, feats, false)
	if err != nil {
		t.Fatal(err)
	}
	if logits.Rows != len(mb.Targets) || logits.Cols != g.NumClasses {
		t.Fatalf("logits shape %dx%d", logits.Rows, logits.Cols)
	}
}

// TestGATHeadsChangeParamCount: more heads means more attention params.
func TestGATHeadsChangeParamCount(t *testing.T) {
	one, err := New(Config{Kind: GAT, InDim: 8, Hidden: 8, OutDim: 3, Layers: 2, Heads: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	four, err := New(Config{Kind: GAT, InDim: 8, Hidden: 8, OutDim: 3, Layers: 2, Heads: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	// Same total width, but 4 heads carry 4x the attention vectors.
	if four.NumParams() <= one.NumParams()-1 && four.NumParams() != one.NumParams() {
		t.Errorf("param counts: 1 head %d vs 4 heads %d", one.NumParams(), four.NumParams())
	}
	if len(four.Params()) <= len(one.Params()) {
		t.Errorf("4 heads should expose more parameter tensors: %d vs %d",
			len(four.Params()), len(one.Params()))
	}
}

// TestDeterministicForward: same seed, same config, same output.
func TestDeterministicForward(t *testing.T) {
	d := dataset.MustLoad(dataset.OgbnArxiv)
	g := d.Graph
	s := &sample.NodeWise{Fanouts: []int{5, 5}}
	mb := s.Sample(rand.New(rand.NewSource(8)), g, d.TrainIdx[:32])
	feats := GatherFeatures(g, mb.InputNodes)
	mk := func() float64 {
		m, err := New(Config{Kind: SAGE, InDim: g.FeatDim, Hidden: 8, OutDim: g.NumClasses, Layers: 2, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		logits, err := m.Forward(mb, feats, false)
		if err != nil {
			t.Fatal(err)
		}
		return logits.FrobeniusNorm()
	}
	if mk() != mk() {
		t.Error("same seed produced different forward outputs")
	}
}
