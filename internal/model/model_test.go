package model

import (
	"math"
	"math/rand"
	"testing"

	"gnnavigator/internal/dataset"
	"gnnavigator/internal/nn"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/tensor"
)

// tinyBatch builds a fixed two-layer mini-batch over 6 vertices:
// targets {0,1}; layer-1 block dst {0,1} src {0,1,2,3}; layer-0 block
// dst {0,1,2,3} src {0..5}.
func tinyBatch() *sample.MiniBatch {
	b0 := sample.Block{ // input-most
		SrcNodes: []int32{10, 11, 12, 13, 14, 15},
		DstCount: 4,
		Offsets:  []int32{0, 2, 3, 5, 6},
		Indices:  []int32{4, 5, 0, 1, 2, 3},
	}
	b1 := sample.Block{
		SrcNodes: []int32{10, 11, 12, 13},
		DstCount: 2,
		Offsets:  []int32{0, 2, 4},
		Indices:  []int32{2, 3, 0, 2},
	}
	return &sample.MiniBatch{
		Blocks:      []sample.Block{b0, b1},
		Targets:     []int32{10, 11},
		InputNodes:  b0.SrcNodes,
		NumVertices: 6,
		NumEdges:    b0.NumEdges() + b1.NumEdges(),
	}
}

func randFeats(rng *rand.Rand, rows, cols int) *tensor.Dense {
	m := tensor.New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

func buildModel(t *testing.T, kind Kind, heads int) *Model {
	t.Helper()
	m, err := New(Config{
		Kind: kind, InDim: 5, Hidden: 4, OutDim: 3, Layers: 2,
		Heads: heads, Seed: 99,
	})
	if err != nil {
		t.Fatalf("New(%s): %v", kind, err)
	}
	return m
}

func TestNewRejectsBadConfig(t *testing.T) {
	if _, err := New(Config{Kind: GCN, InDim: 4, Hidden: 4, OutDim: 2, Layers: 0}); err == nil {
		t.Error("Layers=0 accepted")
	}
	if _, err := New(Config{Kind: "mlp", InDim: 4, Hidden: 4, OutDim: 2, Layers: 2}); err == nil {
		t.Error("unknown kind accepted")
	}
	if _, err := New(Config{Kind: GAT, InDim: 4, Hidden: 5, OutDim: 2, Layers: 2, Heads: 2}); err == nil {
		t.Error("GAT hidden not divisible by heads accepted")
	}
}

func TestForwardShapes(t *testing.T) {
	mb := tinyBatch()
	rng := rand.New(rand.NewSource(1))
	for _, kind := range []Kind{GCN, SAGE, GAT} {
		m := buildModel(t, kind, 2)
		feats := randFeats(rng, 6, 5)
		logits, err := m.Forward(mb, feats, false)
		if err != nil {
			t.Fatalf("%s Forward: %v", kind, err)
		}
		if logits.Rows != 2 || logits.Cols != 3 {
			t.Errorf("%s logits shape %dx%d, want 2x3", kind, logits.Rows, logits.Cols)
		}
	}
}

func TestForwardRejectsMismatch(t *testing.T) {
	mb := tinyBatch()
	m := buildModel(t, GCN, 1)
	rng := rand.New(rand.NewSource(1))
	if _, err := m.Forward(mb, randFeats(rng, 3, 5), false); err == nil {
		t.Error("wrong feature rows accepted")
	}
	one := *mb
	one.Blocks = mb.Blocks[:1]
	if _, err := m.Forward(&one, randFeats(rng, 6, 5), false); err == nil {
		t.Error("wrong block count accepted")
	}
}

// TestGradCheckAllModels verifies analytic parameter gradients against
// central differences through the full model + softmax CE loss.
func TestGradCheckAllModels(t *testing.T) {
	mb := tinyBatch()
	labels := []int32{0, 2}
	rng := rand.New(rand.NewSource(7))
	feats := randFeats(rng, 6, 5)

	for _, kind := range []Kind{GCN, SAGE, GAT} {
		m := buildModel(t, kind, 2)
		loss := func() float64 {
			logits, err := m.Forward(mb, feats, false)
			if err != nil {
				t.Fatal(err)
			}
			l, _ := nn.SoftmaxCrossEntropy(logits, labels)
			return l
		}
		logits, err := m.Forward(mb, feats, false)
		if err != nil {
			t.Fatal(err)
		}
		_, dLogits := nn.SoftmaxCrossEntropy(logits, labels)
		for _, p := range m.Params() {
			p.ZeroGrad()
		}
		m.Backward(dLogits)

		for _, p := range m.Params() {
			stride := len(p.Value.Data)/3 + 1
			for i := 0; i < len(p.Value.Data); i += stride {
				const h = 1e-6
				orig := p.Value.Data[i]
				p.Value.Data[i] = orig + h
				up := loss()
				p.Value.Data[i] = orig - h
				down := loss()
				p.Value.Data[i] = orig
				want := (up - down) / (2 * h)
				got := p.Grad.Data[i]
				if math.Abs(got-want) > 1e-4*(1+math.Abs(want)) {
					t.Errorf("%s %s grad[%d] = %v, want %v", kind, p.Name, i, got, want)
				}
			}
		}
	}
}

// TestModelsLearn trains each architecture on a real synthetic dataset for
// a few steps and checks that training accuracy beats chance.
func TestModelsLearn(t *testing.T) {
	d := dataset.MustLoad(dataset.OgbnArxiv)
	g := d.Graph
	rng := rand.New(rand.NewSource(20))
	s := &sample.NodeWise{Fanouts: []int{8, 5}}

	for _, kind := range []Kind{GCN, SAGE, GAT} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			m, err := New(Config{
				Kind: kind, InDim: g.FeatDim, Hidden: 16, OutDim: g.NumClasses,
				Layers: 2, Heads: 2, Seed: 33,
			})
			if err != nil {
				t.Fatal(err)
			}
			opt := nn.NewAdam(0.01)
			var acc float64
			for step := 0; step < 30; step++ {
				batch := d.TrainIdx[:256]
				mb := s.Sample(rng, g, batch)
				feats := GatherFeatures(g, mb.InputNodes)
				logits, err := m.Forward(mb, feats, true)
				if err != nil {
					t.Fatal(err)
				}
				labels := make([]int32, len(mb.Targets))
				for i, v := range mb.Targets {
					labels[i] = g.Labels[v]
				}
				_, dLogits := nn.SoftmaxCrossEntropy(logits, labels)
				m.Backward(dLogits)
				opt.Step(m.Params())
				acc = nn.Accuracy(logits, labels)
			}
			chance := 1.0 / float64(g.NumClasses)
			if acc < 2*chance {
				t.Errorf("%s train accuracy %.3f below 2x chance %.3f", kind, acc, 2*chance)
			}
		})
	}
}

func TestNumParamsPositiveAndOrdered(t *testing.T) {
	small := buildModel(t, SAGE, 1)
	big, err := New(Config{Kind: SAGE, InDim: 5, Hidden: 64, OutDim: 3, Layers: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if small.NumParams() <= 0 {
		t.Error("NumParams <= 0")
	}
	if big.NumParams() <= small.NumParams() {
		t.Error("wider model should have more params")
	}
}

func TestFLOPsMonotonic(t *testing.T) {
	mb := tinyBatch()
	for _, kind := range []Kind{GCN, SAGE, GAT} {
		small := buildModel(t, kind, 2)
		bigCfg := small.Cfg()
		bigCfg.Hidden = 16
		big, err := New(bigCfg)
		if err != nil {
			t.Fatal(err)
		}
		if big.FLOPs(mb) <= small.FLOPs(mb) {
			t.Errorf("%s: FLOPs not monotonic in hidden dim", kind)
		}
	}
}

func TestGatherFeatures(t *testing.T) {
	d := dataset.MustLoad(dataset.OgbnArxiv)
	g := d.Graph
	nodes := []int32{3, 0, 7}
	feats := GatherFeatures(g, nodes)
	if feats.Rows != 3 || feats.Cols != g.FeatDim {
		t.Fatalf("shape %dx%d", feats.Rows, feats.Cols)
	}
	for i, v := range nodes {
		raw := g.Feature(v)
		for j := 0; j < g.FeatDim; j++ {
			if math.Abs(feats.At(i, j)-float64(raw[j])) > 1e-6 {
				t.Fatalf("row %d mismatch", i)
			}
		}
	}
}

// TestDropoutChangesTraining ensures train-mode forward differs from eval.
func TestDropoutTrainDiffers(t *testing.T) {
	mb := tinyBatch()
	m, err := New(Config{
		Kind: SAGE, InDim: 5, Hidden: 8, OutDim: 3, Layers: 2,
		Dropout: 0.5, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	feats := randFeats(rng, 6, 5)
	a, err := m.Forward(mb, feats, false)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Forward(mb, feats, true)
	if err != nil {
		t.Fatal(err)
	}
	var diff float64
	for i := range a.Data {
		diff += math.Abs(a.Data[i] - b.Data[i])
	}
	if diff < 1e-9 {
		t.Error("dropout train forward identical to eval forward")
	}
}
