package model

import (
	"math/rand"
	"testing"

	"gnnavigator/internal/dataset"
	"gnnavigator/internal/nn"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/tensor"
)

// Batch and model dims for the equivalence tests: large enough that the
// sharded loops actually dispatch to the worker pool (row loops need
// >= 16 rows, elementwise loops >= 8192 elements) instead of silently
// taking the inline serial path.
const (
	eqSrc0 = 1400 // layer-0 sources (input rows)
	eqDst0 = 600  // layer-0 destinations == layer-1 sources
	eqDst1 = 200  // layer-1 destinations (targets)
	eqIn   = 32
	eqHid  = 64
	eqOut  = 8
)

// bigBatch builds a random two-layer mini-batch big enough to cross
// every parallel dispatch threshold (see eq* consts).
func bigBatch(rng *rand.Rand) *sample.MiniBatch {
	nodes := make([]int32, eqSrc0)
	for i := range nodes {
		nodes[i] = int32(i)
	}
	mkBlock := func(src []int32, dstCount, maxFan int) sample.Block {
		offsets := make([]int32, dstCount+1)
		var indices []int32
		for i := 0; i < dstCount; i++ {
			offsets[i] = int32(len(indices))
			for f := rng.Intn(maxFan + 1); f > 0; f-- {
				indices = append(indices, int32(rng.Intn(len(src))))
			}
		}
		offsets[dstCount] = int32(len(indices))
		return sample.Block{SrcNodes: src, DstCount: dstCount, Offsets: offsets, Indices: indices}
	}
	b0 := mkBlock(nodes, eqDst0, 8)
	b1 := mkBlock(nodes[:eqDst0], eqDst1, 8)
	mb := &sample.MiniBatch{
		Blocks:      []sample.Block{b0, b1},
		Targets:     nodes[:eqDst1],
		InputNodes:  nodes,
		NumVertices: eqSrc0,
		NumEdges:    b0.NumEdges() + b1.NumEdges(),
	}
	return mb
}

// runOnce builds a fresh model, runs forward + backward on a large
// batch, and returns logits, input grads, and a parameter-grad snapshot.
func runOnce(t *testing.T, kind Kind, heads int, ws *tensor.Workspace) (*tensor.Dense, *tensor.Dense, []*tensor.Dense) {
	t.Helper()
	m, err := New(Config{
		Kind: kind, InDim: eqIn, Hidden: eqHid, OutDim: eqOut, Layers: 2,
		Heads: heads, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	m.SetWorkspace(ws)
	mb := bigBatch(rand.New(rand.NewSource(11)))
	if err := mb.Validate(); err != nil {
		t.Fatal(err)
	}
	feats := randFeats(rand.New(rand.NewSource(3)), eqSrc0, eqIn)
	logits, err := m.Forward(mb, feats, false)
	if err != nil {
		t.Fatal(err)
	}
	dLogits := randFeats(rand.New(rand.NewSource(4)), logits.Rows, logits.Cols)
	dIn := m.Backward(dLogits)
	var grads []*tensor.Dense
	for _, p := range m.Params() {
		grads = append(grads, p.Grad.Clone())
	}
	return logits.Clone(), dIn.Clone(), grads
}

// TestParallelModelBitwiseEqualSerial demands that a full forward +
// backward pass over every architecture is bit-identical between the
// serial path, the 4-worker path, and the workspace-backed path.
func TestParallelModelBitwiseEqualSerial(t *testing.T) {
	prev := tensor.Parallelism()
	t.Cleanup(func() { tensor.SetParallelism(prev) })
	for _, kind := range []Kind{GCN, SAGE, GAT} {
		tensor.SetParallelism(1)
		wantLogits, wantDIn, wantGrads := runOnce(t, kind, 2, nil)

		check := func(label string, logits, dIn *tensor.Dense, grads []*tensor.Dense) {
			t.Helper()
			for i, w := range wantLogits.Data {
				if logits.Data[i] != w {
					t.Fatalf("%s/%s: logits[%d] = %v, want %v (bitwise)", kind, label, i, logits.Data[i], w)
				}
			}
			for i, w := range wantDIn.Data {
				if dIn.Data[i] != w {
					t.Fatalf("%s/%s: dIn[%d] = %v, want %v (bitwise)", kind, label, i, dIn.Data[i], w)
				}
			}
			for p := range wantGrads {
				for i, w := range wantGrads[p].Data {
					if grads[p].Data[i] != w {
						t.Fatalf("%s/%s: grad[%d][%d] = %v, want %v (bitwise)", kind, label, p, i, grads[p].Data[i], w)
					}
				}
			}
		}

		tensor.SetParallelism(4)
		logits, dIn, grads := runOnce(t, kind, 2, nil)
		check("parallel", logits, dIn, grads)

		logits, dIn, grads = runOnce(t, kind, 2, tensor.NewWorkspace())
		check("parallel+ws", logits, dIn, grads)
	}
}

// TestWorkspaceIterationsStayClean runs several train-style iterations on
// one model with ReleaseAll between them (the backend's lifecycle) and
// checks the results match a workspace-free model fed the same inputs —
// i.e. recycled buffers never leak state across iterations.
func TestWorkspaceIterationsStayClean(t *testing.T) {
	for _, kind := range []Kind{GCN, SAGE, GAT} {
		ws := tensor.NewWorkspace()
		mWS := buildModel(t, kind, 2)
		mWS.SetWorkspace(ws)
		mRef := buildModel(t, kind, 2)
		optWS := nn.NewAdam(0.01)
		optRef := nn.NewAdam(0.01)
		for iter := 0; iter < 3; iter++ {
			rng := rand.New(rand.NewSource(int64(10 + iter)))
			feats := randFeats(rng, 6, 5)
			labels := []int32{int32(iter % 3), int32((iter + 1) % 3)}

			logitsWS, err := mWS.Forward(tinyBatch(), feats.Clone(), false)
			if err != nil {
				t.Fatal(err)
			}
			lossWS, dWS := nn.SoftmaxCrossEntropyWS(ws, logitsWS, labels)
			mWS.Backward(dWS)
			optWS.Step(mWS.Params())
			ws.ReleaseAll()

			logitsRef, err := mRef.Forward(tinyBatch(), feats.Clone(), false)
			if err != nil {
				t.Fatal(err)
			}
			lossRef, dRef := nn.SoftmaxCrossEntropy(logitsRef, labels)
			mRef.Backward(dRef)
			optRef.Step(mRef.Params())

			if lossWS != lossRef {
				t.Fatalf("%s iter %d: loss %v != %v", kind, iter, lossWS, lossRef)
			}
		}
		pWS, pRef := mWS.Params(), mRef.Params()
		for i := range pWS {
			for j, w := range pRef[i].Value.Data {
				if pWS[i].Value.Data[j] != w {
					t.Fatalf("%s: param %s[%d] = %v, want %v after 3 iters", kind, pWS[i].Name, j, pWS[i].Value.Data[j], w)
				}
			}
		}
	}
}

func TestGatherFeaturesIntoReusesBuffer(t *testing.T) {
	d := dataset.MustLoad(dataset.OgbnArxiv)
	g := d.Graph
	nodes := d.TrainIdx[:64]
	a := GatherFeaturesInto(nil, g, nodes)
	ref := GatherFeatures(g, nodes)
	for i, w := range ref.Data {
		if a.Data[i] != w {
			t.Fatalf("GatherFeaturesInto[%d] = %v, want %v", i, a.Data[i], w)
		}
	}
	// Smaller regather must reuse the same backing array.
	b := GatherFeaturesInto(a, g, nodes[:16])
	if &b.Data[0] != &a.Data[0] {
		t.Error("GatherFeaturesInto did not reuse storage for a smaller batch")
	}
	if b.Rows != 16 {
		t.Fatalf("rows = %d, want 16", b.Rows)
	}
}
