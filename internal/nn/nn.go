// Package nn provides the neural-network building blocks for the pure-Go
// GNN trainer: parameterized linear layers, activations with exact
// backward passes, dropout, the softmax cross-entropy loss, and the SGD
// and Adam optimizers.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"gnnavigator/internal/tensor"
)

// Param is a trainable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Dense
	Grad  *tensor.Dense
}

// NewParam allocates a named parameter of the given shape with a zero
// gradient buffer.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(rows, cols),
		Grad:  tensor.New(rows, cols),
	}
}

// Size returns the number of scalar parameters.
func (p *Param) Size() int { return len(p.Value.Data) }

// ZeroGrad clears the gradient buffer.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Linear is a fully connected layer Y = X·W + b.
type Linear struct {
	W, B *Param
	// x caches the forward input for the backward pass.
	x *tensor.Dense
}

// NewLinear constructs a Glorot-initialized linear layer.
func NewLinear(rng *rand.Rand, name string, in, out int) *Linear {
	l := &Linear{
		W: NewParam(name+".W", in, out),
		B: NewParam(name+".b", 1, out),
	}
	l.W.Value.GlorotInit(rng, in, out)
	return l
}

// Forward computes X·W + b and caches X.
func (l *Linear) Forward(x *tensor.Dense) *tensor.Dense {
	l.x = x
	y := tensor.MatMul(x, l.W.Value)
	y.AddBias(l.B.Value.Data)
	return y
}

// Backward accumulates dW and db and returns dX.
func (l *Linear) Backward(dy *tensor.Dense) *tensor.Dense {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	dw := tensor.MatMulT1(l.x, dy)
	l.W.Grad.AddInPlace(dw)
	for j, s := range dy.ColSums() {
		l.B.Grad.Data[j] += s
	}
	return tensor.MatMulT2(dy, l.W.Value)
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Activation is an elementwise nonlinearity with an exact derivative.
type Activation interface {
	// Forward applies the nonlinearity, returning a new matrix and caching
	// what the backward pass needs.
	Forward(x *tensor.Dense) *tensor.Dense
	// Backward maps upstream gradients through the nonlinearity.
	Backward(dy *tensor.Dense) *tensor.Dense
	Name() string
}

// ReLU is max(0, x).
type ReLU struct{ mask []bool }

// Name implements Activation.
func (r *ReLU) Name() string { return "relu" }

// Forward implements Activation.
func (r *ReLU) Forward(x *tensor.Dense) *tensor.Dense {
	out := x.Clone()
	r.mask = make([]bool, len(x.Data))
	for i, v := range x.Data {
		if v > 0 {
			r.mask[i] = true
		} else {
			out.Data[i] = 0
		}
	}
	return out
}

// Backward implements Activation.
func (r *ReLU) Backward(dy *tensor.Dense) *tensor.Dense {
	out := dy.Clone()
	for i := range out.Data {
		if !r.mask[i] {
			out.Data[i] = 0
		}
	}
	return out
}

// ELU is x for x>0, alpha*(e^x - 1) otherwise.
type ELU struct {
	Alpha float64
	x     *tensor.Dense
}

// Name implements Activation.
func (e *ELU) Name() string { return "elu" }

// Forward implements Activation.
func (e *ELU) Forward(x *tensor.Dense) *tensor.Dense {
	if e.Alpha == 0 {
		e.Alpha = 1
	}
	e.x = x.Clone()
	out := x.Clone()
	for i, v := range out.Data {
		if v <= 0 {
			out.Data[i] = e.Alpha * (math.Exp(v) - 1)
		}
	}
	return out
}

// Backward implements Activation.
func (e *ELU) Backward(dy *tensor.Dense) *tensor.Dense {
	out := dy.Clone()
	for i, v := range e.x.Data {
		if v <= 0 {
			out.Data[i] *= e.Alpha * math.Exp(v)
		}
	}
	return out
}

// LeakyReLU is x for x>0, slope*x otherwise (used by GAT attention).
type LeakyReLU struct {
	Slope float64
	x     *tensor.Dense
}

// Name implements Activation.
func (l *LeakyReLU) Name() string { return "leaky_relu" }

// Forward implements Activation.
func (l *LeakyReLU) Forward(x *tensor.Dense) *tensor.Dense {
	if l.Slope == 0 {
		l.Slope = 0.2
	}
	l.x = x.Clone()
	out := x.Clone()
	for i, v := range out.Data {
		if v < 0 {
			out.Data[i] = l.Slope * v
		}
	}
	return out
}

// Backward implements Activation.
func (l *LeakyReLU) Backward(dy *tensor.Dense) *tensor.Dense {
	out := dy.Clone()
	for i, v := range l.x.Data {
		if v < 0 {
			out.Data[i] *= l.Slope
		}
	}
	return out
}

// Dropout zeroes activations with probability P during training and
// rescales survivors by 1/(1-P) (inverted dropout).
type Dropout struct {
	P    float64
	Rng  *rand.Rand
	mask []float64
}

// Forward applies dropout when train is true; identity otherwise.
func (d *Dropout) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	if !train || d.P <= 0 {
		d.mask = nil
		return x
	}
	keep := 1 - d.P
	out := x.Clone()
	d.mask = make([]float64, len(x.Data))
	for i := range out.Data {
		if d.Rng.Float64() < keep {
			d.mask[i] = 1 / keep
			out.Data[i] *= d.mask[i]
		} else {
			d.mask[i] = 0
			out.Data[i] = 0
		}
	}
	return out
}

// Backward maps gradients through the dropout mask.
func (d *Dropout) Backward(dy *tensor.Dense) *tensor.Dense {
	if d.mask == nil {
		return dy
	}
	out := dy.Clone()
	for i := range out.Data {
		out.Data[i] *= d.mask[i]
	}
	return out
}

// SoftmaxCrossEntropy computes mean cross-entropy loss over rows of logits
// against integer labels, returning the loss and dLogits (already averaged
// over the batch).
func SoftmaxCrossEntropy(logits *tensor.Dense, labels []int32) (float64, *tensor.Dense) {
	if logits.Rows != len(labels) {
		panic(fmt.Sprintf("nn: logits rows %d != labels %d", logits.Rows, len(labels)))
	}
	probs := logits.Clone()
	probs.SoftmaxRows()
	n := float64(logits.Rows)
	var loss float64
	grad := probs.Clone()
	for i, y := range labels {
		p := probs.At(i, int(y))
		loss -= math.Log(math.Max(p, 1e-12))
		grad.Set(i, int(y), grad.At(i, int(y))-1)
	}
	grad.ScaleInPlace(1 / n)
	return loss / n, grad
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Dense, labels []int32) float64 {
	if logits.Rows == 0 {
		return 0
	}
	pred := logits.ArgmaxRows()
	var correct int
	for i, y := range labels {
		if pred[i] == int(y) {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// Optimizer updates parameters from accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		for i := range p.Value.Data {
			g := p.Grad.Data[i] + o.WeightDecay*p.Value.Data[i]
			p.Value.Data[i] -= o.LR * g
		}
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns Adam with the conventional defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	if o.m == nil {
		o.m = make(map[*Param][]float64)
		o.v = make(map[*Param][]float64)
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float64, len(p.Value.Data))
			o.m[p] = m
			o.v[p] = make([]float64, len(p.Value.Data))
		}
		v := o.v[p]
		for i := range p.Value.Data {
			g := p.Grad.Data[i] + o.WeightDecay*p.Value.Data[i]
			m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
			v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
			mhat := m[i] / bc1
			vhat := v[i] / bc2
			p.Value.Data[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
		}
		p.ZeroGrad()
	}
}

// CountParams returns the total number of scalars across params.
func CountParams(params []*Param) int {
	var n int
	for _, p := range params {
		n += p.Size()
	}
	return n
}
