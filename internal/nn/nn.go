// Package nn provides the neural-network building blocks for the pure-Go
// GNN trainer: parameterized linear layers, activations with exact
// backward passes, dropout, the softmax cross-entropy loss, and the SGD
// and Adam optimizers.
//
// Every layer optionally carries a *tensor.Workspace (the WS field, nil
// by default). With a workspace attached, forward/backward passes draw
// their outputs and scratch from the arena instead of allocating, so a
// steady-state training iteration is allocation-free; the owner of the
// training loop calls ws.ReleaseAll() once per iteration. With WS nil
// every layer behaves exactly as before (fresh allocations), which keeps
// standalone use and old call sites working unchanged.
package nn

import (
	"fmt"
	"math"
	"math/rand"

	"gnnavigator/internal/tensor"
)

// Param is a trainable tensor with its gradient accumulator.
type Param struct {
	Name  string
	Value *tensor.Dense
	Grad  *tensor.Dense
}

// NewParam allocates a named parameter of the given shape with a zero
// gradient buffer.
func NewParam(name string, rows, cols int) *Param {
	return &Param{
		Name:  name,
		Value: tensor.New(rows, cols),
		Grad:  tensor.New(rows, cols),
	}
}

// Size returns the number of scalar parameters.
func (p *Param) Size() int { return len(p.Value.Data) }

// ZeroGrad clears the gradient buffer.
func (p *Param) ZeroGrad() { p.Grad.Zero() }

// Linear is a fully connected layer Y = X·W + b.
type Linear struct {
	W, B *Param
	// WS, when non-nil, supplies output and scratch buffers.
	WS *tensor.Workspace
	// SparseInput selects the zero-skip matmuls (forward X·W and the
	// backward dW = Xᵀ·dY, both of which stream X).
	// Set it only when the layer's input provably carries exact zeros —
	// a post-ReLU/dropout activation fed directly (e.g. GraphSAGE's
	// self path on hidden layers). Means of several sparse rows are
	// dense (all contributors must be zero at a coordinate), so
	// aggregate-fed layers keep the default branch-free kernel.
	SparseInput bool
	// x caches the forward input for the backward pass.
	x *tensor.Dense
	// colSum is reusable scratch for the bias gradient.
	colSum []float64
}

// NewLinear constructs a Glorot-initialized linear layer.
func NewLinear(rng *rand.Rand, name string, in, out int) *Linear {
	l := &Linear{
		W: NewParam(name+".W", in, out),
		B: NewParam(name+".b", 1, out),
	}
	l.W.Value.GlorotInit(rng, in, out)
	return l
}

// Forward computes X·W + b and caches X.
func (l *Linear) Forward(x *tensor.Dense) *tensor.Dense {
	l.x = x
	y := l.WS.Get(x.Rows, l.W.Value.Cols)
	if l.SparseInput {
		tensor.MatMulSparseInto(y, x, l.W.Value)
	} else {
		tensor.MatMulInto(y, x, l.W.Value)
	}
	y.AddBias(l.B.Value.Data)
	return y
}

// Backward accumulates dW and db and returns dX.
func (l *Linear) Backward(dy *tensor.Dense) *tensor.Dense {
	if l.x == nil {
		panic("nn: Linear.Backward before Forward")
	}
	dw := l.WS.Get(l.W.Value.Rows, l.W.Value.Cols)
	if l.SparseInput {
		tensor.MatMulT1SparseInto(dw, l.x, dy)
	} else {
		tensor.MatMulT1Into(dw, l.x, dy)
	}
	l.W.Grad.AddInPlace(dw)
	l.WS.Put(dw)
	l.colSum = tensor.Grow(l.colSum, dy.Cols)
	cs := l.colSum
	dy.ColSumsInto(cs)
	for j, s := range cs {
		l.B.Grad.Data[j] += s
	}
	dx := l.WS.Get(dy.Rows, l.W.Value.Rows)
	tensor.MatMulT2Into(dx, dy, l.W.Value)
	return dx
}

// Params returns the layer's trainable parameters.
func (l *Linear) Params() []*Param { return []*Param{l.W, l.B} }

// Activation is an elementwise nonlinearity with an exact derivative.
type Activation interface {
	// Forward applies the nonlinearity, returning a new matrix and caching
	// what the backward pass needs.
	Forward(x *tensor.Dense) *tensor.Dense
	// Backward maps upstream gradients through the nonlinearity.
	Backward(dy *tensor.Dense) *tensor.Dense
	// SetWorkspace attaches (or detaches, with nil) the buffer arena.
	// Part of the interface so new activations cannot silently miss the
	// zero-alloc wiring.
	SetWorkspace(ws *tensor.Workspace)
	Name() string
}

// ReLU is max(0, x).
type ReLU struct {
	WS   *tensor.Workspace
	mask []bool
}

// Name implements Activation.
func (r *ReLU) Name() string { return "relu" }

// SetWorkspace implements Activation.
func (r *ReLU) SetWorkspace(ws *tensor.Workspace) { r.WS = ws }

// Forward implements Activation.
func (r *ReLU) Forward(x *tensor.Dense) *tensor.Dense {
	out := r.WS.Get(x.Rows, x.Cols)
	r.mask = tensor.Grow(r.mask, len(x.Data))
	mask := r.mask
	tensor.ParallelRange(len(x.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := x.Data[i]
			if v > 0 {
				mask[i] = true
				out.Data[i] = v
			} else {
				mask[i] = false
				out.Data[i] = 0
			}
		}
	})
	return out
}

// Backward implements Activation.
func (r *ReLU) Backward(dy *tensor.Dense) *tensor.Dense {
	out := r.WS.Get(dy.Rows, dy.Cols)
	mask := r.mask
	tensor.ParallelRange(len(dy.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			if mask[i] {
				out.Data[i] = dy.Data[i]
			} else {
				out.Data[i] = 0
			}
		}
	})
	return out
}

// ELU is x for x>0, alpha*(e^x - 1) otherwise.
type ELU struct {
	Alpha float64
	WS    *tensor.Workspace
	// With a workspace attached, x aliases the forward input, which
	// stays valid through backward because workspace buffers are only
	// recycled at iteration end. Without one, x is a private clone so
	// standalone callers may mutate their input between passes (the
	// seed behavior).
	x *tensor.Dense
}

// Name implements Activation.
func (e *ELU) Name() string { return "elu" }

// SetWorkspace implements Activation.
func (e *ELU) SetWorkspace(ws *tensor.Workspace) { e.WS = ws }

// Forward implements Activation.
func (e *ELU) Forward(x *tensor.Dense) *tensor.Dense {
	if e.Alpha == 0 {
		e.Alpha = 1
	}
	if e.WS == nil {
		e.x = x.Clone()
	} else {
		e.x = x
	}
	out := e.WS.Get(x.Rows, x.Cols)
	alpha := e.Alpha
	tensor.ParallelRange(len(x.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := x.Data[i]
			if v <= 0 {
				v = alpha * (math.Exp(v) - 1)
			}
			out.Data[i] = v
		}
	})
	return out
}

// Backward implements Activation.
func (e *ELU) Backward(dy *tensor.Dense) *tensor.Dense {
	out := e.WS.Get(dy.Rows, dy.Cols)
	alpha := e.Alpha
	x := e.x
	tensor.ParallelRange(len(dy.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g := dy.Data[i]
			if v := x.Data[i]; v <= 0 {
				g *= alpha * math.Exp(v)
			}
			out.Data[i] = g
		}
	})
	return out
}

// LeakyReLU is x for x>0, slope*x otherwise (used by GAT attention).
type LeakyReLU struct {
	Slope float64
	WS    *tensor.Workspace
	x     *tensor.Dense
}

// Name implements Activation.
func (l *LeakyReLU) Name() string { return "leaky_relu" }

// SetWorkspace implements Activation.
func (l *LeakyReLU) SetWorkspace(ws *tensor.Workspace) { l.WS = ws }

// Forward implements Activation.
func (l *LeakyReLU) Forward(x *tensor.Dense) *tensor.Dense {
	if l.Slope == 0 {
		l.Slope = 0.2
	}
	if l.WS == nil {
		l.x = x.Clone() // see ELU.x: preserve seed aliasing semantics
	} else {
		l.x = x
	}
	out := l.WS.Get(x.Rows, x.Cols)
	slope := l.Slope
	tensor.ParallelRange(len(x.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			v := x.Data[i]
			if v < 0 {
				v = slope * v
			}
			out.Data[i] = v
		}
	})
	return out
}

// Backward implements Activation.
func (l *LeakyReLU) Backward(dy *tensor.Dense) *tensor.Dense {
	out := l.WS.Get(dy.Rows, dy.Cols)
	slope := l.Slope
	x := l.x
	tensor.ParallelRange(len(dy.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			g := dy.Data[i]
			if x.Data[i] < 0 {
				g *= slope
			}
			out.Data[i] = g
		}
	})
	return out
}

// Dropout zeroes activations with probability P during training and
// rescales survivors by 1/(1-P) (inverted dropout).
type Dropout struct {
	P    float64
	Rng  *rand.Rand
	WS   *tensor.Workspace
	mask []float64
	on   bool
}

// Forward applies dropout when train is true; identity otherwise. The
// mask draw stays serial so the rng sequence is independent of the
// parallelism setting.
func (d *Dropout) Forward(x *tensor.Dense, train bool) *tensor.Dense {
	if !train || d.P <= 0 {
		d.on = false
		return x
	}
	keep := 1 - d.P
	out := d.WS.Get(x.Rows, x.Cols)
	d.mask = tensor.Grow(d.mask, len(x.Data))
	d.on = true
	for i, v := range x.Data {
		if d.Rng.Float64() < keep {
			d.mask[i] = 1 / keep
			out.Data[i] = v * d.mask[i]
		} else {
			d.mask[i] = 0
			out.Data[i] = 0
		}
	}
	return out
}

// Backward maps gradients through the dropout mask.
func (d *Dropout) Backward(dy *tensor.Dense) *tensor.Dense {
	if !d.on {
		return dy
	}
	out := d.WS.Get(dy.Rows, dy.Cols)
	mask := d.mask
	tensor.ParallelRange(len(dy.Data), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out.Data[i] = dy.Data[i] * mask[i]
		}
	})
	return out
}

// SoftmaxCrossEntropy computes mean cross-entropy loss over rows of logits
// against integer labels, returning the loss and dLogits (already averaged
// over the batch).
func SoftmaxCrossEntropy(logits *tensor.Dense, labels []int32) (float64, *tensor.Dense) {
	return SoftmaxCrossEntropyWS(nil, logits, labels)
}

// SoftmaxCrossEntropyWS is SoftmaxCrossEntropy drawing the gradient
// buffer from ws (nil ws allocates). The returned gradient doubles as the
// probability scratch, so the whole loss costs one workspace buffer.
func SoftmaxCrossEntropyWS(ws *tensor.Workspace, logits *tensor.Dense, labels []int32) (float64, *tensor.Dense) {
	if logits.Rows != len(labels) {
		panic(fmt.Sprintf("nn: logits rows %d != labels %d", logits.Rows, len(labels)))
	}
	grad := ws.Get(logits.Rows, logits.Cols)
	logits.CopyInto(grad)
	grad.SoftmaxRows()
	n := float64(logits.Rows)
	var loss float64
	for i, y := range labels {
		p := grad.At(i, int(y))
		loss -= math.Log(math.Max(p, 1e-12))
		grad.Set(i, int(y), p-1)
	}
	grad.ScaleInPlace(1 / n)
	return loss / n, grad
}

// Accuracy returns the fraction of rows whose argmax equals the label.
func Accuracy(logits *tensor.Dense, labels []int32) float64 {
	if logits.Rows == 0 {
		return 0
	}
	pred := logits.ArgmaxRows()
	var correct int
	for i, y := range labels {
		if pred[i] == int(y) {
			correct++
		}
	}
	return float64(correct) / float64(len(labels))
}

// Optimizer updates parameters from accumulated gradients.
type Optimizer interface {
	Step(params []*Param)
}

// SGD is plain stochastic gradient descent with optional weight decay.
type SGD struct {
	LR          float64
	WeightDecay float64
}

// Step implements Optimizer.
func (o *SGD) Step(params []*Param) {
	for _, p := range params {
		val, grad := p.Value.Data, p.Grad.Data
		tensor.ParallelRange(len(val), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				g := grad[i] + o.WeightDecay*val[i]
				val[i] -= o.LR * g
			}
		})
		p.ZeroGrad()
	}
}

// Adam implements the Adam optimizer with bias correction.
type Adam struct {
	LR, Beta1, Beta2, Eps float64
	WeightDecay           float64

	t int
	m map[*Param][]float64
	v map[*Param][]float64
}

// NewAdam returns Adam with the conventional defaults.
func NewAdam(lr float64) *Adam {
	return &Adam{LR: lr, Beta1: 0.9, Beta2: 0.999, Eps: 1e-8}
}

// Step implements Optimizer.
func (o *Adam) Step(params []*Param) {
	if o.m == nil {
		o.m = make(map[*Param][]float64)
		o.v = make(map[*Param][]float64)
	}
	o.t++
	bc1 := 1 - math.Pow(o.Beta1, float64(o.t))
	bc2 := 1 - math.Pow(o.Beta2, float64(o.t))
	for _, p := range params {
		m, ok := o.m[p]
		if !ok {
			m = make([]float64, len(p.Value.Data))
			o.m[p] = m
			o.v[p] = make([]float64, len(p.Value.Data))
		}
		v := o.v[p]
		val, grad := p.Value.Data, p.Grad.Data
		tensor.ParallelRange(len(val), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				g := grad[i] + o.WeightDecay*val[i]
				m[i] = o.Beta1*m[i] + (1-o.Beta1)*g
				v[i] = o.Beta2*v[i] + (1-o.Beta2)*g*g
				mhat := m[i] / bc1
				vhat := v[i] / bc2
				val[i] -= o.LR * mhat / (math.Sqrt(vhat) + o.Eps)
			}
		})
		p.ZeroGrad()
	}
}

// AdamState is the optimizer's full mutable state in a serializable
// form: the step count plus first/second moment vectors aligned with a
// caller-supplied parameter order. It exists for checkpointing — a
// restored (params, AdamState) pair continues the update sequence
// bitwise-identically to a never-interrupted run.
type AdamState struct {
	T int
	// M and V hold the moment vectors per parameter, in the same order as
	// the params slice given to State/SetState. A nil entry means the
	// moments for that parameter were never touched (T == 0).
	M, V [][]float64
}

// State snapshots the optimizer state for params (copies, in the given
// order).
func (o *Adam) State(params []*Param) AdamState {
	st := AdamState{T: o.t, M: make([][]float64, len(params)), V: make([][]float64, len(params))}
	for i, p := range params {
		if m, ok := o.m[p]; ok {
			st.M[i] = append([]float64(nil), m...)
			st.V[i] = append([]float64(nil), o.v[p]...)
		}
	}
	return st
}

// SetState restores a snapshot taken by State over the same parameter
// order. Moment lengths must match the parameter sizes.
func (o *Adam) SetState(params []*Param, st AdamState) error {
	if len(st.M) != len(params) || len(st.V) != len(params) {
		return fmt.Errorf("nn: adam state holds %d/%d moment vectors for %d params", len(st.M), len(st.V), len(params))
	}
	o.t = st.T
	o.m = make(map[*Param][]float64, len(params))
	o.v = make(map[*Param][]float64, len(params))
	for i, p := range params {
		if st.M[i] == nil {
			continue
		}
		if len(st.M[i]) != p.Size() || len(st.V[i]) != p.Size() {
			return fmt.Errorf("nn: adam moments for param %q hold %d/%d scalars, want %d", p.Name, len(st.M[i]), len(st.V[i]), p.Size())
		}
		o.m[p] = append([]float64(nil), st.M[i]...)
		o.v[p] = append([]float64(nil), st.V[i]...)
	}
	return nil
}

// CountParams returns the total number of scalars across params.
func CountParams(params []*Param) int {
	var n int
	for _, p := range params {
		n += p.Size()
	}
	return n
}
