package nn

import (
	"math"
	"math/rand"
	"testing"

	"gnnavigator/internal/tensor"
)

// numericalGrad estimates dLoss/dx[i] by central differences.
func numericalGrad(f func() float64, x *tensor.Dense, i int) float64 {
	const h = 1e-6
	orig := x.Data[i]
	x.Data[i] = orig + h
	up := f()
	x.Data[i] = orig - h
	down := f()
	x.Data[i] = orig
	return (up - down) / (2 * h)
}

func TestLinearForwardKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	l := NewLinear(rng, "l", 2, 2)
	l.W.Value = tensor.FromSlice(2, 2, []float64{1, 2, 3, 4})
	l.B.Value = tensor.FromSlice(1, 2, []float64{0.5, -0.5})
	x := tensor.FromSlice(1, 2, []float64{1, 1})
	y := l.Forward(x)
	if math.Abs(y.At(0, 0)-4.5) > 1e-12 || math.Abs(y.At(0, 1)-5.5) > 1e-12 {
		t.Errorf("Forward = %v, want [4.5 5.5]", y.Data)
	}
}

func TestLinearGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	l := NewLinear(rng, "l", 3, 2)
	x := tensor.New(4, 3)
	for i := range x.Data {
		x.Data[i] = rng.NormFloat64()
	}
	labels := []int32{0, 1, 0, 1}
	loss := func() float64 {
		y := l.Forward(x)
		lo, _ := SoftmaxCrossEntropy(y, labels)
		return lo
	}
	// Analytic grads.
	y := l.Forward(x)
	_, dy := SoftmaxCrossEntropy(y, labels)
	dx := l.Backward(dy)

	for _, check := range []struct {
		name string
		m    *tensor.Dense
		grad *tensor.Dense
	}{
		{"W", l.W.Value, l.W.Grad},
		{"B", l.B.Value, l.B.Grad},
		{"x", x, dx},
	} {
		for i := 0; i < len(check.m.Data); i += 2 {
			want := numericalGrad(loss, check.m, i)
			got := check.grad.Data[i]
			if math.Abs(got-want) > 1e-5 {
				t.Errorf("%s grad[%d] = %v, want %v", check.name, i, got, want)
			}
		}
	}
}

func TestActivationsGradCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, act := range []Activation{&ReLU{}, &ELU{Alpha: 1}, &LeakyReLU{Slope: 0.2}} {
		x := tensor.New(2, 5)
		for i := range x.Data {
			x.Data[i] = rng.NormFloat64()
			// Keep away from the ReLU kink where the numerical gradient
			// is ill-defined.
			if math.Abs(x.Data[i]) < 0.05 {
				x.Data[i] = 0.1
			}
		}
		// loss = sum(act(x))
		loss := func() float64 {
			y := act.Forward(x)
			var s float64
			for _, v := range y.Data {
				s += v
			}
			return s
		}
		_ = act.Forward(x)
		ones := tensor.New(2, 5)
		for i := range ones.Data {
			ones.Data[i] = 1
		}
		dx := act.Backward(ones)
		for i := range x.Data {
			want := numericalGrad(loss, x, i)
			if math.Abs(dx.Data[i]-want) > 1e-4 {
				t.Errorf("%s grad[%d] = %v, want %v", act.Name(), i, dx.Data[i], want)
			}
		}
	}
}

func TestSoftmaxCrossEntropyKnown(t *testing.T) {
	// Uniform logits over 4 classes: loss = ln(4).
	logits := tensor.New(2, 4)
	loss, grad := SoftmaxCrossEntropy(logits, []int32{0, 3})
	if math.Abs(loss-math.Log(4)) > 1e-12 {
		t.Errorf("loss = %v, want ln4 = %v", loss, math.Log(4))
	}
	// Gradient at true class: (p - 1)/n = (0.25-1)/2.
	if math.Abs(grad.At(0, 0)-(-0.375)) > 1e-12 {
		t.Errorf("grad(0,0) = %v, want -0.375", grad.At(0, 0))
	}
	if math.Abs(grad.At(0, 1)-0.125) > 1e-12 {
		t.Errorf("grad(0,1) = %v, want 0.125", grad.At(0, 1))
	}
}

func TestAccuracy(t *testing.T) {
	logits := tensor.FromSlice(3, 2, []float64{2, 1, 0, 5, 1, 0})
	acc := Accuracy(logits, []int32{0, 1, 1})
	if math.Abs(acc-2.0/3) > 1e-12 {
		t.Errorf("Accuracy = %v, want 2/3", acc)
	}
	if Accuracy(tensor.New(0, 2), nil) != 0 {
		t.Error("empty accuracy should be 0")
	}
}

func TestDropoutTrainEval(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	d := &Dropout{P: 0.5, Rng: rng}
	x := tensor.New(10, 10)
	for i := range x.Data {
		x.Data[i] = 1
	}
	// Eval mode: identity.
	y := d.Forward(x, false)
	for i := range y.Data {
		if y.Data[i] != 1 {
			t.Fatal("eval-mode dropout modified input")
		}
	}
	// Train mode: some zeros, survivors scaled by 2.
	y = d.Forward(x, true)
	var zeros, twos int
	for _, v := range y.Data {
		switch v {
		case 0:
			zeros++
		case 2:
			twos++
		default:
			t.Fatalf("unexpected dropout output %v", v)
		}
	}
	if zeros == 0 || twos == 0 {
		t.Errorf("dropout degenerate: zeros=%d twos=%d", zeros, twos)
	}
	// Backward respects the same mask.
	dy := tensor.New(10, 10)
	for i := range dy.Data {
		dy.Data[i] = 1
	}
	dx := d.Backward(dy)
	for i := range dx.Data {
		if (y.Data[i] == 0) != (dx.Data[i] == 0) {
			t.Fatal("dropout backward mask mismatch")
		}
	}
}

// TestSGDReducesLoss: a few SGD steps on a linear softmax problem must
// reduce the loss.
func TestSGDReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	l := NewLinear(rng, "l", 4, 3)
	x := tensor.New(30, 4)
	labels := make([]int32, 30)
	for i := 0; i < 30; i++ {
		labels[i] = int32(i % 3)
		for j := 0; j < 4; j++ {
			x.Set(i, j, rng.NormFloat64()+float64(labels[i]))
		}
	}
	opt := &SGD{LR: 0.1}
	var first, last float64
	for step := 0; step < 50; step++ {
		y := l.Forward(x)
		loss, dy := SoftmaxCrossEntropy(y, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		l.Backward(dy)
		opt.Step(l.Params())
	}
	if last >= first {
		t.Errorf("SGD did not reduce loss: first=%v last=%v", first, last)
	}
}

// TestAdamBeatsNothing: Adam must reach a lower loss than the initial one
// and converge faster than a tiny-LR SGD on the same problem.
func TestAdamConverges(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	l := NewLinear(rng, "l", 4, 2)
	x := tensor.New(40, 4)
	labels := make([]int32, 40)
	for i := range labels {
		labels[i] = int32(i % 2)
		for j := 0; j < 4; j++ {
			x.Set(i, j, rng.NormFloat64()+2*float64(labels[i]))
		}
	}
	opt := NewAdam(0.05)
	var first, last float64
	for step := 0; step < 60; step++ {
		y := l.Forward(x)
		loss, dy := SoftmaxCrossEntropy(y, labels)
		if step == 0 {
			first = loss
		}
		last = loss
		l.Backward(dy)
		opt.Step(l.Params())
	}
	if last > first*0.5 {
		t.Errorf("Adam converged poorly: first=%v last=%v", first, last)
	}
}

func TestCountParams(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	l := NewLinear(rng, "l", 8, 16)
	if got := CountParams(l.Params()); got != 8*16+16 {
		t.Errorf("CountParams = %d, want %d", got, 8*16+16)
	}
}

func TestAdamWeightDecayShrinksWeights(t *testing.T) {
	p := NewParam("w", 2, 2)
	for i := range p.Value.Data {
		p.Value.Data[i] = 10
	}
	opt := NewAdam(0.1)
	opt.WeightDecay = 1.0
	for step := 0; step < 20; step++ {
		opt.Step([]*Param{p}) // zero gradient, decay only
	}
	for _, v := range p.Value.Data {
		if v >= 10 {
			t.Errorf("weight decay did not shrink weight: %v", v)
		}
	}
}
