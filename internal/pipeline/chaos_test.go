package pipeline

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"gnnavigator/internal/faultinject"
)

// waitForGoroutines polls until the goroutine count returns to (near) the
// baseline. Tensor-pool workers are resident by design, so callers must
// capture the baseline after warming the pool; only growth beyond the
// pre-call count is a pipeline leak.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after", baseline, runtime.NumGoroutine())
}

// TestChaosConsumerErrorNoGoroutineLeak: a consumer error mid-epoch must
// shut every stage goroutine down (sampler and gather for the split
// topology, the fused producer for the coupled one), leave no goroutine
// behind, and deliver no batch after the failing one.
func TestChaosConsumerErrorNoGoroutineLeak(t *testing.T) {
	for _, coupled := range []bool{false, true} {
		t.Run(fmt.Sprintf("coupled=%v", coupled), func(t *testing.T) {
			cfg := testConfig(t)
			cfg.Prefetch = 4
			cfg.CoupledSampler = coupled
			boom := errors.New("consumer boom")
			before := runtime.NumGoroutine()
			n := 0
			done := false
			err := Run(cfg, func(b *Batch) error {
				if done {
					t.Error("batch delivered after consumer error")
				}
				n++
				if n == 5 {
					done = true
					return boom
				}
				return nil
			}, nil)
			if !errors.Is(err, boom) {
				t.Fatalf("Run returned %v, want consumer error", err)
			}
			if n != 5 {
				t.Fatalf("consumed %d batches, want 5", n)
			}
			waitForGoroutines(t, before)
		})
	}
}

// TestChaosInjectedStageErrors arms the sampler and gather injection
// points in turn and asserts the run degrades to a clean error — wrapping
// the sentinel, after a teardown that leaks nothing — at the inline path,
// a deep prefetch, and the fused producer.
func TestChaosInjectedStageErrors(t *testing.T) {
	for _, point := range []faultinject.Point{faultinject.PipelineSample, faultinject.PipelineGather} {
		for _, prefetch := range []int{0, 4} {
			for _, coupled := range []bool{false, true} {
				t.Run(fmt.Sprintf("%s/prefetch=%d/coupled=%v", point, prefetch, coupled), func(t *testing.T) {
					defer faultinject.Reset()
					cfg := testConfig(t)
					cfg.Epochs = 2
					cfg.Prefetch = prefetch
					cfg.CoupledSampler = coupled
					faultinject.Arm(point, faultinject.Spec{Kind: faultinject.Error, After: 3, Count: 1})
					before := runtime.NumGoroutine()
					n := 0
					err := Run(cfg, func(b *Batch) error { n++; return nil }, nil)
					if !errors.Is(err, faultinject.ErrInjected) {
						t.Fatalf("Run returned %v, want injected error", err)
					}
					if n > 3 {
						t.Fatalf("consumed %d batches past the injected failure at hit 3", n)
					}
					waitForGoroutines(t, before)
				})
			}
		}
	}
}

// TestChaosStagePanicContained: an injected panic inside a stage
// goroutine must come back as an error from Run — never crash the
// process or strand the sibling stages.
func TestChaosStagePanicContained(t *testing.T) {
	for _, prefetch := range []int{0, 4} {
		t.Run(fmt.Sprintf("prefetch=%d", prefetch), func(t *testing.T) {
			defer faultinject.Reset()
			cfg := testConfig(t)
			cfg.Epochs = 2
			cfg.Prefetch = prefetch
			faultinject.Arm(faultinject.PipelineSample, faultinject.Spec{Kind: faultinject.Panic, After: 2, Count: 1})
			before := runtime.NumGoroutine()
			err := Run(cfg, func(b *Batch) error { return nil }, nil)
			if err == nil || !strings.Contains(err.Error(), "injected panic") {
				t.Fatalf("Run returned %v, want contained injected panic", err)
			}
			waitForGoroutines(t, before)
		})
	}
}

// TestChaosConsumerPanicContained: a panic on the consumer side (model
// compute, a rethrown kernel *WorkerPanic) also converts to an error
// after the stages tear down.
func TestChaosConsumerPanicContained(t *testing.T) {
	cfg := testConfig(t)
	cfg.Prefetch = 3
	before := runtime.NumGoroutine()
	n := 0
	err := Run(cfg, func(b *Batch) error {
		n++
		if n == 4 {
			panic("consumer boom")
		}
		return nil
	}, nil)
	if err == nil || !strings.Contains(err.Error(), "consumer boom") {
		t.Fatalf("Run returned %v, want contained consumer panic", err)
	}
	waitForGoroutines(t, before)
}

// TestChaosContextCancel: cancelling the run context stops the pipeline
// at batch granularity with ctx.Err() and a full teardown, at every
// topology.
func TestChaosContextCancel(t *testing.T) {
	for _, prefetch := range []int{0, 4} {
		for _, coupled := range []bool{false, true} {
			t.Run(fmt.Sprintf("prefetch=%d/coupled=%v", prefetch, coupled), func(t *testing.T) {
				ctx, cancel := context.WithCancel(context.Background())
				defer cancel()
				cfg := testConfig(t)
				cfg.Prefetch = prefetch
				cfg.CoupledSampler = coupled
				cfg.Ctx = ctx
				before := runtime.NumGoroutine()
				n := 0
				err := Run(cfg, func(b *Batch) error {
					n++
					if n == 3 {
						cancel()
					}
					return nil
				}, nil)
				if !errors.Is(err, context.Canceled) {
					t.Fatalf("Run returned %v, want context.Canceled", err)
				}
				waitForGoroutines(t, before)
			})
		}
	}
}

// TestChaosContextDeadline: an already-expired deadline yields
// DeadlineExceeded before any batch is delivered.
func TestChaosContextDeadline(t *testing.T) {
	ctx, cancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer cancel()
	cfg := testConfig(t)
	cfg.Prefetch = 2
	cfg.Ctx = ctx
	err := Run(cfg, func(b *Batch) error {
		t.Error("batch delivered under an expired deadline")
		return nil
	}, nil)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run returned %v, want context.DeadlineExceeded", err)
	}
}

// TestChaosDelayOnlySlowsRun: a Delay fault is a slow stage, not a
// failed one — the run must still complete with every batch delivered.
func TestChaosDelayOnlySlowsRun(t *testing.T) {
	defer faultinject.Reset()
	cfg := testConfig(t)
	cfg.Epochs = 1
	cfg.Prefetch = 2
	ref := 0
	if err := Run(cfg, func(b *Batch) error { ref++; return nil }, nil); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.PipelineGather, faultinject.Spec{Kind: faultinject.Delay, Sleep: time.Millisecond, Count: 3})
	got := 0
	if err := Run(cfg, func(b *Batch) error { got++; return nil }, nil); err != nil {
		t.Fatalf("delayed run failed: %v", err)
	}
	if got != ref {
		t.Fatalf("delayed run delivered %d batches, reference %d", got, ref)
	}
}
