package pipeline

import (
	"math/rand"
	"reflect"
	"testing"

	"gnnavigator/internal/gen"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/sample"
)

// capture runs one pipeline pass and keeps every sampled minibatch (safe:
// minibatch slices are freshly built per batch; only sampler-internal
// scratch is recycled).
func capture(t *testing.T, g *graph.Graph, smp sample.Sampler, tg []int32, prefetch int) []*sample.MiniBatch {
	t.Helper()
	var out []*sample.MiniBatch
	err := Run(Config{
		Graph:     g,
		Sampler:   smp,
		Seed:      11,
		Epochs:    2,
		BatchSize: 48,
		Targets:   tg,
		Shuffle:   true,
		Prefetch:  prefetch,
	}, func(b *Batch) error {
		out = append(out, b.MB)
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestFrontierPipelineEquivalence is the fixture-pinned old-vs-new check
// at the pipeline level: for every sampler mode, the stamped frontier
// path through the staged engine at prefetch depths {0, 1, 4} must
// reproduce, bitwise, the batch stream of the frozen map-based reference
// run through the inline loop. Run under -race in CI, this also proves
// the sampler-owned frontier scratch respects the single-producer
// contract at every depth.
func TestFrontierPipelineEquivalence(t *testing.T) {
	g, err := gen.BarabasiAlbert(rand.New(rand.NewSource(10)), 600, 4)
	if err != nil {
		t.Fatal(err)
	}
	tg := make([]int32, 200)
	rng := rand.New(rand.NewSource(3))
	for i := range tg {
		tg[i] = int32(rng.Intn(600))
	}
	samplers := []sample.Sampler{
		&sample.NodeWise{Fanouts: []int{8, 4}},
		&sample.LayerWise{Deltas: []int{40, 20}},
		&sample.SubgraphWise{WalkLength: 4, Layers: 2},
	}
	for _, smp := range samplers {
		t.Run(smp.Name(), func(t *testing.T) {
			ref := sample.NewMapReference(smp)
			if ref == nil {
				t.Fatalf("no map reference for %s", smp.Name())
			}
			want := capture(t, g, ref, tg, 0)
			for _, depth := range []int{0, 1, 4} {
				got := capture(t, g, smp, tg, depth)
				if len(got) != len(want) {
					t.Fatalf("depth %d: %d batches, want %d", depth, len(got), len(want))
				}
				for i := range want {
					if !reflect.DeepEqual(want[i], got[i]) {
						t.Fatalf("depth %d batch %d: diverged from map reference", depth, i)
					}
				}
			}
		})
	}
}
