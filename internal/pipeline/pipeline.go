// Package pipeline is the staged minibatch engine behind backend.RunWith
// and backend.Evaluate: the epoch loop, extracted from the trainer and
// reorganized as a bounded producer/consumer pipeline so host-side work
// (sampling, cache maintenance, feature gather) for batch i+1 overlaps
// device-side work (forward/backward/optimizer) for batch i — the
// executable form of Eq. 4's max(host, device) overlap, applied to the
// reproduction's own wall clock.
//
// Stages:
//
//	Sampler ──chA──▶ CacheLookup+Gather ──chB──▶ Consumer (train/eval)
//
// Each stage is one goroutine; chA/chB are each bounded by the prefetch
// depth, so across both queues plus in-flight work the sampler runs at
// most ~2·Prefetch+3 batches ahead of the consumer. The memory-heavy
// product — the gathered feature matrix — is bounded tighter: it lives
// in a recycled ring of exactly Prefetch+2 buffer sets (the generalized
// double buffer: one being filled, up to Prefetch queued, one in use by
// the consumer), so steady-state prefetch allocates nothing and holds at
// most Prefetch+2 feature matrices regardless of queue occupancy.
//
// Determinism contract: every batch draws from an RNG derived from
// (Seed, epoch, batchIndex) — sample.BatchRNG — never from a shared
// stream, so its draws do not depend on pipeline timing; the cache is
// mutated by exactly one stage in batch order; and the consumer receives
// batches strictly in (epoch, index) order. Together these make the
// engine's output bitwise-identical at every prefetch depth, including
// the Prefetch=0 inline path, which runs the same stage functions
// synchronously with zero goroutines.
//
// Scratch contract: the engine invokes Config.Sampler.Sample from exactly
// one goroutine per run (the sampler stage, or the fused producer), so
// samplers may keep mutable per-stage scratch — the epoch-stamped
// frontier tables and pick buffers of internal/sample — across batches
// without locking. Scratch must never leak into the returned MiniBatch;
// the returned slices stay valid while the producer runs up to Prefetch
// batches ahead.
package pipeline

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/model"
	"gnnavigator/internal/plan"
	"gnnavigator/internal/sample"
	"gnnavigator/internal/tensor"
)

// maxPrefetch bounds the lookahead depth; deeper queues only add memory,
// not overlap, once the consumer is the bottleneck.
const maxPrefetch = 64

var defaultPrefetch atomic.Int32

func init() {
	if s := os.Getenv("GNNAV_PREFETCH"); s != "" {
		if n, err := strconv.Atoi(s); err == nil {
			SetDefaultPrefetch(n)
		}
	}
}

// SetDefaultPrefetch sets the process-wide prefetch depth used when a run
// does not pin one explicitly (backend.Options.Prefetch == 0). n <= 0
// selects the inline path. The default is 0 (inline), overridable with
// the GNNAV_PREFETCH environment variable and the -prefetch CLI flags.
func SetDefaultPrefetch(n int) {
	if n < 0 {
		n = 0
	}
	if n > maxPrefetch {
		n = maxPrefetch
	}
	defaultPrefetch.Store(int32(n))
}

// DefaultPrefetch reports the process-wide prefetch depth.
func DefaultPrefetch() int { return int(defaultPrefetch.Load()) }

// Batch is one unit of work flowing through the pipeline. By the time the
// consumer sees it, every host-side product is attached: the sampled
// minibatch, the cache outcome, and (when Config.Gather is set) the
// gathered input-feature matrix and target labels. The per-batch counts
// are exactly what sim.BatchVolumes needs, so the consumer can price the
// iteration (sim.EstimateBatch) without re-touching cache or graph state.
type Batch struct {
	// Epoch and Index are the batch's pipeline coordinates; Index counts
	// from 0 within the epoch. The consumer sees batches in strictly
	// increasing (Epoch, Index) order.
	Epoch, Index int
	// Targets is the seed vertex set (a sub-slice of the epoch plan).
	Targets []int32
	// MB is the sampled minibatch.
	MB *sample.MiniBatch
	// Miss is the number of MB.InputNodes absent from the cache (the
	// transfer volume of Eq. 6); 0 when the run has no feature source.
	Miss int
	// CacheOps is the number of replacement operations Update performed
	// admitting the misses (Eq. 5's stale-data volume).
	CacheOps int
	// TransferBytes is the host→device feature traffic this batch caused
	// at the scaled feature width, as accounted by the feature source.
	TransferBytes int64
	// HaloBytes is the device-to-device halo-exchange traffic this batch
	// caused at the scaled feature width; 0 unless the source is the
	// multi-device feature plane (internal/dist).
	HaloBytes int64
	// Feats is the gathered input-feature matrix (row i = features of
	// MB.InputNodes[i]); nil unless Config.Gather. It is owned by the
	// pipeline's buffer ring and is valid only until the consumer
	// callback returns.
	Feats *tensor.Dense
	// Labels holds the labels of MB.Targets; nil unless Config.Gather.
	// Same lifetime as Feats.
	Labels []int32

	buf *bufferSet
}

// bufferSet is one slot of the gather ring: the feature matrix and label
// slice a batch carries from the gather stage to the consumer.
type bufferSet struct {
	feats  *tensor.Dense
	labels []int32
}

// Config wires one pipeline run.
type Config struct {
	Graph   *graph.Graph
	Sampler sample.Sampler
	// Source is the feature plane the gather stage routes rows through:
	// cache lookup/update, transfer accounting and (when Gather is set)
	// the row copies all happen behind it, in batch order. nil disables
	// transfer accounting; Gather then copies rows straight from Graph.
	Source cache.FeatureSource

	// Seed roots the per-batch RNG derivation (sample.BatchRNG).
	Seed int64
	// Epochs is the number of passes over Targets (min 1).
	Epochs int
	// BatchSize is |B_0|; <= 0 means one batch of all targets.
	BatchSize int
	// Targets are the seed vertices; must be non-empty.
	Targets []int32
	// Shuffle re-permutes Targets per epoch (training); false keeps the
	// given order (evaluation).
	Shuffle bool
	// Gather fills Batch.Feats/Batch.Labels in the gather stage.
	Gather bool

	// Plan, when set, replaces the sampler stage with plan replay: each
	// batch's minibatch is decoded from the compiled epoch plan instead of
	// being re-sampled. The determinism contract makes this a pure
	// substitution — replayed batches are bitwise-identical to live
	// sampling at every prefetch depth. The plan must be compatible with
	// (Sampler, Seed, Epochs, BatchSize, Shuffle, Targets); Sampler is
	// then consulted only for its identity, never invoked. Incompatible
	// with CoupledSampler: a cache-aware bias makes sampling depend on
	// residency, which a pre-compiled plan cannot reflect.
	Plan *plan.Plan

	// Prefetch is the lookahead depth: how many batches each stage may
	// run ahead of the consumer. <= 0 runs the inline path (no
	// goroutines), which is the bitwise reference for every depth.
	Prefetch int
	// CoupledSampler declares that the sampler reads mutable cache state
	// (a cache-aware bias against a dynamic FIFO/LRU cache). The engine
	// then fuses the sampler and cache stages into one goroutine so each
	// batch samples against exactly the post-batch-(i-1) residency the
	// serial loop would see — still overlapped with the consumer, but
	// never racing ahead of the cache. Static caches don't need this:
	// their residency is immutable, so Contains is order-independent.
	CoupledSampler bool

	// Ctx, when non-nil, cancels the run: every stage checks it between
	// batches, and Run returns ctx.Err() after tearing the stages down.
	// Cancellation is cooperative at batch granularity — a batch already
	// in flight completes, but no further batch is sampled, gathered, or
	// delivered. nil means no cancellation (run to completion).
	Ctx context.Context
}

// ctxErr reports the run context's error, if it has been cancelled.
func (cfg *Config) ctxErr() error {
	if cfg.Ctx == nil {
		return nil
	}
	select {
	case <-cfg.Ctx.Done():
		return cfg.Ctx.Err()
	default:
		return nil
	}
}

func (cfg *Config) validate() error {
	if cfg.Graph == nil || cfg.Sampler == nil {
		return fmt.Errorf("pipeline: need a graph and a sampler")
	}
	if len(cfg.Targets) == 0 {
		return fmt.Errorf("pipeline: no target vertices")
	}
	if cfg.Epochs < 1 {
		return fmt.Errorf("pipeline: epochs %d < 1", cfg.Epochs)
	}
	if cfg.Plan != nil {
		if cfg.CoupledSampler {
			return fmt.Errorf("pipeline: plan replay cannot drive a coupled (cache-aware) sampler")
		}
		if err := cfg.Plan.CompatibleWith(cfg.Sampler, cfg.Seed, cfg.Epochs, cfg.BatchSize, cfg.Shuffle, cfg.Targets); err != nil {
			return fmt.Errorf("pipeline: %w", err)
		}
	}
	return nil
}

// plan returns epoch e's batch list. With Shuffle the permutation comes
// from the per-epoch stream (independent of every other epoch); without,
// targets are chunked in the given order. sample.EpochPlan is the single
// source of truth here, shared with the plan compiler (internal/plan).
func (cfg *Config) plan(epoch int) [][]int32 {
	return sample.EpochPlan(cfg.Seed, epoch, cfg.Targets, cfg.BatchSize, cfg.Shuffle)
}

// sampleBatch is the sampler stage's work for one batch: live sampling
// through the per-batch RNG, or plan replay when Config.Plan is set.
func (cfg *Config) sampleBatch(epoch, index int, targets []int32) (*Batch, error) {
	if err := faultinject.Fire(faultinject.PipelineSample); err != nil {
		return nil, fmt.Errorf("pipeline: sample batch (%d,%d): %w", epoch, index, err)
	}
	b := &Batch{Epoch: epoch, Index: index, Targets: targets}
	if cfg.Plan != nil {
		b.MB = cfg.Plan.Replay(epoch, index)
		return b, nil
	}
	rng := sample.BatchRNG(cfg.Seed, epoch, index)
	b.MB = cfg.Sampler.Sample(rng, cfg.Graph, targets)
	return b, nil
}

// BatchAware is implemented by feature sources that need the full
// minibatch topology — not just the input node list — before serving it.
// The multi-device plane (dist.Source) uses it to classify halo rows:
// which consumer partition each input row's destination vertices belong
// to is only visible in the sampled blocks. The pipeline calls BeginBatch
// on the gather stage's goroutine immediately before Access/GatherInto,
// so implementations may keep the batch without locking.
type BatchAware interface {
	BeginBatch(mb *sample.MiniBatch)
}

// prepareBatch is the cache+gather stage's work for one batch: route the
// batch's input rows through the feature plane (lookup/update/transfer
// accounting, in batch order), then feature/label gather into the
// batch's buffer set.
func (cfg *Config) prepareBatch(b *Batch, buf *bufferSet) error {
	if err := faultinject.Fire(faultinject.PipelineGather); err != nil {
		return fmt.Errorf("pipeline: gather batch (%d,%d): %w", b.Epoch, b.Index, err)
	}
	if ba, ok := cfg.Source.(BatchAware); ok {
		ba.BeginBatch(b.MB)
	}
	if cfg.Gather {
		b.buf = buf
		if cfg.Source != nil {
			var st cache.BatchStats
			buf.feats, st = cfg.Source.GatherInto(buf.feats, b.MB.InputNodes)
			b.Miss, b.CacheOps, b.TransferBytes = st.Miss, st.CacheOps, st.TransferBytes
			b.HaloBytes = st.HaloBytes
		} else {
			buf.feats = model.GatherFeaturesInto(buf.feats, cfg.Graph, b.MB.InputNodes)
		}
		buf.labels = tensor.Grow(buf.labels, len(b.MB.Targets))
		for i, v := range b.MB.Targets {
			buf.labels[i] = cfg.Graph.Labels[v]
		}
		b.Feats = buf.feats
		b.Labels = buf.labels
	} else if cfg.Source != nil {
		st := cfg.Source.Access(b.MB.InputNodes)
		b.Miss, b.CacheOps, b.TransferBytes = st.Miss, st.CacheOps, st.TransferBytes
		b.HaloBytes = st.HaloBytes
	}
	return nil
}

// recoveredErr converts a recovered panic value into the error a stage
// reports through the shutdown path. Panics already contained once by the
// tensor pool (*tensor.WorkerPanic) pass through as errors, keeping the
// original stack; anything else is wrapped with the stage name.
func recoveredErr(where string, r any) error {
	if wp, ok := r.(*tensor.WorkerPanic); ok {
		return fmt.Errorf("pipeline: %s: %w", where, wp)
	}
	if err, ok := r.(error); ok {
		// Error-valued panics (e.g. a no-error-return site converting an
		// injected fault) keep their chain, so errors.Is still works on
		// the contained result.
		return fmt.Errorf("pipeline: %s: panic: %w", where, err)
	}
	return fmt.Errorf("pipeline: %s: panic: %v", where, r)
}

// Run drives the pipeline: consume is called for every batch in (epoch,
// index) order, and epochEnd (optional) after the last batch of each
// epoch — both on the calling goroutine, so consumers may use non-thread-
// safe state (model, optimizer, workspace) freely. Run returns the first
// callback or stage error after shutting the stages down; no goroutine
// outlives the call, and no batch is delivered after the first failure.
// Panics — a stage's, the consumer's, or a *tensor.WorkerPanic rethrown
// by a kernel dispatched from either — are contained here and returned as
// errors after the teardown completes.
func Run(cfg Config, consume func(*Batch) error, epochEnd func(epoch int) error) (err error) {
	if err := cfg.validate(); err != nil {
		return err
	}
	if epochEnd == nil {
		epochEnd = func(int) error { return nil }
	}
	defer func() {
		if r := recover(); r != nil {
			err = recoveredErr("run", r)
		}
	}()
	if cfg.Prefetch <= 0 {
		return runInline(cfg, consume, epochEnd)
	}
	return runAsync(cfg, consume, epochEnd)
}

// runInline is the zero-goroutine reference path: the same stage
// functions, executed synchronously per batch with a single buffer set.
func runInline(cfg Config, consume func(*Batch) error, epochEnd func(epoch int) error) error {
	buf := &bufferSet{}
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		for i, targets := range cfg.plan(epoch) {
			if err := cfg.ctxErr(); err != nil {
				return err
			}
			b, err := cfg.sampleBatch(epoch, i, targets)
			if err != nil {
				return err
			}
			if err := cfg.prepareBatch(b, buf); err != nil {
				return err
			}
			if err := consume(b); err != nil {
				return err
			}
		}
		if err := epochEnd(epoch); err != nil {
			return err
		}
	}
	return nil
}

func runAsync(cfg Config, consume func(*Batch) error, epochEnd func(epoch int) error) error {
	depth := min(cfg.Prefetch, maxPrefetch)

	// done tears the stages down on early exit (consumer error): senders
	// select against it, so none blocks forever on an abandoned channel.
	done := make(chan struct{})
	var wg sync.WaitGroup
	defer func() {
		close(done)
		wg.Wait()
	}()

	// stageErr records the first stage failure (injected error, cancelled
	// context, or recovered panic). A failing stage records here, then
	// closes its output channel; the closure drains downstream, the
	// consumer loop ends without seeing another batch, and Run returns
	// this error — the same shutdown path a consumer error takes, driven
	// from the producer side.
	var (
		errMu    sync.Mutex
		stageErr error
	)
	fail := func(err error) {
		if err == nil {
			return
		}
		errMu.Lock()
		if stageErr == nil {
			stageErr = err
		}
		errMu.Unlock()
	}
	firstErr := func() error {
		errMu.Lock()
		defer errMu.Unlock()
		return stageErr
	}

	// Gather ring: one set being filled, up to depth queued, one held by
	// the consumer. Only Gather runs draw from it (the consumer returns
	// each set after use); acquire blocks when the consumer falls behind,
	// which is the pipeline's natural backpressure.
	free := make(chan *bufferSet, depth+2)
	for i := 0; i < depth+2; i++ {
		free <- &bufferSet{}
	}
	acquire := func() (*bufferSet, bool) {
		if !cfg.Gather {
			return nil, true
		}
		select {
		case buf := <-free:
			return buf, true
		case <-done:
			return nil, false
		}
	}

	out := make(chan *Batch, depth)
	if cfg.CoupledSampler {
		// Fused producer: sample→lookup→update→gather sequentially per
		// batch, so cache-reading samplers observe exactly the serial
		// residency sequence.
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer close(out)
			defer func() {
				if r := recover(); r != nil {
					fail(recoveredErr("producer stage", r))
				}
			}()
			for epoch := 0; epoch < cfg.Epochs; epoch++ {
				for i, targets := range cfg.plan(epoch) {
					if err := cfg.ctxErr(); err != nil {
						fail(err)
						return
					}
					b, err := cfg.sampleBatch(epoch, i, targets)
					if err != nil {
						fail(err)
						return
					}
					buf, ok := acquire()
					if !ok {
						return
					}
					if err := cfg.prepareBatch(b, buf); err != nil {
						fail(err)
						return
					}
					select {
					case out <- b:
					case <-done:
						return
					}
				}
			}
		}()
	} else {
		sampled := make(chan *Batch, depth)
		wg.Add(1)
		go func() { // sampler stage
			defer wg.Done()
			defer close(sampled)
			defer func() {
				if r := recover(); r != nil {
					fail(recoveredErr("sampler stage", r))
				}
			}()
			for epoch := 0; epoch < cfg.Epochs; epoch++ {
				for i, targets := range cfg.plan(epoch) {
					if err := cfg.ctxErr(); err != nil {
						fail(err)
						return
					}
					b, err := cfg.sampleBatch(epoch, i, targets)
					if err != nil {
						fail(err)
						return
					}
					select {
					case sampled <- b:
					case <-done:
						return
					}
				}
			}
		}()
		wg.Add(1)
		go func() { // cache lookup + gather stage
			defer wg.Done()
			defer close(out)
			defer func() {
				if r := recover(); r != nil {
					fail(recoveredErr("gather stage", r))
				}
			}()
			for b := range sampled {
				buf, ok := acquire()
				if !ok {
					return
				}
				if err := cfg.prepareBatch(b, buf); err != nil {
					fail(err)
					return
				}
				select {
				case out <- b:
				case <-done:
					return
				}
			}
		}()
	}

	// Consumer: caller's goroutine.
	epoch := 0
	for b := range out {
		if err := cfg.ctxErr(); err != nil {
			return err
		}
		if b.Epoch != epoch {
			if err := epochEnd(epoch); err != nil {
				return err
			}
			epoch = b.Epoch
		}
		if err := consume(b); err != nil {
			return err
		}
		if b.buf != nil {
			b.Feats, b.Labels = nil, nil
			free <- b.buf
			b.buf = nil
		}
	}
	// out closed: either the stages finished cleanly, or one failed and
	// shut the channel early. A stage failure means the run is partial, so
	// the final epochEnd must not fire.
	if err := firstErr(); err != nil {
		return err
	}
	return epochEnd(epoch)
}
