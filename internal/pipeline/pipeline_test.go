package pipeline

import (
	"fmt"
	"math"
	"testing"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/dataset"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/plan"
	"gnnavigator/internal/sample"
)

// digest is an order-sensitive fingerprint of everything a batch hands
// the consumer, so inline and async runs can be compared exactly.
type digest struct {
	epoch, index  int
	targets       int
	vertices      int
	edges         int
	miss, ops     int
	transfer      int64
	featsChecksum float64
	labelSum      int64
}

func runDigests(t *testing.T, cfg Config) ([]digest, []int) {
	t.Helper()
	var ds []digest
	var epochEnds []int
	err := Run(cfg, func(b *Batch) error {
		d := digest{
			epoch: b.Epoch, index: b.Index,
			targets:  len(b.Targets),
			vertices: b.MB.NumVertices,
			edges:    b.MB.NumEdges,
			miss:     b.Miss, ops: b.CacheOps,
			transfer: b.TransferBytes,
		}
		if b.Feats != nil {
			for _, v := range b.Feats.Data {
				d.featsChecksum += v
			}
		}
		for _, l := range b.Labels {
			d.labelSum += int64(l)
		}
		ds = append(ds, d)
		return nil
	}, func(epoch int) error {
		epochEnds = append(epochEnds, epoch)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds, epochEnds
}

func testConfig(t *testing.T) Config {
	t.Helper()
	d, err := dataset.Load(dataset.OgbnArxiv)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Graph:     d.Graph,
		Sampler:   &sample.NodeWise{Fanouts: []int{6, 4}},
		Seed:      11,
		Epochs:    3,
		BatchSize: 300,
		Targets:   d.TrainIdx,
		Shuffle:   true,
		Gather:    true,
	}
}

// mustCache builds an array-backed cache over g (which may be nil).
func mustCache(t *testing.T, policy cache.Policy, capacity int, g *graph.Graph) *cache.Cache {
	t.Helper()
	c, err := cache.New(policy, capacity, g)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestAsyncBitwiseEqualInline: the engine's core promise — any prefetch
// depth reproduces the inline path exactly, per batch, including cache
// evolution and gathered features.
func TestAsyncBitwiseEqualInline(t *testing.T) {
	for _, withCache := range []bool{false, true} {
		t.Run(fmt.Sprintf("cache=%v", withCache), func(t *testing.T) {
			mk := func(prefetch int) ([]digest, []int) {
				cfg := testConfig(t)
				cfg.Prefetch = prefetch
				if withCache {
					cfg.Source = cache.NewCachedSource(
						mustCache(t, cache.FIFO, 2000, cfg.Graph), cfg.Graph)
				}
				return runDigests(t, cfg)
			}
			ref, refEnds := mk(0)
			if len(ref) == 0 {
				t.Fatal("no batches consumed")
			}
			for _, depth := range []int{1, 2, 7} {
				got, gotEnds := mk(depth)
				if len(got) != len(ref) {
					t.Fatalf("prefetch %d consumed %d batches, inline %d", depth, len(got), len(ref))
				}
				for i := range ref {
					if got[i] != ref[i] {
						t.Fatalf("prefetch %d batch %d differs: %+v vs %+v", depth, i, got[i], ref[i])
					}
				}
				if len(gotEnds) != len(refEnds) {
					t.Fatalf("epoch-end calls: %v vs %v", gotEnds, refEnds)
				}
			}
		})
	}
}

// TestCoupledSamplerEqualInline covers the fused producer: a bias func
// reading dynamic cache residency must see the serial residency sequence
// at any depth.
func TestCoupledSamplerEqualInline(t *testing.T) {
	mk := func(prefetch int) ([]digest, []int) {
		cfg := testConfig(t)
		cfg.Prefetch = prefetch
		cfg.CoupledSampler = true
		src := cache.NewCachedSource(mustCache(t, cache.LRU, 1500, cfg.Graph), cfg.Graph)
		cfg.Source = src
		cfg.Sampler = &sample.NodeWise{
			Fanouts:      []int{6, 4},
			Bias:         sample.ResidencyBias(src),
			BiasStrength: 0.9,
		}
		return runDigests(t, cfg)
	}
	ref, _ := mk(0)
	for _, depth := range []int{1, 4} {
		got, _ := mk(depth)
		if len(got) != len(ref) {
			t.Fatalf("prefetch %d consumed %d batches, inline %d", depth, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("coupled prefetch %d batch %d differs: %+v vs %+v", depth, i, got[i], ref[i])
			}
		}
	}
}

// TestKernelEquivalenceThroughPipeline pins the array-backed cache to
// the frozen map+list reference through the full engine: for every
// policy and prefetch depth in {0, 1, 4}, a run gathering through the
// new cache must hand the consumer bit-identical batches — same misses,
// same eviction-driven update ops, same transfer bytes, same feature
// matrices — as a run over the map reference. Run under -race (CI does)
// this also exercises the lock-free Contains path against the writer
// stage.
func TestKernelEquivalenceThroughPipeline(t *testing.T) {
	d, err := dataset.Load(dataset.OgbnArxiv)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph
	const capacity = 1200
	freqOrder := g.DegreeOrder() // any fixed admission order works here
	for _, policy := range cache.Policies() {
		if policy == cache.Opt {
			// Script-driven: the frozen map+list reference has no
			// offline-optimal counterpart. Opt's pipeline behaviour is
			// covered by the backend ablation and cache/opt_test.go.
			continue
		}
		t.Run(string(policy), func(t *testing.T) {
			mk := func(src cache.FeatureSource, prefetch int) []digest {
				cfg := testConfig(t)
				cfg.Epochs = 2
				cfg.Prefetch = prefetch
				cfg.Source = src
				ds, _ := runDigests(t, cfg)
				return ds
			}
			newSrc := func() cache.FeatureSource {
				if policy == cache.Freq {
					c, err := cache.NewWithOrder(cache.Freq, capacity, g, freqOrder)
					if err != nil {
						t.Fatal(err)
					}
					return cache.NewCachedSource(c, g)
				}
				return cache.NewCachedSource(mustCache(t, policy, capacity, g), g)
			}
			refSrc := func() cache.FeatureSource {
				ref, err := cache.NewMapReferenceWithOrder(policy, capacity, freqOrder)
				if err != nil {
					t.Fatal(err)
				}
				return cache.NewKernelSource(ref, g)
			}
			want := mk(refSrc(), 0)
			for _, depth := range []int{0, 1, 4} {
				got := mk(newSrc(), depth)
				if len(got) != len(want) {
					t.Fatalf("prefetch %d consumed %d batches, reference %d", depth, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("policy %s prefetch %d batch %d differs:\nnew: %+v\nref: %+v",
							policy, depth, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestPrecisionEquivalenceThroughPipeline extends the kernel-equivalence
// pin to the compact feature plane: at float16 and int8, a pipeline run
// gathering through the quantized array-backed cache must hand the
// consumer batches bit-identical to a run over the frozen map reference
// whose kernel source takes every row through the same fused
// quantize→dequantize round trip — same feature matrices, same misses,
// same precision-scaled transfer bytes — at every prefetch depth. The
// float32 leg of this contract is TestKernelEquivalenceThroughPipeline.
func TestPrecisionEquivalenceThroughPipeline(t *testing.T) {
	d, err := dataset.Load(dataset.OgbnArxiv)
	if err != nil {
		t.Fatal(err)
	}
	g := d.Graph
	const capacity = 1200
	for _, prec := range []cache.Precision{cache.Float16, cache.Int8} {
		t.Run(string(prec), func(t *testing.T) {
			mk := func(src cache.FeatureSource, prefetch int) []digest {
				cfg := testConfig(t)
				cfg.Epochs = 2
				cfg.Prefetch = prefetch
				cfg.Source = src
				ds, _ := runDigests(t, cfg)
				return ds
			}
			refK, err := cache.NewMapReference(cache.LRU, capacity, g)
			if err != nil {
				t.Fatal(err)
			}
			want := mk(cache.NewKernelSourceAt(refK, g, prec), 0)
			for _, depth := range []int{0, 1, 4} {
				c, err := cache.NewAtPrecision(cache.LRU, capacity, g, prec)
				if err != nil {
					t.Fatal(err)
				}
				got := mk(cache.NewCachedSource(c, g), depth)
				if len(got) != len(want) {
					t.Fatalf("prefetch %d consumed %d batches, reference %d", depth, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("precision %s prefetch %d batch %d differs:\nnew: %+v\nref: %+v",
							prec, depth, i, got[i], want[i])
					}
				}
			}
		})
	}
}

// TestPlanReplayBitwiseEqualLive pins the epoch-plan replay producer to
// live sampling: a compiled plan driven through the pipeline must hand
// the consumer bit-identical batches — same minibatch structure, same
// gathered features, same epoch boundaries — at prefetch depths 0, 1
// and 4. Run under -race (CI does) this also exercises concurrent
// replay against the gather stage.
func TestPlanReplayBitwiseEqualLive(t *testing.T) {
	base := testConfig(t)
	key := plan.KeyFor(dataset.OgbnArxiv, false, base.Sampler,
		base.BatchSize, base.Seed, base.Epochs, base.Shuffle, base.Targets)
	pl, err := plan.Compile(base.Graph, base.Sampler, key, base.Targets)
	if err != nil {
		t.Fatal(err)
	}
	ref, refEnds := runDigests(t, base)
	if len(ref) == 0 {
		t.Fatal("no batches consumed")
	}
	for _, depth := range []int{0, 1, 4} {
		cfg := testConfig(t)
		cfg.Plan = pl
		cfg.Prefetch = depth
		got, gotEnds := runDigests(t, cfg)
		if len(got) != len(ref) {
			t.Fatalf("replay prefetch %d consumed %d batches, live %d", depth, len(got), len(ref))
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("replay prefetch %d batch %d differs:\nreplay: %+v\nlive:   %+v",
					depth, i, got[i], ref[i])
			}
		}
		if len(gotEnds) != len(refEnds) {
			t.Fatalf("replay epoch-end calls: %v vs %v", gotEnds, refEnds)
		}
	}
}

// TestPlanValidation: incompatible plans and plan-driven coupled
// samplers are rejected up front, not silently mis-replayed.
func TestPlanValidation(t *testing.T) {
	base := testConfig(t)
	key := plan.KeyFor(dataset.OgbnArxiv, false, base.Sampler,
		base.BatchSize, base.Seed, base.Epochs, base.Shuffle, base.Targets)
	pl, err := plan.Compile(base.Graph, base.Sampler, key, base.Targets)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testConfig(t)
	cfg.Plan = pl
	cfg.Seed = base.Seed + 1
	if err := Run(cfg, func(*Batch) error { return nil }, nil); err == nil {
		t.Error("plan with mismatched seed accepted")
	}
	cfg = testConfig(t)
	cfg.Plan = pl
	cfg.CoupledSampler = true
	if err := Run(cfg, func(*Batch) error { return nil }, nil); err == nil {
		t.Error("plan accepted for a coupled (cache-aware) sampler")
	}
	// A longer plan may replay a shorter run (epoch-prefix rule)...
	cfg = testConfig(t)
	cfg.Plan = pl
	cfg.Epochs = base.Epochs - 1
	if err := Run(cfg, func(*Batch) error { return nil }, nil); err != nil {
		t.Errorf("epoch-prefix replay rejected: %v", err)
	}
	// ...but never the reverse.
	cfg = testConfig(t)
	cfg.Plan = pl
	cfg.Epochs = base.Epochs + 1
	if err := Run(cfg, func(*Batch) error { return nil }, nil); err == nil {
		t.Error("plan shorter than the run accepted")
	}
}

// TestOrderingAndEpochEnds: batches arrive in strict (epoch, index)
// order with epochEnd interleaved exactly once per epoch.
func TestOrderingAndEpochEnds(t *testing.T) {
	cfg := testConfig(t)
	cfg.Prefetch = 4
	ds, ends := runDigests(t, cfg)
	wantEpoch, wantIndex := 0, 0
	for _, d := range ds {
		if d.index == 0 && d.epoch == wantEpoch+1 {
			wantEpoch, wantIndex = d.epoch, 0
		}
		if d.epoch != wantEpoch || d.index != wantIndex {
			t.Fatalf("out of order: got (%d,%d), want (%d,%d)", d.epoch, d.index, wantEpoch, wantIndex)
		}
		wantIndex++
	}
	if len(ends) != cfg.Epochs {
		t.Fatalf("epochEnd called %d times, want %d", len(ends), cfg.Epochs)
	}
	for i, e := range ends {
		if e != i {
			t.Fatalf("epochEnd order %v", ends)
		}
	}
}

// TestConsumeErrorStopsPipeline: a consumer error propagates out of Run
// and shuts the stages down without deadlocking (the test would hang
// otherwise, and -race would flag leaked stages touching the cache).
func TestConsumeErrorStopsPipeline(t *testing.T) {
	cfg := testConfig(t)
	cfg.Prefetch = 3
	boom := fmt.Errorf("boom")
	n := 0
	err := Run(cfg, func(b *Batch) error {
		n++
		if n == 3 {
			return boom
		}
		return nil
	}, nil)
	if err != boom {
		t.Fatalf("Run returned %v, want consumer error", err)
	}
	if n != 3 {
		t.Fatalf("consumed %d batches after error, want 3", n)
	}
}

// TestBufferRingBounded: the gather ring must recycle — an async run may
// touch at most prefetch+2 distinct feature buffers.
func TestBufferRingBounded(t *testing.T) {
	cfg := testConfig(t)
	cfg.Prefetch = 2
	seen := map[*float64]bool{}
	err := Run(cfg, func(b *Batch) error {
		if b.Feats != nil && len(b.Feats.Data) > 0 {
			seen[&b.Feats.Data[0]] = true
		}
		return nil
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// GatherFeaturesInto may reallocate while batch sizes still grow, so
	// allow a small settling allowance beyond the steady-state ring.
	if len(seen) > (cfg.Prefetch+2)*3 {
		t.Errorf("saw %d distinct feature buffers, ring should bound reuse near %d", len(seen), cfg.Prefetch+2)
	}
}

// TestValidation rejects unusable configs.
func TestValidation(t *testing.T) {
	cfg := testConfig(t)
	cfg.Targets = nil
	if err := Run(cfg, func(*Batch) error { return nil }, nil); err == nil {
		t.Error("empty targets accepted")
	}
	cfg = testConfig(t)
	cfg.Epochs = 0
	if err := Run(cfg, func(*Batch) error { return nil }, nil); err == nil {
		t.Error("zero epochs accepted")
	}
	cfg = testConfig(t)
	cfg.Sampler = nil
	if err := Run(cfg, func(*Batch) error { return nil }, nil); err == nil {
		t.Error("nil sampler accepted")
	}
}

// TestDefaultPrefetchClamps covers the process-wide setting.
func TestDefaultPrefetchClamps(t *testing.T) {
	prev := DefaultPrefetch()
	defer SetDefaultPrefetch(prev)
	SetDefaultPrefetch(-5)
	if got := DefaultPrefetch(); got != 0 {
		t.Errorf("negative clamped to %d, want 0", got)
	}
	SetDefaultPrefetch(1 << 20)
	if got := DefaultPrefetch(); got != maxPrefetch {
		t.Errorf("huge clamped to %d, want %d", got, maxPrefetch)
	}
	SetDefaultPrefetch(4)
	if got := DefaultPrefetch(); got != 4 {
		t.Errorf("DefaultPrefetch = %d, want 4", got)
	}
}

// TestBatchSeedDecorrelated: neighboring coordinates must not produce
// neighboring streams (a weak mix here would correlate batch draws).
func TestBatchSeedDecorrelated(t *testing.T) {
	seen := map[int64]bool{}
	for epoch := 0; epoch < 8; epoch++ {
		for b := -1; b < 32; b++ {
			s := sample.BatchSeed(42, epoch, b)
			if seen[s] {
				t.Fatalf("seed collision at (42,%d,%d)", epoch, b)
			}
			seen[s] = true
		}
	}
	// First draws across batch indices should look uniform, not striped.
	var mean float64
	const n = 1000
	for i := 0; i < n; i++ {
		mean += sample.BatchRNG(1, 0, i).Float64()
	}
	mean /= n
	if math.Abs(mean-0.5) > 0.05 {
		t.Errorf("first-draw mean %v, want ~0.5", mean)
	}
}
