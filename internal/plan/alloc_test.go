//go:build !race

package plan

import (
	"testing"

	"gnnavigator/internal/sample"
)

// TestReplayIntoZeroAllocs is the replay-path allocation regression: in
// steady state (mb's Blocks capacity warm) serving a batch from the plan
// is pure slicing — zero allocations, zero sampler work. Guarded !race
// because the race runtime adds bookkeeping allocations.
func TestReplayIntoZeroAllocs(t *testing.T) {
	g := testGraph(t)
	targets := testTargets(500)
	smp := func() *sample.NodeWise { return &sample.NodeWise{Fanouts: []int{6, 4}} }
	key := KeyFor("test-ds", false, smp(), 128, 11, 2, true, targets)
	pl, err := Compile(g, smp(), key, targets)
	if err != nil {
		t.Fatal(err)
	}
	mb := &sample.MiniBatch{}
	pl.ReplayInto(mb, 0, 0) // warm Blocks capacity
	allocs := testing.AllocsPerRun(10, func() {
		for e := 0; e < pl.Epochs(); e++ {
			for i := 0; i < pl.BatchesPerEpoch(); i++ {
				pl.ReplayInto(mb, e, i)
			}
		}
	})
	if allocs != 0 {
		t.Errorf("ReplayInto allocates %.1f per full replay in steady state, want 0", allocs)
	}
}
