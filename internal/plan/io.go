package plan

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
)

// Binary plan persistence: a fixed magic/version header, the key, the
// shape, then the raw little-endian arrays. Plans are pure int32/int64
// data, so the format is a straight dump — gnnavigator -save-plan /
// -load-plan round-trips through it.

var planMagic = [8]byte{'G', 'N', 'A', 'V', 'P', 'L', 'N', '1'}

// SaveFile writes the plan to path (atomically via rename).
func SaveFile(path string, p *Plan) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	w := bufio.NewWriter(f)
	if err := writePlan(w, p); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("plan: save %s: %w", path, err)
	}
	if err := w.Flush(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("plan: save %s: %w", path, err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("plan: save %s: %w", path, err)
	}
	return os.Rename(tmp, path)
}

// LoadFile reads a plan previously written by SaveFile.
func LoadFile(path string) (*Plan, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	p, err := readPlan(bufio.NewReader(f))
	if err != nil {
		return nil, fmt.Errorf("plan: load %s: %w", path, err)
	}
	return p, nil
}

func writePlan(w io.Writer, p *Plan) error {
	if _, err := w.Write(planMagic[:]); err != nil {
		return err
	}
	if err := writeString(w, p.key.Dataset); err != nil {
		return err
	}
	if err := writeString(w, p.key.Sampler); err != nil {
		return err
	}
	scalars := []int64{
		boolInt(p.key.Reorder), int64(p.key.BatchSize), p.key.Seed,
		int64(p.key.Epochs), boolInt(p.key.Shuffle), int64(p.key.Targets),
		int64(p.key.TargetsFP), int64(p.layers), int64(p.perEpoch),
	}
	if err := binary.Write(w, binary.LittleEndian, scalars); err != nil {
		return err
	}
	for _, arr := range [][]int32{p.nodes, p.offsets, p.indices, p.blockDst} {
		if err := writeInt32s(w, arr); err != nil {
			return err
		}
	}
	for _, arr := range [][]int64{p.batchNode, p.blockOff, p.blockIdx} {
		if err := writeInt64s(w, arr); err != nil {
			return err
		}
	}
	return nil
}

func readPlan(r io.Reader) (*Plan, error) {
	var magic [8]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, err
	}
	if magic != planMagic {
		return nil, fmt.Errorf("bad magic %q (not a plan file or wrong version)", magic[:])
	}
	p := &Plan{}
	var err error
	if p.key.Dataset, err = readString(r); err != nil {
		return nil, err
	}
	if p.key.Sampler, err = readString(r); err != nil {
		return nil, err
	}
	scalars := make([]int64, 9)
	if err := binary.Read(r, binary.LittleEndian, scalars); err != nil {
		return nil, err
	}
	p.key.Reorder = scalars[0] != 0
	p.key.BatchSize = int(scalars[1])
	p.key.Seed = scalars[2]
	p.key.Epochs = int(scalars[3])
	p.key.Shuffle = scalars[4] != 0
	p.key.Targets = int(scalars[5])
	p.key.TargetsFP = uint64(scalars[6])
	p.layers = int(scalars[7])
	p.perEpoch = int(scalars[8])
	if p.layers < 1 || p.perEpoch < 1 || p.key.Epochs < 1 {
		return nil, fmt.Errorf("corrupt plan shape layers=%d perEpoch=%d epochs=%d", p.layers, p.perEpoch, p.key.Epochs)
	}
	for _, dst := range []*[]int32{&p.nodes, &p.offsets, &p.indices, &p.blockDst} {
		if *dst, err = readInt32s(r); err != nil {
			return nil, err
		}
	}
	for _, dst := range []*[]int64{&p.batchNode, &p.blockOff, &p.blockIdx} {
		if *dst, err = readInt64s(r); err != nil {
			return nil, err
		}
	}
	nb := p.NumBatches()
	if len(p.batchNode) != nb+1 || len(p.blockDst) != nb*p.layers ||
		len(p.blockOff) != nb*p.layers || len(p.blockIdx) != nb*p.layers {
		return nil, fmt.Errorf("corrupt plan extents")
	}
	return p, nil
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n < 0 || n > 1<<20 {
		return "", fmt.Errorf("corrupt string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

func writeInt32s(w io.Writer, arr []int32) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(arr))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, arr)
}

func readInt32s(r io.Reader) ([]int32, error) {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<34 {
		return nil, fmt.Errorf("corrupt array length %d", n)
	}
	arr := make([]int32, n)
	if err := binary.Read(r, binary.LittleEndian, arr); err != nil {
		return nil, err
	}
	return arr, nil
}

func writeInt64s(w io.Writer, arr []int64) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(arr))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, arr)
}

func readInt64s(r io.Reader) ([]int64, error) {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<34 {
		return nil, fmt.Errorf("corrupt array length %d", n)
	}
	arr := make([]int64, n)
	if err := binary.Read(r, binary.LittleEndian, arr); err != nil {
		return nil, err
	}
	return arr, nil
}
