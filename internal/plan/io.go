package plan

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"os"

	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/safefile"
)

// Binary plan persistence: a fixed magic/version header, the key, the
// shape, then the raw little-endian arrays, closed by a CRC-64 footer.
// Plans are pure int32/int64 data, so the format is a straight dump —
// gnnavigator -save-plan / -load-plan round-trips through it. The
// atomic write and footer verification live in internal/safefile, the
// discipline shared with checkpoints and saved models.
//
// Version history:
//
//	GNAVPLN1 — header + body, no integrity check (still readable).
//	GNAVPLN2 — header + body + CRC-64/ECMA of the body as the trailing
//	           8 bytes (little-endian). Truncation and bit flips anywhere
//	           in the body or footer are rejected on load.

var (
	planMagicV1 = [8]byte{'G', 'N', 'A', 'V', 'P', 'L', 'N', '1'}
	planMagicV2 = [8]byte{'G', 'N', 'A', 'V', 'P', 'L', 'N', '2'}
)

// SaveFile writes the plan to path (atomically via rename, in the
// current GNAVPLN2 format). A failed write or rename leaves no *.tmp
// file behind.
func SaveFile(path string, p *Plan) error {
	if err := faultinject.Fire(faultinject.PlanSave); err != nil {
		return fmt.Errorf("plan: save %s: %w", path, err)
	}
	var body bytes.Buffer
	if err := writePlanBody(&body, p); err != nil {
		return fmt.Errorf("plan: save %s: %w", path, err)
	}
	payload := body.Bytes()
	// The checksum covers the intact body; the chaos Mutate hook flips
	// bits only after it is computed, modelling media corruption that the
	// load-side verification must catch.
	sum := safefile.Checksum(payload)
	faultinject.Mutate(faultinject.PlanSave, payload)
	if err := safefile.Write(path, planMagicV2, payload, sum); err != nil {
		return fmt.Errorf("plan: save %s: %w", path, err)
	}
	return nil
}

// LoadFile reads a plan previously written by SaveFile — the current
// checksummed GNAVPLN2 format, or a legacy GNAVPLN1 file (no footer).
func LoadFile(path string) (*Plan, error) {
	if err := faultinject.Fire(faultinject.PlanLoad); err != nil {
		return nil, fmt.Errorf("plan: load %s: %w", path, err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < 8 {
		return nil, fmt.Errorf("plan: load %s: truncated (%d bytes)", path, len(data))
	}
	var magic [8]byte
	copy(magic[:], data)
	var p *Plan
	switch magic {
	case planMagicV1:
		// Legacy: no footer to verify; the body's own shape/extent checks
		// are the only guard.
		p, err = readPlanBody(bytes.NewReader(data[8:]))
	case planMagicV2:
		p, err = readPlanV2(data[8:])
	default:
		return nil, fmt.Errorf("plan: load %s: bad magic %q (not a plan file or wrong version)", path, magic[:])
	}
	if err != nil {
		return nil, fmt.Errorf("plan: load %s: %w", path, err)
	}
	return p, nil
}

// readPlanV2 verifies the CRC footer over the exact body bytes, then
// parses. The whole rest of the file was read up front so truncation is
// indistinguishable from corruption — both fail the checksum, never a
// partial parse.
func readPlanV2(rest []byte) (*Plan, error) {
	payload, err := safefile.Verify(rest)
	if err != nil {
		return nil, err
	}
	br := bytes.NewReader(payload)
	p, err := readPlanBody(br)
	if err != nil {
		return nil, err
	}
	if br.Len() != 0 {
		return nil, fmt.Errorf("corrupt plan: %d trailing bytes after body", br.Len())
	}
	return p, nil
}

// writePlanBody serializes everything after the magic: key, shape,
// arrays.
func writePlanBody(w io.Writer, p *Plan) error {
	if err := safefile.WriteString(w, p.key.Dataset); err != nil {
		return err
	}
	if err := safefile.WriteString(w, p.key.Sampler); err != nil {
		return err
	}
	scalars := []int64{
		boolInt(p.key.Reorder), int64(p.key.BatchSize), p.key.Seed,
		int64(p.key.Epochs), boolInt(p.key.Shuffle), int64(p.key.Targets),
		int64(p.key.TargetsFP), int64(p.layers), int64(p.perEpoch),
	}
	if err := binary.Write(w, binary.LittleEndian, scalars); err != nil {
		return err
	}
	for _, arr := range [][]int32{p.nodes, p.offsets, p.indices, p.blockDst} {
		if err := writeInt32s(w, arr); err != nil {
			return err
		}
	}
	for _, arr := range [][]int64{p.batchNode, p.blockOff, p.blockIdx} {
		if err := writeInt64s(w, arr); err != nil {
			return err
		}
	}
	return nil
}

func readPlanBody(r io.Reader) (*Plan, error) {
	p := &Plan{}
	var err error
	if p.key.Dataset, err = safefile.ReadString(r); err != nil {
		return nil, err
	}
	if p.key.Sampler, err = safefile.ReadString(r); err != nil {
		return nil, err
	}
	scalars := make([]int64, 9)
	if err := binary.Read(r, binary.LittleEndian, scalars); err != nil {
		return nil, err
	}
	p.key.Reorder = scalars[0] != 0
	p.key.BatchSize = int(scalars[1])
	p.key.Seed = scalars[2]
	p.key.Epochs = int(scalars[3])
	p.key.Shuffle = scalars[4] != 0
	p.key.Targets = int(scalars[5])
	p.key.TargetsFP = uint64(scalars[6])
	p.layers = int(scalars[7])
	p.perEpoch = int(scalars[8])
	if p.layers < 1 || p.perEpoch < 1 || p.key.Epochs < 1 {
		return nil, fmt.Errorf("corrupt plan shape layers=%d perEpoch=%d epochs=%d", p.layers, p.perEpoch, p.key.Epochs)
	}
	for _, dst := range []*[]int32{&p.nodes, &p.offsets, &p.indices, &p.blockDst} {
		if *dst, err = readInt32s(r); err != nil {
			return nil, err
		}
	}
	for _, dst := range []*[]int64{&p.batchNode, &p.blockOff, &p.blockIdx} {
		if *dst, err = readInt64s(r); err != nil {
			return nil, err
		}
	}
	nb := p.NumBatches()
	if len(p.batchNode) != nb+1 || len(p.blockDst) != nb*p.layers ||
		len(p.blockOff) != nb*p.layers || len(p.blockIdx) != nb*p.layers {
		return nil, fmt.Errorf("corrupt plan extents")
	}
	return p, nil
}

func boolInt(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// The plan's array fields can legitimately reach billions of entries at
// paper scale, so they keep a wider read bound (1<<34) than the shared
// safefile codec allows.

func writeInt32s(w io.Writer, arr []int32) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(arr))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, arr)
}

func readInt32s(r io.Reader) ([]int32, error) {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<34 {
		return nil, fmt.Errorf("corrupt array length %d", n)
	}
	arr := make([]int32, n)
	if err := binary.Read(r, binary.LittleEndian, arr); err != nil {
		return nil, err
	}
	return arr, nil
}

func writeInt64s(w io.Writer, arr []int64) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(arr))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, arr)
}

func readInt64s(r io.Reader) ([]int64, error) {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<34 {
		return nil, fmt.Errorf("corrupt array length %d", n)
	}
	arr := make([]int64, n)
	if err := binary.Read(r, binary.LittleEndian, arr); err != nil {
		return nil, err
	}
	return arr, nil
}
