package plan

import (
	"bufio"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/sample"
)

func compileTestPlan(t *testing.T) *Plan {
	t.Helper()
	g := testGraph(t)
	targets := testTargets(300)
	smp := &sample.NodeWise{Fanouts: []int{5, 3}}
	key := KeyFor("test-ds", false, smp, 64, 9, 2, true, targets)
	pl, err := Compile(g, smp, key, targets)
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func saveTestPlan(t *testing.T, pl *Plan) (path string, data []byte) {
	t.Helper()
	path = filepath.Join(t.TempDir(), "p.plan")
	if err := SaveFile(path, pl); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return path, data
}

// TestV2RejectsEveryBitFlip: the CRC-64 footer must catch a single bit
// flip anywhere — header, body, or the footer itself.
func TestV2RejectsEveryBitFlip(t *testing.T) {
	pl := compileTestPlan(t)
	_, data := saveTestPlan(t, pl)
	bad := filepath.Join(t.TempDir(), "bad.plan")
	// One flipped byte per region: magic, early body, mid body, last body
	// byte, and each half of the footer.
	positions := []int{0, 9, len(data) / 2, len(data) - 9, len(data) - 8, len(data) - 1}
	for _, pos := range positions {
		mut := append([]byte(nil), data...)
		mut[pos] ^= 0x10
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(bad); err == nil {
			t.Errorf("bit flip at byte %d of %d loaded without error", pos, len(data))
		}
	}
}

// TestV2RejectsTruncation: any prefix of a v2 file fails cleanly (the
// checksum cannot match a shortened body).
func TestV2RejectsTruncation(t *testing.T) {
	pl := compileTestPlan(t)
	_, data := saveTestPlan(t, pl)
	bad := filepath.Join(t.TempDir(), "trunc.plan")
	for _, n := range []int{0, 4, 8, 12, len(data) / 3, len(data) - 8, len(data) - 1} {
		if err := os.WriteFile(bad, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := LoadFile(bad); err == nil {
			t.Errorf("plan truncated to %d of %d bytes loaded without error", n, len(data))
		}
	}
	// Trailing garbage is corruption too, not slack.
	if err := os.WriteFile(bad, append(append([]byte(nil), data...), 0xAA), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(bad); err == nil {
		t.Error("plan with trailing garbage loaded without error")
	}
}

// TestReadsLegacyV1: files written in the footer-less GNAVPLN1 layout
// must keep loading bit-exactly.
func TestReadsLegacyV1(t *testing.T) {
	pl := compileTestPlan(t)
	path := filepath.Join(t.TempDir(), "v1.plan")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := bufio.NewWriter(f)
	if _, err := w.Write(planMagicV1[:]); err != nil {
		t.Fatal(err)
	}
	if err := writePlanBody(w, pl); err != nil {
		t.Fatal(err)
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatalf("legacy v1 plan rejected: %v", err)
	}
	if got.Key() != pl.Key() || got.NumBatches() != pl.NumBatches() {
		t.Fatal("legacy v1 plan changed across the roundtrip")
	}
	mbEqual(t, got.Replay(0, 0), pl.Replay(0, 0), "v1 roundtrip")
}

// TestSaveCleansUpTmpOnRenameFailure: a failed rename (here: the target
// is a directory) must not strand the .tmp file.
func TestSaveCleansUpTmpOnRenameFailure(t *testing.T) {
	pl := compileTestPlan(t)
	dir := t.TempDir()
	target := filepath.Join(dir, "is-a-dir")
	if err := os.MkdirAll(filepath.Join(target, "x"), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := SaveFile(target, pl); err == nil {
		t.Fatal("SaveFile onto a non-empty directory succeeded")
	}
	if _, err := os.Stat(target + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("tmp file stranded after failed rename: stat err = %v", err)
	}
}

// TestChaosPlanCorruptionCaughtByChecksum: an armed Corrupt fault flips
// payload bits after the CRC is computed — the write succeeds (the
// corruption is silent at save time, like real media damage), and the
// load must refuse the file.
func TestChaosPlanCorruptionCaughtByChecksum(t *testing.T) {
	defer faultinject.Reset()
	pl := compileTestPlan(t)
	path := filepath.Join(t.TempDir(), "corrupt.plan")
	faultinject.Arm(faultinject.PlanSave, faultinject.Spec{Kind: faultinject.Corrupt, Seed: 3, Bits: 2, Count: 1})
	if err := SaveFile(path, pl); err != nil {
		t.Fatalf("corrupt-armed save failed at write time: %v", err)
	}
	faultinject.Reset()
	_, err := LoadFile(path)
	if err == nil {
		t.Fatal("silently corrupted plan loaded without error")
	}
	if !strings.Contains(err.Error(), "checksum") && !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corruption surfaced as the wrong error: %v", err)
	}
}

// TestChaosPlanIOInjection: Error-kind faults at the save and load
// points surface as clean wrapped errors.
func TestChaosPlanIOInjection(t *testing.T) {
	defer faultinject.Reset()
	pl := compileTestPlan(t)
	path := filepath.Join(t.TempDir(), "p.plan")
	faultinject.Arm(faultinject.PlanSave, faultinject.Spec{Kind: faultinject.Error, Count: 1})
	if err := SaveFile(path, pl); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("save returned %v, want injected error", err)
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Fatal("injected save failure stranded a tmp file")
	}
	faultinject.Reset()
	if err := SaveFile(path, pl); err != nil {
		t.Fatal(err)
	}
	faultinject.Arm(faultinject.PlanLoad, faultinject.Spec{Kind: faultinject.Error, Count: 1})
	if _, err := LoadFile(path); !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("load returned %v, want injected error", err)
	}
	faultinject.Reset()
	if _, err := LoadFile(path); err != nil {
		t.Fatalf("plan unloadable after injected faults cleared: %v", err)
	}
}
