// Package plan compiles an epoch's sampling into a replayable artifact.
//
// Since the per-batch RNG derivation (sample.BatchRNG over (seed, epoch,
// batchIndex)), an entire training run's sampling is a pure function of
// its configuration — yet every run re-pays the sampler for it. A Plan
// materializes that function once: the compiler drives the sampler over
// the exact epoch/batch structure the live pipeline would iterate
// (sample.EpochPlan + sample.BatchRNG) and packs every mini-batch's
// layered structure into a handful of shared int32 arrays.
//
// Three consumers:
//
//   - Replay: pipeline.Config.Plan serves batches straight from the
//     packed arrays, skipping the sampler stage. Replayed batches are
//     bitwise-identical to live sampling at every prefetch depth (the
//     pipeline equivalence tests pin this under -race).
//   - Sharing: calibration probes that differ only in cache/model
//     dimensions sample identical plans; the single-flight cache
//     (Shared) compiles each unique key exactly once.
//   - Mining: VertexCounts/CountOrder extract exact per-vertex access
//     counts (the freq policy's admission order), and BatchInputs
//     exposes the exact future access order that powers the Belady
//     cache.Opt upper bound.
//
// Storage exploits the mini-batch prefix-chain invariant
// (Blocks[l+1].SrcNodes == Blocks[l].SrcNodes[:Blocks[l].DstCount], all
// prefixes of InputNodes): only InputNodes plus per-block DstCount,
// offsets and indices are stored, and blocks that share one
// offsets/indices pair (subgraph-wise sampling) are deduplicated.
// Replay reconstructs each block as a sub-slice of the immutable plan
// arrays — replayed mini-batches must be treated read-only.
package plan

import (
	"cmp"
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"iter"
	"slices"

	"gnnavigator/internal/graph"
	"gnnavigator/internal/sample"
)

// Key identifies one compiled plan: everything sampling depends on, and
// nothing it doesn't. Cache ratio/policy, bias and model dimensions are
// deliberately absent — probes differing only in those share a plan.
type Key struct {
	Dataset   string
	Reorder   bool
	Sampler   string // descriptor from SamplerDesc
	BatchSize int
	Seed      int64
	Epochs    int
	Shuffle   bool
	Targets   int    // len(targets)
	TargetsFP uint64 // FNV-1a fingerprint of the target ids
}

// String renders the key as a stable cache-map identifier.
func (k Key) String() string {
	return fmt.Sprintf("%s/reorder=%v/%s/b=%d/seed=%d/ep=%d/shuf=%v/t=%d:%016x",
		k.Dataset, k.Reorder, k.Sampler, k.BatchSize, k.Seed, k.Epochs, k.Shuffle,
		k.Targets, k.TargetsFP)
}

// SamplerDesc renders the sampling-relevant identity of a sampler — the
// knobs that change its draws for a fixed RNG. Bias state is excluded on
// purpose: plans are only compiled from unbiased samplers (a cache-aware
// bias reads live residency, which a replay cannot reproduce), and an
// unbiased NodeWise ignores its BiasStrength entirely.
func SamplerDesc(s sample.Sampler) string {
	switch t := s.(type) {
	case *sample.NodeWise:
		return fmt.Sprintf("node-wise%v", t.Fanouts)
	case *sample.LayerWise:
		return fmt.Sprintf("layer-wise%v", t.Deltas)
	case *sample.SubgraphWise:
		return fmt.Sprintf("subgraph-wise/%d/%d", t.WalkLength, t.Layers)
	}
	return s.Name()
}

// TargetsFingerprint hashes a target list (FNV-1a over little-endian
// ids) for key identity without retaining the slice.
func TargetsFingerprint(targets []int32) uint64 {
	h := fnv.New64a()
	var b [4]byte
	for _, v := range targets {
		binary.LittleEndian.PutUint32(b[:], uint32(v))
		h.Write(b[:])
	}
	return h.Sum64()
}

// KeyFor assembles the plan key for one sampling configuration.
func KeyFor(dataset string, reorder bool, smp sample.Sampler, batchSize int, seed int64, epochs int, shuffle bool, targets []int32) Key {
	return Key{
		Dataset:   dataset,
		Reorder:   reorder,
		Sampler:   SamplerDesc(smp),
		BatchSize: batchSize,
		Seed:      seed,
		Epochs:    epochs,
		Shuffle:   shuffle,
		Targets:   len(targets),
		TargetsFP: TargetsFingerprint(targets),
	}
}

// Plan is one compiled sampling run: Epochs × BatchesPerEpoch layered
// mini-batches packed into shared int32 arrays. Immutable after Compile;
// safe for concurrent replay from any number of goroutines.
type Plan struct {
	key Key

	layers   int
	perEpoch int

	// Packed batch data. nodes concatenates every batch's InputNodes;
	// offsets/indices concatenate per-block CSR segments (deduplicated
	// when consecutive blocks share them, as subgraph-wise blocks do).
	nodes, offsets, indices []int32

	// batchNode[b]..batchNode[b+1] is batch b's extent in nodes.
	batchNode []int64
	// Per (batch, layer) block k = b*layers+l: DstCount, and base
	// offsets into the shared offsets/indices arrays. A block's
	// offsets segment spans dstCount+1 entries; its indices length is
	// offsets[blockOff[k]+dstCount].
	blockDst []int32
	blockOff []int64
	blockIdx []int64
}

// Key returns the identity the plan was compiled under.
func (p *Plan) Key() Key { return p.key }

// Epochs returns the number of compiled epochs.
func (p *Plan) Epochs() int { return p.key.Epochs }

// BatchesPerEpoch returns the fixed number of batches per epoch.
func (p *Plan) BatchesPerEpoch() int { return p.perEpoch }

// NumBatches returns the total compiled batch count.
func (p *Plan) NumBatches() int { return p.key.Epochs * p.perEpoch }

// NumLayers returns the blocks per batch.
func (p *Plan) NumLayers() int { return p.layers }

// Bytes reports the packed footprint of the plan's data arrays.
func (p *Plan) Bytes() int64 {
	return int64(len(p.nodes)+len(p.offsets)+len(p.indices)+len(p.blockDst))*4 +
		int64(len(p.batchNode)+len(p.blockOff)+len(p.blockIdx))*8
}

// Compile runs the sampler once over the full (seed, epochs, targets)
// batch structure and packs the result. smp must be unbiased and is
// driven exactly as the live pipeline would drive it — sample.EpochPlan
// for the per-epoch batch lists, sample.BatchRNG per batch — so replay
// is bitwise-identical to live sampling. The key must match the
// arguments (KeyFor over the same values).
func Compile(g *graph.Graph, smp sample.Sampler, key Key, targets []int32) (*Plan, error) {
	if g == nil || smp == nil {
		return nil, fmt.Errorf("plan: need a graph and a sampler")
	}
	if key.Epochs < 1 {
		return nil, fmt.Errorf("plan: epochs %d < 1", key.Epochs)
	}
	if len(targets) == 0 {
		return nil, fmt.Errorf("plan: no target vertices")
	}
	if got := SamplerDesc(smp); got != key.Sampler {
		return nil, fmt.Errorf("plan: sampler %q does not match key %q", got, key.Sampler)
	}
	if key.Targets != len(targets) || key.TargetsFP != TargetsFingerprint(targets) {
		return nil, fmt.Errorf("plan: targets do not match key fingerprint")
	}
	L := max(smp.NumLayers(), 1)
	p := &Plan{key: key, layers: L, batchNode: []int64{0}}
	for e := 0; e < key.Epochs; e++ {
		chunks := sample.EpochPlan(key.Seed, e, targets, key.BatchSize, key.Shuffle)
		if e == 0 {
			p.perEpoch = len(chunks)
		} else if len(chunks) != p.perEpoch {
			return nil, fmt.Errorf("plan: epoch %d has %d batches, epoch 0 had %d", e, len(chunks), p.perEpoch)
		}
		for i, tg := range chunks {
			mb := smp.Sample(sample.BatchRNG(key.Seed, e, i), g, tg)
			if err := p.appendBatch(mb); err != nil {
				return nil, fmt.Errorf("plan: epoch %d batch %d: %w", e, i, err)
			}
		}
	}
	return p, nil
}

// sameSlice reports whether two slices alias the same backing segment
// (subgraph-wise blocks share one offsets/indices pair across layers).
func sameSlice(a, b []int32) bool {
	return len(a) == len(b) && (len(a) == 0 || &a[0] == &b[0])
}

// appendBatch packs one sampled mini-batch, checking the structural
// invariants replay depends on.
func (p *Plan) appendBatch(mb *sample.MiniBatch) error {
	if len(mb.Blocks) != p.layers {
		return fmt.Errorf("got %d blocks, want %d", len(mb.Blocks), p.layers)
	}
	if len(mb.InputNodes) != len(mb.Blocks[0].SrcNodes) {
		return fmt.Errorf("InputNodes not aliased to first block")
	}
	p.nodes = append(p.nodes, mb.InputNodes...)
	p.batchNode = append(p.batchNode, int64(len(p.nodes)))
	srcLen := len(mb.InputNodes)
	for l, blk := range mb.Blocks {
		if len(blk.SrcNodes) != srcLen {
			return fmt.Errorf("block %d src/dst chain broken", l)
		}
		if len(blk.Offsets) != blk.DstCount+1 || int(blk.Offsets[blk.DstCount]) != len(blk.Indices) {
			return fmt.Errorf("block %d malformed CSR", l)
		}
		p.blockDst = append(p.blockDst, int32(blk.DstCount))
		if l > 0 && sameSlice(blk.Offsets, mb.Blocks[l-1].Offsets) && sameSlice(blk.Indices, mb.Blocks[l-1].Indices) {
			k := len(p.blockOff)
			p.blockOff = append(p.blockOff, p.blockOff[k-1])
			p.blockIdx = append(p.blockIdx, p.blockIdx[k-1])
		} else {
			p.blockOff = append(p.blockOff, int64(len(p.offsets)))
			p.blockIdx = append(p.blockIdx, int64(len(p.indices)))
			p.offsets = append(p.offsets, blk.Offsets...)
			p.indices = append(p.indices, blk.Indices...)
		}
		srcLen = blk.DstCount
	}
	return nil
}

// Replay returns batch (epoch, index) as a fresh mini-batch envelope
// whose data slices alias the plan's immutable arrays.
func (p *Plan) Replay(epoch, index int) *sample.MiniBatch {
	return p.ReplayInto(&sample.MiniBatch{}, epoch, index)
}

// ReplayInto fills mb with batch (epoch, index), reusing mb's Blocks
// slice; every data slice aliases the plan's packed arrays, so the call
// performs zero allocations once mb's Blocks capacity is warm. The
// result must be treated read-only and stays valid for the plan's
// lifetime.
func (p *Plan) ReplayInto(mb *sample.MiniBatch, epoch, index int) *sample.MiniBatch {
	b := epoch*p.perEpoch + index
	L := p.layers
	if cap(mb.Blocks) < L {
		mb.Blocks = make([]sample.Block, L)
	}
	mb.Blocks = mb.Blocks[:L]
	nodes := p.nodes[p.batchNode[b]:p.batchNode[b+1]]
	srcLen := len(nodes)
	total := 0
	for l := 0; l < L; l++ {
		k := b*L + l
		dst := int(p.blockDst[k])
		off := p.offsets[p.blockOff[k] : p.blockOff[k]+int64(dst)+1 : p.blockOff[k]+int64(dst)+1]
		idxLen := int64(off[dst])
		idx := p.indices[p.blockIdx[k] : p.blockIdx[k]+idxLen : p.blockIdx[k]+idxLen]
		mb.Blocks[l] = sample.Block{SrcNodes: nodes[:srcLen], DstCount: dst, Offsets: off, Indices: idx}
		total += int(idxLen)
		srcLen = dst
	}
	last := &mb.Blocks[L-1]
	mb.Targets = last.SrcNodes[:last.DstCount]
	mb.InputNodes = nodes
	mb.NumVertices = len(nodes)
	mb.NumEdges = total
	return mb
}

// InputNodes returns batch (epoch, index)'s input vertex list (aliasing
// the plan arrays; read-only).
func (p *Plan) InputNodes(epoch, index int) []int32 {
	b := epoch*p.perEpoch + index
	return p.nodes[p.batchNode[b]:p.batchNode[b+1]]
}

// BatchInputs iterates every batch's InputNodes in (epoch, index) order
// for the first `epochs` epochs (<= 0 or beyond the compiled count means
// all). This is exactly the access stream a run's feature cache sees —
// the input to cache.BuildOptScript.
func (p *Plan) BatchInputs(epochs int) iter.Seq[[]int32] {
	n := p.NumBatches()
	if epochs > 0 && epochs < p.key.Epochs {
		n = epochs * p.perEpoch
	}
	return func(yield func([]int32) bool) {
		for b := 0; b < n; b++ {
			if !yield(p.nodes[p.batchNode[b]:p.batchNode[b+1]]) {
				return
			}
		}
	}
}

// VertexCounts returns exact per-vertex access counts over the whole
// compiled plan (every batch's InputNodes), for a vertex space of size
// numVertices.
func (p *Plan) VertexCounts(numVertices int) []int64 {
	counts := make([]int64, numVertices)
	for _, v := range p.nodes {
		counts[v]++
	}
	return counts
}

// CountOrder returns all vertices ordered by plan access count
// descending (ties by ascending id), with never-touched vertices
// appended in degree order — the freq policy's admission order, mined
// from the compiled plan instead of a throwaway replay.
func (p *Plan) CountOrder(g *graph.Graph) []int32 {
	return CountOrder(p.VertexCounts(g.NumVertices()), g)
}

// CountOrder orders vertices by access count descending (ties by
// ascending id), appending untouched vertices in g's degree order so a
// large cache still fills deterministically — the exact ordering rule
// the backend's freq policy has always used.
func CountOrder(counts []int64, g *graph.Graph) []int32 {
	order := make([]int32, 0, len(counts))
	for v := range counts {
		if counts[v] > 0 {
			order = append(order, int32(v))
		}
	}
	slices.SortFunc(order, func(a, b int32) int {
		if counts[a] != counts[b] {
			return cmp.Compare(counts[b], counts[a])
		}
		return cmp.Compare(a, b)
	})
	for _, v := range g.DegreeOrder() {
		if counts[v] == 0 {
			order = append(order, v)
		}
	}
	return order
}

// CompatibleWith checks that the plan can replace live sampling for a
// pipeline run with the given sampling parameters: everything must match
// the compiled key, except that a run may replay a prefix of the
// compiled epochs.
func (p *Plan) CompatibleWith(smp sample.Sampler, seed int64, epochs, batchSize int, shuffle bool, targets []int32) error {
	k := p.key
	if smp != nil {
		if got := SamplerDesc(smp); got != k.Sampler {
			return fmt.Errorf("plan: sampler %q != compiled %q", got, k.Sampler)
		}
	}
	if seed != k.Seed {
		return fmt.Errorf("plan: seed %d != compiled %d", seed, k.Seed)
	}
	if shuffle != k.Shuffle {
		return fmt.Errorf("plan: shuffle %v != compiled %v", shuffle, k.Shuffle)
	}
	if batchSize != k.BatchSize {
		return fmt.Errorf("plan: batch size %d != compiled %d", batchSize, k.BatchSize)
	}
	if epochs > k.Epochs {
		return fmt.Errorf("plan: run needs %d epochs, plan has %d", epochs, k.Epochs)
	}
	if len(targets) != k.Targets || TargetsFingerprint(targets) != k.TargetsFP {
		return fmt.Errorf("plan: target set does not match compiled fingerprint")
	}
	return nil
}
