package plan

import (
	"math/rand"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"gnnavigator/internal/gen"
	"gnnavigator/internal/graph"
	"gnnavigator/internal/sample"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	g, err := gen.BarabasiAlbert(rand.New(rand.NewSource(3)), 3000, 3)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testTargets(n int) []int32 {
	targets := make([]int32, n)
	for i := range targets {
		targets[i] = int32(i * 3)
	}
	return targets
}

// samplersUnderTest returns one fresh instance of each sampler family
// (fresh per call: compiling mutates sampler scratch).
func samplersUnderTest() map[string]func() sample.Sampler {
	return map[string]func() sample.Sampler{
		"node-wise":     func() sample.Sampler { return &sample.NodeWise{Fanouts: []int{6, 4}} },
		"layer-wise":    func() sample.Sampler { return &sample.LayerWise{Deltas: []int{200, 400}} },
		"subgraph-wise": func() sample.Sampler { return &sample.SubgraphWise{WalkLength: 5, Layers: 2} },
	}
}

// mbEqual compares two mini-batches field by field, value-deep.
func mbEqual(t *testing.T, got, want *sample.MiniBatch, ctx string) {
	t.Helper()
	if got.NumVertices != want.NumVertices || got.NumEdges != want.NumEdges {
		t.Fatalf("%s: sizes (%d,%d) vs (%d,%d)", ctx, got.NumVertices, got.NumEdges, want.NumVertices, want.NumEdges)
	}
	if !slices.Equal(got.InputNodes, want.InputNodes) {
		t.Fatalf("%s: InputNodes differ", ctx)
	}
	if !slices.Equal(got.Targets, want.Targets) {
		t.Fatalf("%s: Targets differ", ctx)
	}
	if len(got.Blocks) != len(want.Blocks) {
		t.Fatalf("%s: %d blocks vs %d", ctx, len(got.Blocks), len(want.Blocks))
	}
	for l := range got.Blocks {
		gb, wb := got.Blocks[l], want.Blocks[l]
		if gb.DstCount != wb.DstCount || !slices.Equal(gb.SrcNodes, wb.SrcNodes) ||
			!slices.Equal(gb.Offsets, wb.Offsets) || !slices.Equal(gb.Indices, wb.Indices) {
			t.Fatalf("%s: block %d differs", ctx, l)
		}
	}
}

// TestCompileReplayBitwise pins Replay to live sampling for every
// sampler family: the compiled plan must reproduce each (epoch, batch)
// mini-batch value-identically to driving the sampler the way the live
// pipeline does.
func TestCompileReplayBitwise(t *testing.T) {
	g := testGraph(t)
	targets := testTargets(700)
	const seed, epochs, batchSize = 11, 2, 128
	for name, mk := range samplersUnderTest() {
		t.Run(name, func(t *testing.T) {
			key := KeyFor("test-ds", false, mk(), batchSize, seed, epochs, true, targets)
			pl, err := Compile(g, mk(), key, targets)
			if err != nil {
				t.Fatal(err)
			}
			live := mk()
			for e := 0; e < epochs; e++ {
				chunks := sample.EpochPlan(seed, e, targets, batchSize, true)
				if len(chunks) != pl.BatchesPerEpoch() {
					t.Fatalf("epoch %d: %d batches, plan has %d", e, len(chunks), pl.BatchesPerEpoch())
				}
				for i, tg := range chunks {
					want := live.Sample(sample.BatchRNG(seed, e, i), g, tg)
					got := pl.Replay(e, i)
					mbEqual(t, got, want, name)
					if !slices.Equal(pl.InputNodes(e, i), want.InputNodes) {
						t.Fatalf("InputNodes(%d,%d) differs from live", e, i)
					}
				}
			}
		})
	}
}

// TestSaveLoadRoundtrip: a plan survives the disk format bit-exactly,
// and corrupt files are rejected, not mis-replayed.
func TestSaveLoadRoundtrip(t *testing.T) {
	g := testGraph(t)
	targets := testTargets(500)
	smp := &sample.NodeWise{Fanouts: []int{5, 3}}
	key := KeyFor("test-ds", true, smp, 100, 7, 2, true, targets)
	pl, err := Compile(g, smp, key, targets)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "epoch.plan")
	if err := SaveFile(path, pl); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Key() != pl.Key() {
		t.Fatalf("key changed: %+v vs %+v", got.Key(), pl.Key())
	}
	if got.Bytes() != pl.Bytes() || got.NumBatches() != pl.NumBatches() || got.NumLayers() != pl.NumLayers() {
		t.Fatal("shape changed across the roundtrip")
	}
	for e := 0; e < pl.Epochs(); e++ {
		for i := 0; i < pl.BatchesPerEpoch(); i++ {
			mbEqual(t, got.Replay(e, i), pl.Replay(e, i), "roundtrip")
		}
	}
	// Truncation must fail loudly.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(t.TempDir(), "trunc.plan")
	if err := os.WriteFile(trunc, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(trunc); err == nil {
		t.Error("truncated plan loaded without error")
	}
	garbled := filepath.Join(t.TempDir(), "garbled.plan")
	data[0] ^= 0xff
	if err := os.WriteFile(garbled, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFile(garbled); err == nil {
		t.Error("bad magic accepted")
	}
}

// TestCompatibleWith: every key dimension mismatch is rejected; the one
// sanctioned relaxation is replaying an epoch prefix.
func TestCompatibleWith(t *testing.T) {
	g := testGraph(t)
	targets := testTargets(400)
	smp := func() *sample.NodeWise { return &sample.NodeWise{Fanouts: []int{6, 4}} }
	key := KeyFor("test-ds", false, smp(), 128, 11, 3, true, targets)
	pl, err := Compile(g, smp(), key, targets)
	if err != nil {
		t.Fatal(err)
	}
	ok := func(err error) {
		t.Helper()
		if err != nil {
			t.Errorf("unexpected rejection: %v", err)
		}
	}
	bad := func(err error, what string) {
		t.Helper()
		if err == nil {
			t.Errorf("%s accepted", what)
		}
	}
	ok(pl.CompatibleWith(smp(), 11, 3, 128, true, targets))
	ok(pl.CompatibleWith(smp(), 11, 2, 128, true, targets)) // epoch prefix
	ok(pl.CompatibleWith(nil, 11, 3, 128, true, targets))   // sampler identity optional
	bad(pl.CompatibleWith(smp(), 12, 3, 128, true, targets), "wrong seed")
	bad(pl.CompatibleWith(smp(), 11, 4, 128, true, targets), "more epochs than compiled")
	bad(pl.CompatibleWith(smp(), 11, 3, 256, true, targets), "wrong batch size")
	bad(pl.CompatibleWith(smp(), 11, 3, 128, false, targets), "wrong shuffle")
	bad(pl.CompatibleWith(&sample.NodeWise{Fanouts: []int{9}}, 11, 3, 128, true, targets), "wrong sampler")
	other := testTargets(400)
	other[0]++
	bad(pl.CompatibleWith(smp(), 11, 3, 128, true, other), "wrong targets")
	bad(pl.CompatibleWith(smp(), 11, 3, 128, true, other[:399]), "wrong target count")
}

// TestVertexCountsAndOrder: VertexCounts must agree with a manual tally
// of every replayed batch, and CountOrder must follow the exact legacy
// freq rule — count descending, ties ascending id, never-touched tail in
// degree order.
func TestVertexCountsAndOrder(t *testing.T) {
	g := testGraph(t)
	targets := testTargets(300)
	smp := func() *sample.NodeWise { return &sample.NodeWise{Fanouts: []int{4, 3}} }
	key := KeyFor("test-ds", false, smp(), 64, 5, 2, true, targets)
	pl, err := Compile(g, smp(), key, targets)
	if err != nil {
		t.Fatal(err)
	}
	manual := make([]int64, g.NumVertices())
	for e := 0; e < pl.Epochs(); e++ {
		for i := 0; i < pl.BatchesPerEpoch(); i++ {
			for _, v := range pl.InputNodes(e, i) {
				manual[v]++
			}
		}
	}
	counts := pl.VertexCounts(g.NumVertices())
	if !slices.Equal(counts, manual) {
		t.Fatal("VertexCounts disagrees with a manual tally")
	}
	order := pl.CountOrder(g)
	if len(order) != g.NumVertices() {
		t.Fatalf("order covers %d of %d vertices", len(order), g.NumVertices())
	}
	seen := make([]bool, g.NumVertices())
	touched := 0
	for _, v := range order {
		if seen[v] {
			t.Fatalf("vertex %d appears twice", v)
		}
		seen[v] = true
		if counts[v] > 0 {
			touched++
		}
	}
	for i := 1; i < touched; i++ {
		a, b := order[i-1], order[i]
		if counts[a] < counts[b] || (counts[a] == counts[b] && a > b) {
			t.Fatalf("order[%d..%d] = %d,%d violates (count desc, id asc): counts %d,%d",
				i-1, i, a, b, counts[a], counts[b])
		}
	}
	// The untouched tail is the degree order filtered to untouched ids.
	var wantTail []int32
	for _, v := range g.DegreeOrder() {
		if counts[v] == 0 {
			wantTail = append(wantTail, v)
		}
	}
	if !slices.Equal(order[touched:], wantTail) {
		t.Fatal("untouched tail is not in degree order")
	}
}

// TestBatchInputsPrefix: BatchInputs(epochs) yields exactly the first
// epochs × BatchesPerEpoch input lists — the access stream a prefix
// replay's cache sees.
func TestBatchInputsPrefix(t *testing.T) {
	g := testGraph(t)
	targets := testTargets(300)
	smp := func() *sample.NodeWise { return &sample.NodeWise{Fanouts: []int{4}} }
	key := KeyFor("test-ds", false, smp(), 64, 5, 3, true, targets)
	pl, err := Compile(g, smp(), key, targets)
	if err != nil {
		t.Fatal(err)
	}
	for _, epochs := range []int{1, 2, 3, 0, 9} {
		want := pl.NumBatches()
		if epochs > 0 && epochs < pl.Epochs() {
			want = epochs * pl.BatchesPerEpoch()
		}
		n := 0
		for nodes := range pl.BatchInputs(epochs) {
			e, i := n/pl.BatchesPerEpoch(), n%pl.BatchesPerEpoch()
			if !slices.Equal(nodes, pl.InputNodes(e, i)) {
				t.Fatalf("epochs=%d batch %d: stream diverges from InputNodes", epochs, n)
			}
			n++
		}
		if n != want {
			t.Fatalf("epochs=%d yielded %d batches, want %d", epochs, n, want)
		}
	}
}

// TestSharedSingleFlight: one compile per unique key, hits for every
// repeat, and failure is not cached.
func TestSharedSingleFlight(t *testing.T) {
	g := testGraph(t)
	targets := testTargets(200)
	smp := func() *sample.NodeWise { return &sample.NodeWise{Fanouts: []int{3}} }
	keyA := KeyFor("test-shared-a", false, smp(), 64, 21, 1, true, targets)
	keyB := KeyFor("test-shared-b", false, smp(), 64, 21, 1, true, targets)
	ResetCounters()
	a1, err := Shared(g, smp(), keyA, targets)
	if err != nil {
		t.Fatal(err)
	}
	a2, err := Shared(g, smp(), keyA, targets)
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Error("same key returned distinct plans")
	}
	if _, err := Shared(g, smp(), keyB, targets); err != nil {
		t.Fatal(err)
	}
	if c, h := Compiles(), CacheHits(); c != 2 || h != 1 {
		t.Errorf("counters (compiles=%d, hits=%d), want (2, 1)", c, h)
	}
	// A failing compile (mismatched key) must not poison the cell.
	badKey := KeyFor("test-shared-c", false, smp(), 64, 21, 1, true, targets)
	badKey.TargetsFP++
	if _, err := Shared(g, smp(), badKey, targets); err == nil {
		t.Fatal("mismatched fingerprint compiled")
	}
	fixed := KeyFor("test-shared-c", false, smp(), 64, 21, 1, true, targets)
	if _, err := Shared(g, smp(), fixed, targets); err != nil {
		t.Errorf("retry after failed compile: %v", err)
	}
}
