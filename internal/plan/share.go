package plan

import (
	"sync"
	"sync/atomic"

	"gnnavigator/internal/graph"
	"gnnavigator/internal/sample"
)

// Single-flight plan cache (the estimator's flightCell idiom): the
// Step-1 calibration fan-out runs many probes whose sampling keys
// collide — same dataset, sampler, batch size, seed and epochs, varying
// only cache/model knobs — and each unique key must be compiled exactly
// once, with concurrent probes for the same key blocking on that single
// compile rather than duplicating it. Only successful compiles are
// cached; a failed compile is retried by the next caller.

// planCell single-flights one key's compilation.
type planCell struct {
	mu   sync.Mutex
	plan *Plan
}

var (
	sharedMu sync.Mutex
	shared   = map[string]*planCell{}

	compileCount atomic.Int64
	hitCount     atomic.Int64
)

// Shared returns the compiled plan for key, compiling it at most once
// per process. smp is consumed only when this call performs the compile
// (it must be a fresh, unbiased sampler — compiling mutates its
// scratch), so concurrent callers may each pass their own.
func Shared(g *graph.Graph, smp sample.Sampler, key Key, targets []int32) (*Plan, error) {
	sharedMu.Lock()
	cell, ok := shared[key.String()]
	if !ok {
		cell = &planCell{}
		shared[key.String()] = cell
	}
	sharedMu.Unlock()

	cell.mu.Lock()
	defer cell.mu.Unlock()
	if cell.plan != nil {
		hitCount.Add(1)
		return cell.plan, nil
	}
	p, err := Compile(g, smp, key, targets)
	if err != nil {
		return nil, err
	}
	compileCount.Add(1)
	cell.plan = p
	return p, nil
}

// Compiles reports how many plans Shared has compiled since the last
// ResetCounters — the "each unique plan sampled exactly once" proof the
// plan-bench and the calibration-sharing tests assert on.
func Compiles() int64 { return compileCount.Load() }

// CacheHits reports how many Shared calls were served from an already
// compiled plan since the last ResetCounters.
func CacheHits() int64 { return hitCount.Load() }

// ResetCounters zeroes the Compiles/CacheHits counters (the compiled
// plans themselves stay cached).
func ResetCounters() {
	compileCount.Store(0)
	hitCount.Store(0)
}
