// Package regress is a small from-scratch regression toolkit: ridge
// regression, CART regression trees, random forests and kNN, plus the
// R²/MSE/MAE metrics the paper reports in Table 2. The gray-box estimator
// uses these as the "black-box" halves of its predictions; the pure
// decision-tree baseline of Fig. 5 comes from here too.
package regress

import (
	"cmp"
	"fmt"
	"math"
	"math/rand"
	"slices"
)

// Regressor is a trainable scalar-output model.
type Regressor interface {
	// Fit trains on rows X (each a feature vector) and targets y.
	Fit(X [][]float64, y []float64) error
	// Predict returns the estimate for one feature vector.
	Predict(x []float64) float64
}

// checkXY validates training data shape.
func checkXY(X [][]float64, y []float64) (nFeat int, err error) {
	if len(X) == 0 || len(X) != len(y) {
		return 0, fmt.Errorf("regress: bad training shape: %d rows, %d targets", len(X), len(y))
	}
	nFeat = len(X[0])
	if nFeat == 0 {
		return 0, fmt.Errorf("regress: zero-width features")
	}
	for i, row := range X {
		if len(row) != nFeat {
			return 0, fmt.Errorf("regress: row %d has %d features, want %d", i, len(row), nFeat)
		}
	}
	return nFeat, nil
}

// --- ridge regression --------------------------------------------------------

// Ridge is linear least squares with L2 regularization and an intercept.
type Ridge struct {
	Lambda float64
	// W holds the learned weights; the last entry is the intercept.
	W []float64
}

// Fit solves (XᵀX + λI)w = Xᵀy by Gaussian elimination with partial
// pivoting (the intercept column is not regularized).
func (r *Ridge) Fit(X [][]float64, y []float64) error {
	nFeat, err := checkXY(X, y)
	if err != nil {
		return err
	}
	d := nFeat + 1 // + intercept
	// Build normal equations.
	a := make([][]float64, d)
	for i := range a {
		a[i] = make([]float64, d+1)
	}
	row := make([]float64, d)
	for n, x := range X {
		copy(row, x)
		row[d-1] = 1
		for i := 0; i < d; i++ {
			for j := 0; j < d; j++ {
				a[i][j] += row[i] * row[j]
			}
			a[i][d] += row[i] * y[n]
		}
	}
	for i := 0; i < nFeat; i++ { // do not regularize intercept
		a[i][i] += r.Lambda
	}
	// Gaussian elimination with partial pivoting.
	for col := 0; col < d; col++ {
		pivot := col
		for rr := col + 1; rr < d; rr++ {
			if math.Abs(a[rr][col]) > math.Abs(a[pivot][col]) {
				pivot = rr
			}
		}
		a[col], a[pivot] = a[pivot], a[col]
		p := a[col][col]
		if math.Abs(p) < 1e-12 {
			// Singular direction; skip (weight stays 0 after back-subst).
			continue
		}
		for rr := 0; rr < d; rr++ {
			if rr == col {
				continue
			}
			f := a[rr][col] / p
			for cc := col; cc <= d; cc++ {
				a[rr][cc] -= f * a[col][cc]
			}
		}
	}
	r.W = make([]float64, d)
	for i := 0; i < d; i++ {
		if math.Abs(a[i][i]) > 1e-12 {
			r.W[i] = a[i][d] / a[i][i]
		}
	}
	return nil
}

// Predict implements Regressor.
func (r *Ridge) Predict(x []float64) float64 {
	if r.W == nil {
		return 0
	}
	var s float64
	for i, v := range x {
		if i < len(r.W)-1 {
			s += r.W[i] * v
		}
	}
	return s + r.W[len(r.W)-1]
}

// --- CART regression tree -----------------------------------------------------

// Tree is a CART regression tree split on variance reduction.
type Tree struct {
	MaxDepth      int // default 8
	MinLeaf       int // default 3
	root          *treeNode
	featureSubset int // 0 = all; used by RandomForest
	rng           *rand.Rand
}

type treeNode struct {
	feature     int
	threshold   float64
	left, right *treeNode
	value       float64
	leaf        bool
}

// Fit implements Regressor.
func (t *Tree) Fit(X [][]float64, y []float64) error {
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	if t.MaxDepth == 0 {
		t.MaxDepth = 8
	}
	if t.MinLeaf == 0 {
		t.MinLeaf = 3
	}
	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	t.root = t.build(X, y, idx, 0)
	return nil
}

func mean(y []float64, idx []int) float64 {
	var s float64
	for _, i := range idx {
		s += y[i]
	}
	return s / float64(len(idx))
}

func sse(y []float64, idx []int) float64 {
	m := mean(y, idx)
	var s float64
	for _, i := range idx {
		d := y[i] - m
		s += d * d
	}
	return s
}

func (t *Tree) build(X [][]float64, y []float64, idx []int, depth int) *treeNode {
	if depth >= t.MaxDepth || len(idx) < 2*t.MinLeaf {
		return &treeNode{leaf: true, value: mean(y, idx)}
	}
	nFeat := len(X[0])
	features := make([]int, nFeat)
	for i := range features {
		features[i] = i
	}
	if t.featureSubset > 0 && t.featureSubset < nFeat && t.rng != nil {
		t.rng.Shuffle(nFeat, func(i, j int) { features[i], features[j] = features[j], features[i] })
		features = features[:t.featureSubset]
	}
	parentSSE := sse(y, idx)
	bestGain := 1e-9
	bestFeat, bestThr := -1, 0.0
	sorted := make([]int, len(idx))
	for _, f := range features {
		copy(sorted, idx)
		slices.SortFunc(sorted, func(a, b int) int { return cmp.Compare(X[a][f], X[b][f]) })
		// Prefix sums for O(n) split scan.
		var sumL, sqL float64
		var sumT, sqT float64
		for _, i := range sorted {
			sumT += y[i]
			sqT += y[i] * y[i]
		}
		for k := 0; k < len(sorted)-1; k++ {
			i := sorted[k]
			sumL += y[i]
			sqL += y[i] * y[i]
			if X[sorted[k]][f] == X[sorted[k+1]][f] {
				continue // cannot split between equal values
			}
			nL := float64(k + 1)
			nR := float64(len(sorted) - k - 1)
			if int(nL) < t.MinLeaf || int(nR) < t.MinLeaf {
				continue
			}
			sseL := sqL - sumL*sumL/nL
			sumR := sumT - sumL
			sseR := (sqT - sqL) - sumR*sumR/nR
			gain := parentSSE - sseL - sseR
			if gain > bestGain {
				bestGain = gain
				bestFeat = f
				bestThr = (X[sorted[k]][f] + X[sorted[k+1]][f]) / 2
			}
		}
	}
	if bestFeat < 0 {
		return &treeNode{leaf: true, value: mean(y, idx)}
	}
	var left, right []int
	for _, i := range idx {
		if X[i][bestFeat] <= bestThr {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &treeNode{
		feature:   bestFeat,
		threshold: bestThr,
		left:      t.build(X, y, left, depth+1),
		right:     t.build(X, y, right, depth+1),
	}
}

// Predict implements Regressor.
func (t *Tree) Predict(x []float64) float64 {
	n := t.root
	if n == nil {
		return 0
	}
	for !n.leaf {
		if x[n.feature] <= n.threshold {
			n = n.left
		} else {
			n = n.right
		}
	}
	return n.value
}

// --- random forest ------------------------------------------------------------

// Forest is a bagged ensemble of CART trees with feature subsampling.
type Forest struct {
	Trees    int // default 30
	MaxDepth int // default 10
	MinLeaf  int // default 2
	Seed     int64

	members []*Tree
}

// Fit implements Regressor.
func (f *Forest) Fit(X [][]float64, y []float64) error {
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	if f.Trees == 0 {
		f.Trees = 30
	}
	if f.MaxDepth == 0 {
		f.MaxDepth = 10
	}
	if f.MinLeaf == 0 {
		f.MinLeaf = 2
	}
	rng := rand.New(rand.NewSource(f.Seed + 1))
	nFeat := len(X[0])
	subset := nFeat
	if nFeat > 3 {
		subset = (2*nFeat + 2) / 3
	}
	f.members = f.members[:0]
	n := len(X)
	for k := 0; k < f.Trees; k++ {
		// Bootstrap sample.
		bx := make([][]float64, n)
		by := make([]float64, n)
		for i := 0; i < n; i++ {
			j := rng.Intn(n)
			bx[i] = X[j]
			by[i] = y[j]
		}
		tr := &Tree{
			MaxDepth: f.MaxDepth, MinLeaf: f.MinLeaf,
			featureSubset: subset,
			rng:           rand.New(rand.NewSource(f.Seed + int64(k)*7919)),
		}
		if err := tr.Fit(bx, by); err != nil {
			return err
		}
		f.members = append(f.members, tr)
	}
	return nil
}

// Predict implements Regressor.
func (f *Forest) Predict(x []float64) float64 {
	if len(f.members) == 0 {
		return 0
	}
	var s float64
	for _, t := range f.members {
		s += t.Predict(x)
	}
	return s / float64(len(f.members))
}

// --- kNN ------------------------------------------------------------------------

// KNN is a k-nearest-neighbor regressor with inverse-distance weighting
// over standardized features.
type KNN struct {
	K int // default 5

	x      [][]float64
	y      []float64
	scaler *Scaler
}

// Fit implements Regressor.
func (k *KNN) Fit(X [][]float64, y []float64) error {
	if _, err := checkXY(X, y); err != nil {
		return err
	}
	if k.K == 0 {
		k.K = 5
	}
	k.scaler = NewScaler(X)
	k.x = make([][]float64, len(X))
	for i, row := range X {
		k.x[i] = k.scaler.Apply(row)
	}
	k.y = append([]float64(nil), y...)
	return nil
}

// Predict implements Regressor.
func (k *KNN) Predict(x []float64) float64 {
	if len(k.x) == 0 {
		return 0
	}
	q := k.scaler.Apply(x)
	type nb struct {
		d float64
		y float64
	}
	nbs := make([]nb, len(k.x))
	for i, row := range k.x {
		var d float64
		for j := range row {
			diff := row[j] - q[j]
			d += diff * diff
		}
		nbs[i] = nb{d, k.y[i]}
	}
	slices.SortFunc(nbs, func(a, b nb) int { return cmp.Compare(a.d, b.d) })
	kk := k.K
	if kk > len(nbs) {
		kk = len(nbs)
	}
	var num, den float64
	for i := 0; i < kk; i++ {
		w := 1 / (nbs[i].d + 1e-9)
		num += w * nbs[i].y
		den += w
	}
	return num / den
}

// --- scaling, splitting, metrics ---------------------------------------------

// Scaler standardizes features to zero mean / unit variance.
type Scaler struct {
	Mean, Std []float64
}

// NewScaler computes per-feature statistics over X.
func NewScaler(X [][]float64) *Scaler {
	n := len(X)
	d := len(X[0])
	s := &Scaler{Mean: make([]float64, d), Std: make([]float64, d)}
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	for j := range s.Mean {
		s.Mean[j] /= float64(n)
	}
	for _, row := range X {
		for j, v := range row {
			diff := v - s.Mean[j]
			s.Std[j] += diff * diff
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / float64(n))
		if s.Std[j] < 1e-12 {
			s.Std[j] = 1
		}
	}
	return s
}

// Apply returns the standardized copy of x.
func (s *Scaler) Apply(x []float64) []float64 {
	out := make([]float64, len(x))
	for j, v := range x {
		out[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return out
}

// Split partitions (X, y) into train/test with the given test fraction,
// shuffled by seed.
func Split(X [][]float64, y []float64, testFraction float64, seed int64) (trX [][]float64, trY []float64, teX [][]float64, teY []float64) {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(len(X))
	nTest := int(testFraction * float64(len(X)))
	for i, j := range idx {
		if i < nTest {
			teX = append(teX, X[j])
			teY = append(teY, y[j])
		} else {
			trX = append(trX, X[j])
			trY = append(trY, y[j])
		}
	}
	return
}

// MSE returns the mean squared error.
func MSE(pred, truth []float64) float64 {
	var s float64
	for i := range pred {
		d := pred[i] - truth[i]
		s += d * d
	}
	return s / float64(len(pred))
}

// MAE returns the mean absolute error.
func MAE(pred, truth []float64) float64 {
	var s float64
	for i := range pred {
		s += math.Abs(pred[i] - truth[i])
	}
	return s / float64(len(pred))
}

// R2 returns the coefficient of determination (1 = perfect; can be
// negative for models worse than predicting the mean).
func R2(pred, truth []float64) float64 {
	var m float64
	for _, v := range truth {
		m += v
	}
	m /= float64(len(truth))
	var ssRes, ssTot float64
	for i := range truth {
		d := truth[i] - pred[i]
		ssRes += d * d
		t := truth[i] - m
		ssTot += t * t
	}
	if ssTot < 1e-12 {
		if ssRes < 1e-12 {
			return 1
		}
		return 0
	}
	return 1 - ssRes/ssTot
}

// PredictBatch maps r.Predict over rows.
func PredictBatch(r Regressor, X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = r.Predict(x)
	}
	return out
}
