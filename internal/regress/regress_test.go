package regress

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// linearData draws y = 3x0 - 2x1 + 1 + noise.
func linearData(rng *rand.Rand, n int, noise float64) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x0, x1 := rng.NormFloat64(), rng.NormFloat64()
		X[i] = []float64{x0, x1}
		y[i] = 3*x0 - 2*x1 + 1 + rng.NormFloat64()*noise
	}
	return X, y
}

// stepData draws y = 5 if x0 > 0 else -5 (tree-friendly, linear-hostile).
func stepData(rng *rand.Rand, n int) ([][]float64, []float64) {
	X := make([][]float64, n)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		x0 := rng.NormFloat64()
		X[i] = []float64{x0, rng.NormFloat64()}
		if x0 > 0 {
			y[i] = 5
		} else {
			y[i] = -5
		}
	}
	return X, y
}

func TestCheckXYErrors(t *testing.T) {
	r := &Ridge{}
	if err := r.Fit(nil, nil); err == nil {
		t.Error("empty training set accepted")
	}
	if err := r.Fit([][]float64{{1, 2}}, []float64{1, 2}); err == nil {
		t.Error("row/target mismatch accepted")
	}
	if err := r.Fit([][]float64{{1, 2}, {1}}, []float64{1, 2}); err == nil {
		t.Error("ragged rows accepted")
	}
	if err := r.Fit([][]float64{{}}, []float64{1}); err == nil {
		t.Error("zero-width features accepted")
	}
}

func TestRidgeRecoversLinear(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	X, y := linearData(rng, 200, 0.01)
	r := &Ridge{Lambda: 1e-6}
	if err := r.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.W[0]-3) > 0.05 || math.Abs(r.W[1]+2) > 0.05 || math.Abs(r.W[2]-1) > 0.05 {
		t.Errorf("weights = %v, want [3 -2 1]", r.W)
	}
	teX, teY := linearData(rng, 50, 0.01)
	if r2 := R2(PredictBatch(r, teX), teY); r2 < 0.99 {
		t.Errorf("ridge R2 = %v on clean linear data", r2)
	}
}

func TestRidgeHandlesConstantFeature(t *testing.T) {
	// A constant column makes the normal matrix singular without pivots.
	X := [][]float64{{1, 7}, {2, 7}, {3, 7}, {4, 7}}
	y := []float64{2, 4, 6, 8}
	r := &Ridge{Lambda: 1e-9}
	if err := r.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Predict([]float64{5, 7})-10) > 0.2 {
		t.Errorf("Predict = %v, want ~10", r.Predict([]float64{5, 7}))
	}
}

func TestTreeFitsStep(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	X, y := stepData(rng, 300)
	tr := &Tree{MaxDepth: 4}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	teX, teY := stepData(rng, 100)
	if r2 := R2(PredictBatch(tr, teX), teY); r2 < 0.95 {
		t.Errorf("tree R2 = %v on step data", r2)
	}
	// A linear model cannot beat the tree here.
	lin := &Ridge{Lambda: 1e-6}
	if err := lin.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if r2lin := R2(PredictBatch(lin, teX), teY); r2lin > 0.9 {
		t.Errorf("ridge unexpectedly strong on step data: %v", r2lin)
	}
}

func TestTreeRespectsMinLeaf(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	y := []float64{1, 2, 3, 4}
	tr := &Tree{MaxDepth: 10, MinLeaf: 4}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// With MinLeaf = n the tree must be a single leaf predicting the mean.
	for _, x := range X {
		if got := tr.Predict(x); math.Abs(got-2.5) > 1e-9 {
			t.Errorf("Predict(%v) = %v, want 2.5", x, got)
		}
	}
}

func TestForestBeatsSingleTreeOnNoisy(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gen := func(n int) ([][]float64, []float64) {
		X := make([][]float64, n)
		y := make([]float64, n)
		for i := 0; i < n; i++ {
			a, b := rng.NormFloat64(), rng.NormFloat64()
			X[i] = []float64{a, b}
			y[i] = math.Sin(a)*2 + b*b + rng.NormFloat64()*0.4
		}
		return X, y
	}
	X, y := gen(400)
	teX, teY := gen(150)
	tr := &Tree{MaxDepth: 12, MinLeaf: 1}
	if err := tr.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	fo := &Forest{Trees: 25, MaxDepth: 12, MinLeaf: 1, Seed: 9}
	if err := fo.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	mseTree := MSE(PredictBatch(tr, teX), teY)
	mseForest := MSE(PredictBatch(fo, teX), teY)
	if mseForest >= mseTree {
		t.Errorf("forest MSE %v >= tree MSE %v", mseForest, mseTree)
	}
}

func TestKNNInterpolates(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	y := []float64{0, 10, 20, 30}
	k := &KNN{K: 2}
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	got := k.Predict([]float64{1.5})
	if got < 10 || got > 20 {
		t.Errorf("Predict(1.5) = %v, want in [10,20]", got)
	}
	// Exact training point should be very close to its label.
	if math.Abs(k.Predict([]float64{2})-20) > 1 {
		t.Errorf("Predict(2) = %v, want ~20", k.Predict([]float64{2}))
	}
}

func TestScaler(t *testing.T) {
	X := [][]float64{{1, 100}, {3, 300}}
	s := NewScaler(X)
	a := s.Apply([]float64{1, 100})
	b := s.Apply([]float64{3, 300})
	for j := 0; j < 2; j++ {
		if math.Abs(a[j]+1) > 1e-9 || math.Abs(b[j]-1) > 1e-9 {
			t.Errorf("standardized = %v, %v; want ±1", a, b)
		}
	}
}

func TestSplitPartitions(t *testing.T) {
	X := make([][]float64, 100)
	y := make([]float64, 100)
	for i := range X {
		X[i] = []float64{float64(i)}
		y[i] = float64(i)
	}
	trX, trY, teX, teY := Split(X, y, 0.25, 7)
	if len(teX) != 25 || len(trX) != 75 {
		t.Fatalf("split sizes %d/%d", len(trX), len(teX))
	}
	if len(trY) != 75 || len(teY) != 25 {
		t.Fatalf("target sizes %d/%d", len(trY), len(teY))
	}
	seen := map[float64]bool{}
	for _, x := range trX {
		seen[x[0]] = true
	}
	for _, x := range teX {
		if seen[x[0]] {
			t.Fatalf("value %v in both partitions", x[0])
		}
	}
}

func TestMetricsKnownValues(t *testing.T) {
	pred := []float64{1, 2, 3}
	truth := []float64{1, 2, 5}
	if got := MSE(pred, truth); math.Abs(got-4.0/3) > 1e-12 {
		t.Errorf("MSE = %v, want 4/3", got)
	}
	if got := MAE(pred, truth); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("MAE = %v, want 2/3", got)
	}
	if got := R2(truth, truth); got != 1 {
		t.Errorf("perfect R2 = %v, want 1", got)
	}
	// Predicting the mean gives R2 = 0.
	m := (1.0 + 2 + 5) / 3
	if got := R2([]float64{m, m, m}, truth); math.Abs(got) > 1e-12 {
		t.Errorf("mean-prediction R2 = %v, want 0", got)
	}
}

// Property: R2 of predictions equal to truth is always 1; adding noise
// can only reduce it.
func TestR2Property(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(50)
		truth := make([]float64, n)
		for i := range truth {
			truth[i] = rng.NormFloat64() * 10
		}
		if R2(truth, truth) != 1 {
			return false
		}
		noisy := make([]float64, n)
		for i := range noisy {
			noisy[i] = truth[i] + rng.NormFloat64()
		}
		return R2(noisy, truth) <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: tree predictions are always within [min(y), max(y)].
func TestTreePredictionBoundedProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		X := make([][]float64, n)
		y := make([]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := 0; i < n; i++ {
			X[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
			y[i] = rng.NormFloat64() * 5
			if y[i] < lo {
				lo = y[i]
			}
			if y[i] > hi {
				hi = y[i]
			}
		}
		tr := &Tree{MaxDepth: 6}
		if tr.Fit(X, y) != nil {
			return false
		}
		for trial := 0; trial < 20; trial++ {
			p := tr.Predict([]float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestUnfittedPredictZero(t *testing.T) {
	if (&Ridge{}).Predict([]float64{1}) != 0 {
		t.Error("unfitted ridge nonzero")
	}
	if (&Tree{}).Predict([]float64{1}) != 0 {
		t.Error("unfitted tree nonzero")
	}
	if (&Forest{}).Predict([]float64{1}) != 0 {
		t.Error("unfitted forest nonzero")
	}
	if (&KNN{}).Predict([]float64{1}) != 0 {
		t.Error("unfitted knn nonzero")
	}
}
