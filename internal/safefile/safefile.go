// Package safefile implements the checksummed-file discipline every
// on-disk artifact in this repo shares — epoch plans (GNAVPLN2),
// training checkpoints (GNAVCKP1) and saved models (GNAVMDL1): an
// 8-byte magic, the serialized body, and a CRC-64/ECMA checksum of the
// body as the trailing 8 bytes (little-endian). Files are written
// atomically (tmp+rename) and a failed write or rename leaves no *.tmp
// behind; on load, truncation is indistinguishable from corruption —
// both fail the checksum, never a partial parse.
//
// The checksum is computed by the caller (Checksum) before any chaos
// Mutate hook corrupts the payload, so the load-side verification is
// what must catch injected damage — see internal/faultinject.
package safefile

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc64"
	"io"
	"os"
)

// crcTable is the footer polynomial shared by every format.
var crcTable = crc64.MakeTable(crc64.ECMA)

// Checksum returns the CRC-64/ECMA footer checksum of body.
func Checksum(body []byte) uint64 { return crc64.Checksum(body, crcTable) }

// Write writes magic+payload+sum to path atomically via tmp+rename. The
// caller computes sum (Checksum) over the intact payload before handing
// the buffer to any corruption hook.
func Write(path string, magic [8]byte, payload []byte, sum uint64) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	werr := func() error {
		w := bufio.NewWriter(f)
		if _, err := w.Write(magic[:]); err != nil {
			return err
		}
		if _, err := w.Write(payload); err != nil {
			return err
		}
		if err := binary.Write(w, binary.LittleEndian, sum); err != nil {
			return err
		}
		return w.Flush()
	}()
	if werr != nil {
		f.Close()
		os.Remove(tmp)
		return werr
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// Read loads path, checks its magic, verifies the checksum footer and
// returns the body. Errors carry no path prefix — callers wrap with
// their own format context.
func Read(path string, magic [8]byte) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < len(magic)+8 {
		return nil, fmt.Errorf("truncated (%d bytes)", len(data))
	}
	var got [8]byte
	copy(got[:], data)
	if got != magic {
		return nil, fmt.Errorf("bad magic %q", got[:])
	}
	return Verify(data[8:])
}

// Verify splits rest — everything after the magic — into body and
// checksum footer, verifies the CRC over the exact body bytes, and
// returns the body. Callers that dispatch on multiple magics (the plan
// loader's version switch) read the magic themselves and hand the rest
// here.
func Verify(rest []byte) ([]byte, error) {
	if len(rest) < 8 {
		return nil, fmt.Errorf("truncated: %d bytes after header, need >= 8 for the checksum footer", len(rest))
	}
	body, footer := rest[:len(rest)-8], rest[len(rest)-8:]
	want := binary.LittleEndian.Uint64(footer)
	if got := Checksum(body); got != want {
		return nil, fmt.Errorf("checksum mismatch: file says %016x, body hashes to %016x (corrupt or truncated)", want, got)
	}
	return body, nil
}

// Length-prefixed field codec shared by the format bodies: every count
// is a little-endian int64 with a hard upper bound on read, so a
// corrupt length fails loudly instead of allocating gigabytes.

// WriteString writes a length-prefixed string.
func WriteString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// ReadString reads a string written by WriteString (bound 1<<20).
func ReadString(r io.Reader) (string, error) {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n < 0 || n > 1<<20 {
		return "", fmt.Errorf("corrupt string length %d", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}

// WriteFloats writes a length-prefixed []float64; nil and empty both
// round-trip as length 0 → nil (what AdamState uses to mean "untouched
// moments").
func WriteFloats(w io.Writer, arr []float64) error {
	if err := binary.Write(w, binary.LittleEndian, int64(len(arr))); err != nil {
		return err
	}
	return binary.Write(w, binary.LittleEndian, arr)
}

// ReadFloats reads a slice written by WriteFloats (bound 1<<32).
func ReadFloats(r io.Reader) ([]float64, error) {
	var n int64
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return nil, err
	}
	if n < 0 || n > 1<<32 {
		return nil, fmt.Errorf("corrupt array length %d", n)
	}
	if n == 0 {
		return nil, nil
	}
	arr := make([]float64, n)
	if err := binary.Read(r, binary.LittleEndian, arr); err != nil {
		return nil, err
	}
	return arr, nil
}

// WriteInt writes one little-endian int64 scalar.
func WriteInt(w io.Writer, v int64) error {
	return binary.Write(w, binary.LittleEndian, v)
}

// ReadInt reads one little-endian int64 scalar.
func ReadInt(r io.Reader) (int64, error) {
	var v int64
	err := binary.Read(r, binary.LittleEndian, &v)
	return v, err
}
