package safefile

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var testMagic = [8]byte{'T', 'E', 'S', 'T', 'M', 'A', 'G', '1'}

func TestRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	payload := []byte("the quick brown fox")
	if err := Write(path, testMagic, payload, Checksum(payload)); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("tmp file left behind after a successful write")
	}
	got, err := Read(path, testMagic)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Errorf("body round-trip: got %q, want %q", got, payload)
	}
}

func TestBadMagic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	payload := []byte("body")
	if err := Write(path, testMagic, payload, Checksum(payload)); err != nil {
		t.Fatal(err)
	}
	other := [8]byte{'O', 'T', 'H', 'E', 'R', 'M', 'G', '1'}
	if _, err := Read(path, other); err == nil || !strings.Contains(err.Error(), "bad magic") {
		t.Errorf("wrong magic accepted: %v", err)
	}
}

// TestCorruptionAndTruncation flips every byte (and truncates at every
// length) of a small file: each damaged variant must be rejected.
func TestCorruptionAndTruncation(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "blob")
	payload := []byte{1, 2, 3, 4, 5, 6, 7, 8, 9}
	if err := Write(path, testMagic, payload, Checksum(payload)); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := filepath.Join(dir, "bad")
	// Corrupt bytes past the magic (a flipped magic byte is a magic
	// error, tested above).
	for i := 8; i < len(data); i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if err := os.WriteFile(bad, mut, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(bad, testMagic); err == nil {
			t.Errorf("flipped byte %d loaded without error", i)
		}
	}
	for n := 0; n < len(data); n++ {
		if err := os.WriteFile(bad, data[:n], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Read(bad, testMagic); err == nil {
			t.Errorf("truncation to %d of %d bytes loaded without error", n, len(data))
		}
	}
}

func TestFieldCodec(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteString(&buf, "hello"); err != nil {
		t.Fatal(err)
	}
	if err := WriteInt(&buf, -42); err != nil {
		t.Fatal(err)
	}
	if err := WriteFloats(&buf, []float64{1.5, -2.25}); err != nil {
		t.Fatal(err)
	}
	if err := WriteFloats(&buf, nil); err != nil {
		t.Fatal(err)
	}
	s, err := ReadString(&buf)
	if err != nil || s != "hello" {
		t.Fatalf("string: %q, %v", s, err)
	}
	v, err := ReadInt(&buf)
	if err != nil || v != -42 {
		t.Fatalf("int: %d, %v", v, err)
	}
	fs, err := ReadFloats(&buf)
	if err != nil || len(fs) != 2 || fs[0] != 1.5 || fs[1] != -2.25 {
		t.Fatalf("floats: %v, %v", fs, err)
	}
	fs, err = ReadFloats(&buf)
	if err != nil || fs != nil {
		t.Fatalf("nil floats: %v, %v", fs, err)
	}
	if buf.Len() != 0 {
		t.Errorf("%d trailing bytes", buf.Len())
	}
}

func TestCorruptLengthRejected(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteInt(&buf, 1<<40); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadString(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("oversized string length accepted")
	}
	if _, err := ReadFloats(bytes.NewReader(buf.Bytes())); err == nil {
		t.Error("oversized float count accepted")
	}
}
