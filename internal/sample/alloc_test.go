//go:build !race

package sample

import (
	"math/rand"
	"testing"

	"gnnavigator/internal/gen"
)

// Allocation-regression bounds for the map-free batch assembly. Steady
// state (after one warm-up call grows the frontier tables and scratch), a
// Sample call may allocate only what the returned MiniBatch keeps:
//
//	node-wise, L layers:  1 (MiniBatch) + 1 (Blocks) + 3L (src/offsets/indices)
//	subgraph-wise:        1 + 1 + 3 (all blocks share one slice triple)
//
// The bounds below leave no slack at L=2 — if the hot path regrows a
// slice or rebuilds a table, these fail. Guarded !race because the race
// runtime adds bookkeeping allocations.

func allocsPerSample(t *testing.T, s Sampler, n int) float64 {
	t.Helper()
	g, err := gen.BarabasiAlbert(rand.New(rand.NewSource(10)), n, 4)
	if err != nil {
		t.Fatal(err)
	}
	tg := targets(64, n, 3)
	// One long-lived stream rather than BatchRNG per call: constructing a
	// rand.Rand allocates, and that harness cost must not count against
	// the sampler's budget.
	rng := rand.New(rand.NewSource(99))
	// Warm up: grow frontier tables and pick scratch to steady state.
	for i := 0; i < 3; i++ {
		s.Sample(rng, g, tg)
	}
	return testing.AllocsPerRun(50, func() {
		s.Sample(rng, g, tg)
	})
}

func TestNodeWiseSampleAllocBound(t *testing.T) {
	if got := allocsPerSample(t, &NodeWise{Fanouts: []int{10, 5}}, 600); got > 8 {
		t.Errorf("node-wise steady-state allocs/op = %v, want <= 8", got)
	}
}

func TestSubgraphWiseSampleAllocBound(t *testing.T) {
	if got := allocsPerSample(t, &SubgraphWise{WalkLength: 4, Layers: 2}, 600); got > 6 {
		t.Errorf("subgraph-wise steady-state allocs/op = %v, want <= 6", got)
	}
}

func TestLayerWiseSampleAllocBound(t *testing.T) {
	if got := allocsPerSample(t, &LayerWise{Deltas: []int{40, 20}}, 600); got > 8 {
		t.Errorf("layer-wise steady-state allocs/op = %v, want <= 8", got)
	}
}
