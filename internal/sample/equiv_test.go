package sample

import (
	"math/rand"
	"slices"
	"testing"

	"gnnavigator/internal/gen"
	"gnnavigator/internal/graph"
)

// equivSamplers returns (stamped, map-reference) pairs covering every
// sampler mode, including biased node-wise selection.
func equivSamplers() []struct {
	name    string
	stamped Sampler
	mapRef  Sampler
} {
	bias := func(v int32) float64 {
		if v%3 == 0 {
			return 2
		}
		return 0
	}
	mk := func(name string, s Sampler) struct {
		name    string
		stamped Sampler
		mapRef  Sampler
	} {
		return struct {
			name    string
			stamped Sampler
			mapRef  Sampler
		}{name, s, NewMapReference(s)}
	}
	return []struct {
		name    string
		stamped Sampler
		mapRef  Sampler
	}{
		mk("node-wise", &NodeWise{Fanouts: []int{5, 3}}),
		mk("node-wise-full", &NodeWise{Fanouts: []int{0}}),
		mk("node-wise-biased", &NodeWise{Fanouts: []int{4, 4}, Bias: bias, BiasStrength: 0.7}),
		mk("layer-wise", &LayerWise{Deltas: []int{40, 20}}),
		mk("subgraph-wise", &SubgraphWise{WalkLength: 4, Layers: 2}),
	}
}

func requireEqualMiniBatch(t *testing.T, name string, batch int, want, got *MiniBatch) {
	t.Helper()
	if len(want.Blocks) != len(got.Blocks) {
		t.Fatalf("%s batch %d: blocks %d != %d", name, batch, len(got.Blocks), len(want.Blocks))
	}
	// slices.Equal, not reflect.DeepEqual: the stamped path pre-sizes
	// empty slices where the map reference leaves them nil, and a
	// zero-edge block is equivalent either way.
	for l := range want.Blocks {
		w, g := &want.Blocks[l], &got.Blocks[l]
		if w.DstCount != g.DstCount ||
			!slices.Equal(w.SrcNodes, g.SrcNodes) ||
			!slices.Equal(w.Offsets, g.Offsets) ||
			!slices.Equal(w.Indices, g.Indices) {
			t.Fatalf("%s batch %d block %d diverged from the map reference", name, batch, l)
		}
	}
	if !slices.Equal(want.Targets, got.Targets) ||
		!slices.Equal(want.InputNodes, got.InputNodes) ||
		want.NumVertices != got.NumVertices || want.NumEdges != got.NumEdges {
		t.Fatalf("%s batch %d: minibatch metadata diverged", name, batch)
	}
}

// TestFrontierMatchesMapReference pins the stamped frontier path to the
// frozen map implementation, bitwise, over a stream of batches sampled
// from one stateful sampler instance (so scratch reuse across batches is
// exercised, not just the first call).
func TestFrontierMatchesMapReference(t *testing.T) {
	g, err := gen.BarabasiAlbert(rand.New(rand.NewSource(10)), 500, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, sc := range equivSamplers() {
		t.Run(sc.name, func(t *testing.T) {
			if sc.mapRef == nil {
				t.Fatalf("no map reference for %s", sc.name)
			}
			for batch := 0; batch < 25; batch++ {
				tg := targets(1+batch%40, 500, int64(batch))
				want := sc.mapRef.Sample(BatchRNG(42, 0, batch), g, tg)
				got := sc.stamped.Sample(BatchRNG(42, 0, batch), g, tg)
				if err := got.Validate(); err != nil {
					t.Fatalf("batch %d: %v", batch, err)
				}
				requireEqualMiniBatch(t, sc.name, batch, want, got)
			}
		})
	}
}

// TestHubOverlayEquivalence drives the sparse Fisher-Yates overlay hard:
// a graph whose first vertices have degree ~120 with fanout 20 puts
// every hub pick on the overlay branch (degree > 64 and > 4·fanout), and
// with 20 draws over 120 slots a draw lands on a previously displaced
// slot (the overlay-read path) many times per batch. The map reference
// shuffles a full copy, so any overlay bookkeeping bug diverges.
func TestHubOverlayEquivalence(t *testing.T) {
	const n = 400
	rng := rand.New(rand.NewSource(21))
	adj := make([][]int32, n)
	for v := 0; v < 40; v++ { // hubs
		for d := 0; d < 120; d++ {
			adj[v] = append(adj[v], int32(40+rng.Intn(n-40)))
		}
	}
	for v := 40; v < n; v++ { // periphery
		for d := 0; d < 4; d++ {
			adj[v] = append(adj[v], int32(rng.Intn(n)))
		}
	}
	g, err := graph.FromAdjList(adj)
	if err != nil {
		t.Fatal(err)
	}
	s := &NodeWise{Fanouts: []int{20, 20}}
	ref := NewMapReference(s)
	for batch := 0; batch < 50; batch++ {
		tg := make([]int32, 24)
		for i := range tg {
			tg[i] = int32((batch*24 + i) % 40) // target the hubs
		}
		want := ref.Sample(BatchRNG(5, 0, batch), g, tg)
		got := s.Sample(BatchRNG(5, 0, batch), g, tg)
		requireEqualMiniBatch(t, "hub-overlay", batch, want, got)
	}
}

// TestFrontierSurvivesGraphChange checks the frontier tables regrow
// correctly when one sampler instance is pointed at a larger graph (and
// back) mid-stream — the table length follows NumVertices, and stale
// stamps from the previous graph must never read as live.
func TestFrontierSurvivesGraphChange(t *testing.T) {
	small, err := gen.BarabasiAlbert(rand.New(rand.NewSource(1)), 120, 3)
	if err != nil {
		t.Fatal(err)
	}
	big, err := gen.BarabasiAlbert(rand.New(rand.NewSource(2)), 900, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := &NodeWise{Fanouts: []int{4, 4}}
	ref := NewMapReference(s)
	for i, g := range []*graph.Graph{small, big, small, big} {
		tg := targets(16, g.NumVertices(), int64(i))
		want := ref.Sample(BatchRNG(7, 0, i), g, tg)
		got := s.Sample(BatchRNG(7, 0, i), g, tg)
		requireEqualMiniBatch(t, "graph-change", i, want, got)
	}
}
