package sample

import (
	"math"
	"math/rand"
	"slices"

	"gnnavigator/internal/graph"
	"gnnavigator/internal/tensor"
)

// Frozen map-based batch assembly.
//
// This file preserves the pre-frontier implementation of every sampler:
// per-block `map[int32]int32` position tables, `map[int32]bool` dedup
// sets and growth-by-append index slices. It exists for two reasons:
// the old-vs-new equivalence tests pin the stamped frontier path to be
// bitwise-identical to this reference (both consume the RNG in exactly
// the same order), and `benchtab -sample-bench` measures the speedup of
// dropping it. It is reference code — do not optimize it.

// NewMapReference returns a frozen map-based sampler that consumes its
// RNG identically to s and therefore produces bitwise-identical
// mini-batches for any (rng, graph, targets). It returns nil when s is
// not one of the built-in sampler kinds.
func NewMapReference(s Sampler) Sampler {
	switch v := s.(type) {
	case *NodeWise:
		return &mapRefNodeWise{fanouts: v.Fanouts, bias: v.Bias, strength: v.BiasStrength}
	case *LayerWise:
		return &mapRefLayerWise{deltas: v.Deltas}
	case *SubgraphWise:
		return &mapRefSubgraphWise{walkLength: v.WalkLength, layers: v.Layers}
	}
	return nil
}

// mapPickScratch is the frozen pre-overlay neighbor-selection scratch:
// the uniform branch shuffles a full copy of the neighborhood (O(degree)
// per destination) where the live path's sparse Fisher-Yates overlay is
// O(fanout). Draw-for-draw the RNG consumption and the returned picks are
// identical to pickScratch.pickNeighbors.
type mapPickScratch struct {
	tmp     []int32
	weights []float64
	taken   []bool
	out     []int32
}

func (sc *mapPickScratch) pickNeighbors(rng *rand.Rand, ns []int32, fanout int, bias BiasFunc, strength float64) []int32 {
	if fanout <= 0 || fanout >= len(ns) {
		sc.tmp = tensor.Grow(sc.tmp, len(ns))
		copy(sc.tmp, ns)
		return sc.tmp
	}
	if bias == nil || strength <= 0 {
		// Partial Fisher-Yates over a scratch copy.
		sc.tmp = tensor.Grow(sc.tmp, len(ns))
		tmp := sc.tmp
		copy(tmp, ns)
		for i := 0; i < fanout; i++ {
			j := i + rng.Intn(len(tmp)-i)
			tmp[i], tmp[j] = tmp[j], tmp[i]
		}
		return tmp[:fanout]
	}
	// Weighted sampling without replacement via repeated draws.
	sc.weights = tensor.Grow(sc.weights, len(ns))
	sc.taken = tensor.Grow(sc.taken, len(ns))
	weights := sc.weights
	taken := sc.taken
	var total float64
	for i, u := range ns {
		w := 1 + strength*bias(u)
		if w < 0 {
			w = 0
		}
		weights[i] = w
		taken[i] = false
		total += w
	}
	out := tensor.Grow(sc.out, fanout)[:0]
	for len(out) < fanout && total > 1e-12 {
		r := rng.Float64() * total
		var acc float64
		for i, w := range weights {
			if taken[i] {
				continue
			}
			acc += w
			if r <= acc {
				out = append(out, ns[i])
				taken[i] = true
				total -= w
				break
			}
		}
	}
	sc.out = out[:0]
	return out
}

type mapRefNodeWise struct {
	fanouts  []int
	bias     BiasFunc
	strength float64
	scratch  mapPickScratch
}

func (s *mapRefNodeWise) Name() string   { return "node-wise/mapref" }
func (s *mapRefNodeWise) NumLayers() int { return len(s.fanouts) }

func (s *mapRefNodeWise) Sample(rng *rand.Rand, g *graph.Graph, targets []int32) *MiniBatch {
	L := len(s.fanouts)
	blocks := make([]Block, L)
	dst := dedup(targets)
	var totalEdges int
	for h := 0; h < L; h++ {
		blk := expandMap(rng, g, dst, s.fanouts[h], s.bias, s.strength, &s.scratch)
		blocks[L-1-h] = blk
		totalEdges += blk.NumEdges()
		dst = blk.SrcNodes
	}
	return &MiniBatch{
		Blocks:      blocks,
		Targets:     blocks[L-1].SrcNodes[:blocks[L-1].DstCount],
		InputNodes:  blocks[0].SrcNodes,
		NumVertices: len(blocks[0].SrcNodes),
		NumEdges:    totalEdges,
	}
}

// expandMap is the pre-frontier expand: a fresh position map per block and
// append-grown src/indices.
func expandMap(rng *rand.Rand, g *graph.Graph, dst []int32, fanout int, bias BiasFunc, biasStrength float64, sc *mapPickScratch) Block {
	srcPos := make(map[int32]int32, len(dst)*2)
	src := make([]int32, len(dst))
	copy(src, dst)
	for i, v := range dst {
		srcPos[v] = int32(i)
	}
	offsets := make([]int32, len(dst)+1)
	var indices []int32
	for i, v := range dst {
		offsets[i] = int32(len(indices))
		ns := g.Neighbors(v)
		if len(ns) == 0 {
			continue
		}
		picks := sc.pickNeighbors(rng, ns, fanout, bias, biasStrength)
		for _, u := range picks {
			pos, ok := srcPos[u]
			if !ok {
				pos = int32(len(src))
				src = append(src, u)
				srcPos[u] = pos
			}
			indices = append(indices, pos)
		}
	}
	offsets[len(dst)] = int32(len(indices))
	return Block{SrcNodes: src, DstCount: len(dst), Offsets: offsets, Indices: indices}
}

type mapRefLayerWise struct {
	deltas []int
}

func (s *mapRefLayerWise) Name() string   { return "layer-wise/mapref" }
func (s *mapRefLayerWise) NumLayers() int { return len(s.deltas) }

func (s *mapRefLayerWise) Sample(rng *rand.Rand, g *graph.Graph, targets []int32) *MiniBatch {
	L := len(s.deltas)
	blocks := make([]Block, L)
	dst := dedup(targets)
	var totalEdges int
	for h := 0; h < L; h++ {
		blk := expandLayerWiseMap(rng, g, dst, s.deltas[h])
		blocks[L-1-h] = blk
		totalEdges += blk.NumEdges()
		dst = blk.SrcNodes
	}
	return &MiniBatch{
		Blocks:      blocks,
		Targets:     blocks[L-1].SrcNodes[:blocks[L-1].DstCount],
		InputNodes:  blocks[0].SrcNodes,
		NumVertices: len(blocks[0].SrcNodes),
		NumEdges:    totalEdges,
	}
}

func expandLayerWiseMap(rng *rand.Rand, g *graph.Graph, dst []int32, delta int) Block {
	weight := make(map[int32]int)
	for _, v := range dst {
		for _, u := range g.Neighbors(v) {
			weight[u]++
		}
	}
	srcPos := make(map[int32]int32, len(dst)+delta)
	src := make([]int32, len(dst))
	copy(src, dst)
	for i, v := range dst {
		srcPos[v] = int32(i)
	}
	type cand struct {
		v   int32
		key float64
	}
	vs := make([]int32, 0, len(weight))
	for v := range weight {
		vs = append(vs, v)
	}
	slices.Sort(vs)
	cands := make([]cand, 0, len(weight))
	for _, v := range vs {
		key := math.Pow(rng.Float64(), 1/float64(weight[v]))
		cands = append(cands, cand{v, key})
	}
	if delta > len(cands) {
		delta = len(cands)
	}
	for i := 0; i < delta; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].key > cands[best].key {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	selected := make(map[int32]bool, delta)
	for i := 0; i < delta; i++ {
		selected[cands[i].v] = true
	}
	for _, v := range dst {
		selected[v] = true
	}
	offsets := make([]int32, len(dst)+1)
	var indices []int32
	for i, v := range dst {
		offsets[i] = int32(len(indices))
		for _, u := range g.Neighbors(v) {
			if !selected[u] {
				continue
			}
			pos, ok := srcPos[u]
			if !ok {
				pos = int32(len(src))
				src = append(src, u)
				srcPos[u] = pos
			}
			indices = append(indices, pos)
		}
	}
	offsets[len(dst)] = int32(len(indices))
	return Block{SrcNodes: src, DstCount: len(dst), Offsets: offsets, Indices: indices}
}

type mapRefSubgraphWise struct {
	walkLength int
	layers     int
}

func (s *mapRefSubgraphWise) Name() string   { return "subgraph-wise/mapref" }
func (s *mapRefSubgraphWise) NumLayers() int { return s.layers }

func (s *mapRefSubgraphWise) Sample(rng *rand.Rand, g *graph.Graph, targets []int32) *MiniBatch {
	roots := dedup(targets)
	inSet := make(map[int32]int32, len(roots)*(s.walkLength+1))
	nodes := make([]int32, 0, len(roots)*(s.walkLength+1))
	add := func(v int32) {
		if _, ok := inSet[v]; !ok {
			inSet[v] = int32(len(nodes))
			nodes = append(nodes, v)
		}
	}
	for _, r := range roots {
		add(r)
		cur := r
		for step := 0; step < s.walkLength; step++ {
			ns := g.Neighbors(cur)
			if len(ns) == 0 {
				break
			}
			cur = ns[rng.Intn(len(ns))]
			add(cur)
		}
	}
	offsets := make([]int32, len(nodes)+1)
	var indices []int32
	for i, v := range nodes {
		offsets[i] = int32(len(indices))
		for _, u := range g.Neighbors(v) {
			if pos, ok := inSet[u]; ok {
				indices = append(indices, pos)
			}
		}
	}
	offsets[len(nodes)] = int32(len(indices))

	L := s.layers
	if L < 1 {
		L = 1
	}
	blocks := make([]Block, L)
	var totalEdges int
	for l := 0; l < L; l++ {
		blocks[l] = Block{
			SrcNodes: nodes,
			DstCount: len(nodes),
			Offsets:  offsets,
			Indices:  indices,
		}
		totalEdges += len(indices)
	}
	return &MiniBatch{
		Blocks:      blocks,
		Targets:     nodes,
		InputNodes:  nodes,
		NumVertices: len(nodes),
		NumEdges:    totalEdges,
	}
}
