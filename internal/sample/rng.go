package sample

import "math/rand"

// Per-batch RNG derivation.
//
// The serial epoch loop used to thread one shared *rand.Rand through every
// Sample call, which made each batch's draws depend on every batch sampled
// before it — impossible to overlap with compute without changing results.
// Deriving an independent stream from (seed, epoch, batchIndex) instead
// makes each batch's randomness a pure function of its coordinates, so a
// prefetch pipeline that samples batch i+k while batch i trains produces
// draws bitwise-identical to the inline loop at any depth.

// splitmix64 is the SplitMix64 finalizer: a bijective avalanche mix whose
// output streams pass BigCrush. Used here purely to decorrelate nearby
// (seed, epoch, batch) coordinates.
func splitmix64(z uint64) uint64 {
	z += 0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// BatchSeed mixes a run seed with an (epoch, batch) coordinate into an
// independent stream seed. batch -1 is reserved for the epoch-level stream
// (shuffling); batches count from 0.
func BatchSeed(seed int64, epoch, batch int) int64 {
	// Sequential absorption (hash, add, hash) rather than XOR of hashes:
	// XOR commutes, which would collide (seed, epoch) with (epoch, seed).
	z := splitmix64(uint64(seed))
	z = splitmix64(z + 0x9e3779b97f4a7c15*uint64(int64(epoch)+1))
	z = splitmix64(z + 0xbf58476d1ce4e5b9*uint64(int64(batch)+2))
	return int64(z)
}

// BatchRNG returns the deterministic RNG for one mini-batch: a pure
// function of (seed, epoch, batch), independent of how many draws any
// other batch consumed.
func BatchRNG(seed int64, epoch, batch int) *rand.Rand {
	return rand.New(rand.NewSource(BatchSeed(seed, epoch, batch)))
}

// EpochRNG returns the deterministic RNG for epoch-level decisions (the
// target shuffle feeding EpochBatches).
func EpochRNG(seed int64, epoch int) *rand.Rand {
	return BatchRNG(seed, epoch, -1)
}
