package sample

import "testing"

// TestBatchRNGPureFunction: the same coordinates always yield the same
// stream — the property that makes pipelined sampling order-independent.
func TestBatchRNGPureFunction(t *testing.T) {
	a := BatchRNG(7, 3, 11)
	b := BatchRNG(7, 3, 11)
	for i := 0; i < 100; i++ {
		if a.Int63() != b.Int63() {
			t.Fatalf("same coordinates diverged at draw %d", i)
		}
	}
}

// TestBatchRNGIndependentOfConsumption: draws for batch (e, i) must not
// change however many draws other batches consumed — unlike the old
// shared trainRng.
func TestBatchRNGIndependentOfConsumption(t *testing.T) {
	want := BatchRNG(7, 1, 5).Int63()
	// Consume wildly different amounts from neighbors first.
	r := BatchRNG(7, 1, 4)
	for i := 0; i < 1000; i++ {
		r.Int63()
	}
	if got := BatchRNG(7, 1, 5).Int63(); got != want {
		t.Errorf("batch (1,5) draw changed after neighbor consumption: %d vs %d", got, want)
	}
}

// TestBatchSeedDistinct: distinct coordinates get distinct seeds across
// seeds, epochs and batch indices (including the epoch stream at -1).
func TestBatchSeedDistinct(t *testing.T) {
	seen := map[int64][3]int{}
	for _, seed := range []int64{0, 1, 42, -9} {
		for epoch := 0; epoch < 5; epoch++ {
			for batch := -1; batch < 20; batch++ {
				s := BatchSeed(seed, epoch, batch)
				if prev, ok := seen[s]; ok {
					t.Fatalf("collision: (%d,%d,%d) and %v", seed, epoch, batch, prev)
				}
				seen[s] = [3]int{int(seed), epoch, batch}
			}
		}
	}
}

// TestEpochBatchesCoverAllTargets: the shuffle plan partitions targets.
func TestEpochBatchesCoverAllTargets(t *testing.T) {
	targets := make([]int32, 103)
	for i := range targets {
		targets[i] = int32(i)
	}
	batches := EpochBatches(EpochRNG(3, 0), targets, 10)
	if len(batches) != 11 {
		t.Fatalf("got %d batches, want 11", len(batches))
	}
	seen := map[int32]bool{}
	for _, b := range batches {
		for _, v := range b {
			if seen[v] {
				t.Fatalf("vertex %d appears twice", v)
			}
			seen[v] = true
		}
	}
	if len(seen) != len(targets) {
		t.Fatalf("covered %d of %d targets", len(seen), len(targets))
	}
	// Same epoch stream, same plan.
	again := EpochBatches(EpochRNG(3, 0), targets, 10)
	for i := range batches {
		for j := range batches[i] {
			if batches[i][j] != again[i][j] {
				t.Fatal("same epoch stream produced a different shuffle")
			}
		}
	}
	// Different epochs shuffle differently.
	other := EpochBatches(EpochRNG(3, 1), targets, 10)
	same := true
	for i := range batches[0] {
		if batches[0][i] != other[0][i] {
			same = false
			break
		}
	}
	if same {
		t.Error("epochs 0 and 1 produced identical shuffles")
	}
}
