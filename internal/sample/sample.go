// Package sample implements the paper's unified sampler abstraction
// (Eq. 2): every sampler iteratively fans out neighbors from a target
// vertex set at some probability p(η), producing a layered mini-batch.
//
// Four concrete strategies are provided, matching Fig. 3's "Sampler
// Choices": node-wise (GraphSAGE), layer-wise (FastGCN, via the Eq. 3
// expectation), subgraph-wise (GraphSAINT random walks), and
// locality-aware biased sampling (2PGraph, where p(η) favors
// device-cached vertices).
package sample

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"gnnavigator/internal/graph"
	"gnnavigator/internal/tensor"
)

// Block is one layer of message flow in a sampled mini-batch.
//
// SrcNodes lists global vertex ids; its first DstCount entries are this
// block's destination (output) vertices, so a block's destinations are a
// prefix of its sources. Neighbors of destination i are
// SrcNodes[Indices[Offsets[i]:Offsets[i+1]]].
type Block struct {
	SrcNodes []int32
	DstCount int
	Offsets  []int32
	Indices  []int32
}

// NumEdges returns the number of sampled message edges in the block.
func (b *Block) NumEdges() int { return len(b.Indices) }

// MiniBatch is a layered sample: Blocks[0] is consumed by the first
// (input-most) GNN layer and Blocks[len-1] produces the target outputs.
// Invariant: Blocks[l+1].SrcNodes == Blocks[l].SrcNodes[:Blocks[l].DstCount].
type MiniBatch struct {
	Blocks  []Block
	Targets []int32

	// InputNodes aliases Blocks[0].SrcNodes: the vertices whose raw
	// features must be resident on the device (the transmission volume of
	// Algo. 1 line 3 before cache filtering).
	InputNodes []int32

	// NumVertices is |V_i|: the number of distinct vertices in the batch.
	NumVertices int
	// NumEdges is the total sampled edges across blocks.
	NumEdges int
}

// Validate checks the structural invariants that the GNN trainer relies
// on. It is used by tests and by the backend in debug paths.
func (mb *MiniBatch) Validate() error {
	if len(mb.Blocks) == 0 {
		return fmt.Errorf("sample: minibatch has no blocks")
	}
	last := mb.Blocks[len(mb.Blocks)-1]
	if last.DstCount != len(mb.Targets) {
		return fmt.Errorf("sample: last block dst %d != targets %d", last.DstCount, len(mb.Targets))
	}
	for l, b := range mb.Blocks {
		if b.DstCount > len(b.SrcNodes) {
			return fmt.Errorf("sample: block %d dst %d > src %d", l, b.DstCount, len(b.SrcNodes))
		}
		if len(b.Offsets) != b.DstCount+1 {
			return fmt.Errorf("sample: block %d offsets len %d != dst+1", l, len(b.Offsets))
		}
		if int(b.Offsets[b.DstCount]) != len(b.Indices) {
			return fmt.Errorf("sample: block %d offsets end %d != indices %d", l, b.Offsets[b.DstCount], len(b.Indices))
		}
		for _, ix := range b.Indices {
			if ix < 0 || int(ix) >= len(b.SrcNodes) {
				return fmt.Errorf("sample: block %d index %d out of range", l, ix)
			}
		}
		if l+1 < len(mb.Blocks) {
			next := mb.Blocks[l+1]
			if len(next.SrcNodes) != b.DstCount {
				return fmt.Errorf("sample: block %d->%d src/dst chain broken", l, l+1)
			}
			for i := range next.SrcNodes {
				if next.SrcNodes[i] != b.SrcNodes[i] {
					return fmt.Errorf("sample: block %d->%d node order mismatch at %d", l, l+1, i)
				}
			}
		}
	}
	if len(mb.InputNodes) != len(mb.Blocks[0].SrcNodes) {
		return fmt.Errorf("sample: InputNodes not aliased to first block")
	}
	return nil
}

// Sampler produces mini-batches from target vertex sets.
type Sampler interface {
	Name() string
	// Sample expands targets into a layered mini-batch using rng.
	Sample(rng *rand.Rand, g *graph.Graph, targets []int32) *MiniBatch
	// NumLayers reports how many blocks Sample produces.
	NumLayers() int
}

// BiasFunc scores a candidate neighbor; higher means more likely to be
// selected. A nil BiasFunc means unbiased (uniform) sampling. The 2PGraph
// template wires cache residency in here.
type BiasFunc func(v int32) float64

// --- node-wise (GraphSAGE) -------------------------------------------------

// NodeWise samples Fanouts[h] neighbors per destination at hop h from the
// targets (hop 0 feeds the last GNN layer). A non-nil Bias skews neighbor
// choice, with BiasStrength in [0,1] interpolating between uniform (0) and
// fully bias-driven (1) selection — this realizes the paper's p(η).
//
// The sampler owns reusable neighbor-selection scratch, so a NodeWise
// value must not be shared across concurrent Sample calls. In the
// pipelined engine (internal/pipeline) every Sample call happens on the
// single sampler-stage goroutine, which satisfies this contract; the
// scratch never leaks into the returned MiniBatch, so batches handed
// downstream stay valid while later batches are sampled.
type NodeWise struct {
	Fanouts      []int
	Bias         BiasFunc
	BiasStrength float64

	scratch pickScratch
}

// Name implements Sampler.
func (s *NodeWise) Name() string { return "node-wise" }

// NumLayers implements Sampler.
func (s *NodeWise) NumLayers() int { return len(s.Fanouts) }

// Sample implements Sampler.
func (s *NodeWise) Sample(rng *rand.Rand, g *graph.Graph, targets []int32) *MiniBatch {
	L := len(s.Fanouts)
	blocks := make([]Block, L)
	dst := dedup(targets)
	var totalEdges int
	for h := 0; h < L; h++ {
		blk := expand(rng, g, dst, s.Fanouts[h], s.Bias, s.BiasStrength, &s.scratch)
		blocks[L-1-h] = blk
		totalEdges += blk.NumEdges()
		dst = blk.SrcNodes
	}
	mb := &MiniBatch{
		Blocks:      blocks,
		Targets:     blocks[L-1].SrcNodes[:blocks[L-1].DstCount],
		InputNodes:  blocks[0].SrcNodes,
		NumVertices: len(blocks[0].SrcNodes),
		NumEdges:    totalEdges,
	}
	return mb
}

// expand builds one block: every dst samples up to fanout neighbors.
func expand(rng *rand.Rand, g *graph.Graph, dst []int32, fanout int, bias BiasFunc, biasStrength float64, sc *pickScratch) Block {
	srcPos := make(map[int32]int32, len(dst)*2)
	src := make([]int32, len(dst))
	copy(src, dst)
	for i, v := range dst {
		srcPos[v] = int32(i)
	}
	offsets := make([]int32, len(dst)+1)
	var indices []int32
	for i, v := range dst {
		offsets[i] = int32(len(indices))
		ns := g.Neighbors(v)
		if len(ns) == 0 {
			continue
		}
		picks := sc.pickNeighbors(rng, ns, fanout, bias, biasStrength)
		for _, u := range picks {
			pos, ok := srcPos[u]
			if !ok {
				pos = int32(len(src))
				src = append(src, u)
				srcPos[u] = pos
			}
			indices = append(indices, pos)
		}
	}
	offsets[len(dst)] = int32(len(indices))
	return Block{SrcNodes: src, DstCount: len(dst), Offsets: offsets, Indices: indices}
}

// pickScratch holds the reusable buffers neighbor selection needs, so
// the per-destination hot path allocates nothing after warm-up. The
// returned slices alias the scratch: callers must consume a pick before
// requesting the next one.
type pickScratch struct {
	tmp     []int32
	weights []float64
	taken   []bool
	out     []int32
}

// pickNeighbors selects up to fanout neighbors without replacement. With a
// bias, selection is a weighted draw where weight(u) = 1 + strength*bias(u).
// The rng consumption is identical to the pre-scratch implementation, so
// draws (and thus batches) are unchanged for a fixed seed.
func (sc *pickScratch) pickNeighbors(rng *rand.Rand, ns []int32, fanout int, bias BiasFunc, strength float64) []int32 {
	if fanout <= 0 || fanout >= len(ns) {
		// Taking the whole neighborhood: copy into scratch (not an
		// allocation after warm-up) rather than handing out the graph's
		// own CSR slice, which a mutating caller could corrupt for the
		// process-cached dataset.
		sc.tmp = tensor.Grow(sc.tmp, len(ns))
		copy(sc.tmp, ns)
		return sc.tmp
	}
	if bias == nil || strength <= 0 {
		// Partial Fisher-Yates over a scratch copy.
		sc.tmp = tensor.Grow(sc.tmp, len(ns))
		tmp := sc.tmp
		copy(tmp, ns)
		for i := 0; i < fanout; i++ {
			j := i + rng.Intn(len(tmp)-i)
			tmp[i], tmp[j] = tmp[j], tmp[i]
		}
		return tmp[:fanout]
	}
	// Weighted sampling without replacement via repeated draws.
	sc.weights = tensor.Grow(sc.weights, len(ns))
	sc.taken = tensor.Grow(sc.taken, len(ns))
	weights := sc.weights
	taken := sc.taken
	var total float64
	for i, u := range ns {
		w := 1 + strength*bias(u)
		if w < 0 {
			w = 0
		}
		weights[i] = w
		taken[i] = false
		total += w
	}
	out := tensor.Grow(sc.out, fanout)[:0]
	for len(out) < fanout && total > 1e-12 {
		r := rng.Float64() * total
		var acc float64
		for i, w := range weights {
			if taken[i] {
				continue
			}
			acc += w
			if r <= acc {
				out = append(out, ns[i])
				taken[i] = true
				total -= w
				break
			}
		}
	}
	sc.out = out[:0]
	return out
}

// --- layer-wise (FastGCN) ---------------------------------------------------

// LayerWise implements FastGCN-style importance sampling: at each hop a
// fixed budget Delta[h] of distinct vertices is drawn from the candidate
// neighborhood with probability proportional to degree. Eq. 3 of the paper
// shows this is the unified abstraction with E[k_l] = Δ_l/|B_l| · μ.
type LayerWise struct {
	// Deltas[h] is the vertex budget at hop h from the targets.
	Deltas []int
}

// Name implements Sampler.
func (s *LayerWise) Name() string { return "layer-wise" }

// NumLayers implements Sampler.
func (s *LayerWise) NumLayers() int { return len(s.Deltas) }

// Sample implements Sampler.
func (s *LayerWise) Sample(rng *rand.Rand, g *graph.Graph, targets []int32) *MiniBatch {
	L := len(s.Deltas)
	blocks := make([]Block, L)
	dst := dedup(targets)
	var totalEdges int
	for h := 0; h < L; h++ {
		blk := expandLayerWise(rng, g, dst, s.Deltas[h])
		blocks[L-1-h] = blk
		totalEdges += blk.NumEdges()
		dst = blk.SrcNodes
	}
	mb := &MiniBatch{
		Blocks:      blocks,
		Targets:     blocks[L-1].SrcNodes[:blocks[L-1].DstCount],
		InputNodes:  blocks[0].SrcNodes,
		NumVertices: len(blocks[0].SrcNodes),
		NumEdges:    totalEdges,
	}
	return mb
}

func expandLayerWise(rng *rand.Rand, g *graph.Graph, dst []int32, delta int) Block {
	// Candidate pool: union of all dst neighborhoods, weighted by the
	// number of dst vertices adjacent to each candidate (degree-importance).
	weight := make(map[int32]int)
	for _, v := range dst {
		for _, u := range g.Neighbors(v) {
			weight[u]++
		}
	}
	srcPos := make(map[int32]int32, len(dst)+delta)
	src := make([]int32, len(dst))
	copy(src, dst)
	for i, v := range dst {
		srcPos[v] = int32(i)
	}
	// Weighted reservoir-ish draw of delta distinct candidates.
	// Candidates are keyed in sorted vertex order so the rng consumption
	// (and hence the draw) is deterministic for a fixed seed — map
	// iteration order is randomized in Go.
	type cand struct {
		v   int32
		key float64
	}
	vs := make([]int32, 0, len(weight))
	for v := range weight {
		vs = append(vs, v)
	}
	slices.Sort(vs)
	cands := make([]cand, 0, len(weight))
	for _, v := range vs {
		// Efraimidis–Spirakis: key = U^(1/w); take top delta keys.
		key := math.Pow(rng.Float64(), 1/float64(weight[v]))
		cands = append(cands, cand{v, key})
	}
	// Partial selection of the top-delta keys.
	if delta > len(cands) {
		delta = len(cands)
	}
	for i := 0; i < delta; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].key > cands[best].key {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	selected := make(map[int32]bool, delta)
	for i := 0; i < delta; i++ {
		selected[cands[i].v] = true
	}
	for _, v := range dst { // dst vertices always usable as sources
		selected[v] = true
	}
	offsets := make([]int32, len(dst)+1)
	var indices []int32
	for i, v := range dst {
		offsets[i] = int32(len(indices))
		for _, u := range g.Neighbors(v) {
			if !selected[u] {
				continue
			}
			pos, ok := srcPos[u]
			if !ok {
				pos = int32(len(src))
				src = append(src, u)
				srcPos[u] = pos
			}
			indices = append(indices, pos)
		}
	}
	offsets[len(dst)] = int32(len(indices))
	return Block{SrcNodes: src, DstCount: len(dst), Offsets: offsets, Indices: indices}
}

// --- subgraph-wise (GraphSAINT) ---------------------------------------------

// SubgraphWise implements GraphSAINT-style random-walk sampling: from the
// targets as roots, WalkLength-step random walks collect a vertex set whose
// induced subgraph is trained on directly. Per the paper's abstraction this
// is node-wise sampling "with many more hops but a single neighbor fanout".
// Layers blocks all share the induced adjacency.
type SubgraphWise struct {
	WalkLength int
	// Layers is the number of GNN layers the batch will feed.
	Layers int
}

// Name implements Sampler.
func (s *SubgraphWise) Name() string { return "subgraph-wise" }

// NumLayers implements Sampler.
func (s *SubgraphWise) NumLayers() int { return s.Layers }

// Sample implements Sampler.
func (s *SubgraphWise) Sample(rng *rand.Rand, g *graph.Graph, targets []int32) *MiniBatch {
	roots := dedup(targets)
	inSet := make(map[int32]int32, len(roots)*(s.WalkLength+1))
	nodes := make([]int32, 0, len(roots)*(s.WalkLength+1))
	add := func(v int32) {
		if _, ok := inSet[v]; !ok {
			inSet[v] = int32(len(nodes))
			nodes = append(nodes, v)
		}
	}
	for _, r := range roots {
		add(r)
		cur := r
		for step := 0; step < s.WalkLength; step++ {
			ns := g.Neighbors(cur)
			if len(ns) == 0 {
				break
			}
			cur = ns[rng.Intn(len(ns))]
			add(cur)
		}
	}
	// Induced adjacency restricted to the walk set, with targets first —
	// the dst prefix convention requires target rows up front, and `nodes`
	// already begins with all roots.
	offsets := make([]int32, len(nodes)+1)
	var indices []int32
	for i, v := range nodes {
		offsets[i] = int32(len(indices))
		for _, u := range g.Neighbors(v) {
			if pos, ok := inSet[u]; ok {
				indices = append(indices, pos)
			}
		}
	}
	offsets[len(nodes)] = int32(len(indices))

	L := s.Layers
	if L < 1 {
		L = 1
	}
	blocks := make([]Block, L)
	var totalEdges int
	for l := 0; l < L; l++ {
		// Every layer trains on the full induced subgraph: src == dst set.
		blocks[l] = Block{
			SrcNodes: nodes,
			DstCount: len(nodes),
			Offsets:  offsets,
			Indices:  indices,
		}
		totalEdges += len(indices)
	}
	return &MiniBatch{
		Blocks:      blocks,
		Targets:     nodes, // loss is taken over the whole subgraph
		InputNodes:  nodes,
		NumVertices: len(nodes),
		NumEdges:    totalEdges,
	}
}

// --- analytic expectation (Eq. 12) -------------------------------------------

// AnalyticBatchSize evaluates the white-box part of Eq. 12:
//
//	E[|V_i|] ≈ (|B0| · Π_l (1+k_l))^τ
//
// with τ in (0, 1] the overlap penalty exponent. τ=1 is the no-overlap
// upper bound; the estimator learns the effective τ (together with a
// multiplicative correction) from profiled runs.
func AnalyticBatchSize(b0 int, fanouts []int, tau float64) float64 {
	prod := float64(b0)
	for _, k := range fanouts {
		prod *= float64(1 + k)
	}
	return math.Pow(prod, tau)
}

// EpochBatches splits train vertices into shuffled batches of size b0. The
// final short batch is kept (PyTorch's drop_last=False behaviour). Callers
// derive rng per epoch (EpochRNG) rather than threading one shared stream
// across epochs, so the shuffle for epoch e is independent of every other
// epoch's draws.
func EpochBatches(rng *rand.Rand, train []int32, b0 int) [][]int32 {
	if b0 <= 0 {
		b0 = len(train)
	}
	perm := make([]int32, len(train))
	copy(perm, train)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	var out [][]int32
	for start := 0; start < len(perm); start += b0 {
		end := start + b0
		if end > len(perm) {
			end = len(perm)
		}
		out = append(out, perm[start:end])
	}
	return out
}

func dedup(vs []int32) []int32 {
	seen := make(map[int32]bool, len(vs))
	out := make([]int32, 0, len(vs))
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
