// Package sample implements the paper's unified sampler abstraction
// (Eq. 2): every sampler iteratively fans out neighbors from a target
// vertex set at some probability p(η), producing a layered mini-batch.
//
// Four concrete strategies are provided, matching Fig. 3's "Sampler
// Choices": node-wise (GraphSAGE), layer-wise (FastGCN, via the Eq. 3
// expectation), subgraph-wise (GraphSAINT random walks), and
// locality-aware biased sampling (2PGraph, where p(η) favors
// device-cached vertices).
//
// Batch assembly is map-free: vertex dedup and global→local position
// remapping run on epoch-stamped dense frontier tables (Frontier) owned
// by each sampler, and every slice a MiniBatch keeps is pre-sized to its
// exact upper bound. Steady state, a Sample call performs no hashing and
// allocates only the slices it returns; mapref.go freezes the old
// hash-map implementation, and the equivalence tests pin both paths to
// bitwise-identical output.
package sample

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"gnnavigator/internal/graph"
	"gnnavigator/internal/tensor"
)

// Block is one layer of message flow in a sampled mini-batch.
//
// SrcNodes lists global vertex ids; its first DstCount entries are this
// block's destination (output) vertices, so a block's destinations are a
// prefix of its sources. Neighbors of destination i are
// SrcNodes[Indices[Offsets[i]:Offsets[i+1]]].
type Block struct {
	SrcNodes []int32
	DstCount int
	Offsets  []int32
	Indices  []int32
}

// NumEdges returns the number of sampled message edges in the block.
func (b *Block) NumEdges() int { return len(b.Indices) }

// MiniBatch is a layered sample: Blocks[0] is consumed by the first
// (input-most) GNN layer and Blocks[len-1] produces the target outputs.
// Invariant: Blocks[l+1].SrcNodes == Blocks[l].SrcNodes[:Blocks[l].DstCount].
type MiniBatch struct {
	Blocks  []Block
	Targets []int32

	// InputNodes aliases Blocks[0].SrcNodes: the vertices whose raw
	// features must be resident on the device (the transmission volume of
	// Algo. 1 line 3 before cache filtering).
	InputNodes []int32

	// NumVertices is |V_i|: the number of distinct vertices in the batch.
	NumVertices int
	// NumEdges is the total sampled edges across blocks.
	NumEdges int
}

// Validate checks the structural invariants that the GNN trainer relies
// on. It is used by tests and by the backend in debug paths.
func (mb *MiniBatch) Validate() error {
	if len(mb.Blocks) == 0 {
		return fmt.Errorf("sample: minibatch has no blocks")
	}
	last := mb.Blocks[len(mb.Blocks)-1]
	if last.DstCount != len(mb.Targets) {
		return fmt.Errorf("sample: last block dst %d != targets %d", last.DstCount, len(mb.Targets))
	}
	for l, b := range mb.Blocks {
		if b.DstCount > len(b.SrcNodes) {
			return fmt.Errorf("sample: block %d dst %d > src %d", l, b.DstCount, len(b.SrcNodes))
		}
		if len(b.Offsets) != b.DstCount+1 {
			return fmt.Errorf("sample: block %d offsets len %d != dst+1", l, len(b.Offsets))
		}
		if int(b.Offsets[b.DstCount]) != len(b.Indices) {
			return fmt.Errorf("sample: block %d offsets end %d != indices %d", l, b.Offsets[b.DstCount], len(b.Indices))
		}
		for _, ix := range b.Indices {
			if ix < 0 || int(ix) >= len(b.SrcNodes) {
				return fmt.Errorf("sample: block %d index %d out of range", l, ix)
			}
		}
		if l+1 < len(mb.Blocks) {
			next := mb.Blocks[l+1]
			if len(next.SrcNodes) != b.DstCount {
				return fmt.Errorf("sample: block %d->%d src/dst chain broken", l, l+1)
			}
			for i := range next.SrcNodes {
				if next.SrcNodes[i] != b.SrcNodes[i] {
					return fmt.Errorf("sample: block %d->%d node order mismatch at %d", l, l+1, i)
				}
			}
		}
	}
	if len(mb.InputNodes) != len(mb.Blocks[0].SrcNodes) {
		return fmt.Errorf("sample: InputNodes not aliased to first block")
	}
	return nil
}

// Sampler produces mini-batches from target vertex sets.
type Sampler interface {
	Name() string
	// Sample expands targets into a layered mini-batch using rng.
	Sample(rng *rand.Rand, g *graph.Graph, targets []int32) *MiniBatch
	// NumLayers reports how many blocks Sample produces.
	NumLayers() int
}

// BiasFunc scores a candidate neighbor; higher means more likely to be
// selected. A nil BiasFunc means unbiased (uniform) sampling. The 2PGraph
// template wires cache residency in here.
type BiasFunc func(v int32) float64

// Residency is the device-residency view a locality-aware bias reads —
// the feature plane (cache.FeatureSource) implements it. Resident must
// be safe to call from the sampler stage while the cache stage runs;
// when the underlying residency is dynamic (FIFO/LRU) the two stages
// must be fused (pipeline.Config.CoupledSampler) for the reads to be
// deterministic.
type Residency interface {
	Resident(v int32) bool
}

// ResidencyBias returns the 2PGraph p(η): score 1 for device-resident
// vertices, 0 otherwise.
func ResidencyBias(r Residency) BiasFunc {
	return func(v int32) float64 {
		if r.Resident(v) {
			return 1
		}
		return 0
	}
}

// Frontier is the epoch-stamped dense vertex table (graph.Frontier) that
// replaced every hash map in the batch-assembly hot path: membership is
// stamp[v] == epoch, lookup is one array read, and reset is an epoch
// bump. Each sampler owns the Frontier scratch it needs, one per pipeline
// producer stage, so steady-state sampling performs no hashing and no
// per-batch table allocation.
type Frontier = graph.Frontier

// dedupWith writes the distinct elements of vs into buf (reused across
// calls) in first-occurrence order, using fr as the membership table over
// vertex ids in [0, n). The returned slice aliases buf's storage.
func dedupWith(fr *Frontier, n int, buf, vs []int32) []int32 {
	fr.Reset(n)
	out := tensor.Grow(buf, len(vs))[:0]
	for _, v := range vs {
		if _, seen := fr.PosOrInsert(v, 0); !seen {
			out = append(out, v)
		}
	}
	return out
}

// --- node-wise (GraphSAGE) -------------------------------------------------

// NodeWise samples Fanouts[h] neighbors per destination at hop h from the
// targets (hop 0 feeds the last GNN layer). A non-nil Bias skews neighbor
// choice, with BiasStrength in [0,1] interpolating between uniform (0) and
// fully bias-driven (1) selection — this realizes the paper's p(η).
//
// The sampler owns reusable scratch (neighbor-selection buffers plus the
// epoch-stamped Frontier position table), so a NodeWise value must not be
// shared across concurrent Sample calls. In the pipelined engine
// (internal/pipeline) every Sample call happens on the single
// sampler-stage goroutine, which satisfies this contract; the scratch
// never leaks into the returned MiniBatch, so batches handed downstream
// stay valid while later batches are sampled.
type NodeWise struct {
	Fanouts      []int
	Bias         BiasFunc
	BiasStrength float64

	scratch  pickScratch
	frontier Frontier
	dedupBuf []int32
}

// Name implements Sampler.
func (s *NodeWise) Name() string { return "node-wise" }

// NumLayers implements Sampler.
func (s *NodeWise) NumLayers() int { return len(s.Fanouts) }

// Sample implements Sampler.
func (s *NodeWise) Sample(rng *rand.Rand, g *graph.Graph, targets []int32) *MiniBatch {
	L := len(s.Fanouts)
	blocks := make([]Block, L)
	dst := dedupWith(&s.frontier, g.NumVertices(), s.dedupBuf, targets)
	s.dedupBuf = dst
	var totalEdges int
	for h := 0; h < L; h++ {
		blk := expand(rng, g, dst, s.Fanouts[h], s.Bias, s.BiasStrength, &s.scratch, &s.frontier)
		blocks[L-1-h] = blk
		totalEdges += blk.NumEdges()
		dst = blk.SrcNodes
	}
	mb := &MiniBatch{
		Blocks:      blocks,
		Targets:     blocks[L-1].SrcNodes[:blocks[L-1].DstCount],
		InputNodes:  blocks[0].SrcNodes,
		NumVertices: len(blocks[0].SrcNodes),
		NumEdges:    totalEdges,
	}
	return mb
}

// expand builds one block: every dst samples up to fanout neighbors.
// Position lookup runs on the epoch-stamped frontier table, and the three
// output slices are pre-sized to their exact upper bounds (every dst
// contributes at most fanout edges, each edge introduces at most one new
// source), so a block costs exactly three allocations — the slices the
// MiniBatch keeps — and zero hashing.
func expand(rng *rand.Rand, g *graph.Graph, dst []int32, fanout int, bias BiasFunc, biasStrength float64, sc *pickScratch, fr *Frontier) Block {
	fr.Reset(g.NumVertices())
	edgeBound := 0
	if fanout > 0 {
		edgeBound = len(dst) * fanout
	} else {
		for _, v := range dst {
			edgeBound += g.Degree(v)
		}
	}
	src := make([]int32, len(dst), len(dst)+edgeBound)
	copy(src, dst)
	for i, v := range dst {
		fr.Set(v, int32(i))
	}
	offsets := make([]int32, len(dst)+1)
	indices := make([]int32, 0, edgeBound)
	for i, v := range dst {
		offsets[i] = int32(len(indices))
		ns := g.Neighbors(v)
		if len(ns) == 0 {
			continue
		}
		// Whole neighborhood (fanout <= 0 or >= degree, the common case at
		// small fanouts): no RNG is consumed and this loop only reads
		// picks, so aliasing the graph's own CSR slice is safe and skips
		// any defensive copy.
		picks := ns
		if fanout > 0 && fanout < len(ns) {
			picks = sc.pickNeighbors(rng, ns, fanout, bias, biasStrength)
		}
		for _, u := range picks {
			pos, seen := fr.PosOrInsert(u, int32(len(src)))
			if !seen {
				src = append(src, u)
			}
			indices = append(indices, pos)
		}
	}
	offsets[len(dst)] = int32(len(indices))
	return Block{SrcNodes: src, DstCount: len(dst), Offsets: offsets, Indices: indices}
}

// pickScratch holds the reusable buffers neighbor selection needs, so
// the per-destination hot path allocates nothing after warm-up. The
// returned slices alias the scratch: callers must consume a pick before
// requesting the next one.
type pickScratch struct {
	tmp     []int32
	overlay Frontier // displaced-slot overlay for the sparse Fisher-Yates
	weights []float64
	taken   []bool
	out     []int32
}

// pickNeighbors selects fanout neighbors without replacement; callers
// must ensure 0 < fanout < len(ns) — taking the whole neighborhood
// consumes no randomness, and expand handles it inline by aliasing the
// CSR slice read-only. With a bias, selection is a weighted draw where
// weight(u) = 1 + strength*bias(u). The rng consumption is identical to
// the frozen map-reference implementation, so draws (and thus batches)
// are unchanged for a fixed seed.
func (sc *pickScratch) pickNeighbors(rng *rand.Rand, ns []int32, fanout int, bias BiasFunc, strength float64) []int32 {
	if bias == nil || strength <= 0 {
		if len(ns) > 64 && len(ns) > 4*fanout {
			// Hub neighborhoods: sparse partial Fisher-Yates. Draws and
			// picks are bitwise-identical to shuffling a full copy of ns,
			// but only the slots the shuffle actually displaces are
			// materialized, in an epoch-stamped overlay indexed by
			// neighbor position — O(fanout), not O(degree). Slot i is
			// never read after draw i (j >= i always), so recording the
			// swap's write to slot j alone suffices.
			sc.overlay.Reset(len(ns))
			out := tensor.Grow(sc.out, fanout)
			sc.out = out
			for i := 0; i < fanout; i++ {
				j := i + rng.Intn(len(ns)-i)
				vi := ns[i]
				if p, ok := sc.overlay.Pos(int32(i)); ok {
					vi = p
				}
				vj := ns[j]
				if p, ok := sc.overlay.Pos(int32(j)); ok {
					vj = p
				}
				out[i] = vj
				sc.overlay.Set(int32(j), vi)
			}
			return out
		}
		// Typical neighborhoods: partial Fisher-Yates over a scratch copy.
		// Below the hub threshold one small memcopy beats per-draw overlay
		// bookkeeping.
		sc.tmp = tensor.Grow(sc.tmp, len(ns))
		tmp := sc.tmp
		copy(tmp, ns)
		for i := 0; i < fanout; i++ {
			j := i + rng.Intn(len(tmp)-i)
			tmp[i], tmp[j] = tmp[j], tmp[i]
		}
		return tmp[:fanout]
	}
	// Weighted sampling without replacement via repeated draws.
	sc.weights = tensor.Grow(sc.weights, len(ns))
	sc.taken = tensor.Grow(sc.taken, len(ns))
	weights := sc.weights
	taken := sc.taken
	var total float64
	for i, u := range ns {
		w := 1 + strength*bias(u)
		if w < 0 {
			w = 0
		}
		weights[i] = w
		taken[i] = false
		total += w
	}
	out := tensor.Grow(sc.out, fanout)[:0]
	for len(out) < fanout && total > 1e-12 {
		r := rng.Float64() * total
		var acc float64
		for i, w := range weights {
			if taken[i] {
				continue
			}
			acc += w
			if r <= acc {
				out = append(out, ns[i])
				taken[i] = true
				total -= w
				break
			}
		}
	}
	sc.out = out[:0]
	return out
}

// --- layer-wise (FastGCN) ---------------------------------------------------

// LayerWise implements FastGCN-style importance sampling: at each hop a
// fixed budget Delta[h] of distinct vertices is drawn from the candidate
// neighborhood with probability proportional to degree. Eq. 3 of the paper
// shows this is the unified abstraction with E[k_l] = Δ_l/|B_l| · μ.
//
// Like NodeWise, the sampler owns reusable frontier/candidate scratch and
// must not be shared across concurrent Sample calls.
type LayerWise struct {
	// Deltas[h] is the vertex budget at hop h from the targets.
	Deltas []int

	count    Frontier // candidate multiplicities, then the selected set
	pos      Frontier // source position table
	dedupBuf []int32
	touched  []int32
	cands    []lwCand
}

// lwCand pairs a candidate vertex with its Efraimidis–Spirakis key.
type lwCand struct {
	v   int32
	key float64
}

// Name implements Sampler.
func (s *LayerWise) Name() string { return "layer-wise" }

// NumLayers implements Sampler.
func (s *LayerWise) NumLayers() int { return len(s.Deltas) }

// Sample implements Sampler.
func (s *LayerWise) Sample(rng *rand.Rand, g *graph.Graph, targets []int32) *MiniBatch {
	L := len(s.Deltas)
	blocks := make([]Block, L)
	dst := dedupWith(&s.count, g.NumVertices(), s.dedupBuf, targets)
	s.dedupBuf = dst
	var totalEdges int
	for h := 0; h < L; h++ {
		blk := s.expand(rng, g, dst, s.Deltas[h])
		blocks[L-1-h] = blk
		totalEdges += blk.NumEdges()
		dst = blk.SrcNodes
	}
	mb := &MiniBatch{
		Blocks:      blocks,
		Targets:     blocks[L-1].SrcNodes[:blocks[L-1].DstCount],
		InputNodes:  blocks[0].SrcNodes,
		NumVertices: len(blocks[0].SrcNodes),
		NumEdges:    totalEdges,
	}
	return mb
}

func (s *LayerWise) expand(rng *rand.Rand, g *graph.Graph, dst []int32, delta int) Block {
	// Candidate pool: union of all dst neighborhoods, weighted by the
	// number of dst vertices adjacent to each candidate (degree-importance).
	// The multiplicity lives in the stamped count table; the touched list
	// records first-seen candidates so they can be revisited without map
	// iteration. An edge bound for the final indices slice falls out of
	// the same pass.
	n := g.NumVertices()
	s.count.Reset(n)
	touched := s.touched[:0]
	edgeBound := 0
	for _, v := range dst {
		edgeBound += g.Degree(v)
		for _, u := range g.Neighbors(v) {
			if c, seen := s.count.PosOrInsert(u, 1); seen {
				s.count.Set(u, c+1)
			} else {
				touched = append(touched, u)
			}
		}
	}
	// Weighted reservoir-ish draw of delta distinct candidates.
	// Candidates are keyed in sorted vertex order so the rng consumption
	// (and hence the draw) matches the frozen map reference, whose
	// randomized map iteration forced the same sort.
	slices.Sort(touched)
	s.touched = touched
	cands := tensor.Grow(s.cands, len(touched))
	s.cands = cands
	for i, v := range touched {
		// Efraimidis–Spirakis: key = U^(1/w); take top delta keys.
		w, _ := s.count.Pos(v)
		cands[i] = lwCand{v, math.Pow(rng.Float64(), 1/float64(w))}
	}
	// Partial selection of the top-delta keys.
	if delta > len(cands) {
		delta = len(cands)
	}
	for i := 0; i < delta; i++ {
		best := i
		for j := i + 1; j < len(cands); j++ {
			if cands[j].key > cands[best].key {
				best = j
			}
		}
		cands[i], cands[best] = cands[best], cands[i]
	}
	// The counts are dead once the keys are drawn: recycle the count table
	// as the selected-membership set.
	selected := &s.count
	selected.Reset(n)
	for i := 0; i < delta; i++ {
		selected.Set(cands[i].v, 0)
	}
	for _, v := range dst { // dst vertices always usable as sources
		selected.Set(v, 0)
	}
	s.pos.Reset(n)
	src := make([]int32, len(dst), len(dst)+delta)
	copy(src, dst)
	for i, v := range dst {
		s.pos.Set(v, int32(i))
	}
	offsets := make([]int32, len(dst)+1)
	indices := make([]int32, 0, edgeBound)
	for i, v := range dst {
		offsets[i] = int32(len(indices))
		for _, u := range g.Neighbors(v) {
			if !selected.Has(u) {
				continue
			}
			pos, seen := s.pos.PosOrInsert(u, int32(len(src)))
			if !seen {
				src = append(src, u)
			}
			indices = append(indices, pos)
		}
	}
	offsets[len(dst)] = int32(len(indices))
	return Block{SrcNodes: src, DstCount: len(dst), Offsets: offsets, Indices: indices}
}

// --- subgraph-wise (GraphSAINT) ---------------------------------------------

// SubgraphWise implements GraphSAINT-style random-walk sampling: from the
// targets as roots, WalkLength-step random walks collect a vertex set whose
// induced subgraph is trained on directly. Per the paper's abstraction this
// is node-wise sampling "with many more hops but a single neighbor fanout".
// Layers blocks all share the induced adjacency.
//
// Like NodeWise, the sampler owns a reusable frontier table and must not
// be shared across concurrent Sample calls.
type SubgraphWise struct {
	WalkLength int
	// Layers is the number of GNN layers the batch will feed.
	Layers int

	frontier Frontier
	dedupBuf []int32
}

// Name implements Sampler.
func (s *SubgraphWise) Name() string { return "subgraph-wise" }

// NumLayers implements Sampler.
func (s *SubgraphWise) NumLayers() int { return s.Layers }

// Sample implements Sampler.
func (s *SubgraphWise) Sample(rng *rand.Rand, g *graph.Graph, targets []int32) *MiniBatch {
	n := g.NumVertices()
	roots := dedupWith(&s.frontier, n, s.dedupBuf, targets)
	s.dedupBuf = roots
	// Walk-set membership and positions live in the frontier table; the
	// walk can add at most WalkLength+1 distinct vertices per root, which
	// pre-sizes the node list exactly.
	inSet := &s.frontier
	inSet.Reset(n)
	nodes := make([]int32, 0, len(roots)*(s.WalkLength+1))
	add := func(v int32) {
		if _, seen := inSet.PosOrInsert(v, int32(len(nodes))); !seen {
			nodes = append(nodes, v)
		}
	}
	for _, r := range roots {
		add(r)
		cur := r
		for step := 0; step < s.WalkLength; step++ {
			ns := g.Neighbors(cur)
			if len(ns) == 0 {
				break
			}
			cur = ns[rng.Intn(len(ns))]
			add(cur)
		}
	}
	// Induced adjacency restricted to the walk set, with targets first —
	// the dst prefix convention requires target rows up front, and `nodes`
	// already begins with all roots. The walk set's total degree bounds
	// the induced edge count, pre-sizing the indices slice.
	edgeBound := 0
	for _, v := range nodes {
		edgeBound += g.Degree(v)
	}
	offsets := make([]int32, len(nodes)+1)
	indices := make([]int32, 0, edgeBound)
	for i, v := range nodes {
		offsets[i] = int32(len(indices))
		for _, u := range g.Neighbors(v) {
			if pos, ok := inSet.Pos(u); ok {
				indices = append(indices, pos)
			}
		}
	}
	offsets[len(nodes)] = int32(len(indices))

	L := s.Layers
	if L < 1 {
		L = 1
	}
	blocks := make([]Block, L)
	var totalEdges int
	for l := 0; l < L; l++ {
		// Every layer trains on the full induced subgraph: src == dst set.
		blocks[l] = Block{
			SrcNodes: nodes,
			DstCount: len(nodes),
			Offsets:  offsets,
			Indices:  indices,
		}
		totalEdges += len(indices)
	}
	return &MiniBatch{
		Blocks:      blocks,
		Targets:     nodes, // loss is taken over the whole subgraph
		InputNodes:  nodes,
		NumVertices: len(nodes),
		NumEdges:    totalEdges,
	}
}

// --- analytic expectation (Eq. 12) -------------------------------------------

// AnalyticBatchSize evaluates the white-box part of Eq. 12:
//
//	E[|V_i|] ≈ (|B0| · Π_l (1+k_l))^τ
//
// with τ in (0, 1] the overlap penalty exponent. τ=1 is the no-overlap
// upper bound; the estimator learns the effective τ (together with a
// multiplicative correction) from profiled runs.
func AnalyticBatchSize(b0 int, fanouts []int, tau float64) float64 {
	prod := float64(b0)
	for _, k := range fanouts {
		prod *= float64(1 + k)
	}
	return math.Pow(prod, tau)
}

// EpochBatches splits train vertices into shuffled batches of size b0. The
// final short batch is kept (PyTorch's drop_last=False behaviour). Callers
// derive rng per epoch (EpochRNG) rather than threading one shared stream
// across epochs, so the shuffle for epoch e is independent of every other
// epoch's draws.
func EpochBatches(rng *rand.Rand, train []int32, b0 int) [][]int32 {
	if b0 <= 0 {
		b0 = len(train)
	}
	perm := make([]int32, len(train))
	copy(perm, train)
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	var out [][]int32
	for start := 0; start < len(perm); start += b0 {
		end := start + b0
		if end > len(perm) {
			end = len(perm)
		}
		out = append(out, perm[start:end])
	}
	return out
}

// EpochPlan returns epoch e's batch target lists for a (seed, targets,
// batchSize) triple: shuffled through the per-epoch stream (EpochRNG)
// when shuffle is set, chunked in the given order otherwise. It is the
// single source of truth for batch structure — the live pipeline
// producer and the plan compiler (internal/plan) both iterate it, which
// is what makes a compiled plan bitwise-identical to live sampling.
func EpochPlan(seed int64, epoch int, targets []int32, b0 int, shuffle bool) [][]int32 {
	if shuffle {
		return EpochBatches(EpochRNG(seed, epoch), targets, b0)
	}
	if b0 <= 0 {
		b0 = len(targets)
	}
	var out [][]int32
	for start := 0; start < len(targets); start += b0 {
		out = append(out, targets[start:min(start+b0, len(targets))])
	}
	return out
}

// dedup is the one-shot map-based dedup, kept for tests and the frozen
// map reference path (mapref.go); the samplers use dedupWith, which
// reuses a frontier table and output buffer instead.
func dedup(vs []int32) []int32 {
	seen := make(map[int32]bool, len(vs))
	out := make([]int32, 0, len(vs))
	for _, v := range vs {
		if !seen[v] {
			seen[v] = true
			out = append(out, v)
		}
	}
	return out
}
