package sample

import (
	"math/rand"
	"testing"

	"gnnavigator/internal/graph"
)

// TestSameSeedSameSample: sampling is deterministic given the rng state.
func TestSameSeedSameSample(t *testing.T) {
	g := testGraph(t)
	for _, s := range []Sampler{
		&NodeWise{Fanouts: []int{5, 3}},
		&LayerWise{Deltas: []int{30, 20}},
		&SubgraphWise{WalkLength: 5, Layers: 2},
	} {
		tg := targets(20, 400, 3)
		a := s.Sample(rand.New(rand.NewSource(7)), g, tg)
		b := s.Sample(rand.New(rand.NewSource(7)), g, tg)
		if a.NumVertices != b.NumVertices || a.NumEdges != b.NumEdges {
			t.Errorf("%s: same seed differed: %d/%d vs %d/%d",
				s.Name(), a.NumVertices, a.NumEdges, b.NumVertices, b.NumEdges)
		}
		for i := range a.InputNodes {
			if a.InputNodes[i] != b.InputNodes[i] {
				t.Fatalf("%s: input node order differs at %d", s.Name(), i)
			}
		}
	}
}

// TestLayerWiseBoundsLayerWidth is the Eq. 3 motivation: layer-wise
// sampling caps per-hop growth by a budget, while node-wise growth is
// multiplicative in the frontier.
func TestLayerWiseBoundsLayerWidth(t *testing.T) {
	g := testGraph(t)
	rng := rand.New(rand.NewSource(5))
	tg := targets(64, 400, 6)
	nw := (&NodeWise{Fanouts: []int{10, 10}}).Sample(rng, g, tg)
	lw := (&LayerWise{Deltas: []int{40, 40}}).Sample(rand.New(rand.NewSource(5)), g, tg)
	if lw.NumVertices >= nw.NumVertices {
		t.Errorf("layer-wise |Vi| %d not below node-wise %d at these budgets",
			lw.NumVertices, nw.NumVertices)
	}
	// Layer-wise total growth is bounded by the sum of budgets.
	nTargets := len(lw.Targets)
	if lw.NumVertices > nTargets+40+40 {
		t.Errorf("layer-wise grew %d vertices beyond budget %d", lw.NumVertices-nTargets, 80)
	}
}

// TestSubgraphWalkLengthGrowsBatch: longer walks visit more vertices.
func TestSubgraphWalkLengthGrowsBatch(t *testing.T) {
	g := testGraph(t)
	tg := targets(16, 400, 9)
	short := (&SubgraphWise{WalkLength: 2, Layers: 2}).Sample(rand.New(rand.NewSource(1)), g, tg)
	long := (&SubgraphWise{WalkLength: 20, Layers: 2}).Sample(rand.New(rand.NewSource(1)), g, tg)
	if long.NumVertices <= short.NumVertices {
		t.Errorf("walk 20 batch %d not above walk 2 batch %d", long.NumVertices, short.NumVertices)
	}
}

// TestIsolatedVertexSampling: a vertex with no neighbors still produces a
// structurally valid (self-only) batch.
func TestIsolatedVertexSampling(t *testing.T) {
	// Vertex 0 is isolated; 1 and 2 share an edge.
	g, err := graph.FromAdjList([][]int32{nil, {2}, {1}})
	if err != nil {
		t.Fatal(err)
	}
	s := &NodeWise{Fanouts: []int{4, 4}}
	mb := s.Sample(rand.New(rand.NewSource(1)), g, []int32{0}) // isolated
	if err := mb.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if mb.NumVertices != 1 || mb.NumEdges != 0 {
		t.Errorf("isolated batch: %d vertices %d edges, want 1/0", mb.NumVertices, mb.NumEdges)
	}
}

// TestBiasStrengthZeroEqualsUniform: bias with zero strength must be
// byte-identical to the uniform path.
func TestBiasStrengthZeroEqualsUniform(t *testing.T) {
	g := testGraph(t)
	bias := func(v int32) float64 { return 100 }
	tg := targets(16, 400, 4)
	a := (&NodeWise{Fanouts: []int{6}}).Sample(rand.New(rand.NewSource(2)), g, tg)
	b := (&NodeWise{Fanouts: []int{6}, Bias: bias, BiasStrength: 0}).Sample(rand.New(rand.NewSource(2)), g, tg)
	if a.NumVertices != b.NumVertices || a.NumEdges != b.NumEdges {
		t.Error("zero-strength bias changed sampling")
	}
}
