package sample

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"gnnavigator/internal/gen"
	"gnnavigator/internal/graph"
)

func testGraph(t *testing.T) *graph.Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(10))
	g, err := gen.BarabasiAlbert(rng, 400, 4)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func targets(n, max int, seed int64) []int32 {
	rng := rand.New(rand.NewSource(seed))
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(rng.Intn(max))
	}
	return out
}

func TestNodeWiseStructure(t *testing.T) {
	g := testGraph(t)
	s := &NodeWise{Fanouts: []int{5, 3}}
	rng := rand.New(rand.NewSource(1))
	mb := s.Sample(rng, g, targets(32, 400, 2))
	if err := mb.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(mb.Blocks) != 2 {
		t.Fatalf("blocks = %d, want 2", len(mb.Blocks))
	}
	// Hop-0 block (last) fans out at most 3 per target... wait: Fanouts[0]
	// is hop 0 feeding the LAST layer. Check per-dst caps instead.
	last := mb.Blocks[1]
	for i := 0; i < last.DstCount; i++ {
		deg := int(last.Offsets[i+1] - last.Offsets[i])
		if deg > 5 {
			t.Errorf("last-block dst %d sampled %d > fanout 5", i, deg)
		}
	}
	first := mb.Blocks[0]
	for i := 0; i < first.DstCount; i++ {
		deg := int(first.Offsets[i+1] - first.Offsets[i])
		if deg > 3 {
			t.Errorf("first-block dst %d sampled %d > fanout 3", i, deg)
		}
	}
	if mb.NumVertices != len(mb.Blocks[0].SrcNodes) {
		t.Errorf("NumVertices = %d, want %d", mb.NumVertices, len(mb.Blocks[0].SrcNodes))
	}
}

func TestNodeWiseDedupsTargets(t *testing.T) {
	g := testGraph(t)
	s := &NodeWise{Fanouts: []int{2}}
	rng := rand.New(rand.NewSource(1))
	mb := s.Sample(rng, g, []int32{7, 7, 7, 9})
	if len(mb.Targets) != 2 {
		t.Errorf("targets = %v, want deduped to 2", mb.Targets)
	}
}

func TestNodeWiseFullNeighborhood(t *testing.T) {
	g := testGraph(t)
	// Fanout 0 (or >= degree) means take all neighbors.
	s := &NodeWise{Fanouts: []int{0}}
	rng := rand.New(rand.NewSource(1))
	tg := []int32{5}
	mb := s.Sample(rng, g, tg)
	if mb.Blocks[0].NumEdges() != g.Degree(5) {
		t.Errorf("edges = %d, want full degree %d", mb.Blocks[0].NumEdges(), g.Degree(5))
	}
}

func TestNodeWiseBiasSkewsSelection(t *testing.T) {
	g := testGraph(t)
	// Bias toward even vertex ids.
	bias := func(v int32) float64 {
		if v%2 == 0 {
			return 10
		}
		return 0
	}
	biased := &NodeWise{Fanouts: []int{4}, Bias: bias, BiasStrength: 1}
	uniform := &NodeWise{Fanouts: []int{4}}
	countEven := func(s Sampler) (even, total int) {
		rng := rand.New(rand.NewSource(3))
		for trial := 0; trial < 50; trial++ {
			mb := s.Sample(rng, g, targets(16, 400, int64(trial)))
			blk := mb.Blocks[0]
			for _, ix := range blk.Indices {
				total++
				if blk.SrcNodes[ix]%2 == 0 {
					even++
				}
			}
		}
		return
	}
	be, bt := countEven(biased)
	ue, ut := countEven(uniform)
	bf, uf := float64(be)/float64(bt), float64(ue)/float64(ut)
	if bf <= uf+0.05 {
		t.Errorf("bias had no effect: biased even-frac %.3f vs uniform %.3f", bf, uf)
	}
}

func TestLayerWiseBudget(t *testing.T) {
	g := testGraph(t)
	s := &LayerWise{Deltas: []int{50, 30}}
	rng := rand.New(rand.NewSource(4))
	tg := targets(20, 400, 5)
	mb := s.Sample(rng, g, tg)
	if err := mb.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	// New vertices per hop bounded by delta.
	nt := len(dedup(tg))
	hop0New := len(mb.Blocks[1].SrcNodes) - nt
	if hop0New > 50 {
		t.Errorf("hop 0 added %d vertices, budget 50", hop0New)
	}
	hop1New := len(mb.Blocks[0].SrcNodes) - len(mb.Blocks[1].SrcNodes)
	if hop1New > 30 {
		t.Errorf("hop 1 added %d vertices, budget 30", hop1New)
	}
}

func TestSubgraphWise(t *testing.T) {
	g := testGraph(t)
	s := &SubgraphWise{WalkLength: 4, Layers: 2}
	rng := rand.New(rand.NewSource(6))
	tg := targets(16, 400, 7)
	mb := s.Sample(rng, g, tg)
	if err := mb.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if len(mb.Blocks) != 2 {
		t.Fatalf("layers = %d, want 2", len(mb.Blocks))
	}
	// Subgraph-wise: every block trains on the full induced subgraph.
	if mb.Blocks[0].DstCount != mb.NumVertices {
		t.Errorf("dst %d != subgraph size %d", mb.Blocks[0].DstCount, mb.NumVertices)
	}
	// All roots must be included.
	pos := map[int32]bool{}
	for _, v := range mb.InputNodes {
		pos[v] = true
	}
	for _, r := range dedup(tg) {
		if !pos[r] {
			t.Errorf("root %d missing from subgraph", r)
		}
	}
}

func TestAnalyticBatchSize(t *testing.T) {
	// tau=1: exact product.
	got := AnalyticBatchSize(10, []int{4, 2}, 1)
	if math.Abs(got-10*5*3) > 1e-9 {
		t.Errorf("AnalyticBatchSize = %v, want 150", got)
	}
	// tau<1 shrinks the estimate.
	if AnalyticBatchSize(10, []int{4, 2}, 0.9) >= got {
		t.Error("tau < 1 did not shrink estimate")
	}
	// No fanouts: just b0.
	if AnalyticBatchSize(7, nil, 1) != 7 {
		t.Error("empty fanouts should return b0")
	}
}

func TestEpochBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	train := make([]int32, 103)
	for i := range train {
		train[i] = int32(i)
	}
	batches := EpochBatches(rng, train, 25)
	if len(batches) != 5 {
		t.Fatalf("batches = %d, want 5 (4 full + 1 short)", len(batches))
	}
	if len(batches[4]) != 3 {
		t.Errorf("last batch = %d, want 3", len(batches[4]))
	}
	// Coverage: every vertex appears exactly once.
	seen := map[int32]int{}
	for _, b := range batches {
		for _, v := range b {
			seen[v]++
		}
	}
	for _, v := range train {
		if seen[v] != 1 {
			t.Fatalf("vertex %d appears %d times", v, seen[v])
		}
	}
}

func TestEpochBatchesZeroSize(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	batches := EpochBatches(rng, []int32{1, 2, 3}, 0)
	if len(batches) != 1 || len(batches[0]) != 3 {
		t.Errorf("b0=0 should produce one full batch, got %v", batches)
	}
}

// Property: all sampler outputs validate and respect the src/dst chain on
// random graphs and random target sets.
func TestSamplersValidateProperty(t *testing.T) {
	g := testGraph(t)
	samplers := []Sampler{
		&NodeWise{Fanouts: []int{3, 3}},
		&NodeWise{Fanouts: []int{5}},
		&LayerWise{Deltas: []int{20, 10}},
		&SubgraphWise{WalkLength: 3, Layers: 2},
	}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		tg := targets(1+rng.Intn(40), 400, seed)
		for _, s := range samplers {
			mb := s.Sample(rng, g, tg)
			if mb.Validate() != nil {
				return false
			}
			if mb.NumVertices <= 0 || mb.NumVertices > 400 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Property: minibatch size grows with fanout and never exceeds the
// analytic tau=1 upper bound.
func TestMinibatchSizeBoundProperty(t *testing.T) {
	g := testGraph(t)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b0 := 4 + rng.Intn(30)
		k := 1 + rng.Intn(6)
		s := &NodeWise{Fanouts: []int{k, k}}
		tg := targets(b0, 400, seed+1)
		mb := s.Sample(rng, g, tg)
		bound := AnalyticBatchSize(len(dedup(tg)), s.Fanouts, 1)
		return float64(mb.NumVertices) <= bound+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPickNeighborsWithoutReplacement(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	ns := []int32{1, 2, 3, 4, 5, 6, 7, 8}
	var sc pickScratch
	for trial := 0; trial < 20; trial++ {
		picks := sc.pickNeighbors(rng, ns, 4, nil, 0)
		if len(picks) != 4 {
			t.Fatalf("picked %d, want 4", len(picks))
		}
		seen := map[int32]bool{}
		for _, p := range picks {
			if seen[p] {
				t.Fatalf("duplicate pick %d", p)
			}
			seen[p] = true
		}
	}
	// Biased variant also without replacement.
	bias := func(v int32) float64 { return float64(v) }
	for trial := 0; trial < 20; trial++ {
		picks := sc.pickNeighbors(rng, ns, 5, bias, 1)
		seen := map[int32]bool{}
		for _, p := range picks {
			if seen[p] {
				t.Fatalf("duplicate biased pick %d", p)
			}
			seen[p] = true
		}
	}
}
