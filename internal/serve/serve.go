// Package serve is the HTTP front of the inference engine: a stdlib
// net/http service that loads a trained model (model.Load), coalesces
// concurrent /predict requests into minibatches through infer.Coalescer,
// gathers features through whatever feature plane the engine was built
// with, and reports serving statistics (p50/p99 latency, throughput,
// cache hit rate). cmd/gnnserve wires it to flags; benchtab's serve
// bench drives it with closed-loop load.
package serve

import (
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/infer"
)

// latencyWindow bounds the latency ring buffer: percentiles are over
// the most recent window, so a long-running server's tail reflects
// current behavior, not startup.
const latencyWindow = 16384

// Config wires a Server.
type Config struct {
	// Engine is the loaded inference engine requests run on.
	Engine *infer.Engine
	// MaxBatch and MaxWait tune the request coalescer (its defaults
	// apply when zero).
	MaxBatch int
	MaxWait  time.Duration
	// MaxVertices bounds a single request's target count (default 1024):
	// a request larger than the coalescer's whole batch budget should be
	// split by the client, not monopolize the engine.
	MaxVertices int
}

// Server handles /predict, /stats and /healthz. Create with New, mount
// via Handler, stop with Close.
type Server struct {
	eng   *infer.Engine
	coal  *infer.Coalescer
	maxV  int
	start time.Time

	requests atomic.Int64
	errors   atomic.Int64
	vertices atomic.Int64

	mu   sync.Mutex
	ring [latencyWindow]float64 // request latency, milliseconds
	n    int                    // filled entries (≤ latencyWindow)
	next int                    // ring write cursor
}

// New starts the server's coalescer. Close releases it.
func New(cfg Config) (*Server, error) {
	if cfg.Engine == nil {
		return nil, fmt.Errorf("serve: need an engine")
	}
	if cfg.MaxVertices <= 0 {
		cfg.MaxVertices = 1024
	}
	return &Server{
		eng:   cfg.Engine,
		coal:  infer.NewCoalescer(cfg.Engine, infer.CoalescerConfig{MaxBatch: cfg.MaxBatch, MaxWait: cfg.MaxWait}),
		maxV:  cfg.MaxVertices,
		start: time.Now(),
	}, nil
}

// Close stops the coalescer; in-flight requests complete or get
// infer.ErrCoalescerClosed.
func (s *Server) Close() { s.coal.Close() }

// Handler returns the route mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/predict", s.handlePredict)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/healthz", s.handleHealthz)
	return mux
}

type predictRequest struct {
	Vertices []int32 `json:"vertices"`
}

type predictResponse struct {
	Classes []int32 `json:"classes"`
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	s.requests.Add(1)
	t0 := time.Now()
	if err := faultinject.Fire(faultinject.ServeDecode); err != nil {
		s.errors.Add(1)
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	var req predictRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	if err := dec.Decode(&req); err != nil {
		s.errors.Add(1)
		httpError(w, http.StatusBadRequest, "bad request body: "+err.Error())
		return
	}
	if len(req.Vertices) == 0 {
		s.errors.Add(1)
		httpError(w, http.StatusBadRequest, "empty vertices list")
		return
	}
	if len(req.Vertices) > s.maxV {
		s.errors.Add(1)
		httpError(w, http.StatusBadRequest,
			fmt.Sprintf("%d vertices in one request, limit %d", len(req.Vertices), s.maxV))
		return
	}
	n := int32(s.eng.Graph().NumVertices())
	for _, v := range req.Vertices {
		if v < 0 || v >= n {
			s.errors.Add(1)
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("vertex %d out of range [0,%d)", v, n))
			return
		}
	}
	classes, err := s.coal.Predict(r.Context(), req.Vertices)
	if err != nil {
		s.errors.Add(1)
		httpError(w, http.StatusInternalServerError, err.Error())
		return
	}
	s.vertices.Add(int64(len(req.Vertices)))
	s.observe(time.Since(t0))
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(predictResponse{Classes: classes})
}

// Stats is the /stats payload.
type Stats struct {
	Requests         int64   `json:"requests"`
	Errors           int64   `json:"errors"`
	Vertices         int64   `json:"vertices"`
	Flushes          int64   `json:"flushes"`
	MeanBatch        float64 `json:"mean_batch"`
	HitRate          float64 `json:"hit_rate"`
	TransferredBytes int64   `json:"transferred_bytes"`
	P50Ms            float64 `json:"p50_ms"`
	P99Ms            float64 `json:"p99_ms"`
	RPS              float64 `json:"rps"`
	UptimeSec        float64 `json:"uptime_sec"`
}

// Snapshot assembles the current statistics (also what /stats serves).
func (s *Server) Snapshot() Stats {
	st := Stats{
		Requests:  s.requests.Load(),
		Errors:    s.errors.Load(),
		Vertices:  s.vertices.Load(),
		Flushes:   s.coal.Flushes(),
		MeanBatch: s.coal.MeanBatch(),
		UptimeSec: time.Since(s.start).Seconds(),
	}
	if src := s.eng.Source(); src != nil {
		st.HitRate = src.HitRate()
		st.TransferredBytes = src.TransferredBytes()
	}
	if st.UptimeSec > 0 {
		st.RPS = float64(st.Requests) / st.UptimeSec
	}
	st.P50Ms, st.P99Ms = s.percentiles()
	return st
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(s.Snapshot())
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{
		"status":   "ok",
		"model":    string(s.eng.Model().Cfg().Kind),
		"vertices": s.eng.Graph().NumVertices(),
		"classes":  s.eng.Graph().NumClasses,
	})
}

// observe records one served request's latency in the ring.
func (s *Server) observe(d time.Duration) {
	ms := float64(d) / float64(time.Millisecond)
	s.mu.Lock()
	s.ring[s.next] = ms
	s.next = (s.next + 1) % latencyWindow
	if s.n < latencyWindow {
		s.n++
	}
	s.mu.Unlock()
}

// percentiles returns p50/p99 over the latency window.
func (s *Server) percentiles() (p50, p99 float64) {
	s.mu.Lock()
	buf := append([]float64(nil), s.ring[:s.n]...)
	s.mu.Unlock()
	if len(buf) == 0 {
		return 0, 0
	}
	sort.Float64s(buf)
	at := func(q float64) float64 {
		i := int(math.Ceil(q*float64(len(buf)))) - 1
		if i < 0 {
			i = 0
		}
		return buf[i]
	}
	return at(0.50), at(0.99)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
