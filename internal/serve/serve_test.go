package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gnnavigator/internal/dataset"
	"gnnavigator/internal/faultinject"
	"gnnavigator/internal/infer"
	"gnnavigator/internal/model"
	"gnnavigator/internal/serve"
)

func testServer(t *testing.T, cfg serve.Config) (*serve.Server, *httptest.Server, *infer.Engine) {
	t.Helper()
	d, err := dataset.Load(dataset.OgbnArxiv)
	if err != nil {
		t.Fatal(err)
	}
	m, err := model.New(model.Config{
		Kind: model.SAGE, InDim: d.Graph.FeatDim, Hidden: 16,
		OutDim: d.Graph.NumClasses, Layers: 2, Seed: 5,
	})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := infer.New(infer.Config{Graph: d.Graph, Model: m, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	cfg.Engine = eng
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts, eng
}

func postPredict(t *testing.T, url string, body string) (*http.Response, map[string]json.RawMessage) {
	t.Helper()
	resp, err := http.Post(url+"/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("non-JSON response (status %d): %v", resp.StatusCode, err)
	}
	return resp, out
}

// TestPredictEndpoint: a lone request is its own coalesced batch, so
// the served classes must match a direct engine Predict of the same
// targets exactly.
func TestPredictEndpoint(t *testing.T) {
	_, ts, eng := testServer(t, serve.Config{})
	targets := []int32{3, 1, 4, 1, 5}
	want, err := eng.Predict(context.Background(), targets)
	if err != nil {
		t.Fatal(err)
	}
	resp, out := postPredict(t, ts.URL, `{"vertices":[3,1,4,1,5]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, out["error"])
	}
	var classes []int32
	if err := json.Unmarshal(out["classes"], &classes); err != nil {
		t.Fatal(err)
	}
	if len(classes) != len(targets) {
		t.Fatalf("%d classes for %d targets", len(classes), len(targets))
	}
	for i := range classes {
		if classes[i] != want.Classes[i] {
			t.Errorf("class[%d] = %d, engine says %d", i, classes[i], want.Classes[i])
		}
	}
}

func TestPredictRejections(t *testing.T) {
	_, ts, _ := testServer(t, serve.Config{MaxVertices: 4})
	cases := []struct {
		name, body string
	}{
		{"bad json", `{"vertices":`},
		{"empty list", `{"vertices":[]}`},
		{"out of range", `{"vertices":[999999]}`},
		{"negative", `{"vertices":[-1]}`},
		{"too many", `{"vertices":[1,2,3,4,5]}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, out := postPredict(t, ts.URL, tc.body)
			if resp.StatusCode != http.StatusBadRequest {
				t.Errorf("status %d, want 400 (%s)", resp.StatusCode, out["error"])
			}
			if len(out["error"]) == 0 {
				t.Error("no error message in rejection body")
			}
		})
	}
	resp, err := http.Get(ts.URL + "/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /predict: status %d, want 405", resp.StatusCode)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	_, ts, _ := testServer(t, serve.Config{})
	for i := 0; i < 3; i++ {
		resp, out := postPredict(t, ts.URL, fmt.Sprintf(`{"vertices":[%d,%d]}`, 2*i, 2*i+1))
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, out["error"])
		}
	}
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st serve.Stats
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Requests != 3 || st.Errors != 0 || st.Vertices != 6 {
		t.Errorf("counters off: %+v", st)
	}
	if st.Flushes < 1 || st.Flushes > 3 {
		t.Errorf("flushes %d for 3 sequential requests", st.Flushes)
	}
	if st.P50Ms <= 0 || st.P99Ms < st.P50Ms {
		t.Errorf("percentiles degenerate: p50=%v p99=%v", st.P50Ms, st.P99Ms)
	}
	if st.RPS <= 0 || st.UptimeSec <= 0 {
		t.Errorf("throughput degenerate: %+v", st)
	}
	if st.HitRate != 0 || st.TransferredBytes != 0 {
		t.Errorf("uncached engine reported cache stats: %+v", st)
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || hz["status"] != "ok" {
		t.Errorf("healthz: status %d, body %v", resp.StatusCode, hz)
	}
	if hz["model"] != "sage" && hz["model"] != "SAGE" {
		t.Errorf("healthz model = %v", hz["model"])
	}
}

// TestConcurrentRequestsCoalesce: a synchronized burst against a
// generous wait window must answer every request and need fewer engine
// flushes than there were requests.
func TestConcurrentRequestsCoalesce(t *testing.T) {
	srv, ts, _ := testServer(t, serve.Config{MaxWait: 300 * time.Millisecond})
	const clients = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			resp, out := postPredict(t, ts.URL, fmt.Sprintf(`{"vertices":[%d,%d]}`, 3*i, 3*i+1))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("client %d: status %d: %s", i, resp.StatusCode, out["error"])
			}
		}(i)
	}
	close(start)
	wg.Wait()
	st := srv.Snapshot()
	if st.Requests != clients || st.Errors != 0 {
		t.Errorf("counters off: %+v", st)
	}
	if st.Flushes >= clients {
		t.Errorf("nothing coalesced: %d flushes for %d concurrent requests", st.Flushes, clients)
	}
}

// TestChaosServeDecode arms the serve/decode injection point: the
// faulted request must come back as a clean 500 with a recognizable
// injected error, and the very next request must succeed.
func TestChaosServeDecode(t *testing.T) {
	defer faultinject.Reset()
	_, ts, _ := testServer(t, serve.Config{})
	faultinject.Arm(faultinject.ServeDecode, faultinject.Spec{Kind: faultinject.Error, Count: 1})
	resp, out := postPredict(t, ts.URL, `{"vertices":[1]}`)
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("armed decode fault: status %d, want 500", resp.StatusCode)
	}
	if !bytes.Contains(out["error"], []byte("injected")) {
		t.Fatalf("fault surfaced unrecognizably: %s", out["error"])
	}
	faultinject.Reset()
	resp, out = postPredict(t, ts.URL, `{"vertices":[1]}`)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("request after disarm: status %d: %s", resp.StatusCode, out["error"])
	}
}
