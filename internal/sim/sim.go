// Package sim is the executable form of the paper's white-box performance
// model: per-batch timing (Eqs. 5–8), pipelined epoch time (Eq. 4) and the
// device memory decomposition (Eqs. 9–10).
//
// The backend measures real per-batch volumes (sampled vertices, cache
// misses, edges, FLOPs) by actually running samplers, caches and the Go
// trainer on the scaled synthetic graphs, then hands those volumes to this
// package, which scales them to paper-size workloads and converts them to
// simulated seconds and bytes on a hw.Platform. This is precisely the
// "theoretical analysis" half of the gray-box estimator, made executable
// and deterministic.
package sim

import (
	"fmt"

	"gnnavigator/internal/cache"
	"gnnavigator/internal/hw"
)

// Workload scales measured per-batch volumes to paper scale.
type Workload struct {
	// VertexScale multiplies vertex and edge counts (the dataset's
	// FullVertices / scaled |V|).
	VertexScale float64
	// FeatDim is the paper-scale per-vertex attribute dimension n_attr.
	FeatDim int
	// BytesPerScalar is the compute-side scalar width (4 for float32):
	// model parameters, activations and per-edge message buffers, which
	// stay at full width regardless of feature storage precision.
	BytesPerScalar float64
	// Precision is the feature-plane storage width: it prices the Eq. 6
	// transfer payload and the Eq. 9 Γ_cache row footprint. The zero
	// value is the float32 baseline (bitwise-identical accounting to the
	// pre-precision model).
	Precision cache.Precision
	// Devices is the data-parallel device count K (0 or 1 = single
	// device). K > 1 splits the partitionable per-batch work — transfer,
	// replacement, compute — across K devices and adds the halo-exchange
	// and ring all-reduce terms; K = 1 reproduces the single-device model
	// bitwise.
	Devices int
}

// deviceCount returns the effective K (Devices, floored at 1).
func (w Workload) deviceCount() int {
	if w.Devices < 1 {
		return 1
	}
	return w.Devices
}

// Validate checks workload sanity.
func (w Workload) Validate() error {
	if w.VertexScale <= 0 || w.FeatDim <= 0 || w.BytesPerScalar <= 0 {
		return fmt.Errorf("sim: invalid workload %+v", w)
	}
	if !w.Precision.Valid() {
		return fmt.Errorf("sim: unknown feature precision %q", w.Precision)
	}
	if w.Devices < 0 {
		return fmt.Errorf("sim: negative device count %d", w.Devices)
	}
	return nil
}

// BatchVolumes carries the measured, *scaled-graph* quantities of one
// mini-batch iteration. All counts are raw (unscaled); the simulator
// applies Workload.VertexScale.
type BatchVolumes struct {
	// SampledVertices is |V_i|, the distinct vertices in the mini-batch.
	SampledVertices int
	// TargetVertices is |B_0|, the seed set size.
	TargetVertices int
	// InputVertices is the number of vertices whose features are needed on
	// device (the first block's sources).
	InputVertices int
	// MissVertices is the subset of InputVertices absent from the device
	// cache — the transfer volume numerator of Eq. 6.
	MissVertices int
	// TransferBytes is the measured host→device feature traffic of the
	// batch at the scaled feature width (ScaledFeatDim × 4 bytes per
	// row), as accounted by the feature plane. When > 0 it replaces the
	// MissVertices count in Eq. 6: the simulator derives the transferred
	// row count from what actually crossed the link rather than from the
	// lookup outcome alone. 0 falls back to MissVertices (predicted
	// volumes, e.g. the estimator's Predict path).
	TransferBytes float64
	// CacheUpdateOps is the number of replacement operations (Eq. 5).
	CacheUpdateOps int
	// SampledEdges is the total sampled message edges.
	SampledEdges int
	// FLOPs is the model's forward+backward multiply-add estimate for this
	// batch at *scaled-graph* feature dims; the simulator rescales the
	// input-layer share via FeatureFLOPShare.
	FLOPs float64
	// FeatureFLOPShare in [0,1] is the fraction of FLOPs proportional to
	// the input feature dimension (layer-0 work).
	FeatureFLOPShare float64
	// ScaledFeatDim is the scaled-graph feature dimension the FLOPs were
	// computed with.
	ScaledFeatDim int
	// Layers is the model depth (kernel launches per batch ∝ layers).
	Layers int
	// WalkSteps counts random-walk steps for subgraph samplers (0 for
	// node/layer-wise); they add host sampling work not captured by edges.
	WalkSteps int
	// HaloBytes is the measured device-to-device halo-exchange traffic of
	// the batch at the scaled feature width (same currency as
	// TransferBytes): feature rows a partition's consumer fetched from a
	// remote owner. 0 when single-device.
	HaloBytes float64
	// AllReduceBytes is the raw gradient payload |Φ|·4 bytes at *paper*
	// scale (model size does not grow with VertexScale, so no rescale is
	// applied); the simulator applies the ring all-reduce wire factor
	// 2(K-1)/K. 0 when single-device.
	AllReduceBytes float64
}

// BatchTiming is the per-component cost of one iteration, in seconds.
type BatchTiming struct {
	TSample   float64 // Eq. 7: host-side sampling
	TTransfer float64 // Eq. 6: host→device feature movement
	TReplace  float64 // Eq. 5: cache update on device
	TCompute  float64 // Eq. 8: aggregate/combine forward+backward
	// THalo prices the device-to-device halo exchange (Eq. 6-style, over
	// the interconnect). It rides the host side of the pipeline: remote
	// rows must land before compute consumes the batch, overlapping the
	// next iteration's device work exactly like host→device transfers.
	THalo float64
	// TAllReduce prices the ring all-reduce of gradients after backward.
	// It rides the device side: the optimizer step serializes behind it.
	TAllReduce float64
}

// HostSide returns the host pipeline occupancy t_sample + t_transfer
// (+ halo exchange on multi-device platforms).
func (t BatchTiming) HostSide() float64 { return t.TSample + t.TTransfer + t.THalo }

// DeviceSide returns the device pipeline occupancy t_replace + t_compute
// (+ gradient all-reduce on multi-device platforms).
func (t BatchTiming) DeviceSide() float64 { return t.TReplace + t.TCompute + t.TAllReduce }

// Critical returns the pipelined per-iteration latency max(host, device),
// the inner term of Eq. 4.
func (t BatchTiming) Critical() float64 {
	h, d := t.HostSide(), t.DeviceSide()
	if h > d {
		return h
	}
	return d
}

// Total returns the unpipelined sum (used for ablation of Eq. 4's max).
func (t BatchTiming) Total() float64 {
	return t.HostSide() + t.DeviceSide()
}

// EstimateBatch converts measured batch volumes into per-component times
// on the platform, at paper scale.
func EstimateBatch(v BatchVolumes, p hw.Platform, w Workload) BatchTiming {
	vs := w.VertexScale
	featBytes := float64(w.FeatDim) * w.BytesPerScalar
	// Transfer terms price the quantized row payload, not the compute
	// width: at float32 the two agree bitwise, at compact precisions the
	// payload shrinks 2–4×.
	xferBytes := float64(w.Precision.RowBytes(w.FeatDim))

	// Eq. 7: t_sample = f(|V_i| - |B_0|, Host). Neighbor expansion cost is
	// proportional to sampled edges (plus walk steps), parallel over cores.
	hostEdges := (float64(v.SampledEdges) + float64(v.WalkSteps)) * vs
	tSample := hostEdges/(p.Host.SampleEdgesPerSec*float64(p.Host.Cores)) + 30e-6
	// Feature gather for the missing rows happens on the host too. The
	// transferred row count comes from the feature plane's measured byte
	// accounting when available (divided by the precision's scaled-graph
	// row bytes, matching how the plane priced them), the cache-lookup
	// miss count otherwise.
	missRows := float64(v.MissVertices)
	if v.TransferBytes > 0 && v.ScaledFeatDim > 0 {
		missRows = v.TransferBytes / float64(w.Precision.RowBytes(v.ScaledFeatDim))
	}
	missBytes := missRows * vs * xferBytes
	tSample += missBytes / p.Host.GatherBytesPerSec

	// K > 1 splits the per-batch partitionable work across devices: each
	// device owns ~1/K of the vertex partition, so its share of transfer,
	// replacement and compute is 1/K (host links and device kernels run
	// in parallel). Sampling stays whole — it is shared host work. kf = 1
	// leaves every formula bitwise-identical to the single-device model.
	kf := float64(w.deviceCount())

	// Eq. 6: t_transfer = f(n_attr · |V_i|(1-hit), Host, Device).
	tTransfer := missBytes/kf/p.Link.BytesPerSec + p.Link.LatencySec

	// Eq. 5: t_replace = f(r|V|, |V_i|(1-hit), Device): write the admitted
	// (quantized) rows and fix the indexing structures.
	updBytes := float64(v.CacheUpdateOps) * vs * xferBytes
	var tReplace float64
	if v.CacheUpdateOps > 0 {
		tReplace = updBytes/kf/p.Device.MemBytesPerSec + 20e-6
	}

	// Halo exchange (Eq. 6-style over the device interconnect): the
	// measured scaled-width halo bytes are rescaled to paper width the
	// same way miss bytes are, then split across K parallel exchanges.
	var tHalo float64
	if v.HaloBytes > 0 && kf > 1 && v.ScaledFeatDim > 0 {
		haloRows := v.HaloBytes / float64(w.Precision.RowBytes(v.ScaledFeatDim))
		haloBytes := haloRows * vs * xferBytes
		tHalo = haloBytes/kf/p.Interconnect.BytesPerSec + p.Interconnect.LatencySec
	}

	// Ring all-reduce of gradients: each device sends and receives
	// 2(K-1)/K of the payload over 2(K-1) latency-bound steps.
	var tAllReduce float64
	if v.AllReduceBytes > 0 && kf > 1 {
		wire := 2 * (kf - 1) / kf * v.AllReduceBytes
		tAllReduce = wire/p.Interconnect.BytesPerSec + 2*(kf-1)*p.Interconnect.LatencySec
	}

	// Eq. 8: t_compute = f(V_i, M, Device). Rescale the feature-dependent
	// share of FLOPs from the scaled feature dim to the full one, then
	// scale the whole batch by vertex scale.
	flops := v.FLOPs
	if v.ScaledFeatDim > 0 && w.FeatDim != v.ScaledFeatDim {
		ratio := float64(w.FeatDim) / float64(v.ScaledFeatDim)
		flops = flops*(1-v.FeatureFLOPShare) + flops*v.FeatureFLOPShare*ratio
	}
	flops *= vs
	// Forward + backward ≈ 3x forward cost (standard rule of thumb). Each
	// of the K devices computes its 1/K vertex share but still launches
	// every kernel.
	tCompute := 3*flops/kf/(p.Device.EffGFLOPS*1e9) +
		float64(2*v.Layers+1)*p.Device.KernelLaunchSec
	// Memory-bound floor: each sampled edge moves one embedding row.
	embBytes := float64(v.SampledEdges) * vs * featBytes * 0.5
	if mem := embBytes / kf / p.Device.MemBytesPerSec; mem > tCompute {
		tCompute = mem
	}

	return BatchTiming{
		TSample: tSample, TTransfer: tTransfer, TReplace: tReplace,
		TCompute: tCompute, THalo: tHalo, TAllReduce: tAllReduce,
	}
}

// EpochTime implements Eq. 4: T = n_iter · max(t_sample + t_transfer,
// t_replace + t_compute), summed over the measured iterations (which also
// handles heterogeneous batch sizes exactly).
func EpochTime(batches []BatchTiming) float64 {
	var total float64
	for _, b := range batches {
		total += b.Critical()
	}
	return total
}

// EpochTimeUnpipelined sums the serial (non-overlapped) iteration costs;
// the ablation benchmark compares this against EpochTime to quantify the
// value of the pipeline model.
func EpochTimeUnpipelined(batches []BatchTiming) float64 {
	var total float64
	for _, b := range batches {
		total += b.Total()
	}
	return total
}

// MemoryVolumes carries what Eq. 9–10 need.
type MemoryVolumes struct {
	// ModelParams is |Φ|, scalar parameter count.
	ModelParams int
	// CacheVertices is r·|V| at paper scale already (capacity in vertices).
	CacheVertices float64
	// PeakBatchVertices is max_i |V_i| (unscaled; simulator scales it).
	PeakBatchVertices int
	// PeakBatchEdges is max_i sampled edges (unscaled). Scatter-gather GNN
	// frameworks materialize a per-edge message buffer of the layer width
	// (and per-edge attention coefficients for GAT), so edge count is a
	// first-order driver of Γ_runtime.
	PeakBatchEdges int
	// HiddenDims sums the per-layer embedding widths (runtime activations
	// are proportional to it).
	HiddenDims int
	// MaxWidth is the widest layer dimension (per-edge message width).
	MaxWidth int
	// Layers is the model depth.
	Layers int
}

// MemoryBreakdown is Eq. 9's decomposition, in bytes.
type MemoryBreakdown struct {
	Model   float64
	Cache   float64
	Runtime float64
}

// Total returns Γ = Γ_model + Γ_cache + Γ_runtime.
func (m MemoryBreakdown) Total() float64 { return m.Model + m.Cache + m.Runtime }

// EstimateMemory implements Eqs. 9–10. The breakdown is *per device*: on
// a K-device platform the model is replicated (data parallelism) while
// the cache shard and the batch's runtime working set each hold ~1/K of
// the whole — so adding devices is also a memory-relief knob for
// FitsDevice, not just a throughput one.
func EstimateMemory(v MemoryVolumes, w Workload) MemoryBreakdown {
	bytesPer := w.BytesPerScalar
	kf := float64(w.deviceCount())
	// Γ_model ∝ |Φ|: value + grad + two Adam moments, replicated on every
	// device.
	model := float64(v.ModelParams) * bytesPer * 4
	// Γ_cache = f(r|V| · n_attr) at the feature storage precision:
	// CacheVertices rows, each occupying the quantized payload plus any
	// per-row quantization parameters. At float32 this is bitwise the
	// pre-precision CacheVertices · FeatDim · 4 (scaling by a power of
	// two commutes with IEEE rounding). Each device shards 1/K of the
	// capacity (its partition's share).
	cacheB := v.CacheVertices * float64(w.Precision.StorageRowBytes(w.FeatDim)) / kf
	// Γ_runtime = f(|V_i|, Φ): input features + activations (forward +
	// retained for backward → 2x) across layers, plus the per-edge message
	// buffer scatter-gather frameworks materialize. Each device holds its
	// partition's ~1/K vertex/edge share of the batch.
	peak := float64(v.PeakBatchVertices) * w.VertexScale / kf
	runtime := peak * (float64(w.FeatDim) + 2*float64(v.HiddenDims)) * bytesPer
	runtime += float64(v.PeakBatchEdges) * w.VertexScale / kf * float64(v.MaxWidth) * bytesPer
	// CUDA-style allocator and kernel workspace overhead (per device).
	runtime += 64 * 1024 * 1024
	return MemoryBreakdown{Model: model, Cache: cacheB, Runtime: runtime}
}

// FitsDevice reports whether the memory breakdown fits the device,
// leaving headroomFraction (e.g. 0.05) spare.
func FitsDevice(m MemoryBreakdown, p hw.Platform, headroomFraction float64) bool {
	return m.Total() <= p.Device.MemCapacityBytes*(1-headroomFraction)
}
