package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gnnavigator/internal/hw"
)

func workload() Workload {
	return Workload{VertexScale: 30, FeatDim: 602, BytesPerScalar: 4}
}

func volumes() BatchVolumes {
	return BatchVolumes{
		SampledVertices:  8000,
		TargetVertices:   1024,
		InputVertices:    8000,
		MissVertices:     3000,
		CacheUpdateOps:   0,
		SampledEdges:     20000,
		FLOPs:            5e7,
		FeatureFLOPShare: 0.5,
		ScaledFeatDim:    48,
		Layers:           2,
	}
}

func TestWorkloadValidate(t *testing.T) {
	if err := workload().Validate(); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
	bad := workload()
	bad.FeatDim = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestPlatformProfilesValid(t *testing.T) {
	for name, p := range hw.Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
}

func TestEstimateBatchComponentsPositive(t *testing.T) {
	tm := EstimateBatch(volumes(), hw.RTX4090(), workload())
	if tm.TSample <= 0 || tm.TTransfer <= 0 || tm.TCompute <= 0 {
		t.Errorf("non-positive component: %+v", tm)
	}
	if tm.TReplace != 0 {
		t.Errorf("TReplace = %v, want 0 with no cache updates", tm.TReplace)
	}
	v := volumes()
	v.CacheUpdateOps = 2000
	tm2 := EstimateBatch(v, hw.RTX4090(), workload())
	if tm2.TReplace <= 0 {
		t.Error("TReplace = 0 despite cache updates")
	}
}

func TestMissesDriveTransfer(t *testing.T) {
	v := volumes()
	p := hw.RTX4090()
	w := workload()
	high := EstimateBatch(v, p, w)
	v.MissVertices = 100
	low := EstimateBatch(v, p, w)
	if low.TTransfer >= high.TTransfer {
		t.Errorf("fewer misses did not reduce transfer: %v vs %v", low.TTransfer, high.TTransfer)
	}
}

func TestCriticalIsMax(t *testing.T) {
	b := BatchTiming{TSample: 1, TTransfer: 2, TReplace: 0.5, TCompute: 1}
	if b.Critical() != 3 {
		t.Errorf("Critical = %v, want 3 (host side)", b.Critical())
	}
	if b.Total() != 4.5 {
		t.Errorf("Total = %v, want 4.5", b.Total())
	}
	b2 := BatchTiming{TSample: 0.1, TTransfer: 0.1, TReplace: 1, TCompute: 3}
	if b2.Critical() != 4 {
		t.Errorf("Critical = %v, want 4 (device side)", b2.Critical())
	}
}

func TestEpochTimePipelinedLower(t *testing.T) {
	batches := []BatchTiming{
		{TSample: 1, TTransfer: 1, TCompute: 1.5},
		{TSample: 0.5, TTransfer: 0.5, TCompute: 2},
	}
	pip := EpochTime(batches)
	ser := EpochTimeUnpipelined(batches)
	if pip >= ser {
		t.Errorf("pipelined %v >= serial %v", pip, ser)
	}
	// Batch 1: max(1+1, 1.5) = 2; batch 2: max(0.5+0.5, 2) = 2.
	if pip != 4 {
		t.Errorf("pipelined = %v, want 4", pip)
	}
}

func TestFasterDeviceReducesCompute(t *testing.T) {
	v := volumes()
	w := workload()
	slow := EstimateBatch(v, hw.M90(), w)
	fast := EstimateBatch(v, hw.A100(), w)
	if fast.TCompute >= slow.TCompute {
		t.Errorf("A100 compute %v >= M90 %v", fast.TCompute, slow.TCompute)
	}
}

func TestFeatureDimRescaling(t *testing.T) {
	v := volumes()
	p := hw.RTX4090()
	small := workload()
	small.FeatDim = 48 // same as scaled: no rescale
	big := workload()  // 602
	tSmall := EstimateBatch(v, p, small)
	tBig := EstimateBatch(v, p, big)
	if tBig.TCompute <= tSmall.TCompute {
		t.Errorf("larger full feature dim did not increase compute: %v vs %v",
			tBig.TCompute, tSmall.TCompute)
	}
}

func TestEstimateMemoryBreakdown(t *testing.T) {
	w := workload()
	m := EstimateMemory(MemoryVolumes{
		ModelParams:       100_000,
		CacheVertices:     50_000,
		PeakBatchVertices: 8000,
		HiddenDims:        64,
		Layers:            2,
	}, w)
	if m.Model <= 0 || m.Cache <= 0 || m.Runtime <= 0 {
		t.Errorf("non-positive memory component: %+v", m)
	}
	wantModel := 100_000.0 * 4 * 4
	if m.Model != wantModel {
		t.Errorf("Model = %v, want %v", m.Model, wantModel)
	}
	wantCache := 50_000.0 * 602 * 4
	if m.Cache != wantCache {
		t.Errorf("Cache = %v, want %v", m.Cache, wantCache)
	}
	if m.Total() != m.Model+m.Cache+m.Runtime {
		t.Error("Total != sum of parts")
	}
}

func TestZeroCacheHasNoCacheMemory(t *testing.T) {
	m := EstimateMemory(MemoryVolumes{ModelParams: 10, PeakBatchVertices: 10, HiddenDims: 8}, workload())
	if m.Cache != 0 {
		t.Errorf("Cache = %v, want 0", m.Cache)
	}
}

func TestFitsDevice(t *testing.T) {
	p := hw.M90() // 8 GiB
	small := MemoryBreakdown{Model: 1e6, Cache: 1e6, Runtime: 1e6}
	if !FitsDevice(small, p, 0.05) {
		t.Error("3 MB reported as not fitting 8 GiB")
	}
	huge := MemoryBreakdown{Cache: 16 * hw.GiB}
	if FitsDevice(huge, p, 0.05) {
		t.Error("16 GiB reported as fitting 8 GiB")
	}
}

// Property: every timing component is non-negative and monotone in vertex
// scale.
func TestTimingMonotoneInScaleProperty(t *testing.T) {
	p := hw.RTX4090()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := BatchVolumes{
			SampledVertices:  100 + rng.Intn(10000),
			TargetVertices:   1 + rng.Intn(1000),
			InputVertices:    100 + rng.Intn(10000),
			MissVertices:     rng.Intn(5000),
			CacheUpdateOps:   rng.Intn(3000),
			SampledEdges:     100 + rng.Intn(50000),
			FLOPs:            1e5 + rng.Float64()*1e8,
			FeatureFLOPShare: rng.Float64(),
			ScaledFeatDim:    16 + rng.Intn(64),
			Layers:           1 + rng.Intn(3),
		}
		w1 := Workload{VertexScale: 1 + rng.Float64()*10, FeatDim: 64 + rng.Intn(600), BytesPerScalar: 4}
		w2 := w1
		w2.VertexScale *= 2
		t1 := EstimateBatch(v, p, w1)
		t2 := EstimateBatch(v, p, w2)
		if t1.TSample < 0 || t1.TTransfer < 0 || t1.TReplace < 0 || t1.TCompute < 0 {
			return false
		}
		return t2.TSample >= t1.TSample && t2.TTransfer >= t1.TTransfer &&
			t2.TReplace >= t1.TReplace && t2.TCompute >= t1.TCompute &&
			t2.Critical() >= t1.Critical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: memory total is monotone in every volume knob.
func TestMemoryMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := Workload{VertexScale: 1 + rng.Float64()*20, FeatDim: 32 + rng.Intn(600), BytesPerScalar: 4}
		base := MemoryVolumes{
			ModelParams:       1000 + rng.Intn(100000),
			CacheVertices:     float64(rng.Intn(100000)),
			PeakBatchVertices: 100 + rng.Intn(10000),
			HiddenDims:        16 + rng.Intn(256),
			Layers:            1 + rng.Intn(4),
		}
		m0 := EstimateMemory(base, w).Total()
		up := base
		up.ModelParams *= 2
		if EstimateMemory(up, w).Total() < m0 {
			return false
		}
		up = base
		up.CacheVertices += 1000
		if EstimateMemory(up, w).Total() <= m0 {
			return false
		}
		up = base
		up.PeakBatchVertices *= 2
		return EstimateMemory(up, w).Total() > m0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWithMemoryCapsCache(t *testing.T) {
	p := hw.RTX4090().WithMemory(2 * hw.GiB)
	if p.Device.MemCapacityBytes != 2*hw.GiB {
		t.Errorf("WithMemory = %v", p.Device.MemCapacityBytes)
	}
	if got := p.FreeForCacheBytes(3 * hw.GiB); got != 0 {
		t.Errorf("FreeForCacheBytes over budget = %v, want 0", got)
	}
	if got := p.FreeForCacheBytes(0.5 * hw.GiB); got != 1.5*hw.GiB {
		t.Errorf("FreeForCacheBytes = %v, want 1.5 GiB", got)
	}
}

// TestMultiDeviceTiming checks the K-device pricing: partitionable terms
// split by K, sampling stays whole, and the halo/all-reduce terms match
// the hand formulas.
func TestMultiDeviceTiming(t *testing.T) {
	p := hw.A100().WithDevices(4, hw.NVLink())
	v := volumes()
	v.HaloBytes = 1.5e6
	v.AllReduceBytes = 8e6

	w1 := workload()
	single := EstimateBatch(v, p, w1)
	w4 := workload()
	w4.Devices = 4
	multi := EstimateBatch(v, p, w4)

	if multi.TSample != single.TSample {
		t.Errorf("TSample changed with K: %v vs %v (sampling is shared host work)", multi.TSample, single.TSample)
	}
	// Transfer: bytes/K over the link plus the unchanged latency.
	wantTransfer := (single.TTransfer-p.Link.LatencySec)/4 + p.Link.LatencySec
	if !close(multi.TTransfer, wantTransfer) {
		t.Errorf("TTransfer = %v, want %v", multi.TTransfer, wantTransfer)
	}
	if multi.TCompute >= single.TCompute {
		t.Errorf("TCompute not reduced by K: %v vs %v", multi.TCompute, single.TCompute)
	}
	// Halo: rescale measured bytes to paper width, split across K
	// parallel exchanges.
	haloRows := v.HaloBytes / float64(w4.Precision.RowBytes(v.ScaledFeatDim))
	haloBytes := haloRows * w4.VertexScale * float64(w4.FeatDim) * 4
	wantHalo := haloBytes/4/p.Interconnect.BytesPerSec + p.Interconnect.LatencySec
	if !close(multi.THalo, wantHalo) {
		t.Errorf("THalo = %v, want %v", multi.THalo, wantHalo)
	}
	// All-reduce: ring factor 2(K-1)/K on bytes, 2(K-1) latency steps.
	wantAR := 2*3.0/4*v.AllReduceBytes/p.Interconnect.BytesPerSec + 6*p.Interconnect.LatencySec
	if !close(multi.TAllReduce, wantAR) {
		t.Errorf("TAllReduce = %v, want %v", multi.TAllReduce, wantAR)
	}
	// The comm terms sit on the right pipeline sides.
	if got := multi.HostSide(); !close(got, multi.TSample+multi.TTransfer+multi.THalo) {
		t.Errorf("HostSide = %v missing THalo", got)
	}
	if got := multi.DeviceSide(); !close(got, multi.TReplace+multi.TCompute+multi.TAllReduce) {
		t.Errorf("DeviceSide = %v missing TAllReduce", got)
	}
}

// TestSingleDeviceTimingUnchanged pins the K<=1 paths bitwise: Devices 0
// and 1 price identically, comm volumes are ignored without a second
// device, and comm terms are zero.
func TestSingleDeviceTimingUnchanged(t *testing.T) {
	p := hw.A100()
	v := volumes()
	base := EstimateBatch(v, p, workload())
	v.HaloBytes = 1e6
	v.AllReduceBytes = 1e6
	for _, k := range []int{0, 1} {
		w := workload()
		w.Devices = k
		got := EstimateBatch(v, p, w)
		if got != base {
			t.Errorf("Devices=%d timing %+v != base %+v", k, got, base)
		}
	}
	if base.THalo != 0 || base.TAllReduce != 0 {
		t.Errorf("single-device comm terms nonzero: %+v", base)
	}
}

// TestMultiDeviceMemory checks the per-device breakdown: model
// replicated, cache and runtime sharded by K.
func TestMultiDeviceMemory(t *testing.T) {
	v := MemoryVolumes{
		ModelParams: 1e6, CacheVertices: 5e5, PeakBatchVertices: 9000,
		PeakBatchEdges: 30000, HiddenDims: 96, MaxWidth: 64, Layers: 2,
	}
	w1 := workload()
	single := EstimateMemory(v, w1)
	w4 := workload()
	w4.Devices = 4
	multi := EstimateMemory(v, w4)
	if multi.Model != single.Model {
		t.Errorf("model memory changed with K: %v vs %v (replicated)", multi.Model, single.Model)
	}
	if !close(multi.Cache, single.Cache/4) {
		t.Errorf("cache shard = %v, want %v", multi.Cache, single.Cache/4)
	}
	const overhead = 64 * 1024 * 1024
	if !close(multi.Runtime-overhead, (single.Runtime-overhead)/4) {
		t.Errorf("runtime shard = %v, want %v", multi.Runtime-overhead, (single.Runtime-overhead)/4)
	}
	if multi.Total() >= single.Total() {
		t.Error("K devices did not relieve per-device memory")
	}
}

func TestWorkloadValidateDevices(t *testing.T) {
	w := workload()
	w.Devices = -1
	if err := w.Validate(); err == nil {
		t.Error("negative device count accepted")
	}
	w.Devices = 4
	if err := w.Validate(); err != nil {
		t.Errorf("4-device workload rejected: %v", err)
	}
}

func close(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-12*(1+abs(a)+abs(b))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
