package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gnnavigator/internal/hw"
)

func workload() Workload {
	return Workload{VertexScale: 30, FeatDim: 602, BytesPerScalar: 4}
}

func volumes() BatchVolumes {
	return BatchVolumes{
		SampledVertices:  8000,
		TargetVertices:   1024,
		InputVertices:    8000,
		MissVertices:     3000,
		CacheUpdateOps:   0,
		SampledEdges:     20000,
		FLOPs:            5e7,
		FeatureFLOPShare: 0.5,
		ScaledFeatDim:    48,
		Layers:           2,
	}
}

func TestWorkloadValidate(t *testing.T) {
	if err := workload().Validate(); err != nil {
		t.Errorf("valid workload rejected: %v", err)
	}
	bad := workload()
	bad.FeatDim = 0
	if err := bad.Validate(); err == nil {
		t.Error("invalid workload accepted")
	}
}

func TestPlatformProfilesValid(t *testing.T) {
	for name, p := range hw.Profiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("profile %s invalid: %v", name, err)
		}
	}
}

func TestEstimateBatchComponentsPositive(t *testing.T) {
	tm := EstimateBatch(volumes(), hw.RTX4090(), workload())
	if tm.TSample <= 0 || tm.TTransfer <= 0 || tm.TCompute <= 0 {
		t.Errorf("non-positive component: %+v", tm)
	}
	if tm.TReplace != 0 {
		t.Errorf("TReplace = %v, want 0 with no cache updates", tm.TReplace)
	}
	v := volumes()
	v.CacheUpdateOps = 2000
	tm2 := EstimateBatch(v, hw.RTX4090(), workload())
	if tm2.TReplace <= 0 {
		t.Error("TReplace = 0 despite cache updates")
	}
}

func TestMissesDriveTransfer(t *testing.T) {
	v := volumes()
	p := hw.RTX4090()
	w := workload()
	high := EstimateBatch(v, p, w)
	v.MissVertices = 100
	low := EstimateBatch(v, p, w)
	if low.TTransfer >= high.TTransfer {
		t.Errorf("fewer misses did not reduce transfer: %v vs %v", low.TTransfer, high.TTransfer)
	}
}

func TestCriticalIsMax(t *testing.T) {
	b := BatchTiming{TSample: 1, TTransfer: 2, TReplace: 0.5, TCompute: 1}
	if b.Critical() != 3 {
		t.Errorf("Critical = %v, want 3 (host side)", b.Critical())
	}
	if b.Total() != 4.5 {
		t.Errorf("Total = %v, want 4.5", b.Total())
	}
	b2 := BatchTiming{TSample: 0.1, TTransfer: 0.1, TReplace: 1, TCompute: 3}
	if b2.Critical() != 4 {
		t.Errorf("Critical = %v, want 4 (device side)", b2.Critical())
	}
}

func TestEpochTimePipelinedLower(t *testing.T) {
	batches := []BatchTiming{
		{TSample: 1, TTransfer: 1, TCompute: 1.5},
		{TSample: 0.5, TTransfer: 0.5, TCompute: 2},
	}
	pip := EpochTime(batches)
	ser := EpochTimeUnpipelined(batches)
	if pip >= ser {
		t.Errorf("pipelined %v >= serial %v", pip, ser)
	}
	// Batch 1: max(1+1, 1.5) = 2; batch 2: max(0.5+0.5, 2) = 2.
	if pip != 4 {
		t.Errorf("pipelined = %v, want 4", pip)
	}
}

func TestFasterDeviceReducesCompute(t *testing.T) {
	v := volumes()
	w := workload()
	slow := EstimateBatch(v, hw.M90(), w)
	fast := EstimateBatch(v, hw.A100(), w)
	if fast.TCompute >= slow.TCompute {
		t.Errorf("A100 compute %v >= M90 %v", fast.TCompute, slow.TCompute)
	}
}

func TestFeatureDimRescaling(t *testing.T) {
	v := volumes()
	p := hw.RTX4090()
	small := workload()
	small.FeatDim = 48 // same as scaled: no rescale
	big := workload()  // 602
	tSmall := EstimateBatch(v, p, small)
	tBig := EstimateBatch(v, p, big)
	if tBig.TCompute <= tSmall.TCompute {
		t.Errorf("larger full feature dim did not increase compute: %v vs %v",
			tBig.TCompute, tSmall.TCompute)
	}
}

func TestEstimateMemoryBreakdown(t *testing.T) {
	w := workload()
	m := EstimateMemory(MemoryVolumes{
		ModelParams:       100_000,
		CacheVertices:     50_000,
		PeakBatchVertices: 8000,
		HiddenDims:        64,
		Layers:            2,
	}, w)
	if m.Model <= 0 || m.Cache <= 0 || m.Runtime <= 0 {
		t.Errorf("non-positive memory component: %+v", m)
	}
	wantModel := 100_000.0 * 4 * 4
	if m.Model != wantModel {
		t.Errorf("Model = %v, want %v", m.Model, wantModel)
	}
	wantCache := 50_000.0 * 602 * 4
	if m.Cache != wantCache {
		t.Errorf("Cache = %v, want %v", m.Cache, wantCache)
	}
	if m.Total() != m.Model+m.Cache+m.Runtime {
		t.Error("Total != sum of parts")
	}
}

func TestZeroCacheHasNoCacheMemory(t *testing.T) {
	m := EstimateMemory(MemoryVolumes{ModelParams: 10, PeakBatchVertices: 10, HiddenDims: 8}, workload())
	if m.Cache != 0 {
		t.Errorf("Cache = %v, want 0", m.Cache)
	}
}

func TestFitsDevice(t *testing.T) {
	p := hw.M90() // 8 GiB
	small := MemoryBreakdown{Model: 1e6, Cache: 1e6, Runtime: 1e6}
	if !FitsDevice(small, p, 0.05) {
		t.Error("3 MB reported as not fitting 8 GiB")
	}
	huge := MemoryBreakdown{Cache: 16 * hw.GiB}
	if FitsDevice(huge, p, 0.05) {
		t.Error("16 GiB reported as fitting 8 GiB")
	}
}

// Property: every timing component is non-negative and monotone in vertex
// scale.
func TestTimingMonotoneInScaleProperty(t *testing.T) {
	p := hw.RTX4090()
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		v := BatchVolumes{
			SampledVertices:  100 + rng.Intn(10000),
			TargetVertices:   1 + rng.Intn(1000),
			InputVertices:    100 + rng.Intn(10000),
			MissVertices:     rng.Intn(5000),
			CacheUpdateOps:   rng.Intn(3000),
			SampledEdges:     100 + rng.Intn(50000),
			FLOPs:            1e5 + rng.Float64()*1e8,
			FeatureFLOPShare: rng.Float64(),
			ScaledFeatDim:    16 + rng.Intn(64),
			Layers:           1 + rng.Intn(3),
		}
		w1 := Workload{VertexScale: 1 + rng.Float64()*10, FeatDim: 64 + rng.Intn(600), BytesPerScalar: 4}
		w2 := w1
		w2.VertexScale *= 2
		t1 := EstimateBatch(v, p, w1)
		t2 := EstimateBatch(v, p, w2)
		if t1.TSample < 0 || t1.TTransfer < 0 || t1.TReplace < 0 || t1.TCompute < 0 {
			return false
		}
		return t2.TSample >= t1.TSample && t2.TTransfer >= t1.TTransfer &&
			t2.TReplace >= t1.TReplace && t2.TCompute >= t1.TCompute &&
			t2.Critical() >= t1.Critical()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: memory total is monotone in every volume knob.
func TestMemoryMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		w := Workload{VertexScale: 1 + rng.Float64()*20, FeatDim: 32 + rng.Intn(600), BytesPerScalar: 4}
		base := MemoryVolumes{
			ModelParams:       1000 + rng.Intn(100000),
			CacheVertices:     float64(rng.Intn(100000)),
			PeakBatchVertices: 100 + rng.Intn(10000),
			HiddenDims:        16 + rng.Intn(256),
			Layers:            1 + rng.Intn(4),
		}
		m0 := EstimateMemory(base, w).Total()
		up := base
		up.ModelParams *= 2
		if EstimateMemory(up, w).Total() < m0 {
			return false
		}
		up = base
		up.CacheVertices += 1000
		if EstimateMemory(up, w).Total() <= m0 {
			return false
		}
		up = base
		up.PeakBatchVertices *= 2
		return EstimateMemory(up, w).Total() > m0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWithMemoryCapsCache(t *testing.T) {
	p := hw.RTX4090().WithMemory(2 * hw.GiB)
	if p.Device.MemCapacityBytes != 2*hw.GiB {
		t.Errorf("WithMemory = %v", p.Device.MemCapacityBytes)
	}
	if got := p.FreeForCacheBytes(3 * hw.GiB); got != 0 {
		t.Errorf("FreeForCacheBytes over budget = %v, want 0", got)
	}
	if got := p.FreeForCacheBytes(0.5 * hw.GiB); got != 1.5*hw.GiB {
		t.Errorf("FreeForCacheBytes = %v, want 1.5 GiB", got)
	}
}
