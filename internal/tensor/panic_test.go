package tensor

import (
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"

	"gnnavigator/internal/faultinject"
)

// mustRecoverWorkerPanic runs fn and asserts it panics with a
// *WorkerPanic whose Value message contains want.
func mustRecoverWorkerPanic(t *testing.T, want string, fn func()) {
	t.Helper()
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("no panic propagated (want one containing %q)", want)
		}
		wp, ok := r.(*WorkerPanic)
		if !ok {
			t.Fatalf("panic value %T, want *WorkerPanic", r)
		}
		if !strings.Contains(wp.Error(), want) {
			t.Fatalf("panic %q does not contain %q", wp.Error(), want)
		}
		if len(wp.Stack) == 0 {
			t.Fatal("WorkerPanic lost the original stack")
		}
	}()
	fn()
}

// TestChaosParallelRangePanicContained: a panicking shard must surface
// on the dispatching goroutine as *WorkerPanic — after all sibling
// shards finished — and must not kill pool workers (subsequent
// dispatches still work).
func TestChaosParallelRangePanicContained(t *testing.T) {
	defer SetParallelism(Parallelism())
	SetParallelism(4)
	// flatGrain-sized shards: n must be >= 2*flatGrain or the loop runs
	// inline on the caller and no shard is ever dispatched.
	n := 8 * flatGrain
	mustRecoverWorkerPanic(t, "boom-shard", func() {
		ParallelRange(n, func(lo, hi int) {
			if lo > 0 { // only dispatched shards panic; dispatcher survives
				panic("boom-shard")
			}
		})
	})
	// The pool must still be functional afterwards.
	got := make([]int, n)
	ParallelRange(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			got[i] = i
		}
	})
	for i, v := range got {
		if v != i {
			t.Fatalf("pool broken after contained panic: got[%d]=%d", i, v)
		}
	}
}

// TestChaosDispatcherShardPanicWaitsForSiblings: a panic on the
// dispatcher's own shard must still propagate (wrapped), not deadlock.
func TestChaosDispatcherShardPanicWaitsForSiblings(t *testing.T) {
	defer SetParallelism(Parallelism())
	SetParallelism(4)
	mustRecoverWorkerPanic(t, "boom-own", func() {
		ParallelRange(8*flatGrain, func(lo, hi int) {
			if lo == 0 {
				panic("boom-own")
			}
		})
	})
}

// TestChaosForEachIndexPanicContained: a panicking task stops the
// fan-out, all task goroutines exit, and the panic rethrows wrapped.
func TestChaosForEachIndexPanicContained(t *testing.T) {
	before := runtime.NumGoroutine()
	mustRecoverWorkerPanic(t, "boom-task", func() {
		ForEachIndex(100, 4, func(i int) {
			if i == 7 {
				panic("boom-task")
			}
		})
	})
	waitForGoroutines(t, before)
}

// TestChaosForEachIndexErrContainsPanics: the fallible fan-out converts
// panics (its own tasks' and nested kernel dispatches') to errors.
func TestChaosForEachIndexErrContainsPanics(t *testing.T) {
	err := ForEachIndexErr(50, 4, func(i int) error {
		if i == 3 {
			panic("boom-err")
		}
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom-err") {
		t.Fatalf("panic not converted to error: %v", err)
	}
	// Nested: the task runs a sharded kernel whose shard panics.
	defer SetParallelism(Parallelism())
	SetParallelism(4)
	err = ForEachIndexErr(2, 1, func(i int) error {
		ParallelRange(8*flatGrain, func(lo, hi int) {
			if lo > 0 {
				panic("boom-nested")
			}
		})
		return nil
	})
	if err == nil || !strings.Contains(err.Error(), "boom-nested") {
		t.Fatalf("nested kernel panic not converted to error: %v", err)
	}
}

// TestChaosTensorWorkerInjection: the armed tensor/worker point fires
// inside pool jobs and is contained like any shard panic.
func TestChaosTensorWorkerInjection(t *testing.T) {
	defer faultinject.Reset()
	defer SetParallelism(Parallelism())
	SetParallelism(4)
	faultinject.Arm(faultinject.TensorWorker, faultinject.Spec{Kind: faultinject.Panic, Count: 1})
	mustRecoverWorkerPanic(t, "injected panic", func() {
		ForEachIndex(64, 4, func(int) {})
	})
	faultinject.Reset()
	// Error kind at a site with no error path propagates as a panic too,
	// wrapped so errors.Is still sees the sentinel through ForEachIndexErr.
	faultinject.Arm(faultinject.TensorWorker, faultinject.Spec{Kind: faultinject.Error, Count: 1})
	err := ForEachIndexErr(64, 4, func(int) error { return nil })
	if err == nil {
		t.Fatal("injected error did not propagate through ForEachIndexErr")
	}
	var wp *WorkerPanic
	if errors.As(err, &wp) {
		if e, ok := wp.Value.(error); !ok || !errors.Is(e, faultinject.ErrInjected) {
			t.Fatalf("contained panic lost the injected sentinel: %v", wp.Value)
		}
	}
}

// waitForGoroutines polls until the goroutine count returns to (near)
// the baseline; pool workers are resident by design, so only growth
// beyond the pre-call count is a leak.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= baseline {
			return
		}
		runtime.Gosched()
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("goroutine leak: %d before, %d after", baseline, runtime.NumGoroutine())
}
