package tensor

import (
	"fmt"
	"os"
	"runtime"
	"runtime/debug"
	"strconv"
	"sync"
	"sync/atomic"

	"gnnavigator/internal/faultinject"
)

// Workers never block waiting for other shards: a dispatcher that has
// finished its own shard drains further jobs from the queue while its
// batch is outstanding (helping / work-stealing wait). That makes
// nested dispatch — a kernel or ParallelRange call issued from inside a
// worker callback — safe by construction instead of a deadlock on the
// fixed-size pool.

// The package-level worker pool that backs every sharded kernel. Workers
// are started lazily on first parallel call and live for the process
// lifetime; parallelFor feeds them contiguous index shards. All sharding
// is over disjoint output ranges with a fixed per-element accumulation
// order, so results are bitwise-identical at every parallelism level
// (including the serial n<=1 path).

// maxWorkers bounds the pool; parallelism requests above it are clamped.
const maxWorkers = 64

var (
	parallelism atomic.Int32

	poolMu  sync.Mutex
	jobs    chan job
	workers int
)

type job struct {
	fn     func(lo, hi int)
	lo, hi int
	// pending counts the batch's outstanding shards; the last decrement
	// closes done, releasing the dispatcher's parked wait.
	pending *atomic.Int64
	done    chan struct{}
	// panicked captures the batch's first worker panic (as *WorkerPanic)
	// so the dispatcher can rethrow it on its own goroutine after the
	// batch drains. Without the capture, a panicking shard would kill its
	// pool worker, the batch counter would never reach zero, and the
	// dispatcher would park on done forever.
	panicked *atomic.Value
}

// WorkerPanic wraps a panic recovered on a pool worker (or a ForEachIndex
// task goroutine) and rethrown on the dispatching goroutine — the value a
// containment layer above (pipeline stages, ForEachIndexErr) sees when a
// sharded kernel or fanned-out task panics. It implements error so those
// layers can propagate it as one.
type WorkerPanic struct {
	// Value is the original panic value.
	Value any
	// Stack is the panicking goroutine's stack at recovery time (the
	// rethrow loses the original stack, so it is preserved here).
	Stack []byte
}

func (p *WorkerPanic) Error() string {
	return fmt.Sprintf("tensor: worker panic: %v", p.Value)
}

// Unwrap exposes an error-valued panic (e.g. an injected fault thrown by
// a site without an error return) so errors.Is/As see through the
// capture.
func (p *WorkerPanic) Unwrap() error {
	if err, ok := p.Value.(error); ok {
		return err
	}
	return nil
}

// asWorkerPanic wraps a recovered value, passing through values that are
// already wrapped (a nested dispatch rethrowing into an outer one).
func asWorkerPanic(r any) *WorkerPanic {
	if wp, ok := r.(*WorkerPanic); ok {
		return wp
	}
	return &WorkerPanic{Value: r, Stack: debug.Stack()}
}

func runJob(j job) {
	// The decrement must happen even when fn panics (via the deferred
	// recovery), or the batch never completes; the capture keeps the pool
	// worker itself alive.
	defer func() {
		if r := recover(); r != nil {
			j.panicked.CompareAndSwap(nil, asWorkerPanic(r))
		}
		if j.pending.Add(-1) == 0 {
			close(j.done)
		}
	}()
	if err := faultinject.Fire(faultinject.TensorWorker); err != nil {
		panic(err)
	}
	j.fn(j.lo, j.hi)
}

func init() { parallelism.Store(int32(defaultParallelism())) }

func defaultParallelism() int {
	if s := os.Getenv("GNNAV_PROCS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n >= 1 {
			if n > maxWorkers {
				n = maxWorkers
			}
			return n
		}
	}
	if n := runtime.GOMAXPROCS(0); n <= maxWorkers {
		return n
	}
	return maxWorkers
}

// SetParallelism sets the worker count used by sharded kernels. n <= 1
// selects the serial path (no goroutines touched), which is also the
// deterministic reference the equivalence tests compare against. The
// default is GOMAXPROCS, overridable with the GNNAV_PROCS environment
// variable.
func SetParallelism(n int) {
	if n < 1 {
		n = 1
	}
	if n > maxWorkers {
		n = maxWorkers
	}
	parallelism.Store(int32(n))
}

// Parallelism reports the current worker count.
func Parallelism() int { return int(parallelism.Load()) }

// WithParallelism installs n as the process-wide worker count and
// returns the function that restores the previous value (a no-op when
// n <= 0, i.e. "no override"). This is the one implementation of the
// apply-once/restore-once contract; callers that fan work out
// concurrently must hold a single WithParallelism scope around the
// whole fan-out rather than nesting per-task scopes, whose interleaved
// restores could stick.
func WithParallelism(n int) (restore func()) {
	if n <= 0 {
		return func() {}
	}
	prev := Parallelism()
	SetParallelism(n)
	return func() { SetParallelism(prev) }
}

// ensureWorkers grows the pool to at least n resident workers.
func ensureWorkers(n int) {
	poolMu.Lock()
	defer poolMu.Unlock()
	if jobs == nil {
		jobs = make(chan job, 4*maxWorkers)
	}
	for workers < n {
		workers++
		go func() {
			for j := range jobs {
				runJob(j)
			}
		}()
	}
}

// ParallelRange shards an elementwise loop over [0, n) across the worker
// pool. Exported for sibling packages (nn, model) whose hot loops shard
// the same way the kernels here do: disjoint ranges, deterministic
// per-element work, so results are independent of the worker count.
func ParallelRange(n int, fn func(lo, hi int)) { parallelFor(n, flatGrain, fn) }

// ForEachIndex runs fn(i) for every i in [0, n) with up to `workers`
// invocations in flight (the calling goroutine participates). It is the
// coarse-grained companion to the sharded kernels: items are pulled from
// a shared atomic counter, so expensive, variable-cost tasks — a full
// backend profiling run, an estimator prediction — load-balance instead
// of being pinned to contiguous shards. workers <= 0 selects the
// process-wide Parallelism(); workers == 1 (or n <= 1) runs inline with
// no goroutines. fn receives each index exactly once and must write any
// result to an index-stamped slot; callers that do so observe output
// identical to the serial loop at every worker count. Nested kernel
// dispatches from inside fn share the package pool safely.
func ForEachIndex(n, workers int, fn func(i int)) {
	if workers <= 0 {
		workers = Parallelism()
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			if err := faultinject.Fire(faultinject.TensorWorker); err != nil {
				panic(err)
			}
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var panicked atomic.Value
	// Each task runs under a recovery guard: a panicking task is captured
	// (first wins), the remaining tasks are skipped, and the panic is
	// rethrown as *WorkerPanic on the calling goroutine after every task
	// goroutine has exited — mirroring the kernel pool's containment, so
	// a panicking fanned-out run can never strand its siblings' WaitGroup.
	call := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, asWorkerPanic(r))
			}
		}()
		if err := faultinject.Fire(faultinject.TensorWorker); err != nil {
			panic(err)
		}
		fn(i)
	}
	drain := func() {
		for panicked.Load() == nil {
			i := int(next.Add(1)) - 1
			if i >= n {
				return
			}
			call(i)
		}
	}
	var wg sync.WaitGroup
	for w := 1; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			drain()
		}()
	}
	drain()
	wg.Wait()
	if r := panicked.Load(); r != nil {
		panic(r)
	}
}

// ForEachIndexErr is ForEachIndex for fallible items: once any fn
// returns an error, not-yet-started items are skipped — mirroring a
// serial loop's early return, which matters when each item is expensive
// (a backend profiling run) or the failure would repeat per item. The
// lowest-index recorded error is returned; index-stamped output written
// before the failure is partial and must be discarded by the caller.
//
// Panics — fn's own, or a *WorkerPanic rethrown by a kernel dispatch
// nested inside fn — are contained here and returned as errors, so a
// fan-out of expensive fallible tasks (calibration profiling, DSE
// prediction) degrades to a clean failure instead of crashing the
// process.
func ForEachIndexErr(n, workers int, fn func(i int) error) (err error) {
	if n <= 0 {
		return nil
	}
	defer func() {
		if r := recover(); r != nil {
			if wp, ok := r.(*WorkerPanic); ok {
				err = wp
				return
			}
			err = fmt.Errorf("tensor: task panic: %v", r)
		}
	}()
	errs := make([]error, n)
	var failed atomic.Bool
	ForEachIndex(n, workers, func(i int) {
		if failed.Load() {
			return
		}
		if err := fn(i); err != nil {
			errs[i] = err
			failed.Store(true)
		}
	})
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// ParallelRows is ParallelRange with a row-level grain, for loops whose
// body processes a whole matrix row (or similarly sized unit) per index.
func ParallelRows(n int, fn func(lo, hi int)) { parallelFor(n, rowGrain, fn) }

// parallelFor runs fn over [0, n) split into contiguous shards, one per
// worker, executing shard 0 on the calling goroutine. grain is the
// minimum iteration count per shard worth dispatching; below 2*grain the
// loop runs inline. fn must be safe for concurrent disjoint ranges.
func parallelFor(n, grain int, fn func(lo, hi int)) {
	p := Parallelism()
	if grain < 1 {
		grain = 1
	}
	if p <= 1 || n < 2*grain {
		if n > 0 {
			fn(0, n)
		}
		return
	}
	shards := p
	if max := n / grain; shards > max {
		shards = max
	}
	if shards < 2 {
		fn(0, n)
		return
	}
	ensureWorkers(shards - 1)
	chunk := (n + shards - 1) / shards
	// Count the dispatched shards up front: incrementing pending per
	// shard would let the counter transiently reach zero (closing done
	// early, then double-closing) whenever an early shard finishes
	// before the next one is queued. Shards with lo >= n are an empty
	// suffix, so the dispatched ones are exactly s = 1..njobs.
	njobs := 0
	for s := 1; s < shards; s++ {
		if s*chunk < n {
			njobs++
		}
	}
	if njobs == 0 {
		fn(0, n)
		return
	}
	var pending atomic.Int64
	pending.Store(int64(njobs))
	done := make(chan struct{})
	var panicked atomic.Value
	for s := 1; s <= njobs; s++ {
		lo := s * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		j := job{fn: fn, lo: lo, hi: hi, pending: &pending, done: done, panicked: &panicked}
		select {
		case jobs <- j:
		default:
			// Queue full (deep nesting or many sibling dispatchers):
			// run inline rather than blocking the send, which could
			// leave no goroutine free to drain the channel.
			runJob(j)
		}
	}
	// The dispatcher's own shard runs under the same recovery as
	// dispatched jobs: a panic here must still wait for the outstanding
	// shards (which share the caller's buffers) before propagating.
	func() {
		defer func() {
			if r := recover(); r != nil {
				panicked.CompareAndSwap(nil, asWorkerPanic(r))
			}
		}()
		fn(0, chunk)
	}()
	// Helping wait: drain queued jobs (this batch's, a sibling's, or a
	// nested dispatch's) instead of blocking, so the pool cannot deadlock
	// on re-entrant use. Once the queue is empty the remaining shards are
	// mid-flight on workers and no helping is possible, so park on done
	// rather than spinning against the CPUs those shards need.
	for pending.Load() > 0 {
		select {
		case j := <-jobs:
			runJob(j)
		default:
			select {
			case j := <-jobs:
				runJob(j)
			case <-done:
			}
		}
	}
	// Containment: rethrow the batch's first shard panic on the calling
	// goroutine, after every shard has stopped touching the caller's
	// data. The pool workers themselves never die, and the panic
	// surfaces exactly where the serial loop's would have.
	if r := panicked.Load(); r != nil {
		panic(r)
	}
}
