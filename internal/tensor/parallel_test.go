package tensor

import (
	"errors"
	"math/rand"
	"slices"
	"sync/atomic"
	"testing"
	"time"
)

var errTest = errors.New("test error")

// withParallelism sets the worker count for a test and restores it after.
func withParallelism(t *testing.T, n int) {
	t.Helper()
	prev := Parallelism()
	SetParallelism(n)
	t.Cleanup(func() { SetParallelism(prev) })
}

func randDense(rng *rand.Rand, rows, cols int) *Dense {
	m := New(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// bitwiseEq fails the test at the first bit-level difference.
func bitwiseEq(t *testing.T, name string, got, want *Dense) {
	t.Helper()
	if got.Rows != want.Rows || got.Cols != want.Cols {
		t.Fatalf("%s: shape %dx%d != %dx%d", name, got.Rows, got.Cols, want.Rows, want.Cols)
	}
	for i := range want.Data {
		if got.Data[i] != want.Data[i] {
			t.Fatalf("%s: element %d = %v, want %v (bitwise)", name, i, got.Data[i], want.Data[i])
		}
	}
}

// TestParallelKernelsBitwiseEqualSerial runs every sharded kernel at
// parallelism 1 and 4 on the same inputs and demands bit-identical
// outputs: all sharding is over disjoint output ranges with serial
// accumulation order per element.
func TestParallelKernelsBitwiseEqualSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Odd sizes exercise ragged shards; all dimensions sit above the
	// dispatch grains (rowGrain, copyGrain, flatGrain) so every kernel
	// actually takes the sharded path at parallelism 4.
	const n, k, m = 150, 97, 71
	a := randDense(rng, n, k)
	b := randDense(rng, k, m)
	bt := randDense(rng, m, k)
	at := randDense(rng, k, n)
	// Sprinkle exact zeros so the sparse-skip kernels exercise both arms.
	for i := 0; i < len(a.Data); i += 3 {
		a.Data[i] = 0
	}
	idx := make([]int32, 2*n)
	for i := range idx {
		idx[i] = int32(rng.Intn(n))
	}
	bias := make([]float64, m)
	for i := range bias {
		bias[i] = rng.NormFloat64()
	}

	type kernel struct {
		name string
		run  func() *Dense
	}
	kernels := []kernel{
		{"MatMulInto", func() *Dense {
			out := New(n, m)
			MatMulInto(out, a, b)
			return out
		}},
		{"MatMulSparseInto", func() *Dense {
			out := New(n, m)
			MatMulSparseInto(out, a, b)
			return out
		}},
		{"MatMulT1Into", func() *Dense {
			out := New(n, m)
			MatMulT1Into(out, at, b)
			return out
		}},
		{"MatMulT1SparseInto", func() *Dense {
			out := New(n, m)
			MatMulT1SparseInto(out, at, b)
			return out
		}},
		{"MatMulT2Into", func() *Dense {
			out := New(n, m)
			MatMulT2Into(out, a, bt)
			return out
		}},
		{"GatherRowsInto", func() *Dense {
			out := New(len(idx), k)
			GatherRowsInto(out, a, idx)
			return out
		}},
		{"ScatterAddRows", func() *Dense {
			src := randDense(rand.New(rand.NewSource(7)), len(idx), k)
			dst := New(n, k)
			ScatterAddRows(dst, src, idx)
			return dst
		}},
		{"SoftmaxRows", func() *Dense {
			c := a.Clone()
			c.SoftmaxRows()
			return c
		}},
		{"Apply", func() *Dense {
			c := a.Clone()
			c.Apply(func(v float64) float64 { return v * v })
			return c
		}},
		{"AddBias", func() *Dense {
			c := randDense(rand.New(rand.NewSource(8)), n, m)
			c.AddBias(bias)
			return c
		}},
		{"AddInPlace", func() *Dense {
			c := a.Clone()
			c.AddInPlace(a)
			return c
		}},
		{"ScaleInPlace", func() *Dense {
			c := a.Clone()
			c.ScaleInPlace(1.7)
			return c
		}},
		{"ColSums", func() *Dense {
			return FromSlice(1, k, a.ColSums())
		}},
	}
	for _, kr := range kernels {
		SetParallelism(1)
		want := kr.run()
		SetParallelism(4)
		got := kr.run()
		SetParallelism(1)
		bitwiseEq(t, kr.name, got, want)
	}
}

// TestScatterAddRowsParallelLargePath forces the sharded scan path (it
// only engages above a work threshold) and checks bitwise equality.
func TestScatterAddRowsParallelLargePath(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	const rows, cols = 300, 80
	idx := make([]int32, 4*rows)
	for i := range idx {
		idx[i] = int32(rng.Intn(rows))
	}
	src := randDense(rng, len(idx), cols)
	run := func() *Dense {
		dst := New(rows, cols)
		ScatterAddRows(dst, src, idx)
		return dst
	}
	withParallelism(t, 1)
	want := run()
	SetParallelism(4)
	got := run()
	bitwiseEq(t, "ScatterAddRows/large", got, want)
}

// TestNestedDispatchDoesNotDeadlock issues a sharded kernel from inside
// a worker callback: the helping wait must drain the nested jobs instead
// of parking the fixed-size pool (the classic nested-pool deadlock).
func TestNestedDispatchDoesNotDeadlock(t *testing.T) {
	withParallelism(t, 4)
	rng := rand.New(rand.NewSource(9))
	a := randDense(rng, 64, 32)
	b := randDense(rng, 32, 16)
	results := make([]*Dense, 64)
	done := make(chan struct{})
	go func() {
		defer close(done)
		ParallelRows(len(results), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out := New(a.Rows, b.Cols)
				MatMulInto(out, a, b) // nested dispatch from a pool worker
				results[i] = out
			}
		})
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second): // orders of magnitude above the expected runtime
		t.Fatal("nested parallel dispatch deadlocked")
	}
	want := MatMul(a, b)
	for i, got := range results {
		if got == nil {
			t.Fatalf("result %d missing", i)
		}
		bitwiseEq(t, "nested", got, want)
	}
}

func TestSetParallelismClamps(t *testing.T) {
	withParallelism(t, 1)
	SetParallelism(0)
	if got := Parallelism(); got != 1 {
		t.Fatalf("Parallelism() = %d after SetParallelism(0), want 1", got)
	}
	SetParallelism(1 << 20)
	if got := Parallelism(); got != maxWorkers {
		t.Fatalf("Parallelism() = %d, want clamp to %d", got, maxWorkers)
	}
}

func TestWorkspaceReuse(t *testing.T) {
	ws := NewWorkspace()
	a := ws.Get(4, 8)
	if a.Rows != 4 || a.Cols != 8 {
		t.Fatalf("Get shape %dx%d", a.Rows, a.Cols)
	}
	ws.Put(a)
	if ws.InUse() != 0 {
		t.Fatalf("InUse after Put = %d, want 0", ws.InUse())
	}
	// Same element count: eligible for reuse (sync.Pool may legitimately
	// drop items — e.g. ~1/4 under -race — so reuse is not asserted by
	// pointer identity, only that the reshape contract holds).
	b := ws.Get(8, 4)
	if b.Rows != 8 || b.Cols != 4 {
		t.Fatalf("reshaped Get = %dx%d, want 8x4", b.Rows, b.Cols)
	}
	c := ws.Get(8, 4) // still in use: must NOT alias b
	if &c.Data[0] == &b.Data[0] {
		t.Error("Get returned an in-use buffer")
	}
	if ws.InUse() != 2 {
		t.Fatalf("InUse = %d, want 2", ws.InUse())
	}
	ws.ReleaseAll()
	if ws.InUse() != 0 {
		t.Fatalf("InUse after ReleaseAll = %d, want 0", ws.InUse())
	}
	z := ws.GetZeroed(8, 4)
	for i, v := range z.Data {
		if v != 0 {
			t.Fatalf("GetZeroed element %d = %v", i, v)
		}
	}
}

func TestNilWorkspaceDegradesToAlloc(t *testing.T) {
	var ws *Workspace
	m := ws.Get(3, 3)
	if m == nil || m.Rows != 3 {
		t.Fatal("nil workspace Get failed")
	}
	ws.Put(m)       // no-op
	ws.ReleaseAll() // no-op
	if ws.InUse() != 0 {
		t.Fatal("nil workspace InUse != 0")
	}
}

func TestForEachIndexCoversEveryIndexOnce(t *testing.T) {
	for _, tc := range []struct{ n, workers int }{
		{0, 4}, {1, 4}, {3, 8}, {100, 0}, {1000, 1}, {1000, 3}, {1000, 16},
	} {
		counts := make([]atomic.Int32, max(tc.n, 1))
		ForEachIndex(tc.n, tc.workers, func(i int) {
			if i < 0 || i >= tc.n {
				t.Errorf("n=%d workers=%d: index %d out of range", tc.n, tc.workers, i)
				return
			}
			counts[i].Add(1)
		})
		for i := 0; i < tc.n; i++ {
			if got := counts[i].Load(); got != 1 {
				t.Fatalf("n=%d workers=%d: index %d visited %d times", tc.n, tc.workers, i, got)
			}
		}
	}
}

func TestForEachIndexIndexStampedOrder(t *testing.T) {
	// Index-stamped writes must reproduce the serial output at any width.
	const n = 257
	want := make([]int, n)
	ForEachIndex(n, 1, func(i int) { want[i] = i * i })
	for _, workers := range []int{2, 5, 32} {
		got := make([]int, n)
		ForEachIndex(n, workers, func(i int) { got[i] = i * i })
		if !slices.Equal(got, want) {
			t.Fatalf("workers=%d: output differs from serial", workers)
		}
	}
}

func TestForEachIndexNestedKernelDispatch(t *testing.T) {
	// Coarse items may issue sharded kernels from inside fn; the shared
	// pool must neither deadlock nor perturb results.
	withParallelism(t, 4)
	const rows, cols = 33, 17
	sums := make([]float64, 8)
	for _, workers := range []int{1, 4} {
		got := make([]float64, len(sums))
		for i := range got {
			got[i] = -1
		}
		ForEachIndex(len(got), workers, func(i int) {
			a := New(rows, cols)
			for j := range a.Data {
				a.Data[j] = float64(j%7) + float64(i)
			}
			b := New(cols, rows)
			for j := range b.Data {
				b.Data[j] = 1
			}
			out := New(rows, rows)
			MatMulInto(out, a, b)
			var s float64
			for _, v := range out.Data {
				s += v
			}
			got[i] = s
		})
		if workers == 1 {
			copy(sums, got)
			continue
		}
		if !slices.Equal(got, sums) {
			t.Fatalf("nested dispatch at %d workers diverged from serial", workers)
		}
	}
}

func TestForEachIndexErr(t *testing.T) {
	// No error: all indices visited, nil returned.
	var visited atomic.Int32
	if err := ForEachIndexErr(10, 4, func(i int) error {
		visited.Add(1)
		return nil
	}); err != nil {
		t.Fatalf("ForEachIndexErr: %v", err)
	}
	if visited.Load() != 10 {
		t.Fatalf("visited %d indices, want 10", visited.Load())
	}
	// Serial error: the failing index's error returns and later items
	// are skipped, like a plain loop's early return.
	var ran []int
	err := ForEachIndexErr(8, 1, func(i int) error {
		ran = append(ran, i)
		if i == 3 {
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Fatalf("error = %v, want errTest", err)
	}
	if !slices.Equal(ran, []int{0, 1, 2, 3}) {
		t.Fatalf("serial short-circuit ran %v", ran)
	}
	// Parallel error: an error is returned and the fan-out stops early
	// (not every index runs once the failure is observed).
	var count atomic.Int32
	err = ForEachIndexErr(1000, 4, func(i int) error {
		count.Add(1)
		if i == 0 {
			return errTest
		}
		return nil
	})
	if err != errTest {
		t.Fatalf("parallel error = %v, want errTest", err)
	}
	if count.Load() == 1000 {
		t.Log("note: all items ran before the failure was observed (legal but unexpected on index 0)")
	}
}
