// Package tensor implements the dense row-major float64 matrices that the
// pure-Go GNN training engine is built on. It provides exactly the
// operations forward/backward passes need — matmul in the three layouts
// (AB, AᵀB, ABᵀ), broadcast bias, elementwise maps, row gather/scatter —
// and nothing speculative.
package tensor

import (
	"fmt"
	"math"
	"math/rand"
)

// Dense is a row-major Rows x Cols matrix.
type Dense struct {
	Rows, Cols int
	Data       []float64
}

// New returns a zeroed Rows x Cols matrix.
func New(rows, cols int) *Dense {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative shape %dx%d", rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data (not copied) as a Rows x Cols matrix.
func FromSlice(rows, cols int, data []float64) *Dense {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("tensor: data length %d != %d*%d", len(data), rows, cols))
	}
	return &Dense{Rows: rows, Cols: cols, Data: data}
}

// Clone returns a deep copy.
func (m *Dense) Clone() *Dense {
	out := New(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Row returns row i (aliases storage).
func (m *Dense) Row(i int) []float64 { return m.Data[i*m.Cols : (i+1)*m.Cols] }

// At returns element (i, j).
func (m *Dense) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns element (i, j).
func (m *Dense) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Zero clears all elements in place.
func (m *Dense) Zero() {
	for i := range m.Data {
		m.Data[i] = 0
	}
}

// GlorotInit fills m with Glorot/Xavier-uniform values for a layer with
// fanIn inputs and fanOut outputs.
func (m *Dense) GlorotInit(rng *rand.Rand, fanIn, fanOut int) {
	limit := math.Sqrt(6.0 / float64(fanIn+fanOut))
	for i := range m.Data {
		m.Data[i] = (rng.Float64()*2 - 1) * limit
	}
}

// MatMul returns a·b (a: n×k, b: k×m → n×m).
func MatMul(a, b *Dense) *Dense {
	if a.Cols != b.Rows {
		panic(fmt.Sprintf("tensor: MatMul shape mismatch %dx%d · %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Cols)
	MatMulInto(out, a, b)
	return out
}

// MatMulInto computes out = a·b, reusing out's storage.
func MatMulInto(out, a, b *Dense) {
	if a.Cols != b.Rows || out.Rows != a.Rows || out.Cols != b.Cols {
		panic("tensor: MatMulInto shape mismatch")
	}
	out.Zero()
	// i-k-j loop order streams b's rows, which is cache-friendly for
	// row-major storage.
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for k := 0; k < a.Cols; k++ {
			aik := arow[k]
			if aik == 0 {
				continue
			}
			brow := b.Row(k)
			for j := range brow {
				orow[j] += aik * brow[j]
			}
		}
	}
}

// MatMulT1 returns aᵀ·b (a: k×n, b: k×m → n×m). Used for dW = Xᵀ·dY.
func MatMulT1(a, b *Dense) *Dense {
	if a.Rows != b.Rows {
		panic(fmt.Sprintf("tensor: MatMulT1 shape mismatch %dx%d ᵀ· %dx%d", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Cols, b.Cols)
	for k := 0; k < a.Rows; k++ {
		arow := a.Row(k)
		brow := b.Row(k)
		for i, aik := range arow {
			if aik == 0 {
				continue
			}
			orow := out.Row(i)
			for j, bkj := range brow {
				orow[j] += aik * bkj
			}
		}
	}
	return out
}

// MatMulT2 returns a·bᵀ (a: n×k, b: m×k → n×m). Used for dX = dY·Wᵀ.
func MatMulT2(a, b *Dense) *Dense {
	if a.Cols != b.Cols {
		panic(fmt.Sprintf("tensor: MatMulT2 shape mismatch %dx%d · %dx%dᵀ", a.Rows, a.Cols, b.Rows, b.Cols))
	}
	out := New(a.Rows, b.Rows)
	for i := 0; i < a.Rows; i++ {
		arow := a.Row(i)
		orow := out.Row(i)
		for j := 0; j < b.Rows; j++ {
			brow := b.Row(j)
			var s float64
			for k, av := range arow {
				s += av * brow[k]
			}
			orow[j] = s
		}
	}
	return out
}

// AddBias adds row vector bias (1×Cols) to every row of m, in place.
func (m *Dense) AddBias(bias []float64) {
	if len(bias) != m.Cols {
		panic("tensor: AddBias length mismatch")
	}
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j := range row {
			row[j] += bias[j]
		}
	}
}

// AddInPlace computes m += other.
func (m *Dense) AddInPlace(other *Dense) {
	if m.Rows != other.Rows || m.Cols != other.Cols {
		panic("tensor: AddInPlace shape mismatch")
	}
	for i := range m.Data {
		m.Data[i] += other.Data[i]
	}
}

// ScaleInPlace computes m *= s.
func (m *Dense) ScaleInPlace(s float64) {
	for i := range m.Data {
		m.Data[i] *= s
	}
}

// Apply maps f over every element, in place.
func (m *Dense) Apply(f func(float64) float64) {
	for i := range m.Data {
		m.Data[i] = f(m.Data[i])
	}
}

// ColSums returns the per-column sums (length Cols). Used for bias grads.
func (m *Dense) ColSums() []float64 {
	out := make([]float64, m.Cols)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[j] += v
		}
	}
	return out
}

// GatherRows returns the matrix whose row i is m.Row(idx[i]).
func GatherRows(m *Dense, idx []int32) *Dense {
	out := New(len(idx), m.Cols)
	for i, r := range idx {
		copy(out.Row(i), m.Row(int(r)))
	}
	return out
}

// ScatterAddRows adds src.Row(i) into dst.Row(idx[i]) for all i.
func ScatterAddRows(dst, src *Dense, idx []int32) {
	if src.Rows != len(idx) || dst.Cols != src.Cols {
		panic("tensor: ScatterAddRows shape mismatch")
	}
	for i, r := range idx {
		drow := dst.Row(int(r))
		srow := src.Row(i)
		for j := range drow {
			drow[j] += srow[j]
		}
	}
}

// SoftmaxRows applies a numerically stable softmax to each row, in place.
func (m *Dense) SoftmaxRows() {
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		max := math.Inf(-1)
		for _, v := range row {
			if v > max {
				max = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(v - max)
			row[j] = e
			sum += e
		}
		for j := range row {
			row[j] /= sum
		}
	}
}

// ArgmaxRows returns, for each row, the index of its maximum element.
func (m *Dense) ArgmaxRows() []int {
	out := make([]int, m.Rows)
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		best, bestJ := math.Inf(-1), 0
		for j, v := range row {
			if v > best {
				best, bestJ = v, j
			}
		}
		out[i] = bestJ
	}
	return out
}

// FrobeniusNorm returns sqrt(sum of squares).
func (m *Dense) FrobeniusNorm() float64 {
	var s float64
	for _, v := range m.Data {
		s += v * v
	}
	return math.Sqrt(s)
}
